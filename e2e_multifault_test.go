package trader_test

// End-to-end test of continuous multi-fault diagnosis (ISSUE 9): a fleet of
// remote devices streams through a journaling ingestion server with the
// recovery controller and the diagnosis engine in continuous mode. Every
// device piggybacks a sparse spectrum delta on each heartbeat — evidence
// flows without any pull round-trip. TWO devices misbehave simultaneously,
// each with an injected fault in a DIFFERENT feature (teletext vs volume),
// and each streams deviating observations so the controller escalates both.
// The engine must keep the two failures apart: its Result carries one
// per-verdict partition per suspect, and each partition ranks that suspect's
// own injected block first — where a single merged spectrum would smear the
// two faults together (Sect. 4.4's multiple-fault caveat). Closing the loop,
// an offline journal replay must reconstruct the whole Result — partitions
// included — byte for byte from the labeled delta records.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"trader/internal/control"
	"trader/internal/diagnose"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/spectrum"
	"trader/internal/wire"
)

// heartbeatDelta closes the round like heartbeat, but ships the closing
// coverage window as a spectrum delta right before the heartbeat — the
// continuous-diagnosis client behavior (tvsim -deltas).
func (c *diagClient) heartbeatDelta(at sim.Time) {
	c.lastAt.Store(int64(at))
	d := c.rec.RotateDelta(at)
	if c.wc.Encode(wire.Message{Type: wire.TypeSpectrumDelta, SUO: c.id, At: at, Delta: d}) != nil {
		return
	}
	if c.wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: c.id, At: at}) != nil {
		return
	}
	select {
	case <-c.echo:
	case <-time.After(2 * time.Second):
	}
}

func TestE2EContinuousMultiFaultDiagnosis(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping continuous-diagnosis e2e in -short mode")
	}
	const (
		devices = 12 // 2 faulty + 10 healthy exonerating peers
		blocks  = 512
		cohort  = 8
		rounds  = 12
		tick    = 100 * sim.Millisecond
		topN    = 5
	)
	id := func(i int) string { return fmt.Sprintf("mf-%02d", i) }
	faultFeature := map[int]string{0: "teletext", 1: "volume"}

	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: 4})
	defer pool.Stop()
	srv := &fleet.Server{Pool: pool, Factory: fleet.LightMonitorFactory(),
		HelloTimeout: 5 * time.Second, Journal: jw}
	defer srv.Close()

	eng := diagnose.Attach(pool, diagnose.Options{
		Requester: srv, Journal: jw, Blocks: blocks, Cohort: cohort,
		Continuous: true, Logf: t.Logf})
	defer eng.Close()
	srv.OnSnapshot = eng.HandleSnapshot
	srv.OnSpectrumDelta = eng.HandleSpectrumDelta

	pol := control.Policy{Name: "multifault-e2e", Tolerate: 1, Resets: 1000, Restarts: 1,
		RestartLatency: 50 * sim.Millisecond}
	ctl := control.Attach(pool, control.Options{
		Actuator: srv, Journal: jw, Policy: pol, Logf: t.Logf,
		OnEscalate: eng.HandleAction,
	})
	defer ctl.Close()
	srv.OnAck = ctl.HandleAck

	addr := "unix:" + filepath.Join(t.TempDir(), "mf.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	// Every device plays the same per-round scenario, so the healthy fleet
	// exonerates the shared code in both partitions; device 0's teletext
	// build and device 1's volume build each execute their own injected
	// fault block.
	recs := make([]*diagnose.Recorder, devices)
	faultBlock := map[int]int{}
	for i := range recs {
		recs[i] = diagnose.NewRecorder(diagnose.RecorderOptions{
			Blocks: blocks, Windows: rounds, Seed: int64(i + 1)})
		if f, ok := faultFeature[i]; ok {
			faultBlock[i] = recs[i].InjectFault(f)
		}
	}
	if faultBlock[0] == faultBlock[1] {
		t.Fatalf("fault blocks collide at %d", faultBlock[0])
	}

	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialDiag(t, addr, id(i), recs[i])
			defer c.wc.Close()
			x := 0.0
			if _, bad := faultFeature[i]; bad {
				x = 2.0 // persistent deviation: every compare flags it
			}
			for n := 1; n <= rounds; n++ {
				at := sim.Time(n) * tick
				recs[i].Press("teletext")
				recs[i].Press("volume")
				recs[i].Press("zapping")
				c.frame(at, x)
				c.heartbeatDelta(at)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Both escalations fired; the delta stream delivered the evidence.
	waitFor(t, "continuous evidence folded", func() bool {
		ro := eng.Rollup()
		return ro.Escalations >= 2 && ro.Deltas >= devices*(rounds-2) && ro.Pending == 0
	})
	ctl.Sync()
	eng.Sync()
	ro := eng.Rollup()
	if ro.JournalErrors != 0 || ro.Dropped != 0 || ro.Malformed != 0 {
		t.Fatalf("engine lost evidence: %s", ro)
	}
	if ro.FailWindows == 0 || ro.PassWindows == 0 {
		t.Fatalf("both labels must contribute: %s", ro)
	}

	// 1. Two simultaneous distinct faults → two per-verdict partitions, each
	// ranking its own suspect's injected block first, attributed to the
	// right feature.
	live := eng.Result(topN)
	if len(live.Parts) != 2 {
		t.Fatalf("got %d verdict partitions, want 2:\n%s", len(live.Parts), live)
	}
	if live.Parts[0].Suspect != id(0) || live.Parts[1].Suspect != id(1) {
		t.Fatalf("partition suspects are %s and %s, want %s and %s",
			live.Parts[0].Suspect, live.Parts[1].Suspect, id(0), id(1))
	}
	for p, feature := range map[int]string{0: "teletext", 1: "volume"} {
		part := live.Parts[p].Result
		if len(part.Ranking) == 0 {
			t.Fatalf("partition %s is empty:\n%s", id(p), live)
		}
		if part.Ranking[0].Block != faultBlock[p] || part.Ranking[0].Component != feature {
			t.Fatalf("partition %s top suspect is block %d (%s), want injected %s fault %d\n%s",
				id(p), part.Ranking[0].Block, part.Ranking[0].Component, feature, faultBlock[p], live)
		}
		if len(part.Verdict) == 0 || part.Verdict[0].Component != feature {
			t.Fatalf("partition %s verdict does not name %s:\n%s", id(p), feature, live)
		}
	}

	// 2. Offline replay of the labeled evidence reconstructs the Result —
	// partitions included — byte for byte.
	srv.Close()
	ln.Close()
	ctl.Close()
	eng.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	replayed, rst, err := diagnose.Replay(jr, spectrum.Ochiai, topN)
	jr.Close()
	if err != nil {
		t.Fatal(err)
	}
	if replayed == nil || rst.Deltas != int(ro.Deltas) || rst.Snapshots != int(ro.Snapshots) {
		t.Fatalf("replay folded %d deltas + %d snapshots, live folded %d + %d",
			rst.Deltas, rst.Snapshots, ro.Deltas, ro.Snapshots)
	}
	if got, want := replayed.String(), live.String(); got != want {
		t.Fatalf("replayed diagnosis not byte-identical:\nlive:\n%s\nreplayed:\n%s", want, got)
	}

	// 3. The pool replay absorbs delta evidence records like snapshot ones.
	rec := fleet.NewPool(fleet.Options{Shards: 4})
	defer rec.Stop()
	jr2, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rec.Replay(jr2, fleet.LightMonitorFactory())
	jr2.Close()
	if err != nil {
		t.Fatalf("pool replay: %v", err)
	}
	if st.Evidence != int(ro.Deltas+ro.Snapshots) {
		t.Fatalf("pool replay counted %d evidence records, want %d", st.Evidence, ro.Deltas+ro.Snapshots)
	}
	if st.Devices != devices {
		t.Fatalf("pool replay rebuilt %d devices, want %d", st.Devices, devices)
	}
}
