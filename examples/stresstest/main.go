// Command stresstest: the TASS development-time stress study (Sect. 4.7) combined
// with the IMEC load-balancing recovery (Sect. 4.5): a CPU eater starves the
// TV's video pipeline; without balancing, frames degrade; with the balancer,
// the pipeline migrates to the second processor and quality recovers.
//
// Run with:
//
//	go run ./examples/stresstest
package main

import (
	"fmt"

	"trader/internal/event"
	"trader/internal/loadbal"
	"trader/internal/sim"
	"trader/internal/stress"
	"trader/internal/tvsim"
)

func run(balance bool) {
	k := sim.NewKernel(11)
	tv := tvsim.New(k, tvsim.Config{})
	tv.PressKey(tvsim.KeyPower)

	var qSum float64
	var qN int
	tv.Bus().Subscribe("frame", func(e event.Event) {
		q, _ := e.Get("quality")
		qSum += q
		qN++
	})

	var b *loadbal.Balancer
	if balance {
		b = loadbal.New(k, tv.CPUs(), loadbal.Policy{CheckEvery: 100 * sim.Millisecond})
		b.Start()
	}

	k.Run(sim.Second)
	eater := stress.NewCPUEater(tv.CPUs()[0], 0.5, 0)
	eater.Activate()
	k.Run(6 * sim.Second)
	eater.Deactivate()
	k.Run(8 * sim.Second)

	var missed, completed uint64
	for _, c := range tv.CPUs() {
		missed += c.Stats().DeadlineMisses
		completed += c.Stats().JobsCompleted
	}
	label := "without balancer"
	if balance {
		label = "with balancer   "
	}
	fmt.Printf("%s: mean quality %.3f, %d/%d deadline misses", label, qSum/float64(qN), missed, completed)
	if b != nil {
		for _, m := range b.Migrations {
			fmt.Printf(", migrated %s %s→%s at %v", m.Task, m.From, m.To, m.At)
		}
	}
	fmt.Println()
}

func main() {
	fmt.Println("CPU eater takes 50% of cpu0 from t=1s to t=7s; video pipeline needs 45%")
	run(false)
	run(true)
}
