// Command quickstart: the smallest complete awareness loop.
//
// A toy SUO (a thermostat whose sensor can be corrupted) is monitored
// against a two-line specification model. A fault is injected, the monitor
// detects the deviation, and a recovery handler repairs the SUO.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/wire"
)

func main() {
	k := sim.NewKernel(1)

	// --- The SUO: a heater controller that reports its setpoint. ---
	bus := event.NewBus()
	setpoint, corruption := 20.0, 0.0
	var seq uint64
	report := func() {
		seq++
		bus.Publish(event.Event{
			Kind: event.Output, Name: "thermo", At: k.Now(), Seq: seq,
		}.With("setpoint", setpoint+corruption))
	}
	setTo := func(v float64) {
		setpoint = v
		seq++
		bus.Publish(event.Event{
			Kind: event.Input, Name: "set", At: k.Now(), Seq: seq,
		}.With("v", v))
		report()
	}

	// --- The specification model: setpoint follows the last "set". ---
	r := statemachine.NewRegion("thermo")
	r.Add(&statemachine.State{
		Name: "tracking",
		Transitions: []statemachine.Transition{
			{Event: "set", Action: func(c *statemachine.Context) {
				v, _ := c.Event.Get("v")
				c.Set("setpoint", v)
			}},
		},
	})
	model := statemachine.MustModel("thermo-spec", k, r)

	// --- The awareness monitor (Fig. 2, in-process). ---
	mon, err := core.NewMonitor(k, model, core.Configuration{
		Observables: []core.Observable{{
			Name: "setpoint", EventName: "thermo", ValueName: "setpoint",
			ModelVar: "setpoint", Threshold: 0.5, Tolerance: 1,
		}},
	})
	if err != nil {
		panic(err)
	}
	mon.OnError(func(rep wire.ErrorReport) {
		fmt.Printf("[%v] detected: %s (expected %.1f, actual %.1f)\n",
			rep.At, rep.Observable, rep.Expected, rep.Actual)
		// Recovery: reset the corrupted sensor path.
		corruption = 0
		mon.ResetObservable("setpoint")
		report()
		fmt.Printf("[%v] recovered: corruption cleared\n", k.Now())
	})
	if err := mon.Start(); err != nil {
		panic(err)
	}
	mon.AttachBus(bus)

	// --- A healthy run... ---
	setTo(21)
	k.Run(sim.Second)
	setTo(22)
	k.Run(2 * sim.Second)

	// --- ...then a fault: the sensor path starts reading 5 degrees high. ---
	k.Schedule(0, func() {
		corruption = 5
		fmt.Printf("[%v] fault injected: sensor skew +5\n", k.Now())
		report() // first deviating observation (tolerated)
		report() // second consecutive deviation → error → recovery
	})
	k.Run(3 * sim.Second)

	st := mon.Stats()
	fmt.Printf("done: %d observations, %d comparisons, %d errors, corruption now %.0f\n",
		st.OutputsSeen, st.Comparisons, st.Errors, corruption)
}
