// Command tvfault: the paper's headline scenario end to end on the TV simulator.
//
//  1. A teletext sync-loss fault is injected (Sect. 4.3's case study).
//  2. The awareness monitor detects it twice over: the mode-consistency
//     checker sees txt-disp=visible while txt-acq=searching, and the
//     model-based comparator sees stale pages.
//  3. Spectrum-based diagnosis (Sect. 4.4) localizes the faulty block in a
//     synthetic instrumented build of the TV control software.
//  4. The recovery manager (Sect. 4.5) restarts the teletext unit; pages
//     flow again.
//
// Run with:
//
//	go run ./examples/tvfault
package main

import (
	"fmt"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/modecheck"
	"trader/internal/recovery"
	"trader/internal/sim"
	"trader/internal/spectrum"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

func main() {
	k := sim.NewKernel(7)
	cfg := tvsim.Config{}
	tv := tvsim.New(k, cfg)

	// Spec model + monitor.
	model := tvsim.BuildSpecModel(k, cfg)
	mon, err := core.NewMonitor(k, model, core.Configuration{
		Observables: []core.Observable{
			{Name: "teletext-fresh", EventName: "teletext", ValueName: "fresh",
				ModelVar: "teletextFresh", Tolerance: 2, EnableVar: "teletext"},
		},
	})
	if err != nil {
		panic(err)
	}
	if err := mon.Start(); err != nil {
		panic(err)
	}
	mon.AttachBus(tv.Bus())

	// Mode-consistency checker (Sect. 4.3 / Sözer et al.).
	checker := modecheck.NewChecker(k, modecheck.ForbidPair("teletext-sync",
		"txt-disp", "visible", "txt-acq", "searching"))
	checker.AttachBus(tv.Bus())
	checker.OnViolation(func(v modecheck.Violation) {
		fmt.Printf("[%v] mode checker: %s\n", v.At, v)
	})

	// Watch teletext page freshness for the narrative.
	var stale, freshAfterRecovery int
	var recovered bool

	// Recovery unit: restarting teletext repairs the sync.
	mgr := recovery.NewManager(k)
	mgr.AddUnit(&recovery.Unit{
		Name:           "teletext",
		RestartLatency: 100 * sim.Millisecond,
		OnRestart: func() {
			tv.Injector().Repair("sync")
			mon.ResetObservable("teletext-fresh")
			recovered = true
			fmt.Printf("[%v] recovery: teletext unit restarted\n", k.Now())
		},
	})
	mon.OnError(func(r wire.ErrorReport) {
		fmt.Printf("[%v] comparator: %s deviates (consecutive %d)\n", r.At, r.Observable, r.Consecutive)
		_ = mgr.Recover("teletext", recovery.UnitOnly)
	})

	tv.Bus().Subscribe("teletext", func(e event.Event) {
		if f, _ := e.Get("fresh"); f == 0 {
			stale++
		} else if recovered {
			freshAfterRecovery++
		}
	})

	// Scenario: watch TV, open teletext, suffer a sync loss.
	tv.PressKey(tvsim.KeyPower)
	tv.PressKey(tvsim.KeyText)
	tv.Injector().Schedule(faults.Fault{
		ID: "sync", Kind: faults.SyncLoss, Target: "teletext", At: 2 * sim.Second,
	})
	fmt.Println("scenario: power on, teletext on, sync loss at 2s")
	k.Run(5 * sim.Second)

	fmt.Printf("result: %d stale pages seen, %d fresh pages after recovery, %d recovery actions\n",
		stale, freshAfterRecovery, mgr.RecoveriesCompleted)

	// Diagnosis: which code block is to blame? (Sect. 4.4)
	fmt.Println("\ndiagnosis on the instrumented control software:")
	p := spectrum.GenerateTVProgram(42, 60000)
	fault := p.FaultInFeature("teletext")
	matrix := p.RunScenario(spectrum.PaperScenario(), fault)
	rank, _ := matrix.RankOf(fault, spectrum.Ochiai)
	fmt.Printf("  27-press scenario, %d blocks executed, %d failing presses\n",
		matrix.CoveredBlocks(), matrix.Failures())
	fmt.Printf("  injected fault block %d ranks #%d under Ochiai (paper: #1)\n", fault, rank)
}
