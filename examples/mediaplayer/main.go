// Command mediaplayer: awareness on a second SUO (the paper's MPlayer experiments,
// Sect. 5), monitoring a correctness property (A/V sync drift) and a
// performance property (rendered frame rate / stalls) at the same time.
//
// Run with:
//
//	go run ./examples/mediaplayer
package main

import (
	"fmt"

	"trader/internal/core"
	"trader/internal/faults"
	"trader/internal/mediaplayer"
	"trader/internal/sim"
	"trader/internal/wire"
)

func main() {
	k := sim.NewKernel(3)
	p := mediaplayer.New(k, mediaplayer.Config{})
	model := mediaplayer.BuildSpecModel(k, mediaplayer.Config{})

	mon, err := core.NewMonitor(k, model, core.Configuration{
		Observables: []core.Observable{
			{Name: "fps", EventName: "av", ValueName: "fps", ModelVar: "fps",
				Threshold: 5, Tolerance: 1, EnableVar: "playing",
				MaxSilence: 500 * sim.Millisecond},
			{Name: "av-drift", EventName: "av", ValueName: "drift", ModelVar: "drift",
				Threshold: 80, Tolerance: 1, EnableVar: "playing"},
		},
	})
	if err != nil {
		panic(err)
	}
	mon.OnError(func(r wire.ErrorReport) {
		kind := "correctness"
		if r.Observable == "fps" {
			kind = "performance"
		}
		fmt.Printf("[%v] %s error: %s expected %.1f, actual %.1f\n",
			r.At, kind, r.Observable, r.Expected, r.Actual)
	})
	if err := mon.Start(); err != nil {
		panic(err)
	}
	mon.AttachBus(p.Bus())

	fmt.Println("playing; demuxer stall at 2s (2s long), audio clock drift from 6s")
	p.Injector().Schedule(faults.Fault{
		ID: "stall", Kind: faults.Deadlock, Target: "demuxer",
		At: 2 * sim.Second, Duration: 2 * sim.Second,
	})
	p.Injector().Schedule(faults.Fault{
		ID: "drift", Kind: faults.ValueCorruption, Target: "audio-clock",
		At: 6 * sim.Second, Duration: 3 * sim.Second, Param: 1.15,
	})
	p.Do(mediaplayer.CmdPlay)
	k.Run(10 * sim.Second)
	p.Do(mediaplayer.CmdStop)

	st := mon.Stats()
	fmt.Printf("done: %d observations, %d comparisons, %d errors reported\n",
		st.OutputsSeen, st.Comparisons, st.Errors)
}
