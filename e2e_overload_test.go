package trader_test

// End-to-end test of the overload plane (ISSUE 7): a flooding client and a
// shard-stalling client gang up on one shard of a live, journaling
// ingestion daemon while a baseline fleet streams through the other
// shards. The daemon must (1) shed in tier order — observations first,
// control traffic never — (2) keep the baseline shards' ingest-to-dispatch
// p99 inside the SLO while the flooded shard saturates, (3) conserve
// stats: every observation sent is either dispatched or counted shed, and
// (4) journal shed markers write-ahead so a replayed pool reports exactly
// the live rollup, refused frames included, without re-seeing them.

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

// ovlClient is one flow-controlled remote SUO: a DialFlow connection plus a
// reader goroutine that books replenishment grants (heartbeat echoes and
// mid-stream TypeCredit frames), error frames and control pushes.
type ovlClient struct {
	id      string
	conn    *wire.Conn
	credits atomic.Int64
	echoes  chan sim.Time
	reports atomic.Uint64
	ctrls   atomic.Uint64
	sent    atomic.Uint64 // observation frames put on the wire
}

func dialOvl(t *testing.T, addr, id string, wantWindow uint32) *ovlClient {
	t.Helper()
	conn, _, granted, err := wire.DialFlow(addr, id, wire.CodecBinary, wire.DurFsync)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if granted != wantWindow {
		t.Fatalf("%s: hello granted %d credits, want %d", id, granted, wantWindow)
	}
	c := &ovlClient{id: id, conn: conn, echoes: make(chan sim.Time, 64)}
	c.credits.Store(int64(granted))
	go func() {
		for {
			msg, err := conn.Decode()
			if err != nil {
				return
			}
			switch msg.Type {
			case wire.TypeError:
				c.reports.Add(1)
			case wire.TypeControl:
				c.ctrls.Add(1)
			case wire.TypeCredit:
				c.credits.Add(int64(msg.Credits))
			case wire.TypeHeartbeat:
				c.credits.Add(int64(msg.Credits))
				c.echoes <- msg.At
			}
		}
	}()
	return c
}

// sendObs streams n observations at 1ms spacing from fromMs, honoring the
// credit window: it never puts a frame on the wire without a local credit,
// so the server's balance (always ≥ ours) cannot hit a violation.
func (c *ovlClient) sendObs(t *testing.T, n int, fromMs int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		deadline := time.Now().Add(10 * time.Second)
		for c.credits.Load() <= 0 {
			if time.Now().After(deadline) {
				t.Fatalf("%s: credit window never replenished", c.id)
			}
			time.Sleep(time.Millisecond)
		}
		c.credits.Add(-1)
		at := sim.Time(fromMs+int64(i)) * sim.Millisecond
		ev := event.Event{Kind: event.Output, Name: "out", Source: c.id, At: at}.With("x", 0)
		if err := c.conn.SendEvent(c.id, ev); err != nil {
			t.Fatalf("%s: send: %v", c.id, err)
		}
		c.sent.Add(1)
	}
}

// drain heartbeats at atMs and waits for its echo — the flush barrier that
// also carries the replenishment grant. Near saturation the heartbeat
// itself may be tier-2 shed (no echo); drain retries with a nudged
// timestamp until one lands, exactly like a paced real client would.
func (c *ovlClient) drain(t *testing.T, atMs int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for try := int64(0); ; try++ {
		at := sim.Time(atMs+try) * sim.Millisecond
		if err := c.conn.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: c.id, At: at}); err != nil {
			t.Fatalf("%s: heartbeat: %v", c.id, err)
		}
		for {
			select {
			case got := <-c.echoes:
				if got >= at {
					return
				}
			case <-time.After(2 * time.Second):
				if time.Now().After(deadline) {
					t.Fatalf("%s: no heartbeat echo after %d attempts", c.id, try+1)
				}
				goto retry
			}
		}
	retry:
	}
}

func TestE2EOverloadShedsInTiersAndHoldsSLO(t *testing.T) {
	const (
		shards  = 4
		queue   = 64                     // small on purpose: overrunable by one window
		window  = 512                    // credit window > queue: bursts can overflow
		stall   = 200 * sim.Second       // per-heartbeat clock jump ≈ 20k timer steps
		bursts  = 4                      // flood rounds, each one full window
		slo     = 500 * time.Millisecond // baseline-shard p99 bound (generous for CI)
		nBase   = 9
		baseObs = 100 // per cycle, 3 cycles each
		nCycles = 3
	)

	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: shards, Queue: queue})
	srv := &fleet.Server{Pool: pool, Factory: fleet.LightMonitorFactory(),
		HelloTimeout: 5 * time.Second, Journal: jw,
		CreditWindow: window, ShedObservationsAt: 0.75, ShedHeartbeatsAt: 0.95}
	addr := "unix:" + filepath.Join(t.TempDir(), "ovl.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	// Mine device IDs by shard: staller and flooder share a victim shard;
	// the baseline fleet spreads over the other shards (FNV routing is
	// deterministic, so we just probe candidates).
	mine := func(prefix string, ok func(shard int) bool) string {
		for i := 0; ; i++ {
			id := fmt.Sprintf("%s-%03d", prefix, i)
			if ok(pool.ShardOf(id)) {
				return id
			}
		}
	}
	stallerID := mine("ovl-stall", func(int) bool { return true })
	victim := pool.ShardOf(stallerID)
	flooderID := mine("ovl-flood", func(s int) bool { return s == victim })
	baseIDs := make([]string, 0, nBase)
	for i := 0; len(baseIDs) < nBase; i++ {
		id := fmt.Sprintf("ovl-base-%03d", i)
		if pool.ShardOf(id) != victim {
			baseIDs = append(baseIDs, id)
		}
	}

	staller := dialOvl(t, addr, stallerID, window)
	flooder := dialOvl(t, addr, flooderID, window)
	bases := make([]*ovlClient, nBase)
	for i, id := range baseIDs {
		bases[i] = dialOvl(t, addr, id, window)
	}
	waitFor(t, "fleet registered", func() bool { return pool.Size() == 2+nBase })

	// Baseline fleet: paced steady streaming on the healthy shards, running
	// concurrently with the flood so its latency is measured under fire.
	var wg sync.WaitGroup
	for _, c := range bases {
		wg.Add(1)
		go func(c *ovlClient) {
			defer wg.Done()
			for cycle := 0; cycle < nCycles; cycle++ {
				from := int64(1 + cycle*(baseObs+10))
				c.sendObs(t, baseObs, from)
				c.drain(t, from+baseObs)
				time.Sleep(20 * time.Millisecond)
			}
		}(c)
	}

	// The attack: each round, the staller's heartbeat jumps its clock 200
	// virtual seconds — tens of thousands of timer steps executed on the
	// victim shard goroutine — and the flooder pours a full credit window
	// into the stalled shard's queue. The queue (64) is a fraction of the
	// window (512), so admission control must shed; the flooder stays
	// credit-compliant throughout, proving flow control alone does not
	// protect a shard (that is the shed tier's job) while replenishment
	// keeps the compliant flooder streaming round after round.
	for burst := 0; burst < bursts; burst++ {
		at := sim.Time(burst+1) * stall
		if err := staller.conn.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: stallerID, At: at}); err != nil {
			t.Fatalf("staller heartbeat: %v", err)
		}
		time.Sleep(10 * time.Millisecond) // let the advance occupy the shard
		flooder.sendObs(t, window, int64(1+burst*(window+10)))
		if burst == 1 {
			// Mid-flood, the control plane must cut through: a push to the
			// device on the most pressured shard, never shed, never queued.
			if err := srv.Control(stallerID, wire.CtrlReset); err != nil {
				t.Fatalf("control push during flood: %v", err)
			}
		}
		flooder.drain(t, int64(1+burst*(window+10)+window))
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	staller.drain(t, int64((bursts+1)*200_000))
	waitFor(t, "control push delivered", func() bool { return staller.ctrls.Load() >= 1 })

	// Everything is flushed (every client holds a final echo). Close the
	// clients and read the books.
	staller.conn.Close()
	flooder.conn.Close()
	for _, c := range bases {
		c.conn.Close()
	}
	waitFor(t, "disconnects observed", func() bool {
		return srv.Stats().Disconnected == uint64(2+nBase)
	})

	ro := pool.Rollup()
	cs := srv.Stats()

	// Tier ordering: observations shed (the queue was overrun four times),
	// control never — and nothing punched through out of order.
	if ro.ShedObservations == 0 {
		t.Fatalf("no observations shed: %d frames through a %d-deep queue never built pressure", flooder.sent.Load(), queue)
	}
	if ro.ShedControl != 0 {
		t.Fatalf("control traffic shed %d times — the never-shed tier broke", ro.ShedControl)
	}
	if ro.ShedHeartbeats > ro.ShedObservations {
		t.Fatalf("heartbeats shed more than observations (%d > %d): tier order inverted",
			ro.ShedHeartbeats, ro.ShedObservations)
	}

	// The compliant flooder was never disconnected: flow control held (its
	// shed frames still consumed credits), and replenishment kept it
	// streaming — every burst after the first ran on echoed grants.
	if cs.CreditViolations != 0 {
		t.Fatalf("%d credit violations from compliant clients", cs.CreditViolations)
	}
	wantSent := uint64(bursts * window)
	if got := flooder.sent.Load(); got != wantSent {
		t.Fatalf("flooder sent %d frames, want %d — replenishment stalled it", got, wantSent)
	}

	// Stats conservation, sheds included: every observation put on the wire
	// was either dispatched through a monitor or counted refused. Nothing
	// vanished, nothing was double-counted.
	var sent uint64
	for _, c := range append([]*ovlClient{staller, flooder}, bases...) {
		sent += c.sent.Load()
	}
	if ro.Dispatched+ro.ShedObservations != sent || ro.Dropped != 0 || ro.Quarantined != 0 {
		t.Fatalf("conservation broke: sent %d != dispatched %d + shed %d (dropped %d, quarantined %d)",
			sent, ro.Dispatched, ro.ShedObservations, ro.Dropped, ro.Quarantined)
	}
	if cs.Frames != ro.Dispatched {
		t.Fatalf("server dispatched %d observation frames, pool counted %d", cs.Frames, ro.Dispatched)
	}

	// The latency SLO: the flooded shard may be arbitrarily slow — that is
	// what shedding is for — but every baseline shard's p99 stays bounded.
	for i := 0; i < pool.Shards(); i++ {
		s := pool.ShardLatency(i)
		if s.Count() == 0 {
			continue
		}
		p99 := s.Quantile(0.99)
		if i == victim {
			t.Logf("victim shard %d: %d admitted, p99 %v (unbounded by design)", i, s.Count(), p99)
			continue
		}
		if p99 > slo {
			t.Fatalf("baseline shard %d p99 = %v, over the %v SLO — the flood leaked across shards", i, p99, slo)
		}
	}

	// Replay: tear everything down and rebuild a pool from the journal. The
	// shed-marker records must restore the refused-frame counters without
	// the refused frames themselves, so the replayed rollup — monitor
	// counters, dispatch totals, shed tiers — is byte-for-byte the live one.
	srv.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	pool.Stop()

	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	rec := fleet.NewPool(fleet.Options{Shards: shards, Queue: queue})
	defer rec.Stop()
	st, err := rec.Replay(jr, fleet.LightMonitorFactory())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if jr.Torn() {
		t.Fatal("cleanly closed journal reads as torn")
	}
	if st.Sheds == 0 {
		t.Fatalf("replay saw no shed markers (stats %s), but the live run shed %d observations", st, ro.ShedObservations)
	}
	if st.Frames != int(ro.Dispatched) {
		t.Fatalf("replay re-dispatched %d frames, live pool dispatched %d — shed frames leaked into the journal", st.Frames, ro.Dispatched)
	}
	if st.Devices != 2+nBase {
		t.Fatalf("replay rebuilt %d devices, want %d", st.Devices, 2+nBase)
	}
	if got := rec.Rollup(); got != ro {
		t.Fatalf("replayed rollup %+v != live rollup %+v", got, ro)
	}
}
