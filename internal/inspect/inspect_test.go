package inspect

import (
	"testing"
	"testing/quick"
)

func TestLikelihoodLinearChain(t *testing.T) {
	g := NewGraph("main")
	g.AddEdge("main", "a", 0.5)
	g.AddEdge("a", "b", 0.5)
	like := g.Likelihood()
	if like["main"] != 1 {
		t.Fatal("entry likelihood must be 1")
	}
	if like["a"] != 0.5 {
		t.Fatalf("like[a] = %v, want 0.5", like["a"])
	}
	if like["b"] != 0.25 {
		t.Fatalf("like[b] = %v, want 0.25", like["b"])
	}
}

func TestLikelihoodNoisyOrJoin(t *testing.T) {
	g := NewGraph("main")
	g.AddEdge("main", "a", 0.5)
	g.AddEdge("main", "b", 0.5)
	g.AddEdge("a", "join", 1.0)
	g.AddEdge("b", "join", 1.0)
	like := g.Likelihood()
	// P(join) = 1 - (1-0.5)(1-0.5) = 0.75
	if got := like["join"]; got < 0.7499 || got > 0.7501 {
		t.Fatalf("like[join] = %v, want 0.75", got)
	}
}

func TestLikelihoodCycleConverges(t *testing.T) {
	g := NewGraph("main")
	g.AddEdge("main", "loop", 0.9)
	g.AddEdge("loop", "loop", 0.9) // self-loop
	like := g.Likelihood()
	if like["loop"] < 0.9 || like["loop"] > 1.0 {
		t.Fatalf("like[loop] = %v, want within [0.9, 1]", like["loop"])
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph("main")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	g.AddEdge("main", "x", 1.5)
}

func TestRankBySeverity(t *testing.T) {
	ws := []Warning{
		{ID: 0, Severity: SevLow},
		{ID: 1, Severity: SevHigh},
		{ID: 2, Severity: SevMedium},
		{ID: 3, Severity: SevHigh},
	}
	ranked := RankBySeverity(ws)
	if ranked[0].ID != 1 || ranked[1].ID != 3 || ranked[2].ID != 2 || ranked[3].ID != 0 {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestRankByLikelihood(t *testing.T) {
	like := map[string]float64{"hot": 0.9, "cold": 0.01}
	ws := []Warning{
		{ID: 0, Node: "cold", Severity: SevHigh},  // 3×0.01 = 0.03
		{ID: 1, Node: "hot", Severity: SevLow},    // 1×0.9  = 0.9
		{ID: 2, Node: "hot", Severity: SevMedium}, // 2×0.9  = 1.8
	}
	ranked := RankByLikelihood(ws, like)
	if ranked[0].ID != 2 || ranked[1].ID != 1 || ranked[2].ID != 0 {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestPrecisionAt(t *testing.T) {
	ws := []Warning{
		{ID: 0, TrueFault: true},
		{ID: 1, TrueFault: false},
		{ID: 2, TrueFault: true},
	}
	if p := PrecisionAt(ws, 1); p != 1 {
		t.Fatalf("P@1 = %v", p)
	}
	if p := PrecisionAt(ws, 2); p != 0.5 {
		t.Fatalf("P@2 = %v", p)
	}
	if p := PrecisionAt(ws, 10); p < 0.66 || p > 0.67 {
		t.Fatalf("P@10 (clamped) = %v", p)
	}
	if PrecisionAt(nil, 3) != 0 || PrecisionAt(ws, 0) != 0 {
		t.Fatal("degenerate cases")
	}
}

// TestPrioritizationBeatsBaseline is E10's claim: ranking warnings by
// severity × execution likelihood yields better precision at the top of the
// list than the raw severity ordering.
func TestPrioritizationBeatsBaseline(t *testing.T) {
	var sumPrio, sumBase float64
	const runs = 10
	for seed := int64(0); seed < runs; seed++ {
		sp := GenerateProgram(seed, 6, 30, 200)
		like := sp.Graph.Likelihood()
		prio := RankByLikelihood(sp.Warnings, like)
		base := RankBySeverity(sp.Warnings)
		sumPrio += PrecisionAt(prio, 20)
		sumBase += PrecisionAt(base, 20)
	}
	if sumPrio <= sumBase {
		t.Fatalf("prioritized P@20 %v not better than baseline %v", sumPrio/runs, sumBase/runs)
	}
}

func TestGenerateProgramDeterministic(t *testing.T) {
	a := GenerateProgram(5, 4, 10, 50)
	b := GenerateProgram(5, 4, 10, 50)
	if len(a.Warnings) != len(b.Warnings) {
		t.Fatal("nondeterministic generation")
	}
	for i := range a.Warnings {
		if a.Warnings[i] != b.Warnings[i] {
			t.Fatal("nondeterministic warnings")
		}
	}
	if len(a.Graph.Nodes()) != 4*10+1 {
		t.Fatalf("nodes = %d", len(a.Graph.Nodes()))
	}
}

// Property: likelihoods are probabilities, and deeper layers are (weakly)
// less likely on average.
func TestPropertyLikelihoodBounds(t *testing.T) {
	f := func(seed int64) bool {
		sp := GenerateProgram(seed%1000, 5, 8, 10)
		like := sp.Graph.Likelihood()
		for _, v := range like {
			if v < 0 || v > 1 {
				return false
			}
		}
		return like["main"] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
