// Package inspect implements inspection-warning prioritization by static
// profiling (Sect. 4.7, after Boogerd & Moonen, "Prioritizing software
// inspection results using static profiling"): warnings from a static
// analyser (QA-C in the paper) are ranked by the *execution likelihood* of
// the code they flag, computed from the program's call graph and branch
// probabilities, so inspection effort goes to warnings that matter first.
package inspect

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a program call/control-flow graph with branch probabilities.
type Graph struct {
	nodes map[string]*Node
	order []string
	entry string
}

// Node is one program location (function or block).
type Node struct {
	Name string
	// Edges are outgoing calls/branches with their taken-probability.
	Edges []Edge
}

// Edge is a probabilistic control transfer.
type Edge struct {
	To   string
	Prob float64
}

// NewGraph creates a graph rooted at entry.
func NewGraph(entry string) *Graph {
	g := &Graph{nodes: make(map[string]*Node), entry: entry}
	g.ensure(entry)
	return g
}

func (g *Graph) ensure(name string) *Node {
	if n, ok := g.nodes[name]; ok {
		return n
	}
	n := &Node{Name: name}
	g.nodes[name] = n
	g.order = append(g.order, name)
	return n
}

// AddEdge records a transfer from→to taken with probability p.
func (g *Graph) AddEdge(from, to string, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("inspect: probability %v out of range", p))
	}
	f := g.ensure(from)
	g.ensure(to)
	f.Edges = append(f.Edges, Edge{To: to, Prob: p})
}

// Nodes returns node names in insertion order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Likelihood computes each node's execution likelihood from the entry by
// fixed-point propagation: entry has likelihood 1; a node's likelihood is
// the probability at least one incoming path executes, approximated with
// iterative relaxation (sufficient for ranking; exact path enumeration is
// exponential). Cycles converge because probabilities are ≤ 1 and the
// update is monotone and bounded.
func (g *Graph) Likelihood() map[string]float64 {
	// Reverse adjacency: for each node, its incoming edges.
	incoming := map[string][]struct {
		from string
		p    float64
	}{}
	for _, name := range g.order {
		for _, e := range g.nodes[name].Edges {
			incoming[e.To] = append(incoming[e.To], struct {
				from string
				p    float64
			}{name, e.Prob})
		}
	}
	like := map[string]float64{g.entry: 1}
	const iterations = 100
	for it := 0; it < iterations; it++ {
		changed := false
		for _, name := range g.order {
			if name == g.entry {
				continue
			}
			// Recompute from scratch each sweep: noisy-or over the current
			// estimates of all predecessors. The update is monotone from an
			// all-zero start, so cycles converge to the least fixed point.
			miss := 1.0
			for _, in := range incoming[name] {
				miss *= 1 - like[in.from]*in.p
			}
			v := 1 - miss
			if v > like[name]+1e-12 {
				like[name] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return like
}

// Severity levels of static-analysis warnings (QA-C style).
const (
	SevLow    = 1
	SevMedium = 2
	SevHigh   = 3
)

// Warning is one static-analysis finding.
type Warning struct {
	ID       int
	Node     string
	Severity int
	// TrueFault marks ground truth: this warning corresponds to a real
	// defect (known in synthetic programs; the evaluation metric).
	TrueFault bool
}

// RankBySeverity orders warnings by severity only (the unprioritized
// baseline: what a developer gets from the raw tool output).
func RankBySeverity(ws []Warning) []Warning {
	out := append([]Warning(nil), ws...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RankByLikelihood orders warnings by severity × execution likelihood —
// the paper's prioritization.
func RankByLikelihood(ws []Warning, like map[string]float64) []Warning {
	out := append([]Warning(nil), ws...)
	score := func(w Warning) float64 { return float64(w.Severity) * like[w.Node] }
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := score(out[i]), score(out[j])
		if si != sj {
			return si > sj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// PrecisionAt returns the fraction of the first k warnings that are true
// faults.
func PrecisionAt(ranked []Warning, k int) float64 {
	if k <= 0 || len(ranked) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	for _, w := range ranked[:k] {
		if w.TrueFault {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// SyntheticProgram bundles a generated graph with warnings and ground truth.
type SyntheticProgram struct {
	Graph    *Graph
	Warnings []Warning
}

// GenerateProgram builds a layered synthetic program: hot layers near the
// entry execute almost always; deep layers (error handling, rare
// configuration paths) almost never. Warnings are scattered uniformly;
// a warning is a true fault when its code actually executes in practice
// (defects in dead/rare code do not bite users — the premise that makes
// likelihood-based prioritization work).
func GenerateProgram(seed int64, layers, nodesPerLayer, warnings int) *SyntheticProgram {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph("main")
	var prev []string
	cur := []string{"main"}
	name := func(l, i int) string { return fmt.Sprintf("n%d_%d", l, i) }
	for l := 1; l <= layers; l++ {
		prev = cur
		cur = nil
		for i := 0; i < nodesPerLayer; i++ {
			n := name(l, i)
			cur = append(cur, n)
			// Each node is called from 1-2 nodes of the previous layer with
			// branch probability 0.5, so likelihood decays geometrically
			// with depth (deep error paths rarely run).
			from := prev[rng.Intn(len(prev))]
			g.AddEdge(from, n, 0.5)
			if rng.Float64() < 0.3 {
				g.AddEdge(prev[rng.Intn(len(prev))], n, 0.25)
			}
		}
	}
	like := g.Likelihood()
	sp := &SyntheticProgram{Graph: g}
	nodes := g.Nodes()
	for w := 0; w < warnings; w++ {
		node := nodes[rng.Intn(len(nodes))]
		sev := SevLow + rng.Intn(3)
		// Ground truth: the defect manifests iff the code runs often enough
		// to be hit in the field.
		manifest := rng.Float64() < like[node]
		sp.Warnings = append(sp.Warnings, Warning{
			ID: w, Node: node, Severity: sev, TrueFault: manifest,
		})
	}
	return sp
}
