// Package trace is the frame-lifecycle tracing plane (ARCHITECTURE.md §6):
// an always-on, sampled tracer that turns "why was this device's escalation
// 40 ms late?" into a span chain instead of a log-correlation exercise.
//
// One in every SampleN observation frames admitted at ingest gets a trace
// context — a fleet-unique trace ID plus the parent span ID — and every
// stage it passes through (ingest, credit/shed decision, journal append,
// shard dispatch, monitor step, control action, diagnose fold, federation
// uplink/ack) emits a fixed-size span record into a lock-free per-shard
// ring buffer, the flight-recorder idiom of hwmon.FlightRecorder rebuilt
// for hot paths: recording is a handful of atomic stores, never a lock,
// never an allocation. Control and escalation traffic is traced *forced*
// — always, regardless of sampling — into a dedicated ring whose
// evictions are counted (ForcedOverflow), because losing the trace of a
// restart is losing the explanation the plane exists to give.
//
// The context crosses process boundaries on the wire (wire.TraceContext,
// §2.7 flags bit8): control pushes carry it down to the device, whose ack
// echoes it back; edge daemons attach their current tail-latency exemplar
// context to rollup frames so the aggregator's view of a p999 spike
// resolves to the edge-side span chain that produced it.
package trace

import (
	"encoding/binary"
	"sort"
	"sync/atomic"
	"time"

	"trader/internal/wire"
)

// Kind names the lifecycle stage a span measures. The taxonomy is
// normative (ARCHITECTURE.md §6.2): exporters and the /trace endpoint
// render these names, and tests assert on them.
type Kind uint8

// The span taxonomy, one Kind per stage of a frame's lifecycle.
const (
	KindIngest   Kind = iota + 1 // server read loop: decode → dispatch handoff
	KindCredit                   // flow-control decision: grant or violation
	KindShed                     // load-shedding decision: frame dropped, tier in hand
	KindJournal                  // write-ahead append (+ its share of the fsync batch)
	KindDispatch                 // shard-queue wait: enqueue → shard goroutine pickup
	KindMonitor                  // the monitor step itself, on the shard goroutine
	KindControl                  // a control-ladder action pushed to the device
	KindDiagnose                 // a diagnosis evidence fold on the engine goroutine
	KindUplink                   // edge → aggregator rollup-delta flush
	KindAck                      // an acknowledgement completing a traced exchange
)

var kindNames = [...]string{"", "ingest", "credit", "shed", "journal",
	"dispatch", "monitor", "control", "diagnose", "uplink", "ack"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Span is one completed lifecycle stage. Records are fixed-size in the
// rings (the device ID is truncated to 32 bytes there); this is the
// assembled form snapshots and exports hand out.
type Span struct {
	TraceID uint64 // the frame's trace identity, shared by the whole chain
	SpanID  uint64 // this span
	Parent  uint64 // the span this one is causally under; 0 for a root
	Kind    Kind
	Forced  bool   // recorded via the forced (control/escalation) ring
	Shard   int    // pool shard, or -1 for unsharded planes
	Device  string // owning device, when there is one
	Start   int64  // wall-clock start, Unix nanoseconds
	Dur     int64  // duration in nanoseconds
}

// devWords bounds the device ID retained per slot: 4 little-endian words,
// 32 bytes. Longer IDs are truncated — a flight recorder trades fidelity
// at the margin for a hot path with no allocation.
const devWords = 4

// slot is one fixed-size ring entry. Every field is atomic so concurrent
// writers and snapshot readers race benignly under -race: the seq field is
// a seqlock stamp — odd while a writer owns the slot, even when published
// — and a reader discards any slot whose stamp moved while it copied.
type slot struct {
	seq                 atomic.Uint64
	trace, span, parent atomic.Uint64
	// meta packs kind (bits 0–7), forced (bit 8), device length (bits
	// 16–23) and shard+1 (bits 32–63, so shard -1 is representable).
	meta       atomic.Uint64
	start, dur atomic.Uint64
	dev        [devWords]atomic.Uint64
}

// Ring is a lock-free bounded span buffer: writers claim slots from a
// monotone head counter and overwrite the oldest records forever, readers
// snapshot without stopping the writers. Safe for any number of concurrent
// writers and readers.
type Ring struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64
}

// NewRing creates a ring retaining capacity spans (rounded up to a power
// of two, minimum 16).
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Cap reports the ring's slot count.
func (r *Ring) Cap() int { return len(r.slots) }

// Written reports how many spans have ever been put into the ring.
func (r *Ring) Written() uint64 { return r.head.Load() }

// Evicted reports how many spans have been overwritten — every write past
// capacity laps exactly one older record, so no separate counter is
// needed. For the forced ring this is the overflow the CI soak asserts
// stays zero: an evicted control span is an unexplained escalation.
func (r *Ring) Evicted() uint64 {
	if h, n := r.head.Load(), uint64(len(r.slots)); h > n {
		return h - n
	}
	return 0
}

// put records one span. Two writers only ever collide on a slot when one
// stalls for a full ring revolution; the seqlock stamp makes even that
// race produce a discarded read, not a torn span handed to a caller.
func (r *Ring) put(s Span) {
	sl := &r.slots[(r.head.Add(1)-1)&r.mask]
	sl.seq.Add(1) // odd: writing
	sl.trace.Store(s.TraceID)
	sl.span.Store(s.SpanID)
	sl.parent.Store(s.Parent)
	id := s.Device
	if len(id) > devWords*8 {
		id = id[:devWords*8]
	}
	var b [devWords * 8]byte
	copy(b[:], id)
	for i := 0; i < devWords; i++ {
		sl.dev[i].Store(binary.LittleEndian.Uint64(b[i*8:]))
	}
	meta := uint64(s.Kind) | uint64(len(id))<<16 | uint64(uint32(s.Shard+1))<<32
	if s.Forced {
		meta |= 1 << 8
	}
	sl.meta.Store(meta)
	sl.start.Store(uint64(s.Start))
	sl.dur.Store(uint64(s.Dur))
	sl.seq.Add(1) // even: published
}

// Snapshot appends the ring's retained spans to dst, oldest first, and
// returns the extended slice. Recording continues concurrently; slots
// caught mid-write are skipped rather than returned torn.
func (r *Ring) Snapshot(dst []Span) []Span {
	head := r.head.Load()
	lo := uint64(0)
	if n := uint64(len(r.slots)); head > n {
		lo = head - n
	}
	for i := lo; i < head; i++ {
		sl := &r.slots[i&r.mask]
		for try := 0; try < 4; try++ {
			s1 := sl.seq.Load()
			if s1&1 != 0 {
				continue // a writer owns the slot right now
			}
			var s Span
			s.TraceID = sl.trace.Load()
			s.SpanID = sl.span.Load()
			s.Parent = sl.parent.Load()
			meta := sl.meta.Load()
			s.Start = int64(sl.start.Load())
			s.Dur = int64(sl.dur.Load())
			var b [devWords * 8]byte
			for j := 0; j < devWords; j++ {
				binary.LittleEndian.PutUint64(b[j*8:], sl.dev[j].Load())
			}
			if sl.seq.Load() != s1 {
				continue // overwritten while copying; retry or skip
			}
			s.Kind = Kind(meta & 0xff)
			s.Forced = meta&(1<<8) != 0
			s.Device = string(b[:(meta>>16)&0xff])
			s.Shard = int(uint32(meta>>32)) - 1
			if s.TraceID != 0 {
				dst = append(dst, s)
			}
			break
		}
	}
	return dst
}

// Context is a live trace identity flowing through one frame's lifecycle:
// Trace names the chain, Span the stage new spans should parent under.
// The zero Context means "not sampled" and makes every tracer call a
// no-op, so hot paths thread it unconditionally.
type Context struct {
	Trace uint64
	Span  uint64
}

// Live reports whether the context belongs to a sampled (or forced) trace.
func (c Context) Live() bool { return c.Trace != 0 }

// Wire converts the context for transmission; nil when not sampled, so it
// attaches to a wire.Message unconditionally.
func (c Context) Wire() *wire.TraceContext {
	if !c.Live() {
		return nil
	}
	return &wire.TraceContext{TraceID: c.Trace, Parent: c.Span}
}

// FromWire adopts a received wire context (nil-safe).
func FromWire(tc *wire.TraceContext) Context {
	if tc == nil {
		return Context{}
	}
	return Context{Trace: tc.TraceID, Span: tc.Parent}
}

// Defaults for Options.
const (
	DefaultCapacity = 4096
	DefaultSampleN  = 128
)

// Options configures a Tracer.
type Options struct {
	// Shards is the pool shard count; one sampled ring per shard. Minimum 1.
	Shards int
	// Capacity is the per-ring span retention (default DefaultCapacity).
	Capacity int
	// SampleN samples one in N observation frames at ingest (default
	// DefaultSampleN; 1 traces every frame). ≤ 0 disables sampling —
	// forced control/escalation traces still record, which is what keeps
	// the plane "always on".
	SampleN int
	// Seed perturbs the ID sequence; 0 seeds from the clock. Tests pin it
	// for reproducible IDs.
	Seed uint64
}

// Tracer is the per-daemon tracing plane: a sampling gate, a fleet-unique
// ID source, one sampled ring per pool shard and one forced ring for the
// control/escalation traffic that must never be lost. All methods are
// safe for concurrent use and all are no-ops on a nil *Tracer, so every
// subsystem takes an optional Tracer without guarding call sites.
type Tracer struct {
	sampleN uint64
	seed    uint64
	ctr     atomic.Uint64
	ids     atomic.Uint64
	rings   []*Ring
	forced  *Ring
}

// New creates a Tracer per Options.
func New(opts Options) *Tracer {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	seed := opts.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	t := &Tracer{seed: seed, forced: NewRing(opts.Capacity)}
	if opts.SampleN > 0 {
		t.sampleN = uint64(opts.SampleN)
	}
	t.rings = make([]*Ring, opts.Shards)
	for i := range t.rings {
		t.rings[i] = NewRing(opts.Capacity)
	}
	return t
}

// newID derives the next fleet-unique nonzero ID (splitmix64 over a
// seeded counter: no coordination, no duplicates within a process, and
// two daemons seeded from their own clocks will not collide in practice).
func (t *Tracer) newID() uint64 {
	x := t.seed + t.ids.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Sample is the ingest gate: every call counts one admitted observation
// frame, and one in SampleN returns a fresh root context. The zero
// Context it usually returns disarms every downstream tracer call.
func (t *Tracer) Sample() Context {
	if t == nil || t.sampleN == 0 {
		return Context{}
	}
	if t.ctr.Add(1)%t.sampleN != 0 {
		return Context{}
	}
	return Context{Trace: t.newID()}
}

// Force returns a fresh root context unconditionally — the entry point
// for control and escalation traffic, which is always traced.
func (t *Tracer) Force() Context {
	if t == nil {
		return Context{}
	}
	return Context{Trace: t.newID()}
}

// Span records one completed stage under ctx and returns the child
// context subsequent stages should record under. A dead context (or nil
// tracer) records nothing and passes through. Forced spans land in the
// dedicated forced ring regardless of shard.
func (t *Tracer) Span(ctx Context, kind Kind, shard int, device string, start time.Time, d time.Duration, forced bool) Context {
	if t == nil || !ctx.Live() {
		return ctx
	}
	id := t.newID()
	s := Span{TraceID: ctx.Trace, SpanID: id, Parent: ctx.Span, Kind: kind,
		Forced: forced, Shard: shard, Device: device,
		Start: start.UnixNano(), Dur: int64(d)}
	ring := t.forced
	if !forced {
		ring = t.rings[0]
		if shard >= 0 && shard < len(t.rings) {
			ring = t.rings[shard]
		}
	}
	ring.put(s)
	return Context{Trace: ctx.Trace, Span: id}
}

// Snapshot returns every retained span across all rings, ordered by start
// time (ties by span ID, so the order is stable).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, r := range t.rings {
		out = r.Snapshot(out)
	}
	out = t.forced.Snapshot(out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// Trace returns the retained spans of one trace ID, in start order — the
// span chain an exemplar resolves to.
func (t *Tracer) Trace(id uint64) []Span {
	all := t.Snapshot()
	out := all[:0]
	for _, s := range all {
		if s.TraceID == id {
			out = append(out, s)
		}
	}
	return out
}

// ForcedOverflow reports how many forced (control/escalation) spans have
// been evicted before anything read them — the CI soak fails if this ever
// leaves zero, because an evicted forced span is a restart the plane can
// no longer explain.
func (t *Tracer) ForcedOverflow() uint64 {
	if t == nil {
		return 0
	}
	return t.forced.Evicted()
}

// Written reports the total spans recorded across all rings.
func (t *Tracer) Written() uint64 {
	if t == nil {
		return 0
	}
	n := t.forced.Written()
	for _, r := range t.rings {
		n += r.Written()
	}
	return n
}
