// Incident bundles: when the control ladder escalates a device to the
// restart rung (or past it), the daemon snapshots everything an operator
// needs to explain the escalation into one directory —
//
//	<incident-dir>/incident-<device>-<seq>/
//	    bundle.json   deterministic: rebuilt byte-identically from the journal
//	    live.json     live-only: recent spans, counters, ladder, top-K spectrum
//
// The split is the point. bundle.json is a pure function of the device's
// journal stream up to the triggering action — the journaled control
// history plus the fail-labeled diagnosis evidence — so a journal replay
// reproduces it byte for byte (the e2e suite pins this). live.json holds
// what only the live process knows: the span rings, shed/credit counters
// and the current suspect ranking at the moment the ladder fired.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"trader/internal/wire"
)

// FrameSource yields journal frames in stream order. journal.Reader
// satisfies it; the indirection keeps trace free of a journal dependency
// (and lets tests feed synthetic streams).
type FrameSource interface {
	Next() (wire.Message, error)
}

// IncidentAction is one journaled control-ladder action in a bundle.
type IncidentAction struct {
	At      int64  `json:"at"`
	Rung    string `json:"rung"`              // Target of the TypeControl record
	Command string `json:"command,omitempty"` // pushed wire command; empty for tolerate
}

// IncidentEvidence summarises one fail-labeled diagnosis evidence record
// for the device: what kind, when, and how much coverage it carried.
type IncidentEvidence struct {
	Type    string `json:"type"` // "snapshot" or "delta"
	At      int64  `json:"at"`
	Windows int    `json:"windows,omitempty"` // snapshot: retained windows
	Seq     uint64 `json:"seq,omitempty"`     // delta: window sequence number
}

// Incident is the deterministic half of a bundle: everything in it is a
// pure function of the device's journal stream up to (and including) the
// triggering action, so replaying the journal rebuilds it byte for byte.
type Incident struct {
	Device string `json:"device"`
	// Seq numbers the incident: the triggering action is the Seq'th
	// restart-or-quarantine action journaled for this device.
	Seq int `json:"seq"`
	// Actions is the device's full ladder history through the trigger.
	Actions []IncidentAction `json:"actions"`
	// Evidence lists the device's fail-labeled diagnosis evidence
	// journaled before the trigger.
	Evidence []IncidentEvidence `json:"evidence,omitempty"`
}

// isIncidentTrigger reports whether a journaled control action is severe
// enough to open an incident: the ladder reached restart or beyond.
func isIncidentTrigger(m wire.Message) bool {
	return m.Type == wire.TypeControl &&
		(m.Control == wire.CtrlRestart || m.Control == wire.CtrlQuarantine)
}

// BuildIncident scans a journal stream and reconstructs the deterministic
// half of the device's seq'th incident (seq counts from 1). It stops at
// the triggering action, so actions and evidence journaled after it — by
// a run that kept going — do not leak in; that is what makes the live
// bundle and a later replay byte-identical. The device's frames all live
// on one shard stream (actions and evidence are routed by SUO like every
// other frame), so the scan sees them in append order.
func BuildIncident(src FrameSource, device string, seq int) (*Incident, error) {
	if seq < 1 {
		return nil, fmt.Errorf("trace: incident seq %d (want ≥ 1)", seq)
	}
	inc := &Incident{Device: device, Seq: seq}
	triggers := 0
	for {
		m, err := src.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("trace: incident %d for %s not in journal (saw %d triggers)",
				seq, device, triggers)
		}
		if err != nil {
			return nil, fmt.Errorf("trace: incident scan: %w", err)
		}
		if m.SUO != device {
			continue
		}
		switch {
		case m.Type == wire.TypeControl:
			inc.Actions = append(inc.Actions, IncidentAction{
				At: int64(m.At), Rung: m.Target, Command: string(m.Control)})
			if isIncidentTrigger(m) {
				if triggers++; triggers == seq {
					return inc, nil
				}
			}
		case m.Type == wire.TypeSnapshot && m.Target == "fail" && m.Snapshot != nil:
			inc.Evidence = append(inc.Evidence, IncidentEvidence{
				Type: "snapshot", At: int64(m.At), Windows: len(m.Snapshot.Windows)})
		case m.Type == wire.TypeSpectrumDelta && m.Target == "fail" && m.Delta != nil:
			inc.Evidence = append(inc.Evidence, IncidentEvidence{
				Type: "delta", At: int64(m.At), Seq: m.Delta.Seq})
		}
	}
}

// TopSuspect is one entry of the diagnosis ranking frozen into live.json.
type TopSuspect struct {
	Block     int     `json:"block"`
	Component string  `json:"component,omitempty"`
	Score     float64 `json:"score"`
}

// LiveReport is the live-only half of a bundle: the state only the
// running process holds at the moment the ladder fired.
type LiveReport struct {
	WrittenNS int64            `json:"written_ns"`
	Rung      string           `json:"rung,omitempty"`
	Class     string           `json:"class,omitempty"`
	Counters  map[string]int64 `json:"counters,omitempty"`
	TopK      []TopSuspect     `json:"top_suspects,omitempty"`
	// Spans are the device's recent spans plus every retained forced
	// span — the flight-recorder contents at the moment of escalation.
	Spans []ExportSpan `json:"spans"`
}

// Marshal renders the deterministic bundle document. One rendering path
// for the live writer and the replay verifier keeps "byte-identical"
// a property of the data, not of who serialised it.
func (inc *Incident) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(inc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Dir names an incident's bundle directory under root.
func Dir(root, device string, seq int) string {
	return filepath.Join(root, fmt.Sprintf("incident-%s-%d", device, seq))
}

// WriteBundle writes one incident bundle directory: bundle.json (the
// deterministic half) and live.json (the live half). It returns the
// bundle directory path.
func WriteBundle(root string, inc *Incident, live *LiveReport) (string, error) {
	dir := Dir(root, inc.Device, inc.Seq)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	det, err := inc.Marshal()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "bundle.json"), det, 0o644); err != nil {
		return "", err
	}
	lv, err := json.MarshalIndent(live, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "live.json"), append(lv, '\n'), 0o644); err != nil {
		return "", err
	}
	return dir, nil
}
