// Span exports: the /trace endpoint's JSON shape and the Chrome
// trace-event format (chrome://tracing, Perfetto). Both render IDs as
// %016x hex — the same rendering the exemplar info-series and incident
// bundles use, so an ID copied from any export greps in every other.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// ID renders a trace or span ID the canonical way: 16 hex digits.
func ID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ExportSpan is the JSON shape of one span, shared by the /trace
// endpoint and incident bundles.
type ExportSpan struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Parent  string `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	Forced  bool   `json:"forced,omitempty"`
	Shard   int    `json:"shard"`
	Device  string `json:"device,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Export converts spans to their JSON shape.
func Export(spans []Span) []ExportSpan {
	out := make([]ExportSpan, 0, len(spans))
	for _, s := range spans {
		e := ExportSpan{TraceID: ID(s.TraceID), SpanID: ID(s.SpanID),
			Kind: s.Kind.String(), Forced: s.Forced, Shard: s.Shard,
			Device: s.Device, StartNS: s.Start, DurNS: s.Dur}
		if s.Parent != 0 {
			e.Parent = ID(s.Parent)
		}
		out = append(out, e)
	}
	return out
}

// WriteJSON writes spans as the /trace endpoint's default document:
// {"spans": [...]}, oldest first.
func WriteJSON(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Spans []ExportSpan `json:"spans"`
	}{Export(spans)})
}

// chromeEvent is one complete ("ph":"X") trace event. Timestamps and
// durations are microseconds; fractional values keep sub-microsecond
// spans visible instead of rounding them to zero-width slivers.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChrome writes spans in Chrome trace-event format: load the file in
// chrome://tracing or ui.perfetto.dev and the frame lifecycle renders as
// one track per shard (forced spans on track -1's row via shard id).
func WriteChrome(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		cat := "frame"
		if s.Forced {
			cat = "control"
		}
		args := map[string]any{
			"trace_id": ID(s.TraceID),
			"span_id":  ID(s.SpanID),
		}
		if s.Parent != 0 {
			args["parent"] = ID(s.Parent)
		}
		if s.Device != "" {
			args["device"] = s.Device
		}
		events = append(events, chromeEvent{
			Name: s.Kind.String(), Cat: cat, Ph: "X",
			TS: float64(s.Start) / 1e3, Dur: float64(s.Dur) / 1e3,
			PID: 1, TID: s.Shard, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
