package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"trader/internal/wire"
)

func testTracer(sampleN, capacity int) *Tracer {
	return New(Options{Shards: 4, Capacity: capacity, SampleN: sampleN, Seed: 42})
}

func TestSamplingRate(t *testing.T) {
	tr := testTracer(8, 64)
	live := 0
	for i := 0; i < 800; i++ {
		if tr.Sample().Live() {
			live++
		}
	}
	if live != 100 {
		t.Fatalf("1-in-8 sampling over 800 frames: %d live contexts, want 100", live)
	}
	none := New(Options{Shards: 1, SampleN: 0, Seed: 1})
	for i := 0; i < 100; i++ {
		if none.Sample().Live() {
			t.Fatal("SampleN 0 must never sample")
		}
	}
	if !none.Force().Live() {
		t.Fatal("Force must return a live context even with sampling off")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Sample().Live() || tr.Force().Live() {
		t.Fatal("nil tracer produced a live context")
	}
	ctx := tr.Span(Context{Trace: 1}, KindIngest, 0, "d", time.Now(), time.Millisecond, false)
	if ctx.Trace != 1 {
		t.Fatal("nil tracer must pass the context through")
	}
	if tr.Snapshot() != nil || tr.ForcedOverflow() != 0 || tr.Written() != 0 {
		t.Fatal("nil tracer must report nothing")
	}
}

func TestSpanChainParenting(t *testing.T) {
	tr := testTracer(1, 64)
	start := time.Unix(0, 1000)
	root := tr.Sample()
	ingest := tr.Span(root, KindIngest, 2, "sim-000", start, time.Microsecond, false)
	journal := tr.Span(ingest, KindJournal, 2, "sim-000", start.Add(time.Microsecond), time.Microsecond, false)
	tr.Span(journal, KindDispatch, 2, "sim-000", start.Add(2*time.Microsecond), time.Microsecond, false)

	spans := tr.Trace(root.Trace)
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	if spans[0].Kind != KindIngest || spans[0].Parent != 0 {
		t.Fatalf("first span %v: want ingest root with no parent", spans[0])
	}
	if spans[1].Kind != KindJournal || spans[1].Parent != spans[0].SpanID {
		t.Fatalf("journal span parent %#x, want ingest span %#x", spans[1].Parent, spans[0].SpanID)
	}
	if spans[2].Parent != spans[1].SpanID {
		t.Fatalf("dispatch span parent %#x, want journal span %#x", spans[2].Parent, spans[1].SpanID)
	}
	for _, s := range spans {
		if s.Device != "sim-000" || s.Shard != 2 {
			t.Fatalf("span %+v lost device/shard", s)
		}
	}
}

func TestWireRoundTripContext(t *testing.T) {
	tr := testTracer(1, 16)
	ctx := tr.Force()
	child := tr.Span(ctx, KindControl, -1, "dev", time.Now(), 0, true)
	tc := child.Wire()
	if tc == nil || tc.TraceID != ctx.Trace || tc.Parent != child.Span {
		t.Fatalf("Wire() = %+v, want trace %#x parent %#x", tc, ctx.Trace, child.Span)
	}
	back := FromWire(tc)
	if back != child {
		t.Fatalf("FromWire round trip: %+v != %+v", back, child)
	}
	if (Context{}).Wire() != nil {
		t.Fatal("dead context must convert to a nil wire context")
	}
	if FromWire(nil).Live() {
		t.Fatal("nil wire context must convert to a dead context")
	}
}

// TestRingWraparound overfills a ring and checks it retains exactly the
// newest capacity spans, oldest first, and accounts the evictions.
func TestRingWraparound(t *testing.T) {
	r := NewRing(16)
	const writes = 100
	for i := 1; i <= writes; i++ {
		r.put(Span{TraceID: uint64(i), SpanID: uint64(i), Kind: KindIngest, Start: int64(i)})
	}
	got := r.Snapshot(nil)
	if len(got) != 16 {
		t.Fatalf("wrapped ring snapshot has %d spans, want 16", len(got))
	}
	for i, s := range got {
		if want := uint64(writes - 16 + i + 1); s.TraceID != want {
			t.Fatalf("slot %d: trace %d, want %d (oldest-first)", i, s.TraceID, want)
		}
	}
	if ev := r.Evicted(); ev != writes-16 {
		t.Fatalf("Evicted() = %d, want %d", ev, writes-16)
	}
}

// TestRingConcurrentWriters hammers one ring from many goroutines under
// -race while a reader snapshots continuously: no torn spans may surface.
func TestRingConcurrentWriters(t *testing.T) {
	r := NewRing(64)
	const writers, per = 8, 2000
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range r.Snapshot(nil) {
				// Writers stamp every field of a span with the same value,
				// so any mismatch is a torn read escaping the seqlock.
				if s.SpanID != s.TraceID || uint64(s.Start) != s.TraceID {
					t.Errorf("torn span surfaced: %+v", s)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := uint64(w*per + i + 1)
				r.put(Span{TraceID: v, SpanID: v, Start: int64(v), Kind: KindMonitor, Device: "dev-concurrent"})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if r.Written() != writers*per {
		t.Fatalf("Written() = %d, want %d", r.Written(), writers*per)
	}
}

// TestTracerConcurrent drives the full tracer (sampling, forced spans,
// snapshots) from many goroutines under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := testTracer(4, 128)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if ctx := tr.Sample(); ctx.Live() {
					ctx = tr.Span(ctx, KindIngest, shard%4, "dev", time.Now(), time.Microsecond, false)
					tr.Span(ctx, KindDispatch, shard%4, "dev", time.Now(), time.Microsecond, false)
				}
				if i%50 == 0 {
					fc := tr.Force()
					tr.Span(fc, KindControl, -1, "dev", time.Now(), 0, true)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			tr.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if tr.ForcedOverflow() != 0 {
		t.Fatalf("forced ring overflowed (%d) below capacity", tr.ForcedOverflow())
	}
	spans := tr.Snapshot()
	if len(spans) == 0 {
		t.Fatal("no spans retained after concurrent load")
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("Snapshot not ordered by start time")
		}
	}
}

func TestForcedOverflowCounts(t *testing.T) {
	tr := New(Options{Shards: 1, Capacity: 16, SampleN: 1, Seed: 7})
	for i := 0; i < 20; i++ {
		tr.Span(tr.Force(), KindControl, -1, "dev", time.Unix(0, int64(i)), 0, true)
	}
	if ov := tr.ForcedOverflow(); ov != 4 {
		t.Fatalf("ForcedOverflow() = %d, want 4", ov)
	}
	// Sampled traffic must not be able to evict forced spans.
	tr2 := New(Options{Shards: 1, Capacity: 16, SampleN: 1, Seed: 7})
	tr2.Span(tr2.Force(), KindControl, -1, "dev", time.Unix(0, 1), 0, true)
	for i := 0; i < 1000; i++ {
		tr2.Span(tr2.Sample(), KindIngest, 0, "dev", time.Unix(0, int64(i)), 0, false)
	}
	if ov := tr2.ForcedOverflow(); ov != 0 {
		t.Fatalf("sampled flood evicted forced spans: overflow %d", ov)
	}
}

func TestDeviceTruncation(t *testing.T) {
	tr := testTracer(1, 16)
	long := strings.Repeat("x", 40)
	tr.Span(tr.Force(), KindIngest, 0, long, time.Unix(0, 1), 0, true)
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if want := long[:32]; spans[0].Device != want {
		t.Fatalf("device = %q (len %d), want 32-byte truncation", spans[0].Device, len(spans[0].Device))
	}
}

func TestExportJSONShape(t *testing.T) {
	tr := testTracer(1, 16)
	ctx := tr.Sample()
	tr.Span(ctx, KindIngest, 1, "sim-007", time.Unix(0, 5000), 1500*time.Nanosecond, false)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []ExportSpan `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal /trace document: %v", err)
	}
	if len(doc.Spans) != 1 {
		t.Fatalf("document has %d spans, want 1", len(doc.Spans))
	}
	s := doc.Spans[0]
	if s.TraceID != ID(ctx.Trace) || len(s.TraceID) != 16 {
		t.Fatalf("trace_id %q, want %016x", s.TraceID, ctx.Trace)
	}
	if s.Kind != "ingest" || s.Device != "sim-007" || s.Shard != 1 || s.StartNS != 5000 || s.DurNS != 1500 {
		t.Fatalf("exported span %+v", s)
	}
}

func TestExportChromeShape(t *testing.T) {
	tr := testTracer(1, 16)
	ctx := tr.Force()
	tr.Span(ctx, KindControl, -1, "sim-001", time.Unix(0, 2_000_000), 500*time.Microsecond, true)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal chrome document: %v", err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("document has %d events, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Ph != "X" || ev.Name != "control" || ev.Cat != "control" {
		t.Fatalf("event %+v: want a complete control-category event", ev)
	}
	if ev.TS != 2000 || ev.Dur != 500 {
		t.Fatalf("event ts/dur %v/%v µs, want 2000/500", ev.TS, ev.Dur)
	}
	if ev.Args["trace_id"] != ID(ctx.Trace) || ev.Args["device"] != "sim-001" {
		t.Fatalf("event args %v", ev.Args)
	}
}

// frameStream is a FrameSource over a fixed slice.
type frameStream struct {
	msgs []wire.Message
	i    int
}

func (s *frameStream) Next() (wire.Message, error) {
	if s.i >= len(s.msgs) {
		return wire.Message{}, io.EOF
	}
	s.i++
	return s.msgs[s.i-1], nil
}

func incidentJournal() []wire.Message {
	return []wire.Message{
		{Type: wire.TypeInput, SUO: "sim-003", At: 10},
		{Type: wire.TypeControl, SUO: "sim-003", Target: "tolerate", At: 20},
		{Type: wire.TypeSpectrumDelta, SUO: "sim-003", Target: "fail", At: 25,
			Delta: &wire.SpectrumDelta{Seq: 4, Blocks: 64}},
		{Type: wire.TypeControl, SUO: "sim-007", Control: wire.CtrlRestart, Target: "restart", At: 28},
		{Type: wire.TypeControl, SUO: "sim-003", Control: wire.CtrlReset, Target: "reset", At: 30},
		{Type: wire.TypeSnapshot, SUO: "sim-003", Target: "fail", At: 35,
			Snapshot: &wire.Snapshot{Blocks: 64, Windows: make([]wire.SpectrumWindow, 3)}},
		{Type: wire.TypeSnapshot, SUO: "sim-004", Target: "pass", At: 36,
			Snapshot: &wire.Snapshot{Blocks: 64, Windows: make([]wire.SpectrumWindow, 2)}},
		{Type: wire.TypeControl, SUO: "sim-003", Control: wire.CtrlRestart, Target: "restart", At: 40},
		// After the trigger: must not appear in incident 1's bundle.
		{Type: wire.TypeControl, SUO: "sim-003", Control: wire.CtrlQuarantine, Target: "quarantine", At: 50},
	}
}

func TestBuildIncident(t *testing.T) {
	inc, err := BuildIncident(&frameStream{msgs: incidentJournal()}, "sim-003", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Actions) != 3 {
		t.Fatalf("incident has %d actions, want 3 (tolerate, reset, restart)", len(inc.Actions))
	}
	if last := inc.Actions[2]; last.Rung != "restart" || last.Command != string(wire.CtrlRestart) {
		t.Fatalf("trigger action %+v", last)
	}
	if len(inc.Evidence) != 2 {
		t.Fatalf("incident has %d evidence records, want 2 (delta + fail snapshot)", len(inc.Evidence))
	}
	if inc.Evidence[0].Type != "delta" || inc.Evidence[0].Seq != 4 {
		t.Fatalf("evidence[0] = %+v", inc.Evidence[0])
	}
	if inc.Evidence[1].Type != "snapshot" || inc.Evidence[1].Windows != 3 {
		t.Fatalf("evidence[1] = %+v", inc.Evidence[1])
	}

	// seq 2 extends through the quarantine.
	inc2, err := BuildIncident(&frameStream{msgs: incidentJournal()}, "sim-003", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc2.Actions) != 4 || inc2.Actions[3].Rung != "quarantine" {
		t.Fatalf("incident 2 actions %+v", inc2.Actions)
	}
	// seq 3 does not exist.
	if _, err := BuildIncident(&frameStream{msgs: incidentJournal()}, "sim-003", 3); err == nil {
		t.Fatal("incident 3 should not be found")
	}
}

// TestBundleDeterminism pins the byte-stability contract: building the
// same incident from two scans of the same stream marshals identically,
// and frames after the trigger cannot perturb it.
func TestBundleDeterminism(t *testing.T) {
	a, err := BuildIncident(&frameStream{msgs: incidentJournal()}, "sim-003", 1)
	if err != nil {
		t.Fatal(err)
	}
	// A second "replay" scan over a journal that has since grown.
	grown := append(incidentJournal(),
		wire.Message{Type: wire.TypeControl, SUO: "sim-003", Control: wire.CtrlRestart, Target: "restart", At: 99})
	b, err := BuildIncident(&frameStream{msgs: grown}, "sim-003", 1)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("bundle not byte-stable across replay:\n%s\nvs\n%s", ab, bb)
	}
}

func TestWriteBundle(t *testing.T) {
	dir := t.TempDir()
	inc, err := BuildIncident(&frameStream{msgs: incidentJournal()}, "sim-003", 1)
	if err != nil {
		t.Fatal(err)
	}
	live := &LiveReport{WrittenNS: 123, Rung: "restart",
		Counters: map[string]int64{"shed_tier1": 2},
		TopK:     []TopSuspect{{Block: 17, Component: "pricing", Score: 0.9}},
		Spans:    Export([]Span{{TraceID: 1, SpanID: 2, Kind: KindControl, Forced: true, Shard: -1}})}
	out, err := WriteBundle(dir, inc, live)
	if err != nil {
		t.Fatal(err)
	}
	if want := Dir(dir, "sim-003", 1); out != want {
		t.Fatalf("bundle dir %q, want %q", out, want)
	}
	raw, err := os.ReadFile(filepath.Join(out, "bundle.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back Incident
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("bundle.json does not parse: %v", err)
	}
	if back.Device != "sim-003" || len(back.Actions) != 3 {
		t.Fatalf("bundle.json content %+v", back)
	}
	lraw, err := os.ReadFile(filepath.Join(out, "live.json"))
	if err != nil {
		t.Fatal(err)
	}
	var lback LiveReport
	if err := json.Unmarshal(lraw, &lback); err != nil {
		t.Fatalf("live.json does not parse: %v", err)
	}
	if lback.Rung != "restart" || len(lback.Spans) != 1 || lback.Spans[0].Kind != "control" {
		t.Fatalf("live.json content %+v", lback)
	}
}
