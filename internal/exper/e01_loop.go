package exper

import (
	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/perception"
	"trader/internal/recovery"
	"trader/internal/sim"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

// E1 reproduces Fig. 1's claim: closing the loop (run-time awareness +
// correction) reduces the failures the user actually experiences. The same
// fault schedule runs open-loop (no monitor) and closed-loop (monitor +
// recovery manager); user-visible failure time per function and the panel's
// irritation are compared.

// E1Result carries the measured outcome for one loop mode.
type E1Result struct {
	FailureSeconds map[string]float64
	Irritation     float64
	Detections     int
	Recoveries     uint64
}

// failureMeter samples user-visible health of a running TV.
type failureMeter struct {
	tv         *tvsim.TV
	lastFrame  sim.Time
	lastFrameQ float64
	txtFresh   bool
	audioVol   float64
	accum      map[string]sim.Time
	sample     sim.Time
}

func newFailureMeter(k *sim.Kernel, tv *tvsim.TV) *failureMeter {
	m := &failureMeter{
		tv: tv, accum: map[string]sim.Time{}, sample: 50 * sim.Millisecond,
		lastFrameQ: 1, txtFresh: true,
	}
	tv.Bus().Subscribe("frame", func(e event.Event) {
		m.lastFrame = e.At
		m.lastFrameQ, _ = e.Get("quality")
	})
	tv.Bus().Subscribe("teletext", func(e event.Event) {
		fr, _ := e.Get("fresh")
		m.txtFresh = fr == 1
	})
	tv.Bus().Subscribe("audio", func(e event.Event) {
		m.audioVol, _ = e.Get("volume")
	})
	k.Every(m.sample, func() { m.tick(k.Now()) })
	return m
}

func (m *failureMeter) tick(now sim.Time) {
	snap := m.tv.Snapshot()
	if snap["power"] != 1 {
		return
	}
	if now-m.lastFrame > 200*sim.Millisecond || m.lastFrameQ < 0.7 {
		m.accum["image-quality"] += m.sample
	}
	if snap["teletext"] == 1 && !m.txtFresh {
		m.accum["teletext"] += m.sample
	}
	expected := snap["volume"]
	if snap["muted"] == 1 {
		expected = 0
	}
	if m.audioVol < expected-0.5 || m.audioVol > expected+0.5 {
		m.accum["audio"] += m.sample
	}
}

// e1Schedule injects the standard fault set: a permanent video crash, a
// teletext sync loss, and a permanent audio level corruption.
func e1Schedule(tv *tvsim.TV) {
	tv.Injector().Schedule(faults.Fault{ID: "video-crash", Kind: faults.TaskCrash, Target: "video", At: 2 * sim.Second})
	tv.Injector().Schedule(faults.Fault{ID: "txt-sync", Kind: faults.SyncLoss, Target: "teletext", At: 6 * sim.Second, Duration: 6 * sim.Second})
	tv.Injector().Schedule(faults.Fault{ID: "audio-skew", Kind: faults.ValueCorruption, Target: "audio", At: 12 * sim.Second, Param: -15})
}

// e1Drive presses keys like a watching user: teletext on early, volume
// nudges throughout (each press also produces fresh audio observations).
func e1Drive(k *sim.Kernel, tv *tvsim.TV, until sim.Time) {
	tv.PressKey(tvsim.KeyPower)
	tv.PressKey(tvsim.KeyText)
	step := sim.Second
	for t := step; t < until; t += step {
		up := (t/step)%2 == 0
		k.ScheduleAt(t, func() {
			if up {
				tv.PressKey(tvsim.KeyVolUp)
			} else {
				tv.PressKey(tvsim.KeyVolDown)
			}
		})
	}
	k.Run(until)
}

func e1Run(seed int64, closed bool) (E1Result, error) {
	const horizon = 20 * sim.Second
	var res E1Result
	if !closed {
		k := sim.NewKernel(seed)
		tv := tvsim.New(k, tvsim.Config{})
		meter := newFailureMeter(k, tv)
		e1Schedule(tv)
		e1Drive(k, tv, horizon)
		res.FailureSeconds = secondsMap(meter.accum)
		res.Irritation = irritationOf(meter.accum)
		return res, nil
	}
	k, tv, mon, err := NewMonitoredTV(seed, tvsim.Config{})
	if err != nil {
		return res, err
	}
	meter := newFailureMeter(k, tv)
	e1Schedule(tv)

	// Recovery side: one recoverable unit per subsystem whose restart
	// repairs the underlying fault.
	mgr := recovery.NewManager(k)
	unitFor := map[string]string{
		"frame-quality":  "video",
		"teletext-fresh": "teletext",
		"audio-volume":   "audio",
	}
	faultFor := map[string]string{
		"video":    "video-crash",
		"teletext": "txt-sync",
		"audio":    "audio-skew",
	}
	for unit, faultID := range faultFor {
		unit, faultID := unit, faultID
		mgr.AddUnit(&recovery.Unit{
			Name:           unit,
			RestartLatency: 100 * sim.Millisecond,
			OnRestart: func() {
				tv.Injector().Repair(faultID)
				for obs, u := range unitFor {
					if u == unit {
						mon.ResetObservable(obs)
					}
				}
			},
		})
	}
	mon.OnError(func(r wire.ErrorReport) {
		res.Detections++
		if unit, ok := unitFor[r.Observable]; ok {
			_ = mgr.Recover(unit, recovery.UnitOnly)
		}
	})
	e1Drive(k, tv, horizon)
	res.FailureSeconds = secondsMap(meter.accum)
	res.Irritation = irritationOf(meter.accum)
	res.Recoveries = mgr.RecoveriesCompleted
	return res, nil
}

func secondsMap(acc map[string]sim.Time) map[string]float64 {
	out := map[string]float64{}
	for k, v := range acc {
		out[k] = v.Seconds()
	}
	return out
}

// irritationOf converts failure exposure into panel irritation using the
// perception model (image quality attributed externally, the rest to the
// product).
func irritationOf(acc map[string]sim.Time) float64 {
	panel := perception.NewPanel(1, 20, perception.DefaultGroups)
	var total float64
	for fn, dur := range acc {
		att := perception.Internal
		if fn == "image-quality" {
			att = perception.External
		}
		total += panel.MeanIrritation(perception.Failure{
			Function: fn, Severity: 0.6, Duration: dur, Attribution: att,
		})
	}
	return total
}

// E1ClosedLoop runs the experiment and renders the comparison.
func E1ClosedLoop(seed int64) (*Table, error) {
	open, err := e1Run(seed, false)
	if err != nil {
		return nil, err
	}
	closed, err := e1Run(seed, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E1",
		Title:   "Closing the loop (Fig. 1): user-visible failure exposure, open vs closed loop",
		Columns: []string{"metric", "open-loop", "closed-loop"},
	}
	for _, fn := range []string{"image-quality", "teletext", "audio"} {
		t.AddRow("failure seconds: "+fn, f("%.2f", open.FailureSeconds[fn]), f("%.2f", closed.FailureSeconds[fn]))
	}
	t.AddRow("panel irritation (sum)", f("%.3f", open.Irritation), f("%.3f", closed.Irritation))
	t.AddRow("errors detected", f("%d", open.Detections), f("%d", closed.Detections))
	t.AddRow("recoveries executed", f("%d", open.Recoveries), f("%d", closed.Recoveries))
	t.Notes = append(t.Notes,
		"paper claim (qualitative): run-time awareness + correction masks faults the open-loop system leaves exposed",
		"expected shape: closed-loop failure seconds and irritation strictly lower; every injected fault detected")
	return t, nil
}
