package exper

import (
	"net"
	"time"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

// E2 measures the awareness framework's overhead (Fig. 2): how many
// observations per (wall-clock) second the monitor sustains, in-process and
// across the process boundary, and the bookkeeping volume. The paper's
// requirement is qualitative — "minimal additional hardware costs and
// without degrading performance" — so the shape that matters is that the
// per-event cost is microseconds, far below the SUO's event rates.

func e2Model(k *sim.Kernel) *statemachine.Model {
	r := statemachine.NewRegion("r")
	r.Add(&statemachine.State{
		Name:  "s",
		Entry: func(c *statemachine.Context) { c.Set("x", 0) },
		Transitions: []statemachine.Transition{
			{Event: "set", Action: func(c *statemachine.Context) {
				v, _ := c.Event.Get("v")
				c.Set("x", v)
			}},
		},
	})
	return statemachine.MustModel("bench", k, r)
}

func e2Config() core.Configuration {
	return core.Configuration{Observables: []core.Observable{
		{EventName: "out", ValueName: "x", ModelVar: "x", Threshold: 0.5, Tolerance: 1},
	}}
}

// E2InProcessThroughput pushes n observations through a monitor in-process
// and returns events/second (wall clock).
func E2InProcessThroughput(n int) (float64, error) {
	k := sim.NewKernel(1)
	mon, err := core.NewMonitor(k, e2Model(k), e2Config())
	if err != nil {
		return 0, err
	}
	if err := mon.Start(); err != nil {
		return 0, err
	}
	e := event.Event{Kind: event.Output, Name: "out"}.With("x", 0)
	start := time.Now()
	for i := 0; i < n; i++ {
		mon.HandleOutput(e)
	}
	elapsed := time.Since(start)
	return float64(n) / elapsed.Seconds(), nil
}

// E2SocketThroughput pushes n observations through the wire protocol over a
// net.Pipe into a served monitor and returns events/second.
func E2SocketThroughput(n int) (float64, error) {
	k := sim.NewKernel(1)
	mon, err := core.NewMonitor(k, e2Model(k), e2Config())
	if err != nil {
		return 0, err
	}
	if err := mon.Start(); err != nil {
		return 0, err
	}
	a, b := net.Pipe()
	suo, monEnd := wire.NewConn(a), wire.NewConn(b)
	done := make(chan error, 1)
	go func() { done <- mon.ServeConn(monEnd) }()
	e := event.Event{Kind: event.Output, Name: "out"}.With("x", 0)
	start := time.Now()
	for i := 0; i < n; i++ {
		e.At = sim.Time(i)
		if err := suo.SendEvent("bench", e); err != nil {
			return 0, err
		}
	}
	a.Close()
	<-done
	elapsed := time.Since(start)
	if got := mon.Stats().OutputsSeen; got != uint64(n) {
		return 0, f2err("socket path lost events: %d of %d", got, n)
	}
	return float64(n) / elapsed.Seconds(), nil
}

func f2err(format string, args ...any) error { return &harnessError{f(format, args...)} }

type harnessError struct{ s string }

func (e *harnessError) Error() string { return e.s }

// E2FrameworkOverhead renders the overhead table.
func E2FrameworkOverhead() (*Table, error) {
	const n = 50000
	inproc, err := E2InProcessThroughput(n)
	if err != nil {
		return nil, err
	}
	sock, err := E2SocketThroughput(n)
	if err != nil {
		return nil, err
	}
	// Observation volume on a realistic run: 10 s of monitored TV.
	k, tv, mon, err := NewMonitoredTV(2, tvsim.Config{})
	if err != nil {
		return nil, err
	}
	tv.PressKey(tvsim.KeyPower)
	tv.PressKey(tvsim.KeyText)
	k.Run(10 * sim.Second)
	st := mon.Stats()

	t := &Table{
		ID:      "E2",
		Title:   "Awareness framework overhead (Fig. 2 deployment)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("in-process observations/s", f("%.0f", inproc))
	t.AddRow("cross-process (socket) observations/s", f("%.0f", sock))
	t.AddRow("ns/event in-process", f("%.0f", 1e9/inproc))
	t.AddRow("ns/event cross-process", f("%.0f", 1e9/sock))
	t.AddRow("TV events observed in 10 s", f("%d", st.OutputsSeen+st.InputsSeen))
	t.AddRow("comparisons in 10 s", f("%d", st.Comparisons))
	t.Notes = append(t.Notes,
		"paper claim (qualitative): monitoring must not degrade performance; partial models keep the load bounded",
		"expected shape: per-event cost orders of magnitude below the SUO's inter-event gaps (ms-scale)")
	return t, nil
}

// E3ComparatorTradeoff sweeps the comparator's consecutive-deviation
// tolerance (Sect. 4.3): short benign glitches (bad-input dips the product
// must tolerate) versus a genuine sustained overload. Low tolerance reports
// the glitches as errors (false positives); high tolerance delays detection
// of the real fault. The paper: "we have to make a trade-off between taking
// more time to avoid false errors and reporting errors fast to allow quick
// repair".
func E3ComparatorTradeoff(seed int64) (*Table, error) {
	type outcome struct {
		tolerance int
		falsePos  int
		latency   sim.Time
		detected  bool
	}
	const realFault = "overload"
	var results []outcome
	for _, tol := range []int{0, 1, 2, 3, 5, 8, 12} {
		k := sim.NewKernel(seed)
		cfg := tvsim.Config{}
		tv := tvsim.New(k, cfg)
		model := tvsim.BuildSpecModel(k, cfg)
		tvsim.MirrorQuality(model)
		mcfg := core.Configuration{Observables: []core.Observable{
			{Name: "frame-quality", EventName: "frame", ValueName: "quality",
				ModelVar: "quality", Threshold: 0.3, Tolerance: tol, EnableVar: "power"},
		}}
		mon, err := core.NewMonitor(k, model, mcfg)
		if err != nil {
			return nil, err
		}
		if err := mon.Start(); err != nil {
			return nil, err
		}
		mon.AttachBus(tv.Bus())

		o := outcome{tolerance: tol}
		var faultAt sim.Time = 12 * sim.Second
		mon.OnError(func(r wire.ErrorReport) {
			// Reports before the sustained fault starts can only come from
			// the benign glitches: false positives. Reports after it are
			// the fault and its backlog aftermath.
			if r.At < faultAt {
				o.falsePos++
			} else if !o.detected {
				o.detected = true
				o.latency = r.At - faultAt
			}
			mon.ResetObservable("frame-quality")
		})
		// Benign glitches: 100 ms signal dips every 2 s.
		for i := 0; i < 5; i++ {
			tv.Injector().Schedule(faults.Fault{
				ID: f("glitch%d", i), Kind: faults.BadInput, Target: "tuner",
				At: sim.Time(2+2*i) * sim.Second, Duration: 100 * sim.Millisecond, Param: 0.4,
			})
		}
		// The real fault: sustained overload.
		tv.Injector().Schedule(faults.Fault{
			ID: realFault, Kind: faults.Overload, Target: "video",
			At: faultAt, Duration: 5 * sim.Second, Param: 3,
		})
		tv.PressKey(tvsim.KeyPower)
		k.Run(20 * sim.Second)
		results = append(results, o)
	}
	t := &Table{
		ID:      "E3",
		Title:   "Comparator eagerness trade-off (Sect. 4.3): tolerance vs false positives and detection latency",
		Columns: []string{"tolerance", "false positives", "real fault detected", "detection latency"},
	}
	for _, o := range results {
		lat := "-"
		if o.detected {
			lat = o.latency.String()
		}
		t.AddRow(f("%d", o.tolerance), f("%d", o.falsePos), f("%v", o.detected), lat)
	}
	t.Notes = append(t.Notes,
		"paper claim: the comparator 'should not be too eager'; thresholds + consecutive-deviation maxima are the knobs",
		"expected shape: false positives fall to 0 as tolerance grows; detection latency grows; an interior setting gets both")
	return t, nil
}
