package exper

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell (prefix before any space).
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := tab.Rows[row][col]
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("table %s row %d col %d: %q not numeric: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

func findRow(t *testing.T, tab *Table, prefix string) int {
	t.Helper()
	for i, r := range tab.Rows {
		if strings.HasPrefix(r[0], prefix) {
			return i
		}
	}
	t.Fatalf("table %s: no row with prefix %q; rows: %v", tab.ID, prefix, tab.Rows)
	return -1
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "n")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== X: t ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestE1ClosedLoopShape(t *testing.T) {
	tab, err := E1ClosedLoop(1)
	if err != nil {
		t.Fatal(err)
	}
	// Closed loop strictly reduces every failure-seconds row and irritation.
	for _, fn := range []string{"failure seconds: image-quality", "failure seconds: teletext", "failure seconds: audio"} {
		r := findRow(t, tab, fn)
		open, closed := cell(t, tab, r, 1), cell(t, tab, r, 2)
		if open <= 0 {
			t.Fatalf("%s: open-loop exposure %v, want > 0 (fault must bite)", fn, open)
		}
		if closed >= open {
			t.Fatalf("%s: closed %v not < open %v", fn, closed, open)
		}
	}
	r := findRow(t, tab, "panel irritation")
	if cell(t, tab, r, 2) >= cell(t, tab, r, 1) {
		t.Fatal("closed-loop irritation must drop")
	}
	r = findRow(t, tab, "errors detected")
	if cell(t, tab, r, 2) < 3 {
		t.Fatal("closed loop should detect all three faults")
	}
	r = findRow(t, tab, "recoveries executed")
	if cell(t, tab, r, 2) < 3 {
		t.Fatal("closed loop should recover all three faults")
	}
}

func TestE2OverheadShape(t *testing.T) {
	tab, err := E2FrameworkOverhead()
	if err != nil {
		t.Fatal(err)
	}
	inproc := cell(t, tab, findRow(t, tab, "in-process observations/s"), 1)
	sock := cell(t, tab, findRow(t, tab, "cross-process (socket) observations/s"), 1)
	if inproc < 10000 {
		t.Fatalf("in-process throughput %v unreasonably low", inproc)
	}
	if sock <= 0 {
		t.Fatal("socket throughput missing")
	}
	if inproc < sock {
		t.Fatalf("in-process (%v) should beat socket (%v)", inproc, sock)
	}
	comps := cell(t, tab, findRow(t, tab, "comparisons in 10 s"), 1)
	if comps <= 0 {
		t.Fatal("monitored TV produced no comparisons")
	}
}

func TestE3TradeoffShape(t *testing.T) {
	tab, err := E3ComparatorTradeoff(1)
	if err != nil {
		t.Fatal(err)
	}
	// First row (tolerance 0): false positives present. Last row: none.
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	fp0, _ := strconv.Atoi(first[1])
	fpN, _ := strconv.Atoi(last[1])
	if fp0 == 0 {
		t.Fatal("tolerance 0 should flag benign glitches")
	}
	if fpN != 0 {
		t.Fatalf("high tolerance still has %d false positives", fpN)
	}
	// False positives are non-increasing with tolerance, and the real fault
	// is detected at every tolerance in the sweep.
	prev := fp0
	for i, row := range tab.Rows {
		fp, _ := strconv.Atoi(row[1])
		if fp > prev {
			t.Fatalf("false positives increased at row %d: %v", i, tab.Rows)
		}
		prev = fp
		if row[2] != "true" {
			t.Fatalf("real fault missed at tolerance %s", row[0])
		}
	}
}

func TestE4DiagnosisShape(t *testing.T) {
	tab, err := E4Diagnosis(42)
	if err != nil {
		t.Fatal(err)
	}
	r := findRow(t, tab, "fault rank (ochiai)")
	if got := tab.Rows[r][2]; !strings.HasPrefix(got, "1 ") {
		t.Fatalf("ochiai rank = %q, paper reports 1", got)
	}
	covered := cell(t, tab, findRow(t, tab, "blocks executed"), 2)
	if covered < 10000 || covered > 25000 {
		t.Fatalf("coverage %v outside the paper's ballpark", covered)
	}
}

func TestE5ModeConsistencyShape(t *testing.T) {
	tab, err := E5ModeConsistency(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range []string{"mode-consistency checker", "comparator"} {
		r := findRow(t, tab, det)
		if tab.Rows[r][1] != "yes" {
			t.Fatalf("%s did not detect", det)
		}
	}
}

func TestE6RecoveryShape(t *testing.T) {
	tab, err := E6Recovery(1)
	if err != nil {
		t.Fatal(err)
	}
	unit, full := tab.Rows[0], tab.Rows[2]
	if unit[0] != "unit" || full[0] != "full" {
		t.Fatalf("rows = %v", tab.Rows)
	}
	if unit[2] != "0ns" {
		t.Fatalf("unit-scope healthy downtime = %s, want 0", unit[2])
	}
	if full[2] == "0ns" {
		t.Fatal("full restart should cost the healthy unit downtime")
	}
	unitLost, _ := strconv.Atoi(unit[3])
	fullLost, _ := strconv.Atoi(full[3])
	if unitLost > fullLost {
		t.Fatalf("unit scope lost more frames (%d) than full (%d)", unitLost, fullLost)
	}
}

func TestE7MigrationShape(t *testing.T) {
	tab, err := E7Migration(3)
	if err != nil {
		t.Fatal(err)
	}
	noMig := findRow(t, tab, "overload, no migration")
	withMig := findRow(t, tab, "overload, with load balancer")
	if cell(t, tab, withMig, 1) >= cell(t, tab, noMig, 1) {
		t.Fatal("migration should cut the miss rate")
	}
	if cell(t, tab, withMig, 2) <= cell(t, tab, noMig, 2) {
		t.Fatal("migration should lift mean quality")
	}
	fixedServed := cell(t, tab, findRow(t, tab, "io under fixed-priority"), 1)
	adaptServed := cell(t, tab, findRow(t, tab, "io under adaptive"), 1)
	if adaptServed <= fixedServed {
		t.Fatal("adaptive arbiter should serve the starved requestor")
	}
}

func TestE8PerceptionShape(t *testing.T) {
	tab, err := E8Perception(42)
	if err != nil {
		t.Fatal(err)
	}
	stated := findRow(t, tab, "stated importance rank")
	observed := findRow(t, tab, "observed irritation rank")
	ablated := findRow(t, tab, "observed rank w/o attribution")
	if cell(t, tab, stated, 1) >= cell(t, tab, stated, 2) {
		t.Fatal("stated: image-quality should outrank swivel")
	}
	if cell(t, tab, observed, 2) >= cell(t, tab, observed, 1) {
		t.Fatal("observed: swivel should outrank image-quality")
	}
	if cell(t, tab, ablated, 1) >= cell(t, tab, ablated, 2) {
		t.Fatal("ablated: image-quality should lead again")
	}
}

func TestE9StressShape(t *testing.T) {
	tab, err := E9Stress(9)
	if err != nil {
		t.Fatal(err)
	}
	// Miss rate at the top level exceeds the baseline; baseline is clean.
	if cell(t, tab, 0, 1) != 0 {
		t.Fatal("unstressed TV should not miss frames")
	}
	if cell(t, tab, len(tab.Rows)-1, 1) <= 0 {
		t.Fatal("heavy eater should cause misses")
	}
	if cell(t, tab, len(tab.Rows)-1, 3) <= 0 {
		t.Fatal("monitor should detect under heavy stress")
	}
	if cell(t, tab, len(tab.Rows)-1, 2) >= cell(t, tab, 0, 2) {
		t.Fatal("quality should degrade under stress")
	}
}

func TestE10InspectionShape(t *testing.T) {
	tab, err := E10WarningPriority(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		base, _ := strconv.ParseFloat(row[1], 64)
		prio, _ := strconv.ParseFloat(row[2], 64)
		if prio <= base {
			t.Fatalf("k=%s: prioritized %v not better than baseline %v", row[0], prio, base)
		}
	}
}

func TestE11ModelQualityShape(t *testing.T) {
	tab, err := E11ModelQuality(1)
	if err != nil {
		t.Fatal(err)
	}
	buggy := findRow(t, tab, "buggy")
	fixed := findRow(t, tab, "fixed")
	if cell(t, tab, buggy, 2) == 0 {
		t.Fatal("exploration should find the seeded interaction bug")
	}
	if cell(t, tab, fixed, 2) != 0 {
		t.Fatal("fixed model should be clean")
	}
	spec := findRow(t, tab, "full TV spec model")
	if tab.Rows[spec][2] != "0" {
		t.Fatal("shipped spec model should pass its scripts")
	}
}

func TestE12MediaPlayerShape(t *testing.T) {
	tab, err := E12MediaPlayer(2)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][3] != "0" {
		t.Fatalf("healthy playback false positives = %s", tab.Rows[0][3])
	}
	for _, r := range tab.Rows[1:] {
		if r[1] != "true" {
			t.Fatalf("scenario %q not detected", r[0])
		}
	}
}

func TestE13FMEAShape(t *testing.T) {
	tab, err := E13FMEA(1)
	if err != nil {
		t.Fatal(err)
	}
	// Top-ranked component must be part of the streaming path and must show
	// nonzero measured exposure when its subsystem is attacked.
	top := tab.Rows[0][0]
	if top != "video" && top != "tuner" {
		t.Fatalf("top component = %s, want the streaming path", top)
	}
	videoRow := findRow(t, tab, "video")
	if cell(t, tab, videoRow, 2) <= 0 {
		t.Fatal("video injection should produce measured exposure")
	}
}

func TestE14FleetShape(t *testing.T) {
	tab, err := E14FleetSized(42, 120, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("E14 produced no rows")
	}
	for i, row := range tab.Rows {
		if cell(t, tab, i, 2) <= 0 {
			t.Fatalf("row %d: non-positive throughput: %v", i, row)
		}
		if cell(t, tab, i, 4) <= 0 {
			t.Fatalf("row %d: fleet flagged no faulty devices: %v", i, row)
		}
	}
	// The one-shard row defines the speedup baseline.
	if tab.Rows[0][3] != "1.00x" {
		t.Fatalf("baseline speedup = %s, want 1.00x", tab.Rows[0][3])
	}
	// Conservation and flagging are hard invariants checked inside
	// RunFleetRounds; reaching here means they held for every shard count.
}
