// Package exper implements the experiment harness: one function per
// experiment in DESIGN.md §4 (E1–E13), each regenerating the corresponding
// figure or case-study claim of the paper as a printable table.
// cmd/experiments runs them all; the repository-root benchmarks wrap them
// as testing.B targets.
package exper

import (
	"fmt"
	"io"
	"strings"

	"trader/internal/core"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/tvsim"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry the paper-vs-measured commentary recorded in
	// EXPERIMENTS.md.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// TVObservables is the reference monitor configuration for the TV SUO used
// across experiments.
func TVObservables() core.Configuration {
	return core.Configuration{
		Observables: []core.Observable{
			{Name: "audio-volume", EventName: "audio", ValueName: "volume", ModelVar: "volume", Threshold: 0.5, Tolerance: 1},
			{Name: "channel", EventName: "screen", ValueName: "channel", ModelVar: "channel"},
			{Name: "teletext-visible", EventName: "screen", ValueName: "teletext", ModelVar: "teletext"},
			{Name: "teletext-fresh", EventName: "teletext", ValueName: "fresh", ModelVar: "teletextFresh", Tolerance: 2, EnableVar: "teletext"},
			{Name: "frame-quality", EventName: "frame", ValueName: "quality", ModelVar: "quality", Threshold: 0.3, Tolerance: 3, EnableVar: "power",
				MaxSilence: 200 * sim.Millisecond},
			{Name: "swivel-angle", EventName: "swivel", ValueName: "angle", ModelVar: "swivelTarget", Threshold: 0.5, Tolerance: 60},
		},
	}
}

// NewMonitoredTV builds the standard monitored TV: simulator, spec model
// (with the partial frame-quality expectation mirrored from the power
// state), monitor attached to the TV bus.
func NewMonitoredTV(seed int64, cfg tvsim.Config) (*sim.Kernel, *tvsim.TV, *core.Monitor, error) {
	k := sim.NewKernel(seed)
	tv := tvsim.New(k, cfg)
	model := tvsim.BuildSpecModel(k, cfg)
	tvsim.MirrorQuality(model)
	mon, err := core.NewMonitor(k, model, TVObservables())
	if err != nil {
		return nil, nil, nil, err
	}
	if err := mon.Start(); err != nil {
		return nil, nil, nil, err
	}
	mon.AttachBus(tv.Bus())
	return k, tv, mon, nil
}

// mustModelStart panics on model start failure (experiment harness setup).
func mustModelStart(m *statemachine.Model) {
	if err := m.Start(); err != nil {
		panic(err)
	}
}
