package exper

import (
	"fmt"
	"runtime"
	"time"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/sim"
)

// E14Fleet measures fleet-scale concurrent monitoring: the paper monitors
// one high-volume device, but its premise is millions of deployed TVs. The
// experiment runs a synthetic fleet of monitored devices on a sharded pool
// and sweeps the shard count, reporting wall-clock dispatch throughput and
// the speedup over one shard. Device simulation is single-threaded inside a
// shard (kernels and spec models are lock-free by design), so throughput
// should scale near-linearly until the shard count passes the core count.
// About 1% of devices are built faulty; the fleet rollup must flag them.
func E14Fleet(seed int64) (*Table, error) { return E14FleetSized(seed, 1000, 150) }

// E14FleetSized runs the sweep with an explicit fleet size and round count
// (tests use small fleets; the benchmark and cmd/experiments use 1k).
func E14FleetSized(seed int64, devices, rounds int) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   fmt.Sprintf("fleet-scale monitoring: %d devices, shard sweep (industry-as-laboratory at fleet size)", devices),
		Columns: []string{"shards", "wall ms", "events/s", "speedup", "faulty flagged"},
	}
	var shardSet []int
	for s := 1; s <= runtime.GOMAXPROCS(0); s *= 2 {
		shardSet = append(shardSet, s)
	}
	var base float64
	for _, shards := range shardSet {
		wall, ro, err := RunFleetRounds(seed, shards, devices, rounds)
		if err != nil {
			return nil, err
		}
		throughput := float64(ro.Dispatched) / wall.Seconds()
		if base == 0 {
			base = throughput
		}
		t.AddRow(f("%d", shards), f("%.1f", float64(wall.Microseconds())/1000),
			f("%.0f", throughput), f("%.2fx", throughput/base), f("%d", ro.Reports))
	}
	t.Notes = append(t.Notes,
		"each device is a full monitor: sim.Kernel + spec model + comparator; shards only add concurrency between devices",
		"per-shard stats summed over devices equal the fleet rollup (conservation checked every run)",
		"expected shape: near-linear speedup until shards reach the core count")
	return t, nil
}

// RunFleetRounds drives one fleet configuration: build the pool, broadcast
// `rounds` commanded-level changes to every device (advancing virtual time
// every 25 rounds so periodic comparator work happens), and return the wall
// time and rollup. It verifies stats conservation — the sum of per-device
// counters must equal the fleet aggregate — and that every faulty device
// was flagged exactly once.
func RunFleetRounds(seed int64, shards, devices, rounds int) (time.Duration, fleet.Stats, error) {
	pool := fleet.NewPool(fleet.Options{Shards: shards})
	defer pool.Stop()
	const faultEvery = 97 // ~1% of the fleet is broken in the field
	factory := fleet.LightFactory(faultEvery)
	var faulty uint64
	for i := 0; i < devices; i++ {
		devSeed := seed + int64(i) + 1
		if devSeed%faultEvery == 0 {
			faulty++
		}
		if err := pool.AddDevice(fleet.DeviceID(i), devSeed, factory); err != nil {
			return 0, fleet.Stats{}, err
		}
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		e := event.Event{Kind: event.Input, Name: "set", Source: "headend"}.With("x", float64(r%5))
		if err := pool.Broadcast(e); err != nil {
			return 0, fleet.Stats{}, err
		}
		if r%25 == 24 {
			if err := pool.Advance(10 * sim.Millisecond); err != nil {
				return 0, fleet.Stats{}, err
			}
		}
	}
	if err := pool.Sync(); err != nil {
		return 0, fleet.Stats{}, err
	}
	wall := time.Since(start)

	ro := pool.Rollup()
	var sum core.MonitorStats
	for _, st := range pool.DeviceStats() {
		sum.Add(st)
	}
	if sum != ro.Monitor {
		return 0, fleet.Stats{}, fmt.Errorf("E14: stats conservation violated: devices sum %+v, fleet %+v", sum, ro.Monitor)
	}
	if ro.Reports != faulty {
		return 0, fleet.Stats{}, fmt.Errorf("E14: flagged %d devices, fleet has %d faulty", ro.Reports, faulty)
	}
	if want := uint64(devices * rounds); ro.Dispatched != want {
		return 0, fleet.Stats{}, fmt.Errorf("E14: dispatched %d events, want %d", ro.Dispatched, want)
	}
	return wall, ro, nil
}
