package exper

import (
	"time"

	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/loadbal"
	"trader/internal/modecheck"
	"trader/internal/recovery"
	"trader/internal/sim"
	"trader/internal/soc"
	"trader/internal/spectrum"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

// E4Diagnosis reproduces the Sect. 4.4 program-spectra experiment: 60 000
// blocks, the 27-press scenario, an injected teletext fault; the paper
// reports the faulty block "appeared on the first place in the ranking".
func E4Diagnosis(seed int64) (*Table, error) {
	p := spectrum.GenerateTVProgram(seed, 60000)
	scenario := spectrum.PaperScenario()
	fault := p.FaultInFeature("teletext")
	m := p.RunScenario(scenario, fault)

	t := &Table{
		ID:      "E4",
		Title:   "Spectrum-based diagnosis (Sect. 4.4): paper-shaped scenario",
		Columns: []string{"metric", "paper", "measured"},
	}
	t.AddRow("instrumented blocks", "60000", f("%d", m.Blocks()))
	t.AddRow("key presses", "27", f("%d", m.Transactions()))
	t.AddRow("blocks executed", "13796", f("%d", m.CoveredBlocks()))
	t.AddRow("failing transactions", "(some)", f("%d", m.Failures()))
	for _, c := range spectrum.AllCoefficients() {
		rank, ties := m.RankOf(fault, c)
		paper := "-"
		if c.Name == "ochiai" {
			paper = "1"
		}
		t.AddRow("fault rank ("+c.Name+")", paper, f("%d (ties %d)", rank, ties))
	}
	// Scenario-length sweep: diagnosis sharpens with more transactions.
	for _, n := range []int{9, 18, 27, 54} {
		long := make([]string, 0, n)
		for len(long) < n {
			long = append(long, scenario[len(long)%len(scenario)])
		}
		mm := p.RunScenario(long, fault)
		rank, _ := mm.RankOf(fault, spectrum.Ochiai)
		t.AddRow(f("ochiai rank with %d presses", n), "-", f("%d", rank))
	}
	t.Notes = append(t.Notes,
		"paper: 'the block which contains the fault appeared on the first place in the ranking'",
		"expected shape: Ochiai rank 1 at the paper's scenario size; rank improves (or stays 1) with longer scenarios")
	return t, nil
}

// E5ModeConsistency compares detectors on the teletext sync-loss fault
// (Sect. 4.3 / [17]): the mode-consistency checker versus the model-based
// comparator on page freshness.
func E5ModeConsistency(seed int64) (*Table, error) {
	faultAt := 4 * sim.Second

	k, tv, mon, err := NewMonitoredTV(seed, tvsim.Config{})
	if err != nil {
		return nil, err
	}
	checker := modecheck.NewChecker(k, modecheck.ForbidPair("teletext-sync",
		"txt-disp", "visible", "txt-acq", "searching"))
	checker.AttachBus(tv.Bus())

	var modeLat, compLat sim.Time = -1, -1
	checker.OnViolation(func(v modecheck.Violation) {
		if modeLat < 0 && v.At >= faultAt {
			modeLat = v.At - faultAt
		}
	})
	mon.OnError(func(r wire.ErrorReport) {
		if r.Observable == "teletext-fresh" && compLat < 0 && r.At >= faultAt {
			compLat = r.At - faultAt
		}
	})
	tv.Injector().Schedule(faults.Fault{
		ID: "sync", Kind: faults.SyncLoss, Target: "teletext",
		At: faultAt, Duration: 4 * sim.Second,
	})
	tv.PressKey(tvsim.KeyPower)
	tv.PressKey(tvsim.KeyText)
	k.Run(10 * sim.Second)

	t := &Table{
		ID:      "E5",
		Title:   "Teletext sync-loss detection (Sect. 4.3): mode consistency vs model comparator",
		Columns: []string{"detector", "detected", "latency"},
	}
	row := func(name string, lat sim.Time) {
		if lat >= 0 {
			t.AddRow(name, "yes", lat.String())
		} else {
			t.AddRow(name, "no", "-")
		}
	}
	row("mode-consistency checker", modeLat)
	row("comparator (teletext-fresh, tolerance 2)", compLat)
	t.AddRow("mode checks performed", f("%d", checker.Checks), "")
	t.Notes = append(t.Notes,
		"paper: mode-consistency checking 'turned out to be successful to detect teletext problems due to a loss of synchronization'",
		"expected shape: both detect; the mode checker needs no deviation streak so it reports no later than the comparator")
	return t, nil
}

// buildTVRecovery partitions the TV into recoverable units. Killing a unit
// crashes the corresponding subsystem via the fault injector; restarting
// repairs it. txt-disp depends on txt-acq (stale display must restart when
// acquisition restarts).
func buildTVRecovery(k *sim.Kernel, tv *tvsim.TV) *recovery.Manager {
	mgr := recovery.NewManager(k)
	crashID := map[string]string{}
	n := 0
	addCrashUnit := func(name, target string, latency sim.Time, deps ...string) {
		mgr.AddUnit(&recovery.Unit{
			Name:           name,
			RestartLatency: latency,
			DependsOn:      deps,
			OnKill: func() {
				n++
				id := f("rec-%s-%d", name, n)
				crashID[name] = id
				tv.Injector().Schedule(faults.Fault{
					ID: id, Kind: faults.TaskCrash, Target: target, At: k.Now(),
				})
			},
			OnRestart: func() {
				if id := crashID[name]; id != "" {
					tv.Injector().Repair(id)
				}
			},
		})
	}
	addCrashUnit("txt-acq", "teletext", 80*sim.Millisecond)
	mgr.AddUnit(&recovery.Unit{Name: "txt-disp", RestartLatency: 40 * sim.Millisecond, DependsOn: []string{"txt-acq"}})
	addCrashUnit("video", "video", 150*sim.Millisecond)
	return mgr
}

// E6Recovery measures the partial-recovery framework (Sect. 4.5): recovery
// scope versus recovery time and collateral damage to healthy subsystems.
func E6Recovery(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Partial recovery (Sect. 4.5): scope vs recovery time and collateral damage",
		Columns: []string{"scope", "recovery time", "video (healthy) downtime", "frames lost"},
	}
	run := func(scope recovery.Scope) (recTime, healthyDown sim.Time, framesLost int, err error) {
		k := sim.NewKernel(seed)
		tv := tvsim.New(k, tvsim.Config{})
		mgr := buildTVRecovery(k, tv)
		tv.PressKey(tvsim.KeyPower)
		tv.PressKey(tvsim.KeyText)
		k.Run(2 * sim.Second)

		frames := 0
		tv.Bus().Subscribe("frame", func(event.Event) { frames++ })
		if err := mgr.Recover("txt-acq", scope); err != nil {
			return 0, 0, 0, err
		}
		k.Run(k.Now() + 2*sim.Second)
		recTime = sim.Time(mgr.RecoveryTime.Max() * float64(sim.Second))
		healthyDown = mgr.Unit("video").Downtime
		if expected := 2 * 25; frames < expected {
			framesLost = expected - frames
		}
		return recTime, healthyDown, framesLost, nil
	}
	for _, sc := range []recovery.Scope{recovery.UnitOnly, recovery.Subtree, recovery.Full} {
		rt, hd, fl, err := run(sc)
		if err != nil {
			return nil, err
		}
		t.AddRow(sc.String(), rt.String(), hd.String(), f("%d", fl))
	}
	direct, routed := e6CommOverhead()
	t.AddRow("fault-free msg cost: direct call", f("%.0f ns", direct), "", "")
	t.AddRow("fault-free msg cost: via comm manager", f("%.0f ns", routed), "", "")
	t.Notes = append(t.Notes,
		"paper: 'independent recovery of parts of the system is possible without large overhead'",
		"expected shape: unit scope recovers fastest with zero collateral; full restart costs healthy units downtime and frames",
		"the per-message routing overhead of the communication manager is the framework's standing cost on fault-free runs")
	return t, nil
}

// e6CommOverhead measures wall-clock ns/message for a direct handler call
// versus routing through the communication manager on a running unit.
func e6CommOverhead() (direct, routed float64) {
	const n = 200000
	sink := 0.0
	handler := func(m recovery.Message) { sink += m.Payload }

	start := time.Now()
	for i := 0; i < n; i++ {
		handler(recovery.Message{To: "u", Payload: 1})
	}
	direct = float64(time.Since(start).Nanoseconds()) / n

	k := sim.NewKernel(1)
	mgr := recovery.NewManager(k)
	mgr.AddUnit(&recovery.Unit{Name: "u"})
	mgr.Comm().Handle("u", handler)
	start = time.Now()
	for i := 0; i < n; i++ {
		mgr.Comm().Send(recovery.Message{To: "u", Payload: 1})
	}
	routed = float64(time.Since(start).Nanoseconds()) / n
	_ = sink
	return direct, routed
}

// E7Migration measures the load-balancing recovery (Sect. 4.5, IMEC) and
// the adaptive memory arbiter (NXP): overload with and without task
// migration, and arbiter policies under port saturation.
func E7Migration(seed int64) (*Table, error) {
	run := func(balance bool) (missRate, meanQ float64) {
		k := sim.NewKernel(seed)
		tv := tvsim.New(k, tvsim.Config{})
		tv.PressKey(tvsim.KeyPower)
		tv.Injector().Schedule(faults.Fault{
			ID: "ov", Kind: faults.Overload, Target: "video",
			At: sim.Second, Duration: 8 * sim.Second, Param: 2.1,
		})
		var qSum float64
		var qN int
		tv.Bus().Subscribe("frame", func(e event.Event) {
			q, _ := e.Get("quality")
			qSum += q
			qN++
		})
		if balance {
			b := loadbal.New(k, tv.CPUs(), loadbal.Policy{CheckEvery: 100 * sim.Millisecond})
			b.Start()
		}
		k.Run(10 * sim.Second)
		var completed, missed uint64
		for _, c := range tv.CPUs() {
			completed += c.Stats().JobsCompleted
			missed += c.Stats().DeadlineMisses
		}
		if completed > 0 {
			missRate = float64(missed) / float64(completed)
		}
		if qN > 0 {
			meanQ = qSum / float64(qN)
		}
		return missRate, meanQ
	}
	withoutMiss, withoutQ := run(false)
	withMiss, withQ := run(true)

	t := &Table{
		ID:      "E7",
		Title:   "Task migration under overload (Sect. 4.5, IMEC) + adaptive memory arbitration (NXP)",
		Columns: []string{"configuration", "deadline miss rate", "mean frame quality"},
	}
	t.AddRow("overload, no migration", f("%.4f", withoutMiss), f("%.3f", withoutQ))
	t.AddRow("overload, with load balancer", f("%.4f", withMiss), f("%.3f", withQ))

	// Arbiter comparison: a saturated memory port with a low-priority
	// periodic requestor (the scenario NXP's flexible arbitration targets).
	arbRun := func(arb soc.Arbiter) (served uint64, mean float64) {
		k := sim.NewKernel(seed)
		m := soc.NewMemController(k, "ddr", 10, arb)
		m.Register(&soc.Requestor{Name: "cpu", Priority: 0, LatencyTarget: 50})
		m.Register(&soc.Requestor{Name: "gfx", Priority: 1, LatencyTarget: 50})
		m.Register(&soc.Requestor{Name: "io", Priority: 2, LatencyTarget: 50})
		var recpu, regfx func()
		recpu = func() { m.Request("cpu", recpu) }
		regfx = func() { m.Request("gfx", regfx) }
		m.Request("cpu", recpu)
		m.Request("gfx", regfx)
		k.Every(100, func() { m.Request("io", nil) })
		k.Run(10000)
		io := m.Requestor("io")
		return io.Served, io.Latency.Mean()
	}
	for _, arb := range []soc.Arbiter{soc.FixedPriority{}, &soc.RoundRobin{}, soc.Adaptive{}} {
		served, mean := arbRun(arb)
		t.AddRow("io under "+arb.Name()+" arbiter (served / mean latency)",
			f("%d", served), f("%.1f ns", mean*1e9))
	}
	t.Notes = append(t.Notes,
		"paper: migration 'leads to improved image quality in case of overload situations'; arbitration 'can be adapted at run-time'",
		"expected shape: migration cuts the miss rate and lifts quality; the adaptive arbiter serves the starved requestor where fixed priority starves it")
	return t, nil
}
