package exper

import (
	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/fmea"
	"trader/internal/inspect"
	"trader/internal/mediaplayer"
	"trader/internal/perception"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/stress"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

// E8Perception reproduces the Sect. 4.6 finding: stated importance puts
// image quality on top, but observed irritation puts the internally-
// attributed swivel failure on top; removing the attribution term removes
// the flip.
func E8Perception(seed int64) (*Table, error) {
	panel := perception.NewPanel(seed, 50, perception.DefaultGroups)
	stated := panel.StatedImportanceRanking()
	failures := []perception.Failure{
		{Function: "image-quality", Severity: 0.6, Duration: 30 * sim.Second, Attribution: perception.External},
		{Function: "swivel", Severity: 0.6, Duration: 30 * sim.Second, Attribution: perception.Internal},
		{Function: "teletext", Severity: 0.6, Duration: 30 * sim.Second, Attribution: perception.Internal},
	}
	observed := panel.ObservedIrritationRanking(failures)
	// Ablation: no attribution discount.
	flat := perception.NewPanel(seed, 50, perception.DefaultGroups)
	for _, u := range flat.Users {
		u.ExternalDiscount = 1.0
	}
	ablated := flat.ObservedIrritationRanking(failures)

	t := &Table{
		ID:      "E8",
		Title:   "User perception (Sect. 4.6): failure attribution dominates irritation",
		Columns: []string{"metric", "image-quality", "swivel"},
	}
	t.AddRow("stated importance rank", f("%d", stated.RankOf("image-quality")), f("%d", stated.RankOf("swivel")))
	t.AddRow("observed irritation rank", f("%d", observed.RankOf("image-quality")), f("%d", observed.RankOf("swivel")))
	t.AddRow("observed rank w/o attribution term", f("%d", ablated.RankOf("image-quality")), f("%d", ablated.RankOf("swivel")))
	t.Notes = append(t.Notes,
		"paper: users rank both as important, tolerate bad image quality (external attribution) but are irritated by a failing swivel",
		"expected shape: ranks flip between stated and observed; ablating attribution restores the stated order")
	return t, nil
}

// E9Stress sweeps the CPU eater on the TV (Sect. 4.7, TASS): overload
// behaviour of the streaming side and what the awareness monitor sees.
func E9Stress(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "CPU-eater stress testing (Sect. 4.7): overload behaviour and monitor detections",
		Columns: []string{"eaten CPU fraction", "frame miss rate", "mean frame quality", "monitor errors"},
	}
	for _, frac := range []float64{0, 0.2, 0.35, 0.5, 0.65} {
		k, tv, mon, err := NewMonitoredTV(seed, tvsim.Config{})
		if err != nil {
			return nil, err
		}
		errs := 0
		mon.OnError(func(wire.ErrorReport) { errs++ })
		tv.PressKey(tvsim.KeyPower)
		k.Run(sim.Second)
		var eater *stress.CPUEater
		if frac > 0 {
			eater = stress.NewCPUEater(tv.CPUs()[0], frac, 0)
			eater.Activate()
		}
		var qSum float64
		var qN int
		tv.Bus().Subscribe("frame", func(e event.Event) {
			q, _ := e.Get("quality")
			qSum += q
			qN++
		})
		k.Run(k.Now() + 5*sim.Second)
		if eater != nil {
			eater.Deactivate()
		}
		var completed, missed uint64
		for _, c := range tv.CPUs() {
			completed += c.Stats().JobsCompleted
			missed += c.Stats().DeadlineMisses
		}
		missRate := 0.0
		if completed > 0 {
			missRate = float64(missed) / float64(completed)
		}
		meanQ := 0.0
		if qN > 0 {
			meanQ = qSum / float64(qN)
		}
		t.AddRow(f("%.2f", frac), f("%.4f", missRate), f("%.3f", meanQ), f("%d", errs))
	}
	t.Notes = append(t.Notes,
		"paper: stress testing by taking away shared resources 'has shown to be very useful in the TV domain'",
		"expected shape: miss rate and monitor detections grow with eaten fraction; quality degrades monotonically")
	return t, nil
}

// E10WarningPriority evaluates warning prioritization by static profiling
// (Sect. 4.7 / Boogerd & Moonen): precision@k against the severity-only
// baseline on synthetic programs with known ground truth.
func E10WarningPriority(seed int64) (*Table, error) {
	const runs = 10
	ks := []int{10, 20, 50}
	sumPrio := make([]float64, len(ks))
	sumBase := make([]float64, len(ks))
	for r := int64(0); r < runs; r++ {
		sp := inspect.GenerateProgram(seed+r, 6, 30, 200)
		like := sp.Graph.Likelihood()
		prio := inspect.RankByLikelihood(sp.Warnings, like)
		base := inspect.RankBySeverity(sp.Warnings)
		for i, k := range ks {
			sumPrio[i] += inspect.PrecisionAt(prio, k)
			sumBase[i] += inspect.PrecisionAt(base, k)
		}
	}
	t := &Table{
		ID:      "E10",
		Title:   "Warning prioritization by static profiling (Sect. 4.7): precision@k over 10 programs",
		Columns: []string{"k", "severity-only baseline", "severity x likelihood"},
	}
	for i, k := range ks {
		t.AddRow(f("%d", k), f("%.3f", sumBase[i]/runs), f("%.3f", sumPrio[i]/runs))
	}
	t.Notes = append(t.Notes,
		"paper: static profiling prioritizes the warnings of an inspection tool such as QA-C",
		"expected shape: prioritized precision beats the baseline at every k")
	return t, nil
}

// E11ModelQuality reproduces the Sect. 4.2 modelling-error experience:
// bounded exploration of a seeded feature-interaction bug versus the fixed
// model, plus the spec model's invariants over directed scripts.
func E11ModelQuality(seed int64) (*Table, error) {
	build := func(buggy bool) *statemachine.Model {
		osd := statemachine.NewRegion("osd")
		guardMenu := func(c *statemachine.Context) bool { return c.Get("txt") == 0 }
		if buggy {
			guardMenu = nil
		}
		osd.Add(&statemachine.State{Name: "none", Transitions: []statemachine.Transition{
			{Event: "menu", Guard: guardMenu, Target: "menuOn",
				Action: func(c *statemachine.Context) { c.Set("menu", 1) }}}})
		osd.Add(&statemachine.State{Name: "menuOn", Transitions: []statemachine.Transition{
			{Event: "menu", Target: "none",
				Action: func(c *statemachine.Context) { c.Set("menu", 0) }}}})
		txt := statemachine.NewRegion("teletext")
		guardTxt := func(c *statemachine.Context) bool { return c.Get("menu") == 0 }
		if buggy {
			guardTxt = nil
		}
		txt.Add(&statemachine.State{Name: "off", Transitions: []statemachine.Transition{
			{Event: "text", Guard: guardTxt, Target: "onT",
				Action: func(c *statemachine.Context) { c.Set("txt", 1) }}}})
		txt.Add(&statemachine.State{Name: "onT", Transitions: []statemachine.Transition{
			{Event: "text", Target: "off",
				Action: func(c *statemachine.Context) { c.Set("txt", 0) }}}})
		m := statemachine.MustModel("osd-fragment", nil, osd, txt)
		m.AddInvariant("menu-suppresses-teletext", func(m *statemachine.Model) bool {
			return !(m.Var("menu") == 1 && m.Var("txt") == 1)
		})
		mustModelStart(m)
		return m
	}
	opts := statemachine.ExploreOptions{Alphabet: []string{"menu", "text"}}
	buggy := build(true).Explore(opts)
	fixed := build(false).Explore(opts)

	countKind := func(res statemachine.ExploreResult, kind string) int {
		n := 0
		for _, v := range res.Violations {
			if v.Kind == kind {
				n++
			}
		}
		return n
	}
	t := &Table{
		ID:      "E11",
		Title:   "Model quality via exploration (Sect. 4.2): seeded feature-interaction bug",
		Columns: []string{"model", "states", "invariant violations", "unreachable states"},
	}
	t.AddRow("buggy (missing suppression guards)", f("%d", buggy.StatesVisited), f("%d", countKind(buggy, "invariant")), f("%d", len(buggy.Unreachable)))
	t.AddRow("fixed", f("%d", fixed.StatesVisited), f("%d", countKind(fixed, "invariant")), f("%d", len(fixed.Unreachable)))

	// Full TV spec model: invariants along directed interaction scripts.
	scripts := [][]tvsim.Key{
		{tvsim.KeyPower, tvsim.KeyText, tvsim.KeyMenu, tvsim.KeyText, tvsim.KeyBack, tvsim.KeyDual, tvsim.KeyText},
		{tvsim.KeyPower, tvsim.KeyDual, tvsim.KeyText, tvsim.KeyMenu, tvsim.KeyMenu, tvsim.KeyPower},
	}
	violations := 0
	for _, script := range scripts {
		m := tvsim.BuildSpecModel(nil, tvsim.Config{})
		mustModelStart(m)
		for _, key := range script {
			ev := event.Event{Kind: event.Input, Name: "key"}.With("key", float64(key))
			if err := m.Dispatch(ev); err != nil {
				violations++
			}
		}
	}
	t.AddRow("full TV spec model (scripted)", "-", f("%d", violations), "-")
	t.Notes = append(t.Notes,
		"paper: 'it was very easy to make modeling errors ... many interactions between features'; model checking and test scripts improve quality",
		"expected shape: exploration finds the seeded bug, the fixed model and the shipped spec model are clean")
	return t, nil
}

// E12MediaPlayer runs the Sect. 5 future-work experiment: awareness on the
// media player for a correctness failure (A/V drift) and a performance
// failure (stall).
func E12MediaPlayer(seed int64) (*Table, error) {
	run := func(fault *faults.Fault) (detected bool, latency sim.Time, falsePos int, err error) {
		k := sim.NewKernel(seed)
		p := mediaplayer.New(k, mediaplayer.Config{})
		model := mediaplayer.BuildSpecModel(k, mediaplayer.Config{})
		mon, err := core.NewMonitor(k, model, core.Configuration{
			Observables: []core.Observable{
				{Name: "fps", EventName: "av", ValueName: "fps", ModelVar: "fps",
					Threshold: 5, Tolerance: 1, EnableVar: "playing", MaxSilence: 500 * sim.Millisecond},
				{Name: "av-drift", EventName: "av", ValueName: "drift", ModelVar: "drift",
					Threshold: 80, Tolerance: 1, EnableVar: "playing"},
			},
		})
		if err != nil {
			return false, 0, 0, err
		}
		if err := mon.Start(); err != nil {
			return false, 0, 0, err
		}
		mon.AttachBus(p.Bus())
		var faultAt sim.Time
		if fault != nil {
			faultAt = fault.At
			p.Injector().Schedule(*fault)
		}
		mon.OnError(func(r wire.ErrorReport) {
			if fault != nil && r.At >= faultAt {
				if !detected {
					detected = true
					latency = r.At - faultAt
				}
			} else {
				falsePos++
			}
		})
		p.Do(mediaplayer.CmdPlay)
		k.Run(6 * sim.Second)
		return detected, latency, falsePos, nil
	}
	t := &Table{
		ID:      "E12",
		Title:   "Media-player awareness (Sect. 5): correctness (drift) and performance (stall)",
		Columns: []string{"scenario", "detected", "latency", "false positives"},
	}
	_, _, fp, err := run(nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("healthy playback", "-", "-", f("%d", fp))
	det, lat, _, err := run(&faults.Fault{ID: "stall", Kind: faults.Deadlock, Target: "demuxer", At: 2 * sim.Second, Duration: 2 * sim.Second})
	if err != nil {
		return nil, err
	}
	t.AddRow("demuxer stall (performance)", f("%v", det), lat.String(), "-")
	det, lat, _, err = run(&faults.Fault{ID: "drift", Kind: faults.ValueCorruption, Target: "audio-clock", At: 2 * sim.Second, Param: 1.1})
	if err != nil {
		return nil, err
	}
	t.AddRow("audio clock drift (correctness)", f("%v", det), lat.String(), "-")
	t.Notes = append(t.Notes,
		"paper: MPlayer experiments investigate 'both correctness and performance issues'",
		"expected shape: both failure classes detected; healthy playback raises nothing")
	return t, nil
}

// E13FMEA runs the architecture-level reliability analysis (Sect. 4.7 /
// [18]) and cross-checks its component ranking against fault-injection
// ground truth from the simulator.
func E13FMEA(seed int64) (*Table, error) {
	arch := fmea.TVArchitecture()
	byComp := arch.CriticalityByComponent()

	// Ground truth: measured user-visible failure seconds per subsystem
	// from targeted injections on the simulator.
	measure := func(fault faults.Fault, fn string) float64 {
		k := sim.NewKernel(seed)
		tv := tvsim.New(k, tvsim.Config{})
		meter := newFailureMeter(k, tv)
		tv.Injector().Schedule(fault)
		tv.PressKey(tvsim.KeyPower)
		tv.PressKey(tvsim.KeyText)
		k.Run(10 * sim.Second)
		return meter.accum[fn].Seconds()
	}
	videoSecs := measure(faults.Fault{ID: "c", Kind: faults.TaskCrash, Target: "video", At: 2 * sim.Second}, "image-quality")
	txtSecs := measure(faults.Fault{ID: "s", Kind: faults.SyncLoss, Target: "teletext", At: 2 * sim.Second, Duration: 8 * sim.Second}, "teletext")

	t := &Table{
		ID:      "E13",
		Title:   "Architecture-level reliability analysis (Sect. 4.7): FMEA criticality vs injection ground truth",
		Columns: []string{"component", "aggregate RPN", "measured exposure (s, targeted injection)"},
	}
	for _, e := range byComp {
		measured := "-"
		switch e.Component {
		case "video":
			measured = f("%.1f", videoSecs)
		case "txt-acq", "txt-disp":
			measured = f("%.1f", txtSecs)
		}
		t.AddRow(e.Component, f("%.4f", e.RPN), measured)
	}
	t.Notes = append(t.Notes,
		"paper: FMEA extended to the software architecture level for reliability analysis",
		"expected shape: the streaming path dominates RPN and also dominates measured exposure under injection")
	return t, nil
}
