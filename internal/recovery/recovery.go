// Package recovery implements the partial-recovery framework of Sect. 4.5
// (University of Twente): the system is partitioned into *recoverable
// units* that can be killed and restarted independently; a *communication
// manager* routes inter-unit messages and queues traffic aimed at a unit
// that is down; a *recovery manager* executes recovery actions (kill,
// restart, escalate) and accounts downtime. The paper reports that "after
// some refactoring of the system, independent recovery of parts of the
// system is possible without large overhead" — the overhead and
// recovery-time experiments (E6) measure exactly that on this
// implementation.
package recovery

import (
	"fmt"
	"sort"

	"trader/internal/sim"
)

// UnitState is a recoverable unit's lifecycle state.
type UnitState int

// Unit lifecycle states.
const (
	Running UnitState = iota
	Killed
	Restarting
)

// String returns the state name.
func (s UnitState) String() string {
	switch s {
	case Running:
		return "running"
	case Killed:
		return "killed"
	case Restarting:
		return "restarting"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Unit is one recoverable unit.
type Unit struct {
	Name string
	// OnKill tears the unit down (detach tasks, reset modes). Must be
	// idempotent.
	OnKill func()
	// OnRestart brings the unit back up; it runs RestartLatency after the
	// kill (the restart cost).
	OnRestart func()
	// RestartLatency is the virtual time a restart takes.
	RestartLatency sim.Time
	// DependsOn lists units that must be recovered when this unit is
	// recovered with scope Subtree (e.g. display depends on acquisition).
	DependsOn []string

	state UnitState
	// Recoveries counts completed restarts.
	Recoveries uint64
	// Downtime accumulates time spent not Running.
	Downtime  sim.Time
	downSince sim.Time
}

// State returns the unit's current state.
func (u *Unit) State() UnitState { return u.state }

// Message is an inter-unit message.
type Message struct {
	From, To string
	Name     string
	Payload  float64
}

// CommManager routes messages between units. Messages to a unit that is not
// Running are queued (up to QueueCap per unit) and flushed on restart —
// "a communication manager, which controls the communication between
// recoverable units".
type CommManager struct {
	mgr      *Manager
	handlers map[string]func(Message)
	queues   map[string][]Message
	// QueueCap bounds each unit's hold-back queue (0 = 1024).
	QueueCap int
	// Delivered, Queued and Dropped count message outcomes.
	Delivered uint64
	Queued    uint64
	Dropped   uint64
}

// Handle registers the message handler for a unit.
func (cm *CommManager) Handle(unit string, fn func(Message)) {
	cm.handlers[unit] = fn
}

// Send routes a message. Delivery is synchronous when the destination is
// Running; otherwise the message is queued for the restart flush.
func (cm *CommManager) Send(m Message) {
	u := cm.mgr.units[m.To]
	if u == nil {
		panic(fmt.Sprintf("recovery: send to unknown unit %q", m.To))
	}
	if u.state == Running {
		cm.Delivered++
		if h := cm.handlers[m.To]; h != nil {
			h(m)
		}
		return
	}
	cap := cm.QueueCap
	if cap <= 0 {
		cap = 1024
	}
	if len(cm.queues[m.To]) >= cap {
		cm.Dropped++
		return
	}
	cm.Queued++
	cm.queues[m.To] = append(cm.queues[m.To], m)
}

// flush delivers a unit's held-back messages after restart.
func (cm *CommManager) flush(unit string) {
	q := cm.queues[unit]
	cm.queues[unit] = nil
	h := cm.handlers[unit]
	for _, m := range q {
		cm.Delivered++
		if h != nil {
			h(m)
		}
	}
}

// PendingFor returns the number of queued messages for a unit.
func (cm *CommManager) PendingFor(unit string) int { return len(cm.queues[unit]) }

// Scope selects how much of the system one recovery action restarts.
type Scope int

// Recovery scopes, in escalation order.
const (
	// UnitOnly restarts just the failed unit.
	UnitOnly Scope = iota
	// Subtree restarts the unit and its transitive dependents.
	Subtree
	// Full restarts every unit (the classic whole-system reboot the
	// framework is designed to avoid).
	Full
)

// String returns the scope name.
func (s Scope) String() string {
	switch s {
	case UnitOnly:
		return "unit"
	case Subtree:
		return "subtree"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("scope(%d)", int(s))
	}
}

// Manager is the recovery manager: it owns the units and executes recovery
// actions on the kernel.
type Manager struct {
	kernel *sim.Kernel
	units  map[string]*Unit
	order  []string
	comm   *CommManager

	// RecoveriesStarted / RecoveriesCompleted count actions.
	RecoveriesStarted   uint64
	RecoveriesCompleted uint64
	// RecoveryTime collects per-action wall time (seconds, virtual).
	RecoveryTime sim.Series
}

// NewManager creates a recovery manager.
func NewManager(kernel *sim.Kernel) *Manager {
	m := &Manager{kernel: kernel, units: make(map[string]*Unit)}
	m.comm = &CommManager{
		mgr:      m,
		handlers: make(map[string]func(Message)),
		queues:   make(map[string][]Message),
	}
	return m
}

// Comm returns the communication manager.
func (m *Manager) Comm() *CommManager { return m.comm }

// AddUnit registers a recoverable unit (initially Running).
func (m *Manager) AddUnit(u *Unit) {
	if u.Name == "" {
		panic("recovery: unit needs a name")
	}
	if _, dup := m.units[u.Name]; dup {
		panic(fmt.Sprintf("recovery: duplicate unit %q", u.Name))
	}
	u.state = Running
	m.units[u.Name] = u
	m.order = append(m.order, u.Name)
}

// Unit returns the named unit, or nil.
func (m *Manager) Unit(name string) *Unit { return m.units[name] }

// Units returns unit names in registration order.
func (m *Manager) Units() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// dependents returns the transitive closure of units depending on name
// (units listing it in DependsOn), sorted for determinism.
func (m *Manager) dependents(name string) []string {
	closed := map[string]bool{name: true}
	changed := true
	for changed {
		changed = false
		for _, n := range m.order {
			if closed[n] {
				continue
			}
			for _, d := range m.units[n].DependsOn {
				if closed[d] {
					closed[n] = true
					changed = true
					break
				}
			}
		}
	}
	delete(closed, name)
	out := make([]string, 0, len(closed))
	for n := range closed {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Recover executes a recovery action for the named unit at the given scope.
// It kills the affected units immediately and schedules their restarts after
// their RestartLatency; queued messages flush when each unit comes back.
// Recovering an already-recovering unit is a no-op (the in-flight recovery
// continues).
func (m *Manager) Recover(name string, scope Scope) error {
	u := m.units[name]
	if u == nil {
		return fmt.Errorf("recovery: unknown unit %q", name)
	}
	if u.state != Running {
		return nil // recovery already in progress
	}
	var victims []string
	switch scope {
	case UnitOnly:
		victims = []string{name}
	case Subtree:
		victims = append([]string{name}, m.dependents(name)...)
	case Full:
		victims = m.Units()
	}
	m.RecoveriesStarted++
	started := m.kernel.Now()
	remaining := len(victims)
	for _, v := range victims {
		vu := m.units[v]
		if vu.state != Running {
			remaining--
			continue
		}
		m.kill(vu)
		lat := vu.RestartLatency
		vu.state = Restarting
		m.kernel.Schedule(lat, func() {
			m.restart(vu)
			remaining--
			if remaining == 0 {
				m.RecoveriesCompleted++
				m.RecoveryTime.Observe((m.kernel.Now() - started).Seconds())
			}
		})
	}
	if remaining == 0 { // everything was already down
		m.RecoveriesCompleted++
		m.RecoveryTime.Observe(0)
	}
	return nil
}

func (m *Manager) kill(u *Unit) {
	u.state = Killed
	u.downSince = m.kernel.Now()
	if u.OnKill != nil {
		u.OnKill()
	}
}

func (m *Manager) restart(u *Unit) {
	if u.OnRestart != nil {
		u.OnRestart()
	}
	u.state = Running
	u.Recoveries++
	u.Downtime += m.kernel.Now() - u.downSince
	m.comm.flush(u.Name)
}
