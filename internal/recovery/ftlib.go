package recovery

import (
	"errors"
	"fmt"

	"trader/internal/sim"
)

// This file is the "reusable fault tolerance library" of Sect. 4.5: small
// building blocks (retry, checkpoint/rollback, guarded execution) that
// recoverable units compose.

// ErrRetriesExhausted is returned when Retry gives up.
var ErrRetriesExhausted = errors.New("recovery: retries exhausted")

// Retry runs fn up to attempts times, stopping at the first nil error. The
// per-attempt backoff is scheduled on the kernel (attempt i waits
// i*backoff). It calls done(err) when finished; err is nil on success and
// wraps ErrRetriesExhausted on failure.
func Retry(kernel *sim.Kernel, attempts int, backoff sim.Time, fn func() error, done func(error)) {
	if attempts <= 0 {
		done(fmt.Errorf("%w: zero attempts", ErrRetriesExhausted))
		return
	}
	var attempt func(n int)
	attempt = func(n int) {
		err := fn()
		if err == nil {
			done(nil)
			return
		}
		if n+1 >= attempts {
			done(fmt.Errorf("%w: last error: %v", ErrRetriesExhausted, err))
			return
		}
		kernel.Schedule(sim.Time(n+1)*backoff, func() { attempt(n + 1) })
	}
	attempt(0)
}

// Checkpoint snapshots named scalar state so a unit can roll back to its
// last consistent state on restart instead of cold-starting.
type Checkpoint struct {
	snaps []map[string]float64
	// Keep bounds retained snapshots (0 = 8).
	Keep int
}

// Save stores a snapshot (the map is copied).
func (c *Checkpoint) Save(state map[string]float64) {
	cp := make(map[string]float64, len(state))
	for k, v := range state {
		cp[k] = v
	}
	c.snaps = append(c.snaps, cp)
	keep := c.Keep
	if keep <= 0 {
		keep = 8
	}
	if len(c.snaps) > keep {
		c.snaps = c.snaps[len(c.snaps)-keep:]
	}
}

// Latest returns a copy of the most recent snapshot, or nil.
func (c *Checkpoint) Latest() map[string]float64 {
	if len(c.snaps) == 0 {
		return nil
	}
	last := c.snaps[len(c.snaps)-1]
	cp := make(map[string]float64, len(last))
	for k, v := range last {
		cp[k] = v
	}
	return cp
}

// Rollback discards the newest snapshot and returns a copy of the one
// before it (nil when no older snapshot exists).
func (c *Checkpoint) Rollback() map[string]float64 {
	if len(c.snaps) == 0 {
		return nil
	}
	c.snaps = c.snaps[:len(c.snaps)-1]
	return c.Latest()
}

// Depth returns the number of retained snapshots.
func (c *Checkpoint) Depth() int { return len(c.snaps) }

// Guard runs fn and converts a panic into an error — exception containment
// at a unit boundary, so one component's crash cannot take down the whole
// process.
func Guard(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovery: contained panic: %v", r)
		}
	}()
	fn()
	return nil
}
