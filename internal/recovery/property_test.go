package recovery

import (
	"testing"
	"testing/quick"

	"trader/internal/sim"
)

// Property: after any sequence of recovery actions, once the kernel drains
// every unit is Running, every started recovery completed, and downtime is
// consistent (positive for every unit that was ever killed).
func TestPropertyRecoveryConverges(t *testing.T) {
	f := func(actions []uint8) bool {
		k := sim.NewKernel(2)
		m := NewManager(k)
		names := []string{"a", "b", "c", "d"}
		for i, n := range names {
			deps := []string{}
			if i > 0 {
				deps = append(deps, names[i-1]) // chain: d→c→b→a
			}
			m.AddUnit(&Unit{Name: n, RestartLatency: sim.Time(10 * (i + 1)), DependsOn: deps})
		}
		count := 0
		for _, a := range actions {
			if count >= 30 {
				break
			}
			count++
			name := names[int(a)%len(names)]
			scope := Scope(int(a>>4) % 3)
			at := sim.Time(a) * 3
			k.ScheduleAt(at, func() { _ = m.Recover(name, scope) })
		}
		k.RunAll()
		for _, n := range names {
			u := m.Unit(n)
			if u.State() != Running {
				return false
			}
			if u.Recoveries > 0 && u.Downtime <= 0 {
				return false
			}
		}
		return m.RecoveriesStarted == m.RecoveriesCompleted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the communication manager never loses an in-order message when
// the queue capacity is not exceeded — everything sent is either delivered
// immediately or flushed after restart, in send order per destination.
func TestPropertyCommDeliveryOrder(t *testing.T) {
	f := func(sendsRaw []uint8, killAtRaw uint8) bool {
		k := sim.NewKernel(3)
		m := NewManager(k)
		m.AddUnit(&Unit{Name: "u", RestartLatency: 50})
		var got []float64
		m.Comm().Handle("u", func(msg Message) { got = append(got, msg.Payload) })
		sends := len(sendsRaw)
		if sends > 100 {
			sends = 100
		}
		killAt := int(killAtRaw) % (sends + 1)
		for i := 0; i < sends; i++ {
			i := i
			k.ScheduleAt(sim.Time(i*2), func() {
				if i == killAt {
					_ = m.Recover("u", UnitOnly)
				}
				m.Comm().Send(Message{To: "u", Payload: float64(i)})
			})
		}
		k.RunAll()
		if len(got) != sends {
			return false
		}
		for i, v := range got {
			if v != float64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
