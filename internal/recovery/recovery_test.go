package recovery

import (
	"errors"
	"testing"

	"trader/internal/sim"
)

func twoUnits(t *testing.T) (*sim.Kernel, *Manager, *[]string) {
	t.Helper()
	k := sim.NewKernel(1)
	m := NewManager(k)
	var trace []string
	add := func(name string, lat sim.Time, deps ...string) {
		m.AddUnit(&Unit{
			Name:           name,
			RestartLatency: lat,
			DependsOn:      deps,
			OnKill:         func() { trace = append(trace, "kill:"+name) },
			OnRestart:      func() { trace = append(trace, "restart:"+name) },
		})
	}
	add("txt-acq", 50)
	add("txt-disp", 30, "txt-acq")
	add("video", 100)
	return k, m, &trace
}

func TestRecoverUnitOnly(t *testing.T) {
	k, m, trace := twoUnits(t)
	if err := m.Recover("txt-acq", UnitOnly); err != nil {
		t.Fatal(err)
	}
	if m.Unit("txt-acq").State() != Restarting {
		t.Fatal("unit should be restarting")
	}
	if m.Unit("txt-disp").State() != Running {
		t.Fatal("UnitOnly must not touch dependents")
	}
	k.Run(50)
	if m.Unit("txt-acq").State() != Running {
		t.Fatal("unit should be back")
	}
	want := []string{"kill:txt-acq", "restart:txt-acq"}
	if len(*trace) != 2 || (*trace)[0] != want[0] || (*trace)[1] != want[1] {
		t.Fatalf("trace = %v", *trace)
	}
	if m.Unit("txt-acq").Recoveries != 1 || m.Unit("txt-acq").Downtime != 50 {
		t.Fatalf("unit stats: %d recoveries, downtime %v",
			m.Unit("txt-acq").Recoveries, m.Unit("txt-acq").Downtime)
	}
	if m.RecoveriesCompleted != 1 {
		t.Fatal("manager stats")
	}
}

func TestRecoverSubtreeTakesDependents(t *testing.T) {
	k, m, trace := twoUnits(t)
	if err := m.Recover("txt-acq", Subtree); err != nil {
		t.Fatal(err)
	}
	if m.Unit("txt-disp").State() != Restarting {
		t.Fatal("dependent should restart too")
	}
	if m.Unit("video").State() != Running {
		t.Fatal("unrelated unit must keep running")
	}
	k.RunAll()
	kills := 0
	for _, s := range *trace {
		if s == "kill:txt-acq" || s == "kill:txt-disp" {
			kills++
		}
	}
	if kills != 2 {
		t.Fatalf("trace = %v", *trace)
	}
	// Completion time = max latency of the subtree.
	if m.RecoveryTime.Max() != (50 * sim.Nanosecond).Seconds() {
		t.Fatalf("recovery time = %v, want 50ns", m.RecoveryTime.Max())
	}
}

func TestRecoverFullRestartsEverything(t *testing.T) {
	k, m, _ := twoUnits(t)
	if err := m.Recover("txt-disp", Full); err != nil {
		t.Fatal(err)
	}
	for _, name := range m.Units() {
		if m.Unit(name).State() != Restarting {
			t.Fatalf("unit %s not restarting under Full", name)
		}
	}
	k.RunAll()
	for _, name := range m.Units() {
		if m.Unit(name).State() != Running {
			t.Fatalf("unit %s not back", name)
		}
	}
}

func TestPartialBeatsFullRecoveryTime(t *testing.T) {
	// E6's core claim: partial recovery of one unit is faster than a full
	// restart (whose time is the max of all restart latencies, and which
	// also takes down healthy units).
	k1, m1, _ := twoUnits(t)
	_ = m1.Recover("txt-acq", UnitOnly)
	k1.RunAll()
	partial := m1.RecoveryTime.Max()

	k2, m2, _ := twoUnits(t)
	_ = m2.Recover("txt-acq", Full)
	k2.RunAll()
	full := m2.RecoveryTime.Max()

	if partial >= full {
		t.Fatalf("partial %v not faster than full %v", partial, full)
	}
	if m2.Unit("video").Downtime == 0 {
		t.Fatal("full restart should cost the healthy unit downtime")
	}
	if m1.Unit("video").Downtime != 0 {
		t.Fatal("partial recovery must not cost healthy units downtime")
	}
}

func TestRecoverErrorsAndIdempotence(t *testing.T) {
	k, m, _ := twoUnits(t)
	if err := m.Recover("ghost", UnitOnly); err == nil {
		t.Fatal("unknown unit must error")
	}
	_ = m.Recover("video", UnitOnly)
	if err := m.Recover("video", UnitOnly); err != nil {
		t.Fatal("re-recovering in-flight unit should be a no-op, not an error")
	}
	k.RunAll()
	if m.Unit("video").Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", m.Unit("video").Recoveries)
	}
}

func TestCommManagerQueuesDuringRecovery(t *testing.T) {
	k, m, _ := twoUnits(t)
	var delivered []Message
	m.Comm().Handle("txt-acq", func(msg Message) { delivered = append(delivered, msg) })

	m.Comm().Send(Message{From: "ui", To: "txt-acq", Name: "page", Payload: 100})
	if len(delivered) != 1 {
		t.Fatal("running unit should get messages synchronously")
	}
	_ = m.Recover("txt-acq", UnitOnly)
	m.Comm().Send(Message{From: "ui", To: "txt-acq", Name: "page", Payload: 101})
	m.Comm().Send(Message{From: "ui", To: "txt-acq", Name: "page", Payload: 102})
	if len(delivered) != 1 {
		t.Fatal("messages to a down unit must be held back")
	}
	if m.Comm().PendingFor("txt-acq") != 2 {
		t.Fatalf("pending = %d", m.Comm().PendingFor("txt-acq"))
	}
	k.RunAll()
	if len(delivered) != 3 {
		t.Fatalf("delivered = %d, want queued flush on restart", len(delivered))
	}
	if delivered[1].Payload != 101 || delivered[2].Payload != 102 {
		t.Fatal("flush must preserve order")
	}
	if m.Comm().Delivered != 3 || m.Comm().Queued != 2 {
		t.Fatalf("comm stats: %+v", m.Comm())
	}
}

func TestCommManagerQueueCapDrops(t *testing.T) {
	k, m, _ := twoUnits(t)
	m.Comm().QueueCap = 2
	_ = m.Recover("txt-acq", UnitOnly)
	for i := 0; i < 5; i++ {
		m.Comm().Send(Message{To: "txt-acq", Payload: float64(i)})
	}
	if m.Comm().Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", m.Comm().Dropped)
	}
	k.RunAll()
}

func TestCommManagerUnknownUnitPanics(t *testing.T) {
	_, m, _ := twoUnits(t)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.Comm().Send(Message{To: "ghost"})
}

func TestManagerAddUnitPanics(t *testing.T) {
	m := NewManager(sim.NewKernel(1))
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("want panic")
			}
		}()
		fn()
	}
	mustPanic(func() { m.AddUnit(&Unit{}) })
	m.AddUnit(&Unit{Name: "u"})
	mustPanic(func() { m.AddUnit(&Unit{Name: "u"}) })
}

func TestTransitiveDependents(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager(k)
	m.AddUnit(&Unit{Name: "a"})
	m.AddUnit(&Unit{Name: "b", DependsOn: []string{"a"}})
	m.AddUnit(&Unit{Name: "c", DependsOn: []string{"b"}})
	m.AddUnit(&Unit{Name: "d"})
	_ = m.Recover("a", Subtree)
	if m.Unit("c").State() != Restarting {
		t.Fatal("transitive dependent missed")
	}
	if m.Unit("d").State() != Running {
		t.Fatal("independent unit touched")
	}
	k.RunAll()
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	k := sim.NewKernel(1)
	calls := 0
	var result error = errors.New("sentinel")
	Retry(k, 5, 10, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}, func(err error) { result = err })
	k.RunAll()
	if result != nil {
		t.Fatalf("result = %v", result)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Backoff: attempt 2 at t=10, attempt 3 at t=10+20.
	if k.Now() != 30 {
		t.Fatalf("finished at %v, want 30", k.Now())
	}
}

func TestRetryExhausts(t *testing.T) {
	k := sim.NewKernel(1)
	var result error
	Retry(k, 3, 5, func() error { return errors.New("always") }, func(err error) { result = err })
	k.RunAll()
	if !errors.Is(result, ErrRetriesExhausted) {
		t.Fatalf("result = %v", result)
	}
	var zero error
	Retry(k, 0, 5, func() error { return nil }, func(err error) { zero = err })
	if !errors.Is(zero, ErrRetriesExhausted) {
		t.Fatal("zero attempts must fail immediately")
	}
}

func TestCheckpointSaveRollback(t *testing.T) {
	var cp Checkpoint
	if cp.Latest() != nil || cp.Rollback() != nil {
		t.Fatal("empty checkpoint should be nil")
	}
	cp.Save(map[string]float64{"page": 100})
	cp.Save(map[string]float64{"page": 101})
	if cp.Latest()["page"] != 101 {
		t.Fatal("Latest wrong")
	}
	back := cp.Rollback()
	if back["page"] != 100 {
		t.Fatalf("Rollback = %v", back)
	}
	if cp.Depth() != 1 {
		t.Fatalf("Depth = %d", cp.Depth())
	}
	// Saved maps are copies.
	state := map[string]float64{"x": 1}
	cp.Save(state)
	state["x"] = 999
	if cp.Latest()["x"] != 1 {
		t.Fatal("Save must copy")
	}
}

func TestCheckpointKeepBound(t *testing.T) {
	cp := Checkpoint{Keep: 3}
	for i := 0; i < 10; i++ {
		cp.Save(map[string]float64{"i": float64(i)})
	}
	if cp.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", cp.Depth())
	}
	if cp.Latest()["i"] != 9 {
		t.Fatal("should keep newest")
	}
}

func TestGuardContainsPanic(t *testing.T) {
	if err := Guard(func() { panic("boom") }); err == nil {
		t.Fatal("panic not contained")
	}
	if err := Guard(func() {}); err != nil {
		t.Fatalf("clean run errored: %v", err)
	}
}
