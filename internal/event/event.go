// Package event defines the event records exchanged between a System Under
// Observation (SUO) and the awareness framework, plus a lightweight
// publish/subscribe bus used for in-process wiring.
//
// The record types mirror the interfaces of the awareness framework in the
// paper's Fig. 2: input events (IInputEvent), output events (IOutputEvent),
// and state/mode information (IEventInfo). Payloads are scalar values keyed
// by observable name so the Comparator can apply per-observable thresholds.
package event

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"trader/internal/sim"
)

// Kind classifies an event record.
type Kind int

const (
	// Input is an external stimulus to the SUO (e.g. a remote-control key).
	Input Kind = iota
	// Output is an externally visible effect of the SUO (e.g. sound level).
	Output
	// State is an internal state/mode observation (e.g. component mode).
	State
	// Err is an error notification produced by a detector.
	Err
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Input:
		return "input"
	case Output:
		return "output"
	case State:
		return "state"
	case Err:
		return "error"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is one observed scalar. Observables are numeric so deviation
// thresholds apply uniformly; discrete modes are encoded as integers and
// compared with threshold 0.
type Value struct {
	Name string  `json:"name"`
	V    float64 `json:"v"`
}

// Event is one observation record.
type Event struct {
	Kind   Kind     `json:"kind"`
	Name   string   `json:"name"`             // event name, e.g. "key", "frame", "mode"
	Source string   `json:"source"`           // emitting component
	At     sim.Time `json:"at"`               // virtual time of emission
	Values []Value  `json:"values,omitempty"` // observable values carried
	Seq    uint64   `json:"seq"`              // per-source sequence number
}

// Get returns the named value and whether it is present.
func (e *Event) Get(name string) (float64, bool) {
	for _, v := range e.Values {
		if v.Name == name {
			return v.V, true
		}
	}
	return 0, false
}

// With returns a copy of the event with the named value set (replacing any
// existing value of that name).
func (e Event) With(name string, v float64) Event {
	vals := make([]Value, 0, len(e.Values)+1)
	replaced := false
	for _, ev := range e.Values {
		if ev.Name == name {
			vals = append(vals, Value{name, v})
			replaced = true
		} else {
			vals = append(vals, ev)
		}
	}
	if !replaced {
		vals = append(vals, Value{name, v})
	}
	e.Values = vals
	return e
}

// String renders a compact human-readable form.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s %s/%s", e.At, e.Kind, e.Source, e.Name)
	if len(e.Values) > 0 {
		vals := make([]string, len(e.Values))
		for i, v := range e.Values {
			vals[i] = fmt.Sprintf("%s=%g", v.Name, v.V)
		}
		sort.Strings(vals)
		fmt.Fprintf(&b, " {%s}", strings.Join(vals, " "))
	}
	return b.String()
}

// Handler consumes events.
type Handler func(Event)

// Bus is a synchronous publish/subscribe event bus. Subscribers receive
// events in subscription order; publishing from within a handler is allowed
// and is delivered depth-first.
//
// Bus is safe for concurrent use: Publish, Subscribe and Unsubscribe may be
// called from multiple goroutines (fleet shards share buses). The handler
// lists are copy-on-write — Publish snapshots them under a short critical
// section and delivers outside the lock, so handlers may freely subscribe,
// unsubscribe and publish re-entrantly without deadlocking. A handler
// removed concurrently with a Publish may still receive that in-flight
// event. Handlers themselves must tolerate concurrent invocation when
// publishers are concurrent.
type Bus struct {
	// Published counts total events published, for overhead accounting.
	// Updated atomically; concurrent readers should use PublishedCount.
	// First field so 64-bit atomic ops stay aligned on 32-bit platforms.
	Published uint64

	mu     sync.Mutex
	subs   map[string][]subscription
	all    []subscription
	nextID int
}

type subscription struct {
	id int
	h  Handler
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[string][]subscription)}
}

// Subscription identifies a subscription for cancellation. Unsubscribe is
// safe to call concurrently and at most one call takes effect.
type Subscription struct {
	bus  atomic.Pointer[Bus]
	id   int
	name string
}

// Subscribe registers h for events with the given name. An empty name
// subscribes to all events.
func (b *Bus) Subscribe(name string, h Handler) *Subscription {
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	s := subscription{id: id, h: h}
	if name == "" {
		b.all = append(b.all, s)
	} else {
		b.subs[name] = append(b.subs[name], s)
	}
	b.mu.Unlock()
	sub := &Subscription{id: id, name: name}
	sub.bus.Store(b)
	return sub
}

// Unsubscribe removes the subscription. It is a no-op if already removed.
func (s *Subscription) Unsubscribe() {
	if s == nil {
		return
	}
	b := s.bus.Swap(nil)
	if b == nil {
		return
	}
	// Build a fresh backing array (full-slice trick) so Publish snapshots
	// taken before the removal keep iterating their own storage safely.
	remove := func(list []subscription) []subscription {
		for i, sub := range list {
			if sub.id == s.id {
				return append(list[:i:i], list[i+1:]...)
			}
		}
		return list
	}
	b.mu.Lock()
	if s.name == "" {
		b.all = remove(b.all)
	} else {
		b.subs[s.name] = remove(b.subs[s.name])
	}
	b.mu.Unlock()
}

// Publish delivers e to name subscribers then to catch-all subscribers.
// Handler lists are snapshotted up front and delivery runs unlocked, so
// handlers may subscribe/unsubscribe/publish during delivery.
func (b *Bus) Publish(e Event) {
	atomic.AddUint64(&b.Published, 1)
	b.mu.Lock()
	named := b.subs[e.Name]
	all := b.all
	b.mu.Unlock()
	for _, s := range named {
		s.h(e)
	}
	for _, s := range all {
		s.h(e)
	}
}

// PublishedCount returns the total events published so far. Safe to call
// while other goroutines publish.
func (b *Bus) PublishedCount() uint64 { return atomic.LoadUint64(&b.Published) }

// Log is a bounded in-memory event trace. When capacity is exceeded the
// oldest events are dropped (ring-buffer semantics), mirroring on-chip trace
// buffers.
type Log struct {
	cap     int
	buf     []Event
	start   int
	n       int
	Dropped uint64
}

// NewLog returns a trace log holding at most capacity events.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1
	}
	return &Log{cap: capacity, buf: make([]Event, capacity)}
}

// Append records an event, evicting the oldest if full.
func (l *Log) Append(e Event) {
	if l.n == l.cap {
		l.buf[l.start] = e
		l.start = (l.start + 1) % l.cap
		l.Dropped++
		return
	}
	l.buf[(l.start+l.n)%l.cap] = e
	l.n++
}

// Len returns the number of retained events.
func (l *Log) Len() int { return l.n }

// Snapshot returns retained events oldest-first.
func (l *Log) Snapshot() []Event {
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.start+i)%l.cap]
	}
	return out
}

// Filter returns retained events matching the predicate, oldest-first.
func (l *Log) Filter(pred func(Event) bool) []Event {
	var out []Event
	for i := 0; i < l.n; i++ {
		e := l.buf[(l.start+i)%l.cap]
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}
