package event

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEventGetWith(t *testing.T) {
	e := Event{Name: "frame"}
	if _, ok := e.Get("q"); ok {
		t.Fatal("Get on empty event should miss")
	}
	e = e.With("q", 0.9)
	if v, ok := e.Get("q"); !ok || v != 0.9 {
		t.Fatalf("Get(q) = %v,%v", v, ok)
	}
	e2 := e.With("q", 0.5)
	if v, _ := e2.Get("q"); v != 0.5 {
		t.Fatalf("With should replace: got %v", v)
	}
	if v, _ := e.Get("q"); v != 0.9 {
		t.Fatalf("With should not mutate original: got %v", v)
	}
	e3 := e.With("vol", 10)
	if len(e3.Values) != 2 {
		t.Fatalf("len(Values) = %d, want 2", len(e3.Values))
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: Output, Name: "audio", Source: "amp", At: 1000}
	e = e.With("vol", 7)
	s := e.String()
	for _, want := range []string{"output", "amp/audio", "vol=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Input: "input", Output: "output", State: "state", Err: "error", Kind(9): "kind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestBusNamedAndCatchAll(t *testing.T) {
	b := NewBus()
	var named, all int
	b.Subscribe("key", func(Event) { named++ })
	b.Subscribe("", func(Event) { all++ })
	b.Publish(Event{Name: "key"})
	b.Publish(Event{Name: "frame"})
	if named != 1 {
		t.Fatalf("named = %d, want 1", named)
	}
	if all != 2 {
		t.Fatalf("all = %d, want 2", all)
	}
	if b.Published != 2 {
		t.Fatalf("Published = %d, want 2", b.Published)
	}
}

func TestBusUnsubscribe(t *testing.T) {
	b := NewBus()
	n := 0
	s := b.Subscribe("key", func(Event) { n++ })
	b.Publish(Event{Name: "key"})
	s.Unsubscribe()
	s.Unsubscribe() // idempotent
	b.Publish(Event{Name: "key"})
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
}

func TestBusDeliveryOrder(t *testing.T) {
	b := NewBus()
	var order []int
	b.Subscribe("e", func(Event) { order = append(order, 1) })
	b.Subscribe("e", func(Event) { order = append(order, 2) })
	b.Subscribe("", func(Event) { order = append(order, 3) })
	b.Publish(Event{Name: "e"})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestBusPublishFromHandler(t *testing.T) {
	b := NewBus()
	var got []string
	b.Subscribe("a", func(Event) {
		got = append(got, "a")
		b.Publish(Event{Name: "b"})
	})
	b.Subscribe("b", func(Event) { got = append(got, "b") })
	b.Publish(Event{Name: "a"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got = %v", got)
	}
}

func TestBusSubscribeDuringDelivery(t *testing.T) {
	b := NewBus()
	n := 0
	b.Subscribe("e", func(Event) {
		b.Subscribe("e", func(Event) { n++ })
	})
	b.Publish(Event{Name: "e"}) // new sub must not fire for this event
	if n != 0 {
		t.Fatalf("late subscriber fired during its own subscription event")
	}
	b.Publish(Event{Name: "e"})
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
}

func TestLogRing(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 5; i++ {
		l.Append(Event{Seq: uint64(i)})
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped)
	}
	snap := l.Snapshot()
	for i, e := range snap {
		if e.Seq != uint64(i+2) {
			t.Fatalf("Snapshot = %v, want seqs [2 3 4]", snap)
		}
	}
}

func TestLogFilter(t *testing.T) {
	l := NewLog(10)
	for i := 0; i < 6; i++ {
		k := Input
		if i%2 == 0 {
			k = Output
		}
		l.Append(Event{Kind: k, Seq: uint64(i)})
	}
	outs := l.Filter(func(e Event) bool { return e.Kind == Output })
	if len(outs) != 3 {
		t.Fatalf("Filter = %d events, want 3", len(outs))
	}
}

func TestLogZeroCapacity(t *testing.T) {
	l := NewLog(0)
	l.Append(Event{Seq: 1})
	l.Append(Event{Seq: 2})
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	if l.Snapshot()[0].Seq != 2 {
		t.Fatal("should retain newest")
	}
}

// Property: ring log retains exactly the last min(cap, n) events in order.
func TestPropertyLogRetention(t *testing.T) {
	f := func(capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%20) + 1
		n := int(nRaw % 100)
		l := NewLog(capacity)
		for i := 0; i < n; i++ {
			l.Append(Event{Seq: uint64(i)})
		}
		want := n
		if want > capacity {
			want = capacity
		}
		snap := l.Snapshot()
		if len(snap) != want {
			return false
		}
		for i, e := range snap {
			if e.Seq != uint64(n-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: With never loses other keys and always sets the requested one.
func TestPropertyWith(t *testing.T) {
	f := func(keys []uint8, setKey uint8, v float64) bool {
		var e Event
		for _, k := range keys {
			e = e.With(string(rune('a'+k%26)), float64(k))
		}
		name := string(rune('a' + setKey%26))
		e2 := e.With(name, v)
		got, ok := e2.Get(name)
		if !ok || got != v {
			return false
		}
		for _, val := range e.Values {
			if val.Name == name {
				continue
			}
			g, ok := e2.Get(val.Name)
			if !ok || g != val.V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBusPublish(b *testing.B) {
	bus := NewBus()
	for i := 0; i < 8; i++ {
		bus.Subscribe("e", func(Event) {})
	}
	e := Event{Name: "e"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(e)
	}
}
