package event

import (
	"sync"
	"sync/atomic"
	"testing"
)

// These tests exercise the bus from many goroutines at once and are meant to
// run under `go test -race`. Against the pre-locking bus every one of them
// fails the race detector; they pin down the concurrency contract the fleet
// shards rely on when sharing buses.

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	var received atomic.Uint64
	var wg sync.WaitGroup

	const (
		publishers  = 8
		subscribers = 8
		perG        = 200
	)
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			e := Event{Kind: Output, Name: "tick", Source: "pub"}
			for i := 0; i < perG; i++ {
				b.Publish(e)
			}
		}(p)
	}
	for s := 0; s < subscribers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sub := b.Subscribe("tick", func(Event) { received.Add(1) })
				sub.Unsubscribe()
			}
		}()
	}
	wg.Wait()

	if got := b.PublishedCount(); got != publishers*perG {
		t.Fatalf("PublishedCount = %d, want %d", got, publishers*perG)
	}
	// A persistent subscriber added after the storm sees every new event.
	var after atomic.Uint64
	b.Subscribe("tick", func(Event) { after.Add(1) })
	b.Publish(Event{Name: "tick"})
	if after.Load() != 1 {
		t.Fatalf("post-storm subscriber got %d events, want 1", after.Load())
	}
	_ = received.Load() // transient subscribers may or may not have seen events
}

func TestBusConcurrentCatchAll(t *testing.T) {
	b := NewBus()
	var n atomic.Uint64
	sub := b.Subscribe("", func(Event) { n.Add(1) })

	var wg sync.WaitGroup
	const goroutines, perG = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				b.Publish(Event{Name: "anything"})
			}
		}()
	}
	wg.Wait()
	if n.Load() != goroutines*perG {
		t.Fatalf("catch-all saw %d events, want %d", n.Load(), goroutines*perG)
	}
	sub.Unsubscribe()
	b.Publish(Event{Name: "anything"})
	if n.Load() != goroutines*perG {
		t.Fatal("unsubscribed catch-all still receiving")
	}
}

func TestBusConcurrentUnsubscribeSameSubscription(t *testing.T) {
	b := NewBus()
	for i := 0; i < 100; i++ {
		sub := b.Subscribe("x", func(Event) {})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sub.Unsubscribe()
			}()
		}
		wg.Wait()
	}
	b.mu.Lock()
	left := len(b.subs["x"])
	b.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d subscriptions left after racing Unsubscribe calls", left)
	}
}

// TestBusReentrantPublishUnderConcurrency checks the depth-first re-entrant
// delivery guarantee still holds while other goroutines hammer the bus: a
// handler publishing from within delivery must not deadlock.
func TestBusReentrantPublishUnderConcurrency(t *testing.T) {
	b := NewBus()
	var chained atomic.Uint64
	b.Subscribe("first", func(e Event) {
		b.Publish(Event{Name: "second"})
	})
	b.Subscribe("second", func(e Event) { chained.Add(1) })

	var wg sync.WaitGroup
	const goroutines, perG = 4, 250
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				b.Publish(Event{Name: "first"})
			}
		}()
	}
	// Subscribing from within a handler must not deadlock either.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perG; i++ {
			var sub *Subscription
			sub = b.Subscribe("first", func(Event) {})
			sub.Unsubscribe()
		}
	}()
	wg.Wait()
	if chained.Load() != goroutines*perG {
		t.Fatalf("chained deliveries = %d, want %d", chained.Load(), goroutines*perG)
	}
}
