package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/wire"
)

// frame builds the i'th distinguishable test record: an observation with a
// value payload, so round-trip equality exercises the full codec path.
func frame(i int) wire.Message {
	at := sim.Time(i+1) * sim.Millisecond
	ev := event.Event{Kind: event.Output, Name: "out", Source: "suo", At: at, Seq: uint64(i)}.
		With("x", float64(i)).With("q", 0.5)
	return wire.Message{Type: wire.TypeOutput, SUO: fmt.Sprintf("dev-%03d", i%7), Event: &ev, At: at}
}

func writeFrames(t *testing.T, dir string, opts Options, from, n int) {
	t.Helper()
	w, err := Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := from; i < from+n; i++ {
		if err := w.Append(frame(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, dir string) ([]wire.Message, *Reader) {
	t.Helper()
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []wire.Message
	for {
		m, err := r.Next()
		if err == io.EOF {
			return out, r
		}
		if err != nil {
			t.Fatalf("record %d: %v", len(out), err)
		}
		out = append(out, m)
	}
}

// lastSegment returns the path of the journal's newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := segments(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("segments(%s) = %v, %v", dir, names, err)
	}
	return filepath.Join(dir, names[len(names)-1])
}

func TestRoundTripAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	const n = 200
	// Tiny segments force many rotations; replay must cross every boundary.
	writeFrames(t, dir, Options{SegmentBytes: 512}, 0, n)
	names, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("want ≥3 segments from 512-byte rotation, got %d", len(names))
	}
	got, r := readAll(t, dir)
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	if r.Torn() {
		t.Fatal("clean journal reported torn")
	}
	for i, m := range got {
		if want := frame(i); !reflect.DeepEqual(m, want) {
			t.Fatalf("record %d = %+v, want %+v", i, m, want)
		}
	}
}

func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	const n = 10
	writeFrames(t, dir, Options{}, 0, n)
	// Tear the final record: chop a few bytes off the last segment, as a
	// crash mid-write would.
	last := lastSegment(t, dir)
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	got, r := readAll(t, dir)
	if len(got) != n-1 {
		t.Fatalf("read %d records after torn tail, want %d", len(got), n-1)
	}
	if !r.Torn() {
		t.Fatal("torn tail not reported")
	}

	// A restarting writer must repair the tear before appending new
	// segments — otherwise the tear would become mid-journal corruption.
	writeFrames(t, dir, Options{}, n, 3)
	got, r = readAll(t, dir)
	if len(got) != n-1+3 {
		t.Fatalf("after repair+append: read %d records, want %d", len(got), n-1+3)
	}
	if r.Torn() {
		t.Fatal("repaired journal still reports torn")
	}
	if want := frame(n + 2); !reflect.DeepEqual(got[len(got)-1], want) {
		t.Fatalf("last record = %+v, want %+v", got[len(got)-1], want)
	}
}

func TestCorruptCRCMidSegmentRejectedWithPosition(t *testing.T) {
	dir := t.TempDir()
	writeFrames(t, dir, Options{}, 0, 5)
	// Flip one payload byte inside the first record: structurally intact,
	// semantically corrupt — exactly what the CRC exists to catch.
	path := lastSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[recordHeader+2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = r.Next()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if ce.Segment != filepath.Base(path) || ce.Offset != 0 || ce.Record != 0 {
		t.Fatalf("corruption position = %s@%d record %d, want %s@0 record 0",
			ce.Segment, ce.Offset, ce.Record, filepath.Base(path))
	}
}

func TestTruncationMidJournalIsCorruption(t *testing.T) {
	dir := t.TempDir()
	// Two segments; tearing the FIRST one's tail must be an error, not a
	// tolerated torn write — segment 2 proves data followed it.
	writeFrames(t, dir, Options{SegmentBytes: 1}, 0, 2) // 1 record per segment
	names, err := segments(dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("segments = %v, %v; want ≥2", names, err)
	}
	first := filepath.Join(dir, names[0])
	fi, _ := os.Stat(first)
	if err := os.Truncate(first, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = r.Next()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-journal truncation: err = %v, want *CorruptError", err)
	}
}

func TestEmptyAndMissingDirBootCleanly(t *testing.T) {
	// Missing directory: an empty journal, for both reader and writer.
	missing := filepath.Join(t.TempDir(), "never-created")
	r, err := OpenReader(missing)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("missing dir: Next = %v, want io.EOF", err)
	}
	// Empty (existing) directory behaves the same.
	empty := t.TempDir()
	r, err = OpenReader(empty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty dir: Next = %v, want io.EOF", err)
	}
	// And Create on the missing path makes the directory and journals into it.
	writeFrames(t, missing, Options{}, 0, 1)
	got, _ := readAll(t, missing)
	if len(got) != 1 {
		t.Fatalf("read %d records, want 1", len(got))
	}
}

func TestWriterRestartStartsNewSegment(t *testing.T) {
	dir := t.TempDir()
	writeFrames(t, dir, Options{}, 0, 4)
	writeFrames(t, dir, Options{}, 4, 4)
	names, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("two writer lifetimes produced %d segments, want 2", len(names))
	}
	got, _ := readAll(t, dir)
	if len(got) != 8 {
		t.Fatalf("read %d records, want 8", len(got))
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := w.Append(frame(g*each + i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Appends != workers*each {
		t.Fatalf("stats appends = %d, want %d", st.Appends, workers*each)
	}
	if st.Syncs == 0 || st.Syncs > st.Appends {
		t.Fatalf("stats syncs = %d, want 1..%d", st.Syncs, st.Appends)
	}
	t.Logf("group commit: %d appends in %d fsync batches", st.Appends, st.Syncs)
	got, _ := readAll(t, dir)
	if len(got) != workers*each {
		t.Fatalf("read %d records, want %d", len(got), workers*each)
	}
	if err := w.Append(frame(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}
