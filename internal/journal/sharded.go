package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"trader/internal/wire"
)

// Sharded partitions a journal directory into per-shard segment streams:
// shard-NNN/wal-*.seg, one stream per fleet pool shard, each with its own
// Writer and therefore its own group-commit fsync pipeline. The flat layout
// serialises every connection behind one fsync queue; with N streams the
// device population's append traffic commits on N spindles' worth of
// concurrent fsyncs. Routing is by device ID (ShardOf, the same FNV-1a hash
// fleet.Pool uses), so every record for one device lives in exactly one
// stream and per-device replay order is preserved stream-locally — which is
// all replay needs, because cross-device state is an order-independent fold.
//
// Segments already present in the directory root (a flat journal written by
// an earlier run) are left in place; the Reader replays them before any
// shard stream, so upgrading to the sharded layout keeps full history.
type Sharded struct {
	dir string
	ws  []*Writer
}

const shardPrefix = "shard-"

// shardDirName formats the canonical per-shard subdirectory name.
func shardDirName(i int) string { return fmt.Sprintf("%s%03d", shardPrefix, i) }

// shardDirIndex parses a shard subdirectory name, ok=false for foreign dirs.
func shardDirIndex(name string) (int, bool) {
	if !strings.HasPrefix(name, shardPrefix) {
		return 0, false
	}
	i, err := strconv.Atoi(strings.TrimPrefix(name, shardPrefix))
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// shardDirs lists existing shard subdirectories of dir in index order.
func shardDirs(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	type sd struct {
		name string
		idx  int
	}
	var dirs []sd
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if i, ok := shardDirIndex(e.Name()); ok {
			dirs = append(dirs, sd{e.Name(), i})
		}
	}
	sort.Slice(dirs, func(a, b int) bool { return dirs[a].idx < dirs[b].idx })
	names := make([]string, len(dirs))
	for i, d := range dirs {
		names[i] = d.name
	}
	return names, nil
}

// ShardOf routes a device ID to a shard: FNV-1a over the ID, modulo the
// shard count. It MUST stay in lock-step with fleet.Pool's routing (a
// parity test in that package pins it): the whole per-stream ordering
// argument rests on the journal and the pool agreeing on which shard owns a
// device.
func ShardOf(id string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// CreateSharded opens dir as a sharded journal with the given stream count,
// creating the per-shard subdirectories on first use. Reopening an existing
// sharded journal with a different shard count is refused: records are
// routed by ID-hash modulo the count, so changing it would scatter a
// device's history across streams and break per-device replay order.
func CreateSharded(dir string, shards int, opts Options) (*Sharded, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("journal: shard count must be positive, got %d", shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	existing, err := shardDirs(dir)
	if err != nil {
		return nil, err
	}
	if len(existing) > 0 && len(existing) != shards {
		return nil, fmt.Errorf("journal: %s holds %d shard streams, cannot reopen with %d (shard routing would change)",
			dir, len(existing), shards)
	}
	s := &Sharded{dir: dir, ws: make([]*Writer, shards)}
	for i := range s.ws {
		w, err := Create(filepath.Join(dir, shardDirName(i)), opts)
		if err != nil {
			for _, prev := range s.ws[:i] {
				_ = prev.Close()
			}
			return nil, err
		}
		s.ws[i] = w
	}
	return s, nil
}

// Shards returns the stream count.
func (s *Sharded) Shards() int { return len(s.ws) }

// Append routes m to its device's stream (by SUO) and appends durably.
func (s *Sharded) Append(m wire.Message) error {
	return s.ws[ShardOf(m.SUO, len(s.ws))].Append(m)
}

// AppendThen routes m to its device's stream; see Writer.AppendThen for the
// sync and then semantics.
func (s *Sharded) AppendThen(m wire.Message, sync bool, then func()) error {
	return s.ws[ShardOf(m.SUO, len(s.ws))].AppendThen(m, sync, then)
}

// AppendShard appends m to an explicit stream, bypassing ID routing. Shard
// 0 is the home of stream-independent records (the profile marker, the
// control- and diagnosis-plane checkpoints).
func (s *Sharded) AppendShard(i int, m wire.Message) error {
	return s.ws[i].AppendShard(m)
}

// AppendShard on a Writer is Append; it exists so *Writer and *Sharded can
// share test harnesses.
func (w *Writer) AppendShard(m wire.Message) error { return w.Append(m) }

// Checkpoint writes a global checkpoint. It freezes every stream (all
// writer locks, taken in shard order), calls capture to snapshot the state
// machine the journal feeds — capture sees a log with no records in flight,
// so the snapshot corresponds to an exact prefix of every stream — and
// writes capture's per-shard record batches as the opening records of a
// fresh segment in each stream, fsyncs them, and reclaims all older
// segments (including any flat pre-sharding segments in the directory
// root, whose history the checkpoint also covers).
//
// capture must return exactly Shards() batches and must not append to this
// journal (every stream's lock is held).
func (s *Sharded) Checkpoint(capture func() ([][]wire.Message, error)) error {
	for _, w := range s.ws {
		w.mu.Lock()
	}
	defer func() {
		for _, w := range s.ws {
			w.mu.Unlock()
		}
	}()
	batches, err := capture()
	if err != nil {
		return fmt.Errorf("journal: checkpoint capture: %w", err)
	}
	if len(batches) != len(s.ws) {
		return fmt.Errorf("journal: checkpoint capture returned %d batches for %d shards", len(batches), len(s.ws))
	}
	for i, w := range s.ws {
		if err := w.checkpointLocked(batches[i]); err != nil {
			return fmt.Errorf("journal: checkpoint shard %d: %w", i, err)
		}
	}
	// The flat-era history (segments in the directory root, from runs that
	// predate sharding) is covered by the checkpoint too.
	names, err := segments(s.dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			return fmt.Errorf("journal: truncate: %w", err)
		}
	}
	if len(names) > 0 && !s.ws[0].opts.NoSync {
		return syncDir(s.dir)
	}
	return nil
}

// Stats aggregates the per-stream writer counters.
func (s *Sharded) Stats() WriterStats {
	var t WriterStats
	for _, w := range s.ws {
		st := w.Stats()
		t.Appends += st.Appends
		t.Syncs += st.Syncs
		t.Segments += st.Segments
	}
	return t
}

// ShardStats snapshots one stream's writer counters.
func (s *Sharded) ShardStats(i int) WriterStats { return s.ws[i].Stats() }

// Close closes every stream, returning the first error.
func (s *Sharded) Close() error {
	var first error
	for _, w := range s.ws {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
