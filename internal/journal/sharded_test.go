package journal

import (
	"os"
	"path/filepath"
	"testing"

	"trader/internal/wire"
)

// cpRecord builds a checkpoint record for batch-construction in tests.
func cpRecord(shard int, final bool) wire.Message {
	return wire.Message{Type: wire.TypeCheckpoint, Checkpoint: &wire.Checkpoint{
		Plane: wire.PlaneShard, Shard: shard, Seq: 1, Final: final, Profile: "test",
	}}
}

// testBatches builds one minimal complete checkpoint batch per shard.
func testBatches(shards int) [][]wire.Message {
	batches := make([][]wire.Message, shards)
	for i := range batches {
		batches[i] = []wire.Message{
			{Type: wire.TypeCheckpoint, Checkpoint: &wire.Checkpoint{Plane: wire.PlaneDevice, Shard: i, Seq: 1}},
			cpRecord(i, true),
		}
	}
	return batches
}

func TestShardedRoundTripPreservesPerDeviceOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateSharded(dir, 4, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 140
	for i := 0; i < n; i++ {
		if err := s.Append(frame(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	msgs, r := readAll(t, dir)
	if len(msgs) != n {
		t.Fatalf("read %d records, want %d", len(msgs), n)
	}
	if r.Torn() {
		t.Fatal("clean close read as torn")
	}
	// Per-device order: frame(i) carries Seq=i, and frames of one SUO must
	// come back in ascending Seq even though streams interleave devices.
	lastSeq := map[string]uint64{}
	for _, m := range msgs {
		if last, ok := lastSeq[m.SUO]; ok && m.Event.Seq <= last {
			t.Fatalf("device %s: seq %d after %d — per-device order broken", m.SUO, m.Event.Seq, last)
		}
		lastSeq[m.SUO] = m.Event.Seq
	}
	// Routing parity: every record must live in the stream ShardOf names.
	for i := 0; i < 4; i++ {
		segs, err := segments(filepath.Join(dir, shardDirName(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) == 0 {
			t.Fatalf("shard %d has no segments", i)
		}
	}
}

func TestShardedReopenWithDifferentCountRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateSharded(dir, 3, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := CreateSharded(dir, 5, Options{NoSync: true}); err == nil {
		t.Fatal("reopening 3-shard journal with 5 shards must be refused")
	}
	if _, err := CreateSharded(dir, 3, Options{NoSync: true}); err != nil {
		t.Fatalf("reopening with matching count: %v", err)
	}
}

func TestShardedCheckpointTruncatesAndResumes(t *testing.T) {
	dir := t.TempDir()
	// Seed flat pre-sharding history in the root: the checkpoint must
	// reclaim it too.
	writeFrames(t, dir, Options{SegmentBytes: 512, NoSync: true}, 0, 20)
	const shards = 3
	s, err := CreateSharded(dir, shards, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 70; i++ {
		if err := s.Append(frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(func() ([][]wire.Message, error) { return testBatches(shards), nil }); err != nil {
		t.Fatal(err)
	}
	for i := 70; i < 100; i++ {
		if err := s.Append(frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// All pre-checkpoint segments are gone: the root holds none, and every
	// shard stream now opens with its checkpoint batch.
	if rootSegs, _ := segments(dir); len(rootSegs) != 0 {
		t.Fatalf("flat root segments survived the checkpoint: %v", rootSegs)
	}
	for i := 0; i < shards; i++ {
		sd := filepath.Join(dir, shardDirName(i))
		segs, err := segments(sd)
		if err != nil || len(segs) == 0 {
			t.Fatalf("shard %d: %v %v", i, segs, err)
		}
		ok, err := opensWithCheckpoint(filepath.Join(sd, segs[0]))
		if err != nil || !ok {
			t.Fatalf("shard %d first segment must open with a complete checkpoint batch (ok=%v err=%v)", i, ok, err)
		}
	}
	msgs, _ := readAll(t, dir)
	var cps, frames int
	for _, m := range msgs {
		if m.Type == wire.TypeCheckpoint {
			cps++
			continue
		}
		frames++
		if m.Event.Seq < 70 {
			t.Fatalf("pre-checkpoint frame %d replayed", m.Event.Seq)
		}
	}
	if cps != 2*shards {
		t.Fatalf("replayed %d checkpoint records, want %d", cps, 2*shards)
	}
	if frames != 30 {
		t.Fatalf("replayed %d post-checkpoint frames, want 30", frames)
	}
}

func TestIncompleteCheckpointBatchIsNotAResumePoint(t *testing.T) {
	dir := t.TempDir()
	sd := filepath.Join(dir, shardDirName(0))
	writeFrames(t, sd, Options{NoSync: true}, 0, 10)
	// Hand-craft the crash window: a fresh segment whose checkpoint batch
	// never reached its Final record (and whose predecessors were therefore
	// never truncated), torn mid-record for good measure.
	segs, err := segments(sd)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := segIndex(segs[len(segs)-1])
	buf, err := encodeRecord(nil, cpRecord(0, false))
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0, 0, 2, 0) // torn header fragment
	if err := os.WriteFile(filepath.Join(sd, segName(last+1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	msgs, r := readAll(t, dir)
	if !r.Torn() {
		t.Fatal("torn checkpoint batch not reported")
	}
	if r.SegmentsSkipped() != 0 {
		t.Fatalf("incomplete batch used as resume point (skipped %d)", r.SegmentsSkipped())
	}
	var frames int
	for _, m := range msgs {
		if m.Type != wire.TypeCheckpoint {
			frames++
		}
	}
	if frames != 10 {
		t.Fatalf("replayed %d frames, want all 10 (resume must fall back)", frames)
	}
}

// TestAppendsCountOnFailedSync pins the satellite-2 fix: Appends means
// "accepted into the log", so a record whose fsync later fails still
// counts. Before the fix the counter was bumped after the lock was
// released, unordered with respect to both durability and Stats readers.
func TestAppendsCountOnFailedSync(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(frame(0)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the segment handle so the next group commit's flush fails.
	w.mu.Lock()
	w.f.Close()
	w.mu.Unlock()
	if err := w.Append(frame(1)); err == nil {
		t.Fatal("append with a dead segment handle must fail")
	}
	if got := w.Stats().Appends; got != 2 {
		t.Fatalf("Appends = %d after a failed sync, want 2 (accepted into the log)", got)
	}
}

// TestCrashDuringRotation covers the two rotation-window crash shapes, flat
// and sharded (satellite 4): an empty trailing segment (killed between
// creating the new segment and the first append into it) and a torn tail in
// the PENULTIMATE segment — torn at crash, then a restart appended a fresh
// segment after it. Create's repair must cut the tear before the restart
// appends, or the tear would read as mid-journal corruption.
func TestCrashDuringRotation(t *testing.T) {
	t.Run("flat", func(t *testing.T) {
		dir := t.TempDir()
		writeFrames(t, dir, Options{NoSync: true}, 0, 12)

		// Crash shape 1: new segment created, nothing appended yet.
		segs, _ := segments(dir)
		last, _ := segIndex(segs[len(segs)-1])
		empty := filepath.Join(dir, segName(last+1))
		if err := os.WriteFile(empty, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		msgs, r := readAll(t, dir)
		if len(msgs) != 12 || r.Torn() {
			t.Fatalf("empty trailing segment: read %d records torn=%v, want 12 clean", len(msgs), r.Torn())
		}

		// Crash shape 2: tear the tail, then restart and append — the torn
		// segment becomes penultimate.
		f, err := os.OpenFile(lastSegment(t, dir), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0, 0, 2, 0, 0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		writeFrames(t, dir, Options{NoSync: true}, 12, 5)
		msgs, r = readAll(t, dir)
		if len(msgs) != 17 || r.Torn() {
			t.Fatalf("torn penultimate after restart: read %d records torn=%v, want 17 clean", len(msgs), r.Torn())
		}
	})

	t.Run("sharded", func(t *testing.T) {
		dir := t.TempDir()
		const shards = 2
		s, err := CreateSharded(dir, shards, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 24; i++ {
			if err := s.Append(frame(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Shard 0 crashed mid-rotation (empty trailing segment); shard 1
		// crashed mid-append (torn tail).
		sd0 := filepath.Join(dir, shardDirName(0))
		segs0, _ := segments(sd0)
		last0, _ := segIndex(segs0[len(segs0)-1])
		if err := os.WriteFile(filepath.Join(sd0, segName(last0+1)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		sd1 := filepath.Join(dir, shardDirName(1))
		f, err := os.OpenFile(lastSegment(t, sd1), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0, 0, 9, 9, 0xbe}); err != nil {
			t.Fatal(err)
		}
		f.Close()

		msgs, r := readAll(t, dir)
		if len(msgs) != 24 || !r.Torn() {
			t.Fatalf("after per-shard crashes: read %d records torn=%v, want 24 torn", len(msgs), r.Torn())
		}

		// Restart: CreateSharded repairs each stream's tail, appends land in
		// fresh segments, and the whole history reads back clean.
		s, err = CreateSharded(dir, shards, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 24; i < 30; i++ {
			if err := s.Append(frame(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		msgs, r = readAll(t, dir)
		if len(msgs) != 30 || r.Torn() {
			t.Fatalf("after restart: read %d records torn=%v, want 30 clean", len(msgs), r.Torn())
		}
	})
}
