package journal

import (
	"sync"
	"testing"

	"trader/internal/wire"
)

// TestGroupCommitContention drives a fleet's worth of concurrent appenders
// through one writer and reports the group-commit batching ratio. The
// correctness claim is that every append returns durable without error under
// heavy leader/follower churn; the logged appends/syncs ratio is the number
// to look at when batching regresses (the syncMu-queue design this replaced
// measured ~4.7 here — parked followers froze their pipelines for a full
// fsync — against ~31 for the condition-variable commit with a quiesce
// window). No threshold is asserted: on storage where fsync is nearly free,
// small batches are the correct behaviour, not a regression.
func TestGroupCommitContention(t *testing.T) {
	if testing.Short() {
		t.Skip("fsync-heavy")
	}
	w, err := Create(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const conns, per = 32, 100
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if err := w.Append(wire.Message{Type: wire.TypeHeartbeat, SUO: "x"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := w.Stats()
	if st.Appends != conns*per {
		t.Fatalf("appends = %d, want %d", st.Appends, conns*per)
	}
	t.Logf("appends=%d syncs=%d batch=%.1f", st.Appends, st.Syncs, float64(st.Appends)/float64(st.Syncs))
}
