// Package journal implements the durable write-ahead frame log behind
// traderd's crash recovery: a segmented, append-only, CRC-checked record of
// every wire frame the ingestion server accepts. A daemon that journals its
// accepted frames can be killed at any instant and rebuilt losslessly by
// replaying the journal into a fresh fleet pool (fleet.Pool.Replay), and the
// same journal doubles as a deterministic post-mortem trace (`traderd
// -replay`) — the observe-record-replay loop that bridges monitoring and
// recovery in the runtime-verification literature.
//
// # Record format
//
// A journal is a directory of segment files named wal-NNNNNNNN.seg,
// replayed in index order. Each segment is a sequence of records:
//
//	u32  payload length (big-endian)
//	u32  CRC-32C of the payload (Castagnoli, big-endian)
//	[n]  payload: the wire.Message in the binary wire codec
//
// The payload reuses wire.Binary — the same reflection-free layout frames
// travel in (ARCHITECTURE.md §2.7) — so the encode cost on the ingestion
// hot path is the cost already paid to speak the protocol, and any tool
// that can decode the wire can decode the journal.
//
// # Durability
//
// Append is write-ahead and group-committed: it returns once the record is
// flushed AND fsynced, but concurrent appenders share one fsync — the first
// caller into the commit path syncs every record appended so far, and the
// callers that piled up behind it observe their record already durable and
// return without another syscall. Journaling therefore costs one fsync per
// batch of concurrent appends, not one per frame. Segments rotate at
// Options.SegmentBytes (checked after each append, so a segment may exceed
// the limit by at most one record).
//
// # Recovery semantics
//
// A crash can tear the record being written when the process died: the tail
// of the final segment may hold a prefix of a record. The Reader tolerates
// exactly that — an incomplete record at the very end of the journal ends
// the replay cleanly (Torn reports it) because the frame it would have held
// was never acknowledged durable to anyone. Every other defect is
// corruption and is reported as a *CorruptError with the segment, byte
// offset and record index: an incomplete record mid-journal (later segments
// continue past lost data) and a CRC or codec mismatch anywhere, including
// the tail — a torn buffered write truncates, it does not scramble, so a
// bad CRC means the storage lied. Create repairs a torn tail (truncating
// the final segment to its last whole record) before opening a new segment,
// preserving the tail-only invariant across restarts.
package journal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// recordHeader is the fixed per-record framing: u32 length + u32 CRC-32C.
const recordHeader = 8

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 8 << 20

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// castagnoli is the CRC-32C polynomial table; hardware-accelerated on
// amd64/arm64, so the checksum is cheap next to the fsync it guards.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segName formats the canonical segment file name for index i.
func segName(i int) string { return fmt.Sprintf("%s%08d%s", segPrefix, i, segSuffix) }

// segIndex parses a segment file name, reporting ok=false for foreign files.
func segIndex(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	i, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// segments lists the journal's segment file names in replay (index) order.
// A missing directory is an empty journal, not an error: a monitor booting
// with a fresh -journal directory has simply never crashed before.
func segments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	type seg struct {
		name string
		idx  int
	}
	var segs []seg
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if i, ok := segIndex(e.Name()); ok {
			segs = append(segs, seg{e.Name(), i})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].idx < segs[b].idx })
	names := make([]string, len(segs))
	for i, s := range segs {
		names[i] = s.name
	}
	return names, nil
}

// syncDir fsyncs the directory itself, making freshly created (or removed)
// segment entries durable. Filesystems that genuinely cannot sync a
// directory (ENOTSUP and friends) degrade to best-effort; every other
// failure is a real durability loss — a freshly rotated segment whose
// directory entry never reaches the platter vanishes wholesale on power
// loss — and is propagated, not swallowed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		if errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.EINVAL) {
			return nil // directory fsync unsupported here; best-effort only
		}
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}

// CorruptError reports unrecoverable journal damage with enough position
// information to find it on disk: the segment file, the byte offset of the
// offending record, and how many records were replayed before it.
type CorruptError struct {
	Segment string // segment file name
	Offset  int64  // byte offset of the record that failed
	Record  uint64 // records successfully read before the failure
	Detail  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: %s@%d (after %d records): %s",
		e.Segment, e.Offset, e.Record, e.Detail)
}
