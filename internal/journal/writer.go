package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"trader/internal/wire"
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: writer closed")

// Options configures a Writer.
type Options struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	// A segment may exceed it by at most one record.
	SegmentBytes int64
	// NoSync disables fsync: appends are durable only as far as the OS page
	// cache. For benchmarks and tests that measure or don't need durability.
	NoSync bool
}

// WriterStats counts a writer's work; Syncs/Appends is the group-commit
// batching ratio (1.0 = one fsync per frame, i.e. no batching won).
type WriterStats struct {
	// Appends counts records accepted into the log: buffered and sequenced
	// under the writer lock, whether or not they have reached stable storage
	// yet (a record whose later fsync fails was still appended).
	Appends  uint64
	Syncs    uint64 // fsync batches issued
	Segments int    // segment files this writer has opened
}

// Writer appends wire frames to a journal directory. Safe for concurrent
// use; concurrent Appends share fsyncs (see the package comment).
type Writer struct {
	dir  string
	opts Options

	// mu guards the current segment: file, buffer, size, and the append
	// sequence number. Held only for in-memory work and (rarely) rotation —
	// never across the group-commit fsync.
	mu    sync.Mutex
	f     *os.File
	bw    *bufio.Writer
	seg   int   // current segment index
	size  int64 // bytes appended to the current segment
	nsegs int
	err   error // sticky: a failed write or sync poisons the writer

	// seq counts records accepted into the log. Written only under w.mu;
	// read lock-free by the commit window, which polls it to see whether
	// appenders are still actively landing records into the open batch.
	seq atomic.Uint64

	// commitMu guards committing and is the condition lock followers wait
	// on; it is held only for bookkeeping, never across the fsync itself,
	// so a parked follower blocks nobody — in particular not the appenders
	// racing to land records into the batch being committed. durable is
	// the highest seq known to have reached stable storage; appenders
	// whose record is already ≤ durable return without touching the disk.
	commitMu   sync.Mutex
	commitDone *sync.Cond // broadcast when a group commit finishes
	committing bool
	durable    atomic.Uint64
	syncs      atomic.Uint64
	appends    atomic.Uint64
}

// Create opens dir for appending (creating it if needed), repairs a torn
// tail left by a crash in the newest existing segment, and starts a fresh
// segment after the existing ones — existing records are never rewritten,
// so a journal accumulates across daemon restarts and a replay covers the
// full history.
func Create(dir string, opts Options) (*Writer, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	names, err := segments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(names) > 0 {
		last := names[len(names)-1]
		idx, _ := segIndex(last)
		next = idx + 1
		if err := repairTail(filepath.Join(dir, last)); err != nil {
			return nil, err
		}
	}
	w := &Writer{dir: dir, opts: opts, seg: next - 1}
	w.commitDone = sync.NewCond(&w.commitMu)
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.rotateLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// repairTail truncates path to its last structurally whole record. A torn
// record is only tolerated at the very end of the journal (see the package
// comment); once this writer appends a new segment after path, a torn tail
// there would read as mid-journal corruption, so it must be cut off first.
// Only incomplete records are repaired — a CRC mismatch is real corruption
// and is left in place for the reader to report, not silently discarded.
func repairTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("journal: repair: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var good int64 // end offset of the last whole record
	var hdr [recordHeader]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil // clean end, nothing to repair
			}
			if err == io.ErrUnexpectedEOF {
				break // torn header
			}
			return fmt.Errorf("journal: repair: %w", err)
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		if n > wire.MaxFrame {
			// An impossible length is corruption, not tearing; leave it for
			// the reader's position-carrying error.
			return nil
		}
		if _, err := br.Discard(int(n)); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // torn payload
			}
			return fmt.Errorf("journal: repair: %w", err)
		}
		good += recordHeader + int64(n)
	}
	if err := f.Truncate(good); err != nil {
		return fmt.Errorf("journal: repair: %w", err)
	}
	return f.Sync()
}

// rotateLocked seals the current segment (flush + fsync + close) and opens
// the next one. Caller holds w.mu.
func (w *Writer) rotateLocked() error {
	if w.f != nil {
		if err := w.bw.Flush(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		if !w.opts.NoSync {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("journal: fsync: %w", err)
			}
			w.syncs.Add(1)
		}
		raise(&w.durable, w.seq.Load()) // everything in the sealed segment is down
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	w.seg++
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seg)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.f, w.bw, w.size = f, bufio.NewWriterSize(f, 64<<10), 0
	w.nsegs++
	if !w.opts.NoSync {
		// The new segment's directory entry must survive too: a record
		// fsynced into a file whose entry was lost is as gone as one never
		// written, so a failed directory sync fails the rotation.
		if err := syncDir(w.dir); err != nil {
			return err
		}
	}
	return nil
}

// recPool recycles record-encode buffers across Appends so the CPU-bound
// encode+CRC work can run outside w.mu without allocating per record.
var recPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// recRetain caps the buffer capacity returned to recPool, mirroring the
// wire layer's bufRetain: one outlier record must not pin a large buffer.
const recRetain = 64 << 10

// hdrZero reserves record-header space at the front of an encode buffer.
var hdrZero [recordHeader]byte

// encodeRecord appends the CRC-framed record for m (binary wire codec) to
// buf, which must start with recordHeader reserved bytes at the offset the
// record begins.
func encodeRecord(buf []byte, m wire.Message) ([]byte, error) {
	start := len(buf)
	buf = append(buf, hdrZero[:]...)
	buf, err := wire.Binary.Append(buf, m)
	if err != nil {
		return buf, fmt.Errorf("journal: encode: %w", err)
	}
	n := len(buf) - start - recordHeader
	if n > wire.MaxFrame {
		return buf, fmt.Errorf("journal: record too large: %d bytes", n)
	}
	hdr := buf[start : start+recordHeader]
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(buf[start+recordHeader:], castagnoli))
	return buf, nil
}

// Append encodes m (binary wire codec), appends the CRC-framed record to
// the current segment, and — unless Options.NoSync — returns once the
// record is durable. Concurrent appends coalesce into shared fsyncs.
func (w *Writer) Append(m wire.Message) error {
	return w.AppendThen(m, true, nil)
}

// AppendThen is Append with two refinements the ingestion server needs.
//
// When sync is false the call returns as soon as the record is accepted
// into the log (buffered write + sequence bump) without waiting for an
// fsync — the ack-on-dispatch durability tier. The record still reaches
// stable storage with the next group commit, rotation or Close; relaxed
// records free-ride on the fsyncs the strict tier keeps issuing.
//
// When then is non-nil it runs while the record's position in the log is
// still exclusively held (under w.mu, after the record is accepted):
// anything then does is guaranteed to be observed by every later record in
// this stream — in particular by a checkpoint capture, which takes the same
// lock. then must be brief and must not append to this journal.
func (w *Writer) AppendThen(m wire.Message, sync bool, then func()) error {
	// Encode and checksum before taking the lock: the CPU-bound half of an
	// append parallelises across connections; w.mu covers only the
	// buffered write and the sequence bump.
	rec := recPool.Get().(*[]byte)
	buf, err := encodeRecord((*rec)[:0], m)
	if err != nil {
		recPool.Put(rec)
		return err
	}

	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		recPool.Put(rec)
		return err
	}
	if _, err := w.bw.Write(buf); err != nil {
		w.err = fmt.Errorf("journal: write: %w", err)
		err := w.err
		w.mu.Unlock()
		recPool.Put(rec)
		return err
	}
	w.size += int64(len(buf))
	seq := w.seq.Add(1)
	// Count the append next to the sequence bump, under the same lock:
	// Appends means "accepted into the log", whether or not the record is
	// durable yet (a failed sync still appended; see WriterStats).
	w.appends.Add(1)
	if then != nil {
		then()
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			w.mu.Unlock()
			recPool.Put(rec)
			return err
		}
	}
	w.mu.Unlock()
	if cap(buf) <= recRetain {
		*rec = buf[:0]
		recPool.Put(rec)
	}
	if w.opts.NoSync || !sync {
		return nil
	}
	return w.syncTo(seq)
}

// syncTo blocks until record seq is durable. Group commit, leader/follower:
// the first appender to arrive while no commit is in flight becomes the
// leader and commits once on behalf of every record landed so far; the
// rest park as followers on a condition variable — crucially NOT on a lock
// the leader holds. A parked follower has already landed its record, so
// nothing it blocks can matter; meanwhile the goroutines feeding the
// writer (on the ingestion server, every other connection) keep appending
// freely into the batch being formed. An earlier design queued followers
// on the commit lock itself, which froze each one's whole pipeline for a
// full fsync and capped batches near the handful of connections that
// happened to drain between commits — the difference between ~5 and a
// full fleet of records per fsync on a loaded host.
func (w *Writer) syncTo(seq uint64) error {
	for {
		if w.durable.Load() >= seq {
			return nil
		}
		w.commitMu.Lock()
		if w.durable.Load() >= seq {
			w.commitMu.Unlock()
			return nil // a commit covered us while we queued
		}
		if w.committing {
			// Follower: a leader is on the disk right now; its snapshot may
			// or may not include our record. Wait for it to finish and
			// re-check — the first uncovered waiter becomes the next leader.
			w.commitDone.Wait()
			w.commitMu.Unlock()
			continue
		}
		w.committing = true
		w.commitMu.Unlock()

		err := w.commitOnce()

		w.commitMu.Lock()
		w.committing = false
		w.commitDone.Broadcast()
		w.commitMu.Unlock()
		if err != nil {
			return err
		}
		// The snapshot was taken after our own record landed, so a
		// successful commit always covers seq; loop to the durable check.
	}
}

// commitOnce flushes and fsyncs one group-commit batch: every record landed
// by the time the sequence quiesces. Runs with w.committing held true but
// no mutex held across the fsync.
func (w *Writer) commitOnce() error {
	// Commit window: while appenders are still actively landing records,
	// give them scheduler passes to finish — each record that lands now
	// rides this fsync instead of forcing its own. A solo appender finds
	// the sequence already quiescent and pays a single yield; the bound
	// caps the window under a continuous arrival stream.
	prev := w.seq.Load()
	for i, quiet := 0, 0; i < 64 && quiet < 2; i++ {
		runtime.Gosched()
		cur := w.seq.Load()
		if cur == prev {
			// One quiet pass can be a lull (an appender mid-decode on its
			// frame); two in a row means the arrival stream has drained.
			quiet++
			continue
		}
		prev, quiet = cur, 0
	}
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	cur := w.seq.Load()
	err := w.bw.Flush()
	f := w.f
	if err != nil {
		w.err = fmt.Errorf("journal: flush: %w", err)
		err := w.err
		w.mu.Unlock()
		return err
	}
	// The fsync itself runs outside w.mu so appends keep landing in the
	// buffer (the next batch) while this batch reaches the platter.
	w.mu.Unlock()
	if err := f.Sync(); err != nil {
		// A rotation can seal this very segment — flush, fsync, close —
		// between the snapshot above and the syscall here, in which case
		// Sync fails on the closed handle but every record in the batch is
		// already durable: rotation raises durable past cur before it
		// closes the file. Only poison the writer when the batch truly
		// didn't make it down.
		if w.durable.Load() >= cur {
			return nil
		}
		err = fmt.Errorf("journal: fsync: %w", err)
		w.mu.Lock()
		w.err = err
		w.mu.Unlock()
		return err
	}
	w.syncs.Add(1)
	raise(&w.durable, cur)
	return nil
}

// checkpointLocked writes a checkpoint batch as the opening records of a
// fresh segment and reclaims every older segment: rotate, append each
// record, flush + fsync, then delete the predecessors — their entire
// history is summarised by the batch. Caller holds w.mu. Ordering is what
// makes a crash at any instant safe: the old segments are only removed
// after the batch is durable, and the reader resumes at the newest segment
// that opens with a COMPLETE batch, so a torn batch or an interrupted
// removal merely means replaying more history than strictly necessary.
func (w *Writer) checkpointLocked(msgs []wire.Message) error {
	if w.err != nil {
		return w.err
	}
	if err := w.rotateLocked(); err != nil {
		w.err = err
		return err
	}
	for _, m := range msgs {
		buf, err := encodeRecord(nil, m)
		if err != nil {
			return err // encode failure: nothing written, writer still clean
		}
		if _, err := w.bw.Write(buf); err != nil {
			w.err = fmt.Errorf("journal: write: %w", err)
			return w.err
		}
		w.size += int64(len(buf))
		w.seq.Add(1)
		w.appends.Add(1)
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("journal: flush: %w", err)
		return w.err
	}
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("journal: fsync: %w", err)
			return w.err
		}
		w.syncs.Add(1)
	}
	raise(&w.durable, w.seq.Load())
	// Reclamation: everything before the checkpoint segment is covered by
	// it. A failure here loses no data — replay just starts earlier.
	names, err := segments(w.dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if idx, ok := segIndex(name); ok && idx < w.seg {
			if err := os.Remove(filepath.Join(w.dir, name)); err != nil {
				return fmt.Errorf("journal: truncate: %w", err)
			}
		}
	}
	if !w.opts.NoSync {
		return syncDir(w.dir)
	}
	return nil
}

// raise lifts a monotonically to at least v.
func raise(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Close flushes and fsyncs outstanding records and closes the segment.
// Further Appends return ErrClosed.
func (w *Writer) Close() error {
	// Wait out any in-flight group commit, then hold commitMu so no new
	// leader starts while the segment is being sealed; a would-be leader
	// blocked here finds the writer poisoned with ErrClosed afterwards.
	w.commitMu.Lock()
	for w.committing {
		w.commitDone.Wait()
	}
	defer w.commitMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.bw.Flush()
	if err == nil && !w.opts.NoSync {
		if err = w.f.Sync(); err == nil {
			w.syncs.Add(1)
		}
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		// Only a successful flush+sync may raise the watermark: an Append
		// still waiting in syncTo must not read its record as durable when
		// Close failed to get it down — it reports the close error instead.
		raise(&w.durable, w.seq.Load())
	}
	w.f = nil
	if w.err == nil {
		if err != nil {
			w.err = fmt.Errorf("journal: close: %w", err)
		} else {
			w.err = ErrClosed
		}
	}
	return err
}

// Stats snapshots the writer's counters.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	segs := w.nsegs
	w.mu.Unlock()
	return WriterStats{Appends: w.appends.Load(), Syncs: w.syncs.Load(), Segments: segs}
}
