package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"trader/internal/wire"
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: writer closed")

// Options configures a Writer.
type Options struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	// A segment may exceed it by at most one record.
	SegmentBytes int64
	// NoSync disables fsync: appends are durable only as far as the OS page
	// cache. For benchmarks and tests that measure or don't need durability.
	NoSync bool
}

// WriterStats counts a writer's work; Syncs/Appends is the group-commit
// batching ratio (1.0 = one fsync per frame, i.e. no batching won).
type WriterStats struct {
	Appends  uint64 // records appended
	Syncs    uint64 // fsync batches issued
	Segments int    // segment files this writer has opened
}

// Writer appends wire frames to a journal directory. Safe for concurrent
// use; concurrent Appends share fsyncs (see the package comment).
type Writer struct {
	dir  string
	opts Options

	// mu guards the current segment: file, buffer, size, and the append
	// sequence number. Held only for in-memory work and (rarely) rotation —
	// never across the group-commit fsync.
	mu    sync.Mutex
	f     *os.File
	bw    *bufio.Writer
	seg   int    // current segment index
	size  int64  // bytes appended to the current segment
	seq   uint64 // records appended (monotonic)
	nsegs int
	err   error // sticky: a failed write or sync poisons the writer

	// syncMu is held by the group-commit leader for the duration of its
	// fsync; durable is the highest seq known to have reached stable
	// storage. Appenders whose record is already ≤ durable return without
	// touching the disk.
	syncMu  sync.Mutex
	durable atomic.Uint64
	syncs   atomic.Uint64
	appends atomic.Uint64
}

// Create opens dir for appending (creating it if needed), repairs a torn
// tail left by a crash in the newest existing segment, and starts a fresh
// segment after the existing ones — existing records are never rewritten,
// so a journal accumulates across daemon restarts and a replay covers the
// full history.
func Create(dir string, opts Options) (*Writer, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	names, err := segments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(names) > 0 {
		last := names[len(names)-1]
		idx, _ := segIndex(last)
		next = idx + 1
		if err := repairTail(filepath.Join(dir, last)); err != nil {
			return nil, err
		}
	}
	w := &Writer{dir: dir, opts: opts, seg: next - 1}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.rotateLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// repairTail truncates path to its last structurally whole record. A torn
// record is only tolerated at the very end of the journal (see the package
// comment); once this writer appends a new segment after path, a torn tail
// there would read as mid-journal corruption, so it must be cut off first.
// Only incomplete records are repaired — a CRC mismatch is real corruption
// and is left in place for the reader to report, not silently discarded.
func repairTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("journal: repair: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var good int64 // end offset of the last whole record
	var hdr [recordHeader]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil // clean end, nothing to repair
			}
			if err == io.ErrUnexpectedEOF {
				break // torn header
			}
			return fmt.Errorf("journal: repair: %w", err)
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		if n > wire.MaxFrame {
			// An impossible length is corruption, not tearing; leave it for
			// the reader's position-carrying error.
			return nil
		}
		if _, err := br.Discard(int(n)); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // torn payload
			}
			return fmt.Errorf("journal: repair: %w", err)
		}
		good += recordHeader + int64(n)
	}
	if err := f.Truncate(good); err != nil {
		return fmt.Errorf("journal: repair: %w", err)
	}
	return f.Sync()
}

// rotateLocked seals the current segment (flush + fsync + close) and opens
// the next one. Caller holds w.mu.
func (w *Writer) rotateLocked() error {
	if w.f != nil {
		if err := w.bw.Flush(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		if !w.opts.NoSync {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("journal: fsync: %w", err)
			}
			w.syncs.Add(1)
		}
		raise(&w.durable, w.seq) // everything in the sealed segment is down
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	w.seg++
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seg)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.f, w.bw, w.size = f, bufio.NewWriterSize(f, 64<<10), 0
	w.nsegs++
	if !w.opts.NoSync {
		syncDir(w.dir) // the new segment's directory entry must survive too
	}
	return nil
}

// recPool recycles record-encode buffers across Appends so the CPU-bound
// encode+CRC work can run outside w.mu without allocating per record.
var recPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// recRetain caps the buffer capacity returned to recPool, mirroring the
// wire layer's bufRetain: one outlier record must not pin a large buffer.
const recRetain = 64 << 10

// hdrZero reserves record-header space at the front of an encode buffer.
var hdrZero [recordHeader]byte

// Append encodes m (binary wire codec), appends the CRC-framed record to
// the current segment, and — unless Options.NoSync — returns once the
// record is durable. Concurrent appends coalesce into shared fsyncs.
func (w *Writer) Append(m wire.Message) error {
	// Encode and checksum before taking the lock: the CPU-bound half of an
	// append parallelises across connections; w.mu covers only the
	// buffered write and the sequence bump.
	rec := recPool.Get().(*[]byte)
	buf := append((*rec)[:0], hdrZero[:]...)
	buf, err := wire.Binary.Append(buf, m)
	if err != nil {
		recPool.Put(rec)
		return fmt.Errorf("journal: encode: %w", err)
	}
	n := len(buf) - recordHeader
	if n > wire.MaxFrame {
		recPool.Put(rec)
		return fmt.Errorf("journal: record too large: %d bytes", n)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(n))
	binary.BigEndian.PutUint32(buf[4:recordHeader], crc32.Checksum(buf[recordHeader:], castagnoli))

	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		recPool.Put(rec)
		return err
	}
	if _, err := w.bw.Write(buf); err != nil {
		w.err = fmt.Errorf("journal: write: %w", err)
		err := w.err
		w.mu.Unlock()
		recPool.Put(rec)
		return err
	}
	w.size += int64(len(buf))
	w.seq++
	seq := w.seq
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			w.mu.Unlock()
			recPool.Put(rec)
			return err
		}
	}
	w.mu.Unlock()
	if cap(buf) <= recRetain {
		*rec = buf[:0]
		recPool.Put(rec)
	}
	w.appends.Add(1)
	if w.opts.NoSync {
		return nil
	}
	return w.syncTo(seq)
}

// syncTo blocks until record seq is durable. Group commit: the first caller
// through syncMu flushes and fsyncs once on behalf of every record appended
// so far; callers that queued behind it find their record already covered
// and return without issuing another syscall.
func (w *Writer) syncTo(seq uint64) error {
	if w.durable.Load() >= seq {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.durable.Load() >= seq {
		return nil // the previous leader's fsync covered us while we waited
	}
	// Widen the commit window: yield once so appenders that are already
	// runnable land their records before the batch is snapshotted. On a
	// loaded single-core host this is the difference between one fsync per
	// frame and one per batch; elsewhere it is one cheap scheduler call.
	runtime.Gosched()
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	cur := w.seq
	err := w.bw.Flush()
	f := w.f
	if err != nil {
		w.err = fmt.Errorf("journal: flush: %w", err)
		err := w.err
		w.mu.Unlock()
		return err
	}
	// The fsync itself runs outside w.mu so appends keep landing in the
	// buffer (the next batch) while this batch reaches the platter.
	w.mu.Unlock()
	if err := f.Sync(); err != nil {
		// A rotation can seal this very segment — flush, fsync, close —
		// between the snapshot above and the syscall here, in which case
		// Sync fails on the closed handle but every record in the batch is
		// already durable: rotation raises durable past cur before it
		// closes the file. Only poison the writer when the batch truly
		// didn't make it down.
		if w.durable.Load() >= cur {
			return nil
		}
		err = fmt.Errorf("journal: fsync: %w", err)
		w.mu.Lock()
		w.err = err
		w.mu.Unlock()
		return err
	}
	w.syncs.Add(1)
	raise(&w.durable, cur)
	return nil
}

// raise lifts a monotonically to at least v.
func raise(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Close flushes and fsyncs outstanding records and closes the segment.
// Further Appends return ErrClosed.
func (w *Writer) Close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.bw.Flush()
	if err == nil && !w.opts.NoSync {
		if err = w.f.Sync(); err == nil {
			w.syncs.Add(1)
		}
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		// Only a successful flush+sync may raise the watermark: an Append
		// still waiting in syncTo must not read its record as durable when
		// Close failed to get it down — it reports the close error instead.
		raise(&w.durable, w.seq)
	}
	w.f = nil
	if w.err == nil {
		if err != nil {
			w.err = fmt.Errorf("journal: close: %w", err)
		} else {
			w.err = ErrClosed
		}
	}
	return err
}

// Stats snapshots the writer's counters.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	segs := w.nsegs
	w.mu.Unlock()
	return WriterStats{Appends: w.appends.Load(), Syncs: w.syncs.Load(), Segments: segs}
}
