package journal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"

	"trader/internal/event"
	"trader/internal/wire"
)

// fuzzRecord frames one message the way Writer.Append does: u32 length,
// u32 CRC-32C, binary-codec payload.
func fuzzRecord(tb testing.TB, m wire.Message) []byte {
	payload, err := wire.Binary.Append(nil, m)
	if err != nil {
		tb.Fatal(err)
	}
	rec := make([]byte, recordHeader, recordHeader+len(payload))
	binary.BigEndian.PutUint32(rec[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:recordHeader], crc32.Checksum(payload, castagnoli))
	return append(rec, payload...)
}

// fuzzSegment is a small well-formed segment: an observation, a heartbeat
// and a recovery-action record.
func fuzzSegment(tb testing.TB) []byte {
	ev := event.Event{Kind: event.Output, Name: "out", Source: "dev", At: 42, Seq: 7}.With("x", 1.5)
	var seg []byte
	for _, m := range []wire.Message{
		{Type: wire.TypeOutput, SUO: "dev", Event: &ev, At: 42},
		{Type: wire.TypeHeartbeat, SUO: "dev", At: 99},
		{Type: wire.TypeControl, SUO: "dev", Control: wire.CtrlReset, Target: "reset", At: 99},
	} {
		seg = append(seg, fuzzRecord(tb, m)...)
	}
	return seg
}

// fuzzCheckpointSegment is a segment opening with a complete checkpoint
// batch — a device-plane record and a Final shard-plane record — followed by
// one post-checkpoint frame: the resume-point shape the reader's
// opensWithCheckpoint scan classifies.
func fuzzCheckpointSegment(tb testing.TB) []byte {
	ev := event.Event{Kind: event.Output, Name: "out", Source: "dev", At: 42, Seq: 7}.With("x", 1.5)
	var seg []byte
	for _, m := range []wire.Message{
		{Type: wire.TypeCheckpoint, SUO: "dev", At: 40, Checkpoint: &wire.Checkpoint{
			Plane: wire.PlaneDevice, Shard: 0, Seq: 3, At: 40,
			Counters: []wire.CheckpointCounter{{Name: "Comparisons", V: 4}},
		}},
		{Type: wire.TypeCheckpoint, Checkpoint: &wire.Checkpoint{
			Plane: wire.PlaneShard, Shard: 0, Seq: 3, Final: true, Profile: "light",
			Counters: []wire.CheckpointCounter{{Name: "dispatched", V: 4}},
		}},
		{Type: wire.TypeOutput, SUO: "dev", Event: &ev, At: 42},
	} {
		seg = append(seg, fuzzRecord(tb, m)...)
	}
	return seg
}

// readAll drains a journal directory, requiring every failure to be the
// torn-tail io.EOF or a position-carrying *CorruptError — never a panic,
// never an unclassified error.
func drainJournal(t *testing.T, dir string) (records int, torn bool, corrupt bool) {
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer r.Close()
	for {
		_, err := r.Next()
		if err == nil {
			records++
			continue
		}
		if err == io.EOF {
			return records, r.Torn(), false
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("error is neither io.EOF nor *CorruptError: %v", err)
		}
		if ce.Segment == "" {
			t.Fatalf("CorruptError without a segment position: %v", ce)
		}
		return records, false, true
	}
}

// FuzzJournalReader feeds arbitrary bytes to the journal reader as a
// segment file — both as the journal's final segment (where a truncated
// tail is the torn-write crash recovery tolerates) and with a valid
// segment after it (where the very same damage is mid-journal corruption).
// The reader must never panic and must classify every outcome as a clean
// end, a torn tail, or a *CorruptError with position information. CI's
// fuzz smoke job runs this next to wire's FuzzDecode (`make fuzz`).
func FuzzJournalReader(f *testing.F) {
	valid := fuzzSegment(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                       // torn payload
	f.Add(valid[:recordHeader-2])                     // torn header
	f.Add([]byte{})                                   // empty segment
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // impossible length
	flipped := append([]byte(nil), valid...)
	flipped[recordHeader+2] ^= 0x40 // payload bit flip: CRC must catch it
	f.Add(flipped)
	badcrc := append([]byte(nil), valid...)
	badcrc[5] ^= 0x01 // stored CRC bit flip
	f.Add(badcrc)
	// Checkpoint-record seeds: a complete resume-point batch, the same batch
	// torn inside its Final record (an interrupted checkpoint — must fall
	// back, never panic), and one with the Final record's payload flipped.
	cpseg := fuzzCheckpointSegment(f)
	f.Add(cpseg)
	f.Add(cpseg[:2*len(cpseg)/3]) // torn inside the batch
	cpflip := append([]byte(nil), cpseg...)
	cpflip[len(cpseg)/2] ^= 0x10
	f.Add(cpflip)

	f.Fuzz(func(t *testing.T, raw []byte) {
		// As the final segment: a truncated tail is a torn write; any
		// corruption must still carry its position.
		last := t.TempDir()
		if err := os.WriteFile(filepath.Join(last, segName(1)), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		drainJournal(t, last)

		// As a mid-journal segment (a valid segment follows): now a torn
		// tail in raw is lost data and must be corruption, not a clean end.
		mid := t.TempDir()
		if err := os.WriteFile(filepath.Join(mid, segName(1)), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(mid, segName(2)), fuzzSegment(t), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, torn, _ := drainJournal(t, mid); torn {
			t.Fatal("mid-journal truncation classified as a torn tail")
		}
	})
}

// The fixed-seed cousins of the fuzz target, so the classification
// properties are asserted on every plain `go test` run too.
func TestReaderClassifiesDamage(t *testing.T) {
	valid := fuzzSegment(t)

	t.Run("clean", func(t *testing.T) {
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, segName(1)), valid, 0o644)
		n, torn, corrupt := drainJournal(t, dir)
		if n != 3 || torn || corrupt {
			t.Fatalf("clean segment: %d records, torn=%v corrupt=%v", n, torn, corrupt)
		}
	})
	t.Run("torn tail is tolerated at the end", func(t *testing.T) {
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, segName(1)), valid[:len(valid)-3], 0o644)
		n, torn, corrupt := drainJournal(t, dir)
		if n != 2 || !torn || corrupt {
			t.Fatalf("torn tail: %d records, torn=%v corrupt=%v", n, torn, corrupt)
		}
	})
	t.Run("torn record mid-journal is corruption", func(t *testing.T) {
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, segName(1)), valid[:len(valid)-3], 0o644)
		os.WriteFile(filepath.Join(dir, segName(2)), valid, 0o644)
		n, torn, corrupt := drainJournal(t, dir)
		if n != 2 || torn || !corrupt {
			t.Fatalf("mid-journal tear: %d records, torn=%v corrupt=%v", n, torn, corrupt)
		}
	})
	t.Run("bit flip is corruption even at the tail", func(t *testing.T) {
		dir := t.TempDir()
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)-1] ^= 0x80
		os.WriteFile(filepath.Join(dir, segName(1)), flipped, 0o644)
		if _, torn, corrupt := drainJournal(t, dir); torn || !corrupt {
			t.Fatalf("flipped tail byte: torn=%v corrupt=%v, want corruption", torn, corrupt)
		}
	})
}
