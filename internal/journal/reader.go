package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"trader/internal/wire"
)

// Reader replays a journal directory in record order. Not safe for
// concurrent use. Next returns io.EOF at the clean end of the journal —
// including after torn trailing records, which Torn then reports.
//
// A sharded journal holds several streams: the flat pre-sharding segments
// in the directory root (replayed first, they are the oldest history) and
// one shard-NNN subdirectory per pool shard, replayed in shard order.
// Within a stream records replay in append order; across streams no order
// is defined — nor needed, since a device's records live in exactly one
// stream and cross-device state is an order-independent fold. Every stream
// was live when the process died, so each stream's FINAL segment may end in
// a torn record; a tear anywhere earlier in a stream is corruption.
//
// Streams that contain a checkpoint resume late: the newest segment that
// opens with a complete checkpoint batch — a prefix of checkpoint records
// ending in one with Final set — is the stream's resume point, and older
// segments are skipped without being read. An incomplete batch (the process
// died mid-checkpoint) is not a resume point; replay falls back to the
// previous one, or the stream's beginning, where the skipped records
// rebuild the same state the long way. Checkpoint restore being absolute
// (assignment, not accumulation) is what makes that fallback safe.
type Reader struct {
	streams []stream // streams not yet finished; streams[0] is current
	f       *os.File
	br      *bufio.Reader
	path    string // current segment's display name (stream-relative)
	off     int64  // byte offset of the next record in the current segment
	lastSeg bool   // the current segment is its stream's final one
	buf     []byte // reused payload buffer
	recs    uint64 // records returned so far
	torn    bool
	skipped int // segments skipped via checkpoint resume points
}

// stream is one segment sequence: the directory root or a shard subdir.
type stream struct {
	dir  string // absolute directory holding the segments
	rel  string // display prefix ("" for the root, "shard-000/" otherwise)
	segs []string
}

// errSegEnd signals a clean segment boundary to the Next loop.
var errSegEnd = errors.New("journal: segment end")

// OpenReader opens dir for replay. A missing or empty directory is an
// empty journal: Next returns io.EOF immediately.
func OpenReader(dir string) (*Reader, error) {
	rootSegs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	streams := []stream{{dir: dir, rel: "", segs: rootSegs}}
	shards, err := shardDirs(dir)
	if err != nil {
		return nil, err
	}
	for _, sd := range shards {
		segs, err := segments(filepath.Join(dir, sd))
		if err != nil {
			return nil, err
		}
		streams = append(streams, stream{dir: filepath.Join(dir, sd), rel: sd + "/", segs: segs})
	}
	r := &Reader{}
	for i := range streams {
		idx, err := resumeIndex(streams[i].dir, streams[i].segs)
		if err != nil {
			return nil, err
		}
		r.skipped += idx
		streams[i].segs = streams[i].segs[idx:]
	}
	r.streams = streams
	return r, nil
}

// resumeIndex finds the newest segment of a stream that opens with a
// complete checkpoint batch; segments before it need not be read. Index 0
// means replay from the beginning.
func resumeIndex(dir string, segs []string) (int, error) {
	for i := len(segs) - 1; i > 0; i-- {
		ok, err := opensWithCheckpoint(filepath.Join(dir, segs[i]))
		if err != nil {
			return 0, err
		}
		if ok {
			return i, nil
		}
	}
	return 0, nil
}

// opensWithCheckpoint reports whether the segment's opening records form a
// complete checkpoint batch: checkpoint records only, reaching one with
// Final set before any other record type, tear or damage. Damage makes the
// segment unusable as a resume point but is NOT reported here — replay will
// start earlier and the full read path will position the error properly.
func opensWithCheckpoint(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var hdr [recordHeader]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return false, nil // EOF or tear before the batch completed
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		want := binary.BigEndian.Uint32(hdr[4:])
		if n > wire.MaxFrame {
			return false, nil
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		payload := buf[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return false, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return false, nil
		}
		var m wire.Message
		if err := wire.Binary.Unmarshal(payload, &m); err != nil {
			return false, nil
		}
		if m.Type != wire.TypeCheckpoint {
			return false, nil
		}
		if m.Checkpoint != nil && m.Checkpoint.Final {
			return true, nil
		}
	}
}

// Next returns the next journaled frame, io.EOF at the end of the journal,
// or a *CorruptError pinpointing unrecoverable damage.
func (r *Reader) Next() (wire.Message, error) {
	for {
		if r.f == nil {
			for len(r.streams) > 0 && len(r.streams[0].segs) == 0 {
				r.streams = r.streams[1:]
			}
			if len(r.streams) == 0 {
				return wire.Message{}, io.EOF
			}
			st := &r.streams[0]
			name := st.segs[0]
			st.segs = st.segs[1:]
			f, err := os.Open(filepath.Join(st.dir, name))
			if err != nil {
				return wire.Message{}, fmt.Errorf("journal: %w", err)
			}
			r.f, r.br, r.path, r.off = f, bufio.NewReaderSize(f, 64<<10), st.rel+name, 0
			r.lastSeg = len(st.segs) == 0
		}
		m, err := r.next()
		if err == errSegEnd {
			r.closeSeg()
			continue
		}
		return m, err
	}
}

func (r *Reader) closeSeg() {
	if r.f != nil {
		_ = r.f.Close()
		r.f = nil
	}
}

// next reads one record from the current segment.
func (r *Reader) next() (wire.Message, error) {
	var hdr [recordHeader]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		switch err {
		case io.EOF:
			return wire.Message{}, errSegEnd // clean record boundary
		case io.ErrUnexpectedEOF:
			return r.tail("record header")
		default:
			return wire.Message{}, fmt.Errorf("journal: %s: %w", r.path, err)
		}
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	want := binary.BigEndian.Uint32(hdr[4:])
	if n > wire.MaxFrame {
		// Bound the allocation before trusting the length, exactly as the
		// wire framing layer does.
		return wire.Message{}, r.corrupt(fmt.Sprintf("impossible record length %d", n))
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return r.tail("record payload")
		}
		return wire.Message{}, fmt.Errorf("journal: %s: %w", r.path, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return wire.Message{}, r.corrupt(fmt.Sprintf("crc mismatch: stored %08x, computed %08x", want, got))
	}
	var m wire.Message
	if err := wire.Binary.Unmarshal(payload, &m); err != nil {
		return wire.Message{}, r.corrupt(err.Error())
	}
	r.off += recordHeader + int64(n)
	r.recs++
	return m, nil
}

// tail classifies an incomplete record: at the end of a stream's final
// segment it is the torn write crash recovery expects — the stream ends
// cleanly (Torn reports it) and replay continues with the next stream.
// Anywhere earlier the stream lost data that later segments continue past,
// which replay must not paper over.
func (r *Reader) tail(what string) (wire.Message, error) {
	if r.lastSeg {
		r.torn = true
		return wire.Message{}, errSegEnd
	}
	return wire.Message{}, r.corrupt("truncated " + what + " mid-journal")
}

func (r *Reader) corrupt(detail string) error {
	return &CorruptError{Segment: r.path, Offset: r.off, Record: r.recs, Detail: detail}
}

// Torn reports whether any stream ended in a torn trailing record — a
// crash mid-append. Meaningful once Next has returned io.EOF.
func (r *Reader) Torn() bool { return r.torn }

// Records returns how many records Next has returned.
func (r *Reader) Records() uint64 { return r.recs }

// SegmentsSkipped returns how many whole segments checkpoint resume points
// allowed the reader to skip without reading.
func (r *Reader) SegmentsSkipped() int { return r.skipped }

// Close releases the reader's current segment file.
func (r *Reader) Close() error {
	r.closeSeg()
	return nil
}
