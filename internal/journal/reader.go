package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"trader/internal/wire"
)

// Reader replays a journal directory in record order. Not safe for
// concurrent use. Next returns io.EOF at the clean end of the journal —
// including after a torn trailing record, which Torn then reports.
type Reader struct {
	dir  string
	segs []string // segment file names not yet opened
	f    *os.File
	br   *bufio.Reader
	path string // current segment file name
	off  int64  // byte offset of the next record in the current segment
	last bool   // the current segment is the journal's final one
	buf  []byte // reused payload buffer
	recs uint64 // records returned so far
	torn bool
}

// errSegEnd signals a clean segment boundary to the Next loop.
var errSegEnd = errors.New("journal: segment end")

// OpenReader opens dir for replay. A missing or empty directory is an
// empty journal: Next returns io.EOF immediately.
func OpenReader(dir string) (*Reader, error) {
	names, err := segments(dir)
	if err != nil {
		return nil, err
	}
	return &Reader{dir: dir, segs: names}, nil
}

// Next returns the next journaled frame, io.EOF at the end of the journal,
// or a *CorruptError pinpointing unrecoverable damage.
func (r *Reader) Next() (wire.Message, error) {
	for {
		if r.f == nil {
			if len(r.segs) == 0 {
				return wire.Message{}, io.EOF
			}
			name := r.segs[0]
			r.segs = r.segs[1:]
			f, err := os.Open(filepath.Join(r.dir, name))
			if err != nil {
				return wire.Message{}, fmt.Errorf("journal: %w", err)
			}
			r.f, r.br, r.path, r.off = f, bufio.NewReaderSize(f, 64<<10), name, 0
			r.last = len(r.segs) == 0
		}
		m, err := r.next()
		if err == errSegEnd {
			r.closeSeg()
			continue
		}
		return m, err
	}
}

func (r *Reader) closeSeg() {
	if r.f != nil {
		_ = r.f.Close()
		r.f = nil
	}
}

// next reads one record from the current segment.
func (r *Reader) next() (wire.Message, error) {
	var hdr [recordHeader]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		switch err {
		case io.EOF:
			return wire.Message{}, errSegEnd // clean record boundary
		case io.ErrUnexpectedEOF:
			return r.tail("record header")
		default:
			return wire.Message{}, fmt.Errorf("journal: %s: %w", r.path, err)
		}
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	want := binary.BigEndian.Uint32(hdr[4:])
	if n > wire.MaxFrame {
		// Bound the allocation before trusting the length, exactly as the
		// wire framing layer does.
		return wire.Message{}, r.corrupt(fmt.Sprintf("impossible record length %d", n))
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return r.tail("record payload")
		}
		return wire.Message{}, fmt.Errorf("journal: %s: %w", r.path, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return wire.Message{}, r.corrupt(fmt.Sprintf("crc mismatch: stored %08x, computed %08x", want, got))
	}
	var m wire.Message
	if err := wire.Binary.Unmarshal(payload, &m); err != nil {
		return wire.Message{}, r.corrupt(err.Error())
	}
	r.off += recordHeader + int64(n)
	r.recs++
	return m, nil
}

// tail classifies an incomplete record: at the end of the journal's final
// segment it is the torn write crash recovery expects — replay ends
// cleanly, Torn reports it. Anywhere earlier the journal lost data that
// later segments continue past, which replay must not paper over.
func (r *Reader) tail(what string) (wire.Message, error) {
	if r.last {
		r.torn = true
		r.closeSeg()
		r.segs = nil
		return wire.Message{}, io.EOF
	}
	return wire.Message{}, r.corrupt("truncated " + what + " mid-journal")
}

func (r *Reader) corrupt(detail string) error {
	return &CorruptError{Segment: r.path, Offset: r.off, Record: r.recs, Detail: detail}
}

// Torn reports whether the journal ended in a torn trailing record — a
// crash mid-append. Meaningful once Next has returned io.EOF.
func (r *Reader) Torn() bool { return r.torn }

// Records returns how many records Next has returned.
func (r *Reader) Records() uint64 { return r.recs }

// Close releases the reader's current segment file.
func (r *Reader) Close() error {
	r.closeSeg()
	return nil
}
