// Package aspect provides ready-made observation aspects for the koala
// weaver: publishing inter-component calls as events, recording call stacks
// (mirroring the on-chip call-stack tracing of Sect. 4.1), and measuring
// call latencies. These are the standard probes the awareness framework
// weaves onto a SUO "with minimal adaptation of the software of the system".
package aspect

import (
	"fmt"

	"trader/internal/event"
	"trader/internal/koala"
	"trader/internal/sim"
)

// ObserveCalls publishes an Output-kind event on bus for every call matching
// the pointcut. Event name is "call:<iface>.<method>"; the event carries the
// call's scalar arguments.
func ObserveCalls(w *koala.Weaver, pc koala.Pointcut, bus *event.Bus, kernel *sim.Kernel) {
	var seq uint64
	w.Weave(pc, koala.Advice{
		Name: "observe-calls",
		After: func(c koala.Call, result koala.Args) {
			seq++
			e := event.Event{
				Kind:   event.Output,
				Name:   fmt.Sprintf("call:%s.%s", c.Interface, c.Method),
				Source: c.Callee,
				At:     kernel.Now(),
				Seq:    seq,
			}
			for k, v := range c.Args {
				e = e.With("arg."+k, v)
			}
			for k, v := range result {
				e = e.With("ret."+k, v)
			}
			bus.Publish(e)
		},
	})
}

// StackMonitor records the live call stack through woven interfaces — the
// software analogue of the hardware call-stack trace (functions, parameters,
// result values) the paper exploits for observation.
type StackMonitor struct {
	stack    []koala.Call
	MaxDepth int
	// Frames counts total pushed frames.
	Frames uint64
	// OnOverflow, when non-nil, runs when depth exceeds Limit.
	Limit      int
	OnOverflow func(depth int)
}

// Install weaves the monitor at the pointcut.
func (s *StackMonitor) Install(w *koala.Weaver, pc koala.Pointcut) {
	w.Weave(pc, koala.Advice{
		Name: "stack-monitor",
		Around: func(c koala.Call, proceed func(koala.Args) koala.Args) koala.Args {
			s.stack = append(s.stack, c)
			s.Frames++
			if d := len(s.stack); d > s.MaxDepth {
				s.MaxDepth = d
			}
			if s.Limit > 0 && len(s.stack) > s.Limit && s.OnOverflow != nil {
				s.OnOverflow(len(s.stack))
			}
			defer func() { s.stack = s.stack[:len(s.stack)-1] }()
			return proceed(c.Args)
		},
	})
}

// Depth returns the current stack depth.
func (s *StackMonitor) Depth() int { return len(s.stack) }

// Stack returns a copy of the current call stack, outermost first.
func (s *StackMonitor) Stack() []koala.Call {
	out := make([]koala.Call, len(s.stack))
	copy(out, s.stack)
	return out
}

// LatencyProbe measures virtual-time latency of matched calls per method.
type LatencyProbe struct {
	kernel *sim.Kernel
	// PerMethod maps "iface.method" to its latency series (seconds).
	PerMethod map[string]*sim.Series
}

// NewLatencyProbe creates a probe using the kernel clock.
func NewLatencyProbe(kernel *sim.Kernel) *LatencyProbe {
	return &LatencyProbe{kernel: kernel, PerMethod: make(map[string]*sim.Series)}
}

// Install weaves the probe at the pointcut.
func (p *LatencyProbe) Install(w *koala.Weaver, pc koala.Pointcut) {
	w.Weave(pc, koala.Advice{
		Name: "latency-probe",
		Around: func(c koala.Call, proceed func(koala.Args) koala.Args) koala.Args {
			start := p.kernel.Now()
			r := proceed(c.Args)
			key := c.Interface + "." + c.Method
			s, ok := p.PerMethod[key]
			if !ok {
				s = &sim.Series{Name: key}
				p.PerMethod[key] = s
			}
			s.Observe((p.kernel.Now() - start).Seconds())
			return r
		},
	})
}
