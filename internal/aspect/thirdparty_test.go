package aspect

import (
	"testing"

	"trader/internal/event"
	"trader/internal/hwmon"
	"trader/internal/koala"
	"trader/internal/sim"
)

// TestThirdPartyComponentMonitoredWithoutModification exercises the paper's
// deployment constraint: "we aim at minimal adaptation of the software of
// the system, to be able to deal with third-party software and legacy
// code". A third-party decoder is added to the system as an opaque Iface —
// its internals are never touched — yet observation (call events) and error
// detection (range checking on its outputs) are woven on from outside.
func TestThirdPartyComponentMonitoredWithoutModification(t *testing.T) {
	k := sim.NewKernel(1)
	bus := event.NewBus()
	sys := koala.NewSystem(k, "s", bus)

	// The vendor blob: behaviour we cannot change. It has a defect — at
	// input 13 it returns a wildly out-of-range sample.
	vendor := sys.AddComponent("vendor-codec")
	vendor.Provide("ICodec", koala.Iface{
		"decode": func(a koala.Args) koala.Args {
			in := a["in"]
			if in == 13 {
				return koala.Args{"sample": 1e6} // the bug
			}
			return koala.Args{"sample": in * 2}
		},
	})
	app := sys.AddComponent("app")
	app.Require("ICodec")
	if err := sys.Bind("app", "ICodec", "vendor-codec"); err != nil {
		t.Fatal(err)
	}

	// Observation: woven, not coded into the component.
	ObserveCalls(sys.Weaver(), koala.Pointcut{Callee: "vendor-codec"}, bus, k)

	// Detection: range check the woven call events.
	rc := hwmon.NewRangeChecker(k, hwmon.RangeRule{
		Name: "sample-range", EventName: "call:ICodec.decode", ValueName: "ret.sample",
		Min: -1000, Max: 1000,
	})
	rc.AttachBus(bus)
	var violations []hwmon.RangeViolation
	rc.OnViolation(func(v hwmon.RangeViolation) { violations = append(violations, v) })

	for i := 0; i < 20; i++ {
		app.Call("ICodec", "decode", koala.Args{"in": float64(i)})
	}
	if len(violations) != 1 {
		t.Fatalf("violations = %d, want exactly the input-13 defect", len(violations))
	}
	if violations[0].Value != 1e6 {
		t.Fatalf("violation = %+v", violations[0])
	}
	if rc.Checks != 20 {
		t.Fatalf("checks = %d, want one per call", rc.Checks)
	}
}
