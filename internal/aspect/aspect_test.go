package aspect

import (
	"testing"

	"trader/internal/event"
	"trader/internal/koala"
	"trader/internal/sim"
)

func build(t *testing.T) (*sim.Kernel, *koala.System, *koala.Component) {
	t.Helper()
	k := sim.NewKernel(1)
	sys := koala.NewSystem(k, "s", event.NewBus())
	p := sys.AddComponent("decoder")
	p.Provide("IVideo", koala.Iface{
		"decode": func(a koala.Args) koala.Args {
			return koala.Args{"q": a["bits"] / 2}
		},
	})
	c := sys.AddComponent("pipeline")
	c.Require("IVideo")
	if err := sys.Bind("pipeline", "IVideo", "decoder"); err != nil {
		t.Fatal(err)
	}
	return k, sys, c
}

func TestObserveCallsPublishesEvents(t *testing.T) {
	k, sys, c := build(t)
	var got []event.Event
	sys.Bus().Subscribe("", func(e event.Event) { got = append(got, e) })
	ObserveCalls(sys.Weaver(), koala.Pointcut{}, sys.Bus(), k)
	c.Call("IVideo", "decode", koala.Args{"bits": 8})
	if len(got) != 1 {
		t.Fatalf("events = %d, want 1", len(got))
	}
	e := got[0]
	if e.Name != "call:IVideo.decode" || e.Source != "decoder" || e.Kind != event.Output {
		t.Fatalf("event = %+v", e)
	}
	if v, _ := e.Get("arg.bits"); v != 8 {
		t.Fatalf("arg.bits = %v", v)
	}
	if v, _ := e.Get("ret.q"); v != 4 {
		t.Fatalf("ret.q = %v", v)
	}
}

func TestStackMonitorDepthAndOverflow(t *testing.T) {
	k := sim.NewKernel(1)
	sys := koala.NewSystem(k, "s", nil)
	sm := &StackMonitor{Limit: 2}
	overflowed := 0
	sm.OnOverflow = func(d int) { overflowed = d }

	// Recursive component: a.Call m -> b.m which calls back a.m' etc.
	a := sys.AddComponent("a")
	b := sys.AddComponent("b")
	depth := 0
	a.Require("I")
	b.Require("J")
	var observedMid []koala.Call
	a.Provide("J", koala.Iface{
		"m": func(args koala.Args) koala.Args {
			depth++
			if depth < 3 {
				observedMid = sm.Stack()
				return b.Call("J", "m", args) // J provided by a; b calls a
			}
			return args
		},
	})
	b.Provide("I", koala.Iface{
		"m": func(args koala.Args) koala.Args {
			return b.Call("J", "m", args)
		},
	})
	if err := sys.Bind("a", "I", "b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Bind("b", "J", "a"); err != nil {
		t.Fatal(err)
	}
	sm.Install(sys.Weaver(), koala.Pointcut{})
	a.Call("I", "m", nil)
	// Call chain: a.I.m -> b.J.m -> b.J.m -> b.J.m = 4 woven frames.
	if sm.MaxDepth != 4 {
		t.Fatalf("MaxDepth = %d, want 4", sm.MaxDepth)
	}
	if sm.Depth() != 0 {
		t.Fatalf("Depth after return = %d, want 0", sm.Depth())
	}
	if overflowed < 3 {
		t.Fatalf("overflow reported at depth %d, want ≥ 3", overflowed)
	}
	if sm.Frames != 4 {
		t.Fatalf("Frames = %d, want 4", sm.Frames)
	}
	if len(observedMid) == 0 {
		t.Fatal("mid-call stack snapshot empty")
	}
}

func TestLatencyProbe(t *testing.T) {
	k := sim.NewKernel(1)
	sys := koala.NewSystem(k, "s", nil)
	p := sys.AddComponent("slow")
	p.Provide("I", koala.Iface{
		"m": func(a koala.Args) koala.Args {
			// Simulate virtual work by advancing the kernel inside the call.
			k.Schedule(50, func() {})
			k.Run(k.Now() + 50)
			return a
		},
	})
	c := sys.AddComponent("c")
	c.Require("I")
	_ = sys.Bind("c", "I", "slow")
	probe := NewLatencyProbe(k)
	probe.Install(sys.Weaver(), koala.Pointcut{})
	c.Call("I", "m", nil)
	s := probe.PerMethod["I.m"]
	if s == nil || s.N() != 1 {
		t.Fatalf("no latency recorded: %+v", probe.PerMethod)
	}
	if got := s.Mean(); got != (50 * sim.Nanosecond).Seconds() {
		t.Fatalf("latency = %v, want 50ns", got)
	}
}
