// Package koala implements a component model in the style of Koala, the
// component technology used at NXP (referenced throughout the paper). It
// provides components with named provides/requires interfaces, explicit
// bindings, and component modes. All inter-component calls are routed through
// the binding layer so the aspect package can weave observation advice onto
// join points without modifying component code (Sect. 4.1: "observation of
// software behaviour is mainly done by code instrumentation using
// aspect-oriented techniques ... AspectKoala has been developed on top of the
// component model Koala").
package koala

import (
	"fmt"
	"sort"

	"trader/internal/event"
	"trader/internal/sim"
)

// Args carries named scalar arguments/results of a method call.
type Args map[string]float64

// Clone copies the args.
func (a Args) Clone() Args {
	out := make(Args, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Method is one operation of an interface.
type Method func(args Args) Args

// Iface is a named collection of methods.
type Iface map[string]Method

// Call describes one inter-component invocation, visible to advice.
type Call struct {
	Caller    string // requiring component
	Callee    string // providing component
	Interface string
	Method    string
	Args      Args
	At        sim.Time
}

func (c Call) String() string {
	return fmt.Sprintf("%s->%s.%s.%s", c.Caller, c.Callee, c.Interface, c.Method)
}

// Component is a unit of composition with provided and required interfaces
// and a mode (the internal state observed by mode-consistency checking).
type Component struct {
	Name   string
	system *System

	provides map[string]Iface
	requires map[string]*binding
	mode     string
}

type binding struct {
	iface    string
	provider *Component
}

// System owns components, bindings, and the observation bus.
type System struct {
	Name       string
	kernel     *sim.Kernel
	components map[string]*Component
	weaver     *Weaver
	bus        *event.Bus
	seq        uint64
}

// NewSystem creates an empty component system. bus may be nil (no mode
// events are then published).
func NewSystem(kernel *sim.Kernel, name string, bus *event.Bus) *System {
	return &System{
		Name: name, kernel: kernel, bus: bus,
		components: make(map[string]*Component),
		weaver:     NewWeaver(),
	}
}

// Weaver returns the system's aspect weaver.
func (s *System) Weaver() *Weaver { return s.weaver }

// Bus returns the observation bus (may be nil).
func (s *System) Bus() *event.Bus { return s.bus }

// AddComponent registers a component.
func (s *System) AddComponent(name string) *Component {
	if _, dup := s.components[name]; dup {
		panic(fmt.Sprintf("koala: duplicate component %q", name))
	}
	c := &Component{
		Name: name, system: s,
		provides: make(map[string]Iface),
		requires: make(map[string]*binding),
	}
	s.components[name] = c
	return c
}

// Component returns the named component, or nil.
func (s *System) Component(name string) *Component { return s.components[name] }

// Components returns all components sorted by name.
func (s *System) Components() []*Component {
	out := make([]*Component, 0, len(s.components))
	for _, c := range s.components {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Provide declares that c implements iface.
func (c *Component) Provide(iface string, impl Iface) *Component {
	if _, dup := c.provides[iface]; dup {
		panic(fmt.Sprintf("koala: component %q already provides %q", c.Name, iface))
	}
	c.provides[iface] = impl
	return c
}

// Require declares that c needs iface; it must be bound before calls.
func (c *Component) Require(iface string) *Component {
	if _, dup := c.requires[iface]; dup {
		panic(fmt.Sprintf("koala: component %q already requires %q", c.Name, iface))
	}
	c.requires[iface] = &binding{iface: iface}
	return c
}

// Bind connects requirer's required iface to provider's provided iface.
func (s *System) Bind(requirer, iface, provider string) error {
	r := s.components[requirer]
	p := s.components[provider]
	if r == nil || p == nil {
		return fmt.Errorf("koala: bind %s.%s -> %s: unknown component", requirer, iface, provider)
	}
	b := r.requires[iface]
	if b == nil {
		return fmt.Errorf("koala: component %q does not require %q", requirer, iface)
	}
	if _, ok := p.provides[iface]; !ok {
		return fmt.Errorf("koala: component %q does not provide %q", provider, iface)
	}
	b.provider = p
	return nil
}

// Validate checks that every required interface is bound.
func (s *System) Validate() error {
	var missing []string
	for _, c := range s.Components() {
		ifaces := make([]string, 0, len(c.requires))
		for i := range c.requires {
			ifaces = append(ifaces, i)
		}
		sort.Strings(ifaces)
		for _, i := range ifaces {
			if c.requires[i].provider == nil {
				missing = append(missing, c.Name+"."+i)
			}
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("koala: unbound requires: %v", missing)
	}
	return nil
}

// Call invokes method on the component bound to c's required iface, routing
// through the weaver. It panics on unbound interfaces (a wiring bug) and
// returns the method result.
func (c *Component) Call(iface, method string, args Args) Args {
	b := c.requires[iface]
	if b == nil || b.provider == nil {
		panic(fmt.Sprintf("koala: component %q: unbound require %q", c.Name, iface))
	}
	impl := b.provider.provides[iface]
	m := impl[method]
	if m == nil {
		panic(fmt.Sprintf("koala: %q provides %q but not method %q", b.provider.Name, iface, method))
	}
	call := Call{
		Caller: c.Name, Callee: b.provider.Name,
		Interface: iface, Method: method, Args: args, At: c.now(),
	}
	return c.system.weaver.invoke(call, m)
}

func (c *Component) now() sim.Time {
	if c.system.kernel != nil {
		return c.system.kernel.Now()
	}
	return 0
}

// Provides lists the component's provided interface names, sorted.
func (c *Component) Provides() []string {
	out := make([]string, 0, len(c.provides))
	for i := range c.provides {
		out = append(out, i)
	}
	sort.Strings(out)
	return out
}

// Requires lists the component's required interface names, sorted.
func (c *Component) Requires() []string {
	out := make([]string, 0, len(c.requires))
	for i := range c.requires {
		out = append(out, i)
	}
	sort.Strings(out)
	return out
}

// BoundTo returns the provider bound to the required interface ("" when
// unbound or unknown) — architecture introspection for tooling like the
// FMEA model builder.
func (c *Component) BoundTo(iface string) string {
	if b := c.requires[iface]; b != nil && b.provider != nil {
		return b.provider.Name
	}
	return ""
}

// Mode returns the component's current mode.
func (c *Component) Mode() string { return c.mode }

// SetMode updates the component's mode and publishes a state event carrying
// the mode hash (modes are interned as integers on the wire; the event also
// keeps the string in its name for readability: "mode:<value>").
func (c *Component) SetMode(mode string) {
	if c.mode == mode {
		return
	}
	c.mode = mode
	if c.system.bus != nil {
		c.system.seq++
		e := event.Event{
			Kind: event.State, Name: "mode:" + mode, Source: c.Name,
			At: c.now(), Seq: c.system.seq,
		}
		e = e.With("mode", float64(ModeID(mode)))
		c.system.bus.Publish(e)
	}
}

// modeIDs interns mode strings process-wide so modes can travel as scalars.
var modeIDs = map[string]int{}
var modeNames []string

// ModeID returns a stable small integer for a mode string.
func ModeID(mode string) int {
	if id, ok := modeIDs[mode]; ok {
		return id
	}
	id := len(modeNames)
	modeIDs[mode] = id
	modeNames = append(modeNames, mode)
	return id
}

// ModeName returns the string for a mode id, or "".
func ModeName(id int) string {
	if id < 0 || id >= len(modeNames) {
		return ""
	}
	return modeNames[id]
}
