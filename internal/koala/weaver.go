package koala

import "sort"

// This file is the AspectKoala analogue ([19] in the paper): advice woven
// onto inter-component call join points, so observation requires no change
// to component code.

// Advice hooks one join point.
type Advice struct {
	// Name identifies the aspect (for removal and diagnostics).
	Name string
	// Before runs before the method with the outgoing call.
	Before func(Call)
	// After runs after the method with the call and its result.
	After func(Call, Args)
	// Around, when non-nil, wraps the invocation: it receives the call and
	// a proceed function and must return the result (it may skip proceed to
	// stub the callee, or alter args/results — used for fault injection).
	Around func(Call, func(Args) Args) Args
}

// Pointcut selects join points. Empty fields match anything.
type Pointcut struct {
	Caller    string
	Callee    string
	Interface string
	Method    string
}

// Matches reports whether the call is selected.
func (p Pointcut) Matches(c Call) bool {
	return (p.Caller == "" || p.Caller == c.Caller) &&
		(p.Callee == "" || p.Callee == c.Callee) &&
		(p.Interface == "" || p.Interface == c.Interface) &&
		(p.Method == "" || p.Method == c.Method)
}

type aspect struct {
	pc     Pointcut
	advice Advice
	id     int
}

// Weaver holds woven aspects and dispatches calls through them.
type Weaver struct {
	aspects []aspect
	nextID  int
	// Invocations counts calls routed through the weaver.
	Invocations uint64
}

// NewWeaver returns an empty weaver.
func NewWeaver() *Weaver { return &Weaver{} }

// Weave registers advice at a pointcut. Aspects apply in weave order:
// earlier aspects are outermost.
func (w *Weaver) Weave(pc Pointcut, adv Advice) {
	w.aspects = append(w.aspects, aspect{pc: pc, advice: adv, id: w.nextID})
	w.nextID++
}

// Unweave removes all aspects with the given name.
func (w *Weaver) Unweave(name string) {
	kept := w.aspects[:0]
	for _, a := range w.aspects {
		if a.advice.Name != name {
			kept = append(kept, a)
		}
	}
	w.aspects = kept
}

// AspectNames lists woven aspect names, sorted and deduplicated.
func (w *Weaver) AspectNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, a := range w.aspects {
		if !seen[a.advice.Name] {
			seen[a.advice.Name] = true
			names = append(names, a.advice.Name)
		}
	}
	sort.Strings(names)
	return names
}

// invoke routes a call through matching advice down to the target method.
func (w *Weaver) invoke(call Call, target Method) Args {
	w.Invocations++
	var matched []aspect
	for _, a := range w.aspects {
		if a.pc.Matches(call) {
			matched = append(matched, a)
		}
	}
	var run func(i int, args Args) Args
	run = func(i int, args Args) Args {
		if i == len(matched) {
			return target(args)
		}
		a := matched[i]
		c := call
		c.Args = args
		if a.advice.Before != nil {
			a.advice.Before(c)
		}
		var result Args
		if a.advice.Around != nil {
			result = a.advice.Around(c, func(inner Args) Args {
				return run(i+1, inner)
			})
		} else {
			result = run(i+1, args)
		}
		if a.advice.After != nil {
			a.advice.After(c, result)
		}
		return result
	}
	return run(0, call.Args)
}
