package koala

import (
	"strings"
	"testing"

	"trader/internal/event"
	"trader/internal/sim"
)

func buildAV(t *testing.T) (*System, *Component, *Component) {
	t.Helper()
	k := sim.NewKernel(1)
	sys := NewSystem(k, "av", event.NewBus())
	amp := sys.AddComponent("amp")
	vol := 0.0
	amp.Provide("IAudio", Iface{
		"setVolume": func(a Args) Args { vol = a["level"]; return Args{"ok": 1} },
		"getVolume": func(a Args) Args { return Args{"level": vol} },
	})
	ui := sys.AddComponent("ui")
	ui.Require("IAudio")
	if err := sys.Bind("ui", "IAudio", "amp"); err != nil {
		t.Fatal(err)
	}
	return sys, ui, amp
}

func TestCallThroughBinding(t *testing.T) {
	sys, ui, _ := buildAV(t)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	res := ui.Call("IAudio", "setVolume", Args{"level": 7})
	if res["ok"] != 1 {
		t.Fatalf("res = %v", res)
	}
	got := ui.Call("IAudio", "getVolume", nil)
	if got["level"] != 7 {
		t.Fatalf("volume = %v, want 7", got["level"])
	}
}

func TestValidateUnbound(t *testing.T) {
	k := sim.NewKernel(1)
	sys := NewSystem(k, "s", nil)
	c := sys.AddComponent("c")
	c.Require("IMissing")
	err := sys.Validate()
	if err == nil || !strings.Contains(err.Error(), "c.IMissing") {
		t.Fatalf("err = %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	k := sim.NewKernel(1)
	sys := NewSystem(k, "s", nil)
	a := sys.AddComponent("a")
	b := sys.AddComponent("b")
	a.Require("I")
	if err := sys.Bind("ghost", "I", "b"); err == nil {
		t.Fatal("unknown requirer should fail")
	}
	if err := sys.Bind("a", "I", "b"); err == nil {
		t.Fatal("provider without iface should fail")
	}
	if err := sys.Bind("b", "I", "a"); err == nil {
		t.Fatal("requirer without require should fail")
	}
	b.Provide("I", Iface{"m": func(Args) Args { return nil }})
	if err := sys.Bind("a", "I", "b"); err != nil {
		t.Fatal(err)
	}
}

func TestCallUnboundPanics(t *testing.T) {
	_, ui, _ := buildAV(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ui.Call("IVideo", "play", nil)
}

func TestCallUnknownMethodPanics(t *testing.T) {
	_, ui, _ := buildAV(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ui.Call("IAudio", "explode", nil)
}

func TestDuplicatePanics(t *testing.T) {
	k := sim.NewKernel(1)
	sys := NewSystem(k, "s", nil)
	sys.AddComponent("c")
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("dup component", func() { sys.AddComponent("c") })
	c := sys.Component("c")
	c.Provide("I", Iface{})
	mustPanic("dup provide", func() { c.Provide("I", Iface{}) })
	c.Require("R")
	mustPanic("dup require", func() { c.Require("R") })
}

func TestModeEventsPublished(t *testing.T) {
	sys, _, amp := buildAV(t)
	var got []event.Event
	sys.Bus().Subscribe("", func(e event.Event) { got = append(got, e) })
	amp.SetMode("mute")
	amp.SetMode("mute") // no-op: unchanged
	amp.SetMode("unmute")
	if len(got) != 2 {
		t.Fatalf("events = %d, want 2", len(got))
	}
	if got[0].Kind != event.State || got[0].Source != "amp" {
		t.Fatalf("event = %+v", got[0])
	}
	id, ok := got[0].Get("mode")
	if !ok || ModeName(int(id)) != "mute" {
		t.Fatalf("mode id round trip failed: %v %v", id, ok)
	}
	if amp.Mode() != "unmute" {
		t.Fatalf("Mode = %q", amp.Mode())
	}
}

func TestModeInterning(t *testing.T) {
	a := ModeID("standby")
	b := ModeID("standby")
	if a != b {
		t.Fatal("same mode interned twice")
	}
	if ModeName(a) != "standby" {
		t.Fatal("ModeName mismatch")
	}
	if ModeName(-1) != "" || ModeName(1<<30) != "" {
		t.Fatal("out-of-range ModeName should be empty")
	}
}

func TestBeforeAfterAdvice(t *testing.T) {
	sys, ui, _ := buildAV(t)
	var trace []string
	sys.Weaver().Weave(Pointcut{Interface: "IAudio"}, Advice{
		Name:   "obs",
		Before: func(c Call) { trace = append(trace, "before:"+c.Method) },
		After:  func(c Call, r Args) { trace = append(trace, "after:"+c.Method) },
	})
	ui.Call("IAudio", "setVolume", Args{"level": 3})
	want := "before:setVolume,after:setVolume"
	if got := strings.Join(trace, ","); got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
	if sys.Weaver().Invocations != 1 {
		t.Fatalf("Invocations = %d", sys.Weaver().Invocations)
	}
}

func TestAroundAdviceCanStubAndMutate(t *testing.T) {
	sys, ui, _ := buildAV(t)
	// Fault injection: corrupt the level argument.
	sys.Weaver().Weave(Pointcut{Method: "setVolume"}, Advice{
		Name: "fault",
		Around: func(c Call, proceed func(Args) Args) Args {
			args := c.Args.Clone()
			args["level"] = 99
			return proceed(args)
		},
	})
	ui.Call("IAudio", "setVolume", Args{"level": 3})
	got := ui.Call("IAudio", "getVolume", nil)
	if got["level"] != 99 {
		t.Fatalf("level = %v, want corrupted 99", got["level"])
	}
	// Stub: skip proceed entirely.
	sys.Weaver().Weave(Pointcut{Method: "getVolume"}, Advice{
		Name: "stub",
		Around: func(c Call, proceed func(Args) Args) Args {
			return Args{"level": -1}
		},
	})
	if got := ui.Call("IAudio", "getVolume", nil); got["level"] != -1 {
		t.Fatalf("stub did not apply: %v", got)
	}
}

func TestAdviceNesting(t *testing.T) {
	sys, ui, _ := buildAV(t)
	var trace []string
	for _, name := range []string{"outer", "inner"} {
		name := name
		sys.Weaver().Weave(Pointcut{}, Advice{
			Name: name,
			Around: func(c Call, proceed func(Args) Args) Args {
				trace = append(trace, name+">")
				r := proceed(c.Args)
				trace = append(trace, "<"+name)
				return r
			},
		})
	}
	ui.Call("IAudio", "getVolume", nil)
	want := "outer>,inner>,<inner,<outer"
	if got := strings.Join(trace, ","); got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
}

func TestUnweave(t *testing.T) {
	sys, ui, _ := buildAV(t)
	n := 0
	sys.Weaver().Weave(Pointcut{}, Advice{Name: "a", Before: func(Call) { n++ }})
	sys.Weaver().Weave(Pointcut{}, Advice{Name: "b", Before: func(Call) { n += 100 }})
	ui.Call("IAudio", "getVolume", nil)
	sys.Weaver().Unweave("b")
	ui.Call("IAudio", "getVolume", nil)
	if n != 102 {
		t.Fatalf("n = %d, want 202 (a twice, b once)", n)
	}
	names := sys.Weaver().AspectNames()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("AspectNames = %v", names)
	}
}

func TestPointcutSelectivity(t *testing.T) {
	sys, ui, _ := buildAV(t)
	hits := map[string]int{}
	weave := func(name string, pc Pointcut) {
		sys.Weaver().Weave(pc, Advice{Name: name, Before: func(Call) { hits[name]++ }})
	}
	weave("any", Pointcut{})
	weave("byCaller", Pointcut{Caller: "ui"})
	weave("byCallee", Pointcut{Callee: "amp"})
	weave("byMethod", Pointcut{Method: "setVolume"})
	weave("miss", Pointcut{Caller: "ghost"})
	ui.Call("IAudio", "setVolume", Args{"level": 1})
	ui.Call("IAudio", "getVolume", nil)
	if hits["any"] != 2 || hits["byCaller"] != 2 || hits["byCallee"] != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits["byMethod"] != 1 {
		t.Fatalf("byMethod = %d, want 1", hits["byMethod"])
	}
	if hits["miss"] != 0 {
		t.Fatalf("miss = %d, want 0", hits["miss"])
	}
}

func TestIntrospection(t *testing.T) {
	_, ui, amp := buildAV(t)
	if got := amp.Provides(); len(got) != 1 || got[0] != "IAudio" {
		t.Fatalf("Provides = %v", got)
	}
	if got := ui.Requires(); len(got) != 1 || got[0] != "IAudio" {
		t.Fatalf("Requires = %v", got)
	}
	if got := ui.BoundTo("IAudio"); got != "amp" {
		t.Fatalf("BoundTo = %q", got)
	}
	if ui.BoundTo("IGhost") != "" || amp.BoundTo("IAudio") != "" {
		t.Fatal("unbound lookups should be empty")
	}
	if len(amp.Provides()) != 1 || len(amp.Requires()) != 0 {
		t.Fatal("amp introspection wrong")
	}
}

func TestCallString(t *testing.T) {
	c := Call{Caller: "ui", Callee: "amp", Interface: "IAudio", Method: "set"}
	if c.String() != "ui->amp.IAudio.set" {
		t.Fatalf("String = %q", c.String())
	}
}

func BenchmarkCallNoAdvice(b *testing.B) {
	k := sim.NewKernel(1)
	sys := NewSystem(k, "s", nil)
	p := sys.AddComponent("p")
	p.Provide("I", Iface{"m": func(a Args) Args { return a }})
	c := sys.AddComponent("c")
	c.Require("I")
	_ = sys.Bind("c", "I", "p")
	args := Args{"x": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Call("I", "m", args)
	}
}

func BenchmarkCallWithObservationAdvice(b *testing.B) {
	k := sim.NewKernel(1)
	sys := NewSystem(k, "s", nil)
	p := sys.AddComponent("p")
	p.Provide("I", Iface{"m": func(a Args) Args { return a }})
	c := sys.AddComponent("c")
	c.Require("I")
	_ = sys.Bind("c", "I", "p")
	sys.Weaver().Weave(Pointcut{}, Advice{Name: "obs", Before: func(Call) {}, After: func(Call, Args) {}})
	args := Args{"x": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Call("I", "m", args)
	}
}
