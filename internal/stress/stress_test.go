package stress

import (
	"testing"

	"trader/internal/sim"
	"trader/internal/soc"
	"trader/internal/tvsim"
)

func TestCPUEaterCausesMisses(t *testing.T) {
	k := sim.NewKernel(1)
	cpu := soc.NewCPU(k, "cpu0")
	app := &soc.Task{Name: "app", Period: 10 * sim.Millisecond, WCET: 6 * sim.Millisecond, Priority: 5}
	cpu.Attach(app)
	k.Run(sim.Second)
	if cpu.Stats().DeadlineMisses != 0 {
		t.Fatal("app should be healthy without stress")
	}
	eater := NewCPUEater(cpu, 0.5, 0) // preempts the app
	eater.Activate()
	eater.Activate() // idempotent
	if !eater.Active() || eater.Fraction() != 0.5 {
		t.Fatal("eater state wrong")
	}
	k.Run(2 * sim.Second)
	if cpu.Stats().DeadlineMisses == 0 {
		t.Fatal("eater should push the app over its deadlines")
	}
	eater.Deactivate()
	eater.Deactivate() // idempotent
	// The backlog built up during stress drains first; then the app is
	// healthy again.
	k.Run(k.Now() + sim.Second)
	base := cpu.Stats().DeadlineMisses
	k.Run(k.Now() + 2*sim.Second)
	if cpu.Stats().DeadlineMisses != base {
		t.Fatal("misses should stop once the eater is off and the backlog drained")
	}
}

func TestCPUEaterFractionValidation(t *testing.T) {
	k := sim.NewKernel(1)
	cpu := soc.NewCPU(k, "cpu0")
	for _, f := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fraction %v should panic", f)
				}
			}()
			NewCPUEater(cpu, f, 0)
		}()
	}
}

func TestBusEater(t *testing.T) {
	k := sim.NewKernel(1)
	bus := soc.NewBus(k, "axi", 1000)
	e := NewBusEater(k, bus, 100, 200*sim.Millisecond, 0)
	e.Activate()
	e.Activate()
	k.Run(sim.Second)
	if bus.Transfers == 0 {
		t.Fatal("bus eater idle")
	}
	e.Deactivate()
	k.Run(k.Now() + sim.Second) // in-flight transfers drain
	n := bus.Transfers
	k.Run(k.Now() + 2*sim.Second)
	if bus.Transfers != n {
		t.Fatal("deactivated eater still transferring")
	}
}

func TestMemEater(t *testing.T) {
	k := sim.NewKernel(1)
	m := soc.NewMemController(k, "ddr", 10, soc.FixedPriority{})
	m.Register(&soc.Requestor{Name: "eater"})
	e := NewMemEater(k, m, "eater", 3, 100)
	e.Activate()
	k.Run(1000)
	e.Deactivate()
	k.Run(1500) // drain the last burst
	if m.Requestor("eater").Served != 30 {
		t.Fatalf("served = %d, want 30 (10 bursts of 3)", m.Requestor("eater").Served)
	}
	served := m.Requestor("eater").Served
	k.Run(3000)
	if m.Requestor("eater").Served != served {
		t.Fatal("deactivated mem eater still requesting")
	}
}

func TestSweepCPUMonotone(t *testing.T) {
	// The stress study's key output: miss rate grows with eaten CPU.
	fractions := []float64{0, 0.2, 0.4, 0.6}
	levels := SweepCPU(fractions, 0,
		func() (*sim.Kernel, *soc.CPU) {
			k := sim.NewKernel(7)
			cpu := soc.NewCPU(k, "cpu0")
			cpu.Attach(&soc.Task{Name: "app", Period: 10 * sim.Millisecond, WCET: 5 * sim.Millisecond, Priority: 5})
			return k, cpu
		},
		func(k *sim.Kernel) { k.Run(2 * sim.Second) },
	)
	if len(levels) != 4 {
		t.Fatalf("levels = %d", len(levels))
	}
	if levels[0].MissRate != 0 {
		t.Fatalf("baseline miss rate = %v, want 0", levels[0].MissRate)
	}
	if levels[3].MissRate <= levels[0].MissRate {
		t.Fatal("miss rate should grow with stress")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].MissRate < levels[i-1].MissRate {
			t.Fatalf("miss rate not monotone: %+v", levels)
		}
	}
}

// E9 shape: the CPU eater on the TV reveals how the fault-tolerant streaming
// behaves under overload (frame quality degrades gracefully rather than the
// whole TV dying).
func TestTVUnderCPUEater(t *testing.T) {
	k := sim.NewKernel(9)
	tv := tvsim.New(k, tvsim.Config{})
	tv.PressKey(tvsim.KeyPower)
	k.Run(sim.Second)
	missesBefore := tv.FrameMisses()
	eater := NewCPUEater(tv.CPUs()[0], 0.6, 0)
	eater.Activate()
	k.Run(3 * sim.Second)
	if tv.FrameMisses() == missesBefore {
		t.Fatal("eater should cause frame misses")
	}
	// The TV keeps running: keys still work under stress.
	tv.PressKey(tvsim.KeyVolUp)
	if tv.Snapshot()["volume"] != 25 {
		t.Fatal("control path should survive stress")
	}
	eater.Deactivate()
}
