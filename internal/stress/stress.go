// Package stress implements the TASS stress-testing approach of Sect. 4.7:
// "artificially takes away shared resources, such as CPU or bus bandwidth,
// to simulate the occurrence of errors or the addition of an additional
// resource user". The CPU eater is the paper's concrete example — "a
// so-called CPU eater, which consumes CPU cycles at the application level in
// software, is already included in the current development software and can
// be activated by system testers".
package stress

import (
	"fmt"

	"trader/internal/sim"
	"trader/internal/soc"
)

// CPUEater consumes a configurable fraction of one CPU at a configurable
// priority. Activate/Deactivate can be toggled at run time, as system
// testers do.
type CPUEater struct {
	cpu      *soc.CPU
	task     *soc.Task
	fraction float64
	active   bool
}

// NewCPUEater builds an eater for the CPU consuming the given utilisation
// fraction (0..1) at the given priority (lower = more aggressive: it
// preempts the application).
func NewCPUEater(cpu *soc.CPU, fraction float64, priority int) *CPUEater {
	if fraction <= 0 || fraction >= 1 {
		panic(fmt.Sprintf("stress: eater fraction %v out of (0,1)", fraction))
	}
	const period = 10 * sim.Millisecond
	return &CPUEater{
		cpu:      cpu,
		fraction: fraction,
		task: &soc.Task{
			Name:     fmt.Sprintf("cpu-eater-%s", cpu.Name),
			Period:   period,
			WCET:     sim.Time(float64(period) * fraction),
			Priority: priority,
		},
	}
}

// Fraction returns the configured utilisation bite.
func (e *CPUEater) Fraction() float64 { return e.fraction }

// Active reports whether the eater is running.
func (e *CPUEater) Active() bool { return e.active }

// Activate attaches the eater task.
func (e *CPUEater) Activate() {
	if e.active {
		return
	}
	e.cpu.Attach(e.task)
	e.active = true
}

// Deactivate detaches the eater task.
func (e *CPUEater) Deactivate() {
	if !e.active {
		return
	}
	e.cpu.Detach(e.task)
	e.active = false
}

// BusEater consumes bus bandwidth with periodic high-priority transfers.
type BusEater struct {
	kernel   *sim.Kernel
	bus      *soc.Bus
	rep      *sim.Repeater
	size     int
	period   sim.Time
	priority int
}

// NewBusEater issues a transfer of size bytes every period at the given
// priority.
func NewBusEater(kernel *sim.Kernel, bus *soc.Bus, size int, period sim.Time, priority int) *BusEater {
	if size <= 0 || period <= 0 {
		panic("stress: bus eater needs positive size and period")
	}
	return &BusEater{kernel: kernel, bus: bus, size: size, period: period, priority: priority}
}

// Activate starts the transfer stream.
func (e *BusEater) Activate() {
	if e.rep != nil {
		return
	}
	e.rep = e.kernel.Every(e.period, func() {
		e.bus.Transfer(e.size, e.priority, nil)
	})
}

// Deactivate stops the stream (in-flight transfers complete).
func (e *BusEater) Deactivate() {
	if e.rep != nil {
		e.rep.Stop()
		e.rep = nil
	}
}

// MemEater floods a memory-controller requestor.
type MemEater struct {
	kernel    *sim.Kernel
	mem       *soc.MemController
	requestor string
	rep       *sim.Repeater
	period    sim.Time
	burst     int
}

// NewMemEater issues burst requests on the named requestor every period.
// The requestor must already be registered.
func NewMemEater(kernel *sim.Kernel, mem *soc.MemController, requestor string, burst int, period sim.Time) *MemEater {
	if burst <= 0 || period <= 0 {
		panic("stress: mem eater needs positive burst and period")
	}
	return &MemEater{kernel: kernel, mem: mem, requestor: requestor, burst: burst, period: period}
}

// Activate starts the request stream.
func (e *MemEater) Activate() {
	if e.rep != nil {
		return
	}
	e.rep = e.kernel.Every(e.period, func() {
		for i := 0; i < e.burst; i++ {
			e.mem.Request(e.requestor, nil)
		}
	})
}

// Deactivate stops the stream.
func (e *MemEater) Deactivate() {
	if e.rep != nil {
		e.rep.Stop()
		e.rep = nil
	}
}

// Level is one stress step in a sweep.
type Level struct {
	// Fraction of CPU taken by the eater.
	Fraction float64
	// Result metrics filled by the sweep.
	DeadlineMisses uint64
	JobsCompleted  uint64
	MissRate       float64
}

// SweepCPU runs fn under increasing CPU-eater pressure on the given CPU and
// reports the miss rate observed at each level. fn receives the level and
// must advance the kernel; the sweep activates the eater before and
// deactivates it after each level. setup creates a fresh system per level
// (stress tests are destructive) and returns the CPU to pressure.
func SweepCPU(fractions []float64, priority int,
	setup func() (*sim.Kernel, *soc.CPU), run func(k *sim.Kernel)) []Level {
	var out []Level
	for _, f := range fractions {
		k, cpu := setup()
		var eater *CPUEater
		if f > 0 {
			eater = NewCPUEater(cpu, f, priority)
			eater.Activate()
		}
		run(k)
		if eater != nil {
			eater.Deactivate()
		}
		st := cpu.Stats()
		lv := Level{Fraction: f, DeadlineMisses: st.DeadlineMisses, JobsCompleted: st.JobsCompleted}
		if st.JobsCompleted > 0 {
			lv.MissRate = float64(st.DeadlineMisses) / float64(st.JobsCompleted)
		}
		out = append(out, lv)
	}
	return out
}
