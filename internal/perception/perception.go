// Package perception models user-perceived failure severity (Sect. 4.6,
// DTI): "the aim is to capture user-perceived failure severity, to get an
// indication of the level of user-irritation caused by a product failure".
// The model encodes the factors the paper's controlled experiments studied —
// product usage, user group, function importance — plus the finding that
// *failure attribution* dominates: "users often turn out to be very tolerant
// concerning bad image quality (which is attributed to external sources),
// but get irritated if the swivel does not work correctly".
//
// The synthetic controlled-experiment harness (Panel) regenerates that
// result: stated importance ranks image quality at the top, while observed
// irritation ranks internally-attributed failures higher (E8).
package perception

import (
	"math"
	"math/rand"
	"sort"

	"trader/internal/sim"
)

// Attribution is where a user believes a failure originates.
type Attribution int

// Attribution values.
const (
	// Internal failures are blamed on the product (a stuck swivel motor).
	Internal Attribution = iota
	// External failures are blamed on the environment (bad image quality
	// from a poor broadcast signal).
	External
)

// String names the attribution.
func (a Attribution) String() string {
	if a == Internal {
		return "internal"
	}
	return "external"
}

// Failure is one product failure as a user experiences it.
type Failure struct {
	// Function is the affected product function ("image-quality",
	// "swivel", "teletext", "audio", ...).
	Function string
	// Severity is the objective magnitude in [0,1].
	Severity float64
	// Duration of the user-visible effect.
	Duration sim.Time
	// Attribution is how a typical user explains the failure.
	Attribution Attribution
}

// User is one panel participant.
type User struct {
	Group string
	// Importance maps function → stated importance in [0,1].
	Importance map[string]float64
	// Usage maps function → usage frequency in [0,1].
	Usage map[string]float64
	// Tolerance scales down irritation (experienced users shrug more).
	Tolerance float64
	// ExternalDiscount multiplies irritation for externally-attributed
	// failures (the paper's attribution effect; < 1).
	ExternalDiscount float64
}

// Irritation returns the user's irritation for one failure in [0,1]:
// objective severity (sub-linear — users saturate), weighted by how much
// they care (importance × usage), discounted when the failure is attributed
// externally, scaled by tolerance, and amplified by exposure duration.
func (u *User) Irritation(f Failure) float64 {
	imp := u.Importance[f.Function]
	use := u.Usage[f.Function]
	if imp == 0 && use == 0 {
		return 0
	}
	care := imp * use
	sev := math.Sqrt(f.Severity)
	att := 1.0
	if f.Attribution == External {
		att = u.ExternalDiscount
	}
	// Duration saturation: a 10s failure irritates nearly as much as 60s.
	dur := 1 - math.Exp(-f.Duration.Seconds()/5)
	irr := care * sev * att * dur / u.Tolerance
	if irr > 1 {
		irr = 1
	}
	return irr
}

// GroupProfile parameterises user generation for one user group.
type GroupProfile struct {
	Name             string
	Tolerance        float64 // mean tolerance
	ExternalDiscount float64
}

// DefaultGroups are the panel groups of the synthetic experiment.
var DefaultGroups = []GroupProfile{
	{Name: "casual", Tolerance: 1.2, ExternalDiscount: 0.3},
	{Name: "enthusiast", Tolerance: 0.8, ExternalDiscount: 0.35},
	{Name: "senior", Tolerance: 1.0, ExternalDiscount: 0.25},
}

// DefaultImportance is the stated function importance used to seed users —
// image quality and swivel both rank high, as the paper reports users say.
var DefaultImportance = map[string]float64{
	"image-quality": 0.95,
	"audio":         0.9,
	"swivel":        0.85,
	"teletext":      0.5,
	"menu":          0.4,
	"sleep":         0.2,
}

// DefaultUsage is how often each function is exercised.
var DefaultUsage = map[string]float64{
	"image-quality": 1.0,
	"audio":         1.0,
	"swivel":        0.6,
	"teletext":      0.4,
	"menu":          0.3,
	"sleep":         0.1,
}

// Panel is a set of synthetic users.
type Panel struct {
	Users []*User
}

// NewPanel generates n users per group with mild deterministic variation.
func NewPanel(seed int64, nPerGroup int, groups []GroupProfile) *Panel {
	rng := rand.New(rand.NewSource(seed))
	p := &Panel{}
	jitter := func(v float64) float64 {
		j := v * (1 + 0.2*(rng.Float64()-0.5))
		if j < 0.01 {
			j = 0.01
		}
		if j > 1 {
			j = 1
		}
		return j
	}
	for _, g := range groups {
		for i := 0; i < nPerGroup; i++ {
			u := &User{
				Group:            g.Name,
				Importance:       map[string]float64{},
				Usage:            map[string]float64{},
				Tolerance:        g.Tolerance * (1 + 0.2*(rng.Float64()-0.5)),
				ExternalDiscount: g.ExternalDiscount * (1 + 0.3*(rng.Float64()-0.5)),
			}
			for fn, v := range DefaultImportance {
				u.Importance[fn] = jitter(v)
			}
			for fn, v := range DefaultUsage {
				u.Usage[fn] = jitter(v)
			}
			p.Users = append(p.Users, u)
		}
	}
	return p
}

// MeanIrritation returns the panel's mean irritation for one failure.
func (p *Panel) MeanIrritation(f Failure) float64 {
	if len(p.Users) == 0 {
		return 0
	}
	var sum float64
	for _, u := range p.Users {
		sum += u.Irritation(f)
	}
	return sum / float64(len(p.Users))
}

// Ranking is an ordered list of (label, score) pairs, highest first.
type Ranking []RankedItem

// RankedItem is one ranking entry.
type RankedItem struct {
	Label string
	Score float64
}

// RankOf returns the 1-based position of label, or 0.
func (r Ranking) RankOf(label string) int {
	for i, it := range r {
		if it.Label == label {
			return i + 1
		}
	}
	return 0
}

// StatedImportanceRanking ranks functions by the panel's mean stated
// importance — what users *say* matters.
func (p *Panel) StatedImportanceRanking() Ranking {
	sums := map[string]float64{}
	for _, u := range p.Users {
		for fn, v := range u.Importance {
			sums[fn] += v
		}
	}
	return toRanking(sums, float64(len(p.Users)))
}

// ObservedIrritationRanking ranks the given failures by the panel's mean
// irritation — what *actually* bothers users under observation.
func (p *Panel) ObservedIrritationRanking(failures []Failure) Ranking {
	sums := map[string]float64{}
	for _, f := range failures {
		sums[f.Function] += p.MeanIrritation(f)
	}
	return toRanking(sums, 1)
}

func toRanking(sums map[string]float64, div float64) Ranking {
	var r Ranking
	for label, s := range sums {
		r = append(r, RankedItem{Label: label, Score: s / div})
	}
	sort.SliceStable(r, func(i, j int) bool {
		if r[i].Score != r[j].Score {
			return r[i].Score > r[j].Score
		}
		return r[i].Label < r[j].Label
	})
	return r
}
