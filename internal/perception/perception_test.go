package perception

import (
	"testing"
	"testing/quick"

	"trader/internal/sim"
)

func defaultUser() *User {
	return &User{
		Group:            "casual",
		Importance:       DefaultImportance,
		Usage:            DefaultUsage,
		Tolerance:        1.0,
		ExternalDiscount: 0.3,
	}
}

func TestIrritationBasics(t *testing.T) {
	u := defaultUser()
	f := Failure{Function: "audio", Severity: 0.8, Duration: 10 * sim.Second, Attribution: Internal}
	irr := u.Irritation(f)
	if irr <= 0 || irr > 1 {
		t.Fatalf("irritation = %v, out of (0,1]", irr)
	}
	// Unknown function: no irritation.
	none := u.Irritation(Failure{Function: "ghost", Severity: 1, Duration: sim.Second})
	if none != 0 {
		t.Fatalf("unknown function irritation = %v", none)
	}
}

func TestAttributionEffect(t *testing.T) {
	u := defaultUser()
	internal := Failure{Function: "audio", Severity: 0.5, Duration: 10 * sim.Second, Attribution: Internal}
	external := internal
	external.Attribution = External
	if u.Irritation(external) >= u.Irritation(internal) {
		t.Fatal("external attribution must discount irritation")
	}
}

func TestSeverityAndDurationMonotone(t *testing.T) {
	u := defaultUser()
	base := Failure{Function: "audio", Severity: 0.3, Duration: 5 * sim.Second, Attribution: Internal}
	worse := base
	worse.Severity = 0.9
	if u.Irritation(worse) <= u.Irritation(base) {
		t.Fatal("higher severity must irritate more")
	}
	longer := base
	longer.Duration = 60 * sim.Second
	if u.Irritation(longer) <= u.Irritation(base) {
		t.Fatal("longer exposure must irritate more")
	}
}

func TestToleranceReducesIrritation(t *testing.T) {
	a, b := defaultUser(), defaultUser()
	b.Tolerance = 2.0
	f := Failure{Function: "audio", Severity: 0.5, Duration: 10 * sim.Second, Attribution: Internal}
	if b.Irritation(f) >= a.Irritation(f) {
		t.Fatal("tolerance must reduce irritation")
	}
}

// Property: irritation is always in [0,1] for any inputs.
func TestPropertyIrritationBounded(t *testing.T) {
	f := func(sev, tol, disc float64, durMs uint32, external bool) bool {
		sev = clamp01(abs(sev))
		u := defaultUser()
		u.Tolerance = 0.1 + clamp01(abs(tol))
		u.ExternalDiscount = clamp01(abs(disc))
		att := Internal
		if external {
			att = External
		}
		fail := Failure{
			Function: "audio", Severity: sev,
			Duration: sim.Time(durMs) * sim.Millisecond, Attribution: att,
		}
		irr := u.Irritation(fail)
		return irr >= 0 && irr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func clamp01(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestPanelGeneration(t *testing.T) {
	p := NewPanel(1, 10, DefaultGroups)
	if len(p.Users) != 30 {
		t.Fatalf("users = %d, want 30", len(p.Users))
	}
	groups := map[string]int{}
	for _, u := range p.Users {
		groups[u.Group]++
		if u.Tolerance <= 0 || u.ExternalDiscount <= 0 || u.ExternalDiscount > 1 {
			t.Fatalf("user out of range: %+v", u)
		}
	}
	if groups["casual"] != 10 || groups["enthusiast"] != 10 || groups["senior"] != 10 {
		t.Fatalf("groups = %v", groups)
	}
	// Determinism.
	p2 := NewPanel(1, 10, DefaultGroups)
	if p2.Users[5].Tolerance != p.Users[5].Tolerance {
		t.Fatal("panel generation not deterministic")
	}
}

// TestPaperFindingAttributionFlip reproduces the Sect. 4.6 result: users
// *say* image quality matters more than the swivel, but under observation an
// equally severe swivel failure (attributed to the product) irritates more
// than bad image quality (attributed to the broadcast).
func TestPaperFindingAttributionFlip(t *testing.T) {
	panel := NewPanel(42, 50, DefaultGroups)

	stated := panel.StatedImportanceRanking()
	if stated.RankOf("image-quality") >= stated.RankOf("swivel") {
		t.Fatalf("stated ranking should put image-quality above swivel: %v", stated)
	}

	failures := []Failure{
		{Function: "image-quality", Severity: 0.6, Duration: 30 * sim.Second, Attribution: External},
		{Function: "swivel", Severity: 0.6, Duration: 30 * sim.Second, Attribution: Internal},
		{Function: "teletext", Severity: 0.6, Duration: 30 * sim.Second, Attribution: Internal},
	}
	observed := panel.ObservedIrritationRanking(failures)
	if observed.RankOf("swivel") >= observed.RankOf("image-quality") {
		t.Fatalf("observed ranking should flip: %v", observed)
	}

	// Ablation: without the attribution term (discount = 1), the flip
	// disappears — importance dominates again.
	for _, u := range panel.Users {
		u.ExternalDiscount = 1.0
	}
	flat := panel.ObservedIrritationRanking(failures)
	if flat.RankOf("image-quality") >= flat.RankOf("swivel") {
		t.Fatalf("without attribution, image-quality should lead: %v", flat)
	}
}

func TestMeanIrritationEmptyPanel(t *testing.T) {
	p := &Panel{}
	if p.MeanIrritation(Failure{Function: "audio", Severity: 1}) != 0 {
		t.Fatal("empty panel should be indifferent")
	}
}

func TestRankingHelpers(t *testing.T) {
	r := Ranking{{Label: "a", Score: 3}, {Label: "b", Score: 1}}
	if r.RankOf("a") != 1 || r.RankOf("b") != 2 || r.RankOf("x") != 0 {
		t.Fatal("RankOf wrong")
	}
	if Internal.String() != "internal" || External.String() != "external" {
		t.Fatal("attribution names")
	}
}
