package fleet

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

// startOverloadServer is startServer with the pool shape under the test's
// control — overload tests pin queue pressure, so they need to know the
// exact shard count and queue capacity.
func startOverloadServer(t *testing.T, opts Options, mutate func(*Server)) (*Server, string) {
	t.Helper()
	pool := NewPool(opts)
	t.Cleanup(pool.Stop)
	srv := &Server{Pool: pool, Factory: LightMonitorFactory(), Logf: t.Logf}
	if mutate != nil {
		mutate(srv)
	}
	addr := "unix:" + filepath.Join(t.TempDir(), "overload.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); ln.Close() })
	go srv.Serve(ln)
	return srv, addr
}

// blockShard parks shard idx's goroutine on a gate and then queues fillers
// no-op commands, pinning Pressure at exactly fillers/Queue until the
// returned release is called: nothing dequeues while the gate is closed,
// and the tests enqueue nothing that would change the length. This is how
// the shed tiers are tested deterministically instead of racing a flood
// against the scheduler.
func blockShard(t *testing.T, p *Pool, idx, fillers int) (release func()) {
	t.Helper()
	started := make(chan struct{})
	gate := make(chan struct{})
	if err := p.send(idx, func(*shard) { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < fillers; i++ {
		if err := p.send(idx, func(*shard) {}); err != nil {
			t.Fatal(err)
		}
	}
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	return release
}

// shedCounts reads the live shard shed counters without a pool barrier —
// Rollup would park behind the very gate the overload tests hold shut.
func shedCounts(p *Pool) (obs, hb uint64) {
	for _, s := range p.shards {
		obs += s.shedObs.Load()
		hb += s.shedHB.Load()
	}
	return obs, hb
}

// A hostile peer that keeps sending observations after its credit window
// is exhausted (no replenishment can arrive: the shard is pressured, so
// the server grants nothing) must be disconnected with an error frame, and
// the violation counted.
func TestCreditViolationDisconnectsHostileClient(t *testing.T) {
	srv, addr := startOverloadServer(t, Options{Shards: 1, Queue: 8}, func(s *Server) {
		s.CreditWindow = 8
		s.ShedObservationsAt = 0.5
	})
	wc, _, credits, err := wire.DialFlow(addr, "hostile", wire.CodecBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if credits != 8 {
		t.Fatalf("granted window = %d, want 8", credits)
	}
	eventually(t, "registration", func() bool { return srv.Pool.Size() == 1 })

	// Pressure 4/8 = 0.5: at or above the shed threshold, so every
	// observation is refused (still spending its credit) and at or above
	// replenishPressure, so no grant ever tops the window back up.
	release := blockShard(t, srv.Pool, 0, 4)

	// Frames 1..8 burn the window; frame 9 is the violation.
	for i := 0; i < 9; i++ {
		if err := wc.SendEvent("hostile", outEvent(0, 10)); err != nil {
			t.Fatal(err)
		}
	}
	msg, err := wc.Decode()
	if err != nil {
		t.Fatalf("want an error frame before the close, got %v", err)
	}
	if msg.Type != wire.TypeError || msg.Error == nil || !strings.Contains(msg.Error.Detail, "credit window violated") {
		t.Fatalf("want a credit-violation error frame, got %+v", msg)
	}
	if v := srv.Stats().CreditViolations; v != 1 {
		t.Fatalf("CreditViolations = %d, want 1", v)
	}

	// Teardown (and the conn close) is itself parked behind the blocked
	// shard; once released, the violator's connection must die.
	release()
	if _, err := wc.Decode(); err == nil {
		t.Fatal("connection should be closed after the violation")
	}
	eventually(t, "violator removed", func() bool { return srv.Pool.Size() == 0 })
	ro := srv.Pool.Rollup()
	if ro.ShedObservations != 8 || ro.ShedHeartbeats != 0 || ro.ShedControl != 0 {
		t.Fatalf("sheds = %d/%d/%d (obs/hb/ctl), want 8/0/0", ro.ShedObservations, ro.ShedHeartbeats, ro.ShedControl)
	}
}

// The tier ordering under pressure: between the two thresholds only
// observations shed while heartbeats (and control pushes) survive; above
// the heartbeat threshold the heartbeat is refused too — no echo — while a
// control push still goes through. Control is never shed.
func TestShedTierOrderingUnderPressure(t *testing.T) {
	srv, addr := startOverloadServer(t, Options{Shards: 1, Queue: 10}, func(s *Server) {
		s.ShedObservationsAt = 0.5
		s.ShedHeartbeatsAt = 0.9
	})
	wc, err := wire.Dial(addr, "tiered", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eventually(t, "registration", func() bool { return srv.Pool.Size() == 1 })

	// Tier 1 band: pressure 5/10 = 0.5 — observations shed, heartbeats not.
	release := blockShard(t, srv.Pool, 0, 5)
	for i := 0; i < 3; i++ {
		if err := wc.SendEvent("tiered", outEvent(0, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "tiered", At: sim.Second}); err != nil {
		t.Fatal(err)
	}
	// The heartbeat's flush barrier is parked behind the gate, so its echo
	// cannot have been written yet — but a control push (tier 3) bypasses
	// the shard queue entirely and must arrive even now.
	eventually(t, "observations shed", func() bool { obs, _ := shedCounts(srv.Pool); return obs == 3 })
	if err := srv.Control("tiered", wire.CtrlReset); err != nil {
		t.Fatal(err)
	}
	msg, err := wc.Decode()
	if err != nil || msg.Type != wire.TypeControl || msg.Control != wire.CtrlReset {
		t.Fatalf("control under pressure: %+v, %v — control must never shed", msg, err)
	}
	release()
	msg, err = wc.Decode()
	if err != nil || msg.Type != wire.TypeHeartbeat || msg.At != sim.Second {
		t.Fatalf("heartbeat echo at tier-1 pressure: %+v, %v — only observations shed in this band", msg, err)
	}
	if ro := srv.Pool.Rollup(); ro.ShedObservations != 3 || ro.ShedHeartbeats != 0 {
		t.Fatalf("sheds after tier-1 band = %d/%d (obs/hb), want 3/0", ro.ShedObservations, ro.ShedHeartbeats)
	}

	// Tier 2 band: pressure 9/10 = 0.9 — the heartbeat itself is refused:
	// no clock advance, no echo. The silence is the backpressure.
	release2 := blockShard(t, srv.Pool, 0, 9)
	if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "tiered", At: 2 * sim.Second}); err != nil {
		t.Fatal(err)
	}
	if err := wc.SendEvent("tiered", outEvent(0, 2100)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "heartbeat shed", func() bool {
		obs, hb := shedCounts(srv.Pool)
		return hb == 1 && obs == 4
	})
	release2()

	// Pressure is gone: the next heartbeat echoes, and the first frame the
	// client sees is its echo — the 2s heartbeat was refused, not delayed.
	if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "tiered", At: 3 * sim.Second}); err != nil {
		t.Fatal(err)
	}
	msg, err = wc.Decode()
	if err != nil || msg.Type != wire.TypeHeartbeat || msg.At != 3*sim.Second {
		t.Fatalf("post-pressure heartbeat echo: %+v, %v (an echo of the shed 2s heartbeat would be a false promise)", msg, err)
	}
	if ro := srv.Pool.Rollup(); ro.ShedControl != 0 {
		t.Fatalf("ShedControl = %d, control traffic is never shed", ro.ShedControl)
	}
}

// A compliant client that blocks on an exhausted window and heartbeats for
// replenishment streams arbitrarily many frames through a small window:
// grants (mid-stream deltas and echo top-ups) keep both balances in step,
// so the violation path never fires.
func TestCreditCompliantClientStreamsThroughReplenishment(t *testing.T) {
	srv, addr := startOverloadServer(t, Options{Shards: 1}, func(s *Server) {
		s.CreditWindow = 4
	})
	wc, _, credits, err := wire.DialFlow(addr, "steady", wire.CodecBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if credits != 4 {
		t.Fatalf("granted window = %d, want 4", credits)
	}
	eventually(t, "registration", func() bool { return srv.Pool.Size() == 1 })

	// drain solicits replenishment: heartbeat, then read until its echo,
	// crediting every grant frame passed on the way (exactly what a real
	// client's receive loop does — see cmd/tvsim).
	at := int64(0)
	drain := func() {
		at += 10
		hb := sim.Time(at) * sim.Millisecond
		if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "steady", At: hb}); err != nil {
			t.Fatal(err)
		}
		for {
			msg, err := wc.Decode()
			if err != nil {
				t.Fatalf("disconnected while draining for credits: %v", err)
			}
			if msg.Type == wire.TypeCredit || msg.Type == wire.TypeHeartbeat {
				credits += msg.Credits
			}
			if msg.Type == wire.TypeHeartbeat && msg.At == hb {
				return
			}
		}
	}
	const total = 50
	for sent := 0; sent < total; {
		if credits == 0 {
			drain()
			continue
		}
		at += 10
		if err := wc.SendEvent("steady", outEvent(0, at)); err != nil {
			t.Fatal(err)
		}
		credits--
		sent++
	}
	drain() // final barrier: all frames monitored

	st := srv.Stats()
	if st.Frames != total || st.CreditViolations != 0 {
		t.Fatalf("frames = %d violations = %d, want %d and 0", st.Frames, st.CreditViolations, total)
	}
	if st.CreditGrants == 0 {
		t.Fatal("a 50-frame stream through a 4-frame window needs mid-stream grants, saw none")
	}
	ro := srv.Pool.Rollup()
	if ro.Dispatched != total || ro.ShedObservations != 0 {
		t.Fatalf("dispatched = %d sheds = %d, want %d and 0", ro.Dispatched, ro.ShedObservations, total)
	}
	if lat := srv.Pool.Latency(); lat.Count() != total {
		t.Fatalf("latency samples = %d, want one per dispatched frame (%d)", lat.Count(), total)
	}
}

// Credit replenishment writes (mid-stream grants, echo top-ups) share the
// connection with teardown. A grant racing Server.Disconnect must error
// out cleanly, never write into a closed connection or trip the race
// detector — this is the flow-control twin of
// TestControlPushRacesDisconnect, run under -race in the standard gate.
func TestCreditReplenishRacesDisconnect(t *testing.T) {
	srv, addr := startOverloadServer(t, Options{Shards: 1}, func(s *Server) {
		s.CreditWindow = 2
	})
	for i := 0; i < 8; i++ {
		id := "racer"
		wc, _, _, err := wire.DialFlow(addr, id, wire.CodecBinary, "")
		if err != nil {
			t.Fatal(err)
		}
		eventually(t, "registration", func() bool { return srv.Pool.Size() == 1 })
		// Reader drains grants and echoes so the server's writes never
		// stall on the socket buffer.
		go func() {
			for {
				if _, err := wc.Decode(); err != nil {
					return
				}
			}
		}()
		// Writer keeps the grant path hot: with a 2-frame window every
		// other observation triggers a mid-stream grant, and each
		// heartbeat a top-up, so Disconnect always races a credit write.
		done := make(chan struct{})
		go func() {
			defer close(done)
			at := int64(0)
			for {
				at += 10
				if err := wc.SendEvent(id, outEvent(0, at)); err != nil {
					return
				}
				at += 10
				hb := wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: sim.Time(at) * sim.Millisecond}
				if err := wc.Encode(hb); err != nil {
					return
				}
			}
		}()
		time.Sleep(time.Duration(i) * time.Millisecond)
		_ = srv.Disconnect(id)
		wc.Close()
		<-done
		eventually(t, "device removed", func() bool { return srv.Pool.Size() == 0 })
	}
}

// Concurrent ingestion across all 8 shards: every DispatchAt records
// exactly one latency sample into its shard's histogram, the per-shard
// histograms sum to the fleet aggregate, and the quantiles stay ordered —
// under concurrency, not just in the single-threaded metrics tests.
func TestLatencyHistogramConcurrentAcrossShards(t *testing.T) {
	const shards, workers, perWorker = 8, 8, 500
	pool := NewPool(Options{Shards: shards})
	defer pool.Stop()
	ids := make([]string, workers)
	for i := range ids {
		ids[i] = "suo-" + string(rune('a'+i))
		if err := pool.AddDevice(ids[i], 1, LightFactory(0)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := pool.DispatchAt(id, outEvent(0, int64(10+i)), time.Now()); err != nil {
					t.Error(err)
					return
				}
			}
		}(ids[w])
	}
	wg.Wait()
	if err := pool.Sync(); err != nil {
		t.Fatal(err)
	}

	const total = workers * perWorker
	agg := pool.Latency()
	if agg.Count() != total {
		t.Fatalf("aggregate latency samples = %d, want %d", agg.Count(), total)
	}
	var byShard uint64
	for i := 0; i < shards; i++ {
		sl := pool.ShardLatency(i)
		byShard += sl.Count()
	}
	if byShard != total {
		t.Fatalf("per-shard latency samples sum to %d, want %d", byShard, total)
	}
	p50, p99, p999 := agg.Quantile(0.50), agg.Quantile(0.99), agg.Quantile(0.999)
	if p50 <= 0 || p50 > p99 || p99 > p999 || p999 > agg.Max() {
		t.Fatalf("quantiles disordered: p50=%s p99=%s p999=%s max=%s", p50, p99, p999, agg.Max())
	}
	if ro := pool.Rollup(); ro.Dispatched != total {
		t.Fatalf("dispatched = %d, want %d", ro.Dispatched, total)
	}
}

// Shed markers keep the journal's story equal to the live pool's: frames
// refused under pressure are never journaled, but their aggregated marker
// is — flushed write-ahead of the next heartbeat and at teardown — so a
// replayed pool reports the same shed counters the live one did.
func TestShedMarkersJournaledAndReplayed(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Create(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startOverloadServer(t, Options{Shards: 1, Queue: 8}, func(s *Server) {
		s.Journal = w
		s.ShedObservationsAt = 0.5
	})
	wc, err := wire.Dial(addr, "shedder", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eventually(t, "registration", func() bool { return srv.Pool.Size() == 1 })

	// Three observations refused at pressure 0.5: the journal sees none of
	// them, and the shed counters move only when the marker lands — on the
	// journal-backed path the pending record waits for the next flush.
	release := blockShard(t, srv.Pool, 0, 4)
	for i := 0; i < 3; i++ {
		if err := wc.SendEvent("shedder", outEvent(0, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "shedder", At: sim.Second}); err != nil {
		t.Fatal(err)
	}
	// The marker lands write-ahead of the heartbeat record, and its counters
	// move with it — observable before the (still gated) flush barrier.
	eventually(t, "marker flush", func() bool { obs, _ := shedCounts(srv.Pool); return obs == 3 })
	release()
	if msg, err := wc.Decode(); err != nil || msg.Type != wire.TypeHeartbeat {
		t.Fatalf("heartbeat echo: %+v, %v", msg, err)
	}

	// Two admitted frames and their barrier, then one more shed that never
	// sees a heartbeat: the teardown flush must write its marker.
	for _, at := range []int64{1010, 1020} {
		if err := wc.SendEvent("shedder", outEvent(0, at)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "shedder", At: 2 * sim.Second}); err != nil {
		t.Fatal(err)
	}
	if msg, err := wc.Decode(); err != nil || msg.Type != wire.TypeHeartbeat {
		t.Fatalf("second heartbeat echo: %+v, %v", msg, err)
	}
	release2 := blockShard(t, srv.Pool, 0, 4)
	if err := wc.SendEvent("shedder", outEvent(0, 2010)); err != nil {
		t.Fatal(err)
	}
	// The close lands after the shed in stream order, and the deferred
	// marker flush runs before the (still gated) device cleanup — so the
	// teardown marker's counters are observable before the gate opens.
	wc.Close()
	eventually(t, "teardown marker flush", func() bool { obs, _ := shedCounts(srv.Pool); return obs == 4 })
	release2()
	eventually(t, "disconnect", func() bool { return srv.Stats().Disconnected == 1 })

	live := srv.Pool.Rollup()
	if live.ShedObservations != 4 || live.Dispatched != 2 {
		t.Fatalf("live rollup sheds=%d dispatched=%d, want 4 and 2", live.ShedObservations, live.Dispatched)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	pool2 := NewPool(Options{Shards: 1})
	defer pool2.Stop()
	st, err := pool2.Replay(r, LightMonitorFactory())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sheds != 2 || st.Frames != 2 || st.Heartbeats != 2 {
		t.Fatalf("replay = %s, want 2 shed markers, 2 frames, 2 heartbeats", st)
	}
	replayed := pool2.Rollup()
	if replayed.ShedObservations != live.ShedObservations ||
		replayed.ShedHeartbeats != live.ShedHeartbeats ||
		replayed.Dispatched != live.Dispatched {
		t.Fatalf("replayed rollup %+v diverges from live %+v", replayed, live)
	}
}
