package fleet

import (
	"errors"
	"fmt"
	"io"

	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

// This file is the recovery half of the journal integration: remote.go
// records every accepted frame write-ahead (Server.Journal); here a pool is
// rebuilt from that record. Replay is the paper's observe-record-replay
// loop closed: the monitor's verdicts survive the crash it observed.

// ReplayStats summarises one journal replay.
type ReplayStats struct {
	Frames      int // observation frames re-dispatched
	Heartbeats  int // heartbeat records re-applied as clock advances
	Actions     int // recovery-action records re-applied (controller decisions)
	Evidence    int // labeled diagnosis-evidence records (snapshot frames)
	Checkpoints int // checkpoint records restored (all planes)
	Sheds       int // shed-marker records re-applied to the shard counters
	Handoffs    int // handoff records re-applied (departures, arrivals, adopted baselines)
	Devices     int // devices rebuilt through the factory
	Skipped     int // records with nothing to replay (no ID, no event, foreign type)
}

func (st ReplayStats) String() string {
	return fmt.Sprintf("%d frames + %d heartbeats + %d recovery actions + %d evidence + %d checkpoint + %d shed + %d handoff records into %d devices (%d skipped)",
		st.Frames, st.Heartbeats, st.Actions, st.Evidence, st.Checkpoints, st.Sheds, st.Handoffs, st.Devices, st.Skipped)
}

// Replay rebuilds fleet state from a journal written by Server.Journal: the
// first record naming a device builds it through factory — with SeedOf(id),
// exactly as live registration would — and every record then re-applies in
// journal order: observations re-dispatch through the same shard routing,
// heartbeats re-advance the device's virtual clock (re-firing silence
// sweeps and comparison windows). Replay returns after a pool barrier, so
// the rebuilt state is fully settled: Rollup on the result equals Rollup on
// a pool that ingested the same frames live.
//
// Replay invariants: records re-apply in journal order, which preserves
// each device's own frame order (the only order monitoring depends on —
// devices are independent); a device exists in the replayed pool iff the
// journal holds at least one of its frames; and a device's full journaled
// history replays as one continuous monitored lifetime — live
// disconnect/reconnect boundaries, which reset pool state, are not
// re-created. Devices already present in the pool (e.g. a second replay
// into the same pool) are reused, not rebuilt.
//
// Replay into a pool not yet serving traffic; it dispatches without
// external synchronisation.
func (p *Pool) Replay(r *journal.Reader, factory MonitorFactory) (ReplayStats, error) {
	var st ReplayStats
	discard := func(wire.Message) error { return nil }
	seen := make(map[string]bool)
	for {
		m, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		id := m.SUO
		switch m.Type {
		case wire.TypeInput, wire.TypeOutput, wire.TypeState, wire.TypeHeartbeat, wire.TypeControl:
			// replayable — fall through to device lookup. A TypeControl
			// record is a recovery action the controller journaled
			// write-ahead (see internal/control), so replay reconstructs
			// what the controller *did*, not just what it saw.
		case wire.TypeSnapshot, wire.TypeSpectrumDelta:
			// Labeled diagnosis evidence the engine journaled write-ahead of
			// folding it — pulled snapshots and continuous heartbeat deltas
			// alike. It carries no monitor state — diagnose.Replay
			// reconstructs the fleet ranking from these records — so the
			// pool replay only counts it.
			st.Evidence++
			continue
		case wire.TypeShed:
			// A shed marker: the server refused these frames under queue
			// pressure, so there is nothing to re-dispatch — only the shard
			// shed counters to restore, keeping the replayed rollup balanced
			// against the live one. No device is built: shed counts are
			// shard-level, and any admitted frame for the ID builds it.
			if id == "" || m.Shed == nil {
				st.Skipped++
				continue
			}
			p.AddShed(id, *m.Shed)
			st.Sheds++
			continue
		case wire.TypeHandoff:
			// A federation migration record (ARCHITECTURE.md §7.3/§7.4),
			// journaled write-ahead on both sides of a device's move so
			// replay reconstructs ownership exactly:
			//   - departure (Out=true): the device left this edge; remove it
			//     and let any later record rebuild it from scratch.
			//   - arrival (Out=false, device checkpoint): the device joined
			//     this edge mid-history; build it and assign the handed-over
			//     state absolutely, like a PlaneDevice checkpoint.
			//   - adopted baseline (no SUO, PlaneFleet checkpoint): a dead
			//     peer's pool counters absorbed during failover.
			if m.Handoff == nil {
				st.Skipped++
				continue
			}
			switch {
			case id != "" && m.Handoff.Out:
				if _, err := p.RemoveDevice(id); err != nil {
					return st, err
				}
				delete(seen, id)
				st.Handoffs++
			case id != "" && m.Checkpoint != nil:
				if err := p.RestoreHandoff(id, m.Checkpoint, factory); err != nil {
					return st, err
				}
				if !seen[id] {
					st.Devices++
					seen[id] = true
				}
				st.Handoffs++
			case id == "" && m.Checkpoint != nil && m.Checkpoint.Plane == wire.PlaneFleet && m.Handoff.From != "":
				p.AdoptBaseline(m.Handoff.From, m.Checkpoint.Counters)
				st.Handoffs++
			default:
				// Aggregator range repoints and other ownership metadata:
				// nothing to rebuild in a pool.
				st.Skipped++
			}
			continue
		case wire.TypeCheckpoint:
			if m.Checkpoint == nil {
				st.Skipped++
				continue
			}
			switch m.Checkpoint.Plane {
			case wire.PlaneDevice:
				// A device snapshot: build the device if the checkpoint is
				// the first record naming it (the usual case — the records
				// that built it live in the truncated prefix), then assign
				// its state absolutely.
				if id == "" {
					st.Skipped++
					continue
				}
				if !seen[id] {
					err := p.AddRemoteDevice(id, factory, discard)
					switch {
					case err == nil:
						st.Devices++
					case errors.Is(err, ErrDuplicateDevice):
					default:
						return st, fmt.Errorf("fleet: replay device %q: %w", id, err)
					}
					seen[id] = true
				}
				if err := p.RestoreDeviceCheckpoint(id, m.Checkpoint); err != nil {
					return st, err
				}
			case wire.PlaneShard:
				p.RestoreShardBaseline(m.Checkpoint)
			default:
				// Control- and diagnosis-plane snapshots are restored by
				// their own planes' Recover passes; the pool only counts
				// them.
			}
			st.Checkpoints++
			continue
		default:
			st.Skipped++ // meta records (e.g. traderd's profile marker)
			continue
		}
		if id == "" {
			st.Skipped++
			continue
		}
		if !seen[id] {
			// No connection exists to push error reports down; the reports
			// still fan into the pool handlers and counters, and
			// AttachDevice re-points the sink on reconnect.
			err := p.AddRemoteDevice(id, factory, discard)
			switch {
			case err == nil:
				st.Devices++
			case errors.Is(err, ErrDuplicateDevice):
				// already present — reuse it
			default:
				return st, fmt.Errorf("fleet: replay device %q: %w", id, err)
			}
			seen[id] = true
		}
		switch m.Type {
		case wire.TypeInput, wire.TypeOutput, wire.TypeState:
			if m.Event == nil {
				st.Skipped++
				continue
			}
			if err := p.Dispatch(id, *m.Event); err != nil {
				return st, err
			}
			st.Frames++
		case wire.TypeHeartbeat:
			if err := p.AdvanceDevice(id, m.At); err != nil {
				return st, err
			}
			st.Heartbeats++
		case wire.TypeControl:
			// Re-apply the action's pool-side effect at its journal
			// position: quarantine takes the device back out of service;
			// every other rung (tolerate, reset, restart) re-armed the
			// comparator when it ran live, so it re-arms here too.
			switch m.Control {
			case wire.CtrlQuarantine:
				if _, err := p.QuarantineDevice(id); err != nil {
					return st, err
				}
			default:
				if _, err := p.ResetDevice(id); err != nil {
					return st, err
				}
			}
			st.Actions++
		}
	}
	if err := p.Sync(); err != nil {
		return st, err
	}
	return st, nil
}

// AddRemoteDevice registers a connection-backed device: the factory's
// kernel and monitor wrapped by RemoteDevice with the given sink, seeded by
// SeedOf(id). It is the single registration path shared by live ingestion
// (Server) and journal replay, so the two cannot diverge.
func (p *Pool) AddRemoteDevice(id string, factory MonitorFactory, send func(wire.Message) error) error {
	return p.AddDevice(id, SeedOf(id), func(id string, seed int64) (*Device, error) {
		k, mon, err := factory(id, seed)
		if err != nil {
			return nil, err
		}
		return RemoteDevice(id, k, mon, send), nil
	})
}

// AttachDevice re-points a device's monitor→SUO traffic (error pushes) at a
// new sink, reporting whether the device exists and supports attachment
// (i.e. was built by RemoteDevice) along with the device's current virtual
// time. The ingestion server uses it to adopt a journal-recovered device
// when its client reconnects, instead of rejecting the ID as a duplicate
// and losing the recovered monitor state; the returned time re-anchors the
// connection's advance window so the client can resume with timestamps at
// or beyond its last acknowledged heartbeat.
func (p *Pool) AttachDevice(id string, send func(wire.Message) error) (sim.Time, bool, error) {
	type result struct {
		at sim.Time
		ok bool
	}
	res := make(chan result, 1)
	if err := p.send(p.ShardOf(id), func(s *shard) {
		d := s.devices[id]
		if d == nil || d.Attach == nil {
			res <- result{}
			return
		}
		d.Attach(send)
		res <- result{at: d.Kernel.Now(), ok: true}
	}); err != nil {
		return 0, false, err
	}
	r := <-res
	return r.at, r.ok, nil
}
