package fleet_test

import (
	"testing"

	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

// TestShardRoutingParityWithJournal pins the invariant the sharded journal
// layout rests on: journal.ShardOf and Pool.ShardOf agree for every ID and
// shard count, so a device's records land in the stream owned by the shard
// that runs its monitor.
func TestShardRoutingParityWithJournal(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7, 8, 16} {
		p := fleet.NewPool(fleet.Options{Shards: shards})
		for i := 0; i < 500; i++ {
			id := fleet.DeviceID(i)
			if got, want := journal.ShardOf(id, shards), p.ShardOf(id); got != want {
				t.Fatalf("shards=%d id=%q: journal.ShardOf=%d, pool.ShardOf=%d", shards, id, got, want)
			}
		}
		for _, id := range []string{"", "a", "tv-SN-0x99", "€-unicode-id"} {
			if got, want := journal.ShardOf(id, shards), p.ShardOf(id); got != want {
				t.Fatalf("shards=%d id=%q: journal.ShardOf=%d, pool.ShardOf=%d", shards, id, got, want)
			}
		}
		p.Stop()
	}
}

// outEvent is an observation of the light monitor's "x" observable.
func outEvent(id string, v float64, at sim.Time) event.Event {
	return event.Event{Kind: event.Output, Name: "out", Source: id, At: at}.With("x", v)
}

// driveCheckpointFleet loads a remote-device pool with deterministic
// traffic: every device gets a command and a matching echo, device 0's
// echoes drift (deviations → error reports), device 1 is quarantined. All
// clocks end at a CompareEvery multiple so capture instants align with the
// comparison grid.
func driveCheckpointFleet(t *testing.T, p *fleet.Pool, ids []string) {
	t.Helper()
	discard := func(wire.Message) error { return nil }
	for _, id := range ids {
		if err := p.AddRemoteDevice(id, fleet.LightMonitorFactory(), discard); err != nil {
			t.Fatal(err)
		}
	}
	for round := 1; round <= 4; round++ {
		at := sim.Time(round) * 10 * sim.Millisecond
		for i, id := range ids {
			set := event.Event{Kind: event.Input, Name: "set", Source: id, At: at - sim.Millisecond}.With("x", float64(round))
			if err := p.Dispatch(id, set); err != nil {
				t.Fatal(err)
			}
			echo := float64(round)
			if i == 0 {
				echo += 2 // a drifting device: every echo deviates
			}
			if err := p.Dispatch(id, outEvent(id, echo, at)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range ids {
		if err := p.AdvanceDevice(id, 50*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.QuarantineDevice(ids[1]); err != nil {
		t.Fatal(err)
	}
	// One dispatch into the quarantined device so the drop counter moves.
	if err := p.Dispatch(ids[1], outEvent(ids[1], 1, 50*sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestCaptureRestoreCheckpointRoundTrip drives a fleet, captures it, and
// restores the batches into a fresh pool: the restored rollup must equal
// the original exactly — monitor counters, traffic counters, quarantine.
func TestCaptureRestoreCheckpointRoundTrip(t *testing.T) {
	const shards = 3
	ids := []string{fleet.DeviceID(0), fleet.DeviceID(1), fleet.DeviceID(2), fleet.DeviceID(3), fleet.DeviceID(4)}
	a := fleet.NewPool(fleet.Options{Shards: shards})
	defer a.Stop()
	driveCheckpointFleet(t, a, ids)
	want := a.Rollup()
	if want.Reports == 0 {
		t.Fatal("drive produced no error reports; the round trip would not exercise report baselines")
	}
	if want.Quarantined == 0 {
		t.Fatal("drive produced no quarantined drops")
	}

	batches, err := a.CaptureCheckpoint("light", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != shards {
		t.Fatalf("got %d batches, want %d", len(batches), shards)
	}
	b := fleet.NewPool(fleet.Options{Shards: shards})
	defer b.Stop()
	discard := func(wire.Message) error { return nil }
	var devices, finals int
	for i, batch := range batches {
		if len(batch) == 0 {
			t.Fatalf("shard %d: empty batch", i)
		}
		last := batch[len(batch)-1]
		if cp := last.Checkpoint; cp == nil || !cp.Final || cp.Plane != wire.PlaneShard || cp.Profile != "light" || cp.Seq != 7 {
			t.Fatalf("shard %d: batch does not end in a Final shard record: %+v", i, last.Checkpoint)
		}
		for _, m := range batch {
			cp := m.Checkpoint
			if m.Type != wire.TypeCheckpoint || cp == nil {
				t.Fatalf("shard %d: non-checkpoint record in batch", i)
			}
			if cp.Shard != i {
				t.Fatalf("shard %d: record claims shard %d", i, cp.Shard)
			}
			switch cp.Plane {
			case wire.PlaneDevice:
				if b.ShardOf(m.SUO) != i {
					t.Fatalf("device %q captured on shard %d, routes to %d", m.SUO, i, b.ShardOf(m.SUO))
				}
				if err := b.AddRemoteDevice(m.SUO, fleet.LightMonitorFactory(), discard); err != nil {
					t.Fatal(err)
				}
				if err := b.RestoreDeviceCheckpoint(m.SUO, cp); err != nil {
					t.Fatal(err)
				}
				devices++
			case wire.PlaneShard:
				b.RestoreShardBaseline(cp)
				finals++
			}
		}
	}
	if devices != len(ids) || finals != shards {
		t.Fatalf("restored %d devices and %d shard records, want %d and %d", devices, finals, len(ids), shards)
	}
	got := b.Rollup()
	if got != want {
		t.Fatalf("restored rollup diverges:\n got  %+v\n want %+v", got, want)
	}
	if q, err := b.Quarantined(ids[1]); err != nil || !q {
		t.Fatalf("quarantine flag lost in restore (q=%v err=%v)", q, err)
	}

	// The restored pool must CONTINUE identically, not just report the same
	// totals: one more aligned round through both pools stays in lock-step
	// (pending comparison timers re-anchor on the same grid).
	for _, p := range []*fleet.Pool{a, b} {
		for _, id := range ids {
			if err := p.Dispatch(id, outEvent(id, 99, 55*sim.Millisecond)); err != nil {
				t.Fatal(err)
			}
			if err := p.AdvanceDevice(id, 70*sim.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	ga, gb := a.Rollup(), b.Rollup()
	if ga != gb {
		t.Fatalf("post-restore traffic diverges:\n live     %+v\n restored %+v", ga, gb)
	}
	if ga.Monitor.Deviations == want.Monitor.Deviations {
		t.Fatal("post-restore round produced no new deviations; lock-step check is vacuous")
	}
}

// TestRestoreShardBaselineOverwrites pins re-restore semantics: a later
// checkpoint's baseline replaces the earlier one (assignment, not sum).
func TestRestoreShardBaselineOverwrites(t *testing.T) {
	p := fleet.NewPool(fleet.Options{Shards: 2})
	defer p.Stop()
	mk := func(n uint64) *wire.Checkpoint {
		return &wire.Checkpoint{Plane: wire.PlaneShard, Shard: 1, Final: true, Counters: []wire.CheckpointCounter{
			{Name: "dispatched", V: n}, {Name: "reports", V: n},
		}}
	}
	p.RestoreShardBaseline(mk(100))
	p.RestoreShardBaseline(mk(7))
	if got := p.Rollup(); got.Dispatched != 7 || got.Reports != 7 {
		t.Fatalf("baselines accumulated instead of overwriting: %+v", got)
	}
}
