package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/trace"
	"trader/internal/wire"
)

// This file is the networked half of the fleet: where device.go builds
// devices whose SUO is simulated in-process, here the SUO is a remote
// process on the other end of a socket (paper Fig. 2, multiplied by the
// fleet). A Server accepts many concurrent SUO connections, performs the
// wire Hello handshake (negotiating the JSON or binary codec per
// connection), registers each connection as a device in the sharded Pool,
// routes decoded observation frames through the same FNV shard dispatch as
// local traffic, and pushes control and error frames back down the
// connection. A disconnect — clean or not — removes the device and frees
// its shard slot while the rest of the fleet keeps streaming.

// MonitorFactory builds the monitor-side state for one remote SUO: a fresh
// virtual clock and a monitor executing the specification model the device
// is judged against. It runs on the owning shard's goroutine. The returned
// monitor must already be started.
type MonitorFactory func(id string, seed int64) (*sim.Kernel, *core.Monitor, error)

// LightMonitorFactory is the remote counterpart of LightFactory: the same
// one-state spec model tracking the commanded level "x", with no simulated
// SUO attached — the real SUO is on the other end of the connection. Cheap
// enough that one daemon hosts very large fleets.
func LightMonitorFactory() MonitorFactory {
	return func(id string, seed int64) (*sim.Kernel, *core.Monitor, error) {
		k := sim.NewKernel(seed)
		mon, err := lightMonitor(id, k)
		if err != nil {
			return nil, nil, err
		}
		return k, mon, nil
	}
}

// RemoteDevice builds a connection-backed Device: events fed to it advance
// the device's virtual clock to the event timestamp (firing model timers,
// silence sweeps and time-based comparison exactly as in-process monitoring
// would) and are routed into the monitor's observers. Error reports the
// monitor raises are pushed down the connection as TypeError frames,
// best-effort: a broken error channel must not stop detection. send is
// called from shard goroutines and must be safe for concurrent use
// (wire.Encoder is).
func RemoteDevice(id string, k *sim.Kernel, mon *core.Monitor, send func(wire.Message) error) *Device {
	// The sink is swappable: a device rebuilt by journal replay starts with
	// a discarding sender and is re-pointed at the live connection when its
	// client reconnects (Pool.AttachDevice).
	var sendMu sync.Mutex
	cur := send
	mon.OnError(func(r wire.ErrorReport) {
		sendMu.Lock()
		send := cur
		sendMu.Unlock()
		_ = send(wire.Message{Type: wire.TypeError, SUO: id, Error: &r, At: r.At})
	})
	d := &Device{ID: id, Kernel: k, Monitor: mon, Close: mon.Stop}
	d.Attach = func(s func(wire.Message) error) {
		sendMu.Lock()
		cur = s
		sendMu.Unlock()
	}
	d.Feed = func(e event.Event) {
		if e.At > k.Now() {
			k.Run(e.At)
		}
		switch e.Kind {
		case event.Input:
			mon.HandleInput(e)
		case event.Output, event.State:
			mon.HandleOutput(e)
		}
	}
	return d
}

// ServerStats counts connection lifecycle events. All fields are cumulative.
type ServerStats struct {
	Accepted     uint64 // connections that completed the Hello handshake
	Rejected     uint64 // connections dropped before registration (bad hello, duplicate ID, ...)
	Disconnected uint64 // registered devices whose connection ended (clean or not)
	Frames       uint64 // observation frames dispatched into the pool
	// CreditViolations counts connections disconnected for streaming past
	// an exhausted credit window — hostile or badly broken peers; a
	// compliant client can never trip it (the server's balance is always
	// at least the client's).
	CreditViolations uint64
	// CreditGrants counts mid-stream TypeCredit replenishment frames sent
	// (heartbeat-echo grants are not counted — every echo is one).
	CreditGrants uint64
}

// Server turns a Pool into a network ingestion daemon. Configure the
// exported fields before calling Serve; they must not change afterwards.
type Server struct {
	// Pool receives one device per accepted connection. Required.
	Pool *Pool
	// Factory builds each remote device's monitor-side state. Required.
	Factory MonitorFactory
	// HelloTimeout bounds how long a new connection may take to complete
	// the handshake before it is dropped (0: no limit). Connected devices
	// are never timed out for read silence — silence detection is the
	// monitor's job (Observable.MaxSilence), not the transport's.
	HelloTimeout time.Duration
	// WriteTimeout bounds every frame written to a client (default 10s).
	// Error and control pushes run on shard goroutines; a client that
	// stops reading until its socket buffer fills must stall only itself,
	// so a timed-out write closes that connection.
	WriteTimeout time.Duration
	// MaxAdvance bounds how far a single frame — an observation's event
	// time or a heartbeat's At — may move its device's virtual clock
	// forward (default DefaultMaxAdvance). Virtual time is client-supplied
	// and advancing a clock replays every periodic monitor timer (silence
	// sweeps, comparison windows, ~10ms period) along the way, so an
	// unbounded advance — one hostile or buggy frame carrying At =
	// MaxInt64 — would wedge the device's whole shard stepping timers
	// through years of virtual time. A frame further than MaxAdvance ahead
	// of the device's clock is a protocol violation: the connection is
	// closed and the device removed, like any other malformed traffic.
	MaxAdvance sim.Time
	// OnAck, when non-nil, receives every TypeAck frame a device sends back
	// after honoring a control command, tagged with the handshaken device ID
	// (not the spoofable SUO field). The recovery controller hooks here to
	// learn that its pushes were actuated. It runs on the connection's read
	// goroutine and must not block.
	OnAck func(id string, m wire.Message)
	// OnSnapshot, when non-nil, receives every TypeSnapshot frame a device
	// sends — its coverage evidence answering a RequestSnapshot pull —
	// tagged with the handshaken device ID. The fleet diagnosis plane
	// (internal/diagnose) hooks here. Like OnAck it runs on the
	// connection's read goroutine and must not block; snapshot frames are
	// not journaled by the server — the diagnosis engine journals the
	// evidence it accepts, labeled, write-ahead of folding it.
	OnSnapshot func(id string, m wire.Message)
	// OnSpectrumDelta, when non-nil, receives every TypeSpectrumDelta frame
	// a device sends — the continuous coverage window it piggybacks on its
	// heartbeat cadence — tagged with the handshaken device ID. The
	// continuous diagnosis plane hooks here. Like OnSnapshot it runs on the
	// connection's read goroutine and must not block; delta frames are not
	// journaled by the server — the diagnosis engine journals the deltas it
	// accepts, labeled, write-ahead of folding them. Deltas shed with the
	// observations tier (ShedObservationsAt): one lost delta costs the
	// diagnosis plane a coverage window, never control.
	OnSpectrumDelta func(id string, m wire.Message)
	// Journal, when non-nil, receives every accepted frame — observations
	// and heartbeats, after validation and the MaxAdvance vetting — tagged
	// with the registered device ID and the frame's virtual time.
	// Appends are write-ahead: a frame reaches the pool (and a heartbeat is
	// echoed) only after its journal record is durable, so a journal-backed
	// pool can be rebuilt losslessly after a crash (Pool.Replay) and a
	// heartbeat echo now also acknowledges durability. A failed append
	// closes the connection — frames that cannot be made durable are not
	// ingested. Journaling also changes disconnect semantics: the device
	// stays in the pool (with its error sink detached) instead of being
	// removed, matching the continuous per-device lifetime its journal
	// records, and the next connection for the ID adopts it.
	// *journal.Writer implements this interface.
	Journal FrameJournal
	// GrantDurability, when non-nil, vets each connection's requested ack
	// class (hello.Durability, already normalised) and returns the class to
	// grant — e.g. fsync for critical device classes, dispatch for the long
	// tail. Nil grants whatever the client asked for. A granted dispatch
	// class only changes behaviour when Journal implements TieredJournal;
	// otherwise every accepted frame is synced as before.
	GrantDurability func(hello wire.Message) wire.Durability
	// CreditWindow, when positive, enables credit-based flow control: the
	// Hello reply grants each connection this many frame credits, every
	// observation frame consumes one, and the server replenishes consumed
	// credits with delta grants — always on the heartbeat echo, and
	// mid-stream (a TypeCredit frame) once the window is half spent while
	// the device's shard queue is shallow. Under pressure no mid-stream
	// grant is sent, so a compliant flooder degrades into heartbeat-paced
	// request/response instead of swamping the shard; a peer that streams
	// past an exhausted window is disconnected with an error frame. All
	// accounting runs on the connection's read goroutine — grants are
	// deltas, not absolute resets, so in-flight frames cannot desynchronise
	// the two sides (server balance ≥ client balance, always). Zero
	// disables flow control: no credits are granted and none are checked.
	CreditWindow int
	// ShedObservationsAt and ShedHeartbeatsAt, when positive, enable the
	// load-shedding tiers: a frame arriving while the fill fraction of its
	// device's shard queue is at or above the threshold is dropped before
	// dispatch, counted in the pool's Stats and journaled as an aggregated
	// shed-marker record (so replay stays exact without the refused
	// frames). Observations shed first — one lost sample costs the monitor
	// little — so ShedObservationsAt is the lower threshold (0.75 and 0.95
	// are the traderd defaults); a shed heartbeat skips advance, flush and
	// echo, pausing a compliant client entirely, and is reserved for
	// near-saturation. Control, ack and snapshot traffic — the recovery and
	// diagnosis planes — is never shed: it is the traffic that gets a
	// degraded fleet healthy again, and it bypasses the dispatch queue's
	// pressure anyway. Zero disables the tier.
	ShedObservationsAt float64
	ShedHeartbeatsAt   float64
	// Tracer, when non-nil, enables the frame-lifecycle tracing plane
	// (§6.2): one in Tracer's SampleN observation frames is traced from
	// decode through monitor step (give the Pool the same tracer so the
	// dispatch side records its half), every control push is traced forced
	// and carries its context on the wire, and a device's ack — echoing
	// that context back — closes the exchange as a forced ack span.
	Tracer *trace.Tracer
	// Logf, when non-nil, receives connection lifecycle log lines.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	conns   map[string]*remoteConn // registered devices, by ID
	pending map[net.Conn]struct{}  // accepted, not yet registered
	closed  bool

	accepted         atomic.Uint64
	rejected         atomic.Uint64
	disconnected     atomic.Uint64
	frames           atomic.Uint64
	creditViolations atomic.Uint64
	creditGrants     atomic.Uint64
}

// replenishPressure gates mid-stream credit grants: below this shard-queue
// fill fraction the server tops a half-spent window back up without waiting
// for the next heartbeat; at or above it the client must earn replenishment
// through a heartbeat (whose flush barrier drains its own backlog first).
const replenishPressure = 0.5

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("fleet: server closed")

// FrameJournal is the server's durable frame sink. Append must be safe for
// concurrent use (connections journal from their own goroutines) and must
// not retain the message. journal.Writer is the production implementation.
type FrameJournal interface {
	Append(wire.Message) error
}

// TieredJournal is the journal surface tiered durability and checkpointing
// need on top of FrameJournal: AppendThen accepts a record without waiting
// for its fsync when sync is false (the ack-on-dispatch class), and runs
// then() under the record's stream lock — the server enqueues the frame's
// pool effect there, so a checkpoint freezing the stream observes either
// both the record and its effect or neither, never a truncated record whose
// effect is missing from the snapshot. Both *journal.Writer and
// *journal.Sharded implement it.
type TieredJournal interface {
	FrameJournal
	AppendThen(m wire.Message, sync bool, then func()) error
}

// DefaultMaxAdvance is the per-frame virtual-time advance window when
// Server.MaxAdvance is zero: generous next to real heartbeat cadences
// (seconds), but small enough that replaying the window's periodic monitor
// timers stays a bounded, sub-second amount of shard work.
const DefaultMaxAdvance = 300 * sim.Second

// remoteConn is one client connection with deadline-guarded writes. Writes
// happen from shard goroutines (error pushes) and the connection's handler
// (echoes, control), so every send arms a fresh write deadline first; a
// send that fails poisons the connection, which unwinds the read loop and
// removes the device.
type remoteConn struct {
	nc      net.Conn
	wc      *wire.Conn
	timeout time.Duration
	// ready flips once the Hello reply is on the wire and the negotiated
	// codec is in effect. The connection is visible in Server.conns from
	// reservation — before the reply — so cross-goroutine pushes (Control,
	// Close's CtrlStop) must check ready first: a frame written ahead of
	// the Hello reply, or between the reply and the codec switch, would
	// corrupt the client's handshake.
	ready atomic.Bool
	// closed latches once the connection is being torn down — by a failed
	// send, the read loop unwinding, Disconnect, or Close. Sends racing the
	// teardown (controller pushes, Close's CtrlStop broadcast) then fail
	// fast with net.ErrClosed instead of arming write deadlines on, and
	// writing into, a socket another goroutine is closing.
	closed atomic.Bool
}

func (c *remoteConn) send(m wire.Message) error {
	if c.closed.Load() {
		return fmt.Errorf("fleet: send: %w", net.ErrClosed)
	}
	_ = c.nc.SetWriteDeadline(time.Now().Add(c.timeout))
	err := c.wc.Encode(m)
	if err != nil {
		// A stalled or broken peer must not stall a shard twice.
		c.closed.Store(true)
		_ = c.nc.Close()
	}
	return err
}

// Stats snapshots the connection counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Accepted:         s.accepted.Load(),
		Rejected:         s.rejected.Load(),
		Disconnected:     s.disconnected.Load(),
		Frames:           s.frames.Load(),
		CreditViolations: s.creditViolations.Load(),
		CreditGrants:     s.creditGrants.Load(),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts SUO connections on ln until ln fails or Close is called,
// handling each connection on its own goroutine. Multiple Serve calls (one
// per listener — e.g. a Unix socket and a TCP port) may run concurrently
// against the same Server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.conns == nil {
		s.conns = make(map[string]*remoteConn)
		s.pending = make(map[net.Conn]struct{})
	}
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrServerClosed
	}
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			// A transient failure under load (EMFILE, ECONNABORTED) must
			// not take down the daemon and every connected device: back
			// off and retry, net/http style. Only persistent listener
			// failures end Serve.
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				s.logf("fleet: accept: %v; retrying in %v", err, backoff)
				time.Sleep(backoff)
				continue
			}
			return fmt.Errorf("fleet: accept: %w", err)
		}
		backoff = 0
		go s.handle(conn)
	}
}

// Close stops accepting registrations and closes every connection; in-flight
// handlers then unwind, removing their devices from the pool. The listeners
// passed to Serve are the caller's to close (Serve returns once they are).
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]*remoteConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	pending := make([]net.Conn, 0, len(s.pending))
	for c := range s.pending {
		pending = append(pending, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		// Best-effort stop: tell the SUO the monitor is going away.
		// Mid-handshake connections just get closed — their client is
		// still expecting the Hello reply, not a control frame.
		if c.ready.Load() {
			_ = c.send(wire.Message{Type: wire.TypeControl, Control: wire.CtrlStop})
		}
		c.closed.Store(true)
		_ = c.nc.Close()
	}
	for _, c := range pending {
		_ = c.Close()
	}
}

// Control pushes a control command down one registered device's connection.
// With a Tracer attached the push is traced forced — never sampled away —
// and the frame carries the trace context, so the device's ack echoes it
// back and the round trip closes as control span → ack span.
func (s *Server) Control(id string, cmd wire.ControlCommand) error {
	s.mu.Lock()
	c := s.conns[id]
	s.mu.Unlock()
	if c == nil || !c.ready.Load() {
		return fmt.Errorf("fleet: no connected device %q", id)
	}
	m := wire.Message{Type: wire.TypeControl, SUO: id, Control: cmd}
	if s.Tracer != nil {
		// The control span marks the push instant (the ack span carries the
		// round trip's duration); its child context rides the wire so the
		// ack parents under it.
		ctx := s.Tracer.Span(s.Tracer.Force(), trace.KindControl, -1, id, time.Now(), 0, true)
		m.Trace = ctx.Wire()
	}
	return c.send(m)
}

// RequestSnapshot asks one registered device for its coverage spectrum: a
// TypeSnapshotReq push down the device's connection. The device answers
// with a TypeSnapshot frame, delivered through OnSnapshot. Like any control
// push, delivery is not guaranteed — the diagnosis plane tolerates devices
// that never answer.
func (s *Server) RequestSnapshot(id string) error {
	s.mu.Lock()
	c := s.conns[id]
	s.mu.Unlock()
	if c == nil || !c.ready.Load() {
		return fmt.Errorf("fleet: no connected device %q", id)
	}
	return c.send(wire.Message{Type: wire.TypeSnapshotReq, SUO: id})
}

// Disconnect closes one registered device's connection — the quarantine
// escalation's final act. The connection's read loop unwinds exactly as for
// a client-initiated disconnect: the device is removed from the pool (or, in
// journal mode, kept with its error sink detached).
func (s *Server) Disconnect(id string) error {
	s.mu.Lock()
	c := s.conns[id]
	s.mu.Unlock()
	if c == nil {
		return fmt.Errorf("fleet: no connected device %q", id)
	}
	c.closed.Store(true)
	return c.nc.Close()
}

// SeedOf derives a deterministic per-device seed from the device ID, so a
// reconnecting device gets the same monitor behaviour each time — and so a
// journal replay (which sees only device IDs) rebuilds each monitor with
// exactly the seed the live server gave it.
func SeedOf(id string) int64 {
	h := fnv.New64a()
	io.WriteString(h, id)
	return int64(h.Sum64()&(1<<63-1)) + 1
}

// reserve claims the device ID for rc, or explains why not (server
// draining, ID already connected). It runs before the Hello reply is sent,
// so a refusal reaches the client as the handshake reply. release undoes
// the claim.
func (s *Server) reserve(id string, rc *remoteConn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	if _, dup := s.conns[id]; dup {
		return fmt.Errorf("fleet: device %q already connected", id)
	}
	s.conns[id] = rc
	return nil
}

func (s *Server) release(id string) {
	s.mu.Lock()
	delete(s.conns, id)
	s.mu.Unlock()
}

// handle owns one connection: handshake, registration, then the read loop.
// Any protocol violation — garbage bytes, an oversized frame, an unknown
// codec construct — ends this connection and removes this device only; the
// daemon and every other connection keep running.
func (s *Server) handle(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.pending[conn] = struct{}{}
	s.mu.Unlock()
	unpend := func() {
		s.mu.Lock()
		delete(s.pending, conn)
		s.mu.Unlock()
	}

	wc := wire.NewConn(conn)
	timeout := s.WriteTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	rc := &remoteConn{nc: conn, wc: wc, timeout: timeout}
	if s.HelloTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.HelloTimeout))
	}
	hello, err := wc.ReadHello()
	if err != nil {
		unpend()
		s.rejected.Add(1)
		s.logf("fleet: %s: handshake failed: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	id := hello.SUO

	// Vet the registration BEFORE replying: a refused client must see the
	// rejection as its handshake reply (a TypeError frame, still JSON —
	// no codec switch has happened), so its Dial fails synchronously
	// instead of reporting success for a connection the server is about
	// to drop.
	reject := func(detail string) {
		unpend()
		s.rejected.Add(1)
		_ = conn.SetWriteDeadline(time.Now().Add(rc.timeout))
		_ = wc.RejectHello(id, detail)
		s.logf("fleet: %s: rejected %q: %s", conn.RemoteAddr(), id, detail)
		conn.Close()
	}
	if id == "" {
		reject("hello frame carries no SUO device ID")
		return
	}
	if err := s.reserve(id, rc); err != nil {
		reject(err.Error())
		return
	}
	// Durability negotiation: normalise the request (unknown classes vet
	// back to fsync), let the operator's policy override it, and echo the
	// granted class in the Hello reply so the client knows what a heartbeat
	// echo will mean on this connection.
	granted, _ := wire.DurabilityByName(string(hello.Durability))
	if s.GrantDurability != nil {
		hello.Durability = granted
		granted, _ = wire.DurabilityByName(string(s.GrantDurability(hello)))
	}
	hello.Durability = granted
	tiered, _ := s.Journal.(TieredJournal)
	relaxed := granted == wire.DurDispatch && tiered != nil
	// Flow-control negotiation: the window is the server's to grant, never
	// the client's to request, so whatever the client put in the field is
	// overwritten before the reply echoes it.
	window := s.CreditWindow
	if window < 0 {
		window = 0
	}
	hello.Credits = uint32(window)
	_ = conn.SetWriteDeadline(time.Now().Add(rc.timeout))
	codec, err := wc.ReplyHello(hello)
	if err != nil {
		s.release(id)
		unpend()
		s.rejected.Add(1)
		s.logf("fleet: %s: hello reply to %q failed: %v", conn.RemoteAddr(), id, err)
		conn.Close()
		return
	}
	rc.ready.Store(true)

	// Pool admission can still fail after the reply (factory error, pool
	// stopping) — a server-side condition the client learns about through
	// a post-handshake error frame and a close.
	adopted := false
	var resumeAt sim.Time
	err = s.Pool.AddRemoteDevice(id, s.Factory, rc.send)
	if errors.Is(err, ErrDuplicateDevice) {
		// The pool holds this ID but no connection does (a genuine duplicate
		// connection was refused at reserve, before the Hello reply): the
		// device was rebuilt by journal recovery and its monitor state —
		// clocks, counters, fault history — must survive the reconnect.
		// Adopt it: point its error pushes at this connection and resume.
		var ok bool
		if resumeAt, ok, err = s.Pool.AttachDevice(id, rc.send); err == nil && !ok {
			err = fmt.Errorf("fleet: device %q exists but cannot be adopted", id)
		}
		adopted = err == nil
	}
	unpend()
	if err != nil {
		s.release(id)
		s.rejected.Add(1)
		rep := wire.ErrorReport{Detector: "ingest", Detail: err.Error()}
		_ = rc.send(wire.Message{Type: wire.TypeError, SUO: id, Error: &rep})
		s.logf("fleet: %s: rejected %q: %v", conn.RemoteAddr(), id, err)
		conn.Close()
		return
	}
	cleanup := func() {
		if s.Journal != nil {
			// A journal-backed fleet keeps the device across disconnects:
			// its history is durable and a later boot would rebuild it via
			// replay anyway, so removing it live would only make the live
			// pool diverge from its own journal (and re-anchor a resuming
			// client's advance window at zero, refusing any resume beyond
			// MaxAdvance). Detach the error sink; the next connection for
			// this ID adopts the device and resumes its timeline.
			_, _, _ = s.Pool.AttachDevice(id, func(wire.Message) error { return nil })
			s.release(id)
			s.disconnected.Add(1)
			return
		}
		// Shard first, conns map second: RemoveDevice blocks until the
		// shard has dropped the device, so once the ID is reservable
		// again an immediate reconnect's AddDevice cannot collide with
		// the stale entry (§2.4 allows instant reconnects).
		_, _ = s.Pool.RemoveDevice(id)
		s.release(id)
		s.disconnected.Add(1)
	}
	s.accepted.Add(1)
	how := "connected"
	if adopted {
		how = "reconnected to recovered device"
	}
	s.logf("fleet: %s: device %q %s (codec %s, durability %s), fleet size %d",
		conn.RemoteAddr(), id, how, codec.Name(), granted, s.Pool.Size())
	maxAdv := s.MaxAdvance
	if maxAdv <= 0 {
		maxAdv = DefaultMaxAdvance
	}
	// clock shadows the device's virtual time as driven by this connection
	// — the only source of time for a remote device — so client-supplied
	// timestamps are vetted here, before they reach the shard. advance
	// reports whether at is within the MaxAdvance window; a frame beyond
	// it is a protocol violation that ends the connection (see
	// Server.MaxAdvance for why unbounded advances are dangerous). An
	// adopted connection anchors the window at the recovered device's
	// virtual time, not zero: the client resumes with timestamps at or
	// beyond its last acknowledged heartbeat, which on a fleet older than
	// MaxAdvance would otherwise read as a runaway jump and get the
	// reconnect refused forever.
	clock := resumeAt
	advance := func(at sim.Time) bool {
		// at-clock, not clock+maxAdv: the sum overflows when an operator
		// sets a huge window to effectively disable the bound. clock only
		// ever holds an accepted at > clock ≥ 0, so the difference is safe.
		if at > clock && at-clock > maxAdv {
			rep := wire.ErrorReport{Detector: "ingest", At: clock, Detail: fmt.Sprintf(
				"frame time %s is beyond the %s advance window (device clock %s)", at, maxAdv, clock)}
			_ = rc.send(wire.Message{Type: wire.TypeError, SUO: id, Error: &rep, At: clock})
			s.logf("fleet: device %q: %s", id, rep.Detail)
			return false
		}
		if at > clock {
			clock = at
		}
		return true
	}

	// Flow-control state, all owned by this read goroutine: credits is the
	// server-side balance of the connection's window. The client decrements
	// its copy when it sends, the server when it receives, and every grant
	// is a delta — so server balance − client balance always equals the
	// frames and grants in flight, a non-negative number, and only a peer
	// that ignores an exhausted window can drive the server below zero.
	credits := window
	// pendingShed accumulates this connection's shed frames until the next
	// marker flush (heartbeat or teardown); one aggregated journal record
	// per window keeps shedding from writing the journal it is shedding to
	// protect.
	var pendingShed wire.ShedRecord
	// flushShed journals the pending marker and moves the pool's shed
	// counters inside the journal's stream lock (AppendThen), so a
	// checkpoint freezing the stream captures the marker and its counters
	// together or not at all — never one without the other. Journal-less
	// servers count sheds immediately and never come here with a pending
	// record.
	flushShed := func() bool {
		if s.Journal == nil || pendingShed == (wire.ShedRecord{}) {
			return true
		}
		rec := pendingShed
		pendingShed = wire.ShedRecord{}
		count := func() { s.Pool.AddShed(id, rec) }
		jm := wire.Message{Type: wire.TypeShed, SUO: id, At: clock, Shed: &rec}
		var err error
		if tiered != nil {
			err = tiered.AppendThen(jm, !relaxed, count)
		} else if err = s.Journal.Append(jm); err == nil {
			count()
		}
		if err != nil {
			s.logf("fleet: device %q: journal: %v", id, err)
			return false
		}
		return true
	}

	defer func() {
		// Latch closed before teardown so a controller push racing the
		// unwind fails fast instead of writing into the dying socket. The
		// final shed marker is flushed while the device is still attached.
		rc.closed.Store(true)
		_ = flushShed()
		cleanup()
		conn.Close()
		s.logf("fleet: device %q disconnected, fleet size %d", id, s.Pool.Size())
	}()

	// A quarantined device's reconnect must not resurrect its service: the
	// recovery controller retired it, and the CtrlQuarantine push that told
	// it so can be lost when quarantine races the device's own restart
	// re-handshake (the client is between connections). Re-deliver the
	// verdict as the first frame of the new connection and end it — the
	// quarantine flag on the adopted device is the durable truth.
	if adopted {
		if q, err := s.Pool.Quarantined(id); err == nil && q {
			s.logf("fleet: device %q reconnected while quarantined; refusing service", id)
			_ = rc.send(wire.Message{Type: wire.TypeControl, SUO: id, Control: wire.CtrlQuarantine})
			return
		}
	}

	for {
		msg, err := wc.Decode()
		if err == io.EOF {
			return
		}
		if err != nil {
			s.logf("fleet: device %q: %v", id, err)
			return
		}
		// ingest is the frame's decode instant, the start of the interval
		// the latency SLO is stated over (DispatchAt records its end).
		ingest := time.Now()
		switch msg.Type {
		case wire.TypeInput, wire.TypeOutput, wire.TypeState:
			if msg.Event == nil {
				continue
			}
			// The ingest sampling gate (§6.2): one in SampleN admitted
			// observations opens a trace here; everything below threads tctx
			// through unconditionally because a dead context makes every
			// tracer call a no-op.
			tctx := s.Tracer.Sample()
			if window > 0 {
				if credits == 0 {
					// Only a peer ignoring its exhausted window gets here: a
					// compliant client blocks and heartbeats for
					// replenishment instead. Disconnect, like any other
					// protocol violation.
					rep := wire.ErrorReport{Detector: "ingest", At: clock, Detail: fmt.Sprintf(
						"credit window violated: observation sent with the %d-frame window exhausted", window)}
					_ = rc.send(wire.Message{Type: wire.TypeError, SUO: id, Error: &rep, At: clock})
					s.creditViolations.Add(1)
					s.logf("fleet: device %q: %s", id, rep.Detail)
					return
				}
				credits--
			}
			pressure := -1.0
			if window > 0 || s.ShedObservationsAt > 0 {
				pressure = s.Pool.Pressure(id)
			}
			if s.ShedObservationsAt > 0 && pressure >= s.ShedObservationsAt {
				// Shed tier 1: under queue pressure observations drop first —
				// one lost sample costs a monitor a comparison, not its
				// state. The frame is refused before the journal and the
				// pool ever see it; the credit it spent stays spent, and no
				// mid-stream grant follows under pressure, so a flooder
				// exhausts its window and degrades into heartbeat pacing.
				if s.Journal != nil {
					pendingShed.Observations++
				} else {
					s.Pool.AddShed(id, wire.ShedRecord{Observations: 1})
				}
				if tctx.Live() {
					// A sampled-then-shed frame still leaves a span: the shed
					// decision is exactly the kind of tail-latency explanation
					// exemplars exist to surface.
					s.Tracer.Span(tctx, trace.KindShed, s.Pool.ShardOf(id), id, ingest, time.Since(ingest), false)
				}
				continue
			}
			if !advance(msg.Event.At) {
				return
			}
			if tctx.Live() {
				// The ingest span closes at admission: decode, credit and
				// shed vetting are behind the frame, the journal and shard
				// are ahead. It is the chain's root — the exemplar a /metrics
				// scrape surfaces resolves back to it.
				tctx = s.Tracer.Span(tctx, trace.KindIngest, s.Pool.ShardOf(id), id, ingest, time.Since(ingest), false)
			}
			// Write-ahead: the frame must be in the journal before the pool
			// sees it, tagged with the handshaken ID (not the spoofable SUO
			// field) so replay routes it exactly as live dispatch did. On a
			// tiered journal the dispatch is enqueued under the stream lock
			// (see TieredJournal) and a dispatch-class connection does not
			// wait for the fsync; on a plain journal the append is durable
			// before the dispatch, as before.
			var dispatchErr error
			dispatch := func() { dispatchErr = s.Pool.DispatchTraced(id, *msg.Event, ingest, tctx) }
			if s.Journal != nil {
				jm := wire.Message{Type: msg.Type, SUO: id, Event: msg.Event, At: msg.Event.At}
				var jstart time.Time
				if tctx.Live() {
					jstart = time.Now()
				}
				var err error
				if tiered != nil {
					err = tiered.AppendThen(jm, !relaxed, dispatch)
				} else {
					if err = s.Journal.Append(jm); err == nil {
						dispatch()
					}
				}
				if err != nil {
					s.logf("fleet: device %q: journal: %v", id, err)
					return
				}
				if tctx.Live() {
					// The journal span covers the append and this frame's
					// share of the fsync batch (a dispatch-class connection's
					// append returns without waiting, and its short span says
					// so). Parented on ingest, as a sibling of the dispatch
					// span the shard records — the dispatch was enqueued
					// under the stream lock, before the fsync resolved.
					s.Tracer.Span(tctx, trace.KindJournal, s.Pool.ShardOf(id), id, jstart, time.Since(jstart), false)
				}
			} else {
				// The connection's device is fixed at registration: frames
				// route by the handshaken ID, not a spoofable per-frame field.
				dispatch()
			}
			if dispatchErr != nil {
				return // pool stopped — nothing left to ingest into
			}
			s.frames.Add(1)
			if window > 0 && credits <= window/2 && pressure < replenishPressure {
				// Mid-stream replenishment: the window is half spent and the
				// shard is keeping up, so top it back up without forcing the
				// client to stall into its next heartbeat. The grant is the
				// delta consumed, never an absolute reset (see CreditWindow).
				g := uint32(window - credits)
				if rc.send(wire.Message{Type: wire.TypeCredit, SUO: id, Credits: g}) != nil {
					return
				}
				s.creditGrants.Add(1)
				credits = window
				if tctx.Live() {
					// The credit span marks a flow-control decision made on
					// this frame's account: the half-spent window was topped
					// back up mid-stream.
					s.Tracer.Span(tctx, trace.KindCredit, s.Pool.ShardOf(id), id, ingest, time.Since(ingest), false)
				}
			}
		case wire.TypeHeartbeat:
			if s.ShedHeartbeatsAt > 0 && s.Pool.Pressure(id) >= s.ShedHeartbeatsAt {
				// Shed tier 2: near saturation even the heartbeat is refused
				// — no clock advance, no flush barrier, no echo. A compliant
				// client waiting on the echo simply waits longer and
				// retries; the silence IS the backpressure. Control traffic
				// (tier 3) is never shed — see ShedObservationsAt.
				if s.Journal != nil {
					pendingShed.Heartbeats++
				} else {
					s.Pool.AddShed(id, wire.ShedRecord{Heartbeats: 1})
				}
				continue
			}
			if !advance(msg.At) {
				return
			}
			// The pending shed marker flushes write-ahead of the heartbeat
			// record, so replay restores the shed counters at the same
			// stream position the live pool reached them by.
			if !flushShed() {
				return
			}
			// Heartbeats are journaled too: replay must re-run the same
			// silence sweeps and comparison windows the live pool ran. On a
			// fsync-class connection the journaled heartbeat marks every
			// frame before it durable, so the echo below also acknowledges
			// durability; on a dispatch-class connection the echo promises
			// monitoring only — the unsynced tail can be lost to a crash,
			// which is exactly the class the client asked for.
			var advErr error
			adv := func() { advErr = s.Pool.AdvanceDevice(id, msg.At) }
			if s.Journal != nil {
				hb := wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: msg.At}
				var err error
				if tiered != nil {
					err = tiered.AppendThen(hb, !relaxed, adv)
				} else {
					if err = s.Journal.Append(hb); err == nil {
						adv()
					}
				}
				if err != nil {
					s.logf("fleet: device %q: journal: %v", id, err)
					return
				}
			} else {
				adv()
			}
			// Heartbeats carry time and act as a flush barrier. The carried
			// At advances the device's virtual clock, so a quiet-but-alive
			// SUO still gets silence sweeps and periodic comparison; the
			// echo is only written after every earlier observation on this
			// connection has been through the device's monitor, so any
			// error frames they raised are already on the wire. Clients
			// drain by heartbeating before close. If the pool refuses the
			// barrier (daemon draining), no echo must be sent — a false
			// echo would tell the client its frames were monitored.
			if advErr != nil {
				return
			}
			if err := s.Pool.FlushDevice(id); err != nil {
				return
			}
			echo := wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: msg.At}
			if window > 0 {
				// The echo always restores the full window: the flush
				// barrier above just drained this connection's backlog, so
				// the shard owes it a fresh start. Delta grant, as always.
				echo.Credits = uint32(window - credits)
				credits = window
			}
			if rc.send(echo) != nil {
				return
			}
		case wire.TypeAck:
			// A control-command acknowledgement. Its At is client time and
			// is vetted like any other — an ack is the one frame a restarted
			// device may send before resuming its observation stream.
			if !advance(msg.At) {
				return
			}
			if actx := trace.FromWire(msg.Trace); actx.Live() {
				// The device echoed a control push's trace context: close the
				// exchange with a forced ack span parented on the push's span.
				s.Tracer.Span(actx, trace.KindAck, -1, id, ingest, time.Since(ingest), true)
			}
			if s.OnAck != nil {
				s.OnAck(id, msg)
			}
		case wire.TypeSnapshot:
			// Coverage evidence answering a RequestSnapshot pull. Its At is
			// client time, vetted like any other; the payload is handed to
			// the diagnosis plane under the handshaken ID, never the
			// spoofable SUO field.
			if !advance(msg.At) {
				return
			}
			if s.OnSnapshot != nil {
				s.OnSnapshot(id, msg)
			}
		case wire.TypeSpectrumDelta:
			// Continuous coverage evidence riding the heartbeat cadence. It
			// sheds with tier 1 (observations): a delta is diagnosis input,
			// not control, and one lost window only thins the evidence. It
			// spends no credit — like the heartbeat it rides on, its rate is
			// bounded by the heartbeat cadence, not the observation firehose.
			if msg.Delta == nil {
				continue
			}
			if s.ShedObservationsAt > 0 && s.Pool.Pressure(id) >= s.ShedObservationsAt {
				if s.Journal != nil {
					pendingShed.Observations++
				} else {
					s.Pool.AddShed(id, wire.ShedRecord{Observations: 1})
				}
				continue
			}
			if !advance(msg.At) {
				return
			}
			if s.OnSpectrumDelta != nil {
				s.OnSpectrumDelta(id, msg)
			}
		case wire.TypeHello, wire.TypeControl, wire.TypeError, wire.TypeSpecInfo, wire.TypeSnapshotReq,
			wire.TypeCredit, wire.TypeShed:
			// Identification repeats and client-side chatter are ignored —
			// including credit grants and shed markers, which only ever
			// travel server → client or server → journal.
		}
	}
}
