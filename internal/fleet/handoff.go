package fleet

import (
	"errors"
	"fmt"

	"trader/internal/wire"
)

// This file is the fleet side of the federation tier's live device
// migration (ARCHITECTURE.md §7.3): capture one device behind its shard
// barrier, hand it off, restore it into another pool with byte-identical
// monitor state. The federation package orchestrates who captures and who
// restores; the pool only guarantees the barrier semantics.

// CaptureDevice snapshots one device's monitor state as a PlaneDevice
// checkpoint, captured on the device's own shard goroutine: every command
// submitted for the shard before the call — including in-flight dispatches —
// is processed first, so the snapshot is a consistent point in the device's
// monitored lifetime. The device keeps running; see HandoffDevice for the
// capture-and-release used by migration.
func (p *Pool) CaptureDevice(id string) (*wire.Checkpoint, error) {
	return p.captureDevice(id, false)
}

// HandoffDevice captures a device exactly like CaptureDevice and removes it
// from the pool in the same shard command, so no frame can be dispatched to
// the device between the snapshot and its departure — the migration
// barrier. The caller must have stopped the device's ingest traffic first
// (disconnect or drain); frames arriving after the handoff are dropped as
// unknown-device, visibly, in Stats.Dropped. The removed device's monitor
// counters leave the rollup with it — the destination's rollup gains
// exactly what this pool's loses, so the federation tier's merged view is
// conserved.
func (p *Pool) HandoffDevice(id string) (*wire.Checkpoint, error) {
	return p.captureDevice(id, true)
}

func (p *Pool) captureDevice(id string, remove bool) (*wire.Checkpoint, error) {
	type result struct {
		cp  *wire.Checkpoint
		err error
	}
	res := make(chan result, 1)
	if err := p.send(p.ShardOf(id), func(s *shard) {
		d, ok := s.devices[id]
		if !ok {
			res <- result{err: fmt.Errorf("fleet: capture of unknown device %q", id)}
			return
		}
		if d.Monitor == nil {
			res <- result{err: fmt.Errorf("fleet: capture of monitorless device %q", id)}
			return
		}
		cp := &wire.Checkpoint{
			Plane: wire.PlaneDevice,
			Shard: s.idx,
			At:    d.Kernel.Now(),
		}
		d.Monitor.CaptureInto(cp)
		if d.quarantined {
			cp.Counters = append(cp.Counters, wire.CheckpointCounter{Name: quarantineCounter, V: 1})
		}
		if remove {
			if d.Close != nil {
				d.Close()
			}
			delete(s.devices, id)
			p.devices.Add(-1)
		}
		res <- result{cp: cp}
	}); err != nil {
		return nil, err
	}
	r := <-res
	return r.cp, r.err
}

// RestoreHandoff is the destination side of a migration: it builds the
// device through the factory (the single registration path shared with live
// ingestion and replay) and assigns the handed-over checkpoint absolutely —
// clock, counters, comparator state, spec-model configuration, quarantine
// flag. A device already present (a re-delivered handoff) is restored in
// place rather than rejected, keeping the operation idempotent.
func (p *Pool) RestoreHandoff(id string, cp *wire.Checkpoint, factory MonitorFactory) error {
	discard := func(wire.Message) error { return nil }
	if err := p.AddRemoteDevice(id, factory, discard); err != nil && !errors.Is(err, ErrDuplicateDevice) {
		return fmt.Errorf("fleet: restore handoff %q: %w", id, err)
	}
	return p.RestoreDeviceCheckpoint(id, cp)
}

// AdoptBaseline adds another pool's summed traffic counters to this pool's
// rollup, keyed by the source edge so repeated adoption of the same source
// (a replayed adoption record) overwrites instead of double counting, and
// never collides with this pool's own per-shard checkpoint baselines. The
// federation failover path uses it when a surviving edge absorbs a dead
// peer's journal: the peer's devices arrive via RestoreHandoff, its
// pool-level counters via this baseline, and the survivor's rollup then
// accounts for everything the dead edge had done.
func (p *Pool) AdoptBaseline(source string, counters []wire.CheckpointCounter) {
	p.setBaseline("adopt-"+source, baselineFromCounters(counters))
}

// AdoptBaselineRecord renders an AdoptBaseline as the journal record that
// makes it replayable: a TypeHandoff frame whose PlaneFleet checkpoint
// carries the adopted counters and whose Handoff names the source edge.
// Replay re-applies it through AdoptBaseline (see Pool.Replay).
func AdoptBaselineRecord(source, dest string, st Stats) wire.Message {
	return wire.Message{
		Type:    wire.TypeHandoff,
		Handoff: &wire.HandoffRecord{From: source, To: dest},
		Checkpoint: &wire.Checkpoint{
			Plane: wire.PlaneFleet,
			Counters: []wire.CheckpointCounter{
				{Name: "dispatched", V: st.Dispatched},
				{Name: "dropped", V: st.Dropped},
				{Name: "quarantined", V: st.Quarantined},
				{Name: "reports", V: st.Reports},
				{Name: "shed_obs", V: st.ShedObservations},
				{Name: "shed_hb", V: st.ShedHeartbeats},
			},
		},
	}
}
