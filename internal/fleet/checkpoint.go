package fleet

import (
	"fmt"
	"sort"
	"time"

	"trader/internal/wire"
)

// This file is the checkpoint half of the journal integration: a periodic
// snapshot of the fleet's monitor state written into each journal stream so
// replay can resume from the snapshot and read only the delta, instead of
// re-dispatching the whole history. Capture runs as the journal's frozen
// section (journal.Sharded.Checkpoint holds every stream's writer lock), so
// the snapshot corresponds to an exact prefix of every stream; restore is
// absolute assignment, so replaying pre-checkpoint records and then
// restoring converges to the same state.

// quarantineCounter is the pool-owned counter riding on each device-plane
// checkpoint record, next to the monitor's own counters (which ignore it).
const quarantineCounter = "fleet.quarantined"

// shardBaseline holds one shard's traffic counters as restored from a
// PlaneShard checkpoint record. Live counters restart from zero after a
// crash; Rollup adds the baseline back so fleet totals survive restarts.
type shardBaseline struct {
	Dispatched       uint64
	Dropped          uint64
	Quarantined      uint64
	Reports          uint64
	ShedObservations uint64
	ShedHeartbeats   uint64
}

// CheckpointJournal is the journal surface the Checkpointer drives:
// journal.Sharded is the production implementation.
type CheckpointJournal interface {
	Checkpoint(capture func() ([][]wire.Message, error)) error
	Shards() int
}

// CaptureCheckpoint snapshots the fleet into one record batch per shard,
// shaped for journal.Sharded.Checkpoint: every batch is checkpoint records
// only and ends with a Final PlaneShard record, which is what marks it a
// complete resume point for the Reader. Devices are captured on their own
// shard goroutines (a pool barrier), sorted by ID for byte-stable output.
// Devices without a monitor have no state worth snapshotting and are
// rebuilt from scratch by the post-checkpoint records instead.
//
// The caller may append plane records of its own (control, diagnosis) to a
// batch as long as they go BEFORE the Final record — see Checkpointer.
func (p *Pool) CaptureCheckpoint(profile string, gen uint64) ([][]wire.Message, error) {
	batches := make([][]wire.Message, len(p.shards))
	err := p.barrier(func(s *shard) {
		ids := make([]string, 0, len(s.devices))
		for id := range s.devices {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		batch := make([]wire.Message, 0, len(ids)+1)
		for _, id := range ids {
			d := s.devices[id]
			if d.Monitor == nil {
				continue
			}
			cp := &wire.Checkpoint{
				Plane: wire.PlaneDevice,
				Shard: s.idx,
				Seq:   gen,
				At:    d.Kernel.Now(),
			}
			d.Monitor.CaptureInto(cp)
			if d.quarantined {
				cp.Counters = append(cp.Counters, wire.CheckpointCounter{Name: quarantineCounter, V: 1})
			}
			batch = append(batch, wire.Message{
				Type: wire.TypeCheckpoint, SUO: id, At: cp.At, Checkpoint: cp,
			})
		}
		batch = append(batch, wire.Message{Type: wire.TypeCheckpoint, Checkpoint: &wire.Checkpoint{
			Plane:   wire.PlaneShard,
			Shard:   s.idx,
			Seq:     gen,
			Final:   true,
			Profile: profile,
			Counters: []wire.CheckpointCounter{
				{Name: "dispatched", V: s.dispatched.Load()},
				{Name: "dropped", V: s.dropped.Load()},
				{Name: "quarantined", V: s.quarantined.Load()},
				{Name: "reports", V: s.reports.Load()},
				{Name: "shed_obs", V: s.shedObs.Load()},
				{Name: "shed_hb", V: s.shedHB.Load()},
			},
		}})
		batches[s.idx] = batch
	})
	if err != nil {
		return nil, err
	}
	return batches, nil
}

// RestoreDeviceCheckpoint places one device at the state its PlaneDevice
// checkpoint record captured: the virtual clock jumps to the checkpoint
// instant, the monitor's counters, comparator state and spec-model
// configuration are assigned absolutely, and the pool-owned quarantine flag
// is re-applied. The device must already exist (replay builds it through
// the factory first).
func (p *Pool) RestoreDeviceCheckpoint(id string, cp *wire.Checkpoint) error {
	errc := make(chan error, 1)
	if err := p.send(p.ShardOf(id), func(s *shard) {
		d, ok := s.devices[id]
		if !ok {
			errc <- fmt.Errorf("fleet: checkpoint for unknown device %q", id)
			return
		}
		if d.Monitor == nil {
			errc <- fmt.Errorf("fleet: checkpoint for monitorless device %q", id)
			return
		}
		d.Kernel.Jump(cp.At)
		for _, c := range cp.Counters {
			if c.Name == quarantineCounter {
				d.quarantined = c.V != 0
			}
		}
		errc <- d.Monitor.RestoreFrom(cp)
	}); err != nil {
		return err
	}
	return <-errc
}

// baselineFromCounters parses the PlaneShard counter-name convention into a
// baseline struct (unknown names are ignored, like unknown JSON fields).
func baselineFromCounters(counters []wire.CheckpointCounter) shardBaseline {
	var b shardBaseline
	for _, c := range counters {
		switch c.Name {
		case "dispatched":
			b.Dispatched = c.V
		case "dropped":
			b.Dropped = c.V
		case "quarantined":
			b.Quarantined = c.V
		case "reports":
			b.Reports = c.V
		case "shed_obs":
			b.ShedObservations = c.V
		case "shed_hb":
			b.ShedHeartbeats = c.V
		}
	}
	return b
}

// setBaseline installs a baseline under key, overwriting any previous value
// for the same key; Rollup sums across keys.
func (p *Pool) setBaseline(key string, b shardBaseline) {
	p.baseMu.Lock()
	if p.baselines == nil {
		p.baselines = make(map[string]shardBaseline)
	}
	p.baselines[key] = b
	p.baseMu.Unlock()
}

// RestoreShardBaseline re-applies a PlaneShard checkpoint record's traffic
// counters as the shard's rollup baseline. Restoring the same shard again
// (a later checkpoint in the same journal) overwrites, it does not add;
// baselines adopted from another edge's journal (AdoptBaseline) live under
// their own keys and are unaffected.
func (p *Pool) RestoreShardBaseline(cp *wire.Checkpoint) {
	p.setBaseline(fmt.Sprintf("shard-%d", cp.Shard), baselineFromCounters(cp.Counters))
}

// Checkpointer periodically writes global checkpoints: it freezes the
// sharded journal, snapshots the fleet (and any extra planes) and installs
// the batches as each stream's new resume point, truncating the segments
// the snapshot covers. One Checkpointer per daemon.
type Checkpointer struct {
	// Pool and Journal must agree on the shard count; Checkpoint refuses
	// to run otherwise (record routing and stream routing would diverge).
	Pool    *Pool
	Journal CheckpointJournal
	// Profile tags the Final records so a later boot can refuse to resume
	// a journal written under a different fleet profile.
	Profile string
	// Planes, when non-nil, contribute one checkpoint record each (the
	// control and diagnosis planes). They are called BEFORE the journal
	// freezes — the planes' own loops append to this journal, so calling
	// them under the stream locks could deadlock behind their next append —
	// and their records join shard 0's batch ahead of its Final record.
	Planes []func() wire.Message
	// Logf, when non-nil, receives one line per checkpoint attempt.
	Logf func(format string, args ...any)

	gen uint64 // checkpoint generation, monotonic per Checkpointer
}

// Checkpoint writes one global checkpoint.
func (c *Checkpointer) Checkpoint() error {
	if pc, jc := c.Pool.Shards(), c.Journal.Shards(); pc != jc {
		return fmt.Errorf("fleet: checkpoint: pool has %d shards, journal %d", pc, jc)
	}
	c.gen++
	gen := c.gen
	var planes []wire.Message
	for _, f := range c.Planes {
		planes = append(planes, f())
	}
	err := c.Journal.Checkpoint(func() ([][]wire.Message, error) {
		batches, err := c.Pool.CaptureCheckpoint(c.Profile, gen)
		if err != nil {
			return nil, err
		}
		if len(planes) > 0 {
			b0 := batches[0]
			final := b0[len(b0)-1]
			b0 = append(b0[:len(b0)-1:len(b0)-1], planes...)
			batches[0] = append(b0, final)
		}
		return batches, nil
	})
	if c.Logf != nil {
		if err != nil {
			c.Logf("fleet: checkpoint %d failed: %v", gen, err)
		} else {
			c.Logf("fleet: checkpoint %d written (%d devices)", gen, c.Pool.Size())
		}
	}
	return err
}

// Run writes a checkpoint every interval until done closes. Errors are
// logged and the loop keeps going: a failed checkpoint leaves the previous
// resume point in place, costing replay time, not correctness.
func (c *Checkpointer) Run(every time.Duration, done <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = c.Checkpoint()
		case <-done:
			return
		}
	}
}
