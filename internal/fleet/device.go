package fleet

import (
	"fmt"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

// Device is one fleet member: a virtual clock, a monitor watching the
// device against its specification model, and a Feed through which the pool
// delivers events. Everything in a Device is owned by its shard goroutine —
// factories must not share kernels, models or monitors between devices.
type Device struct {
	ID     string
	Kernel *sim.Kernel
	// Monitor, when non-nil, contributes to the fleet rollup and its error
	// reports fan into the pool handlers.
	Monitor *core.Monitor
	// Feed delivers one fleet-dispatched event to the device (e.g. a remote
	// key press to a TV). It runs on the shard goroutine.
	Feed func(event.Event)
	// Close, when non-nil, tears the device down on removal or pool stop.
	Close func()
	// Attach, when non-nil, redirects the device's monitor→SUO traffic
	// (error-report pushes) to a new sink. RemoteDevice sets it so a device
	// rebuilt from a journal — whose original connection died with the
	// crashed daemon — can be re-adopted by the reconnecting client
	// (Pool.AttachDevice). It runs on the shard goroutine.
	Attach func(send func(wire.Message) error)

	// quarantined marks a device the recovery control plane took out of
	// service: dispatches and broadcasts to it are dropped and counted.
	// Owned by the shard goroutine like the rest of the Device
	// (Pool.QuarantineDevice sets it there).
	quarantined bool
}

// Factory builds one device. It runs on the owning shard's goroutine, so
// construction parallelises across shards; seed derives the device's
// deterministic behaviour (including whether it is faulty in synthetic
// fleets).
type Factory func(id string, seed int64) (*Device, error)

// LightFactory returns a factory for a minimal monitored device, sized so
// thousands fit in one process: a one-state spec model tracking the
// commanded level "x", and a simulated SUO that echoes each "set" command
// as an "out" observation. One in faultEvery devices (by seed; 0 disables)
// is built broken — its echo drifts beyond the comparator threshold, so the
// fleet monitor flags it. The monitor re-compares every 10ms of virtual
// time, so Advance generates periodic comparator work like a real fleet.
func LightFactory(faultEvery int) Factory {
	return func(id string, seed int64) (*Device, error) {
		k := sim.NewKernel(seed)
		mon, err := lightMonitor(id, k)
		if err != nil {
			return nil, err
		}
		faulty := faultEvery > 0 && seed%int64(faultEvery) == 0
		d := &Device{ID: id, Kernel: k, Monitor: mon, Close: mon.Stop}
		d.Feed = func(e event.Event) {
			switch e.Kind {
			case event.Input:
				mon.HandleInput(e)
				// The simulated SUO reacts instantly: it echoes the
				// commanded level as its observable output...
				v, ok := e.Get("x")
				if !ok {
					return
				}
				if faulty {
					v += 1 // ...unless this device is broken in the field.
				}
				out := event.Event{Kind: event.Output, Name: "out", Source: id, At: k.Now()}
				mon.HandleOutput(out.With("x", v))
			case event.Output, event.State:
				mon.HandleOutput(e)
			}
		}
		return d, nil
	}
}

// lightMonitor builds the minimal started monitor LightFactory and
// LightMonitorFactory share: a one-state spec model tracking the commanded
// level "x", re-compared every 10ms of virtual time.
func lightMonitor(id string, k *sim.Kernel) (*core.Monitor, error) {
	r := statemachine.NewRegion("dev")
	r.Add(&statemachine.State{
		Name:  "run",
		Entry: func(c *statemachine.Context) { c.Set("x", 0) },
		Transitions: []statemachine.Transition{{
			Event: "set",
			Action: func(c *statemachine.Context) {
				if v, ok := c.Event.Get("x"); ok {
					c.Set("x", v)
				}
			},
		}},
	})
	model := statemachine.MustModel("dev-"+id, k, r)
	mon, err := core.NewMonitor(k, model, core.Configuration{
		Observables: []core.Observable{
			{Name: "x", EventName: "out", ValueName: "x", ModelVar: "x", Threshold: 0.25, Tolerance: 1},
		},
		CompareEvery: 10 * sim.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if err := mon.Start(); err != nil {
		return nil, err
	}
	return mon, nil
}

// TVFactory returns a factory producing full monitored TVs: the tvsim
// simulator on its SoC substrate, the TV spec model, and a monitor with the
// given observable configuration attached to the TV's bus. Input events
// named "key" press the carried remote key; other events are published on
// the TV bus.
func TVFactory(cfg tvsim.Config, obs core.Configuration) Factory {
	return func(id string, seed int64) (*Device, error) {
		k := sim.NewKernel(seed)
		tv := tvsim.New(k, cfg)
		model := tvsim.BuildSpecModel(k, cfg)
		tvsim.MirrorQuality(model)
		mon, err := core.NewMonitor(k, model, obs)
		if err != nil {
			return nil, err
		}
		if err := mon.Start(); err != nil {
			return nil, err
		}
		mon.AttachBus(tv.Bus())
		d := &Device{ID: id, Kernel: k, Monitor: mon}
		d.Feed = func(e event.Event) {
			if e.Kind == event.Input && e.Name == "key" {
				if v, ok := e.Get("key"); ok {
					tv.PressKey(tvsim.Key(int(v)))
					return
				}
			}
			tv.Bus().Publish(e)
		}
		d.Close = func() { mon.Stop() }
		return d, nil
	}
}

// KeyEvent builds the fleet-dispatchable remote-control event TVFactory
// devices understand.
func KeyEvent(k tvsim.Key) event.Event {
	return event.Event{Kind: event.Input, Name: "key", Source: "fleet"}.With("key", float64(k))
}

// DeviceID formats the canonical fleet device ID for index i.
func DeviceID(i int) string { return fmt.Sprintf("dev-%06d", i) }
