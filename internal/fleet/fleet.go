// Package fleet scales the paper's single-device awareness monitor to the
// deployed-fleet setting its industry-as-laboratory premise implies:
// millions of high-volume devices (TVs) in the field, each carrying its own
// monitor, with fleet-level aggregation of error reports and counters.
//
// A Pool runs N device monitors — each a sim.Kernel + specification model +
// core.Monitor — across a fixed set of worker shards. Events are routed to
// a device's shard by an FNV-1a hash of the device ID, so routing is
// deterministic and a device's state is only ever touched by one goroutine
// (the simulation kernel and state machine are single-threaded by design;
// sharding restores concurrency *between* devices without locking *inside*
// them). Broadcast and batched dispatch enqueue one command per shard, not
// per device, keeping the channel traffic proportional to the shard count.
//
// The Pool satisfies core.Member, so a core.Group can delegate an entire
// fleet as one member next to individual monitors.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/metrics"
	"trader/internal/sim"
	"trader/internal/trace"
	"trader/internal/wire"
)

// ErrStopped is returned by operations on a pool after Stop.
var ErrStopped = errors.New("fleet: pool stopped")

// ErrDuplicateDevice is wrapped by AddDevice when the ID is already
// present. The ingestion server distinguishes it from other admission
// failures: a pool slot occupied with no connection behind it is a device
// rebuilt by journal recovery, which a reconnecting client adopts instead
// of being rejected (see Server.Journal and Pool.Replay).
var ErrDuplicateDevice = errors.New("duplicate device")

// Options configures a Pool.
type Options struct {
	// Shards is the number of worker goroutines (default GOMAXPROCS).
	Shards int
	// Queue is the per-shard command buffer length (default 1024).
	Queue int
	// Tracer, when non-nil, records dispatch and monitor spans for frames
	// whose ingest was sampled (DispatchTraced). Unsampled frames — and a
	// nil tracer — follow the exact pre-tracing hot path.
	Tracer *trace.Tracer
}

func (o *Options) fill() {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 1024
	}
}

// Targeted addresses one event to one device.
type Targeted struct {
	Device string
	Event  event.Event
}

// Stats is the fleet-level rollup.
type Stats struct {
	Devices int
	Shards  int
	// Monitor sums every device monitor's counters.
	Monitor core.MonitorStats
	// Dispatched counts events delivered to a device's Feed.
	Dispatched uint64
	// Dropped counts targeted events whose device was unknown.
	Dropped uint64
	// Quarantined counts events dropped because their device was
	// quarantined by the recovery control plane.
	Quarantined uint64
	// Reports counts error reports fanned in from device monitors.
	Reports uint64
	// ShedObservations and ShedHeartbeats count frames the ingestion
	// server refused under queue pressure, by load-shedding tier (see
	// Server.ShedObservationsAt): observations drop first, heartbeats only
	// under near-saturation. Shed frames never reach a monitor and are
	// never journaled — markers restore these counters on replay instead.
	ShedObservations uint64
	ShedHeartbeats   uint64
	// ShedControl exists so operators can assert the shedding contract and
	// is always zero: control, ack, snapshot and error traffic — the
	// diagnosis and recovery planes — is never shed.
	ShedControl uint64
}

// Pool is a sharded monitor pool. All methods are safe for concurrent use.
type Pool struct {
	opts   Options
	shards []*shard
	wg     sync.WaitGroup

	// opMu serialises command submission against Stop closing the shard
	// channels: submitters hold the read side, Stop the write side.
	opMu    sync.RWMutex
	stopped bool

	mu       sync.Mutex // guards started and handlers
	started  bool
	handlers []func(device string, r wire.ErrorReport)

	devices atomic.Int64

	// baseMu guards baselines: counter values restored from checkpoint
	// records ("shard-N" keys, overwritten by later checkpoints of the same
	// shard) or adopted from another edge's journal after a federation
	// failover ("adopt-<edge>" keys; see AdoptBaseline). Rollup adds them
	// to the live shard counters, which restart from zero after a crash.
	baseMu    sync.Mutex
	baselines map[string]shardBaseline

	// term is closed once every shard worker has exited; receiving from it
	// orders reads of the shards' final counters after their last writes.
	term chan struct{}
}

// shard owns a disjoint subset of the fleet's devices. Its devices map and
// every device in it are touched only by the shard's worker goroutine, so
// device simulation needs no locks. Traffic counters are per-shard so the
// dispatch hot path never touches a cache line shared between shards; the
// rollup sums them with atomic loads.
type shard struct {
	idx         int
	cmds        chan func(*shard)
	devices     map[string]*Device
	dispatched  atomic.Uint64
	dropped     atomic.Uint64
	quarantined atomic.Uint64
	reports     atomic.Uint64
	shedObs     atomic.Uint64
	shedHB      atomic.Uint64
	// lat is the shard's ingest-to-dispatch latency histogram, recorded by
	// DispatchAt on the shard goroutine (the SLO plane's raw material).
	lat *metrics.Histogram
	// final is the shard's monitor-counter sum at shutdown, written by the
	// worker just before it exits and published to readers by Pool.term.
	final core.MonitorStats
}

// NewPool creates the pool and starts its shard workers; devices can be
// added immediately. Start/Stop manage the core.Member lifecycle.
func NewPool(opts Options) *Pool {
	opts.fill()
	p := &Pool{opts: opts, term: make(chan struct{})}
	for i := 0; i < opts.Shards; i++ {
		s := &shard{idx: i, cmds: make(chan func(*shard), opts.Queue),
			devices: make(map[string]*Device), lat: metrics.New()}
		p.shards = append(p.shards, s)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range s.cmds {
				fn(s)
			}
			for _, d := range s.devices {
				if d.Monitor != nil {
					s.final.Add(d.Monitor.Stats())
				}
				if d.Close != nil {
					d.Close()
				}
			}
		}()
	}
	return p
}

// Shards returns the shard count.
func (p *Pool) Shards() int { return p.opts.Shards }

// Size returns the current device count.
func (p *Pool) Size() int { return int(p.devices.Load()) }

// RangeOf returns the bucket in [0,n) the device ID hashes to: the same
// inlined FNV-1a that routes events to shards inside a pool (ShardOf), made
// available as a pure function so the federation tier assigns device-ID
// ranges to edge ingesters with the identical mapping. A device's edge and
// its shard within that edge are the one hash taken modulo two different
// counts.
func RangeOf(id string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// ShardOf returns the shard index the device ID routes to. The mapping is a
// pure function of the ID and the shard count (RangeOf over the shard
// count). FNV-1a is inlined over the string: this sits on the per-event
// dispatch path and must not allocate.
func (p *Pool) ShardOf(id string) int {
	return RangeOf(id, len(p.shards))
}

// send submits fn to shard i unless the pool is stopped.
func (p *Pool) send(i int, fn func(*shard)) error {
	p.opMu.RLock()
	defer p.opMu.RUnlock()
	if p.stopped {
		return ErrStopped
	}
	p.shards[i].cmds <- fn
	return nil
}

// sendAll submits fn to every shard unless the pool is stopped.
func (p *Pool) sendAll(fn func(*shard)) error {
	p.opMu.RLock()
	defer p.opMu.RUnlock()
	if p.stopped {
		return ErrStopped
	}
	for _, s := range p.shards {
		s.cmds <- fn
	}
	return nil
}

// barrier submits fn to every shard and waits for all of them to run it.
// Commands queued earlier are processed first, so a nil fn acts as a flush.
func (p *Pool) barrier(fn func(*shard)) error {
	var wg sync.WaitGroup
	wg.Add(len(p.shards))
	err := p.sendAll(func(s *shard) {
		if fn != nil {
			fn(s)
		}
		wg.Done()
	})
	if err != nil {
		return err
	}
	wg.Wait()
	return nil
}

// Sync blocks until every command submitted before it has been processed.
func (p *Pool) Sync() error { return p.barrier(nil) }

// AdvanceDevice runs one device's virtual clock forward to at, firing its
// monitor's timers (time-based comparison, silence sweeps) on the way; it
// is a no-op if the clock is already past at or the device is unknown. The
// ingestion server calls it for each heartbeat, so a remote SUO that goes
// quiet — but keeps heartbeating — still gets its MaxSilence deadlines
// checked, and a drain heartbeat closes out the final comparison window.
func (p *Pool) AdvanceDevice(id string, at sim.Time) error {
	return p.send(p.ShardOf(id), func(s *shard) {
		if d, ok := s.devices[id]; ok && at > d.Kernel.Now() {
			d.Kernel.Run(at)
		}
	})
}

// FlushDevice blocks until every command submitted before it for the
// device's shard has been processed — a single-shard Sync. The ingestion
// server uses it to give heartbeats flush-barrier semantics: once the
// heartbeat echo is on the wire, every earlier observation on that
// connection has been through its monitor.
func (p *Pool) FlushDevice(id string) error {
	done := make(chan struct{})
	if err := p.send(p.ShardOf(id), func(*shard) { close(done) }); err != nil {
		return err
	}
	<-done
	return nil
}

// AddDevice builds a device on its owning shard (the factory runs on the
// shard goroutine) and wires its monitor's error reports into the fleet
// fan-in. Devices can be added while dispatch traffic is in flight.
func (p *Pool) AddDevice(id string, seed int64, f Factory) error {
	if id == "" {
		return errors.New("fleet: device needs an ID")
	}
	errc := make(chan error, 1)
	if err := p.send(p.ShardOf(id), func(s *shard) {
		if _, dup := s.devices[id]; dup {
			errc <- fmt.Errorf("fleet: %w %q", ErrDuplicateDevice, id)
			return
		}
		d, err := f(id, seed)
		if err != nil {
			errc <- fmt.Errorf("fleet: building device %q: %w", id, err)
			return
		}
		if d.Monitor != nil {
			d.Monitor.OnError(func(r wire.ErrorReport) { p.report(s, id, r) })
		}
		s.devices[id] = d
		p.devices.Add(1)
		errc <- nil
	}); err != nil {
		return err
	}
	return <-errc
}

// RemoveDevice stops and removes a device, reporting whether it was present.
// Its monitor counters leave the fleet rollup with it.
func (p *Pool) RemoveDevice(id string) (bool, error) {
	found := make(chan bool, 1)
	if err := p.send(p.ShardOf(id), func(s *shard) {
		d, ok := s.devices[id]
		if ok {
			if d.Close != nil {
				d.Close()
			}
			delete(s.devices, id)
			p.devices.Add(-1)
		}
		found <- ok
	}); err != nil {
		return false, err
	}
	return <-found, nil
}

// QuarantineDevice takes a device out of service: subsequent dispatches and
// broadcasts to it are dropped (counted in Stats.Quarantined) while its
// monitor state stays in the pool, so a post-mortem still sees what the
// device had done. The flag survives connection churn — a quarantined remote
// device that reconnects is adopted quarantined, not returned to service.
// It reports whether the device was present.
func (p *Pool) QuarantineDevice(id string) (bool, error) {
	found := make(chan bool, 1)
	if err := p.send(p.ShardOf(id), func(s *shard) {
		d, ok := s.devices[id]
		if ok {
			d.quarantined = true
		}
		found <- ok
	}); err != nil {
		return false, err
	}
	return <-found, nil
}

// Quarantined reports whether the device exists and is quarantined.
func (p *Pool) Quarantined(id string) (bool, error) {
	q := make(chan bool, 1)
	if err := p.send(p.ShardOf(id), func(s *shard) {
		d, ok := s.devices[id]
		q <- ok && d.quarantined
	}); err != nil {
		return false, err
	}
	return <-q, nil
}

// ResetDevice clears a device monitor's deviation state (core.Monitor.Reset)
// so detection re-arms: the recovery control plane calls it as part of every
// escalation action, and journal replay re-applies it at the recorded
// position. It reports whether the device was present.
func (p *Pool) ResetDevice(id string) (bool, error) {
	found := make(chan bool, 1)
	if err := p.send(p.ShardOf(id), func(s *shard) {
		d, ok := s.devices[id]
		if ok && d.Monitor != nil {
			d.Monitor.Reset()
		}
		found <- ok
	}); err != nil {
		return false, err
	}
	return <-found, nil
}

// Dispatch routes one event to one device, asynchronously. Unknown devices
// are counted in Stats().Dropped.
func (p *Pool) Dispatch(id string, e event.Event) error {
	return p.send(p.ShardOf(id), func(s *shard) { s.deliver(p, id, e) })
}

// DispatchAt is Dispatch for the ingestion path: it additionally records
// the ingest-to-dispatch latency — from the frame's decode instant to its
// delivery on the shard goroutine, the interval the fleet's latency SLO is
// stated over — into the shard's histogram. Recording is one atomic add;
// plain Dispatch callers pay nothing.
func (p *Pool) DispatchAt(id string, e event.Event, ingest time.Time) error {
	return p.send(p.ShardOf(id), func(s *shard) {
		s.deliver(p, id, e)
		s.lat.Record(time.Since(ingest))
	})
}

// DispatchTraced is DispatchAt for sampled frames: the shard records a
// dispatch span (enqueue → shard-goroutine pickup, the queue-wait the
// shed tiers manage) and a monitor span (the device step itself) under
// ctx, and the latency observation carries the trace ID as its bucket's
// exemplar — the link that lets a p99 spike on /metrics resolve to the
// span chain that produced it. A dead ctx takes the DispatchAt path
// unchanged, so only the 1-in-N sampled frames pay for extra clock reads.
func (p *Pool) DispatchTraced(id string, e event.Event, ingest time.Time, ctx trace.Context) error {
	if !ctx.Live() || p.opts.Tracer == nil {
		return p.DispatchAt(id, e, ingest)
	}
	tr := p.opts.Tracer
	enq := time.Now()
	return p.send(p.ShardOf(id), func(s *shard) {
		pick := time.Now()
		dctx := tr.Span(ctx, trace.KindDispatch, s.idx, id, enq, pick.Sub(enq), false)
		s.deliver(p, id, e)
		tr.Span(dctx, trace.KindMonitor, s.idx, id, pick, time.Since(pick), false)
		s.lat.RecordEx(time.Since(ingest), ctx.Trace)
	})
}

// Pressure reports the fill fraction, in [0,1], of the command queue of
// the shard the device ID routes to. The ingestion server reads it on the
// hot path to decide load-shedding, so it is a channel-length probe, not a
// barrier: momentarily stale, never blocking.
func (p *Pool) Pressure(id string) float64 {
	s := p.shards[p.ShardOf(id)]
	return float64(len(s.cmds)) / float64(cap(s.cmds))
}

// AddShed adds a shed-marker record's counts to the shard counters of the
// device the frames were shed for. The ingestion server calls it when a
// marker becomes durable (or immediately, on journal-less servers), and
// journal replay re-applies markers through it — so a replayed pool's
// rollup balances against the live one's even though shed frames
// themselves were never journaled.
func (p *Pool) AddShed(id string, rec wire.ShedRecord) {
	s := p.shards[p.ShardOf(id)]
	s.shedObs.Add(rec.Observations)
	s.shedHB.Add(rec.Heartbeats)
}

// Latency returns the fleet-wide ingest-to-dispatch latency snapshot:
// every shard's histogram merged.
func (p *Pool) Latency() metrics.Snapshot {
	var out metrics.Snapshot
	for _, s := range p.shards {
		out.Merge(s.lat.Snapshot())
	}
	return out
}

// ShardLatency returns one shard's ingest-to-dispatch latency snapshot.
// Per-shard views are the point of the SLO plane: a flooded shard's tail
// must be visible apart from its healthy neighbours.
func (p *Pool) ShardLatency(i int) metrics.Snapshot {
	return p.shards[i].lat.Snapshot()
}

// DispatchBatch groups the batch by owning shard and submits one command
// per shard, so channel traffic scales with the shard count rather than the
// batch size.
func (p *Pool) DispatchBatch(batch []Targeted) error {
	perShard := make([][]Targeted, len(p.shards))
	for _, t := range batch {
		i := p.ShardOf(t.Device)
		perShard[i] = append(perShard[i], t)
	}
	p.opMu.RLock()
	defer p.opMu.RUnlock()
	if p.stopped {
		return ErrStopped
	}
	for i, part := range perShard {
		if len(part) == 0 {
			continue
		}
		part := part
		p.shards[i].cmds <- func(s *shard) {
			for _, t := range part {
				s.deliver(p, t.Device, t.Event)
			}
		}
	}
	return nil
}

// Broadcast delivers the event to every non-quarantined device: one command
// per shard.
func (p *Pool) Broadcast(e event.Event) error {
	return p.sendAll(func(s *shard) {
		var n, q uint64
		for _, d := range s.devices {
			if d.quarantined {
				q++
				continue
			}
			d.Feed(e)
			n++
		}
		s.dispatched.Add(n)
		s.quarantined.Add(q)
	})
}

func (s *shard) deliver(p *Pool, id string, e event.Event) {
	d, ok := s.devices[id]
	if !ok {
		s.dropped.Add(1)
		return
	}
	if d.quarantined {
		s.quarantined.Add(1)
		return
	}
	d.Feed(e)
	s.dispatched.Add(1)
}

// Advance runs every device's virtual clock forward by d, in parallel
// across shards, and returns when all shards are done. This is where
// periodic monitor work (silence sweeps, time-based comparison) happens.
func (p *Pool) Advance(d sim.Time) error {
	return p.barrier(func(s *shard) {
		for _, dev := range s.devices {
			dev.Kernel.Run(dev.Kernel.Now() + d)
		}
	})
}

// report fans one device's error report into the pool handlers. The count
// lives on the device's shard so checkpoints can snapshot it per stream.
func (p *Pool) report(s *shard, device string, r wire.ErrorReport) {
	s.reports.Add(1)
	p.mu.Lock()
	hs := p.handlers
	p.mu.Unlock()
	for _, h := range hs {
		h(device, r)
	}
}

// OnReport registers a fleet-level handler receiving every device's error
// reports tagged with the device ID. Handlers run on shard goroutines and
// may be invoked concurrently; they must be safe for that, and they must
// not call the pool's barrier methods (Sync, Advance, Rollup, Stats,
// DeviceStats) — a barrier waits for the very shard the handler is
// blocking, deadlocking the pool. Record what you need and act after the
// dispatch round.
func (p *Pool) OnReport(fn func(device string, r wire.ErrorReport)) {
	p.mu.Lock()
	p.handlers = append(p.handlers[:len(p.handlers):len(p.handlers)], fn)
	p.mu.Unlock()
}

// OnError satisfies core.Member: the device tag is folded into the report's
// Detail so a Group sees which fleet device fired.
func (p *Pool) OnError(fn func(wire.ErrorReport)) {
	p.OnReport(func(device string, r wire.ErrorReport) {
		if r.Detail == "" {
			r.Detail = "device=" + device
		} else {
			r.Detail += " device=" + device
		}
		fn(r)
	})
}

// Start satisfies core.Member. Shard workers already run from NewPool;
// Start only guards against double-start like core.Group.
func (p *Pool) Start() error {
	p.opMu.RLock()
	stopped := p.stopped
	p.opMu.RUnlock()
	if stopped {
		return ErrStopped
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return errors.New("fleet: pool already started")
	}
	p.started = true
	return nil
}

// Stop drains the shards, stops every device monitor and closes every
// device. The pool cannot be restarted. The final monitor counters stay
// readable through Stats/Rollup, like a stopped core.Monitor's. Stop
// returns once shutdown is complete, from every caller.
func (p *Pool) Stop() {
	p.opMu.Lock()
	if p.stopped {
		p.opMu.Unlock()
		<-p.term // a concurrent Stop won the race; wait for it to finish
		return
	}
	p.stopped = true
	for _, s := range p.shards {
		close(s.cmds)
	}
	p.opMu.Unlock()
	p.wg.Wait()
	p.mu.Lock()
	p.started = false
	p.mu.Unlock()
	close(p.term)
}

// Stats satisfies core.Member with the summed monitor counters; Rollup
// carries the full fleet view.
func (p *Pool) Stats() core.MonitorStats { return p.Rollup().Monitor }

// Rollup gathers the fleet-level statistics. It is a barrier: commands
// submitted before it are reflected in the result. On a stopped pool it
// returns the counters frozen at shutdown.
func (p *Pool) Rollup() Stats {
	st := Stats{Shards: p.opts.Shards}
	var mu sync.Mutex
	err := p.barrier(func(s *shard) {
		var part core.MonitorStats
		n := 0
		for _, d := range s.devices {
			if d.Monitor != nil {
				part.Add(d.Monitor.Stats())
			}
			n++
		}
		mu.Lock()
		st.Monitor.Add(part)
		st.Devices += n
		mu.Unlock()
	})
	if err != nil {
		<-p.term // shutdown complete: the shards' final sums are published
		for _, s := range p.shards {
			st.Monitor.Add(s.final)
		}
		st.Devices = int(p.devices.Load())
	}
	for _, s := range p.shards {
		st.Dispatched += s.dispatched.Load()
		st.Dropped += s.dropped.Load()
		st.Quarantined += s.quarantined.Load()
		st.Reports += s.reports.Load()
		st.ShedObservations += s.shedObs.Load()
		st.ShedHeartbeats += s.shedHB.Load()
	}
	p.baseMu.Lock()
	for _, b := range p.baselines {
		st.Dispatched += b.Dispatched
		st.Dropped += b.Dropped
		st.Quarantined += b.Quarantined
		st.Reports += b.Reports
		st.ShedObservations += b.ShedObservations
		st.ShedHeartbeats += b.ShedHeartbeats
	}
	p.baseMu.Unlock()
	return st
}

// HealthyDevices snapshots the IDs of every non-quarantined device, sorted.
// It is a barrier like Rollup, so it must not be called from shard
// goroutines (pool report handlers). The diagnosis plane samples its
// comparison cohorts from this list.
func (p *Pool) HealthyDevices() []string {
	var mu sync.Mutex
	var out []string
	_ = p.barrier(func(s *shard) {
		part := make([]string, 0, len(s.devices))
		for id, d := range s.devices {
			if !d.quarantined {
				part = append(part, id)
			}
		}
		mu.Lock()
		out = append(out, part...)
		mu.Unlock()
	})
	sort.Strings(out)
	return out
}

// DeviceStats snapshots per-device monitor counters keyed by device ID.
func (p *Pool) DeviceStats() map[string]core.MonitorStats {
	out := make(map[string]core.MonitorStats)
	var mu sync.Mutex
	_ = p.barrier(func(s *shard) {
		part := make(map[string]core.MonitorStats, len(s.devices))
		for id, d := range s.devices {
			if d.Monitor != nil {
				part[id] = d.Monitor.Stats()
			}
		}
		mu.Lock()
		for id, st := range part {
			out[id] = st
		}
		mu.Unlock()
	})
	return out
}
