package fleet_test

import (
	"fmt"

	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/sim"
)

// Build a sharded pool, add monitored devices, drive fleet-wide traffic and
// read the rolled-up statistics. Every device echoes the commanded level
// through its own monitor, so the rollup conserves per-device counters.
func ExamplePool() {
	pool := fleet.NewPool(fleet.Options{Shards: 2})
	defer pool.Stop()

	factory := fleet.LightFactory(0) // 0: no seeded-faulty devices
	for i := 0; i < 4; i++ {
		if err := pool.AddDevice(fleet.DeviceID(i), int64(i)+1, factory); err != nil {
			panic(err)
		}
	}

	// One commanded level to every device, then advance virtual time so
	// periodic comparison runs.
	set := event.Event{Kind: event.Input, Name: "set", Source: "headend"}.With("x", 1)
	if err := pool.Broadcast(set); err != nil {
		panic(err)
	}
	if err := pool.Advance(20 * sim.Millisecond); err != nil {
		panic(err)
	}

	ro := pool.Rollup()
	fmt.Printf("devices=%d dispatched=%d inputs=%d outputs=%d reports=%d\n",
		ro.Devices, ro.Dispatched, ro.Monitor.InputsSeen, ro.Monitor.OutputsSeen, ro.Reports)
	// Output: devices=4 dispatched=4 inputs=4 outputs=4 reports=0
}
