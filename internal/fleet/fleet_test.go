package fleet_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/sim"
	"trader/internal/wire"
)

func setEvent(v float64) event.Event {
	return event.Event{Kind: event.Input, Name: "set", Source: "test"}.With("x", v)
}

// newLightPool builds a pool of n healthy light devices on k shards.
func newLightPool(t *testing.T, shards, n int) *fleet.Pool {
	t.Helper()
	p := fleet.NewPool(fleet.Options{Shards: shards})
	f := fleet.LightFactory(0)
	for i := 0; i < n; i++ {
		if err := p.AddDevice(fleet.DeviceID(i), int64(i+1), f); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestShardRoutingDeterministic(t *testing.T) {
	p := fleet.NewPool(fleet.Options{Shards: 8})
	defer p.Stop()
	used := make(map[int]int)
	for i := 0; i < 1000; i++ {
		id := fleet.DeviceID(i)
		first := p.ShardOf(id)
		for rep := 0; rep < 5; rep++ {
			if got := p.ShardOf(id); got != first {
				t.Fatalf("ShardOf(%q) flapped: %d then %d", id, first, got)
			}
		}
		if first < 0 || first >= 8 {
			t.Fatalf("ShardOf(%q) = %d out of range", id, first)
		}
		used[first]++
	}
	// The hash must actually spread the fleet: every shard gets devices.
	for s := 0; s < 8; s++ {
		if used[s] == 0 {
			t.Fatalf("shard %d got no devices out of 1000: %v", s, used)
		}
	}
}

func TestTargetedDispatchReachesOnlyTarget(t *testing.T) {
	p := newLightPool(t, 4, 16)
	defer p.Stop()
	target := fleet.DeviceID(7)
	for i := 0; i < 5; i++ {
		if err := p.Dispatch(target, setEvent(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	per := p.DeviceStats()
	for id, st := range per {
		want := uint64(0)
		if id == target {
			want = 5
		}
		if st.InputsSeen != want {
			t.Errorf("%s: InputsSeen = %d, want %d", id, st.InputsSeen, want)
		}
	}
	ro := p.Rollup()
	if ro.Dispatched != 5 || ro.Dropped != 0 {
		t.Fatalf("rollup dispatched/dropped = %d/%d, want 5/0", ro.Dispatched, ro.Dropped)
	}
}

func TestDispatchUnknownDeviceCountsDropped(t *testing.T) {
	p := newLightPool(t, 2, 2)
	defer p.Stop()
	if err := p.Dispatch("no-such-device", setEvent(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if ro := p.Rollup(); ro.Dropped != 1 || ro.Dispatched != 0 {
		t.Fatalf("rollup dispatched/dropped = %d/%d, want 0/1", ro.Dispatched, ro.Dropped)
	}
}

// TestStatsConservation is the property the fleet rollup must keep: the sum
// of per-device monitor counters equals the fleet aggregate, whatever mix
// of broadcast, batched and targeted traffic was dispatched.
func TestStatsConservation(t *testing.T) {
	const devices = 60
	p := newLightPool(t, 4, devices)
	defer p.Stop()

	for round := 0; round < 10; round++ {
		if err := p.Broadcast(setEvent(float64(round % 3))); err != nil {
			t.Fatal(err)
		}
	}
	var batch []fleet.Targeted
	for i := 0; i < devices; i += 2 {
		batch = append(batch, fleet.Targeted{Device: fleet.DeviceID(i), Event: setEvent(1)})
	}
	if err := p.DispatchBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := p.Advance(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	ro := p.Rollup()
	per := p.DeviceStats()
	if len(per) != devices {
		t.Fatalf("DeviceStats has %d devices, want %d", len(per), devices)
	}
	var sum core.MonitorStats
	for _, st := range per {
		sum.Add(st)
	}
	if sum != ro.Monitor {
		t.Fatalf("conservation violated: sum(devices) = %+v, fleet = %+v", sum, ro.Monitor)
	}
	if sum != p.Stats() {
		t.Fatalf("Stats() = %+v diverges from device sum %+v", p.Stats(), sum)
	}
	wantDispatched := uint64(10*devices + devices/2)
	if ro.Dispatched != wantDispatched {
		t.Fatalf("Dispatched = %d, want %d", ro.Dispatched, wantDispatched)
	}
	// Healthy fleet: every broadcast produced an echo comparison, no errors.
	if ro.Monitor.Comparisons == 0 || ro.Monitor.Errors != 0 {
		t.Fatalf("unexpected rollup %+v", ro.Monitor)
	}
}

func TestFaultyDevicesDetected(t *testing.T) {
	p := fleet.NewPool(fleet.Options{Shards: 4})
	defer p.Stop()
	// Seeds 1..40: multiples of 4 are faulty -> 10 broken devices.
	f := fleet.LightFactory(4)
	for i := 0; i < 40; i++ {
		if err := p.AddDevice(fleet.DeviceID(i), int64(i+1), f); err != nil {
			t.Fatal(err)
		}
	}
	var flagged sync.Map
	p.OnReport(func(device string, r wire.ErrorReport) { flagged.Store(device, r.Detector) })
	// Tolerance 1 means the second consecutive deviating echo reports.
	for i := 0; i < 3; i++ {
		if err := p.Broadcast(setEvent(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	n := 0
	flagged.Range(func(k, v any) bool { n++; return true })
	if n != 10 {
		t.Fatalf("flagged %d devices, want the 10 faulty ones", n)
	}
	if ro := p.Rollup(); ro.Reports != 10 {
		t.Fatalf("rollup reports = %d, want 10", ro.Reports)
	}
}

// TestAddRemoveDuringDispatch hammers the pool with broadcast traffic while
// devices churn in and out — the runtime add/remove guarantee, run under
// -race in the standard gate.
func TestAddRemoveDuringDispatch(t *testing.T) {
	p := newLightPool(t, 4, 32)
	defer p.Stop()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := p.Broadcast(setEvent(1)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	f := fleet.LightFactory(0)
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("churn-%03d", i)
		if err := p.AddDevice(id, int64(1000+i), f); err != nil {
			t.Fatal(err)
		}
		if i >= 10 {
			gone := fmt.Sprintf("churn-%03d", i-10)
			ok, err := p.RemoveDevice(gone)
			if err != nil || !ok {
				t.Fatalf("RemoveDevice(%s) = %v, %v", gone, ok, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := p.Size(); got != 32+10 {
		t.Fatalf("Size = %d, want %d", got, 32+10)
	}
	// The rollup still balances after churn.
	per := p.DeviceStats()
	var sum core.MonitorStats
	for _, st := range per {
		sum.Add(st)
	}
	if sum != p.Rollup().Monitor {
		t.Fatal("conservation violated after churn")
	}
}

func TestDuplicateAndRemovedDevices(t *testing.T) {
	p := newLightPool(t, 2, 1)
	defer p.Stop()
	if err := p.AddDevice(fleet.DeviceID(0), 99, fleet.LightFactory(0)); err == nil {
		t.Fatal("duplicate AddDevice succeeded")
	}
	ok, err := p.RemoveDevice("missing")
	if err != nil || ok {
		t.Fatalf("RemoveDevice(missing) = %v, %v", ok, err)
	}
	ok, err = p.RemoveDevice(fleet.DeviceID(0))
	if err != nil || !ok {
		t.Fatalf("RemoveDevice = %v, %v", ok, err)
	}
	if p.Size() != 0 {
		t.Fatalf("Size = %d after removal", p.Size())
	}
}

func TestPoolIsGroupMember(t *testing.T) {
	var member core.Member = fleet.NewPool(fleet.Options{Shards: 2})
	p := member.(*fleet.Pool)
	if err := p.AddDevice("tv-a", 4, fleet.LightFactory(2)); err != nil { // seed 4: faulty
		t.Fatal(err)
	}
	g := core.NewGroup()
	if err := g.AddMember("fleet", p); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	g.OnError(func(name string, r wire.ErrorReport) {
		mu.Lock()
		got = append(got, name+":"+r.Detail)
		mu.Unlock()
	})
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.Broadcast(setEvent(3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "fleet:device=tv-a" {
		t.Fatalf("group fan-in = %v, want [fleet:device=tv-a]", got)
	}
	if g.Stats().Errors != 1 {
		t.Fatalf("group stats errors = %d, want 1", g.Stats().Errors)
	}
	g.Stop()
	if err := p.Broadcast(setEvent(1)); err != fleet.ErrStopped {
		t.Fatalf("Broadcast after Stop = %v, want ErrStopped", err)
	}
}

func TestStopIdempotentAndConcurrentOps(t *testing.T) {
	p := newLightPool(t, 4, 8)
	var wg sync.WaitGroup
	var errStopped atomic.Uint64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := p.Broadcast(setEvent(1)); err != nil {
					errStopped.Add(1)
					return
				}
			}
		}()
	}
	p.Stop()
	p.Stop() // idempotent
	wg.Wait()
	// After Stop every op reports ErrStopped.
	if err := p.Dispatch(fleet.DeviceID(0), setEvent(1)); err != fleet.ErrStopped {
		t.Fatalf("Dispatch after stop = %v", err)
	}
	if err := p.Advance(sim.Millisecond); err != fleet.ErrStopped {
		t.Fatalf("Advance after stop = %v", err)
	}
	if err := p.AddDevice("late", 1, fleet.LightFactory(0)); err != fleet.ErrStopped {
		t.Fatalf("AddDevice after stop = %v", err)
	}
}

func TestRollupSurvivesStop(t *testing.T) {
	p := newLightPool(t, 2, 8)
	for i := 0; i < 3; i++ {
		if err := p.Broadcast(setEvent(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	before := p.Rollup()
	p.Stop()
	after := p.Rollup()
	if after.Monitor != before.Monitor {
		t.Fatalf("monitor counters lost at Stop: before %+v, after %+v", before.Monitor, after.Monitor)
	}
	if after.Devices != 8 || after.Dispatched != before.Dispatched {
		t.Fatalf("rollup after stop = %+v, want devices/dispatched preserved from %+v", after, before)
	}
	if p.Stats() != before.Monitor {
		t.Fatalf("Stats() after stop = %+v, want %+v", p.Stats(), before.Monitor)
	}
}

// Quarantine takes a device out of dispatch: targeted events, batches and
// broadcasts all skip it (counted separately from unknown-device drops),
// its monitor counters freeze, and a comparator reset re-arms detection.
func TestQuarantineStopsDispatches(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 2})
	defer pool.Stop()
	for i := 0; i < 2; i++ {
		if err := pool.AddDevice(fleet.DeviceID(i), int64(i)+1, fleet.LightFactory(0)); err != nil {
			t.Fatal(err)
		}
	}
	in := func() event.Event {
		return event.Event{Kind: event.Input, Name: "set", Source: "t"}.With("x", 1)
	}
	if err := pool.Dispatch(fleet.DeviceID(0), in()); err != nil {
		t.Fatal(err)
	}
	if err := pool.Sync(); err != nil {
		t.Fatal(err)
	}
	before := pool.DeviceStats()[fleet.DeviceID(0)]

	found, err := pool.QuarantineDevice(fleet.DeviceID(0))
	if err != nil || !found {
		t.Fatalf("quarantine: found=%v err=%v", found, err)
	}
	if found, err := pool.QuarantineDevice("ghost"); err != nil || found {
		t.Fatalf("quarantine ghost: found=%v err=%v", found, err)
	}

	// Targeted dispatch and broadcast: the quarantined device is skipped.
	if err := pool.Dispatch(fleet.DeviceID(0), in()); err != nil {
		t.Fatal(err)
	}
	if err := pool.Broadcast(in()); err != nil {
		t.Fatal(err)
	}
	if err := pool.DispatchBatch([]fleet.Targeted{
		{Device: fleet.DeviceID(0), Event: in()},
		{Device: fleet.DeviceID(1), Event: in()},
	}); err != nil {
		t.Fatal(err)
	}
	if err := pool.Sync(); err != nil {
		t.Fatal(err)
	}
	ro := pool.Rollup()
	if ro.Quarantined != 3 {
		t.Fatalf("quarantined drops = %d, want 3", ro.Quarantined)
	}
	if ro.Dropped != 0 {
		t.Fatalf("unknown-device drops = %d, want 0", ro.Dropped)
	}
	// 1 pre-quarantine targeted + broadcast and batch to the healthy device.
	if ro.Dispatched != 3 {
		t.Fatalf("dispatched = %d, want 3", ro.Dispatched)
	}
	if after := pool.DeviceStats()[fleet.DeviceID(0)]; after != before {
		t.Fatalf("quarantined device's monitor moved: %+v -> %+v", before, after)
	}
}

// ResetDevice clears latched comparator episodes so a persistent deviation
// is reported again — the controller's re-arm primitive.
func TestResetDeviceReArmsComparator(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	// Every device faulty: the echo deviates from the commanded level.
	if err := pool.AddDevice("dev", 1, fleet.LightFactory(1)); err != nil {
		t.Fatal(err)
	}
	var reports atomic.Uint64
	pool.OnReport(func(string, wire.ErrorReport) { reports.Add(1) })
	in := func() event.Event {
		return event.Event{Kind: event.Input, Name: "set", Source: "t"}.With("x", 0)
	}
	// Two deviating comparisons cross the tolerance; the episode latches.
	for i := 0; i < 4; i++ {
		if err := pool.Dispatch("dev", in()); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := reports.Load(); got != 1 {
		t.Fatalf("reports before reset = %d, want 1 (latched episode)", got)
	}
	if found, err := pool.ResetDevice("dev"); err != nil || !found {
		t.Fatalf("reset: found=%v err=%v", found, err)
	}
	for i := 0; i < 4; i++ {
		if err := pool.Dispatch("dev", in()); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := reports.Load(); got != 2 {
		t.Fatalf("reports after reset = %d, want 2 (fresh episode)", got)
	}
	if found, err := pool.ResetDevice("ghost"); err != nil || found {
		t.Fatalf("reset ghost: found=%v err=%v", found, err)
	}
}
