package fleet

import (
	"reflect"
	"testing"

	"trader/internal/event"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

func discardSink(wire.Message) error { return nil }

// streamLight pushes n matched set/out pairs through a light remote device,
// advancing its virtual clock 10ms per pair.
func streamLight(t *testing.T, p *Pool, id string, n int, from sim.Time) sim.Time {
	t.Helper()
	at := from
	for i := 0; i < n; i++ {
		at += 10 * sim.Millisecond
		v := float64(i % 5)
		in := event.Event{Kind: event.Input, Name: "set", Source: id, At: at}.With("x", v)
		out := event.Event{Kind: event.Output, Name: "out", Source: id, At: at}.With("x", v)
		if err := p.Dispatch(id, in); err != nil {
			t.Fatal(err)
		}
		if err := p.Dispatch(id, out); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	return at
}

// A handoff captures and removes atomically, and restoring the checkpoint
// into another pool reproduces the monitor state byte-for-byte — the
// migration contract the federation tier is built on.
func TestHandoffDeviceMovesStateExactly(t *testing.T) {
	src := NewPool(Options{Shards: 2})
	defer src.Stop()
	dst := NewPool(Options{Shards: 3}) // different shard count: RangeOf reroutes
	defer dst.Stop()
	factory := LightMonitorFactory()
	id := DeviceID(7)
	if err := src.AddRemoteDevice(id, factory, discardSink); err != nil {
		t.Fatal(err)
	}
	at := streamLight(t, src, id, 40, 0)

	before, err := src.CaptureDevice(id)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := src.HandoffDevice(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, cp) {
		t.Fatalf("handoff capture diverged from plain capture:\n%+v\n%+v", before, cp)
	}
	if n := src.Rollup().Devices; n != 0 {
		t.Fatalf("source still has %d devices after handoff", n)
	}
	// Frames arriving after the barrier are visibly dropped, not misrouted.
	if err := src.Dispatch(id, event.Event{Kind: event.Input, Name: "set", At: at + 1}); err != nil {
		t.Fatal(err)
	}
	if err := src.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := src.Rollup().Dropped; d != 1 {
		t.Fatalf("post-handoff frame: Dropped = %d, want 1", d)
	}

	if err := dst.RestoreHandoff(id, cp, factory); err != nil {
		t.Fatal(err)
	}
	after, err := dst.CaptureDevice(id)
	if err != nil {
		t.Fatal(err)
	}
	// The owning shard index legitimately differs between pools; everything
	// the monitor is made of must not.
	before.Shard, after.Shard = 0, 0
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("restored state differs:\n src: %+v\n dst: %+v", before, after)
	}
	// The restored device is live: it keeps monitoring where it left off.
	streamLight(t, dst, id, 5, at)
	ro := dst.Rollup()
	if ro.Monitor.OutputsSeen != 45 {
		t.Fatalf("destination outputs seen = %d, want 45 (40 migrated + 5 live)", ro.Monitor.OutputsSeen)
	}
}

// A quarantined device stays quarantined across a handoff.
func TestHandoffPreservesQuarantine(t *testing.T) {
	src := NewPool(Options{Shards: 1})
	defer src.Stop()
	dst := NewPool(Options{Shards: 1})
	defer dst.Stop()
	factory := LightMonitorFactory()
	id := DeviceID(3)
	if err := src.AddRemoteDevice(id, factory, discardSink); err != nil {
		t.Fatal(err)
	}
	if _, err := src.QuarantineDevice(id); err != nil {
		t.Fatal(err)
	}
	cp, err := src.HandoffDevice(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreHandoff(id, cp, factory); err != nil {
		t.Fatal(err)
	}
	q, err := dst.Quarantined(id)
	if err != nil || !q {
		t.Fatalf("Quarantined = %v, %v; want true", q, err)
	}
}

// Handoff records journaled write-ahead replay to the same ownership: a
// departure removes the device, an arrival rebuilds it with the handed-over
// state, an adopted baseline folds a dead peer's counters into the rollup.
func TestReplayHandoffRecords(t *testing.T) {
	// Live history: a device streams on this edge, is handed off elsewhere,
	// and a second device arrives by handoff; the edge also adopts a dead
	// peer's pool counters.
	live := NewPool(Options{Shards: 2})
	defer live.Stop()
	factory := LightMonitorFactory()
	leaving, arriving := DeviceID(1), DeviceID(2)
	if err := live.AddRemoteDevice(leaving, factory, discardSink); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	appendMsg := func(m wire.Message) {
		t.Helper()
		if err := jw.Append(m); err != nil {
			t.Fatal(err)
		}
	}

	// The leaving device's admitted frames, then its departure record.
	at := sim.Time(0)
	for i := 0; i < 10; i++ {
		at += 10 * sim.Millisecond
		in := event.Event{Kind: event.Input, Name: "set", Source: leaving, At: at}.With("x", 1)
		appendMsg(wire.Message{Type: wire.TypeInput, SUO: leaving, Event: &in, At: at})
		if err := live.Dispatch(leaving, in); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Sync(); err != nil {
		t.Fatal(err)
	}
	outCp, err := live.HandoffDevice(leaving)
	if err != nil {
		t.Fatal(err)
	}
	appendMsg(wire.Message{Type: wire.TypeHandoff, SUO: leaving, At: outCp.At,
		Handoff: &wire.HandoffRecord{From: "edge-0", To: "edge-1", Out: true}})

	// The arriving device: its handoff-in record carries its checkpoint.
	srcPool := NewPool(Options{Shards: 1})
	if err := srcPool.AddRemoteDevice(arriving, factory, discardSink); err != nil {
		t.Fatal(err)
	}
	streamLight(t, srcPool, arriving, 20, 0)
	arrCp, err := srcPool.HandoffDevice(arriving)
	if err != nil {
		t.Fatal(err)
	}
	srcPool.Stop()
	appendMsg(wire.Message{Type: wire.TypeHandoff, SUO: arriving, At: arrCp.At,
		Handoff:    &wire.HandoffRecord{From: "edge-1", To: "edge-0"},
		Checkpoint: arrCp})
	if err := live.RestoreHandoff(arriving, arrCp, factory); err != nil {
		t.Fatal(err)
	}

	// A dead peer's pool counters, adopted as a baseline.
	peer := Stats{Dispatched: 123, Reports: 4, ShedObservations: 7}
	appendMsg(AdoptBaselineRecord("edge-2", "edge-0", peer))
	live.AdoptBaseline("edge-2", AdoptBaselineRecord("edge-2", "edge-0", peer).Checkpoint.Counters)
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay must converge to the live pool's exact rollup.
	r, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	replayed := NewPool(Options{Shards: 2})
	defer replayed.Stop()
	st, err := replayed.Replay(r, factory)
	if err != nil {
		t.Fatal(err)
	}
	if st.Handoffs != 3 {
		t.Fatalf("replayed %d handoff records, want 3", st.Handoffs)
	}
	got, want := replayed.Rollup(), live.Rollup()
	if got.Devices != 1 || want.Devices != 1 {
		t.Fatalf("devices: got %d, live %d, want 1 each", got.Devices, want.Devices)
	}
	if got.Monitor != want.Monitor {
		t.Fatalf("monitor rollup diverged:\n got: %+v\nwant: %+v", got.Monitor, want.Monitor)
	}
	if got.ShedObservations != want.ShedObservations || got.Reports-want.Reports != 0 {
		t.Fatalf("baseline counters diverged: got %+v want %+v", got, want)
	}
	// The adopted baseline is additive and keyed by source.
	if got.Dispatched < peer.Dispatched {
		t.Fatalf("adopted dispatched baseline missing: %d < %d", got.Dispatched, peer.Dispatched)
	}
}
