package fleet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/wire"
)

// startServer spins a pool + ingestion server on a Unix socket and returns
// the server and its dialable address. Everything shuts down with the test.
func startServer(t *testing.T, mutate func(*Server)) (*Server, string) {
	t.Helper()
	pool := NewPool(Options{Shards: 2})
	t.Cleanup(pool.Stop)
	srv := &Server{Pool: pool, Factory: LightMonitorFactory(), Logf: t.Logf}
	if mutate != nil {
		mutate(srv)
	}
	addr := "unix:" + filepath.Join(t.TempDir(), "ingest.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); ln.Close() })
	go srv.Serve(ln)
	return srv, addr
}

// eventually polls cond for up to 5s — connection teardown and shard
// commands are asynchronous.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// outEvent is an observation the LightMonitorFactory spec model compares:
// model variable "x" stays 0, so any |x| > 0.25 deviates.
func outEvent(x float64, atMs int64) event.Event {
	at := sim.Time(atMs) * sim.Millisecond
	return event.Event{Kind: event.Output, Name: "out", Source: "suo", At: at}.With("x", x)
}

func TestServerIngestDetectDisconnectReconnect(t *testing.T) {
	srv, addr := startServer(t, nil)

	wc, err := wire.Dial(addr, "tv-1", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	eventually(t, "registration", func() bool { return srv.Pool.Size() == 1 })

	// Deviating observations must come back as a TypeError frame (the
	// comparator tolerates one deviation, so send two in a row).
	for i := int64(1); i <= 2; i++ {
		if err := wc.SendEvent("tv-1", outEvent(5, 10*i)); err != nil {
			t.Fatal(err)
		}
	}
	msg, err := wc.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != wire.TypeError || msg.Error == nil || msg.Error.Actual != 5 {
		t.Fatalf("want deviation error frame, got %+v", msg)
	}
	eventually(t, "frame accounting", func() bool { return srv.Stats().Frames == 2 })

	// Disconnect mid-stream: the device leaves the pool and its shard slot
	// frees up, so the same ID can reconnect.
	wc.Close()
	eventually(t, "removal", func() bool { return srv.Pool.Size() == 0 })

	wc2, err := wire.Dial(addr, "tv-1", wire.CodecJSON)
	if err != nil {
		t.Fatalf("reconnect with same ID: %v", err)
	}
	defer wc2.Close()
	eventually(t, "re-registration", func() bool { return srv.Pool.Size() == 1 })
	st := srv.Stats()
	if st.Accepted != 2 || st.Disconnected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerGarbageFrameClosesOnlyOffender(t *testing.T) {
	srv, addr := startServer(t, nil)

	healthy, err := wire.Dial(addr, "good", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	network, address, _ := wire.SplitAddr(addr)
	raw, err := net.Dial(network, address)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	bad := wire.NewConn(raw)
	if _, err := bad.Handshake("bad", wire.CodecJSON); err != nil {
		t.Fatal(err)
	}
	eventually(t, "both registered", func() bool { return srv.Pool.Size() == 2 })

	// A framed payload that is not valid JSON: the offender dies...
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 3)
	raw.Write(hdr[:])
	raw.Write([]byte("{{{"))
	eventually(t, "offender removed", func() bool { return srv.Pool.Size() == 1 })
	if _, err := io.ReadAll(raw); err != nil && err != io.EOF {
		t.Logf("offender conn: %v", err) // closed either way
	}

	// ...and the daemon keeps serving the healthy connection.
	if err := healthy.Encode(wire.Message{Type: wire.TypeHeartbeat, At: 7}); err != nil {
		t.Fatal(err)
	}
	msg, err := healthy.Decode()
	if err != nil || msg.Type != wire.TypeHeartbeat || msg.At != 7 {
		t.Fatalf("heartbeat echo: %+v, %v", msg, err)
	}
	if err := healthy.SendEvent("good", outEvent(0.1, 20)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "healthy still dispatching", func() bool {
		ro := srv.Pool.Rollup()
		return ro.Dispatched >= 1 && ro.Devices == 1
	})
}

func TestServerOversizedFrameClosesOnlyOffender(t *testing.T) {
	srv, addr := startServer(t, nil)
	network, address, _ := wire.SplitAddr(addr)
	raw, err := net.Dial(network, address)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	if _, err := wc.Handshake("huge", ""); err != nil {
		t.Fatal(err)
	}
	eventually(t, "registered", func() bool { return srv.Pool.Size() == 1 })

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], wire.MaxFrame+1)
	raw.Write(hdr[:])
	eventually(t, "offender removed", func() bool { return srv.Pool.Size() == 0 })
	eventually(t, "disconnect counted", func() bool { return srv.Stats().Disconnected == 1 })
}

func TestServerRejectsDuplicateAndAnonymousIDs(t *testing.T) {
	srv, addr := startServer(t, nil)
	first, err := wire.Dial(addr, "twin", "")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	eventually(t, "registered", func() bool { return srv.Pool.Size() == 1 })

	// Second connection with the same ID: the rejection IS the handshake
	// reply, so Dial itself fails and tells the client why.
	dup, err := wire.Dial(addr, "twin", "")
	if err == nil {
		dup.Close()
		t.Fatal("duplicate ID should fail the handshake")
	}
	if !strings.Contains(err.Error(), "already connected") {
		t.Fatalf("duplicate ID error = %v, want the reason", err)
	}

	anon, err := wire.Dial(addr, "", "")
	if err == nil {
		anon.Close()
		t.Fatal("anonymous hello should fail the handshake")
	}
	if !strings.Contains(err.Error(), "no SUO device ID") {
		t.Fatalf("anonymous hello error = %v, want the reason", err)
	}
	eventually(t, "rejections counted", func() bool { return srv.Stats().Rejected == 2 })
	if srv.Pool.Size() != 1 {
		t.Fatalf("pool size = %d, want 1", srv.Pool.Size())
	}
}

func TestServerHelloTimeout(t *testing.T) {
	srv, addr := startServer(t, func(s *Server) { s.HelloTimeout = 30 * time.Millisecond })
	network, address, _ := wire.SplitAddr(addr)
	raw, err := net.Dial(network, address)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Say nothing: the server must drop us instead of leaking the conn.
	eventually(t, "mute connection rejected", func() bool { return srv.Stats().Rejected == 1 })
	if srv.Pool.Size() != 0 {
		t.Fatalf("pool size = %d, want 0", srv.Pool.Size())
	}
}

// A remote SUO that goes quiet but keeps heartbeating must still trip its
// monitor's MaxSilence deadline: the heartbeat's At advances the device's
// virtual clock, firing the silence sweep.
func TestServerHeartbeatAdvancesClockForSilenceDetection(t *testing.T) {
	factory := func(id string, seed int64) (*sim.Kernel, *core.Monitor, error) {
		k := sim.NewKernel(seed)
		r := statemachine.NewRegion("dev")
		r.Add(&statemachine.State{Name: "run", Entry: func(c *statemachine.Context) { c.Set("x", 0) }})
		model := statemachine.MustModel("dev-"+id, k, r)
		mon, err := core.NewMonitor(k, model, core.Configuration{Observables: []core.Observable{
			{Name: "x", EventName: "out", ValueName: "x", ModelVar: "x",
				Threshold: 0.25, Tolerance: 1, MaxSilence: 100 * sim.Millisecond},
		}})
		if err != nil {
			return nil, nil, err
		}
		if err := mon.Start(); err != nil {
			return nil, nil, err
		}
		return k, mon, nil
	}
	srv, addr := startServer(t, func(s *Server) { s.Factory = factory })
	wc, err := wire.Dial(addr, "quiet", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eventually(t, "registered", func() bool { return srv.Pool.Size() == 1 })

	// One healthy observation, then silence — only heartbeats carry time.
	if err := wc.SendEvent("quiet", outEvent(0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "quiet", At: 2 * sim.Second}); err != nil {
		t.Fatal(err)
	}
	var sawSilence bool
	for !sawSilence {
		msg, err := wc.Decode()
		if err != nil {
			t.Fatalf("connection ended before silence report: %v", err)
		}
		if msg.Type == wire.TypeError && msg.Error != nil && msg.Error.Detector == "silence" {
			sawSilence = true
		}
		if msg.Type == wire.TypeHeartbeat {
			break // flush barrier: any silence report would have preceded it
		}
	}
	if !sawSilence {
		t.Fatal("silence deadline never reported despite heartbeats carrying time")
	}
}

// When the pool is gone (daemon draining) the heartbeat echo must NOT be
// sent — an echo is a promise that all prior frames were monitored.
func TestServerNoFalseEchoAfterPoolStop(t *testing.T) {
	srv, addr := startServer(t, nil)
	wc, err := wire.Dial(addr, "late", wire.CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eventually(t, "registered", func() bool { return srv.Pool.Size() == 1 })

	srv.Pool.Stop()
	if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "late", At: sim.Second}); err != nil {
		t.Fatal(err)
	}
	for {
		msg, err := wc.Decode()
		if err != nil {
			break // connection dropped: correct
		}
		if msg.Type == wire.TypeHeartbeat {
			t.Fatal("heartbeat echoed after pool stop — false drain signal")
		}
	}
}

// A frame carrying a runaway timestamp (up to MaxInt64) must not wedge its
// shard replaying years of virtual-time monitor timers: the advance window
// rejects it and closes only the offending connection, preserving the
// "a stalled client cannot stall a shard" guarantee.
func TestServerRejectsRunawayTimeAdvance(t *testing.T) {
	srv, addr := startServer(t, nil)

	healthy, err := wire.Dial(addr, "steady", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	bomb, err := wire.Dial(addr, "bomb", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer bomb.Close()
	eventually(t, "both registered", func() bool { return srv.Pool.Size() == 2 })

	// Heartbeat path: a hostile At, one frame, would otherwise be ~10^11
	// repeater steps on the shard goroutine.
	if err := bomb.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "bomb", At: sim.Time(math.MaxInt64)}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "offender removed", func() bool { return srv.Pool.Size() == 1 })
	msg, err := bomb.Decode()
	if err == nil && (msg.Type != wire.TypeError || msg.Error == nil) {
		t.Fatalf("offender should see an error frame (or a close), got %+v", msg)
	}

	// Observation path: the event's own timestamp is vetted the same way.
	bomb2, err := wire.Dial(addr, "bomb2", wire.CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	defer bomb2.Close()
	eventually(t, "second offender registered", func() bool { return srv.Pool.Size() == 2 })
	ev := event.Event{Kind: event.Output, Name: "out", Source: "suo", At: sim.Time(math.MaxInt64)}
	if err := bomb2.SendEvent("bomb2", ev); err != nil {
		t.Fatal(err)
	}
	eventually(t, "second offender removed", func() bool { return srv.Pool.Size() == 1 })

	// The shard keeps serving the healthy device: in-window advances and
	// the flush barrier still work.
	if err := healthy.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "steady", At: 2 * sim.Second}); err != nil {
		t.Fatal(err)
	}
	msg, err = healthy.Decode()
	if err != nil || msg.Type != wire.TypeHeartbeat || msg.At != 2*sim.Second {
		t.Fatalf("healthy heartbeat echo: %+v, %v", msg, err)
	}
}

// An operator-supplied huge MaxAdvance (effectively disabling the bound)
// must not overflow the window arithmetic and start rejecting well-behaved
// frames once the clock has advanced.
func TestServerHugeMaxAdvanceDoesNotOverflow(t *testing.T) {
	srv, addr := startServer(t, func(s *Server) { s.MaxAdvance = sim.Time(math.MaxInt64) })
	wc, err := wire.Dial(addr, "wide", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eventually(t, "registered", func() bool { return srv.Pool.Size() == 1 })

	for _, at := range []sim.Time{sim.Second, 5 * sim.Second} {
		if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: "wide", At: at}); err != nil {
			t.Fatal(err)
		}
		msg, err := wc.Decode()
		if err != nil || msg.Type != wire.TypeHeartbeat || msg.At != at {
			t.Fatalf("heartbeat %s: got %+v, %v", at, msg, err)
		}
	}
}

// tempErr mimics a transient accept failure (EMFILE under load).
type tempErr struct{}

func (tempErr) Error() string   { return "accept: too many open files" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

// flakyListener fails its first Accept with a temporary error.
type flakyListener struct {
	net.Listener
	failed atomic.Bool
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.failed.CompareAndSwap(false, true) {
		return nil, tempErr{}
	}
	return l.Listener.Accept()
}

// A transient accept failure must not end Serve — that would take down the
// whole ingestion daemon and every connected device. Serve backs off and
// keeps accepting.
func TestServeRetriesTemporaryAcceptErrors(t *testing.T) {
	pool := NewPool(Options{Shards: 1})
	t.Cleanup(pool.Stop)
	srv := &Server{Pool: pool, Factory: LightMonitorFactory(), Logf: t.Logf}
	addr := "unix:" + filepath.Join(t.TempDir(), "flaky.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); ln.Close() })
	done := make(chan error, 1)
	go func() { done <- srv.Serve(&flakyListener{Listener: ln}) }()

	// The first Accept fails; this connection only succeeds if Serve retried.
	wc, err := wire.Dial(addr, "survivor", "")
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eventually(t, "registration after transient accept error", func() bool { return srv.Pool.Size() == 1 })
	select {
	case err := <-done:
		t.Fatalf("Serve returned on a temporary accept error: %v", err)
	default:
	}
}

func TestServerControlPushAndClose(t *testing.T) {
	srv, addr := startServer(t, nil)
	wc, err := wire.Dial(addr, "tv-9", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eventually(t, "registered", func() bool { return srv.Pool.Size() == 1 })

	if err := srv.Control("tv-9", wire.CtrlRecover); err != nil {
		t.Fatal(err)
	}
	msg, err := wc.Decode()
	if err != nil || msg.Type != wire.TypeControl || msg.Control != wire.CtrlRecover {
		t.Fatalf("control frame: %+v, %v", msg, err)
	}
	if err := srv.Control("ghost", wire.CtrlStop); err == nil {
		t.Fatal("control to unknown device should error")
	}

	// Close pushes a stop control down the connection, then tears it down.
	srv.Close()
	sawStop := false
	for {
		msg, err := wc.Decode()
		if err != nil {
			break
		}
		if msg.Type == wire.TypeControl && msg.Control == wire.CtrlStop {
			sawStop = true
		}
	}
	if !sawStop {
		t.Fatal("Close should push CtrlStop before closing connections")
	}
	eventually(t, "all devices removed", func() bool { return srv.Pool.Size() == 0 })
}

// Server.Disconnect (the quarantine rung's final act) closes a registered
// device's connection and unwinds it like any client-initiated disconnect.
func TestServerDisconnect(t *testing.T) {
	srv, addr := startServer(t, nil)
	wc, err := wire.Dial(addr, "q-1", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eventually(t, "registered", func() bool { return srv.Pool.Size() == 1 })
	if err := srv.Disconnect("q-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Decode(); err == nil {
		t.Fatal("client connection should be closed after Disconnect")
	}
	eventually(t, "device removed", func() bool { return srv.Pool.Size() == 0 })
	if err := srv.Disconnect("q-1"); err == nil {
		t.Fatal("Disconnect of an unknown device should error")
	}
	if err := srv.Control("q-1", wire.CtrlReset); err == nil {
		t.Fatal("Control after Disconnect should error")
	}
}

// The Close broadcast and controller pushes share conn.send with the read
// loop's teardown. A push racing a device's disconnect — client-initiated
// or Server.Disconnect — must return an error, never write into a closed
// connection or panic. Run under -race in the standard gate.
func TestControlPushRacesDisconnect(t *testing.T) {
	srv, addr := startServer(t, nil)
	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("racer-%02d", i)
		wc, err := wire.Dial(addr, id, wire.CodecBinary)
		if err != nil {
			t.Fatal(err)
		}
		eventually(t, "registered", func() bool { return srv.Pool.Size() == 1 })
		// Drain pushes so the client's socket buffer never stalls the test.
		go func() {
			for {
				if _, err := wc.Decode(); err != nil {
					return
				}
			}
		}()
		pushed := make(chan error, 1)
		go func() {
			for {
				if err := srv.Control(id, wire.CtrlReset); err != nil {
					pushed <- err
					return
				}
			}
		}()
		// Alternate who kills the connection while pushes are in flight.
		if i%2 == 0 {
			wc.Close()
		} else {
			_ = srv.Disconnect(id)
			wc.Close()
		}
		err = <-pushed
		if err == nil {
			t.Fatal("push against a closed connection returned nil")
		}
		eventually(t, "device removed", func() bool { return srv.Pool.Size() == 0 })
	}
}

// TypeAck frames route to Server.OnAck tagged with the handshaken device
// ID, and their client-supplied At is vetted by the same advance window as
// every other frame.
func TestServerRoutesAcks(t *testing.T) {
	type ack struct {
		id  string
		cmd wire.ControlCommand
		at  sim.Time
	}
	acks := make(chan ack, 4)
	srv, addr := startServer(t, func(s *Server) {
		s.MaxAdvance = sim.Second
		s.OnAck = func(id string, m wire.Message) {
			acks <- ack{id: id, cmd: m.Control, at: m.At}
		}
	})
	wc, err := wire.Dial(addr, "acker", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eventually(t, "registered", func() bool { return srv.Pool.Size() == 1 })
	if err := wc.Encode(wire.Ack("spoofed-id", wire.CtrlRestart, 5*sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	got := <-acks
	if got.id != "acker" || got.cmd != wire.CtrlRestart || got.at != 5*sim.Millisecond {
		t.Fatalf("ack routed as %+v, want handshaken ID acker / restart / 5ms", got)
	}
	// A runaway ack timestamp is a protocol violation like any other.
	if err := wc.Encode(wire.Ack("acker", wire.CtrlRestart, 2*sim.Second)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "offender removed", func() bool { return srv.Pool.Size() == 0 })
	select {
	case a := <-acks:
		t.Fatalf("out-of-window ack was still routed: %+v", a)
	default:
	}
}

// The diagnosis pull path: RequestSnapshot pushes a TypeSnapshotReq down
// the device's connection; the answering TypeSnapshot routes to OnSnapshot
// under the handshaken ID (never the spoofable SUO field), with its client
// timestamp vetted by the advance window like every other frame.
func TestServerSnapshotPullAndRouting(t *testing.T) {
	type evidence struct {
		id   string
		snap *wire.Snapshot
		at   sim.Time
	}
	snaps := make(chan evidence, 4)
	srv, addr := startServer(t, func(s *Server) {
		s.MaxAdvance = sim.Second
		s.OnSnapshot = func(id string, m wire.Message) {
			snaps <- evidence{id: id, snap: m.Snapshot, at: m.At}
		}
	})
	if err := srv.RequestSnapshot("nobody"); err == nil {
		t.Fatal("pulling an unknown device should fail")
	}
	wc, err := wire.Dial(addr, "spectral", wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eventually(t, "registered", func() bool { return srv.Pool.Size() == 1 })
	if err := srv.RequestSnapshot("spectral"); err != nil {
		t.Fatal(err)
	}
	req, err := wc.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if req.Type != wire.TypeSnapshotReq || req.SUO != "spectral" {
		t.Fatalf("client received %+v, want a snapshot_req", req)
	}
	answer := &wire.Snapshot{Blocks: 128, Events: 3,
		Windows: []wire.SpectrumWindow{{Seq: 1, At: 5 * sim.Millisecond, Words: []uint64{9, 0}}}}
	if err := wc.Encode(wire.Message{Type: wire.TypeSnapshot, SUO: "spoofed",
		At: 7 * sim.Millisecond, Snapshot: answer}); err != nil {
		t.Fatal(err)
	}
	got := <-snaps
	if got.id != "spectral" || got.at != 7*sim.Millisecond {
		t.Fatalf("snapshot routed as %q at %s, want handshaken ID spectral at 7ms", got.id, got.at)
	}
	if got.snap == nil || got.snap.Blocks != 128 || len(got.snap.Windows) != 1 || got.snap.Windows[0].Words[0] != 9 {
		t.Fatalf("snapshot payload mangled: %+v", got.snap)
	}
	// A runaway snapshot timestamp is a protocol violation like any other.
	if err := wc.Encode(wire.Message{Type: wire.TypeSnapshot, SUO: "spectral",
		At: 5 * sim.Second, Snapshot: answer}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "offender removed", func() bool { return srv.Pool.Size() == 0 })
	select {
	case s := <-snaps:
		t.Fatalf("out-of-window snapshot was still routed: %+v", s)
	default:
	}
}

// HealthyDevices lists exactly the non-quarantined fleet, sorted — the
// diagnosis engine's cohort source.
func TestHealthyDevices(t *testing.T) {
	pool := NewPool(Options{Shards: 2})
	defer pool.Stop()
	for _, id := range []string{"c", "a", "b"} {
		if err := pool.AddDevice(id, 1, LightFactory(0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := pool.HealthyDevices(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("healthy = %v", got)
	}
	if _, err := pool.QuarantineDevice("b"); err != nil {
		t.Fatal(err)
	}
	if got := pool.HealthyDevices(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("healthy after quarantine = %v", got)
	}
}
