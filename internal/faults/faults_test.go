package faults

import (
	"testing"

	"trader/internal/sim"
)

func TestScheduleActivateDeactivate(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k)
	var trace []string
	inj.OnKind(Overload, func(f Fault, on bool) {
		if on {
			trace = append(trace, "on@"+k.Now().String())
		} else {
			trace = append(trace, "off@"+k.Now().String())
		}
	})
	inj.Schedule(Fault{ID: "f1", Kind: Overload, Target: "video", At: 100, Duration: 50, Param: 3})
	k.Run(99)
	if inj.Active("f1") {
		t.Fatal("fault active too early")
	}
	k.Run(100)
	if !inj.Active("f1") {
		t.Fatal("fault should be active at 100")
	}
	if !inj.AnyActive(Overload, "video") || !inj.AnyActive(Overload, "") {
		t.Fatal("AnyActive should see it")
	}
	if inj.AnyActive(Overload, "audio") {
		t.Fatal("wrong target matched")
	}
	k.Run(150)
	if inj.Active("f1") {
		t.Fatal("fault should have expired at 150")
	}
	if len(trace) != 2 || trace[0] != "on@100ns" || trace[1] != "off@150ns" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestPermanentFaultAndRepair(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k)
	offs := 0
	inj.OnKind(TaskCrash, func(f Fault, on bool) {
		if !on {
			offs++
		}
	})
	inj.Schedule(Fault{ID: "crash", Kind: TaskCrash, Target: "txt", At: 10})
	k.Run(1000)
	if !inj.Active("crash") {
		t.Fatal("permanent fault should stay active")
	}
	inj.Repair("crash")
	if inj.Active("crash") {
		t.Fatal("repair should deactivate")
	}
	inj.Repair("crash") // idempotent
	if offs != 1 {
		t.Fatalf("off handler ran %d times, want 1", offs)
	}
}

func TestActiveAtHistory(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k)
	inj.Schedule(Fault{ID: "w", Kind: SyncLoss, At: 100, Duration: 100})
	k.RunAll()
	cases := []struct {
		t    sim.Time
		want bool
	}{{50, false}, {100, true}, {150, true}, {199, true}, {200, false}, {500, false}}
	for _, c := range cases {
		if got := inj.ActiveAt("w", c.t); got != c.want {
			t.Errorf("ActiveAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	h := inj.History()
	if len(h) != 1 || h[0].From != 100 || h[0].To != 200 {
		t.Fatalf("history = %+v", h)
	}
}

func TestMultipleHandlersAndFaultsSorted(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k)
	n := 0
	inj.OnKind(BadInput, func(Fault, bool) { n++ })
	inj.OnKind(BadInput, func(Fault, bool) { n += 10 })
	inj.Schedule(Fault{ID: "b", Kind: BadInput, At: 5, Duration: 5})
	inj.Schedule(Fault{ID: "a", Kind: BadInput, At: 7, Duration: 5})
	k.RunAll()
	if n != 44 {
		t.Fatalf("n = %d, want 44 (2 faults × on+off × 11)", n)
	}
	fs := inj.Faults()
	if len(fs) != 2 || fs[0].ID != "a" || fs[1].ID != "b" {
		t.Fatalf("Faults = %v", fs)
	}
	if fs[0].String() == "" {
		t.Fatal("String should render")
	}
}

func TestSchedulePanics(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty id", func() { inj.Schedule(Fault{Kind: Overload}) })
	inj.Schedule(Fault{ID: "x", Kind: Overload})
	mustPanic("dup id", func() { inj.Schedule(Fault{ID: "x", Kind: Overload}) })
}

func TestOverlappingWindowsSameFaultKind(t *testing.T) {
	k := sim.NewKernel(1)
	inj := NewInjector(k)
	inj.Schedule(Fault{ID: "o1", Kind: Overload, Target: "v", At: 0, Duration: 100})
	inj.Schedule(Fault{ID: "o2", Kind: Overload, Target: "v", At: 50, Duration: 100})
	k.Run(120)
	// o1 expired, o2 still active.
	if inj.Active("o1") || !inj.Active("o2") {
		t.Fatal("window bookkeeping wrong")
	}
	if !inj.AnyActive(Overload, "v") {
		t.Fatal("AnyActive should still hold via o2")
	}
}
