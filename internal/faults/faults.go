// Package faults provides the fault catalogue and deterministic injection
// scheduling shared by the simulated systems under observation. The paper's
// fault taxonomy (after Avizienis et al.): a *fault* is the adjudged cause of
// an *error* (bad state), which may lead to a user-visible *failure*. This
// package models faults; the SUOs register handlers that turn an activated
// fault into erroneous state; the awareness framework detects the resulting
// errors; experiments score detections against this package's ground truth.
package faults

import (
	"fmt"
	"sort"

	"trader/internal/sim"
)

// Kind classifies a fault.
type Kind string

// The fault classes exercised by the paper's case studies.
const (
	// ModeCorruption flips a component's internal mode without the rest of
	// the system noticing (the teletext mode-inconsistency case, Sect. 4.3).
	ModeCorruption Kind = "mode-corruption"
	// SyncLoss makes a producer/consumer pair lose synchronization
	// (teletext acquisition vs display, Sect. 4.3).
	SyncLoss Kind = "sync-loss"
	// ValueCorruption corrupts an observable value (wrong memory value).
	ValueCorruption Kind = "value-corruption"
	// TaskCrash kills a task/component (needs recovery, Sect. 4.5).
	TaskCrash Kind = "task-crash"
	// Overload inflates execution demand (bad input signal needing
	// intensive error correction, Sect. 4.5).
	Overload Kind = "overload"
	// BadInput injects malformed input streams the product must tolerate
	// ("deviations from coding standards or bad image quality").
	BadInput Kind = "bad-input"
	// Deadlock wedges two components waiting on each other (Sect. 4.3
	// hardware deadlock detection).
	Deadlock Kind = "deadlock"
	// ProgramDefect marks a software bug at a specific code block, the
	// ground truth for spectrum-based diagnosis (Sect. 4.4).
	ProgramDefect Kind = "program-defect"
)

// Fault is one scheduled fault.
type Fault struct {
	ID     string
	Kind   Kind
	Target string   // component, task, or block the fault applies to
	At     sim.Time // activation time
	// Duration of the active window; 0 means permanent (until externally
	// repaired via Injector.Repair).
	Duration sim.Time
	// Param carries a kind-specific magnitude (e.g. overload factor).
	Param float64
}

func (f Fault) String() string {
	return fmt.Sprintf("%s[%s@%s at %s dur %s]", f.ID, f.Kind, f.Target, f.At, f.Duration)
}

// Handler reacts to a fault becoming active (active=true) or inactive.
type Handler func(f Fault, active bool)

// Activation records one ground-truth activation window.
type Activation struct {
	Fault Fault
	From  sim.Time
	To    sim.Time // zero while still active
}

// Injector schedules faults on the kernel and dispatches to handlers.
type Injector struct {
	kernel   *sim.Kernel
	handlers map[Kind][]Handler
	faults   map[string]Fault
	active   map[string]bool
	history  []Activation
}

// NewInjector creates an injector.
func NewInjector(kernel *sim.Kernel) *Injector {
	return &Injector{
		kernel:   kernel,
		handlers: make(map[Kind][]Handler),
		faults:   make(map[string]Fault),
		active:   make(map[string]bool),
	}
}

// OnKind registers a handler for a fault kind. Multiple handlers are allowed
// and run in registration order.
func (i *Injector) OnKind(k Kind, h Handler) { i.handlers[k] = append(i.handlers[k], h) }

// Schedule arms a fault. It panics on duplicate IDs (schedules are static
// experiment inputs; a duplicate is a harness bug).
func (i *Injector) Schedule(f Fault) {
	if f.ID == "" {
		panic("faults: fault needs an ID")
	}
	if _, dup := i.faults[f.ID]; dup {
		panic(fmt.Sprintf("faults: duplicate fault ID %q", f.ID))
	}
	i.faults[f.ID] = f
	i.kernel.ScheduleAt(f.At, func() { i.activate(f) })
}

func (i *Injector) activate(f Fault) {
	if i.active[f.ID] {
		return
	}
	i.active[f.ID] = true
	i.history = append(i.history, Activation{Fault: f, From: i.kernel.Now()})
	for _, h := range i.handlers[f.Kind] {
		h(f, true)
	}
	if f.Duration > 0 {
		i.kernel.Schedule(f.Duration, func() { i.deactivate(f.ID) })
	}
}

func (i *Injector) deactivate(id string) {
	if !i.active[id] {
		return
	}
	f := i.faults[id]
	i.active[id] = false
	for j := len(i.history) - 1; j >= 0; j-- {
		if i.history[j].Fault.ID == id && i.history[j].To == 0 {
			i.history[j].To = i.kernel.Now()
			break
		}
	}
	for _, h := range i.handlers[f.Kind] {
		h(f, false)
	}
}

// Repair deactivates a fault early (recovery fixed the underlying state).
func (i *Injector) Repair(id string) { i.deactivate(id) }

// Active reports whether the fault is currently active.
func (i *Injector) Active(id string) bool { return i.active[id] }

// AnyActive reports whether any fault of kind k targeting target is active.
// Empty target matches any target.
func (i *Injector) AnyActive(k Kind, target string) bool {
	for id, on := range i.active {
		if !on {
			continue
		}
		f := i.faults[id]
		if f.Kind == k && (target == "" || f.Target == target) {
			return true
		}
	}
	return false
}

// ActiveAt reports (from history) whether fault id was active at time t.
// Usable after a run for ground-truth scoring.
func (i *Injector) ActiveAt(id string, t sim.Time) bool {
	for _, a := range i.history {
		if a.Fault.ID != id {
			continue
		}
		if t >= a.From && (a.To == 0 || t < a.To) {
			return true
		}
	}
	return false
}

// History returns all activation windows sorted by start time.
func (i *Injector) History() []Activation {
	out := make([]Activation, len(i.history))
	copy(out, i.history)
	sort.SliceStable(out, func(a, b int) bool { return out[a].From < out[b].From })
	return out
}

// Faults returns the scheduled faults sorted by ID.
func (i *Injector) Faults() []Fault {
	out := make([]Fault, 0, len(i.faults))
	for _, f := range i.faults {
		out = append(out, f)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
