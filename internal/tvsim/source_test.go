package tvsim

import (
	"testing"

	"trader/internal/event"
	"trader/internal/sim"
)

func TestSourceSwitchClosesBroadcastFeatures(t *testing.T) {
	_, tv := newTV(t)
	tv.PressKey(KeyPower)
	tv.PressKey(KeyText)
	if tv.Snapshot()["teletext"] != 1 {
		t.Fatal("setup: teletext on")
	}
	tv.PressKey(KeySource) // → USB
	s := tv.Snapshot()
	if s["source"] != 1 {
		t.Fatalf("source = %v, want USB", s["source"])
	}
	if s["teletext"] != 0 || s["dual"] != 0 {
		t.Fatalf("broadcast features must close on source switch: %v", s)
	}
	if tv.cTuner.Mode() != "bypassed" {
		t.Fatalf("tuner mode = %q", tv.cTuner.Mode())
	}
	// Teletext and dual are refused while on USB.
	tv.PressKey(KeyText)
	tv.PressKey(KeyDual)
	s = tv.Snapshot()
	if s["teletext"] != 0 || s["dual"] != 0 {
		t.Fatalf("teletext/dual must be unavailable on USB: %v", s)
	}
	// Back to tuner: teletext can come back.
	tv.PressKey(KeySource)
	tv.PressKey(KeyText)
	if tv.Snapshot()["teletext"] != 1 {
		t.Fatal("teletext should work again on the tuner")
	}
	if tv.cTuner.Mode() != "tuned" {
		t.Fatalf("tuner mode = %q", tv.cTuner.Mode())
	}
}

func TestPhotoBrowsingWrapsAndChannelsUntouched(t *testing.T) {
	k := sim.NewKernel(1)
	tv := New(k, Config{PhotoCount: 3})
	tv.PressKey(KeyPower)
	tv.PressKey(KeyChUp) // channel 2 (tuner mode)
	tv.PressKey(KeySource)
	// Photo navigation with wrap at PhotoCount=3.
	tv.PressKey(KeyChUp) // photo 2
	tv.PressKey(KeyChUp) // photo 3
	tv.PressKey(KeyChUp) // wrap → 1
	s := tv.Snapshot()
	if s["photo"] != 1 {
		t.Fatalf("photo = %v, want wrap to 1", s["photo"])
	}
	if s["channel"] != 2 {
		t.Fatalf("channel changed while browsing photos: %v", s["channel"])
	}
	tv.PressKey(KeyChDown) // wrap back → 3
	if tv.Snapshot()["photo"] != 3 {
		t.Fatalf("photo = %v, want 3", tv.Snapshot()["photo"])
	}
	// Re-entering USB restarts at photo 1.
	tv.PressKey(KeySource)
	tv.PressKey(KeySource)
	if tv.Snapshot()["photo"] != 1 {
		t.Fatal("photo browser should restart at 1")
	}
}

func TestSourcePersistsAcrossStandby(t *testing.T) {
	_, tv := newTV(t)
	tv.PressKey(KeyPower)
	tv.PressKey(KeySource)
	tv.PressKey(KeyPower) // standby
	tv.PressKey(KeyPower) // back on
	if tv.Snapshot()["source"] != 1 {
		t.Fatal("source is a persistent setting")
	}
	if tv.cTuner.Mode() != "bypassed" {
		t.Fatalf("tuner mode after power cycle = %q", tv.cTuner.Mode())
	}
}

func TestScreenEventCarriesSourceAndPhoto(t *testing.T) {
	_, tv := newTV(t)
	var last event.Event
	tv.Bus().Subscribe("screen", func(e event.Event) { last = e })
	tv.PressKey(KeyPower)
	tv.PressKey(KeySource)
	if v, _ := last.Get("source"); v != 1 {
		t.Fatalf("screen event source = %v", v)
	}
	if v, _ := last.Get("photo"); v != 1 {
		t.Fatalf("screen event photo = %v", v)
	}
}

// The new invariant holds under exploration-style scripts.
func TestSpecModelTeletextNeedsTuner(t *testing.T) {
	m := BuildSpecModel(nil, Config{})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	keys := []Key{KeyPower, KeyText, KeySource, KeyText, KeyChUp, KeySource, KeyText}
	for i, key := range keys {
		ev := event.Event{Kind: event.Input, Name: "key"}.With("key", float64(key))
		if err := m.Dispatch(ev); err != nil {
			t.Fatalf("step %d (%v): %v", i, key, err)
		}
	}
	if m.Var("teletext") != 1 || m.Var("source") != 0 {
		t.Fatalf("final state wrong: teletext=%v source=%v", m.Var("teletext"), m.Var("source"))
	}
}
