package tvsim

import (
	"math/rand"
	"testing"

	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/statemachine"
)

func newTV(t *testing.T) (*sim.Kernel, *TV) {
	t.Helper()
	k := sim.NewKernel(1)
	tv := New(k, Config{})
	return k, tv
}

func TestPowerToggle(t *testing.T) {
	k, tv := newTV(t)
	if tv.Powered() {
		t.Fatal("TV should start in standby")
	}
	tv.PressKey(KeyVolUp) // ignored in standby
	if tv.Snapshot()["volume"] != 20 {
		t.Fatal("keys in standby must be ignored")
	}
	tv.PressKey(KeyPower)
	if !tv.Powered() {
		t.Fatal("power on failed")
	}
	k.Run(100 * sim.Millisecond)
	tv.PressKey(KeyPower)
	if tv.Powered() {
		t.Fatal("power off failed")
	}
}

func TestVolumeAndMute(t *testing.T) {
	_, tv := newTV(t)
	tv.PressKey(KeyPower)
	tv.PressKey(KeyVolUp)
	tv.PressKey(KeyVolUp)
	s := tv.Snapshot()
	if s["volume"] != 30 {
		t.Fatalf("volume = %v, want 30", s["volume"])
	}
	tv.PressKey(KeyMute)
	if tv.Snapshot()["muted"] != 1 {
		t.Fatal("mute failed")
	}
	tv.PressKey(KeyVolDown) // volume change unmutes
	s = tv.Snapshot()
	if s["muted"] != 0 || s["volume"] != 25 {
		t.Fatalf("unmute-on-volume-change failed: %v", s)
	}
	// Bounds
	for i := 0; i < 30; i++ {
		tv.PressKey(KeyVolUp)
	}
	if tv.Snapshot()["volume"] != 100 {
		t.Fatalf("volume above 100: %v", tv.Snapshot()["volume"])
	}
	for i := 0; i < 30; i++ {
		tv.PressKey(KeyVolDown)
	}
	if tv.Snapshot()["volume"] != 0 {
		t.Fatalf("volume below 0: %v", tv.Snapshot()["volume"])
	}
}

func TestChannelZapAndWrap(t *testing.T) {
	_, tv := newTV(t)
	tv.PressKey(KeyPower)
	tv.PressKey(KeyChDown) // 1 → wrap to max
	if got := tv.Snapshot()["channel"]; got != 99 {
		t.Fatalf("channel = %v, want 99", got)
	}
	tv.PressKey(KeyChUp) // wrap back to 1
	if got := tv.Snapshot()["channel"]; got != 1 {
		t.Fatalf("channel = %v, want 1", got)
	}
}

func TestChildLock(t *testing.T) {
	k := sim.NewKernel(1)
	tv := New(k, Config{MaxChannel: 60, LockedAbove: 50})
	tv.PressKey(KeyPower)
	for i := 0; i < 49; i++ {
		tv.PressKey(KeyChUp)
	}
	if got := tv.Snapshot()["channel"]; got != 50 {
		t.Fatalf("channel = %v, want 50", got)
	}
	tv.PressKey(KeyLock)
	tv.PressKey(KeyChUp) // 51 is blocked
	if got := tv.Snapshot()["channel"]; got != 50 {
		t.Fatalf("child lock should block zap to 51, got %v", got)
	}
	tv.PressKey(KeyLock) // unlock
	tv.PressKey(KeyChUp)
	if got := tv.Snapshot()["channel"]; got != 51 {
		t.Fatalf("unlock failed, channel = %v", got)
	}
}

func TestFeatureInteractions(t *testing.T) {
	_, tv := newTV(t)
	tv.PressKey(KeyPower)

	// Teletext forces single screen.
	tv.PressKey(KeyDual)
	if tv.Snapshot()["dual"] != 1 {
		t.Fatal("dual failed")
	}
	tv.PressKey(KeyText)
	s := tv.Snapshot()
	if s["teletext"] != 1 || s["dual"] != 0 {
		t.Fatalf("teletext should force single screen: %v", s)
	}

	// Menu suppresses teletext.
	tv.PressKey(KeyMenu)
	s = tv.Snapshot()
	if s["menu"] != 1 || s["teletext"] != 0 {
		t.Fatalf("menu should suppress teletext: %v", s)
	}

	// Text key ignored while menu is open.
	tv.PressKey(KeyText)
	if tv.Snapshot()["teletext"] != 0 {
		t.Fatal("teletext must stay suppressed under menu")
	}

	// Back closes the menu.
	tv.PressKey(KeyBack)
	if tv.Snapshot()["menu"] != 0 {
		t.Fatal("back should close menu")
	}

	// Dual closes teletext.
	tv.PressKey(KeyText)
	tv.PressKey(KeyDual)
	s = tv.Snapshot()
	if s["teletext"] != 0 || s["dual"] != 1 {
		t.Fatalf("dual should close teletext: %v", s)
	}
}

func TestPowerOffResetsTransients(t *testing.T) {
	_, tv := newTV(t)
	tv.PressKey(KeyPower)
	tv.PressKey(KeyText)
	tv.PressKey(KeyPower)
	tv.PressKey(KeyPower)
	s := tv.Snapshot()
	if s["teletext"] != 0 || s["menu"] != 0 || s["dual"] != 0 {
		t.Fatalf("transient state must reset across standby: %v", s)
	}
}

func TestSleepTimer(t *testing.T) {
	k := sim.NewKernel(1)
	tv := New(k, Config{SleepDuration: sim.Second})
	tv.PressKey(KeyPower)
	tv.PressKey(KeySleep)
	k.Run(990 * sim.Millisecond)
	if !tv.Powered() {
		t.Fatal("too early for sleep")
	}
	k.Run(1010 * sim.Millisecond)
	if tv.Powered() {
		t.Fatal("sleep timer should have powered off")
	}
}

func TestSleepCancelledByPowerCycle(t *testing.T) {
	k := sim.NewKernel(1)
	tv := New(k, Config{SleepDuration: sim.Second})
	tv.PressKey(KeyPower)
	tv.PressKey(KeySleep)
	k.Run(500 * sim.Millisecond)
	tv.PressKey(KeyPower) // off cancels timer
	tv.PressKey(KeyPower) // back on
	k.Run(3 * sim.Second)
	if !tv.Powered() {
		t.Fatal("cancelled sleep timer still fired")
	}
}

func TestSwivelMovesOverTime(t *testing.T) {
	k, tv := newTV(t)
	tv.PressKey(KeyPower)
	tv.PressKey(KeySwivelRight)
	k.Run(k.Now() + 500*sim.Millisecond)
	if got := tv.Snapshot()["angle"]; got != 10 {
		t.Fatalf("angle = %v, want 10", got)
	}
	// Clamp at ±45.
	for i := 0; i < 10; i++ {
		tv.PressKey(KeySwivelRight)
	}
	k.Run(k.Now() + 5*sim.Second)
	if got := tv.Snapshot()["angle"]; got != 45 {
		t.Fatalf("angle = %v, want clamp at 45", got)
	}
}

func TestFramesFlowWithQuality(t *testing.T) {
	k, tv := newTV(t)
	var frames []event.Event
	tv.Bus().Subscribe("frame", func(e event.Event) { frames = append(frames, e) })
	tv.PressKey(KeyPower)
	k.Run(2 * sim.Second)
	if len(frames) < 40 {
		t.Fatalf("frames = %d, want ≥ 40 over 2s at 25fps", len(frames))
	}
	for _, f := range frames {
		if q, _ := f.Get("quality"); q != 1.0 {
			t.Fatalf("fault-free quality = %v, want 1.0", q)
		}
	}
	if tv.FrameMisses() != 0 {
		t.Fatal("no frame misses expected fault-free")
	}
}

func TestOverloadDegradesQuality(t *testing.T) {
	k, tv := newTV(t)
	tv.PressKey(KeyPower)
	tv.Injector().Schedule(faults.Fault{
		ID: "ov", Kind: faults.Overload, Target: "video",
		At: sim.Second, Duration: 2 * sim.Second, Param: 3,
	})
	var lowQ int
	tv.Bus().Subscribe("frame", func(e event.Event) {
		if q, _ := e.Get("quality"); q < 0.9 {
			lowQ++
		}
	})
	k.Run(4 * sim.Second)
	if lowQ == 0 {
		t.Fatal("overload should degrade frame quality")
	}
	if tv.FrameMisses() == 0 {
		t.Fatal("overload should cause deadline misses")
	}
}

func TestBadInputReducesQualityThenRecovers(t *testing.T) {
	k, tv := newTV(t)
	tv.PressKey(KeyPower)
	tv.Injector().Schedule(faults.Fault{
		ID: "bad", Kind: faults.BadInput, Target: "tuner",
		At: sim.Second, Duration: sim.Second, Param: 0.4,
	})
	var qs []float64
	tv.Bus().Subscribe("frame", func(e event.Event) {
		q, _ := e.Get("quality")
		qs = append(qs, q)
	})
	k.Run(3 * sim.Second)
	// Quality must dip during the window and recover after.
	minQ, lastQ := 1.0, qs[len(qs)-1]
	for _, q := range qs {
		if q < minQ {
			minQ = q
		}
	}
	if minQ > 0.5 {
		t.Fatalf("minQ = %v, want dip below 0.5", minQ)
	}
	if lastQ != 1.0 {
		t.Fatalf("lastQ = %v, want recovery to 1.0", lastQ)
	}
}

func TestTeletextSyncLoss(t *testing.T) {
	k, tv := newTV(t)
	tv.PressKey(KeyPower)
	tv.PressKey(KeyText)
	var fresh, stale int
	tv.Bus().Subscribe("teletext", func(e event.Event) {
		if f, _ := e.Get("fresh"); f == 1 {
			fresh++
		} else {
			stale++
		}
	})
	tv.Injector().Schedule(faults.Fault{
		ID: "sync", Kind: faults.SyncLoss, Target: "teletext",
		At: sim.Second, Duration: sim.Second,
	})
	k.Run(3 * sim.Second)
	if fresh == 0 || stale == 0 {
		t.Fatalf("fresh=%d stale=%d, want both during a sync-loss window", fresh, stale)
	}
	// Mode inconsistency while the fault is active: display visible but
	// acquisition searching.
	if tv.cTxtDisp.Mode() != "visible" {
		t.Fatalf("txt-disp mode = %q", tv.cTxtDisp.Mode())
	}
}

func TestValueCorruptionSkewsAudio(t *testing.T) {
	k, tv := newTV(t)
	tv.PressKey(KeyPower)
	var lastVol float64
	tv.Bus().Subscribe("audio", func(e event.Event) {
		lastVol, _ = e.Get("volume")
	})
	tv.PressKey(KeyVolUp) // 25
	if lastVol != 25 {
		t.Fatalf("audible = %v, want 25", lastVol)
	}
	tv.Injector().Schedule(faults.Fault{
		ID: "skew", Kind: faults.ValueCorruption, Target: "audio", At: k.Now(), Param: -15,
	})
	k.Run(k.Now() + 1)
	if lastVol != 10 {
		t.Fatalf("audible = %v, want skewed 10", lastVol)
	}
	// Control state still believes 25 — the error is only observable.
	if tv.Snapshot()["volume"] != 25 {
		t.Fatal("control state should be unaware of the skew")
	}
}

func TestTaskCrashStopsFramesAndRepairRestores(t *testing.T) {
	k, tv := newTV(t)
	tv.PressKey(KeyPower)
	frames := 0
	tv.Bus().Subscribe("frame", func(event.Event) { frames++ })
	tv.Injector().Schedule(faults.Fault{
		ID: "crash", Kind: faults.TaskCrash, Target: "video", At: sim.Second,
	})
	k.Run(2 * sim.Second)
	atCrash := frames
	k.Run(3 * sim.Second)
	if frames != atCrash {
		t.Fatalf("frames kept flowing after crash: %d → %d", atCrash, frames)
	}
	tv.Injector().Repair("crash")
	k.Run(4 * sim.Second)
	if frames <= atCrash {
		t.Fatal("repair should restore frames")
	}
}

func TestMigrateVideo(t *testing.T) {
	k, tv := newTV(t)
	tv.PressKey(KeyPower)
	k.Run(sim.Second)
	if err := tv.MigrateVideo(); err != nil {
		t.Fatal(err)
	}
	base := tv.CPUs()[1].Stats().JobsCompleted
	k.Run(2 * sim.Second)
	if tv.CPUs()[1].Stats().JobsCompleted <= base {
		t.Fatal("video task should run on cpu1 after migration")
	}
}

func TestMigrateVideoNoTarget(t *testing.T) {
	k := sim.NewKernel(1)
	tv := New(k, Config{CPUCount: 1})
	tv.PressKey(KeyPower)
	if err := tv.MigrateVideo(); err == nil {
		t.Fatal("single-CPU migration should fail")
	}
}

func TestKeyString(t *testing.T) {
	if KeyPower.String() != "power" || Key(99).String() != "key(99)" {
		t.Fatal("key names wrong")
	}
	if len(AllKeys()) != int(numKeys) {
		t.Fatal("AllKeys incomplete")
	}
}

// TestModelConformance drives the TV and its specification model with the
// same random key sequences and checks every shared observable matches —
// the model-to-model validation of Sect. 5.
func TestModelConformance(t *testing.T) {
	vars := []string{"power", "volume", "muted", "channel", "teletext", "menu", "dual", "locked", "source", "photo"}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		k := sim.NewKernel(int64(round))
		cfg := Config{SleepDuration: 500 * sim.Millisecond}
		tv := New(k, cfg)
		model := BuildSpecModel(k, cfg)
		if err := model.Start(); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 60; step++ {
			key := Key(rng.Intn(int(numKeys)))
			tv.PressKey(key)
			ev := event.Event{Kind: event.Input, Name: "key"}.With("key", float64(key))
			if err := model.Dispatch(ev); err != nil {
				t.Fatalf("round %d step %d (%v): model: %v", round, step, key, err)
			}
			// Advance time between presses; both sides see timers fire.
			k.Run(k.Now() + sim.Time(rng.Intn(300))*sim.Millisecond)
			snap := tv.Snapshot()
			audible := snap["volume"]
			if snap["muted"] == 1 || snap["power"] == 0 {
				audible = 0
			}
			got := map[string]float64{
				"power": snap["power"], "volume": audible, "muted": snap["muted"],
				"channel": snap["channel"], "teletext": snap["teletext"],
				"menu": snap["menu"], "dual": snap["dual"], "locked": snap["locked"],
				"source": snap["source"], "photo": snap["photo"],
			}
			for _, v := range vars {
				if got[v] != model.Var(v) {
					t.Fatalf("round %d step %d key %v: %s: tv=%v model=%v (tv=%v model config=%v)",
						round, step, key, v, got[v], model.Var(v), snap, model.Config())
				}
			}
		}
	}
}

// TestSpecModelInvariantsByExploration runs E11's check: bounded exploration
// of the spec model finds no invariant violations and no unreachable states.
func TestSpecModelInvariantsByExploration(t *testing.T) {
	model := BuildSpecModel(nil, Config{})
	if err := model.Start(); err != nil {
		t.Fatal(err)
	}
	alphabet := []string{"key"} // events carry payloads; see note below
	_ = alphabet
	// Exploration needs one event name per concrete key value, so wrap:
	// dispatch happens through payload-carrying events. We explore by
	// driving each key as a distinct "key" event via scripts instead, and
	// use Explore on a payload-free mirror for the OSD fragment (covered in
	// statemachine tests). Here we verify invariants hold along directed
	// scripts covering the interaction hot spots.
	scripts := [][]Key{
		{KeyPower, KeyText, KeyMenu, KeyText, KeyBack, KeyDual, KeyText, KeyDual},
		{KeyPower, KeyDual, KeyText, KeyMenu, KeyMenu, KeyText, KeyPower},
		{KeyPower, KeyMute, KeyVolUp, KeyMute, KeyVolDown, KeyPower},
		{KeyPower, KeyLock, KeyChUp, KeyChDown, KeyLock, KeyPower, KeyPower},
	}
	for si, script := range scripts {
		m := BuildSpecModel(nil, Config{})
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
		for ki, key := range script {
			ev := event.Event{Kind: event.Input, Name: "key"}.With("key", float64(key))
			if err := m.Dispatch(ev); err != nil {
				t.Fatalf("script %d key %d (%v): %v", si, ki, key, err)
			}
		}
	}
}

// TestSpecModelScript exercises the statemachine script runner against the
// TV spec model (Sect. 4.2 test scripts).
func TestSpecModelScript(t *testing.T) {
	m := BuildSpecModel(nil, Config{})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	keyStep := func(k Key, expect map[string]float64) statemachine.ScriptStep {
		return statemachine.ScriptStep{
			Event:      "key",
			Values:     []event.Value{{Name: "key", V: float64(k)}},
			ExpectVars: expect,
		}
	}
	fails := m.RunScript(statemachine.Script{Name: "quick", Steps: []statemachine.ScriptStep{
		keyStep(KeyPower, map[string]float64{"power": 1, "volume": 20}),
		keyStep(KeyVolUp, map[string]float64{"volume": 25}),
		keyStep(KeyMute, map[string]float64{"volume": 0, "muted": 1}),
		keyStep(KeyText, map[string]float64{"teletext": 1}),
		keyStep(KeyMenu, map[string]float64{"menu": 1, "teletext": 0}),
		keyStep(KeyPower, map[string]float64{"power": 0, "volume": 0, "menu": 0}),
	}})
	if len(fails) != 0 {
		t.Fatalf("script failures: %v", fails)
	}
}
