package tvsim

import (
	"fmt"

	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/soc"
)

// This file builds the streaming side of the TV: the SoC processors and the
// periodic video/audio/teletext tasks. Frame quality is the user-visible
// consequence of resource behaviour: missed deadlines and bad input both
// degrade it, which is what the overload, stress-testing and load-balancing
// experiments measure.

func (tv *TV) buildStreaming() {
	for i := 0; i < tv.cfg.CPUCount; i++ {
		tv.cpus = append(tv.cpus, soc.NewCPU(tv.kernel, fmt.Sprintf("cpu%d", i)))
	}
	tv.mem = soc.NewMemController(tv.kernel, "ddr", 100*sim.Nanosecond, soc.FixedPriority{})
	tv.mem.Register(&soc.Requestor{Name: "video", Priority: 0, LatencyTarget: sim.Microsecond})
	tv.mem.Register(&soc.Requestor{Name: "audio", Priority: 1, LatencyTarget: sim.Microsecond})
	tv.mem.Register(&soc.Requestor{Name: "txt", Priority: 2, LatencyTarget: 10 * sim.Microsecond})

	tv.videoTask = &soc.Task{
		Name: "video-pipe", Period: tv.cfg.VideoPeriod, WCET: tv.cfg.VideoWCET,
		Priority: 1, Migratable: true,
		OnComplete: func(resp sim.Time) { tv.onFrame(resp, true) },
		OnMiss:     func(late sim.Time) { tv.frameMisses++ },
	}
	tv.audioTask = &soc.Task{
		Name: "audio-pipe", Period: tv.cfg.AudioPeriod, WCET: tv.cfg.AudioPeriod / 10,
		Priority: 0,
	}
	tv.txtTask = &soc.Task{
		Name: "txt-acquire", Period: tv.cfg.TeletextPeriod, WCET: tv.cfg.TeletextPeriod / 50,
		Priority:   2,
		OnComplete: func(resp sim.Time) { tv.onTeletextAcquire() },
	}
}

// startStreaming attaches the tasks when the TV powers on.
func (tv *TV) startStreaming() {
	if tv.videoTask.OnComplete == nil { // defensive; built in buildStreaming
		panic("tvsim: streaming not built")
	}
	cpu0 := tv.cpus[0]
	if !tv.attached(tv.videoTask) {
		cpu0.Attach(tv.videoTask)
	}
	if !tv.attached(tv.audioTask) {
		cpu0.Attach(tv.audioTask)
	}
	if !tv.attached(tv.txtTask) {
		cpu0.Attach(tv.txtTask)
	}
}

func (tv *TV) stopStreaming() {
	for _, cpu := range tv.cpus {
		for _, task := range []*soc.Task{tv.videoTask, tv.audioTask, tv.txtTask} {
			cpu.Detach(task)
		}
	}
}

func (tv *TV) attached(task *soc.Task) bool {
	for _, cpu := range tv.cpus {
		for _, t := range cpu.Tasks() {
			if t == task {
				return true
			}
		}
	}
	return false
}

// onFrame publishes one decoded video frame with its quality measure.
// Quality degrades with bad input signal (error correction can only partly
// compensate) and collapses when the pipeline misses deadlines.
func (tv *TV) onFrame(resp sim.Time, met bool) {
	if !tv.powered {
		return
	}
	q := tv.signalQ
	// Deadline slack maps to a quality penalty: a frame that needed the
	// whole period arrived too late for clean display.
	if resp > tv.cfg.VideoPeriod {
		q *= 0.3 // visibly broken frame
	} else if resp > tv.cfg.VideoPeriod*3/4 {
		q *= 0.8
	}
	// Issue a memory request per frame so the arbiter sees load.
	tv.mem.Request("video", nil)
	tv.publish(event.Output, "frame", "video",
		event.Value{Name: "quality", V: q},
		event.Value{Name: "channel", V: float64(tv.channel)})
}

// onTeletextAcquire advances the acquired page unless acquisition has lost
// sync with the transmitter (SyncLoss fault) or teletext is idle.
func (tv *TV) onTeletextAcquire() {
	if !tv.powered || !tv.teletext {
		return
	}
	tv.mem.Request("txt", nil)
	if tv.injector.AnyActive(faults.SyncLoss, "teletext") {
		// Acquisition silently stalls: the component *believes* it is still
		// acquiring (mode unchanged) but produces no new pages — the mode
		// inconsistency scenario of Sect. 4.3 [17].
		tv.cTxtAcq.SetMode("searching")
		tv.publishTeletext(false)
		return
	}
	if tv.cTxtAcq.Mode() != "acquiring" {
		tv.cTxtAcq.SetMode("acquiring")
	}
	tv.txtPage++
	tv.txtShown = tv.txtPage
	tv.publishTeletext(true)
}

func (tv *TV) publishTeletext(fresh bool) {
	tv.publish(event.Output, "teletext", "txt-disp",
		event.Value{Name: "page", V: float64(tv.txtShown)},
		event.Value{Name: "fresh", V: b2f(fresh)})
}

// wireFaults connects fault activations to erroneous TV state.
func (tv *TV) wireFaults() {
	inj := tv.injector
	inj.OnKind(faults.Overload, func(f faults.Fault, on bool) {
		if on {
			mul := f.Param
			if mul <= 1 {
				mul = 2
			}
			tv.overloadMul = mul
		} else {
			tv.overloadMul = 1
		}
		tv.applyVideoDemand()
	})
	inj.OnKind(faults.BadInput, func(f faults.Fault, on bool) {
		if on {
			q := f.Param
			if q <= 0 || q >= 1 {
				q = 0.5
			}
			tv.signalQ = q
			// Bad input needs intensive error correction: extra demand.
			tv.overloadMul *= 1.5
		} else {
			tv.signalQ = 1.0
			tv.overloadMul = 1.0
		}
		tv.applyVideoDemand()
	})
	inj.OnKind(faults.ValueCorruption, func(f faults.Fault, on bool) {
		if f.Target != "audio" {
			return
		}
		if on {
			skew := f.Param
			if skew == 0 {
				skew = -15
			}
			tv.volumeSkew = skew
		} else {
			tv.volumeSkew = 0
		}
		if tv.powered {
			tv.publishAudio()
		}
	})
	inj.OnKind(faults.ModeCorruption, func(f faults.Fault, on bool) {
		if !on {
			return // corruption persists until recovery resets the component
		}
		if c := tv.system.Component(f.Target); c != nil {
			c.SetMode("corrupt")
		}
	})
	inj.OnKind(faults.Deadlock, func(f faults.Fault, on bool) {
		if f.Target != "video" {
			return
		}
		if on {
			// The decode and render stages wedge waiting on each other: a
			// silent deadlock — tasks stop producing but every component
			// mode still claims "playing". Only the hardware wait-for-graph
			// monitor (internal/hwmon) or output silence can see it.
			tv.detachEverywhere(tv.videoTask)
			tv.waits.AddWait("video-decode", "video-render")
			tv.waits.AddWait("video-render", "video-decode")
		} else {
			tv.waits.RemoveWait("video-decode", "video-render")
			tv.waits.RemoveWait("video-render", "video-decode")
			if tv.powered && !tv.attached(tv.videoTask) {
				tv.cpus[0].Attach(tv.videoTask)
			}
		}
	})
	inj.OnKind(faults.TaskCrash, func(f faults.Fault, on bool) {
		switch f.Target {
		case "video":
			if on {
				tv.detachEverywhere(tv.videoTask)
				tv.cVideo.SetMode("dead")
			} else if tv.powered {
				tv.cpus[0].Attach(tv.videoTask)
				tv.cVideo.SetMode("playing")
			}
		case "teletext":
			if on {
				tv.detachEverywhere(tv.txtTask)
				tv.cTxtAcq.SetMode("dead")
			} else if tv.powered {
				tv.cpus[0].Attach(tv.txtTask)
				if tv.teletext {
					tv.cTxtAcq.SetMode("acquiring")
				} else {
					tv.cTxtAcq.SetMode("idle")
				}
			}
		case "swivel":
			if on {
				tv.cSwivel.SetMode("stuck")
			} else {
				tv.cSwivel.SetMode("idle")
				tv.stepSwivel()
			}
		}
	})
}

func (tv *TV) detachEverywhere(task *soc.Task) {
	for _, cpu := range tv.cpus {
		cpu.Detach(task)
	}
}

// applyVideoDemand updates the video task's WCET for the active multiplier.
// The change takes effect from the next released job.
func (tv *TV) applyVideoDemand() {
	tv.videoTask.WCET = sim.Time(float64(tv.cfg.VideoWCET) * tv.overloadMul)
}

// MigrateVideo moves the video pipeline to the least-loaded other CPU — the
// IMEC recovery action (Sect. 4.5). It returns an error when no target CPU
// exists or the task is not currently attached.
func (tv *TV) MigrateVideo() error {
	var from *soc.CPU
	for _, cpu := range tv.cpus {
		for _, t := range cpu.Tasks() {
			if t == tv.videoTask {
				from = cpu
			}
		}
	}
	if from == nil {
		return fmt.Errorf("tvsim: video task not attached")
	}
	var to *soc.CPU
	for _, cpu := range tv.cpus {
		if cpu == from {
			continue
		}
		if to == nil || cpu.Load() < to.Load() {
			to = cpu
		}
	}
	if to == nil {
		return fmt.Errorf("tvsim: no migration target CPU")
	}
	return from.Migrate(tv.videoTask, to)
}

// Mem returns the memory controller (for arbiter experiments).
func (tv *TV) Mem() *soc.MemController { return tv.mem }
