package tvsim

import (
	"trader/internal/sim"
	"trader/internal/statemachine"
)

// BuildSpecModel constructs the executable specification model of the TV's
// user-observable behaviour (Sect. 4.2): "a high-level model of a TV from
// the viewpoint of the user ... the relation between user input, via the
// remote control, and output, via images on the screen and sound".
//
// The model is what the awareness monitor executes at run time. Its
// variables are the expected observables:
//
//	power, volume (audible level), muted, channel, teletext, menu, dual,
//	locked, swivelTarget, teletextFresh
//
// In a fault-free run the TV's outputs track these exactly; deviations are
// errors. The model deliberately abstracts the streaming side (no frame
// quality — partial models are the point: "the approach allows the use of
// partial models, concentrating on what is most relevant for the user").
func BuildSpecModel(kernel *sim.Kernel, cfg Config) *statemachine.Model {
	cfg.fill()

	key := func(k Key) func(*statemachine.Context) bool {
		return func(c *statemachine.Context) bool {
			v, ok := c.Event.Get("key")
			return ok && Key(v) == k
		}
	}
	keyOn := func(k Key) func(*statemachine.Context) bool {
		inner := key(k)
		return func(c *statemachine.Context) bool { return c.Get("power") == 1 && inner(c) }
	}

	// audible recomputes the expected audible level.
	audible := func(c *statemachine.Context) {
		if c.Get("power") == 0 || c.Get("muted") == 1 {
			c.Set("volume", 0)
		} else {
			c.Set("volume", c.Get("volSetting"))
		}
	}

	powerOff := func(c *statemachine.Context) {
		c.Set("power", 0)
		c.Set("teletext", 0)
		c.Set("menu", 0)
		c.Set("dual", 0)
		c.Set("teletextFresh", 0)
		c.Set("sleepArmed", 0)
		audible(c)
	}
	powerOn := func(c *statemachine.Context) {
		c.Set("power", 1)
		audible(c)
	}

	power := statemachine.NewRegion("power")
	power.Add(&statemachine.State{
		Name:  "off",
		Entry: powerOff,
		Transitions: []statemachine.Transition{
			{Event: "key", Guard: key(KeyPower), Target: "on"},
		},
	})
	power.Add(&statemachine.State{
		Name:  "on",
		Entry: powerOn,
		Transitions: []statemachine.Transition{
			{Event: "key", Guard: key(KeyPower), Target: "off"},
			// Sleep-timer expiry (set by the sleep region) powers down.
			{Guard: func(c *statemachine.Context) bool { return c.Get("sleepExpired") == 1 },
				Target: "off", Action: func(c *statemachine.Context) { c.Set("sleepExpired", 0) }},
		},
	})

	audio := statemachine.NewRegion("audio")
	audio.Add(&statemachine.State{
		Name: "audio",
		Entry: func(c *statemachine.Context) {
			c.Set("volSetting", 20)
			audible(c)
		},
		Transitions: []statemachine.Transition{
			{Event: "key", Guard: keyOn(KeyVolUp), Action: func(c *statemachine.Context) {
				v := c.Get("volSetting") + 5
				if v > 100 {
					v = 100
				}
				c.Set("volSetting", v)
				c.Set("muted", 0)
				audible(c)
			}},
			{Event: "key", Guard: keyOn(KeyVolDown), Action: func(c *statemachine.Context) {
				v := c.Get("volSetting") - 5
				if v < 0 {
					v = 0
				}
				c.Set("volSetting", v)
				c.Set("muted", 0)
				audible(c)
			}},
			{Event: "key", Guard: keyOn(KeyMute), Action: func(c *statemachine.Context) {
				c.SetBool("muted", c.Get("muted") == 0)
				audible(c)
			}},
		},
	})

	screen := statemachine.NewRegion("screen")
	screen.Add(&statemachine.State{
		Name: "screen",
		Entry: func(c *statemachine.Context) {
			c.Set("channel", 1)
			c.Set("photo", 1)
		},
		Transitions: []statemachine.Transition{
			{Event: "key", Guard: keyOn(KeyChUp), Action: func(c *statemachine.Context) {
				if c.Get("source") == 1 {
					stepPhotoVar(c, +1, cfg)
				} else {
					zap(c, +1, cfg)
				}
			}},
			{Event: "key", Guard: keyOn(KeyChDown), Action: func(c *statemachine.Context) {
				if c.Get("source") == 1 {
					stepPhotoVar(c, -1, cfg)
				} else {
					zap(c, -1, cfg)
				}
			}},
			{Event: "key", Guard: keyOn(KeySource), Action: func(c *statemachine.Context) {
				if c.Get("source") == 0 {
					c.Set("source", 1)
					c.Set("photo", 1)
					c.Set("teletext", 0)
					c.Set("teletextFresh", 0)
					c.Set("dual", 0)
				} else {
					c.Set("source", 0)
				}
			}},
			{Event: "key", Guard: keyOn(KeyText), Action: func(c *statemachine.Context) {
				if c.Get("menu") == 1 {
					return // menu suppresses teletext
				}
				if c.Get("source") != 0 {
					return // teletext needs the broadcast tuner
				}
				on := c.Get("teletext") == 0
				c.SetBool("teletext", on)
				c.SetBool("teletextFresh", on)
				if on {
					c.Set("dual", 0)
				}
			}},
			{Event: "key", Guard: keyOn(KeyMenu), Action: func(c *statemachine.Context) {
				open := c.Get("menu") == 0
				c.SetBool("menu", open)
				if open && c.Get("teletext") == 1 {
					c.Set("teletext", 0)
					c.Set("teletextFresh", 0)
				}
			}},
			{Event: "key", Guard: keyOn(KeyBack), Action: func(c *statemachine.Context) {
				if c.Get("menu") == 1 {
					c.Set("menu", 0)
				}
			}},
			{Event: "key", Guard: keyOn(KeyDual), Action: func(c *statemachine.Context) {
				if c.Get("source") != 0 {
					return // dual screen composes two broadcast pictures
				}
				if c.Get("teletext") == 1 {
					c.Set("teletext", 0)
					c.Set("teletextFresh", 0)
				}
				c.SetBool("dual", c.Get("dual") == 0)
			}},
			{Event: "key", Guard: keyOn(KeyLock), Action: func(c *statemachine.Context) {
				c.SetBool("locked", c.Get("locked") == 0)
			}},
			{Event: "key", Guard: keyOn(KeySwivelLeft), Action: func(c *statemachine.Context) {
				moveTarget(c, -10)
			}},
			{Event: "key", Guard: keyOn(KeySwivelRight), Action: func(c *statemachine.Context) {
				moveTarget(c, +10)
			}},
		},
	})

	// Sleep region: arming starts a timed transition; expiry raises the
	// sleepExpired flag consumed by the power region.
	sleep := statemachine.NewRegion("sleep")
	sleep.Add(&statemachine.State{
		Name: "disarmed",
		Transitions: []statemachine.Transition{
			{Event: "key", Guard: keyOn(KeySleep), Target: "armed"},
		},
	})
	sleep.Add(&statemachine.State{
		Name:  "armed",
		Entry: func(c *statemachine.Context) { c.Set("sleepArmed", 1) },
		Exit:  func(c *statemachine.Context) { c.Set("sleepArmed", 0) },
		Transitions: []statemachine.Transition{
			{After: cfg.SleepDuration, Target: "disarmed",
				Action: func(c *statemachine.Context) { c.Set("sleepExpired", 1) }},
			// Re-pressing sleep restarts the timer.
			{Event: "key", Guard: keyOn(KeySleep), Target: "armed"},
			// Power-off disarms.
			{Event: "key", Guard: key(KeyPower), Target: "disarmed"},
		},
	})

	m := statemachine.MustModel("tv-spec", kernel, power, audio, screen, sleep)

	// The invariants that exploration (E11) checks — the paper's feature
	// interaction rules.
	m.AddInvariant("menu-suppresses-teletext", func(m *statemachine.Model) bool {
		return !(m.Var("menu") == 1 && m.Var("teletext") == 1)
	})
	m.AddInvariant("teletext-forces-single-screen", func(m *statemachine.Model) bool {
		return !(m.Var("teletext") == 1 && m.Var("dual") == 1)
	})
	m.AddInvariant("standby-is-dark-and-silent", func(m *statemachine.Model) bool {
		if m.Var("power") == 1 {
			return true
		}
		return m.Var("teletext") == 0 && m.Var("menu") == 0 && m.Var("dual") == 0 && m.Var("volume") == 0
	})
	m.AddInvariant("volume-in-range", func(m *statemachine.Model) bool {
		v := m.Var("volume")
		return v >= 0 && v <= 100
	})
	m.AddInvariant("teletext-needs-tuner", func(m *statemachine.Model) bool {
		return !(m.Var("teletext") == 1 && m.Var("source") == 1)
	})
	return m
}

// stepPhotoVar navigates the photo browser in the model, mirroring the
// TV's wrap-around behaviour.
func stepPhotoVar(c *statemachine.Context, dir int, cfg Config) {
	p := int(c.Get("photo")) + dir
	if p < 1 {
		p = cfg.PhotoCount
	}
	if p > cfg.PhotoCount {
		p = 1
	}
	c.Set("photo", float64(p))
}

func zap(c *statemachine.Context, dir int, cfg Config) {
	ch := int(c.Get("channel")) + dir
	if ch < 1 {
		ch = cfg.MaxChannel
	}
	if ch > cfg.MaxChannel {
		ch = 1
	}
	if c.Get("locked") == 1 && ch > cfg.LockedAbove {
		return // child lock blocks
	}
	c.Set("channel", float64(ch))
}

func moveTarget(c *statemachine.Context, delta float64) {
	t := c.Get("swivelTarget") + delta
	if t > 45 {
		t = 45
	}
	if t < -45 {
		t = -45
	}
	c.Set("swivelTarget", t)
}

// MirrorQuality installs the standard partial expectation for frame
// quality: full quality whenever the power mode is "on", zero otherwise
// (the spec model itself abstracts the streaming side). Every monitored-TV
// assembly — traderd, the experiment harness, fleet devices — uses this
// same hook so their comparators judge against the same expectation.
func MirrorQuality(model *statemachine.Model) {
	model.OnConfig(func(region, leaf string) {
		if region == "power" {
			model.SetVar("quality", map[string]float64{"on": 1}[leaf])
		}
	})
}
