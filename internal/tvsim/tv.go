// Package tvsim simulates a high-end television — the System Under
// Observation of the Trader case studies. The simulator reproduces the
// observable surface the paper's awareness experiments need:
//
//   - remote-control input (key presses),
//   - user-visible outputs (sound level, video frames with a quality
//     measure, on-screen displays, the motorised swivel),
//   - internal component modes (published as state events, Sect. 4.1),
//   - a streaming side scheduled on the soc substrate (video/audio/teletext
//     tasks on CPUs, so overload and migration behave like the paper's
//     platform), and
//   - fault-injection hooks for every fault class of the case studies
//     (teletext sync loss, mode corruption, task crash, overload, bad input,
//     value corruption).
//
// The control behaviour implements the feature interactions the paper calls
// out (dual screen × teletext × menu OSD suppressing each other, child lock,
// sleep timer). tvsim also builds the corresponding *specification model*
// (model.go) used by the awareness monitor; in fault-free runs the TV and
// the model agree on every observable.
package tvsim

import (
	"fmt"

	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/hwmon"
	"trader/internal/koala"
	"trader/internal/sim"
	"trader/internal/soc"
)

// Key is a remote-control key.
type Key int

// Remote-control keys.
const (
	KeyPower Key = iota
	KeyVolUp
	KeyVolDown
	KeyMute
	KeyChUp
	KeyChDown
	KeyText
	KeyMenu
	KeyDual
	KeySleep
	KeyLock
	KeySwivelLeft
	KeySwivelRight
	KeyOK
	KeyBack
	// KeySource cycles the input source: broadcast tuner ↔ USB photo
	// browsing (the media-convergence features the paper's introduction
	// lists as complexity drivers: "photo browsing, MP3 playing, USB").
	KeySource
	numKeys
)

var keyNames = [...]string{
	"power", "vol+", "vol-", "mute", "ch+", "ch-", "text", "menu",
	"dual", "sleep", "lock", "swivel-left", "swivel-right", "ok", "back",
	"source",
}

// String returns the key legend.
func (k Key) String() string {
	if k < 0 || int(k) >= len(keyNames) {
		return fmt.Sprintf("key(%d)", int(k))
	}
	return keyNames[k]
}

// AllKeys returns every key once (for exploration alphabets and random
// scenario generation).
func AllKeys() []Key {
	out := make([]Key, numKeys)
	for i := range out {
		out[i] = Key(i)
	}
	return out
}

// Config sizes the simulated platform.
type Config struct {
	// CPUCount is the number of processors (default 2).
	CPUCount int
	// VideoPeriod is the frame period (default 40ms → 25 fps).
	VideoPeriod sim.Time
	// VideoWCET is the nominal per-frame demand (default 18ms).
	VideoWCET sim.Time
	// TeletextPeriod is the page-acquisition period (default 200ms).
	TeletextPeriod sim.Time
	// AudioPeriod is the audio processing period (default 10ms).
	AudioPeriod sim.Time
	// SleepDuration is the sleep-timer duration (default 2s of virtual
	// time, scaled down from 15 min so experiments stay small).
	SleepDuration sim.Time
	// MaxChannel is the highest channel number (default 99).
	MaxChannel int
	// LockedAbove marks channels above this number as blocked when the
	// child lock is active (default 50).
	LockedAbove int
	// PhotoCount is the number of photos on the simulated USB stick
	// (default 20).
	PhotoCount int
}

func (c *Config) fill() {
	if c.CPUCount <= 0 {
		c.CPUCount = 2
	}
	if c.VideoPeriod <= 0 {
		c.VideoPeriod = 40 * sim.Millisecond
	}
	if c.VideoWCET <= 0 {
		c.VideoWCET = 18 * sim.Millisecond
	}
	if c.TeletextPeriod <= 0 {
		c.TeletextPeriod = 200 * sim.Millisecond
	}
	if c.AudioPeriod <= 0 {
		c.AudioPeriod = 10 * sim.Millisecond
	}
	if c.SleepDuration <= 0 {
		c.SleepDuration = 2 * sim.Second
	}
	if c.MaxChannel <= 0 {
		c.MaxChannel = 99
	}
	if c.LockedAbove <= 0 {
		c.LockedAbove = 50
	}
	if c.PhotoCount <= 0 {
		c.PhotoCount = 20
	}
}

// TV is the simulated television.
type TV struct {
	cfg      Config
	kernel   *sim.Kernel
	bus      *event.Bus
	system   *koala.System
	injector *faults.Injector

	cpus  []*soc.CPU
	mem   *soc.MemController
	waits *hwmon.WaitGraph

	// control state (the SUO's real state; the spec model mirrors it)
	powered  bool
	volume   int
	muted    bool
	channel  int
	teletext bool
	menu     bool
	dual     bool
	locked   bool
	source   int // 0 = tuner (broadcast), 1 = USB photo browsing
	photo    int // current photo index when source is USB
	sleepEv  *sim.Event
	angle    int // swivel angle, degrees

	// streaming state
	videoTask   *soc.Task
	audioTask   *soc.Task
	txtTask     *soc.Task
	signalQ     float64 // 0..1 input signal quality (BadInput reduces it)
	overloadMul float64 // execution-demand multiplier (Overload fault)
	txtPage     int     // last acquired teletext page
	txtShown    int     // page currently displayed
	frameMisses uint64

	// components (for modes)
	cTuner, cVideo, cAudio *koala.Component
	cTxtAcq, cTxtDisp      *koala.Component
	cOSD, cSwivel          *koala.Component

	// value-corruption state
	volumeSkew float64

	// swivel motion
	swivelTarget int

	seq uint64
	// KeysHandled counts accepted key presses.
	KeysHandled uint64
}

// New creates a TV on the kernel with its own bus and fault injector.
func New(kernel *sim.Kernel, cfg Config) *TV {
	cfg.fill()
	tv := &TV{
		cfg: cfg, kernel: kernel,
		bus:         event.NewBus(),
		injector:    faults.NewInjector(kernel),
		channel:     1,
		photo:       1,
		volume:      20,
		signalQ:     1.0,
		overloadMul: 1.0,
		waits:       hwmon.NewWaitGraph(),
	}
	tv.system = koala.NewSystem(kernel, "tv", tv.bus)
	tv.buildComponents()
	tv.buildStreaming()
	tv.wireFaults()
	return tv
}

// Kernel returns the simulation kernel.
func (tv *TV) Kernel() *sim.Kernel { return tv.kernel }

// Bus returns the observation bus carrying all TV events.
func (tv *TV) Bus() *event.Bus { return tv.bus }

// System returns the koala component system (for weaving observation).
func (tv *TV) System() *koala.System { return tv.system }

// Injector returns the fault injector (ground truth for experiments).
func (tv *TV) Injector() *faults.Injector { return tv.injector }

// CPUs returns the SoC processors.
func (tv *TV) CPUs() []*soc.CPU { return tv.cpus }

// Waits returns the SoC's resource wait-for graph, the observation point of
// the hardware deadlock detector (internal/hwmon).
func (tv *TV) Waits() *hwmon.WaitGraph { return tv.waits }

// VideoTask returns the video processing task (for migration experiments).
func (tv *TV) VideoTask() *soc.Task { return tv.videoTask }

func (tv *TV) buildComponents() {
	s := tv.system
	tv.cTuner = s.AddComponent("tuner")
	tv.cVideo = s.AddComponent("video")
	tv.cAudio = s.AddComponent("audio")
	tv.cTxtAcq = s.AddComponent("txt-acq")
	tv.cTxtDisp = s.AddComponent("txt-disp")
	tv.cOSD = s.AddComponent("osd")
	tv.cSwivel = s.AddComponent("swivel")

	tv.cTuner.SetMode("standby")
	tv.cVideo.SetMode("standby")
	tv.cAudio.SetMode("standby")
	tv.cTxtAcq.SetMode("idle")
	tv.cTxtDisp.SetMode("hidden")
	tv.cOSD.SetMode("none")
	tv.cSwivel.SetMode("idle")
}

// publish emits an event on the bus.
func (tv *TV) publish(kind event.Kind, name, source string, vals ...event.Value) {
	tv.seq++
	e := event.Event{Kind: kind, Name: name, Source: source, At: tv.kernel.Now(), Seq: tv.seq, Values: vals}
	tv.bus.Publish(e)
}

// PressKey delivers one remote-control key to the TV.
func (tv *TV) PressKey(k Key) {
	tv.publish(event.Input, "key", "remote", event.Value{Name: "key", V: float64(k)})
	tv.KeysHandled++
	if !tv.powered {
		if k == KeyPower {
			tv.setPower(true)
		}
		return
	}
	switch k {
	case KeyPower:
		tv.setPower(false)
	case KeyVolUp:
		tv.setVolume(tv.volume+5, false)
	case KeyVolDown:
		tv.setVolume(tv.volume-5, false)
	case KeyMute:
		tv.muted = !tv.muted
		tv.cAudio.SetMode(map[bool]string{true: "muted", false: "active"}[tv.muted])
		tv.publishAudio()
	case KeyChUp:
		if tv.source == 1 {
			tv.stepPhoto(+1)
		} else {
			tv.setChannel(tv.channel + 1)
		}
	case KeyChDown:
		if tv.source == 1 {
			tv.stepPhoto(-1)
		} else {
			tv.setChannel(tv.channel - 1)
		}
	case KeyText:
		tv.toggleTeletext()
	case KeySource:
		tv.toggleSource()
	case KeyMenu:
		tv.toggleMenu()
	case KeyDual:
		tv.toggleDual()
	case KeySleep:
		tv.armSleep()
	case KeyLock:
		tv.locked = !tv.locked
	case KeySwivelLeft:
		tv.moveSwivel(-10)
	case KeySwivelRight:
		tv.moveSwivel(+10)
	case KeyOK, KeyBack:
		if tv.menu && k == KeyBack {
			tv.toggleMenu()
		}
	}
}

func (tv *TV) setPower(on bool) {
	tv.powered = on
	if on {
		if tv.source == 0 {
			tv.cTuner.SetMode("tuned")
		} else {
			tv.cTuner.SetMode("bypassed")
		}
		tv.cVideo.SetMode("playing")
		tv.cAudio.SetMode(map[bool]string{true: "muted", false: "active"}[tv.muted])
		tv.startStreaming()
	} else {
		// Power off resets transient OSD/teletext/dual state.
		tv.teletext = false
		tv.menu = false
		tv.dual = false
		if tv.sleepEv != nil {
			tv.sleepEv.Cancel()
			tv.sleepEv = nil
		}
		tv.cTuner.SetMode("standby")
		tv.cVideo.SetMode("standby")
		tv.cAudio.SetMode("standby")
		tv.cTxtAcq.SetMode("idle")
		tv.cTxtDisp.SetMode("hidden")
		tv.cOSD.SetMode("none")
		tv.stopStreaming()
	}
	tv.publish(event.Output, "power", "tv", event.Value{Name: "on", V: b2f(on)})
	tv.publishAudio()
	tv.publishScreen()
}

func (tv *TV) setVolume(v int, internal bool) {
	if v < 0 {
		v = 0
	}
	if v > 100 {
		v = 100
	}
	tv.volume = v
	if !internal {
		tv.muted = false
		tv.cAudio.SetMode("active")
	}
	tv.publishAudio()
}

func (tv *TV) setChannel(ch int) {
	if ch < 1 {
		ch = tv.cfg.MaxChannel
	}
	if ch > tv.cfg.MaxChannel {
		ch = 1
	}
	if tv.locked && ch > tv.cfg.LockedAbove {
		// Child lock blocks the zap; OSD feedback only.
		tv.publish(event.Output, "osd", "osd", event.Value{Name: "blocked", V: 1})
		return
	}
	tv.channel = ch
	tv.txtPage = 0 // new channel: teletext re-acquires
	tv.txtShown = 0
	tv.cTuner.SetMode("tuned")
	tv.publishScreen()
}

// stepPhoto navigates the USB photo browser with wrap-around.
func (tv *TV) stepPhoto(dir int) {
	tv.photo += dir
	if tv.photo < 1 {
		tv.photo = tv.cfg.PhotoCount
	}
	if tv.photo > tv.cfg.PhotoCount {
		tv.photo = 1
	}
	tv.publishScreen()
}

// toggleSource switches between the broadcast tuner and the USB photo
// browser. Teletext and dual screen are broadcast features: switching away
// closes them; the photo browser restarts at the first photo.
func (tv *TV) toggleSource() {
	if tv.source == 0 {
		tv.source = 1
		tv.photo = 1
		tv.teletext = false
		tv.dual = false
		tv.cTxtAcq.SetMode("idle")
		tv.cTxtDisp.SetMode("hidden")
		tv.cTuner.SetMode("bypassed")
	} else {
		tv.source = 0
		tv.cTuner.SetMode("tuned")
	}
	tv.publishScreen()
}

func (tv *TV) toggleTeletext() {
	if tv.menu {
		return // menu suppresses teletext
	}
	if tv.source != 0 {
		return // teletext needs the broadcast tuner
	}
	tv.teletext = !tv.teletext
	if tv.teletext {
		tv.dual = false // teletext forces single screen
		tv.cTxtAcq.SetMode("acquiring")
		tv.cTxtDisp.SetMode("visible")
	} else {
		tv.cTxtAcq.SetMode("idle")
		tv.cTxtDisp.SetMode("hidden")
	}
	tv.publishScreen()
}

func (tv *TV) toggleMenu() {
	tv.menu = !tv.menu
	if tv.menu && tv.teletext {
		// Menu suppresses teletext (the feature interaction of Sect. 4.2).
		tv.teletext = false
		tv.cTxtAcq.SetMode("idle")
		tv.cTxtDisp.SetMode("hidden")
	}
	tv.cOSD.SetMode(map[bool]string{true: "menu", false: "none"}[tv.menu])
	tv.publishScreen()
}

func (tv *TV) toggleDual() {
	if tv.source != 0 {
		return // dual screen composes two broadcast pictures
	}
	if tv.teletext {
		// Teletext occupies the screen: dual request closes teletext first.
		tv.teletext = false
		tv.cTxtAcq.SetMode("idle")
		tv.cTxtDisp.SetMode("hidden")
	}
	tv.dual = !tv.dual
	tv.publishScreen()
}

func (tv *TV) armSleep() {
	if tv.sleepEv != nil {
		tv.sleepEv.Cancel()
	}
	tv.sleepEv = tv.kernel.Schedule(tv.cfg.SleepDuration, func() {
		tv.sleepEv = nil
		if tv.powered {
			tv.setPower(false)
		}
	})
	tv.publish(event.Output, "osd", "osd", event.Value{Name: "sleep", V: 1})
}

func (tv *TV) moveSwivel(delta int) {
	tv.swivelTarget += delta
	if tv.swivelTarget > 45 {
		tv.swivelTarget = 45
	}
	if tv.swivelTarget < -45 {
		tv.swivelTarget = -45
	}
	tv.cSwivel.SetMode("moving")
	tv.stepSwivel()
}

// stepSwivel moves the motor 1 degree per 20ms until the target is reached.
// A crashed swivel (TaskCrash on "swivel") stops moving — the failure users
// attribute to the product and find most irritating (Sect. 4.6).
func (tv *TV) stepSwivel() {
	if tv.injector.AnyActive(faults.TaskCrash, "swivel") {
		tv.cSwivel.SetMode("stuck")
		return
	}
	if tv.angle == tv.swivelTarget {
		tv.cSwivel.SetMode("idle")
		tv.publishSwivel()
		return
	}
	if tv.angle < tv.swivelTarget {
		tv.angle++
	} else {
		tv.angle--
	}
	tv.publishSwivel()
	tv.kernel.Schedule(20*sim.Millisecond, func() { tv.stepSwivel() })
}

func (tv *TV) publishSwivel() {
	tv.publish(event.Output, "swivel", "swivel",
		event.Value{Name: "angle", V: float64(tv.angle)},
		event.Value{Name: "target", V: float64(tv.swivelTarget)})
}

// publishAudio emits the audible output state. A ValueCorruption fault on
// "audio" skews the *actual* produced loudness while the TV's control state
// still believes the nominal volume — exactly the class of error only
// run-time awareness catches.
func (tv *TV) publishAudio() {
	level := float64(tv.volume)
	if tv.muted || !tv.powered {
		level = 0
	}
	level += tv.volumeSkew
	if level < 0 {
		level = 0
	}
	tv.publish(event.Output, "audio", "audio",
		event.Value{Name: "volume", V: level},
		event.Value{Name: "muted", V: b2f(tv.muted)})
}

// publishScreen emits the screen composition state.
func (tv *TV) publishScreen() {
	tv.publish(event.Output, "screen", "video",
		event.Value{Name: "channel", V: float64(tv.channel)},
		event.Value{Name: "teletext", V: b2f(tv.teletext)},
		event.Value{Name: "menu", V: b2f(tv.menu)},
		event.Value{Name: "dual", V: b2f(tv.dual)},
		event.Value{Name: "power", V: b2f(tv.powered)},
		event.Value{Name: "source", V: float64(tv.source)},
		event.Value{Name: "photo", V: float64(tv.photo)})
}

// Snapshot returns the control state as named scalars (used by tests and by
// the state observer).
func (tv *TV) Snapshot() map[string]float64 {
	return map[string]float64{
		"power":    b2f(tv.powered),
		"volume":   float64(tv.volume),
		"muted":    b2f(tv.muted),
		"channel":  float64(tv.channel),
		"teletext": b2f(tv.teletext),
		"menu":     b2f(tv.menu),
		"dual":     b2f(tv.dual),
		"locked":   b2f(tv.locked),
		"source":   float64(tv.source),
		"photo":    float64(tv.photo),
		"angle":    float64(tv.angle),
	}
}

// Powered reports the power state.
func (tv *TV) Powered() bool { return tv.powered }

// FrameMisses returns the number of video frame deadline misses so far.
func (tv *TV) FrameMisses() uint64 { return tv.frameMisses }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
