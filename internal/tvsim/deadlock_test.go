package tvsim

import (
	"testing"

	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/hwmon"
	"trader/internal/sim"
)

// TestDeadlockFaultWedgesPipeline checks the silent-deadlock fault: frames
// stop, but component modes still claim everything is fine — the class of
// failure "the user can immediately observe ... whereas the system itself is
// completely unaware of".
func TestDeadlockFaultWedgesPipeline(t *testing.T) {
	k := sim.NewKernel(1)
	tv := New(k, Config{})
	frames := 0
	tv.Bus().Subscribe("frame", func(event.Event) { frames++ })
	tv.PressKey(KeyPower)
	tv.Injector().Schedule(faults.Fault{
		ID: "dl", Kind: faults.Deadlock, Target: "video",
		At: sim.Second, Duration: 2 * sim.Second,
	})
	k.Run(sim.Second + 500*sim.Millisecond)
	atWedge := frames
	k.Run(2 * sim.Second)
	if frames != atWedge {
		t.Fatal("frames kept flowing during deadlock")
	}
	// Modes stay healthy: the deadlock is silent at the component level.
	if tv.cVideo.Mode() != "playing" {
		t.Fatalf("video mode = %q; the deadlock must be silent", tv.cVideo.Mode())
	}
	if tv.Waits().FindCycle() == nil {
		t.Fatal("wait-for graph should show the cycle")
	}
	k.Run(4 * sim.Second)
	if frames <= atWedge {
		t.Fatal("frames should resume after the deadlock clears")
	}
	if tv.Waits().FindCycle() != nil {
		t.Fatal("cycle should clear with the fault")
	}
}

// TestHardwareDeadlockDetectorOnTV closes the loop of Sect. 4.3's
// "hardware-based deadlock detection": the hwmon monitor scans the SoC
// wait-for graph and reports the wedged pipeline, faster than the silence
// detector possibly could at its sweep period.
func TestHardwareDeadlockDetectorOnTV(t *testing.T) {
	k := sim.NewKernel(2)
	tv := New(k, Config{})
	mon := hwmon.NewDeadlockMonitor(k, tv.Waits(), 10*sim.Millisecond)
	var cycles [][]string
	var detectedAt sim.Time
	mon.OnDeadlock(func(c []string, at sim.Time) {
		cycles = append(cycles, c)
		if detectedAt == 0 {
			detectedAt = at
		}
	})
	tv.PressKey(KeyPower)
	faultAt := sim.Second
	tv.Injector().Schedule(faults.Fault{
		ID: "dl", Kind: faults.Deadlock, Target: "video", At: faultAt, Duration: sim.Second,
	})
	k.Run(3 * sim.Second)
	if len(cycles) != 1 {
		t.Fatalf("detections = %d, want exactly 1", len(cycles))
	}
	if len(cycles[0]) != 2 {
		t.Fatalf("cycle = %v", cycles[0])
	}
	latency := detectedAt - faultAt
	if latency > 20*sim.Millisecond {
		t.Fatalf("hardware detector latency %v, want within two sweep periods", latency)
	}
	mon.Stop()
}
