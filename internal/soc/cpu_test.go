package soc

import (
	"testing"

	"trader/internal/sim"
)

func TestPeriodicTaskRuns(t *testing.T) {
	k := sim.NewKernel(1)
	cpu := NewCPU(k, "cpu0")
	var responses []sim.Time
	cpu.Attach(&Task{
		Name: "video", Period: 20 * sim.Millisecond, WCET: 5 * sim.Millisecond,
		OnComplete: func(r sim.Time) { responses = append(responses, r) },
	})
	k.Run(100 * sim.Millisecond)
	// Releases at 0,20,40,60,80,100 → 6 completions (the one at 100 finishes at 105 — not yet).
	if got := cpu.Stats().JobsCompleted; got != 5 {
		t.Fatalf("JobsCompleted = %d, want 5", got)
	}
	for _, r := range responses {
		if r != 5*sim.Millisecond {
			t.Fatalf("uncontended response = %v, want 5ms", r)
		}
	}
	if cpu.Stats().DeadlineMisses != 0 {
		t.Fatal("no deadline misses expected")
	}
}

func TestPreemption(t *testing.T) {
	k := sim.NewKernel(1)
	cpu := NewCPU(k, "cpu0")
	lo := &Task{Name: "lo", WCET: 100, Priority: 10}
	hi := &Task{Name: "hi", WCET: 10, Priority: 1}
	cpu.Attach(lo)
	cpu.Attach(hi)
	var hiDone, loDone sim.Time
	lo.OnComplete = func(sim.Time) { loDone = k.Now() }
	hi.OnComplete = func(sim.Time) { hiDone = k.Now() }
	cpu.Release(lo)
	k.Run(50)
	cpu.Release(hi)
	k.RunAll()
	if hiDone != 60 {
		t.Fatalf("hi done at %v, want 60 (released 50 + WCET 10)", hiDone)
	}
	if loDone != 110 {
		t.Fatalf("lo done at %v, want 110 (100 exec + 10 preempted)", loDone)
	}
	if cpu.Stats().Preemptions != 1 {
		t.Fatalf("Preemptions = %d, want 1", cpu.Stats().Preemptions)
	}
}

func TestNoPreemptionByEqualPriority(t *testing.T) {
	k := sim.NewKernel(1)
	cpu := NewCPU(k, "cpu0")
	a := &Task{Name: "a", WCET: 100, Priority: 5}
	b := &Task{Name: "b", WCET: 10, Priority: 5}
	cpu.Attach(a)
	cpu.Attach(b)
	var bDone sim.Time
	b.OnComplete = func(sim.Time) { bDone = k.Now() }
	cpu.Release(a)
	k.Run(10)
	cpu.Release(b)
	k.RunAll()
	if bDone != 110 {
		t.Fatalf("b done at %v, want 110 (waits for a)", bDone)
	}
	if cpu.Stats().Preemptions != 0 {
		t.Fatal("equal priority must not preempt")
	}
}

func TestDeadlineMissDetection(t *testing.T) {
	k := sim.NewKernel(1)
	cpu := NewCPU(k, "cpu0")
	var misses int
	var lateness sim.Time
	// Demand exceeds period: guaranteed overload.
	cpu.Attach(&Task{
		Name: "over", Period: 10, WCET: 15,
		OnMiss: func(l sim.Time) { misses++; lateness = l },
	})
	k.Run(100)
	if misses == 0 {
		t.Fatal("overloaded task should miss deadlines")
	}
	if lateness <= 0 {
		t.Fatal("lateness should be positive")
	}
	if cpu.Stats().DeadlineMisses == 0 {
		t.Fatal("stats should count misses")
	}
}

func TestUtilisationAndLoad(t *testing.T) {
	k := sim.NewKernel(1)
	cpu := NewCPU(k, "cpu0")
	cpu.Attach(&Task{Name: "half", Period: 100, WCET: 50})
	k.Run(1000)
	u := cpu.Utilisation()
	if u < 0.45 || u > 0.55 {
		t.Fatalf("Utilisation = %v, want ~0.5", u)
	}
	if l := cpu.Load(); l != 0.5 {
		t.Fatalf("Load = %v, want 0.5", l)
	}
}

func TestSpeedScalesExecution(t *testing.T) {
	k := sim.NewKernel(1)
	cpu := NewCPU(k, "fast")
	cpu.Speed = 2.0
	task := &Task{Name: "t", WCET: 100}
	cpu.Attach(task)
	var done sim.Time
	task.OnComplete = func(sim.Time) { done = k.Now() }
	cpu.Release(task)
	k.RunAll()
	if done != 50 {
		t.Fatalf("done at %v, want 50 on a 2x CPU", done)
	}
}

func TestDetachDropsQueuedJobs(t *testing.T) {
	k := sim.NewKernel(1)
	cpu := NewCPU(k, "cpu0")
	a := &Task{Name: "a", WCET: 100, Priority: 1}
	b := &Task{Name: "b", WCET: 100, Priority: 2}
	cpu.Attach(a)
	cpu.Attach(b)
	cpu.Release(a)
	cpu.Release(b)
	k.Run(10)
	cpu.Detach(b)
	k.RunAll()
	if cpu.Stats().JobsCompleted != 1 {
		t.Fatalf("JobsCompleted = %d, want only a's job", cpu.Stats().JobsCompleted)
	}
	if len(cpu.Tasks()) != 1 || cpu.Tasks()[0].Name != "a" {
		t.Fatalf("Tasks = %v", cpu.Tasks())
	}
}

func TestDetachRunningJob(t *testing.T) {
	k := sim.NewKernel(1)
	cpu := NewCPU(k, "cpu0")
	a := &Task{Name: "a", WCET: 100, Priority: 1}
	b := &Task{Name: "b", WCET: 30, Priority: 2}
	cpu.Attach(a)
	cpu.Attach(b)
	cpu.Release(a)
	cpu.Release(b)
	k.Run(10)
	cpu.Detach(a) // a is running; b should take over immediately
	var bDone sim.Time
	// OnComplete set after release still applies (same task pointer).
	b.OnComplete = func(sim.Time) { bDone = k.Now() }
	k.RunAll()
	if bDone != 40 {
		t.Fatalf("b done at %v, want 40 (10 wait + 30 exec)", bDone)
	}
	if cpu.Stats().JobsCompleted != 1 {
		t.Fatalf("JobsCompleted = %d, want 1", cpu.Stats().JobsCompleted)
	}
}

func TestMigration(t *testing.T) {
	k := sim.NewKernel(1)
	c0 := NewCPU(k, "cpu0")
	c1 := NewCPU(k, "cpu1")
	img := &Task{Name: "img", Period: 10, WCET: 8, Migratable: true}
	hog := &Task{Name: "hog", Period: 10, WCET: 5, Priority: -1}
	c0.Attach(img)
	c0.Attach(hog)
	k.Run(200)
	missesBefore := c0.Stats().DeadlineMisses
	if missesBefore == 0 {
		t.Fatal("c0 should be overloaded before migration")
	}
	if err := c0.Migrate(img, c1); err != nil {
		t.Fatal(err)
	}
	base0, base1 := c0.Stats().DeadlineMisses, c1.Stats().DeadlineMisses
	k.Run(400)
	if c1.Stats().DeadlineMisses != base1 {
		t.Fatalf("img should meet deadlines on idle cpu1, misses %d", c1.Stats().DeadlineMisses-base1)
	}
	if c0.Stats().DeadlineMisses != base0 {
		t.Fatal("hog alone should not miss on cpu0")
	}
	if c1.Stats().JobsCompleted == 0 {
		t.Fatal("img must run on cpu1 after migration")
	}
}

func TestMigrateErrors(t *testing.T) {
	k := sim.NewKernel(1)
	c0 := NewCPU(k, "cpu0")
	c1 := NewCPU(k, "cpu1")
	fixed := &Task{Name: "fixed", WCET: 10}
	c0.Attach(fixed)
	if err := c0.Migrate(fixed, c1); err == nil {
		t.Fatal("non-migratable task must not migrate")
	}
	mig := &Task{Name: "mig", WCET: 10, Migratable: true}
	c1.Attach(mig)
	if err := c0.Migrate(mig, c1); err == nil {
		t.Fatal("migrating from the wrong CPU must fail")
	}
}

func TestAttachPanics(t *testing.T) {
	k := sim.NewKernel(1)
	c0 := NewCPU(k, "cpu0")
	c1 := NewCPU(k, "cpu1")
	task := &Task{Name: "t", WCET: 1}
	c0.Attach(task)
	defer func() {
		if recover() == nil {
			t.Fatal("double attach should panic")
		}
	}()
	c1.Attach(task)
}

func TestEffectiveDeadline(t *testing.T) {
	if d := (&Task{Deadline: 7, Period: 100, WCET: 3}).EffectiveDeadline(); d != 7 {
		t.Fatalf("explicit deadline: %v", d)
	}
	if d := (&Task{Period: 100, WCET: 3}).EffectiveDeadline(); d != 100 {
		t.Fatalf("period fallback: %v", d)
	}
	if d := (&Task{WCET: 3}).EffectiveDeadline(); d != 6 {
		t.Fatalf("aperiodic fallback: %v", d)
	}
}

func TestRateMonotonicSchedulability(t *testing.T) {
	// Two tasks under the RM bound must never miss.
	k := sim.NewKernel(1)
	cpu := NewCPU(k, "cpu0")
	cpu.Attach(&Task{Name: "t1", Period: 10 * sim.Millisecond, WCET: 3 * sim.Millisecond, Priority: 1})
	cpu.Attach(&Task{Name: "t2", Period: 25 * sim.Millisecond, WCET: 8 * sim.Millisecond, Priority: 2})
	k.Run(5 * sim.Second)
	if cpu.Stats().DeadlineMisses != 0 {
		t.Fatalf("schedulable set missed %d deadlines", cpu.Stats().DeadlineMisses)
	}
	if cpu.Stats().JobsCompleted < 600 {
		t.Fatalf("JobsCompleted = %d, want ≥ 600", cpu.Stats().JobsCompleted)
	}
}
