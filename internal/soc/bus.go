package soc

import (
	"sort"

	"trader/internal/sim"
)

// Bus models a shared interconnect with a fixed bandwidth serving transfer
// requests one at a time (single outstanding transaction, as on a simple SoC
// peripheral bus). Requests queue by priority then FIFO. The TASS stress
// tests (Sect. 4.7) "artificially take away shared resources such as bus
// bandwidth"; a bandwidth eater is simply a high-priority requestor.
type Bus struct {
	Name      string
	kernel    *sim.Kernel
	Bandwidth float64 // bytes per virtual second

	queue   []*transfer
	current *transfer
	busy    sim.Busy
	seq     uint64

	// Stats
	Transfers uint64
	Bytes     uint64
	// Latency collects per-transfer total latency in seconds.
	Latency sim.Series
}

type transfer struct {
	size     int
	priority int
	enqueued sim.Time
	seq      uint64
	done     func()
}

// NewBus creates a bus with the given bandwidth in bytes per virtual second.
func NewBus(kernel *sim.Kernel, name string, bandwidth float64) *Bus {
	if bandwidth <= 0 {
		panic("soc: bus bandwidth must be positive")
	}
	b := &Bus{Name: name, kernel: kernel, Bandwidth: bandwidth}
	b.busy.Start(kernel.Now())
	return b
}

// Transfer queues a transfer of size bytes at the given priority (lower is
// higher priority); done runs when the transfer completes (may be nil).
func (b *Bus) Transfer(size, priority int, done func()) {
	if size <= 0 {
		size = 1
	}
	b.seq++
	t := &transfer{size: size, priority: priority, enqueued: b.kernel.Now(), seq: b.seq, done: done}
	b.queue = append(b.queue, t)
	sort.SliceStable(b.queue, func(i, j int) bool {
		if b.queue[i].priority != b.queue[j].priority {
			return b.queue[i].priority < b.queue[j].priority
		}
		return b.queue[i].seq < b.queue[j].seq
	})
	b.pump()
}

// QueueLen returns the number of waiting transfers.
func (b *Bus) QueueLen() int { return len(b.queue) }

// Utilisation returns the busy fraction of the bus.
func (b *Bus) Utilisation() float64 { return b.busy.Utilisation(b.kernel.Now()) }

func (b *Bus) pump() {
	if b.current != nil || len(b.queue) == 0 {
		return
	}
	t := b.queue[0]
	b.queue = b.queue[1:]
	b.current = t
	b.busy.SetBusy(b.kernel.Now(), true)
	dur := sim.Time(float64(t.size) / b.Bandwidth * float64(sim.Second))
	if dur < 1 {
		dur = 1
	}
	b.kernel.Schedule(dur, func() {
		b.Transfers++
		b.Bytes += uint64(t.size)
		b.Latency.Observe((b.kernel.Now() - t.enqueued).Seconds())
		b.current = nil
		b.busy.SetBusy(b.kernel.Now(), false)
		if t.done != nil {
			t.done()
		}
		b.pump()
	})
}
