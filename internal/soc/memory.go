package soc

import (
	"fmt"
	"sort"

	"trader/internal/sim"
)

// MemController models a memory port shared by several requestors (CPUs,
// accelerators, display refresh). Each request occupies the port for
// ServiceTime; a pluggable Arbiter picks which requestor is served next.
// NXP Research's Sect. 4.5 line of work — "make memory arbitration more
// flexible such that it can be adapted at run-time to deal with problems
// concerning memory access" — corresponds to the Adaptive arbiter.
type MemController struct {
	Name        string
	kernel      *sim.Kernel
	ServiceTime sim.Time
	arbiter     Arbiter

	order      []string // registration order, for deterministic iteration
	requestors map[string]*Requestor
	busyNow    bool
	busy       sim.Busy
}

// Requestor is one client of the memory port.
type Requestor struct {
	Name string
	// Priority orders fixed-priority arbitration (lower = more important).
	Priority int
	// LatencyTarget is the acceptable per-request latency used by the
	// adaptive arbiter.
	LatencyTarget sim.Time

	queue []memReq
	// Served counts completed requests.
	Served uint64
	// Latency collects per-request latency in seconds.
	Latency sim.Series
	// ewma tracks smoothed latency (virtual ns) for adaptation.
	ewma float64
}

// Starvation returns the smoothed latency divided by the target — >1 means
// the requestor is not meeting its target.
func (r *Requestor) Starvation() float64 {
	if r.LatencyTarget <= 0 {
		return 0
	}
	return r.ewma / float64(r.LatencyTarget)
}

type memReq struct {
	enqueued sim.Time
	done     func()
}

// Arbiter picks the next requestor to serve.
type Arbiter interface {
	// Pick returns the name of a requestor with pending work, or "" to idle
	// until wake (then pump retries at the returned wake time).
	Pick(m *MemController) (name string, wake sim.Time)
	Name() string
}

// NewMemController creates a controller. serviceTime is the port occupancy
// per request.
func NewMemController(kernel *sim.Kernel, name string, serviceTime sim.Time, arb Arbiter) *MemController {
	if serviceTime <= 0 {
		panic("soc: memory service time must be positive")
	}
	m := &MemController{
		Name: name, kernel: kernel, ServiceTime: serviceTime, arbiter: arb,
		requestors: make(map[string]*Requestor),
	}
	m.busy.Start(kernel.Now())
	return m
}

// Register adds a requestor.
func (m *MemController) Register(r *Requestor) {
	if _, dup := m.requestors[r.Name]; dup {
		panic(fmt.Sprintf("soc: duplicate requestor %q", r.Name))
	}
	m.requestors[r.Name] = r
	m.order = append(m.order, r.Name)
}

// Requestor returns the named requestor, or nil.
func (m *MemController) Requestor(name string) *Requestor { return m.requestors[name] }

// Requestors returns all requestors in registration order.
func (m *MemController) Requestors() []*Requestor {
	out := make([]*Requestor, len(m.order))
	for i, n := range m.order {
		out[i] = m.requestors[n]
	}
	return out
}

// SetArbiter swaps the arbitration policy at run time.
func (m *MemController) SetArbiter(a Arbiter) { m.arbiter = a }

// ArbiterName returns the active policy name.
func (m *MemController) ArbiterName() string { return m.arbiter.Name() }

// Request enqueues a memory request for the named requestor; done (may be
// nil) runs at completion.
func (m *MemController) Request(requestor string, done func()) {
	r, ok := m.requestors[requestor]
	if !ok {
		panic(fmt.Sprintf("soc: unknown requestor %q", requestor))
	}
	r.queue = append(r.queue, memReq{enqueued: m.kernel.Now(), done: done})
	m.pump()
}

// Pending returns the number of queued requests for the named requestor.
func (m *MemController) Pending(requestor string) int {
	if r := m.requestors[requestor]; r != nil {
		return len(r.queue)
	}
	return 0
}

// Utilisation returns the busy fraction of the memory port.
func (m *MemController) Utilisation() float64 { return m.busy.Utilisation(m.kernel.Now()) }

func (m *MemController) pump() {
	if m.busyNow {
		return
	}
	name, wake := m.arbiter.Pick(m)
	if name == "" {
		// Re-arm only when work is actually waiting (e.g. TDMA idling until
		// the owner's slot); otherwise the port sleeps until Request.
		if wake > m.kernel.Now() && len(m.pendingNames()) > 0 {
			m.kernel.ScheduleAt(wake, func() { m.pump() })
		}
		return
	}
	r := m.requestors[name]
	if r == nil || len(r.queue) == 0 {
		return
	}
	req := r.queue[0]
	r.queue = r.queue[1:]
	m.busyNow = true
	m.busy.SetBusy(m.kernel.Now(), true)
	m.kernel.Schedule(m.ServiceTime, func() {
		lat := m.kernel.Now() - req.enqueued
		r.Served++
		r.Latency.Observe(lat.Seconds())
		const alpha = 0.2
		r.ewma = alpha*float64(lat) + (1-alpha)*r.ewma
		m.busyNow = false
		m.busy.SetBusy(m.kernel.Now(), false)
		if req.done != nil {
			req.done()
		}
		m.pump()
	})
}

// pendingNames returns requestors with queued work, in registration order.
func (m *MemController) pendingNames() []string {
	var out []string
	for _, n := range m.order {
		if len(m.requestors[n].queue) > 0 {
			out = append(out, n)
		}
	}
	return out
}

// FixedPriority serves the pending requestor with the lowest Priority value.
type FixedPriority struct{}

// Name implements Arbiter.
func (FixedPriority) Name() string { return "fixed-priority" }

// Pick implements Arbiter.
func (FixedPriority) Pick(m *MemController) (string, sim.Time) {
	pend := m.pendingNames()
	if len(pend) == 0 {
		return "", 0
	}
	sort.SliceStable(pend, func(i, j int) bool {
		return m.requestors[pend[i]].Priority < m.requestors[pend[j]].Priority
	})
	return pend[0], 0
}

// RoundRobin cycles through requestors in registration order.
type RoundRobin struct{ last int }

// Name implements Arbiter.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Arbiter.
func (rr *RoundRobin) Pick(m *MemController) (string, sim.Time) {
	n := len(m.order)
	for i := 1; i <= n; i++ {
		idx := (rr.last + i) % n
		name := m.order[idx]
		if len(m.requestors[name].queue) > 0 {
			rr.last = idx
			return name, 0
		}
	}
	return "", 0
}

// TDMA serves fixed time slots in a repeating frame; a slot whose owner has
// no pending request idles (non-work-conserving, giving hard isolation).
type TDMA struct {
	// Slots lists the owner of each slot in frame order.
	Slots []string
	// SlotLen is the duration of one slot.
	SlotLen sim.Time
}

// Name implements Arbiter.
func (t *TDMA) Name() string { return "tdma" }

// Pick implements Arbiter.
func (t *TDMA) Pick(m *MemController) (string, sim.Time) {
	if len(t.Slots) == 0 || t.SlotLen <= 0 {
		return "", 0
	}
	now := m.kernel.Now()
	slot := int(now/t.SlotLen) % len(t.Slots)
	owner := t.Slots[slot]
	if r := m.requestors[owner]; r != nil && len(r.queue) > 0 {
		return owner, 0
	}
	// Idle until the next slot boundary.
	next := (now/t.SlotLen + 1) * t.SlotLen
	return "", next
}

// Adaptive is the run-time flexible arbiter: it serves the pending requestor
// with the worst starvation (smoothed latency over target), so a requestor
// suffering memory-access problems is boosted automatically.
type Adaptive struct{}

// Name implements Arbiter.
func (Adaptive) Name() string { return "adaptive" }

// Pick implements Arbiter.
func (Adaptive) Pick(m *MemController) (string, sim.Time) {
	pend := m.pendingNames()
	if len(pend) == 0 {
		return "", 0
	}
	// Effective starvation blends smoothed history with the age of the
	// oldest waiting request, so a requestor that has never been served
	// (ewma 0) still accumulates urgency while it waits.
	score := func(name string) float64 {
		r := m.requestors[name]
		wait := float64(m.kernel.Now() - r.queue[0].enqueued)
		s := r.ewma
		if wait > s {
			s = wait
		}
		if r.LatencyTarget > 0 {
			return s / float64(r.LatencyTarget)
		}
		return s
	}
	best := pend[0]
	bestS := score(best)
	for _, n := range pend[1:] {
		if s := score(n); s > bestS {
			best, bestS = n, s
		}
	}
	return best, 0
}
