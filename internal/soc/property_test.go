package soc

import (
	"testing"
	"testing/quick"

	"trader/internal/sim"
)

// Property: no job is ever lost — every aperiodic release completes once
// the kernel drains, for any release pattern and priority assignment.
func TestPropertyNoLostJobs(t *testing.T) {
	f := func(pattern []uint16) bool {
		k := sim.NewKernel(5)
		cpu := NewCPU(k, "cpu0")
		tasks := []*Task{
			{Name: "a", WCET: 7, Priority: 0},
			{Name: "b", WCET: 13, Priority: 1},
			{Name: "c", WCET: 3, Priority: 2},
		}
		for _, task := range tasks {
			cpu.Attach(task)
		}
		n := 0
		for i, p := range pattern {
			if i >= 100 {
				break
			}
			task := tasks[int(p)%3]
			at := sim.Time(p % 500)
			k.ScheduleAt(at, func() { cpu.Release(task) })
			n++
		}
		k.RunAll()
		st := cpu.Stats()
		return st.JobsReleased == uint64(n) && st.JobsCompleted == uint64(n) && cpu.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion order respects priority for jobs released at the
// same instant — a strictly higher-priority job released together with a
// lower one always finishes first.
func TestPropertyPriorityOrdering(t *testing.T) {
	f := func(seedRaw uint8) bool {
		k := sim.NewKernel(int64(seedRaw))
		cpu := NewCPU(k, "cpu0")
		hi := &Task{Name: "hi", WCET: 5, Priority: 0}
		lo := &Task{Name: "lo", WCET: 5, Priority: 9}
		cpu.Attach(hi)
		cpu.Attach(lo)
		var order []string
		hi.OnComplete = func(sim.Time) { order = append(order, "hi") }
		lo.OnComplete = func(sim.Time) { order = append(order, "lo") }
		for i := 0; i < 5; i++ {
			at := sim.Time(i * 20)
			k.ScheduleAt(at, func() {
				cpu.Release(lo)
				cpu.Release(hi)
			})
		}
		k.RunAll()
		if len(order) != 10 {
			return false
		}
		// Pairwise: each (hi, lo) batch completes hi first.
		for i := 0; i < len(order); i += 2 {
			if order[i] != "hi" || order[i+1] != "lo" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilisation never exceeds 1 and response times are at least the
// demand, for any periodic task set.
func TestPropertySchedulerSanity(t *testing.T) {
	f := func(periodsRaw [3]uint8) bool {
		k := sim.NewKernel(9)
		cpu := NewCPU(k, "cpu0")
		for i, pr := range periodsRaw {
			period := sim.Time(pr%50) + 10
			wcet := period / 4
			cpu.Attach(&Task{
				Name: string(rune('a' + i)), Period: period, WCET: wcet, Priority: i,
			})
		}
		k.Run(5000)
		u := cpu.Utilisation()
		if u < 0 || u > 1.0000001 {
			return false
		}
		return cpu.Stats().Response.Min() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the bus conserves bytes — total bytes transferred equals the
// sum of all queued transfer sizes once drained.
func TestPropertyBusConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		k := sim.NewKernel(3)
		bus := NewBus(k, "axi", 100000)
		var want uint64
		for i, s := range sizes {
			if i >= 200 {
				break
			}
			size := int(s%1000) + 1
			want += uint64(size)
			bus.Transfer(size, int(s%4), nil)
		}
		k.RunAll()
		return bus.Bytes == want && bus.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
