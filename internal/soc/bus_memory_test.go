package soc

import (
	"testing"
	"testing/quick"

	"trader/internal/sim"
)

func TestBusServesFIFO(t *testing.T) {
	k := sim.NewKernel(1)
	bus := NewBus(k, "axi", 1000) // 1000 B/s => 1 byte per ms
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		bus.Transfer(100, 0, func() { order = append(order, i) })
	}
	k.RunAll()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	if bus.Transfers != 3 || bus.Bytes != 300 {
		t.Fatalf("stats: %d transfers, %d bytes", bus.Transfers, bus.Bytes)
	}
	// 3 transfers of 100 bytes at 1000 B/s = 0.3 s total.
	if k.Now() != 300*sim.Millisecond {
		t.Fatalf("finished at %v, want 300ms", k.Now())
	}
}

func TestBusPriority(t *testing.T) {
	k := sim.NewKernel(1)
	bus := NewBus(k, "axi", 1000)
	var order []string
	bus.Transfer(100, 5, func() { order = append(order, "lo1") })
	bus.Transfer(100, 5, func() { order = append(order, "lo2") })
	bus.Transfer(100, 0, func() { order = append(order, "hi") })
	k.RunAll()
	// lo1 is already in service; hi must overtake lo2.
	if len(order) != 3 || order[0] != "lo1" || order[1] != "hi" || order[2] != "lo2" {
		t.Fatalf("order = %v", order)
	}
}

func TestBusUtilisationAndLatency(t *testing.T) {
	k := sim.NewKernel(1)
	bus := NewBus(k, "axi", 1000)
	bus.Transfer(500, 0, nil)
	k.Run(1 * sim.Second)
	u := bus.Utilisation()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("Utilisation = %v, want ~0.5", u)
	}
	if bus.Latency.N() != 1 {
		t.Fatalf("latency samples = %d", bus.Latency.N())
	}
}

func TestBusBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBus(sim.NewKernel(1), "bad", 0)
}

func newMem(t *testing.T, arb Arbiter) (*sim.Kernel, *MemController) {
	t.Helper()
	k := sim.NewKernel(1)
	m := NewMemController(k, "ddr", 10, arb)
	m.Register(&Requestor{Name: "cpu", Priority: 0, LatencyTarget: 100})
	m.Register(&Requestor{Name: "gfx", Priority: 1, LatencyTarget: 100})
	m.Register(&Requestor{Name: "io", Priority: 2, LatencyTarget: 100})
	return k, m
}

func TestMemFixedPriority(t *testing.T) {
	k, m := newMem(t, FixedPriority{})
	var order []string
	for _, name := range []string{"io", "gfx", "cpu"} {
		name := name
		m.Request(name, func() { order = append(order, name) })
	}
	k.RunAll()
	// io starts first (port idle when it arrived); then cpu beats gfx.
	if order[0] != "io" || order[1] != "cpu" || order[2] != "gfx" {
		t.Fatalf("order = %v", order)
	}
}

func TestMemRoundRobin(t *testing.T) {
	k, m := newMem(t, &RoundRobin{})
	var order []string
	for i := 0; i < 2; i++ {
		for _, name := range []string{"cpu", "gfx", "io"} {
			name := name
			m.Request(name, func() { order = append(order, name) })
		}
	}
	k.RunAll()
	want := []string{"cpu", "gfx", "io", "cpu", "gfx", "io"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMemTDMAIsolation(t *testing.T) {
	k := sim.NewKernel(1)
	arb := &TDMA{Slots: []string{"cpu", "gfx"}, SlotLen: 10}
	m := NewMemController(k, "ddr", 10, arb)
	m.Register(&Requestor{Name: "cpu"})
	m.Register(&Requestor{Name: "gfx"})
	// Flood cpu; gfx must still be served in its slots.
	for i := 0; i < 10; i++ {
		m.Request("cpu", nil)
	}
	k.Run(15)
	m.Request("gfx", nil)
	k.Run(200)
	gfx := m.Requestor("gfx")
	if gfx.Served != 1 {
		t.Fatalf("gfx served %d, want 1", gfx.Served)
	}
	// gfx arrived at 15; its next slot starts at 30; service 10 → latency ≤ 35.
	if maxLat := gfx.Latency.Max(); maxLat > (35 * sim.Nanosecond).Seconds() {
		t.Fatalf("gfx latency %v too high under TDMA", maxLat)
	}
}

func TestMemTDMAIdleSlotAdvances(t *testing.T) {
	k := sim.NewKernel(1)
	arb := &TDMA{Slots: []string{"cpu", "gfx"}, SlotLen: 10}
	m := NewMemController(k, "ddr", 5, arb)
	m.Register(&Requestor{Name: "cpu"})
	m.Register(&Requestor{Name: "gfx"})
	// Only gfx has work, but at t=0 the slot belongs to cpu → wait to t=10.
	m.Request("gfx", nil)
	k.RunAll()
	if m.Requestor("gfx").Served != 1 {
		t.Fatal("gfx not served")
	}
	if k.Now() != 15 {
		t.Fatalf("served at %v, want completion at 15 (slot 10 + service 5)", k.Now())
	}
}

func TestMemAdaptiveBoostsStarved(t *testing.T) {
	// Under fixed priority, "io" (lowest priority) starves when cpu+gfx are
	// saturating. The adaptive arbiter must bound its latency.
	run := func(arb Arbiter) (served uint64, mean float64) {
		k := sim.NewKernel(1)
		m := NewMemController(k, "ddr", 10, arb)
		m.Register(&Requestor{Name: "cpu", Priority: 0, LatencyTarget: 50})
		m.Register(&Requestor{Name: "gfx", Priority: 1, LatencyTarget: 50})
		m.Register(&Requestor{Name: "io", Priority: 2, LatencyTarget: 50})
		// cpu and gfx keep the port at 100% (each re-requests on completion).
		var recpu, regfx func()
		recpu = func() { m.Request("cpu", recpu) }
		regfx = func() { m.Request("gfx", regfx) }
		m.Request("cpu", recpu)
		m.Request("gfx", regfx)
		// io requests periodically.
		k.Every(100, func() { m.Request("io", nil) })
		k.Run(10000)
		io := m.Requestor("io")
		return io.Served, io.Latency.Mean()
	}
	fixedServed, _ := run(FixedPriority{})
	adaptiveServed, adaptiveMean := run(Adaptive{})
	if fixedServed != 0 {
		t.Fatalf("fixed priority should starve io completely, served %d", fixedServed)
	}
	if adaptiveServed < 90 {
		t.Fatalf("adaptive served only %d io requests, want ≥ 90", adaptiveServed)
	}
	if adaptiveMean <= 0 || adaptiveMean > (100*sim.Nanosecond).Seconds() {
		t.Fatalf("adaptive io mean latency %v out of expected bound", adaptiveMean)
	}
}

func TestMemArbiterSwapAtRuntime(t *testing.T) {
	k, m := newMem(t, FixedPriority{})
	if m.ArbiterName() != "fixed-priority" {
		t.Fatal(m.ArbiterName())
	}
	m.SetArbiter(Adaptive{})
	if m.ArbiterName() != "adaptive" {
		t.Fatal(m.ArbiterName())
	}
	m.Request("cpu", nil)
	k.RunAll()
	if m.Requestor("cpu").Served != 1 {
		t.Fatal("request not served after arbiter swap")
	}
}

func TestMemUnknownRequestorPanics(t *testing.T) {
	_, m := newMem(t, FixedPriority{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Request("ghost", nil)
}

func TestMemDuplicateRequestorPanics(t *testing.T) {
	_, m := newMem(t, FixedPriority{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Register(&Requestor{Name: "cpu"})
}

// Property: with any request pattern, every request is eventually served
// under round-robin (work conservation + no loss).
func TestPropertyMemAllServed(t *testing.T) {
	f := func(pattern []uint8) bool {
		k := sim.NewKernel(3)
		m := NewMemController(k, "ddr", 7, &RoundRobin{})
		names := []string{"a", "b", "c"}
		for _, n := range names {
			m.Register(&Requestor{Name: n})
		}
		total := 0
		for i, p := range pattern {
			if i > 200 {
				break
			}
			name := names[int(p)%3]
			at := sim.Time(int(p) * 3)
			k.ScheduleAt(at, func() { m.Request(name, nil) })
			total++
		}
		k.RunAll()
		served := 0
		for _, r := range m.Requestors() {
			served += int(r.Served)
		}
		return served == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCPUScheduling(b *testing.B) {
	k := sim.NewKernel(1)
	cpu := NewCPU(k, "cpu0")
	cpu.Attach(&Task{Name: "a", Period: 10, WCET: 3, Priority: 1})
	cpu.Attach(&Task{Name: "b", Period: 25, WCET: 8, Priority: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(k.Now() + 1000)
	}
}

func BenchmarkMemArbitration(b *testing.B) {
	k := sim.NewKernel(1)
	m := NewMemController(k, "ddr", 10, Adaptive{})
	m.Register(&Requestor{Name: "cpu", LatencyTarget: 50})
	m.Register(&Requestor{Name: "gfx", LatencyTarget: 50})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Request("cpu", nil)
		m.Request("gfx", nil)
		k.RunAll()
	}
}
