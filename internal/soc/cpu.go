// Package soc models the system-on-chip resource substrate of a high-end TV
// as described in the paper's problem statement: "a TV is designed as a
// system-on-chip with multiple processors, various types of memory, and
// dedicated hardware accelerators". It provides:
//
//   - preemptive fixed-priority CPUs with periodic and aperiodic tasks,
//     deadline accounting and utilisation tracking (cpu.go),
//   - a shared bus with bandwidth arbitration (bus.go), and
//   - a memory controller with pluggable arbiters, including the run-time
//     adaptive arbiter investigated by NXP Research in Sect. 4.5 (memory.go).
//
// The model runs entirely on the deterministic sim kernel; overload, deadline
// misses and contention are therefore reproducible, which the stress-testing
// (Sect. 4.7) and load-balancing (Sect. 4.5) experiments rely on.
package soc

import (
	"fmt"
	"sort"

	"trader/internal/sim"
)

// Task describes work to schedule on a CPU. Periodic tasks (Period > 0)
// release a job every period; aperiodic tasks release jobs via Release.
type Task struct {
	Name     string
	Period   sim.Time // 0 for aperiodic
	WCET     sim.Time // execution demand per job
	Deadline sim.Time // relative deadline; 0 means Period (or WCET*2 for aperiodic)
	Priority int      // lower value = higher priority
	// Migratable marks the task as movable between CPUs (Sect. 4.5 IMEC
	// image-processing task migration).
	Migratable bool
	// OnComplete, when non-nil, runs when a job of this task finishes. The
	// argument is the job's response time.
	OnComplete func(response sim.Time)
	// OnMiss, when non-nil, runs when a job misses its deadline.
	OnMiss func(lateness sim.Time)

	cpu      *CPU
	repeater *sim.Repeater
	// jobSeq numbers jobs for deterministic tie-breaks.
	jobSeq uint64
}

// EffectiveDeadline returns the task's relative deadline.
func (t *Task) EffectiveDeadline() sim.Time {
	if t.Deadline > 0 {
		return t.Deadline
	}
	if t.Period > 0 {
		return t.Period
	}
	return 2 * t.WCET
}

// job is one released instance of a task.
type job struct {
	task      *Task
	remaining sim.Time
	release   sim.Time
	deadline  sim.Time // absolute
	seq       uint64
	demand    sim.Time
}

// CPUStats aggregates scheduler metrics.
type CPUStats struct {
	JobsReleased   uint64
	JobsCompleted  uint64
	DeadlineMisses uint64
	Preemptions    uint64
	// Response collects job response times (seconds).
	Response sim.Series
}

// CPU is a preemptive fixed-priority processor.
type CPU struct {
	Name   string
	kernel *sim.Kernel

	ready   []*job // sorted: highest priority first
	running *job
	runFrom sim.Time   // when the running job last got the CPU
	done    *sim.Event // completion event of the running job

	tasks map[string]*Task
	stats CPUStats
	busy  sim.Busy

	// Speed scales execution: demand is divided by Speed. 1.0 = nominal.
	Speed float64
}

// NewCPU creates a processor on the kernel.
func NewCPU(kernel *sim.Kernel, name string) *CPU {
	c := &CPU{Name: name, kernel: kernel, tasks: make(map[string]*Task), Speed: 1.0}
	c.busy.Start(kernel.Now())
	return c
}

// Stats returns a snapshot of scheduler metrics.
func (c *CPU) Stats() *CPUStats { return &c.stats }

// Utilisation returns the fraction of time the CPU was busy.
func (c *CPU) Utilisation() float64 { return c.busy.Utilisation(c.kernel.Now()) }

// Tasks returns the attached tasks sorted by name.
func (c *CPU) Tasks() []*Task {
	out := make([]*Task, 0, len(c.tasks))
	for _, t := range c.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Attach adds a task to this CPU and starts its periodic releases.
// It panics if the task is already attached somewhere.
func (c *CPU) Attach(t *Task) {
	if t.cpu != nil {
		panic(fmt.Sprintf("soc: task %q already attached to CPU %q", t.Name, t.cpu.Name))
	}
	if _, dup := c.tasks[t.Name]; dup {
		panic(fmt.Sprintf("soc: CPU %q already has a task %q", c.Name, t.Name))
	}
	t.cpu = c
	c.tasks[t.Name] = t
	if t.Period > 0 {
		// First release immediately, then every period.
		c.kernel.Schedule(0, func() {
			if t.cpu == c {
				c.release(t, t.WCET)
			}
		})
		t.repeater = c.kernel.Every(t.Period, func() {
			if t.cpu == c {
				c.release(t, t.WCET)
			}
		})
	}
}

// Detach removes the task: pending jobs of the task are discarded (as when a
// component is killed for recovery or migrated).
func (c *CPU) Detach(t *Task) {
	if t.cpu != c {
		return
	}
	if t.repeater != nil {
		t.repeater.Stop()
		t.repeater = nil
	}
	delete(c.tasks, t.Name)
	t.cpu = nil
	// Drop queued jobs of t.
	kept := c.ready[:0]
	for _, j := range c.ready {
		if j.task != t {
			kept = append(kept, j)
		}
	}
	c.ready = kept
	if c.running != nil && c.running.task == t {
		c.stopRunning(false)
		c.dispatch()
	}
}

// Migrate moves a migratable task to another CPU, dropping in-flight work
// (the paper's IMEC demonstrator migrates an image-processing task between
// processors; in-progress frame work is restarted on the target).
func (c *CPU) Migrate(t *Task, to *CPU) error {
	if !t.Migratable {
		return fmt.Errorf("soc: task %q is not migratable", t.Name)
	}
	if t.cpu != c {
		return fmt.Errorf("soc: task %q is not on CPU %q", t.Name, c.Name)
	}
	c.Detach(t)
	to.Attach(t)
	return nil
}

// Release triggers one aperiodic job with the task's WCET.
func (c *CPU) Release(t *Task) { c.ReleaseDemand(t, t.WCET) }

// ReleaseDemand triggers one job with an explicit execution demand, allowing
// data-dependent load (e.g. heavy error correction on a bad signal).
func (c *CPU) ReleaseDemand(t *Task, demand sim.Time) {
	if t.cpu != c {
		panic(fmt.Sprintf("soc: release of task %q not attached to CPU %q", t.Name, c.Name))
	}
	c.release(t, demand)
}

func (c *CPU) release(t *Task, demand sim.Time) {
	if demand <= 0 {
		demand = 1
	}
	t.jobSeq++
	now := c.kernel.Now()
	j := &job{
		task: t, remaining: demand, demand: demand,
		release: now, deadline: now + t.EffectiveDeadline(), seq: t.jobSeq,
	}
	c.stats.JobsReleased++
	c.enqueue(j)
	c.dispatch()
}

func (c *CPU) enqueue(j *job) {
	c.ready = append(c.ready, j)
	sort.SliceStable(c.ready, func(a, b int) bool {
		ja, jb := c.ready[a], c.ready[b]
		if ja.task.Priority != jb.task.Priority {
			return ja.task.Priority < jb.task.Priority
		}
		if ja.release != jb.release {
			return ja.release < jb.release
		}
		return ja.seq < jb.seq
	})
}

// stopRunning halts the current job; if requeue, the job keeps its progress
// and returns to the ready queue.
func (c *CPU) stopRunning(requeue bool) {
	if c.running == nil {
		return
	}
	elapsed := c.kernel.Now() - c.runFrom
	execd := sim.Time(float64(elapsed) * c.Speed)
	if execd > c.running.remaining {
		execd = c.running.remaining
	}
	c.running.remaining -= execd
	if c.done != nil {
		c.done.Cancel()
		c.done = nil
	}
	if requeue {
		c.enqueue(c.running)
	}
	c.running = nil
	c.busy.SetBusy(c.kernel.Now(), false)
}

// dispatch gives the CPU to the highest-priority ready job, preempting if
// necessary.
func (c *CPU) dispatch() {
	if len(c.ready) == 0 {
		return
	}
	top := c.ready[0]
	if c.running != nil {
		if c.running.task.Priority <= top.task.Priority {
			return // current job has (equal or) higher priority; no preemption
		}
		c.stats.Preemptions++
		c.stopRunning(true)
		top = c.ready[0]
	}
	c.ready = c.ready[1:]
	c.running = top
	c.runFrom = c.kernel.Now()
	c.busy.SetBusy(c.kernel.Now(), true)
	dur := sim.Time(float64(top.remaining) / c.Speed)
	if dur < 1 {
		dur = 1
	}
	c.done = c.kernel.Schedule(dur, func() { c.complete() })
}

func (c *CPU) complete() {
	j := c.running
	if j == nil {
		return
	}
	j.remaining = 0
	c.done = nil
	c.running = nil
	c.busy.SetBusy(c.kernel.Now(), false)
	c.stats.JobsCompleted++
	resp := c.kernel.Now() - j.release
	c.stats.Response.Observe(resp.Seconds())
	if c.kernel.Now() > j.deadline {
		c.stats.DeadlineMisses++
		if j.task.OnMiss != nil {
			j.task.OnMiss(c.kernel.Now() - j.deadline)
		}
	}
	if j.task.OnComplete != nil {
		j.task.OnComplete(resp)
	}
	c.dispatch()
}

// QueueLen returns the number of ready (not running) jobs.
func (c *CPU) QueueLen() int { return len(c.ready) }

// Load returns the total utilisation demand of attached periodic tasks
// (sum WCET/Period), a static overload indicator.
func (c *CPU) Load() float64 {
	var u float64
	for _, t := range c.tasks {
		if t.Period > 0 {
			u += float64(t.WCET) / float64(t.Period)
		}
	}
	return u / c.Speed
}
