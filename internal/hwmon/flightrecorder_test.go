package hwmon_test

import (
	"testing"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/hwmon"
	"trader/internal/sim"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

func TestFlightRecorderWindow(t *testing.T) {
	fr := hwmon.NewFlightRecorder(3)
	bus := event.NewBus()
	fr.AttachBus(bus)
	for i := 0; i < 5; i++ {
		bus.Publish(event.Event{Name: "e", Seq: uint64(i)})
	}
	snap := fr.Capture()
	if len(snap) != 3 || snap[0].Seq != 2 || snap[2].Seq != 4 {
		t.Fatalf("snapshot = %v", snap)
	}
	if fr.Dropped() != 2 || fr.Len() != 3 || fr.Captures != 1 {
		t.Fatalf("stats: dropped=%d len=%d captures=%d", fr.Dropped(), fr.Len(), fr.Captures)
	}
	fr.Detach()
	bus.Publish(event.Event{Name: "e", Seq: 99})
	if fr.Capture()[2].Seq != 4 {
		t.Fatal("detached recorder still recording")
	}
}

func TestFlightRecorderFilter(t *testing.T) {
	fr := hwmon.NewFlightRecorder(10)
	bus := event.NewBus()
	fr.AttachBus(bus)
	for i := 0; i < 6; i++ {
		name := "frame"
		if i%2 == 0 {
			name = "audio"
		}
		bus.Publish(event.Event{Name: name, Seq: uint64(i)})
	}
	audio := fr.CaptureMatching(func(e event.Event) bool { return e.Name == "audio" })
	if len(audio) != 3 {
		t.Fatalf("filtered = %d, want 3", len(audio))
	}
}

// TestPreErrorContextOnTV: the recorder preserves the events leading up to
// a detected error on the TV — the input a diagnosis engine needs.
func TestPreErrorContextOnTV(t *testing.T) {
	k := sim.NewKernel(6)
	cfg := tvsim.Config{}
	tv := tvsim.New(k, cfg)
	model := tvsim.BuildSpecModel(k, cfg)
	mon, err := core.NewMonitor(k, model, core.Configuration{
		Observables: []core.Observable{
			{Name: "audio-volume", EventName: "audio", ValueName: "volume",
				ModelVar: "volume", Threshold: 0.5, Tolerance: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fr := hwmon.NewFlightRecorder(64)
	fr.AttachBus(tv.Bus())
	var context []event.Event
	mon.OnError(func(wire.ErrorReport) {
		if context == nil {
			context = fr.Capture()
		}
	})
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	mon.AttachBus(tv.Bus())

	tv.PressKey(tvsim.KeyPower)
	k.Run(sim.Second)
	tv.Injector().Schedule(faults.Fault{
		ID: "skew", Kind: faults.ValueCorruption, Target: "audio",
		At: k.Now(), Param: -15,
	})
	k.Run(k.Now() + 50*sim.Millisecond)
	tv.PressKey(tvsim.KeyVolUp)
	tv.PressKey(tvsim.KeyVolUp)
	k.Run(k.Now() + 50*sim.Millisecond)

	if context == nil {
		t.Fatal("error not detected")
	}
	// The window must contain the key presses that preceded the detection.
	keys := 0
	for _, e := range context {
		if e.Name == "key" {
			keys++
		}
	}
	if keys < 2 {
		t.Fatalf("pre-error context lost the key presses: %d keys in %d events", keys, len(context))
	}
	// Chronological order.
	for i := 1; i < len(context); i++ {
		if context[i].At < context[i-1].At {
			t.Fatal("context out of order")
		}
	}
}
