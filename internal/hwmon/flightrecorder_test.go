package hwmon_test

import (
	"fmt"
	"sync"
	"testing"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/hwmon"
	"trader/internal/sim"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

func TestFlightRecorderWindow(t *testing.T) {
	fr := hwmon.NewFlightRecorder(3)
	bus := event.NewBus()
	fr.AttachBus(bus)
	for i := 0; i < 5; i++ {
		bus.Publish(event.Event{Name: "e", Seq: uint64(i)})
	}
	snap := fr.Capture()
	if len(snap) != 3 || snap[0].Seq != 2 || snap[2].Seq != 4 {
		t.Fatalf("snapshot = %v", snap)
	}
	if fr.Dropped() != 2 || fr.Len() != 3 || fr.Captures != 1 {
		t.Fatalf("stats: dropped=%d len=%d captures=%d", fr.Dropped(), fr.Len(), fr.Captures)
	}
	fr.Detach()
	bus.Publish(event.Event{Name: "e", Seq: 99})
	if fr.Capture()[2].Seq != 4 {
		t.Fatal("detached recorder still recording")
	}
}

func TestFlightRecorderFilter(t *testing.T) {
	fr := hwmon.NewFlightRecorder(10)
	bus := event.NewBus()
	fr.AttachBus(bus)
	for i := 0; i < 6; i++ {
		name := "frame"
		if i%2 == 0 {
			name = "audio"
		}
		bus.Publish(event.Event{Name: name, Seq: uint64(i)})
	}
	audio := fr.CaptureMatching(func(e event.Event) bool { return e.Name == "audio" })
	if len(audio) != 3 {
		t.Fatalf("filtered = %d, want 3", len(audio))
	}
}

// TestFlightRecorderWraparound drives the ring through many full cycles and
// checks the retained window is exactly the last `capacity` events, in
// order, at every cycle boundary and mid-cycle position.
func TestFlightRecorderWraparound(t *testing.T) {
	const capacity = 7
	fr := hwmon.NewFlightRecorder(capacity)
	for i := 0; i < 5*capacity+3; i++ {
		fr.Record(event.Event{Name: "e", Seq: uint64(i)})
		snap := fr.Capture()
		wantLen := i + 1
		if wantLen > capacity {
			wantLen = capacity
		}
		if len(snap) != wantLen || fr.Len() != wantLen {
			t.Fatalf("after %d events: window %d/%d, want %d", i+1, len(snap), fr.Len(), wantLen)
		}
		for j, e := range snap {
			if want := uint64(i + 1 - wantLen + j); e.Seq != want {
				t.Fatalf("after %d events: snap[%d].Seq = %d, want %d", i+1, j, e.Seq, want)
			}
		}
		wantDropped := uint64(0)
		if i+1 > capacity {
			wantDropped = uint64(i + 1 - capacity)
		}
		if fr.Dropped() != wantDropped {
			t.Fatalf("after %d events: dropped %d, want %d", i+1, fr.Dropped(), wantDropped)
		}
	}
	// A capacity-1 ring degenerates to "latest event only".
	one := hwmon.NewFlightRecorder(1)
	for i := 0; i < 4; i++ {
		one.Record(event.Event{Seq: uint64(i)})
	}
	if snap := one.Capture(); len(snap) != 1 || snap[0].Seq != 3 {
		t.Fatalf("capacity-1 window = %v", snap)
	}
}

// TestFlightRecorderSnapshotUnderLoad captures while concurrent publishers
// hammer the shared bus — the exact shape of the fleet diagnosis pull,
// where a snapshot request lands while the device keeps streaming. Run
// under -race this doubles as the recorder's concurrency audit. Every
// snapshot must be internally consistent (monotonic per-publisher
// sequences, length within capacity) and the final accounting must balance.
func TestFlightRecorderSnapshotUnderLoad(t *testing.T) {
	const (
		capacity   = 64
		publishers = 4
		perPub     = 500
		captures   = 200
	)
	fr := hwmon.NewFlightRecorder(capacity)
	bus := event.NewBus()
	fr.AttachBus(bus)

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				bus.Publish(event.Event{Name: "load", Source: fmt.Sprintf("pub-%d", p), Seq: uint64(i)})
			}
		}(p)
	}
	var snapErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < captures; i++ {
			snap := fr.Capture()
			if len(snap) > capacity {
				snapErr = fmt.Errorf("capture %d: window %d exceeds capacity", i, len(snap))
				return
			}
			last := make(map[string]uint64)
			for _, e := range snap {
				if prev, ok := last[e.Source]; ok && e.Seq <= prev {
					snapErr = fmt.Errorf("capture %d: %s seq %d after %d (torn window)", i, e.Source, e.Seq, prev)
					return
				}
				last[e.Source] = e.Seq
			}
		}
	}()
	wg.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	if got := uint64(fr.Len()) + fr.Dropped(); got != publishers*perPub {
		t.Fatalf("retained+dropped = %d, want %d", got, publishers*perPub)
	}
	if fr.Captures < captures {
		t.Fatalf("captures = %d, want ≥ %d", fr.Captures, captures)
	}
}

// TestPreErrorContextOnTV: the recorder preserves the events leading up to
// a detected error on the TV — the input a diagnosis engine needs.
func TestPreErrorContextOnTV(t *testing.T) {
	k := sim.NewKernel(6)
	cfg := tvsim.Config{}
	tv := tvsim.New(k, cfg)
	model := tvsim.BuildSpecModel(k, cfg)
	mon, err := core.NewMonitor(k, model, core.Configuration{
		Observables: []core.Observable{
			{Name: "audio-volume", EventName: "audio", ValueName: "volume",
				ModelVar: "volume", Threshold: 0.5, Tolerance: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fr := hwmon.NewFlightRecorder(64)
	fr.AttachBus(tv.Bus())
	var context []event.Event
	mon.OnError(func(wire.ErrorReport) {
		if context == nil {
			context = fr.Capture()
		}
	})
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	mon.AttachBus(tv.Bus())

	tv.PressKey(tvsim.KeyPower)
	k.Run(sim.Second)
	tv.Injector().Schedule(faults.Fault{
		ID: "skew", Kind: faults.ValueCorruption, Target: "audio",
		At: k.Now(), Param: -15,
	})
	k.Run(k.Now() + 50*sim.Millisecond)
	tv.PressKey(tvsim.KeyVolUp)
	tv.PressKey(tvsim.KeyVolUp)
	k.Run(k.Now() + 50*sim.Millisecond)

	if context == nil {
		t.Fatal("error not detected")
	}
	// The window must contain the key presses that preceded the detection.
	keys := 0
	for _, e := range context {
		if e.Name == "key" {
			keys++
		}
	}
	if keys < 2 {
		t.Fatalf("pre-error context lost the key presses: %d keys in %d events", keys, len(context))
	}
	// Chronological order.
	for i := 1; i < len(context); i++ {
		if context[i].At < context[i-1].At {
			t.Fatal("context out of order")
		}
	}
}
