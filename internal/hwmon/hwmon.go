// Package hwmon models the hardware-assisted observation and detection
// mechanisms of Sect. 4.1/4.3: the on-chip debug and trace infrastructure
// (trace buffer), value range checking, watchdogs, and hardware deadlock
// detection via a wait-for graph. In the paper these exploit "mechanisms
// already available in hardware"; here they watch the simulated SoC.
package hwmon

import (
	"fmt"
	"sort"

	"trader/internal/event"
	"trader/internal/sim"
)

// RangeRule bounds one observable value.
type RangeRule struct {
	Name      string // rule id in reports
	EventName string // event carrying the value
	ValueName string
	Min, Max  float64
}

// RangeViolation reports an out-of-range value.
type RangeViolation struct {
	Rule  string
	Value float64
	At    sim.Time
}

func (v RangeViolation) String() string {
	return fmt.Sprintf("[%s] range violation %q: value %g", v.At, v.Rule, v.Value)
}

// RangeChecker watches a bus for out-of-range values — the hardware range
// checking the project drives through the debug infrastructure.
type RangeChecker struct {
	kernel *sim.Kernel
	rules  map[string][]RangeRule // by event name
	onViol []func(RangeViolation)
	sub    *event.Subscription
	// Checks and Violations count activity.
	Checks     uint64
	Violations uint64
}

// NewRangeChecker creates a checker with the given rules.
func NewRangeChecker(kernel *sim.Kernel, rules ...RangeRule) *RangeChecker {
	rc := &RangeChecker{kernel: kernel, rules: make(map[string][]RangeRule)}
	for _, r := range rules {
		rc.rules[r.EventName] = append(rc.rules[r.EventName], r)
	}
	return rc
}

// OnViolation registers a handler.
func (rc *RangeChecker) OnViolation(fn func(RangeViolation)) {
	rc.onViol = append(rc.onViol, fn)
}

// AttachBus subscribes the checker to a SUO bus.
func (rc *RangeChecker) AttachBus(bus *event.Bus) {
	rc.sub = bus.Subscribe("", func(e event.Event) { rc.Check(e) })
}

// Detach unsubscribes.
func (rc *RangeChecker) Detach() {
	if rc.sub != nil {
		rc.sub.Unsubscribe()
		rc.sub = nil
	}
}

// Check applies the rules to one event.
func (rc *RangeChecker) Check(e event.Event) {
	for _, r := range rc.rules[e.Name] {
		v, ok := e.Get(r.ValueName)
		if !ok {
			continue
		}
		rc.Checks++
		if v < r.Min || v > r.Max {
			rc.Violations++
			viol := RangeViolation{Rule: r.Name, Value: v, At: e.At}
			for _, fn := range rc.onViol {
				fn(viol)
			}
		}
	}
}

// Watchdog barks when a component fails to kick it within its period — the
// classic liveness probe, here in virtual time.
type Watchdog struct {
	kernel *sim.Kernel
	Name   string
	Period sim.Time
	OnBark func(sinceLastKick sim.Time)

	lastKick sim.Time
	rep      *sim.Repeater
	// Barks counts timeouts.
	Barks  uint64
	barked bool
}

// NewWatchdog creates and arms a watchdog.
func NewWatchdog(kernel *sim.Kernel, name string, period sim.Time, onBark func(sim.Time)) *Watchdog {
	if period <= 0 {
		panic("hwmon: watchdog period must be positive")
	}
	w := &Watchdog{kernel: kernel, Name: name, Period: period, OnBark: onBark, lastKick: kernel.Now()}
	w.rep = kernel.Every(period/2, w.check)
	return w
}

// Kick resets the watchdog.
func (w *Watchdog) Kick() {
	w.lastKick = w.kernel.Now()
	w.barked = false
}

// Stop disarms the watchdog.
func (w *Watchdog) Stop() { w.rep.Stop() }

func (w *Watchdog) check() {
	since := w.kernel.Now() - w.lastKick
	if since > w.Period && !w.barked {
		w.barked = true
		w.Barks++
		if w.OnBark != nil {
			w.OnBark(since)
		}
	}
}

// WaitGraph is a resource wait-for graph with cycle detection — the
// hardware deadlock detector. Nodes are component/task names; an edge a→b
// means a waits for b.
type WaitGraph struct {
	edges map[string]map[string]bool
}

// NewWaitGraph creates an empty graph.
func NewWaitGraph() *WaitGraph {
	return &WaitGraph{edges: make(map[string]map[string]bool)}
}

// AddWait records that a waits for b.
func (g *WaitGraph) AddWait(a, b string) {
	if g.edges[a] == nil {
		g.edges[a] = make(map[string]bool)
	}
	g.edges[a][b] = true
}

// RemoveWait clears a wait edge (the resource was granted).
func (g *WaitGraph) RemoveWait(a, b string) {
	if g.edges[a] != nil {
		delete(g.edges[a], b)
	}
}

// Clear removes all outgoing waits of a node (it finished or was killed).
func (g *WaitGraph) Clear(a string) { delete(g.edges, a) }

// FindCycle returns one deadlock cycle as an ordered node list (the first
// node repeated at the end is omitted), or nil when the graph is acyclic.
// Detection is deterministic: nodes are explored in sorted order.
func (g *WaitGraph) FindCycle() []string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	parent := map[string]string{}
	nodes := make([]string, 0, len(g.edges))
	for n := range g.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var cycle []string
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = grey
		succs := make([]string, 0, len(g.edges[n]))
		for s := range g.edges[n] {
			succs = append(succs, s)
		}
		sort.Strings(succs)
		for _, s := range succs {
			switch color[s] {
			case white:
				parent[s] = n
				if visit(s) {
					return true
				}
			case grey:
				// Found a back edge n→s: reconstruct the cycle s…n.
				cycle = []string{s}
				for cur := n; cur != s; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				// Reverse to get forward order s → … → n.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white {
			if visit(n) {
				return cycle
			}
		}
	}
	return nil
}

// DeadlockMonitor periodically scans a wait graph and reports new cycles.
type DeadlockMonitor struct {
	Graph  *WaitGraph
	kernel *sim.Kernel
	rep    *sim.Repeater
	onDl   []func(cycle []string, at sim.Time)
	last   string
	// Detections counts distinct reported cycles.
	Detections uint64
}

// NewDeadlockMonitor scans the graph every period.
func NewDeadlockMonitor(kernel *sim.Kernel, g *WaitGraph, period sim.Time) *DeadlockMonitor {
	m := &DeadlockMonitor{Graph: g, kernel: kernel}
	m.rep = kernel.Every(period, m.scan)
	return m
}

// OnDeadlock registers a handler.
func (m *DeadlockMonitor) OnDeadlock(fn func(cycle []string, at sim.Time)) {
	m.onDl = append(m.onDl, fn)
}

// Stop disarms the monitor.
func (m *DeadlockMonitor) Stop() { m.rep.Stop() }

func (m *DeadlockMonitor) scan() {
	cycle := m.Graph.FindCycle()
	if cycle == nil {
		m.last = ""
		return
	}
	key := fmt.Sprint(cycle)
	if key == m.last {
		return // already reported this deadlock
	}
	m.last = key
	m.Detections++
	for _, fn := range m.onDl {
		fn(cycle, m.kernel.Now())
	}
}
