package hwmon

import (
	"sync"

	"trader/internal/event"
)

// FlightRecorder is the software face of the on-chip trace buffer (Sect.
// 4.1): it continuously records the last N events of a SUO into a ring
// buffer so that, when a detector fires, the events *leading up to* the
// error are available for diagnosis — the observation data program-spectra
// and log-based analyses start from.
//
// A FlightRecorder is safe for concurrent use: fleet buses deliver events
// on whichever goroutine publishes, and the diagnosis plane captures
// snapshots on demand while recording continues, so Record and Capture may
// race freely without tearing the window.
type FlightRecorder struct {
	mu  sync.Mutex
	log *event.Log
	sub *event.Subscription
	// Captures counts snapshots taken. Guarded by the recorder's lock;
	// read it after capturing stops (or via a captured snapshot's count).
	Captures uint64
}

// NewFlightRecorder creates a recorder retaining the last capacity events.
func NewFlightRecorder(capacity int) *FlightRecorder {
	return &FlightRecorder{log: event.NewLog(capacity)}
}

// AttachBus starts recording every event on the bus.
func (fr *FlightRecorder) AttachBus(bus *event.Bus) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.sub = bus.Subscribe("", fr.Record)
}

// Detach stops recording (the retained window stays readable).
func (fr *FlightRecorder) Detach() {
	fr.mu.Lock()
	sub := fr.sub
	fr.sub = nil
	fr.mu.Unlock()
	if sub != nil {
		sub.Unsubscribe()
	}
}

// Record appends one event to the window — the bus handler AttachBus
// registers, exported so recorders can be fed directly (e.g. by a device
// client that sits between its bus and the wire).
func (fr *FlightRecorder) Record(e event.Event) {
	fr.mu.Lock()
	fr.log.Append(e)
	fr.mu.Unlock()
}

// Capture returns the retained window oldest-first — call it from an error
// handler to preserve the pre-error context.
func (fr *FlightRecorder) Capture() []event.Event {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.Captures++
	return fr.log.Snapshot()
}

// CaptureMatching returns only the retained events satisfying pred.
func (fr *FlightRecorder) CaptureMatching(pred func(event.Event) bool) []event.Event {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.Captures++
	return fr.log.Filter(pred)
}

// Dropped reports how many events fell off the back of the window.
func (fr *FlightRecorder) Dropped() uint64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.log.Dropped
}

// Len reports the number of retained events.
func (fr *FlightRecorder) Len() int {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.log.Len()
}
