package hwmon

import (
	"trader/internal/event"
)

// FlightRecorder is the software face of the on-chip trace buffer (Sect.
// 4.1): it continuously records the last N events of a SUO into a ring
// buffer so that, when a detector fires, the events *leading up to* the
// error are available for diagnosis — the observation data program-spectra
// and log-based analyses start from.
type FlightRecorder struct {
	log *event.Log
	sub *event.Subscription
	// Captures counts snapshots taken.
	Captures uint64
}

// NewFlightRecorder creates a recorder retaining the last capacity events.
func NewFlightRecorder(capacity int) *FlightRecorder {
	return &FlightRecorder{log: event.NewLog(capacity)}
}

// AttachBus starts recording every event on the bus.
func (fr *FlightRecorder) AttachBus(bus *event.Bus) {
	fr.sub = bus.Subscribe("", func(e event.Event) { fr.log.Append(e) })
}

// Detach stops recording (the retained window stays readable).
func (fr *FlightRecorder) Detach() {
	if fr.sub != nil {
		fr.sub.Unsubscribe()
		fr.sub = nil
	}
}

// Capture returns the retained window oldest-first — call it from an error
// handler to preserve the pre-error context.
func (fr *FlightRecorder) Capture() []event.Event {
	fr.Captures++
	return fr.log.Snapshot()
}

// CaptureMatching returns only the retained events satisfying pred.
func (fr *FlightRecorder) CaptureMatching(pred func(event.Event) bool) []event.Event {
	fr.Captures++
	return fr.log.Filter(pred)
}

// Dropped reports how many events fell off the back of the window.
func (fr *FlightRecorder) Dropped() uint64 { return fr.log.Dropped }

// Len reports the number of retained events.
func (fr *FlightRecorder) Len() int { return fr.log.Len() }
