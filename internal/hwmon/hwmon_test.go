package hwmon

import (
	"testing"
	"testing/quick"

	"trader/internal/event"
	"trader/internal/sim"
)

func TestRangeChecker(t *testing.T) {
	k := sim.NewKernel(1)
	rc := NewRangeChecker(k,
		RangeRule{Name: "volume", EventName: "audio", ValueName: "volume", Min: 0, Max: 100},
		RangeRule{Name: "angle", EventName: "swivel", ValueName: "angle", Min: -45, Max: 45},
	)
	var got []RangeViolation
	rc.OnViolation(func(v RangeViolation) { got = append(got, v) })
	bus := event.NewBus()
	rc.AttachBus(bus)

	bus.Publish(event.Event{Kind: event.Output, Name: "audio"}.With("volume", 50))
	bus.Publish(event.Event{Kind: event.Output, Name: "swivel"}.With("angle", -45))
	if len(got) != 0 {
		t.Fatalf("in-range values flagged: %v", got)
	}
	bus.Publish(event.Event{Kind: event.Output, Name: "audio", At: 7}.With("volume", 130))
	if len(got) != 1 || got[0].Rule != "volume" || got[0].Value != 130 {
		t.Fatalf("got = %v", got)
	}
	if got[0].At != 7 {
		t.Fatal("violation should carry event time")
	}
	if got[0].String() == "" {
		t.Fatal("String should render")
	}
	// Events without the value, or with other names, are ignored.
	bus.Publish(event.Event{Kind: event.Output, Name: "audio"}.With("muted", 1))
	bus.Publish(event.Event{Kind: event.Output, Name: "frame"}.With("volume", 999))
	if len(got) != 1 {
		t.Fatal("irrelevant events flagged")
	}
	rc.Detach()
	bus.Publish(event.Event{Kind: event.Output, Name: "audio"}.With("volume", 200))
	if len(got) != 1 {
		t.Fatal("detached checker still checking")
	}
	if rc.Checks != 3 || rc.Violations != 1 {
		t.Fatalf("stats: checks=%d violations=%d", rc.Checks, rc.Violations)
	}
}

func TestWatchdog(t *testing.T) {
	k := sim.NewKernel(1)
	var barks []sim.Time
	w := NewWatchdog(k, "video", 100, func(since sim.Time) { barks = append(barks, k.Now()) })
	// Healthy kicks.
	for i := 0; i < 5; i++ {
		k.Run(k.Now() + 50)
		w.Kick()
	}
	if len(barks) != 0 {
		t.Fatalf("healthy watchdog barked: %v", barks)
	}
	// Silence → bark once.
	k.Run(k.Now() + 500)
	if len(barks) != 1 {
		t.Fatalf("barks = %d, want 1", len(barks))
	}
	if w.Barks != 1 {
		t.Fatal("Barks counter wrong")
	}
	// Kick again: fresh episode can bark again.
	w.Kick()
	k.Run(k.Now() + 500)
	if len(barks) != 2 {
		t.Fatalf("barks = %d, want 2", len(barks))
	}
	w.Stop()
	k.Run(k.Now() + 1000)
	if len(barks) != 2 {
		t.Fatal("stopped watchdog barked")
	}
}

func TestWatchdogPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewWatchdog(sim.NewKernel(1), "w", 0, nil)
}

func TestWaitGraphNoCycle(t *testing.T) {
	g := NewWaitGraph()
	g.AddWait("a", "b")
	g.AddWait("b", "c")
	g.AddWait("a", "c")
	if c := g.FindCycle(); c != nil {
		t.Fatalf("acyclic graph reported cycle %v", c)
	}
}

func TestWaitGraphSimpleCycle(t *testing.T) {
	g := NewWaitGraph()
	g.AddWait("a", "b")
	g.AddWait("b", "a")
	c := g.FindCycle()
	if len(c) != 2 {
		t.Fatalf("cycle = %v, want 2 nodes", c)
	}
	g.RemoveWait("b", "a")
	if c := g.FindCycle(); c != nil {
		t.Fatalf("cycle after removal: %v", c)
	}
}

func TestWaitGraphLongCycleAndClear(t *testing.T) {
	g := NewWaitGraph()
	g.AddWait("a", "b")
	g.AddWait("b", "c")
	g.AddWait("c", "d")
	g.AddWait("d", "b")
	c := g.FindCycle()
	if len(c) != 3 {
		t.Fatalf("cycle = %v, want [b c d]", c)
	}
	// Cycle must be a real cycle: each node waits for the next.
	for i, n := range c {
		next := c[(i+1)%len(c)]
		if !g.edges[n][next] {
			t.Fatalf("reported cycle %v has no edge %s→%s", c, n, next)
		}
	}
	g.Clear("c")
	if c := g.FindCycle(); c != nil {
		t.Fatalf("cycle after Clear: %v", c)
	}
}

// Property: FindCycle returns a genuine cycle or nil; and a graph built as a
// DAG (edges only low→high) never reports one.
func TestPropertyWaitGraph(t *testing.T) {
	f := func(edges []uint16, cyclic bool) bool {
		g := NewWaitGraph()
		names := []string{"a", "b", "c", "d", "e", "f"}
		for _, e := range edges {
			i, j := int(e)%len(names), int(e>>8)%len(names)
			if !cyclic {
				if i >= j {
					continue // DAG: strictly ascending edges
				}
			}
			if i == j {
				continue
			}
			g.AddWait(names[i], names[j])
		}
		c := g.FindCycle()
		if !cyclic {
			return c == nil
		}
		if c == nil {
			return true
		}
		for i, n := range c {
			next := c[(i+1)%len(c)]
			if !g.edges[n][next] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockMonitor(t *testing.T) {
	k := sim.NewKernel(1)
	g := NewWaitGraph()
	m := NewDeadlockMonitor(k, g, 10)
	var got [][]string
	m.OnDeadlock(func(c []string, at sim.Time) { got = append(got, c) })
	k.Run(100)
	if len(got) != 0 {
		t.Fatal("no deadlock yet")
	}
	g.AddWait("decoder", "buffer")
	g.AddWait("buffer", "decoder")
	k.Run(200)
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1 (same cycle reported once)", len(got))
	}
	// Resolve, then a different deadlock.
	g.RemoveWait("buffer", "decoder")
	k.Run(300)
	g.AddWait("mixer", "decoder")
	g.AddWait("decoder", "mixer")
	k.Run(400)
	if len(got) != 2 {
		t.Fatalf("detections = %d, want 2", len(got))
	}
	if m.Detections != 2 {
		t.Fatal("Detections counter wrong")
	}
	m.Stop()
}
