// Package fmea implements software failure-modes-and-effects analysis at
// the architecture level (Sect. 4.7, after Sözer et al., "Extending failure
// modes and effects analysis approach for reliability analysis at the
// software architecture design level"). An architecture model — components,
// their failure modes, and failure-propagation paths — yields a criticality
// ranking that tells developers which components threaten user-perceived
// reliability most.
package fmea

import (
	"fmt"
	"sort"
)

// FailureMode is one way a component can fail.
type FailureMode struct {
	Name string
	// Occurrence is the relative likelihood in [0,1].
	Occurrence float64
	// LocalSeverity is the user-visible severity if the failure stays
	// contained in the component, in [0,1].
	LocalSeverity float64
	// Detectability is how likely run-time detection catches it, in [0,1]
	// (1 = always detected; low detectability raises risk).
	Detectability float64
}

// Component is one architectural element.
type Component struct {
	Name string
	// UserFacing scales severity: failures of user-facing components are
	// directly visible.
	UserFacing bool
	Modes      []FailureMode
}

// Propagation says failures of From reach To with the given attenuation
// (0..1]: a propagated failure manifests in To with severity scaled by it.
type Propagation struct {
	From, To    string
	Attenuation float64
}

// Architecture is the analysis input.
type Architecture struct {
	components map[string]*Component
	order      []string
	edges      map[string][]Propagation
}

// NewArchitecture creates an empty model.
func NewArchitecture() *Architecture {
	return &Architecture{
		components: make(map[string]*Component),
		edges:      make(map[string][]Propagation),
	}
}

// AddComponent registers a component.
func (a *Architecture) AddComponent(c Component) {
	if _, dup := a.components[c.Name]; dup {
		panic(fmt.Sprintf("fmea: duplicate component %q", c.Name))
	}
	cp := c
	a.components[c.Name] = &cp
	a.order = append(a.order, c.Name)
}

// AddPropagation registers a failure-propagation path.
func (a *Architecture) AddPropagation(p Propagation) {
	if a.components[p.From] == nil || a.components[p.To] == nil {
		panic(fmt.Sprintf("fmea: propagation %s→%s references unknown component", p.From, p.To))
	}
	if p.Attenuation <= 0 || p.Attenuation > 1 {
		panic("fmea: attenuation must be in (0,1]")
	}
	a.edges[p.From] = append(a.edges[p.From], p)
}

// Components returns component names in insertion order.
func (a *Architecture) Components() []string {
	out := make([]string, len(a.order))
	copy(out, a.order)
	return out
}

// effectiveSeverity computes the worst user-visible severity a failure of
// component name with base severity sev can cause, following propagation
// paths (DFS with per-path attenuation; cycles are cut by the visited set).
func (a *Architecture) effectiveSeverity(name string, sev float64, visited map[string]bool) float64 {
	c := a.components[name]
	best := 0.0
	if c.UserFacing {
		best = sev
	}
	visited[name] = true
	for _, p := range a.edges[name] {
		if visited[p.To] {
			continue
		}
		if s := a.effectiveSeverity(p.To, sev*p.Attenuation, visited); s > best {
			best = s
		}
	}
	visited[name] = false
	return best
}

// Entry is one row of the FMEA worksheet.
type Entry struct {
	Component string
	Mode      string
	// Severity is the propagated user-visible severity.
	Severity float64
	// Occurrence copies the mode's likelihood.
	Occurrence float64
	// Detectability copies the mode's detection likelihood.
	Detectability float64
	// RPN is the risk priority number: severity × occurrence ×
	// (1 - detectability), normalised to [0,1].
	RPN float64
}

// Analyze produces the worksheet sorted by descending RPN (ties broken by
// component/mode name for determinism).
func (a *Architecture) Analyze() []Entry {
	var out []Entry
	for _, name := range a.order {
		c := a.components[name]
		for _, m := range c.Modes {
			sev := a.effectiveSeverity(name, m.LocalSeverity, map[string]bool{})
			e := Entry{
				Component:     name,
				Mode:          m.Name,
				Severity:      sev,
				Occurrence:    m.Occurrence,
				Detectability: m.Detectability,
			}
			e.RPN = e.Severity * e.Occurrence * (1 - e.Detectability)
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].RPN != out[j].RPN {
			return out[i].RPN > out[j].RPN
		}
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Mode < out[j].Mode
	})
	return out
}

// CriticalityByComponent aggregates RPN per component, sorted descending.
func (a *Architecture) CriticalityByComponent() []Entry {
	agg := map[string]float64{}
	for _, e := range a.Analyze() {
		agg[e.Component] += e.RPN
	}
	var out []Entry
	for _, name := range a.order {
		out = append(out, Entry{Component: name, RPN: agg[name]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].RPN != out[j].RPN {
			return out[i].RPN > out[j].RPN
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// TVArchitecture builds the reference model of the simulated TV used by the
// E13 experiment: the component set of tvsim with failure modes calibrated
// to the fault classes the fault injector exercises.
func TVArchitecture() *Architecture {
	a := NewArchitecture()
	a.AddComponent(Component{Name: "tuner", Modes: []FailureMode{
		{Name: "bad-signal", Occurrence: 0.4, LocalSeverity: 0.5, Detectability: 0.7},
		{Name: "no-lock", Occurrence: 0.1, LocalSeverity: 0.9, Detectability: 0.9},
	}})
	a.AddComponent(Component{Name: "video", UserFacing: true, Modes: []FailureMode{
		{Name: "overload", Occurrence: 0.3, LocalSeverity: 0.7, Detectability: 0.6},
		{Name: "crash", Occurrence: 0.05, LocalSeverity: 1.0, Detectability: 0.9},
	}})
	a.AddComponent(Component{Name: "audio", UserFacing: true, Modes: []FailureMode{
		{Name: "level-corruption", Occurrence: 0.1, LocalSeverity: 0.6, Detectability: 0.5},
	}})
	a.AddComponent(Component{Name: "txt-acq", Modes: []FailureMode{
		{Name: "sync-loss", Occurrence: 0.25, LocalSeverity: 0.4, Detectability: 0.4},
	}})
	a.AddComponent(Component{Name: "txt-disp", UserFacing: true, Modes: []FailureMode{
		{Name: "stale-page", Occurrence: 0.2, LocalSeverity: 0.4, Detectability: 0.3},
	}})
	a.AddComponent(Component{Name: "osd", UserFacing: true, Modes: []FailureMode{
		{Name: "stuck-overlay", Occurrence: 0.1, LocalSeverity: 0.5, Detectability: 0.8},
	}})
	a.AddComponent(Component{Name: "swivel", UserFacing: true, Modes: []FailureMode{
		{Name: "stuck-motor", Occurrence: 0.15, LocalSeverity: 0.6, Detectability: 0.2},
	}})
	// Failures flow downstream toward the user-facing components.
	a.AddPropagation(Propagation{From: "tuner", To: "video", Attenuation: 0.9})
	a.AddPropagation(Propagation{From: "tuner", To: "audio", Attenuation: 0.6})
	a.AddPropagation(Propagation{From: "tuner", To: "txt-acq", Attenuation: 0.8})
	a.AddPropagation(Propagation{From: "txt-acq", To: "txt-disp", Attenuation: 1.0})
	return a
}
