package fmea

import (
	"testing"
)

func TestEffectiveSeverityPropagates(t *testing.T) {
	a := NewArchitecture()
	a.AddComponent(Component{Name: "backend", Modes: []FailureMode{
		{Name: "die", Occurrence: 0.5, LocalSeverity: 1.0, Detectability: 0},
	}})
	a.AddComponent(Component{Name: "ui", UserFacing: true})
	entries := a.Analyze()
	// Backend is not user-facing and has no propagation: severity 0.
	if entries[0].Severity != 0 {
		t.Fatalf("unpropagated severity = %v, want 0", entries[0].Severity)
	}
	a.AddPropagation(Propagation{From: "backend", To: "ui", Attenuation: 0.5})
	entries = a.Analyze()
	if entries[0].Severity != 0.5 {
		t.Fatalf("propagated severity = %v, want 0.5", entries[0].Severity)
	}
}

func TestRPNOrdering(t *testing.T) {
	a := NewArchitecture()
	a.AddComponent(Component{Name: "x", UserFacing: true, Modes: []FailureMode{
		{Name: "rare-but-bad", Occurrence: 0.01, LocalSeverity: 1.0, Detectability: 0},
		{Name: "common-mild", Occurrence: 0.9, LocalSeverity: 0.5, Detectability: 0},
	}})
	entries := a.Analyze()
	if entries[0].Mode != "common-mild" {
		t.Fatalf("top entry = %+v; RPN should favour occurrence×severity", entries[0])
	}
}

func TestDetectabilityLowersRisk(t *testing.T) {
	a := NewArchitecture()
	a.AddComponent(Component{Name: "x", UserFacing: true, Modes: []FailureMode{
		{Name: "detected", Occurrence: 0.5, LocalSeverity: 0.8, Detectability: 0.9},
		{Name: "undetected", Occurrence: 0.5, LocalSeverity: 0.8, Detectability: 0.1},
	}})
	entries := a.Analyze()
	if entries[0].Mode != "undetected" {
		t.Fatalf("undetectable failures must rank higher: %+v", entries)
	}
}

func TestCycleSafePropagation(t *testing.T) {
	a := NewArchitecture()
	a.AddComponent(Component{Name: "a", Modes: []FailureMode{
		{Name: "f", Occurrence: 1, LocalSeverity: 1, Detectability: 0},
	}})
	a.AddComponent(Component{Name: "b", UserFacing: true})
	a.AddPropagation(Propagation{From: "a", To: "b", Attenuation: 0.5})
	a.AddPropagation(Propagation{From: "b", To: "a", Attenuation: 0.5})
	entries := a.Analyze() // must terminate
	if entries[0].Severity != 0.5 {
		t.Fatalf("severity = %v", entries[0].Severity)
	}
}

func TestValidationPanics(t *testing.T) {
	a := NewArchitecture()
	a.AddComponent(Component{Name: "x"})
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("dup", func() { a.AddComponent(Component{Name: "x"}) })
	mustPanic("unknown", func() { a.AddPropagation(Propagation{From: "x", To: "ghost", Attenuation: 1}) })
	mustPanic("attenuation", func() {
		a.AddComponent(Component{Name: "y"})
		a.AddPropagation(Propagation{From: "x", To: "y", Attenuation: 0})
	})
}

// E13: on the reference TV architecture, the analysis ranks the streaming
// path (tuner/video) and the poorly-detected swivel and teletext failures
// as the reliability hot spots — matching where the Trader case studies
// put their effort.
func TestTVArchitectureCriticality(t *testing.T) {
	a := TVArchitecture()
	if len(a.Components()) != 7 {
		t.Fatalf("components = %v", a.Components())
	}
	byComp := a.CriticalityByComponent()
	top := map[string]bool{byComp[0].Component: true, byComp[1].Component: true, byComp[2].Component: true}
	if !top["tuner"] && !top["video"] {
		t.Fatalf("streaming path missing from top 3: %+v", byComp)
	}
	// The swivel: low occurrence but terrible detectability — it must not
	// be at the bottom.
	last := byComp[len(byComp)-1].Component
	if last == "swivel" {
		t.Fatalf("swivel ranked last despite poor detectability: %+v", byComp)
	}
	// Every entry has a finite RPN in [0,1].
	for _, e := range a.Analyze() {
		if e.RPN < 0 || e.RPN > 1 {
			t.Fatalf("RPN out of range: %+v", e)
		}
	}
}
