// Package loadbal implements the load-balancing recovery of Sect. 4.5
// (IMEC): migrating a processing task from an overloaded processor to one
// with spare capacity, "which leads to improved image quality in case of
// overload situations (e.g., due to intensive error correction on a bad
// input signal)". The balancer polls CPU health (deadline-miss deltas and
// static load) and migrates migratable tasks when a CPU is overloaded and a
// better home exists.
package loadbal

import (
	"sort"

	"trader/internal/sim"
	"trader/internal/soc"
)

// Policy tunes the balancer.
type Policy struct {
	// CheckEvery is the polling period.
	CheckEvery sim.Time
	// MissesPerCheck triggers migration when a CPU accumulates at least
	// this many new deadline misses between checks (default 1).
	MissesPerCheck uint64
	// LoadMargin requires the target CPU's static load to be below the
	// source's by at least this much (default 0.2) to avoid ping-ponging.
	LoadMargin float64
}

func (p *Policy) fill() {
	if p.CheckEvery <= 0 {
		p.CheckEvery = 100 * sim.Millisecond
	}
	if p.MissesPerCheck == 0 {
		p.MissesPerCheck = 1
	}
	if p.LoadMargin == 0 {
		p.LoadMargin = 0.2
	}
}

// Migration records one balancing action.
type Migration struct {
	Task     string
	From, To string
	At       sim.Time
}

// Balancer watches a set of CPUs and migrates tasks.
type Balancer struct {
	kernel *sim.Kernel
	cpus   []*soc.CPU
	policy Policy
	rep    *sim.Repeater

	lastMisses map[string]uint64
	// Migrations lists actions taken.
	Migrations []Migration
	// Checks counts polls.
	Checks uint64
}

// New creates a balancer over the CPUs. Call Start to begin polling.
func New(kernel *sim.Kernel, cpus []*soc.CPU, policy Policy) *Balancer {
	policy.fill()
	return &Balancer{
		kernel: kernel, cpus: cpus, policy: policy,
		lastMisses: make(map[string]uint64),
	}
}

// Start begins periodic balancing.
func (b *Balancer) Start() {
	if b.rep != nil {
		return
	}
	for _, c := range b.cpus {
		b.lastMisses[c.Name] = c.Stats().DeadlineMisses
	}
	b.rep = b.kernel.Every(b.policy.CheckEvery, b.check)
}

// Stop halts balancing.
func (b *Balancer) Stop() {
	if b.rep != nil {
		b.rep.Stop()
		b.rep = nil
	}
}

func (b *Balancer) check() {
	b.Checks++
	type health struct {
		cpu       *soc.CPU
		newMisses uint64
		load      float64
	}
	hs := make([]health, 0, len(b.cpus))
	for _, c := range b.cpus {
		misses := c.Stats().DeadlineMisses
		hs = append(hs, health{cpu: c, newMisses: misses - b.lastMisses[c.Name], load: c.Load()})
		b.lastMisses[c.Name] = misses
	}
	// Consider the most troubled CPU first.
	sort.SliceStable(hs, func(i, j int) bool {
		if hs[i].newMisses != hs[j].newMisses {
			return hs[i].newMisses > hs[j].newMisses
		}
		return hs[i].load > hs[j].load
	})
	src := hs[0]
	if src.newMisses < b.policy.MissesPerCheck {
		return // nobody is suffering
	}
	// Pick the migratable task with the largest utilisation share.
	var task *soc.Task
	var taskU float64
	for _, t := range src.cpu.Tasks() {
		if !t.Migratable || t.Period <= 0 {
			continue
		}
		u := float64(t.WCET) / float64(t.Period)
		if task == nil || u > taskU {
			task, taskU = t, u
		}
	}
	if task == nil {
		return
	}
	// Find the least-loaded target with enough headroom.
	var dst *soc.CPU
	var dstLoad float64
	for _, h := range hs[1:] {
		if dst == nil || h.load < dstLoad {
			dst, dstLoad = h.cpu, h.load
		}
	}
	if dst == nil || dstLoad+taskU > 1.0 {
		return // no safe home
	}
	if src.load-dstLoad < b.policy.LoadMargin {
		return // not enough imbalance to justify the move
	}
	if err := src.cpu.Migrate(task, dst); err != nil {
		return
	}
	b.Migrations = append(b.Migrations, Migration{
		Task: task.Name, From: src.cpu.Name, To: dst.Name, At: b.kernel.Now(),
	})
}
