package loadbal

import (
	"testing"

	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/soc"
	"trader/internal/tvsim"
)

func TestMigratesOverloadedTask(t *testing.T) {
	k := sim.NewKernel(1)
	c0 := soc.NewCPU(k, "cpu0")
	c1 := soc.NewCPU(k, "cpu1")
	img := &soc.Task{Name: "img", Period: 10 * sim.Millisecond, WCET: 8 * sim.Millisecond, Migratable: true}
	hog := &soc.Task{Name: "hog", Period: 10 * sim.Millisecond, WCET: 5 * sim.Millisecond, Priority: -1}
	c0.Attach(img)
	c0.Attach(hog)
	b := New(k, []*soc.CPU{c0, c1}, Policy{CheckEvery: 50 * sim.Millisecond})
	b.Start()
	k.Run(sim.Second)
	if len(b.Migrations) != 1 {
		t.Fatalf("migrations = %v, want exactly 1", b.Migrations)
	}
	mg := b.Migrations[0]
	if mg.Task != "img" || mg.From != "cpu0" || mg.To != "cpu1" {
		t.Fatalf("migration = %+v", mg)
	}
	// After migration both CPUs are schedulable: misses stop accumulating.
	m0 := c0.Stats().DeadlineMisses + c1.Stats().DeadlineMisses
	k.Run(2 * sim.Second)
	m1 := c0.Stats().DeadlineMisses + c1.Stats().DeadlineMisses
	if m1 != m0 {
		t.Fatalf("misses still accumulating after migration: %d → %d", m0, m1)
	}
}

func TestNoMigrationWhenHealthy(t *testing.T) {
	k := sim.NewKernel(1)
	c0 := soc.NewCPU(k, "cpu0")
	c1 := soc.NewCPU(k, "cpu1")
	c0.Attach(&soc.Task{Name: "light", Period: 100, WCET: 10, Migratable: true})
	b := New(k, []*soc.CPU{c0, c1}, Policy{CheckEvery: 50})
	b.Start()
	k.Run(10000)
	if len(b.Migrations) != 0 {
		t.Fatalf("healthy system migrated: %v", b.Migrations)
	}
	if b.Checks == 0 {
		t.Fatal("balancer never polled")
	}
}

func TestNoMigrationWithoutMigratableTask(t *testing.T) {
	k := sim.NewKernel(1)
	c0 := soc.NewCPU(k, "cpu0")
	c1 := soc.NewCPU(k, "cpu1")
	c0.Attach(&soc.Task{Name: "pinned", Period: 10, WCET: 15}) // overloaded, not migratable
	b := New(k, []*soc.CPU{c0, c1}, Policy{CheckEvery: 100})
	b.Start()
	k.Run(5000)
	if len(b.Migrations) != 0 {
		t.Fatalf("pinned task migrated: %v", b.Migrations)
	}
}

func TestNoMigrationWhenTargetWouldOverload(t *testing.T) {
	k := sim.NewKernel(1)
	c0 := soc.NewCPU(k, "cpu0")
	c1 := soc.NewCPU(k, "cpu1")
	// Both CPUs nearly full; moving the 0.8-load task would overload c1.
	c0.Attach(&soc.Task{Name: "big", Period: 10, WCET: 8, Migratable: true})
	c0.Attach(&soc.Task{Name: "extra", Period: 10, WCET: 4, Priority: -1})
	c1.Attach(&soc.Task{Name: "busy", Period: 10, WCET: 7})
	b := New(k, []*soc.CPU{c0, c1}, Policy{CheckEvery: 100})
	b.Start()
	k.Run(5000)
	if len(b.Migrations) != 0 {
		t.Fatalf("migrated into overload: %v", b.Migrations)
	}
}

func TestStopHaltsBalancing(t *testing.T) {
	k := sim.NewKernel(1)
	c0 := soc.NewCPU(k, "cpu0")
	c1 := soc.NewCPU(k, "cpu1")
	b := New(k, []*soc.CPU{c0, c1}, Policy{CheckEvery: 10})
	b.Start()
	b.Start() // idempotent
	k.Run(100)
	checks := b.Checks
	b.Stop()
	k.Run(1000)
	if b.Checks != checks {
		t.Fatal("stopped balancer still polling")
	}
}

// E7 end-to-end shape: a bad input signal overloads the TV's video pipeline;
// with the balancer the pipeline migrates and quality recovers; without it,
// quality stays degraded.
func TestTVOverloadMigrationImprovesQuality(t *testing.T) {
	run := func(balance bool) (missRate float64) {
		k := sim.NewKernel(3)
		tv := tvsim.New(k, tvsim.Config{})
		tv.PressKey(tvsim.KeyPower)
		tv.Injector().Schedule(faults.Fault{
			ID: "ov", Kind: faults.Overload, Target: "video",
			// ×2.1 makes the video pipeline miss on the shared CPU (video +
			// audio + teletext > 1.0) while still fitting alone on an idle
			// CPU (0.945) — the regime where migration pays off.
			At: sim.Second, Duration: 8 * sim.Second, Param: 2.1,
		})
		if balance {
			b := New(k, tv.CPUs(), Policy{CheckEvery: 100 * sim.Millisecond})
			b.Start()
		}
		k.Run(10 * sim.Second)
		var completed, missed uint64
		for _, c := range tv.CPUs() {
			completed += c.Stats().JobsCompleted
			missed += c.Stats().DeadlineMisses
		}
		if completed == 0 {
			t.Fatal("no jobs completed")
		}
		return float64(missed) / float64(completed)
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("balancing did not help: with=%v without=%v", with, without)
	}
	if without == 0 {
		t.Fatal("overload should cause misses without balancing")
	}
}
