package control

// White-box tests of the escalation ladder: the table-driven cases drive
// handleReport synchronously (newController, no goroutine) so action
// sequences are exact; the concurrency test runs the full asynchronous
// pipeline over a sharded pool under -race.

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

// fakeActuator records every push and disconnect, in order.
type fakeActuator struct {
	mu          sync.Mutex
	pushes      []wire.ControlCommand
	disconnects []string
}

func (a *fakeActuator) Control(id string, cmd wire.ControlCommand) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pushes = append(a.pushes, cmd)
	return nil
}

func (a *fakeActuator) Disconnect(id string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.disconnects = append(a.disconnects, id)
	return nil
}

// rep is one scripted error report.
type rep struct {
	atMs     int64
	detector string
}

func deviationAt(atMs int64) rep { return rep{atMs: atMs, detector: "comparator"} }

func report(r rep) wire.ErrorReport {
	return wire.ErrorReport{
		Detector: r.detector, Observable: "x", Expected: 0, Actual: 2,
		Consecutive: 2, At: sim.Time(r.atMs) * sim.Millisecond,
	}
}

// ladderPolicy is the tight ladder most cases use: 1 tolerated report, 1
// reset, 1 restart (50ms), then quarantine; cooldown 1s; runaway off.
func ladderPolicy() Policy {
	return Policy{Name: "test", Tolerate: 1, Resets: 1, Restarts: 1,
		RestartLatency: 50 * sim.Millisecond, Cooldown: sim.Second}
}

func TestEscalationLadderTable(t *testing.T) {
	cases := []struct {
		name     string
		pol      Policy
		reports  []rep
		want     []Rung                // action sequence, in order
		pushes   []wire.ControlCommand // wire pushes, in order
		dropped  int                   // devices disconnected
		absorbed uint64
	}{
		{
			// The Nth consecutive report is still tolerated...
			name:    "tolerance boundary: Nth report tolerated",
			pol:     Policy{Tolerate: 2, Resets: 1, Restarts: 1, RestartLatency: 50 * sim.Millisecond, Cooldown: sim.Second},
			reports: []rep{deviationAt(10), deviationAt(20)},
			want:    []Rung{RungTolerate, RungTolerate},
		},
		{
			// ...and the N+1th crosses into actuation.
			name:    "tolerance boundary: N+1th report resets",
			pol:     Policy{Tolerate: 2, Resets: 1, Restarts: 1, RestartLatency: 50 * sim.Millisecond, Cooldown: sim.Second},
			reports: []rep{deviationAt(10), deviationAt(20), deviationAt(30)},
			want:    []Rung{RungTolerate, RungTolerate, RungReset},
			pushes:  []wire.ControlCommand{wire.CtrlReset},
		},
		{
			name: "full ladder fires in order",
			pol:  ladderPolicy(),
			// Restart is decided at 30ms and completes at 80ms; the 200ms
			// report finds the unit running again and quarantines.
			reports: []rep{deviationAt(10), deviationAt(20), deviationAt(30), deviationAt(200)},
			want:    []Rung{RungTolerate, RungReset, RungRestart, RungQuarantine},
			pushes:  []wire.ControlCommand{wire.CtrlReset, wire.CtrlRestart, wire.CtrlQuarantine},
			dropped: 1,
		},
		{
			name: "reports during a restart are absorbed",
			pol:  ladderPolicy(),
			// 40ms and 60ms land inside the 30→80ms restart window: no
			// action, no ladder movement.
			reports:  []rep{deviationAt(10), deviationAt(20), deviationAt(30), deviationAt(40), deviationAt(60), deviationAt(200)},
			want:     []Rung{RungTolerate, RungReset, RungRestart, RungQuarantine},
			pushes:   []wire.ControlCommand{wire.CtrlReset, wire.CtrlRestart, wire.CtrlQuarantine},
			dropped:  1,
			absorbed: 2,
		},
		{
			name: "flapping device de-escalates after cooldown",
			pol:  ladderPolicy(),
			// Fail (tolerate, reset), recover for > 1s, fail again: the
			// fresh episode starts at the ladder's bottom — flapping does
			// not march a recovering device to quarantine.
			reports: []rep{deviationAt(10), deviationAt(20), deviationAt(1520), deviationAt(1530)},
			want:    []Rung{RungTolerate, RungReset, RungTolerate, RungReset},
			pushes:  []wire.ControlCommand{wire.CtrlReset, wire.CtrlReset},
		},
		{
			name: "quarantine is final",
			pol:  ladderPolicy(),
			// Reports after quarantine (the monitor still sweeps) climb
			// nothing and push nothing.
			reports: []rep{deviationAt(10), deviationAt(20), deviationAt(30), deviationAt(200), deviationAt(1300), deviationAt(2400)},
			want:    []Rung{RungTolerate, RungReset, RungRestart, RungQuarantine},
			pushes:  []wire.ControlCommand{wire.CtrlReset, wire.CtrlRestart, wire.CtrlQuarantine},
			dropped: 1,
		},
		{
			name: "runaway storm skips the gentle rungs",
			pol: Policy{Tolerate: 5, Resets: 5, Restarts: 1, RestartLatency: 50 * sim.Millisecond,
				Cooldown: sim.Second, RunawayReports: 3, RunawayWindow: 20 * sim.Millisecond},
			// Three reports within 20ms of each other: the third is a
			// runaway and jumps straight to restart despite 5 tolerated
			// reports remaining.
			reports: []rep{deviationAt(10), deviationAt(20), deviationAt(30)},
			want:    []Rung{RungTolerate, RungTolerate, RungRestart},
			pushes:  []wire.ControlCommand{wire.CtrlRestart},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pool := fleet.NewPool(fleet.Options{Shards: 1})
			defer pool.Stop()
			act := &fakeActuator{}
			var got []Rung
			c := newController(pool, Options{
				Actuator: act, Policy: tc.pol, Logf: t.Logf,
				OnAction: func(a Action) {
					if a.Device != "dev" {
						t.Errorf("action for %q, want dev", a.Device)
					}
					got = append(got, a.Rung)
				},
			})
			for _, r := range tc.reports {
				c.handleReport("dev", report(r))
			}
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("actions = %v, want %v", got, tc.want)
			}
			if fmt.Sprint(act.pushes) != fmt.Sprint(tc.pushes) {
				t.Fatalf("pushes = %v, want %v", act.pushes, tc.pushes)
			}
			if len(act.disconnects) != tc.dropped {
				t.Fatalf("disconnects = %v, want %d", act.disconnects, tc.dropped)
			}
			if ro := c.rollup(); ro.Absorbed != tc.absorbed {
				t.Fatalf("absorbed = %d, want %d (rollup %s)", ro.Absorbed, tc.absorbed, ro)
			}
		})
	}
}

// OnEscalate sees exactly the actions past tolerate — the diagnosis plane's
// trigger — while OnAction sees the whole ladder.
func TestOnEscalateFiresPastTolerate(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	var all, escalated []Rung
	c := newController(pool, Options{
		Policy:     ladderPolicy(),
		OnAction:   func(a Action) { all = append(all, a.Rung) },
		OnEscalate: func(a Action) { escalated = append(escalated, a.Rung) },
	})
	// The fourth report arrives after the 50ms restart completed, so it
	// climbs to quarantine instead of being absorbed by the restart.
	for _, at := range []int64{100, 110, 120, 300} {
		c.handleReport("dev", report(deviationAt(at)))
	}
	want := []Rung{RungTolerate, RungReset, RungRestart, RungQuarantine}
	if fmt.Sprint(all) != fmt.Sprint(want) {
		t.Fatalf("actions = %v, want %v", all, want)
	}
	if fmt.Sprint(escalated) != fmt.Sprint(want[1:]) {
		t.Fatalf("escalations = %v, want %v (tolerate must not trigger diagnosis)", escalated, want[1:])
	}
}

// Silence reports classify as silence; classification feeds the rollup and
// the FMEA criticality ranking.
func TestClassificationAndCriticality(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	c := newController(pool, Options{Policy: PatientPolicy()})
	c.handleReport("a", report(rep{atMs: 10, detector: "comparator"}))
	c.handleReport("a", report(rep{atMs: 500, detector: "silence"}))
	c.handleReport("b", report(rep{atMs: 600, detector: "silence"}))
	ro := c.rollup()
	if ro.Deviations != 1 || ro.Silences != 2 || ro.Runaways != 0 {
		t.Fatalf("classes = %d/%d/%d, want 1/2/0", ro.Deviations, ro.Silences, ro.Runaways)
	}
	if ro.Devices != 2 {
		t.Fatalf("devices = %d, want 2", ro.Devices)
	}
	crit := Criticality(ro)
	if len(crit) != 3 {
		t.Fatalf("criticality entries = %d, want 3", len(crit))
	}
	// Silence dominates occurrence (2/3) and carries higher severity and
	// worse detectability than deviation, so it must rank first.
	if crit[0].Component != ClassSilence.String() {
		t.Fatalf("top criticality = %s, want silence", crit[0].Component)
	}
	if Criticality(Rollup{}) != nil {
		t.Fatal("criticality of an empty rollup should be nil")
	}
}

// Downtime accounting is the recovery manager's: each completed restart
// contributes exactly the policy's RestartLatency.
func TestDowntimeMatchesRecoveryManager(t *testing.T) {
	pol := ladderPolicy()
	pol.Restarts = 2
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	c := newController(pool, Options{Policy: pol})
	// Two full restart cycles: tolerate(10), reset(20), restart(30..80),
	// restart(200..250), then quarantine at 400.
	for _, ms := range []int64{10, 20, 30, 200, 400} {
		c.handleReport("dev", report(deviationAt(ms)))
	}
	c.advanceTo(sim.Second)
	ro := c.rollup()
	if ro.Restarts != 2 || ro.RestartsCompleted != 2 {
		t.Fatalf("restarts = %d started, %d completed, want 2/2 (%s)", ro.Restarts, ro.RestartsCompleted, ro)
	}
	want := 2 * pol.RestartLatency
	if ro.Downtime != want {
		t.Fatalf("downtime = %s, want %s", ro.Downtime, want)
	}
	// Cross-check against the manager's own unit accounting.
	if u := c.mgr.Unit("dev"); u.Downtime != want || u.Recoveries != 2 {
		t.Fatalf("manager unit: downtime %s, recoveries %d, want %s/2", u.Downtime, u.Recoveries, want)
	}
}

// Every action is journaled write-ahead; reading the journal back yields a
// byte-identical action sequence.
func TestActionsJournaledByteIdentical(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	var live []wire.Message
	c := newController(pool, Options{Journal: jw, Policy: ladderPolicy(),
		OnAction: func(a Action) { live = append(live, a.Frame()) }})
	for _, ms := range []int64{10, 20, 30, 200} {
		c.handleReport("dev", report(deviationAt(ms)))
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if len(live) != 4 {
		t.Fatalf("live actions = %d, want 4", len(live))
	}

	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	var journaled []wire.Message
	for {
		m, err := jr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == wire.TypeControl {
			journaled = append(journaled, m)
		}
	}
	if len(journaled) != len(live) {
		t.Fatalf("journaled actions = %d, want %d", len(journaled), len(live))
	}
	for i := range live {
		want, err1 := wire.Binary.Append(nil, live[i])
		got, err2 := wire.Binary.Append(nil, journaled[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("action %d differs: live %+v, journaled %+v", i, live[i], journaled[i])
		}
	}
}

// The full asynchronous pipeline under concurrency: 32 faulty devices on 8
// shards report through the pool fan-in while the controller escalates.
// Run with -race (make check does): the point is that shard goroutines,
// connection-free report fan-in and the controller goroutine share nothing
// but the inbox.
func TestConcurrentEscalationAcrossShards(t *testing.T) {
	const devices = 32
	pool := fleet.NewPool(fleet.Options{Shards: 8})
	defer pool.Stop()
	factory := fleet.LightFactory(1) // every device echoes a deviating level
	for i := 0; i < devices; i++ {
		if err := pool.AddDevice(fleet.DeviceID(i), int64(i)+1, factory); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	perDevice := make(map[string][]Rung)
	pol := Policy{Tolerate: 1, Resets: 1, Restarts: 1,
		RestartLatency: 20 * sim.Millisecond, Cooldown: 10 * sim.Second}
	c := Attach(pool, Options{Policy: pol, OnAction: func(a Action) {
		mu.Lock()
		perDevice[a.Device] = append(perDevice[a.Device], a.Rung)
		mu.Unlock()
	}})
	defer c.Close()

	// Phase 1 — the race: rounds of commanded levels with virtual time
	// advancing fleet-wide, no synchronisation with the controller. Shard
	// goroutines fan reports in while the controller escalates and its
	// re-arms chase the traffic.
	round := func() {
		for i := 0; i < devices; i++ {
			e := event.Event{Kind: event.Input, Name: "set", Source: "headend"}.With("x", 0)
			if err := pool.Dispatch(fleet.DeviceID(i), e); err != nil {
				t.Fatal(err)
			}
		}
		if err := pool.Advance(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 30; r++ {
		round()
	}
	c.Sync()

	// Phase 2 — convergence: synced rounds until every device has been
	// marched to quarantine (every device deviates persistently, so the
	// ladder must complete for all of them).
	for r := 0; r < 200 && c.Rollup().Quarantined < devices; r++ {
		round()
		c.Sync()
		if err := pool.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	ro := c.Rollup()
	if ro.Dropped != 0 {
		t.Fatalf("dropped %d reports — inbox too small for the test load", ro.Dropped)
	}
	if ro.Devices != devices {
		t.Fatalf("controller saw %d devices, want %d", ro.Devices, devices)
	}
	// Every report is either classified or came from a retired device.
	if ro.Reports != ro.Deviations+ro.Silences+ro.Runaways+ro.AfterQuarantine {
		t.Fatalf("class counts do not sum to reports: %s", ro)
	}
	ladder := []Rung{RungTolerate, RungReset, RungRestart, RungQuarantine}
	mu.Lock()
	defer mu.Unlock()
	for id, rungs := range perDevice {
		if len(rungs) == 0 || len(rungs) > len(ladder) {
			t.Fatalf("%s: actions %v", id, rungs)
		}
		for i, r := range rungs {
			if r != ladder[i] {
				t.Fatalf("%s: actions %v, want a prefix of %v", id, rungs, ladder)
			}
		}
	}
	if len(perDevice) != devices {
		t.Fatalf("%d devices acted on, want %d", len(perDevice), devices)
	}
	if ro.Quarantined != devices || ro.Quarantines != uint64(devices) {
		t.Fatalf("quarantined %d devices in %d actions, want all %d: %s",
			ro.Quarantined, ro.Quarantines, devices, ro)
	}
}

// A closed controller sheds reports and still serves the frozen rollup.
func TestCloseFreezesState(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	c := Attach(pool, Options{Policy: ladderPolicy()})
	c.Report("dev", report(deviationAt(10)))
	c.Sync()
	c.Close()
	c.Report("dev", report(deviationAt(20))) // dropped silently
	ro := c.Rollup()
	if ro.Reports != 1 || ro.Tolerated != 1 {
		t.Fatalf("frozen rollup = %s, want exactly the pre-close report", ro)
	}
	c.Close() // idempotent
}

// BenchmarkControllerReport measures the controller's decision hot path:
// one error report through the inbox, classification, cooldown
// de-escalation, one tolerate action with its comparator re-arm round-trip
// — the steady-state cost of a fleet that flaps. journal=on adds the
// write-ahead action record (NoSync: the CPU cost, as in
// BenchmarkJournalAppend's nosync variant; production actions are rare
// enough that their fsync is noise).
func BenchmarkControllerReport(b *testing.B) {
	for _, journaled := range []bool{false, true} {
		name := "journal=off"
		if journaled {
			name = "journal=on"
		}
		b.Run(name, func(b *testing.B) {
			pool := fleet.NewPool(fleet.Options{Shards: 2})
			defer pool.Stop()
			if err := pool.AddDevice("dev", 1, fleet.LightFactory(0)); err != nil {
				b.Fatal(err)
			}
			opts := Options{Policy: Policy{Tolerate: 1, Resets: 1, Restarts: 1,
				RestartLatency: 10 * sim.Millisecond, Cooldown: sim.Millisecond}}
			if journaled {
				jw, err := journal.Create(b.TempDir(), journal.Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				defer jw.Close()
				opts.Journal = jw
			}
			c := Attach(pool, opts)
			defer c.Close()
			rep := wire.ErrorReport{Detector: "comparator", Observable: "x", Expected: 0, Actual: 2, Consecutive: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// 1ms spacing ≥ cooldown: every report opens a fresh
				// episode, so each one runs the full decision path.
				rep.At = sim.Time(i+1) * sim.Millisecond
				c.Report("dev", rep)
				if i%512 == 511 {
					c.Sync() // bound in-flight reports below the inbox cap
				}
			}
			c.Sync()
			b.StopTimer()
			if ro := c.Rollup(); ro.Dropped != 0 {
				b.Fatalf("%d reports shed — the measurement is incomplete", ro.Dropped)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}
