package control

import (
	"fmt"
	"io"
	"sort"

	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

// Checkpoint capture/restore for the control plane: the escalation tally,
// every device's ladder position, and the recovery manager's restart
// accounting, flattened into one PlaneControl record. The fleet
// Checkpointer calls Checkpoint for each global checkpoint (the record
// rides in shard 0's batch); Recover finds the newest such record in a
// journal and plays it back on boot.
//
// Capture happens through the controller's own loop — NOT under the
// journal's stream locks, since this loop appends to that journal — so a
// report can slip between the control-plane snapshot and the fleet freeze.
// That divergence is bounded by one inbox drain and self-heals at the next
// checkpoint; the ladder tolerates re-seen evidence by design.

// ctlCounters fixes the Counters layout of a PlaneControl record.
var ctlCounters = [...]string{
	"Reports", "Dropped",
	"class.deviation", "class.silence", "class.runaway",
	"rung.tolerate", "rung.reset", "rung.restart", "rung.quarantine",
	"Absorbed", "AfterQuarantine", "Deescalations",
	"Acks", "PushFailures", "JournalErrors",
	"RestartsCompleted",
}

// Checkpoint snapshots the controller into a PlaneControl checkpoint
// record. It round-trips through the controller goroutine (a barrier:
// reports enqueued before it are reflected); on a closed controller it
// reads the frozen state directly.
func (c *Controller) Checkpoint() wire.Message {
	reply := make(chan wire.Message, 1)
	if c.put(item{kind: itemCheckpoint, cpReply: reply}, true) {
		return <-reply
	}
	<-c.done
	return c.checkpoint()
}

// checkpoint builds the record. Controller-goroutine only (or post-Close).
func (c *Controller) checkpoint() wire.Message {
	cp := &wire.Checkpoint{Plane: wire.PlaneControl, At: c.kernel.Now()}
	val := func(name string) uint64 {
		switch name {
		case "Reports":
			return c.tally.Reports
		case "Dropped":
			return c.dropped.Load()
		case "class.deviation":
			return c.tally.Classes[ClassDeviation]
		case "class.silence":
			return c.tally.Classes[ClassSilence]
		case "class.runaway":
			return c.tally.Classes[ClassRunaway]
		case "rung.tolerate":
			return c.tally.Rungs[RungTolerate]
		case "rung.reset":
			return c.tally.Rungs[RungReset]
		case "rung.restart":
			return c.tally.Rungs[RungRestart]
		case "rung.quarantine":
			return c.tally.Rungs[RungQuarantine]
		case "Absorbed":
			return c.tally.Absorbed
		case "AfterQuarantine":
			return c.tally.AfterQuarantine
		case "Deescalations":
			return c.tally.Deescalations
		case "Acks":
			return c.tally.Acks
		case "PushFailures":
			return c.tally.PushFailures
		case "JournalErrors":
			return c.tally.JournalErrors
		case "RestartsCompleted":
			return c.mgr.RecoveriesCompleted
		}
		return 0
	}
	for _, name := range ctlCounters {
		cp.Counters = append(cp.Counters, wire.CheckpointCounter{Name: name, V: val(name)})
	}
	ids := make([]string, 0, len(c.devs))
	for id := range c.devs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		d := c.devs[id]
		var q uint64
		if d.quarantined {
			q = 1
		}
		var down uint64
		if u := c.mgr.Unit(id); u != nil {
			down = uint64(u.Downtime)
		}
		cp.Devices = append(cp.Devices, wire.CheckpointDevice{
			ID: id, At: d.lastAt,
			Stats: []uint64{uint64(d.rung), uint64(d.used), d.seen, uint64(d.burst), q, down},
		})
	}
	return wire.Message{Type: wire.TypeCheckpoint, At: cp.At, Checkpoint: cp}
}

// Restore places the controller at the state cp captured. Restore is
// absolute — counters, ladder positions and restart accounting are
// assigned, not accumulated — so restoring a second, newer checkpoint
// simply wins. Devices regain their recovery units (in the Running state:
// an in-flight restart at capture time is cut short, which only makes the
// ladder gentler).
func (c *Controller) Restore(cp *wire.Checkpoint) error {
	if cp == nil || cp.Plane != wire.PlaneControl {
		return fmt.Errorf("control: restore needs a %s checkpoint", wire.PlaneControl)
	}
	errc := make(chan error, 1)
	if c.put(item{kind: itemRestore, restore: cp, errc: errc}, true) {
		return <-errc
	}
	return fmt.Errorf("control: restore on closed controller")
}

// restore plays cp back. Controller-goroutine only.
func (c *Controller) restore(cp *wire.Checkpoint) error {
	for _, ct := range cp.Counters {
		switch ct.Name {
		case "Reports":
			c.tally.Reports = ct.V
		case "Dropped":
			c.dropped.Store(ct.V)
		case "class.deviation":
			c.tally.Classes[ClassDeviation] = ct.V
		case "class.silence":
			c.tally.Classes[ClassSilence] = ct.V
		case "class.runaway":
			c.tally.Classes[ClassRunaway] = ct.V
		case "rung.tolerate":
			c.tally.Rungs[RungTolerate] = ct.V
		case "rung.reset":
			c.tally.Rungs[RungReset] = ct.V
		case "rung.restart":
			c.tally.Rungs[RungRestart] = ct.V
		case "rung.quarantine":
			c.tally.Rungs[RungQuarantine] = ct.V
		case "Absorbed":
			c.tally.Absorbed = ct.V
		case "AfterQuarantine":
			c.tally.AfterQuarantine = ct.V
		case "Deescalations":
			c.tally.Deescalations = ct.V
		case "Acks":
			c.tally.Acks = ct.V
		case "PushFailures":
			c.tally.PushFailures = ct.V
		case "JournalErrors":
			c.tally.JournalErrors = ct.V
		case "RestartsCompleted":
			c.mgr.RecoveriesCompleted = ct.V
			c.mgr.RecoveriesStarted = ct.V
		default:
			return fmt.Errorf("control: unknown checkpoint counter %q", ct.Name)
		}
	}
	for _, dev := range cp.Devices {
		if len(dev.Stats) != 6 {
			return fmt.Errorf("control: device %q checkpoint has %d stats, want 6", dev.ID, len(dev.Stats))
		}
		d := c.ensureDevice(dev.ID)
		d.rung = Rung(dev.Stats[0])
		d.used = int(dev.Stats[1])
		d.seen = dev.Stats[2]
		d.burst = int(dev.Stats[3])
		d.quarantined = dev.Stats[4] != 0
		d.lastAt = dev.At
		c.mgr.Unit(dev.ID).Downtime = sim.Time(dev.Stats[5])
	}
	c.advanceTo(cp.At)
	return nil
}

// Recover scans a journal for control-plane checkpoints and restores the
// newest one, reporting whether one was found. Call it on boot, after (or
// instead of) the pool replay — the reader already resumes each stream at
// its checkpoint batch, so the scan reads only the delta. Post-checkpoint
// TypeControl action records are not re-applied to the ladder (their
// pool-side effects replay through fleet.Pool.Replay); the ladder resumes
// from the snapshot and climbs again on fresh evidence.
func (c *Controller) Recover(r *journal.Reader) (bool, error) {
	var last *wire.Checkpoint
	for {
		m, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return false, fmt.Errorf("control: recover: %w", err)
		}
		if m.Type == wire.TypeCheckpoint && m.Checkpoint != nil && m.Checkpoint.Plane == wire.PlaneControl {
			cp := *m.Checkpoint
			last = &cp
		}
	}
	if last == nil {
		return false, nil
	}
	return true, c.Restore(last)
}
