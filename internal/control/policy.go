package control

import (
	"fmt"

	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/wire"
)

// Class is the controller's triage of one error report: which kind of
// trouble the device is in, expressed in the fault taxonomy of
// internal/faults. The class decides how the escalation ladder moves —
// a runaway device skips straight past the gentle rungs.
type Class int

// Fault classes, in increasing order of alarm.
const (
	// ClassDeviation is a comparator or model-invariant report: the device
	// produced a wrong value (a value-corruption fault manifesting).
	ClassDeviation Class = iota
	// ClassSilence is a silence-detector report: a component went quiet
	// past its deadline, the signature of a crashed task.
	ClassSilence
	// ClassRunaway is a report storm: reports arriving so fast that
	// resets demonstrably do not help — the device is continuously, not
	// episodically, wrong (an overload in the fault catalogue's terms).
	ClassRunaway
	nClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassDeviation:
		return "deviation"
	case ClassSilence:
		return "silence"
	case ClassRunaway:
		return "runaway"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Kind maps the class into the fault catalogue of internal/faults, so
// controller rollups speak the same taxonomy as the injection experiments.
func (c Class) Kind() faults.Kind {
	switch c {
	case ClassSilence:
		return faults.TaskCrash
	case ClassRunaway:
		return faults.Overload
	default:
		return faults.ValueCorruption
	}
}

// Detector names as emitted by core.Monitor's error reports.
const (
	detectorComparator = "comparator"
	detectorSilence    = "silence"
)

// ClassOf performs the detector half of classification: silence reports come
// from the silence sweeper, everything else (comparator, model invariant) is
// a deviation. The timing half — runaway detection — needs per-device
// report history and lives in the controller.
func ClassOf(r wire.ErrorReport) Class {
	if r.Detector == detectorSilence {
		return ClassSilence
	}
	return ClassDeviation
}

// Rung is one step of the escalation ladder. Every error report moves a
// device's ladder: the controller acts at the device's current rung and
// escalates when the rung's budget is spent.
type Rung int

// The escalation ladder, mildest first.
const (
	// RungTolerate absorbs the report: no wire action, but the device's
	// comparator is re-armed so monitoring keeps producing evidence.
	RungTolerate Rung = iota
	// RungReset pushes CtrlReset: the SUO clears its erroneous state, the
	// comparator re-arms, and a healthy device stops reporting.
	RungReset
	// RungRestart recovers the device as a recoverable unit (Sect. 4.5):
	// CtrlRestart is pushed, the device re-handshakes and resumes, and the
	// restart latency is accounted as downtime by the recovery manager.
	RungRestart
	// RungQuarantine retires the device: dispatches stop, the connection
	// is closed, and no further escalation happens.
	RungQuarantine
)

// String returns the rung name (also the Target field of the action's
// journal record).
func (r Rung) String() string {
	switch r {
	case RungTolerate:
		return "tolerate"
	case RungReset:
		return "reset"
	case RungRestart:
		return "restart"
	case RungQuarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("rung(%d)", int(r))
	}
}

// Command returns the wire control command the rung pushes to the device —
// empty for tolerate, which acts only monitor-side.
func (r Rung) Command() wire.ControlCommand {
	switch r {
	case RungReset:
		return wire.CtrlReset
	case RungRestart:
		return wire.CtrlRestart
	case RungQuarantine:
		return wire.CtrlQuarantine
	default:
		return ""
	}
}

// Policy parameterises the per-device escalation ladder.
type Policy struct {
	// Name labels the policy in logs ("default", "aggressive", ...).
	Name string
	// Tolerate is how many reports are absorbed — comparator re-armed,
	// nothing pushed — before the first wire action.
	Tolerate int
	// Resets is how many CtrlReset pushes are tried before escalating to a
	// restart.
	Resets int
	// Restarts is how many restart cycles are tried before quarantine.
	Restarts int
	// RestartLatency is the virtual time one device restart takes; each
	// completed restart contributes exactly this much accounted downtime.
	RestartLatency sim.Time
	// Cooldown, when positive, de-escalates: a device whose reports stop
	// for this long drops back to the bottom of the ladder, so a flapping
	// device that genuinely recovers between episodes is not marched to
	// quarantine by unrelated episodes.
	Cooldown sim.Time
	// RunawayReports and RunawayWindow detect report storms: this many
	// consecutive reports, each within the window of the previous one,
	// classify the device as runaway and jump the ladder straight to the
	// restart rung — resets are demonstrably not helping. Zero disables.
	RunawayReports int
	RunawayWindow  sim.Time
}

// DefaultPolicy is the balanced ladder: a couple of tolerated episodes, a
// couple of resets, one restart, then quarantine.
func DefaultPolicy() Policy {
	return Policy{
		Name:           "default",
		Tolerate:       2,
		Resets:         2,
		Restarts:       1,
		RestartLatency: 250 * sim.Millisecond,
		Cooldown:       5 * sim.Second,
		RunawayReports: 6,
		RunawayWindow:  50 * sim.Millisecond,
	}
}

// AggressivePolicy escalates on the first report and quarantines quickly —
// for fleets where a misbehaving device endangers its neighbours.
func AggressivePolicy() Policy {
	return Policy{
		Name:           "aggressive",
		Tolerate:       0,
		Resets:         1,
		Restarts:       1,
		RestartLatency: 250 * sim.Millisecond,
		Cooldown:       30 * sim.Second,
		RunawayReports: 3,
		RunawayWindow:  100 * sim.Millisecond,
	}
}

// PatientPolicy tolerates long and never quarantines on its own clock's
// worth of restarts — for fleets where taking a device out of service is
// worse than noisy monitoring.
func PatientPolicy() Policy {
	return Policy{
		Name:           "patient",
		Tolerate:       5,
		Resets:         4,
		Restarts:       3,
		RestartLatency: 500 * sim.Millisecond,
		Cooldown:       2 * sim.Second,
		RunawayReports: 10,
		RunawayWindow:  20 * sim.Millisecond,
	}
}

// PolicyByName resolves a named preset (traderd's -recover flag).
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "default":
		return DefaultPolicy(), nil
	case "aggressive":
		return AggressivePolicy(), nil
	case "patient":
		return PatientPolicy(), nil
	default:
		return Policy{}, fmt.Errorf("control: unknown policy %q (want default, aggressive or patient)", name)
	}
}

// Action is one escalation decision the controller took.
type Action struct {
	// Device is the fleet device the action targets.
	Device string
	// Rung is the ladder step that fired.
	Rung Rung
	// Class is the triage of the report that triggered the action.
	Class Class
	// At is the controller's virtual time when the action was taken.
	At sim.Time
}

func (a Action) String() string {
	return fmt.Sprintf("%s: %s (%s) at %s", a.Device, a.Rung, a.Class, a.At)
}

// Frame is the action's journal record: a TypeControl frame carrying the
// pushed command (empty for tolerate) with the rung name in Target. The
// server never journals upstream TypeControl frames, so in a journal these
// records are unambiguously the controller's own decisions, and `-replay`
// reconstructs the exact recovery-action sequence (fleet.Pool.Replay
// re-applies their pool-side effects at the recorded positions).
func (a Action) Frame() wire.Message {
	return wire.Message{Type: wire.TypeControl, SUO: a.Device, Control: a.Rung.Command(), Target: a.Rung.String(), At: a.At}
}
