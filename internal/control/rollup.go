package control

import (
	"fmt"

	"trader/internal/fmea"
	"trader/internal/sim"
)

// Rollup is the control plane's fleet-level accounting: what the fleet
// reported, how it was classified, what the ladder did about it, and what
// the recovery manager accounted for it.
type Rollup struct {
	// Reports processed; Dropped were shed on inbox overflow.
	Reports uint64
	Dropped uint64
	// Per-class report counts.
	Deviations uint64
	Silences   uint64
	Runaways   uint64
	// Per-rung action counts.
	Tolerated   uint64
	Resets      uint64
	Restarts    uint64
	Quarantines uint64
	// Absorbed reports arrived while a restart was already in flight;
	// AfterQuarantine reports came from retired devices; Deescalations are
	// cooldown drops back to the ladder's bottom (healed episodes).
	Absorbed        uint64
	AfterQuarantine uint64
	Deescalations   uint64
	// Acks counts control-command acknowledgements from devices;
	// PushFailures counts wire pushes that could not be delivered;
	// JournalErrors counts actions whose write-ahead record failed.
	Acks          uint64
	PushFailures  uint64
	JournalErrors uint64
	// Devices have reported at least once; Quarantined are out of service.
	Devices     int
	Quarantined int
	// RestartsCompleted and Downtime come from the recovery.Manager: each
	// completed restart contributes exactly the policy's RestartLatency.
	RestartsCompleted uint64
	Downtime          sim.Time
	// Now is the controller's virtual clock.
	Now sim.Time
}

func (ro Rollup) String() string {
	return fmt.Sprintf(
		"%d reports (%d deviation, %d silence, %d runaway, %d dropped) → %d tolerated, %d resets, %d restarts, %d quarantines; %d acks; %d/%d devices quarantined, downtime %s",
		ro.Reports, ro.Deviations, ro.Silences, ro.Runaways, ro.Dropped,
		ro.Tolerated, ro.Resets, ro.Restarts, ro.Quarantines, ro.Acks,
		ro.Quarantined, ro.Devices, ro.Downtime)
}

// Rollup snapshots the controller's accounting. It round-trips through the
// controller goroutine (a barrier: reports enqueued before it are
// reflected); on a closed controller it reads the frozen state directly.
func (c *Controller) Rollup() Rollup {
	reply := make(chan Rollup, 1)
	if c.put(item{kind: itemRollup, reply: reply}, true) {
		return <-reply
	}
	<-c.done // closed: the loop has exited, the state is frozen
	return c.rollup()
}

// rollup builds the Rollup. Controller-goroutine only (or post-Close).
func (c *Controller) rollup() Rollup {
	ro := Rollup{
		Reports:         c.tally.Reports,
		Dropped:         c.dropped.Load(),
		Deviations:      c.tally.Classes[ClassDeviation],
		Silences:        c.tally.Classes[ClassSilence],
		Runaways:        c.tally.Classes[ClassRunaway],
		Tolerated:       c.tally.Rungs[RungTolerate],
		Resets:          c.tally.Rungs[RungReset],
		Restarts:        c.tally.Rungs[RungRestart],
		Quarantines:     c.tally.Rungs[RungQuarantine],
		Absorbed:        c.tally.Absorbed,
		AfterQuarantine: c.tally.AfterQuarantine,
		Deescalations:   c.tally.Deescalations,
		Acks:            c.tally.Acks,
		PushFailures:    c.tally.PushFailures,
		JournalErrors:   c.tally.JournalErrors,
		Devices:         len(c.devs),

		RestartsCompleted: c.mgr.RecoveriesCompleted,
		Now:               c.kernel.Now(),
	}
	for _, d := range c.devs {
		if d.quarantined {
			ro.Quarantined++
		}
	}
	for _, name := range c.mgr.Units() {
		ro.Downtime += c.mgr.Unit(name).Downtime
	}
	return ro
}

// Criticality builds an FMEA worksheet over the fault classes the fleet has
// exhibited (Sect. 4.7's architecture-level FMEA, fed by runtime occurrence
// instead of design-time estimates): occurrence is each class's share of
// the processed reports; severity and detectability characterise the class
// — deviations are well-detected and moderately severe, silence means a
// component is down, a runaway device is both severe and harder to pin.
// Entries come back sorted by risk priority; the top entry is the failure
// class currently threatening user-perceived reliability most. Nil when
// nothing has been reported.
func Criticality(ro Rollup) []fmea.Entry {
	total := ro.Deviations + ro.Silences + ro.Runaways
	if total == 0 {
		return nil
	}
	occ := func(n uint64) float64 { return float64(n) / float64(total) }
	a := fmea.NewArchitecture()
	a.AddComponent(fmea.Component{Name: ClassDeviation.String(), UserFacing: true, Modes: []fmea.FailureMode{
		{Name: string(ClassDeviation.Kind()), Occurrence: occ(ro.Deviations), LocalSeverity: 0.5, Detectability: 0.9},
	}})
	a.AddComponent(fmea.Component{Name: ClassSilence.String(), UserFacing: true, Modes: []fmea.FailureMode{
		{Name: string(ClassSilence.Kind()), Occurrence: occ(ro.Silences), LocalSeverity: 0.8, Detectability: 0.6},
	}})
	a.AddComponent(fmea.Component{Name: ClassRunaway.String(), UserFacing: true, Modes: []fmea.FailureMode{
		{Name: string(ClassRunaway.Kind()), Occurrence: occ(ro.Runaways), LocalSeverity: 0.9, Detectability: 0.7},
	}})
	return a.Analyze()
}
