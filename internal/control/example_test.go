package control_test

import (
	"fmt"

	"trader/internal/control"
	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/sim"
)

// One persistently faulty device marched up the full escalation ladder: the
// monitor reports each deviation episode, the controller tolerates the
// first, then resets the comparator, then restarts the device (25ms of
// accounted downtime), then quarantines it. The pool.Sync/ctl.Sync pair
// after each round makes the asynchronous pipeline deterministic for the
// example; live deployments just let it run.
func Example() {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	if err := pool.AddDevice("tv-1", 1, fleet.LightFactory(1)); err != nil {
		fmt.Println(err)
		return
	}
	pol := control.Policy{Tolerate: 1, Resets: 1, Restarts: 1,
		RestartLatency: 25 * sim.Millisecond, Cooldown: 10 * sim.Second}
	ctl := control.Attach(pool, control.Options{Policy: pol,
		OnAction: func(a control.Action) { fmt.Println(a) }})
	defer ctl.Close()

	for round := 1; round <= 7; round++ {
		e := event.Event{Kind: event.Input, Name: "set", Source: "headend"}.With("x", 0)
		_ = pool.Dispatch("tv-1", e)
		_ = pool.Advance(10 * sim.Millisecond) // periodic comparison fires
		ctl.Sync()                             // actions decided and applied
		_ = pool.Sync()                        // comparator re-arms applied
	}
	ro := ctl.Rollup()
	fmt.Printf("downtime %s across %d restart(s), %d device(s) quarantined\n",
		ro.Downtime, ro.RestartsCompleted, ro.Quarantined)
	// Output:
	// tv-1: tolerate (deviation) at 10.000ms
	// tv-1: reset (deviation) at 20.000ms
	// tv-1: restart (deviation) at 30.000ms
	// tv-1: quarantine (deviation) at 60.000ms
	// downtime 25.000ms across 1 restart(s), 1 device(s) quarantined
}
