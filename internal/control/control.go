// Package control closes the paper's awareness loop (Fig. 1) at fleet
// scale: error reports flowing out of the fleet's monitors are classified
// (deviation vs. silence vs. runaway, in the fault taxonomy of
// internal/faults), driven through a per-device escalation ladder
// (tolerate → reset comparator → restart unit → quarantine/disconnect), and
// actuated back down each device's connection as wire control commands —
// turning the passive monitor into the full awareness-and-recovery system
// of Sect. 4.5. Restart accounting (downtime, recovery counts) reuses the
// partial-recovery framework's recovery.Manager: every monitored device is
// one recoverable unit.
//
// The controller is asynchronous by construction: report handlers run on
// pool shard goroutines and must neither block nor re-enter the pool, so
// they only enqueue into the controller's inbox; one controller goroutine
// owns all escalation state and performs the slow work (journal appends,
// wire pushes, pool resets). Every action is journaled write-ahead as a
// TypeControl frame, so a journal replay reconstructs exactly what the
// controller did (fleet.Pool.Replay re-applies the pool-side effects), not
// just what it saw.
package control

import (
	"sync"
	"sync/atomic"

	"trader/internal/fleet"
	"trader/internal/recovery"
	"trader/internal/sim"
	"trader/internal/wire"
)

// Actuator pushes escalation decisions down to a device. fleet.Server
// implements it; a nil actuator (offline replays, tests) makes the
// controller act monitor-side only.
type Actuator interface {
	// Control pushes a control command down the device's connection.
	Control(id string, cmd wire.ControlCommand) error
	// Disconnect closes the device's connection (the quarantine rung).
	Disconnect(id string) error
}

// Options configures a Controller.
type Options struct {
	// Actuator delivers wire commands to devices. Optional.
	Actuator Actuator
	// Journal, when non-nil, records every action write-ahead (the same
	// journal the ingestion server writes frames to). Optional.
	Journal fleet.FrameJournal
	// Policy is the escalation ladder (zero value: DefaultPolicy).
	Policy Policy
	// Logf, when non-nil, receives action and lifecycle log lines.
	Logf func(format string, args ...any)
	// OnAction, when non-nil, observes every action in decision order. It
	// runs on the controller goroutine and must not call back into the
	// controller. Tests use it to capture the live action sequence.
	OnAction func(Action)
	// OnEscalate, when non-nil, observes every action past the tolerate
	// rung — the moment a device has demonstrably not healed on its own.
	// The fleet diagnosis plane (internal/diagnose) hooks here to pull
	// coverage evidence from the escalated device and a healthy cohort.
	// Same contract as OnAction: controller goroutine, must not block or
	// call back into the controller.
	OnEscalate func(Action)
	// OnIncident, when non-nil, observes every action at the restart rung
	// or beyond — the point where the device's episode has become an
	// incident worth a full evidence capture. The observability plane
	// hooks here to write incident bundles (§6.2): by the time the hook
	// runs the action's journal record is already appended, so a bundle
	// built by scanning the journal sees the complete ladder history
	// including this action. Same contract as OnAction: controller
	// goroutine, must not block or call back into the controller.
	OnIncident func(Action)
	// Inbox is the report queue length (default 4096). Reports beyond it
	// are shed and counted in Rollup().Dropped.
	Inbox int
}

// itemKind discriminates inbox items.
type itemKind int

const (
	itemReport itemKind = iota
	itemAck
	itemAdvance
	itemRollup
	itemSync
	itemCheckpoint
	itemRestore
	itemStop
)

// item is one unit of inbox work.
type item struct {
	kind    itemKind
	device  string
	report  wire.ErrorReport
	ack     wire.Message
	at      sim.Time
	reply   chan Rollup
	sync    chan struct{}
	cpReply chan wire.Message
	restore *wire.Checkpoint
	errc    chan error
}

// devState is one device's position on the escalation ladder. Owned by the
// controller goroutine.
type devState struct {
	rung        Rung
	used        int      // actions already taken at the current rung
	seen        uint64   // reports seen
	lastAt      sim.Time // virtual time of the last report
	burst       int      // consecutive reports within the runaway window
	quarantined bool
}

// tally is the controller's action accounting. Owned by the controller
// goroutine; Rollup round-trips through it (or reads directly after Close).
type tally struct {
	Reports         uint64
	Classes         [nClasses]uint64
	Rungs           [RungQuarantine + 1]uint64
	Absorbed        uint64 // reports absorbed by an in-flight restart
	AfterQuarantine uint64 // reports from already-quarantined devices
	Deescalations   uint64 // cooldown drops back to the ladder bottom
	Acks            uint64
	PushFailures    uint64
	JournalErrors   uint64
}

// Controller drives the fleet's recovery: one goroutine consuming the
// report inbox, a recovery.Manager accounting restarts and downtime on the
// controller's virtual clock, and a per-device escalation ladder.
type Controller struct {
	pool *fleet.Pool
	opts Options
	pol  Policy

	kernel *sim.Kernel
	mgr    *recovery.Manager
	devs   map[string]*devState
	tally  tally

	inbox chan item
	done  chan struct{}

	// lifeMu orders enqueues against Close, so nothing is ever sent to an
	// inbox whose loop has been told to stop.
	lifeMu sync.Mutex
	closed bool

	dropped atomic.Uint64
}

// Attach builds a controller over the pool, subscribes it to the pool's
// error-report fan-in and starts its goroutine. Close stops it.
func Attach(pool *fleet.Pool, opts Options) *Controller {
	c := newController(pool, opts)
	pool.OnReport(c.Report)
	go c.loop()
	return c
}

// newController builds the controller without starting its goroutine or
// touching the pool's handler list — the seam the table-driven policy tests
// drive synchronously.
func newController(pool *fleet.Pool, opts Options) *Controller {
	if opts.Policy == (Policy{}) {
		opts.Policy = DefaultPolicy()
	}
	if opts.Inbox <= 0 {
		opts.Inbox = 4096
	}
	c := &Controller{
		pool:   pool,
		opts:   opts,
		pol:    opts.Policy,
		kernel: sim.NewKernel(1),
		devs:   make(map[string]*devState),
		inbox:  make(chan item, opts.Inbox),
		done:   make(chan struct{}),
	}
	c.mgr = recovery.NewManager(c.kernel)
	return c
}

func (c *Controller) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// put enqueues an item unless the controller is closed. Non-blocking puts
// (reports, acks — they run on shard and connection goroutines) shed on a
// full inbox; blocking puts (rollup, sync, advance) wait for a slot.
func (c *Controller) put(it item, wait bool) bool {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.closed {
		return false
	}
	if wait {
		// Blocking under lifeMu is safe: the loop drains independently and
		// Close serialises behind us.
		c.inbox <- it
		return true
	}
	select {
	case c.inbox <- it:
		return true
	default:
		c.dropped.Add(1)
		return false
	}
}

// Report feeds one error report into the controller. Attach registers it
// with Pool.OnReport; it is safe from any goroutine and never blocks —
// under overload reports are shed and counted (the ladder survives lost
// evidence: the next report moves it the same way).
func (c *Controller) Report(device string, r wire.ErrorReport) {
	c.put(item{kind: itemReport, device: device, report: r}, false)
}

// HandleAck feeds a device's control-command acknowledgement into the
// controller; wire it to fleet.Server.OnAck. Safe from any goroutine,
// never blocks.
func (c *Controller) HandleAck(id string, m wire.Message) {
	c.put(item{kind: itemAck, device: id, ack: m}, false)
}

// Advance drives the controller's virtual clock to at, completing any
// restart whose latency has elapsed (closing out its downtime accounting).
// The clock otherwise only advances with report and ack timestamps, so a
// fleet that heals completely would leave its last restart dangling.
func (c *Controller) Advance(at sim.Time) {
	ch := make(chan struct{})
	if c.put(item{kind: itemAdvance, at: at, sync: ch}, true) {
		<-ch
	}
}

// Sync blocks until every report enqueued before it has been processed.
func (c *Controller) Sync() {
	ch := make(chan struct{})
	if c.put(item{kind: itemSync, sync: ch}, true) {
		<-ch
	}
}

// Close stops the controller goroutine. Reports arriving after Close are
// dropped silently; Rollup keeps working on the frozen state.
func (c *Controller) Close() {
	c.lifeMu.Lock()
	if c.closed {
		c.lifeMu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	c.inbox <- item{kind: itemStop}
	c.lifeMu.Unlock()
	<-c.done
}

func (c *Controller) loop() {
	defer close(c.done)
	for it := range c.inbox {
		switch it.kind {
		case itemStop:
			return
		case itemSync:
			close(it.sync)
		case itemAdvance:
			c.advanceTo(it.at)
			close(it.sync)
		case itemRollup:
			it.reply <- c.rollup()
		case itemCheckpoint:
			it.cpReply <- c.checkpoint()
		case itemRestore:
			it.errc <- c.restore(it.restore)
		case itemAck:
			c.handleAck(it.device, it.ack)
		case itemReport:
			c.handleReport(it.device, it.report)
		}
	}
}

// advanceTo runs the controller clock forward, firing due restart
// completions on the way. Reports from slow devices may carry timestamps
// behind the fleet-wide clock; time never moves backwards.
func (c *Controller) advanceTo(at sim.Time) {
	if at > c.kernel.Now() {
		c.kernel.Run(at)
	}
}

// limit returns how many actions the rung's budget allows.
func (c *Controller) limit(r Rung) int {
	switch r {
	case RungTolerate:
		return c.pol.Tolerate
	case RungReset:
		return c.pol.Resets
	default:
		return c.pol.Restarts
	}
}

// classify triages one report: the detector decides deviation vs. silence,
// and the device's report timing detects a runaway storm. It reads (but
// does not update) d.lastAt, so the burst window is measured between
// consecutive reports.
func (c *Controller) classify(d *devState, r wire.ErrorReport) Class {
	if c.pol.RunawayReports > 0 && c.pol.RunawayWindow > 0 {
		if d.seen > 0 && r.At >= d.lastAt && r.At-d.lastAt <= c.pol.RunawayWindow {
			d.burst++
		} else {
			d.burst = 1
		}
		if d.burst >= c.pol.RunawayReports {
			return ClassRunaway
		}
	}
	return ClassOf(r)
}

// ensureDevice returns the device's ladder state, creating it — and its
// recovery unit — on first sight. Controller-goroutine only.
func (c *Controller) ensureDevice(device string) *devState {
	d := c.devs[device]
	if d == nil {
		d = &devState{}
		c.devs[device] = d
		u := &recovery.Unit{Name: device, RestartLatency: c.pol.RestartLatency}
		u.OnRestart = func() {
			// The restarted unit is monitored clean from here on.
			_, _ = c.pool.ResetDevice(device)
			c.logf("control: %s: restart complete (downtime %s)", device, c.pol.RestartLatency)
		}
		c.mgr.AddUnit(u)
	}
	return d
}

// handleReport is the escalation ladder. One report → at most one action.
func (c *Controller) handleReport(device string, r wire.ErrorReport) {
	c.tally.Reports++
	c.advanceTo(r.At)
	d := c.ensureDevice(device)
	if d.quarantined {
		// The device is out of service; its monitor may still sweep
		// silence, but there is no further rung to climb.
		c.tally.AfterQuarantine++
		d.lastAt = r.At
		return
	}
	// Cooldown de-escalation first: a device quiet past the cooldown had a
	// healed episode, so this report opens a fresh one at the ladder's
	// bottom instead of resuming a stale climb (the flapping-device case).
	if c.pol.Cooldown > 0 && d.seen > 0 && r.At-d.lastAt >= c.pol.Cooldown {
		d.rung, d.used, d.burst = RungTolerate, 0, 0
		c.tally.Deescalations++
	}
	class := c.classify(d, r)
	c.tally.Classes[class]++
	d.seen++
	d.lastAt = r.At
	if c.mgr.Unit(device).State() != recovery.Running {
		// A restart is in flight; reports racing it are evidence of the
		// failure already being recovered, not of the recovery failing.
		// Re-arm the comparator anyway — a latched episode would stop
		// reporting entirely, and the controller's clock (and thus the
		// restart's completion) only advances with fresh evidence.
		c.tally.Absorbed++
		_, _ = c.pool.ResetDevice(device)
		return
	}
	if class == ClassRunaway && d.rung < RungRestart {
		// Resets demonstrably don't help a report storm: skip them.
		d.rung, d.used = RungRestart, 0
	}
	for d.rung < RungQuarantine && d.used >= c.limit(d.rung) {
		d.rung++
		d.used = 0
	}
	act := Action{Device: device, Rung: d.rung, Class: class, At: c.kernel.Now()}
	d.used++
	c.apply(act, d)
}

// apply journals the action write-ahead, applies its monitor-side effect,
// and pushes its wire command (if any) down the device's connection.
func (c *Controller) apply(act Action, d *devState) {
	if c.opts.Journal != nil {
		if err := c.opts.Journal.Append(act.Frame()); err != nil {
			// Recovery beats the record: the fleet is actively failing, so
			// act anyway and surface the journal failure loudly. (The
			// ingestion server is stricter with observation frames — an
			// unrecorded observation is silent data loss; an unrecorded
			// action at worst replays as a slightly gentler ladder.)
			c.tally.JournalErrors++
			c.logf("control: journal action [%s]: %v", act, err)
		}
	}
	c.tally.Rungs[act.Rung]++
	switch act.Rung {
	case RungTolerate:
		_, _ = c.pool.ResetDevice(act.Device)
	case RungReset:
		_, _ = c.pool.ResetDevice(act.Device)
		c.push(act)
	case RungRestart:
		_ = c.mgr.Recover(act.Device, recovery.UnitOnly)
		_, _ = c.pool.ResetDevice(act.Device)
		c.push(act)
	case RungQuarantine:
		d.quarantined = true
		_, _ = c.pool.QuarantineDevice(act.Device)
		c.push(act)
		if c.opts.Actuator != nil {
			if err := c.opts.Actuator.Disconnect(act.Device); err != nil {
				c.logf("control: disconnect %s: %v", act.Device, err)
			}
		}
	}
	c.logf("control: action [%s]", act)
	if c.opts.OnAction != nil {
		c.opts.OnAction(act)
	}
	if c.opts.OnEscalate != nil && act.Rung > RungTolerate {
		c.opts.OnEscalate(act)
	}
	if c.opts.OnIncident != nil && act.Rung >= RungRestart {
		c.opts.OnIncident(act)
	}
}

// push sends the action's wire command, tolerating delivery failure — the
// device may have disconnected between the report and the decision; the
// action's monitor-side half already happened either way.
func (c *Controller) push(act Action) {
	if c.opts.Actuator == nil {
		return
	}
	if err := c.opts.Actuator.Control(act.Device, act.Rung.Command()); err != nil {
		c.tally.PushFailures++
		c.logf("control: push %s to %s: %v", act.Rung.Command(), act.Device, err)
	}
}

func (c *Controller) handleAck(id string, m wire.Message) {
	c.advanceTo(m.At)
	c.tally.Acks++
	c.logf("control: %s: acked %s at %s", id, m.Control, m.At)
}
