package control

import (
	"testing"

	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

// deviation builds a comparator report at the given virtual time.
func deviation(at sim.Time) wire.ErrorReport {
	return wire.ErrorReport{Detector: detectorComparator, At: at}
}

// TestCheckpointRestoreRoundTrip drives the ladder through every rung,
// snapshots the controller, journals the record, recovers it into a fresh
// controller and compares the full rollups.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	pol := Policy{Tolerate: 1, Resets: 1, Restarts: 1, RestartLatency: 5 * sim.Millisecond}
	p1 := fleet.NewPool(fleet.Options{Shards: 1})
	defer p1.Stop()
	c1 := newController(p1, Options{Policy: pol})
	at := sim.Time(0)
	for i := 0; i < 4; i++ {
		// Wider than RestartLatency, so no report is absorbed by an
		// in-flight restart and every one climbs: tolerate, reset,
		// restart, quarantine.
		at += 10 * sim.Millisecond
		c1.handleReport("dev-a", deviation(at))
	}
	c1.handleReport("dev-b", deviation(at))
	c1.advanceTo(at + 100*sim.Millisecond) // settle any remaining restart accounting
	want := c1.rollup()
	if want.Quarantines == 0 || want.Downtime == 0 {
		t.Fatalf("drive did not climb the ladder: %+v", want)
	}

	msg := c1.checkpoint()
	if msg.Checkpoint == nil || msg.Checkpoint.Plane != wire.PlaneControl {
		t.Fatalf("checkpoint record malformed: %+v", msg)
	}
	dir := t.TempDir()
	w, err := journal.Create(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(msg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := fleet.NewPool(fleet.Options{Shards: 1})
	defer p2.Stop()
	c2 := Attach(p2, Options{Policy: pol})
	defer c2.Close()
	r, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	found, err := c2.Recover(r)
	if err != nil || !found {
		t.Fatalf("Recover: found=%v err=%v", found, err)
	}
	if got := c2.Rollup(); got != want {
		t.Fatalf("recovered rollup diverges:\n got  %+v\n want %+v", got, want)
	}

	// The restored ladder continues where it left off: dev-b (one report,
	// still on tolerate) escalates on its next report instead of starting
	// over, and dev-a stays quarantined.
	c2.Report("dev-b", deviation(at+101*sim.Millisecond))
	c2.Report("dev-a", deviation(at+102*sim.Millisecond))
	c2.Sync()
	ro := c2.Rollup()
	if ro.Resets != want.Resets+1 {
		t.Fatalf("dev-b did not resume its climb: %+v", ro)
	}
	if ro.AfterQuarantine != want.AfterQuarantine+1 {
		t.Fatalf("dev-a lost its quarantine: %+v", ro)
	}
}

// TestRecoverWithoutCheckpoint pins the no-checkpoint path: found=false,
// nothing restored.
func TestRecoverWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Create(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(wire.Message{Type: wire.TypeControl, SUO: "dev-a", Control: wire.CtrlReset}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	p := fleet.NewPool(fleet.Options{Shards: 1})
	defer p.Stop()
	c := Attach(p, Options{})
	defer c.Close()
	r, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if found, err := c.Recover(r); err != nil || found {
		t.Fatalf("Recover on checkpoint-less journal: found=%v err=%v", found, err)
	}
}
