package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %v, want 30", k.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	k.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.Schedule(-100, func() { ran = true })
	k.RunAll()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if k.Now() != 0 {
		t.Fatalf("Now = %v, want 0", k.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(100, func() {
		k.ScheduleAt(10, func() {
			if k.Now() != 100 {
				t.Errorf("past event ran at %v, want 100", k.Now())
			}
		})
	})
	k.RunAll()
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	ran := false
	e := k.Schedule(10, func() { ran = true })
	if !e.Pending() {
		t.Fatal("event should be pending")
	}
	if !e.Cancel() {
		t.Fatal("Cancel should report true for a pending event")
	}
	if e.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	k.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	k := NewKernel(1)
	e := k.Schedule(1, func() {})
	k.RunAll()
	if e.Cancel() {
		t.Fatal("Cancel of fired event should report false")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	k.Run(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10 only", fired)
	}
	if k.Now() != 12 {
		t.Fatalf("Now = %v, want 12", k.Now())
	}
	// Boundary: event exactly at `until` fires.
	k.Run(15)
	if len(fired) != 3 || fired[2] != 15 {
		t.Fatalf("fired %v, want event at 15 included", fired)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.Schedule(1, func() { count++; k.Stop() })
	k.Schedule(2, func() { count++ })
	k.RunAll()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (kernel stopped)", count)
	}
	if !k.Stopped() {
		t.Fatal("Stopped should be true")
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
}

func TestEvery(t *testing.T) {
	k := NewKernel(1)
	var at []Time
	r := k.Every(10, func() { at = append(at, k.Now()) })
	k.Run(35)
	r.Stop()
	k.Run(100)
	if len(at) != 3 || at[0] != 10 || at[1] != 20 || at[2] != 30 {
		t.Fatalf("periodic fired at %v, want [10 20 30]", at)
	}
}

func TestEveryStopFromCallback(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var r *Repeater
	r = k.Every(5, func() {
		n++
		if n == 3 {
			r.Stop()
		}
	})
	k.RunAll()
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
}

func TestEveryPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKernel(1).Every(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		k := NewKernel(seed)
		var trace []Time
		var spawn func()
		spawn = func() {
			trace = append(trace, k.Now())
			if len(trace) < 50 {
				k.Schedule(Time(1+k.Rand().Intn(100)), spawn)
			}
		}
		k.Schedule(0, spawn)
		k.RunAll()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the kernel ends at the maximum delay.
func TestPropertyOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(7)
		var fired []Time
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			k.Schedule(d, func() { fired = append(fired, k.Now()) })
		}
		k.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || k.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the others to fire.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		k := NewKernel(9)
		count := int(n % 60)
		fired := make([]bool, count)
		events := make([]*Event, count)
		for i := 0; i < count; i++ {
			i := i
			events[i] = k.Schedule(Time(i%7), func() { fired[i] = true })
		}
		cancelled := make([]bool, count)
		for i := 0; i < count; i++ {
			if mask&(1<<(uint(i)%64)) != 0 && i%3 == 0 {
				events[i].Cancel()
				cancelled[i] = true
			}
		}
		k.RunAll()
		for i := 0; i < count; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, v := range []float64{4, 2, 8, 6} {
		s.Observe(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if q := s.Quantile(0.5); q != 4 {
		t.Fatalf("p50 = %v, want 4", q)
	}
	if q := s.Quantile(1); q != 8 {
		t.Fatalf("p100 = %v, want 8", q)
	}
	if q := s.Quantile(0); q != 2 {
		t.Fatalf("p0 = %v, want 2", q)
	}
	if s.StdDev() <= 0 {
		t.Fatalf("StdDev = %v, want > 0", s.StdDev())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Quantile(0.5) != 0 || s.StdDev() != 0 {
		t.Fatal("empty series should return zeros")
	}
}

func TestBusyUtilisation(t *testing.T) {
	var b Busy
	b.Start(0)
	b.SetBusy(10, true)
	b.SetBusy(30, false)
	b.SetBusy(50, true)
	// At t=60: busy 20 (10..30) + 10 (50..60) of 60 => 0.5
	if u := b.Utilisation(60); u != 0.5 {
		t.Fatalf("Utilisation = %v, want 0.5", u)
	}
	// Redundant transitions are no-ops.
	b.SetBusy(70, true)
	if u := b.Utilisation(70); u < 0.57 || u > 0.58 {
		t.Fatalf("Utilisation = %v, want ~0.571", u)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:               "5ns",
		5 * Microsecond: "5.000us",
		5 * Millisecond: "5.000ms",
		2 * Second:      "2.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func BenchmarkKernelScheduleFire(b *testing.B) {
	k := NewKernel(1)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(Time(rng.Intn(1000)), func() {})
		k.Step()
	}
}
