package sim

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing tally.
type Counter struct {
	Name string
	n    uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current tally.
func (c *Counter) Value() uint64 { return c.n }

// Series accumulates scalar samples and offers summary statistics. The zero
// value is ready to use.
type Series struct {
	Name    string
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (s *Series) Observe(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
}

// N returns the number of samples.
func (s *Series) N() int { return len(s.samples) }

// Sum returns the sum of samples.
func (s *Series) Sum() float64 {
	var sum float64
	for _, v := range s.samples {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.samples))
}

// Min returns the smallest sample, or +Inf for an empty series.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.samples {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or -Inf for an empty series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func (s *Series) StdDev() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted samples. It returns 0 for an empty series.
func (s *Series) Quantile(q float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	if q <= 0 {
		return s.samples[0]
	}
	if q >= 1 {
		return s.samples[len(s.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.samples[idx]
}

// String summarises the series.
func (s *Series) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.Name, s.N(), s.Mean(), s.Min(), s.Quantile(0.5), s.Quantile(0.95), s.Max())
}

// Busy tracks utilisation of a resource over virtual time: total busy time
// divided by observed span.
type Busy struct {
	busy      Time
	busySince Time
	busyNow   bool
	start     Time
	started   bool
}

// Start marks the beginning of the observation window.
func (b *Busy) Start(now Time) {
	b.start = now
	b.started = true
}

// SetBusy switches the resource busy/idle at virtual time now.
func (b *Busy) SetBusy(now Time, busy bool) {
	if !b.started {
		b.Start(now)
	}
	if busy == b.busyNow {
		return
	}
	if b.busyNow {
		b.busy += now - b.busySince
	} else {
		b.busySince = now
	}
	b.busyNow = busy
}

// Utilisation returns busy/(now-start) in [0,1].
func (b *Busy) Utilisation(now Time) float64 {
	total := now - b.start
	if total <= 0 {
		return 0
	}
	busy := b.busy
	if b.busyNow && now > b.busySince {
		busy += now - b.busySince
	}
	return float64(busy) / float64(total)
}
