// Package sim provides a deterministic discrete-event simulation kernel.
//
// All higher-level substrates (the SoC resource model, the TV simulator, the
// recovery framework, ...) run on this kernel so that every experiment in the
// repository is reproducible: given the same seed and the same schedule of
// injected faults, a run produces bit-identical traces. Time is virtual and
// only advances when the event queue is popped; wall-clock time never leaks
// into simulation results.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a virtual time stamp in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring time.Duration constants but in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// String renders the time in a human-friendly unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. The zero value is inert.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     func()
	index  int // heap index, -1 when not queued
	dead   bool
	kernel *Kernel
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel removes the event from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending.
func (e *Event) Cancel() bool {
	if e == nil || e.dead || e.index < 0 {
		return false
	}
	heap.Remove(&e.kernel.pq, e.index)
	e.dead = true
	return true
}

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.index >= 0 }

// Kernel is a discrete-event simulator. It is not safe for concurrent use;
// drive it from a single goroutine.
type Kernel struct {
	now     Time
	seq     uint64
	pq      eventHeap
	rng     *rand.Rand
	stopped bool

	// Stats
	fired uint64
}

// NewKernel returns a kernel with virtual time 0 and a deterministic RNG
// seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.pq) }

// Schedule queues fn to run after delay. A negative delay is treated as zero
// (run at the current instant, after already-queued events for that instant).
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time at. Times in the past
// are clamped to now.
func (k *Kernel) ScheduleAt(at Time, fn func()) *Event {
	if at < k.now {
		at = k.now
	}
	e := &Event{at: at, seq: k.seq, fn: fn, kernel: k}
	k.seq++
	heap.Push(&k.pq, e)
	return e
}

// Every schedules fn to run every period, starting after the first period.
// The returned event is the currently-pending occurrence; cancelling it stops
// the series. fn may call Cancel on the returned *Event via closure to stop.
func (k *Kernel) Every(period Time, fn func()) *Repeater {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	r := &Repeater{k: k, period: period, fn: fn}
	r.arm()
	return r
}

// Repeater is a periodic event series created by Every.
type Repeater struct {
	k       *Kernel
	period  Time
	fn      func()
	ev      *Event
	stopped bool
}

func (r *Repeater) arm() {
	r.ev = r.k.Schedule(r.period, func() {
		if r.stopped {
			return
		}
		r.fn()
		if !r.stopped {
			r.arm()
		}
	})
}

// Stop cancels the series.
func (r *Repeater) Stop() {
	r.stopped = true
	if r.ev != nil {
		r.ev.Cancel()
	}
}

// Step executes the next queued event, advancing virtual time. It reports
// false when the queue is empty or the kernel has been stopped.
func (k *Kernel) Step() bool {
	if k.stopped || len(k.pq) == 0 {
		return false
	}
	e := heap.Pop(&k.pq).(*Event)
	e.dead = true
	k.now = e.at
	k.fired++
	e.fn()
	return true
}

// Run executes events until the queue is empty, the kernel is stopped, or
// virtual time would exceed until. Events scheduled exactly at until still
// run. It returns the time at which the run settled.
func (k *Kernel) Run(until Time) Time {
	for !k.stopped && len(k.pq) > 0 && k.pq[0].at <= until {
		k.Step()
	}
	if k.now < until && !k.stopped {
		k.now = until
	}
	return k.now
}

// Jump re-anchors the kernel at absolute virtual time at without firing
// anything: every pending event is shifted forward by the same delta, so
// relative phases (repeater periods, armed timers) are preserved. Jumping
// backwards or to the current instant is a no-op. Checkpoint restore uses
// this to place a freshly built kernel at the capture time before replaying
// the post-checkpoint delta.
func (k *Kernel) Jump(at Time) {
	if at <= k.now {
		return
	}
	d := at - k.now
	k.now = at
	// A uniform shift preserves the (at, seq) heap order, so the slice can
	// be rewritten in place without re-heapifying.
	for _, e := range k.pq {
		e.at += d
	}
}

// RunAll executes events until the queue is empty or the kernel is stopped.
func (k *Kernel) RunAll() Time {
	for k.Step() {
	}
	return k.now
}

// Stop halts the kernel: no further events fire. Pending events remain
// queued so tests can inspect them.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
