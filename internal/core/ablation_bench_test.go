package core

// Ablation benches for comparator design choices: per-observable enable
// gating (event-based comparison control from the model) versus always-on
// comparison, and the cost of widening the observable set.

import (
	"fmt"
	"testing"

	"trader/internal/event"
	"trader/internal/sim"
)

func benchMonitor(b *testing.B, nObs int, gated bool) *Monitor {
	b.Helper()
	k := sim.NewKernel(1)
	var obs []Observable
	for i := 0; i < nObs; i++ {
		o := Observable{
			EventName: "out", ValueName: fmt.Sprintf("v%d", i), ModelVar: "x",
			Threshold: 0.5, Tolerance: 1,
		}
		if gated {
			o.EnableVar = "gate"
		}
		obs = append(obs, o)
	}
	m, err := NewMonitor(k, tinyModel(k), Configuration{Observables: obs})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Start(); err != nil {
		b.Fatal(err)
	}
	return m
}

func benchEvent(nObs int) event.Event {
	e := event.Event{Kind: event.Output, Name: "out"}
	for i := 0; i < nObs; i++ {
		e = e.With(fmt.Sprintf("v%d", i), 0)
	}
	return e
}

func BenchmarkAblationCompareUngated(b *testing.B) {
	m := benchMonitor(b, 4, false)
	e := benchEvent(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.HandleOutput(e)
	}
}

func BenchmarkAblationCompareGatedOpen(b *testing.B) {
	m := benchMonitor(b, 4, true) // gate starts at 1 (open)
	e := benchEvent(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.HandleOutput(e)
	}
}

func BenchmarkAblationCompareGatedClosed(b *testing.B) {
	m := benchMonitor(b, 4, true)
	m.HandleInput(eventNamed("gate")) // close the gate: comparisons skipped
	e := benchEvent(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.HandleOutput(e)
	}
}

func BenchmarkAblationObservableCount1(b *testing.B)  { benchObsCount(b, 1) }
func BenchmarkAblationObservableCount8(b *testing.B)  { benchObsCount(b, 8) }
func BenchmarkAblationObservableCount32(b *testing.B) { benchObsCount(b, 32) }

func benchObsCount(b *testing.B, n int) {
	m := benchMonitor(b, n, false)
	e := benchEvent(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.HandleOutput(e)
	}
}
