package core_test

import (
	"testing"

	"trader/internal/core"
	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

// audioOnlyModel is a deliberately partial spec model: it tracks only the
// audible level (the paper: "the approach allows the use of partial models,
// concentrating on what is most relevant for the user").
func audioOnlyModel(k *sim.Kernel) *statemachine.Model {
	r := statemachine.NewRegion("audio")
	audible := func(c *statemachine.Context) {
		if c.Get("power") == 0 || c.Get("muted") == 1 {
			c.Set("volume", 0)
		} else {
			c.Set("volume", c.Get("volSetting"))
		}
	}
	key := func(kk tvsim.Key) func(*statemachine.Context) bool {
		return func(c *statemachine.Context) bool {
			v, ok := c.Event.Get("key")
			return ok && tvsim.Key(v) == kk
		}
	}
	r.Add(&statemachine.State{
		Name: "s",
		Entry: func(c *statemachine.Context) {
			c.Set("volSetting", 20)
			audible(c)
		},
		Transitions: []statemachine.Transition{
			{Event: "key", Guard: key(tvsim.KeyPower), Action: func(c *statemachine.Context) {
				c.SetBool("power", c.Get("power") == 0)
				audible(c)
			}},
			{Event: "key", Guard: func(c *statemachine.Context) bool {
				return c.Get("power") == 1 && key(tvsim.KeyVolUp)(c)
			}, Action: func(c *statemachine.Context) {
				if v := c.Get("volSetting") + 5; v <= 100 {
					c.Set("volSetting", v)
				}
				c.Set("muted", 0)
				audible(c)
			}},
			{Event: "key", Guard: func(c *statemachine.Context) bool {
				return c.Get("power") == 1 && key(tvsim.KeyVolDown)(c)
			}, Action: func(c *statemachine.Context) {
				if v := c.Get("volSetting") - 5; v >= 0 {
					c.Set("volSetting", v)
				}
				c.Set("muted", 0)
				audible(c)
			}},
			{Event: "key", Guard: func(c *statemachine.Context) bool {
				return c.Get("power") == 1 && key(tvsim.KeyMute)(c)
			}, Action: func(c *statemachine.Context) {
				c.SetBool("muted", c.Get("muted") == 0)
				audible(c)
			}},
		},
	})
	return statemachine.MustModel("audio-partial", k, r)
}

// videoOnlyModel tracks only frame quality expectations.
func videoOnlyModel(k *sim.Kernel) *statemachine.Model {
	r := statemachine.NewRegion("video")
	key := func(kk tvsim.Key) func(*statemachine.Context) bool {
		return func(c *statemachine.Context) bool {
			v, ok := c.Event.Get("key")
			return ok && tvsim.Key(v) == kk
		}
	}
	r.Add(&statemachine.State{
		Name: "s",
		Transitions: []statemachine.Transition{
			{Event: "key", Guard: key(tvsim.KeyPower), Action: func(c *statemachine.Context) {
				on := c.Get("power") == 0
				c.SetBool("power", on)
				if on {
					c.Set("quality", 1)
				} else {
					c.Set("quality", 0)
				}
			}},
		},
	})
	return statemachine.MustModel("video-partial", k, r)
}

// TestGroupHierarchicalMonitors runs two independent partial monitors on
// one TV: an audio monitor and a video monitor, each with its own partial
// model. Faults in each subsystem are reported by exactly the responsible
// monitor.
func TestGroupHierarchicalMonitors(t *testing.T) {
	k := sim.NewKernel(11)
	tv := tvsim.New(k, tvsim.Config{})

	audioMon, err := core.NewMonitor(k, audioOnlyModel(k), core.Configuration{
		Observables: []core.Observable{
			{Name: "audio-volume", EventName: "audio", ValueName: "volume",
				ModelVar: "volume", Threshold: 0.5, Tolerance: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	videoMon, err := core.NewMonitor(k, videoOnlyModel(k), core.Configuration{
		Observables: []core.Observable{
			{Name: "frame-quality", EventName: "frame", ValueName: "quality",
				ModelVar: "quality", Threshold: 0.3, Tolerance: 3, EnableVar: "power",
				MaxSilence: 200 * sim.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	g := core.NewGroup()
	if err := g.Add("audio", audioMon); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("video", videoMon); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("audio", audioMon); err == nil {
		t.Fatal("duplicate add should fail")
	}
	var reports []struct {
		mon string
		r   wire.ErrorReport
	}
	g.OnError(func(mon string, r wire.ErrorReport) {
		reports = append(reports, struct {
			mon string
			r   wire.ErrorReport
		}{mon, r})
	})
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	audioMon.AttachBus(tv.Bus())
	videoMon.AttachBus(tv.Bus())

	tv.PressKey(tvsim.KeyPower)
	k.Run(sim.Second)
	if len(reports) != 0 {
		t.Fatalf("healthy run flagged: %v", reports)
	}

	// Audio fault → only the audio monitor reports.
	tv.Injector().Schedule(faults.Fault{
		ID: "skew", Kind: faults.ValueCorruption, Target: "audio",
		At: k.Now(), Duration: sim.Second, Param: -15,
	})
	k.Run(k.Now() + 100*sim.Millisecond)
	tv.PressKey(tvsim.KeyVolUp)
	tv.PressKey(tvsim.KeyVolUp)
	k.Run(k.Now() + sim.Second)
	for _, rep := range reports {
		if rep.mon != "audio" {
			t.Fatalf("audio fault reported by %q: %+v", rep.mon, rep.r)
		}
	}
	if len(reports) == 0 {
		t.Fatal("audio fault undetected")
	}
	audioReports := len(reports)

	// Video fault → only the video monitor adds reports.
	tv.Injector().Schedule(faults.Fault{
		ID: "crash", Kind: faults.TaskCrash, Target: "video", At: k.Now(),
	})
	k.Run(k.Now() + sim.Second)
	videoReports := 0
	for _, rep := range reports[audioReports:] {
		if rep.mon != "video" {
			t.Fatalf("video fault reported by %q: %+v", rep.mon, rep.r)
		}
		videoReports++
	}
	if videoReports == 0 {
		t.Fatal("video fault undetected")
	}

	// Aggregate stats add up.
	agg := g.Stats()
	per := g.StatsByMonitor()
	if agg.Errors != per["audio"].Errors+per["video"].Errors {
		t.Fatal("aggregate error count wrong")
	}
	if agg.Errors == 0 || agg.Comparisons == 0 {
		t.Fatal("aggregation lost data")
	}
	if names := g.Names(); len(names) != 2 || names[0] != "audio" {
		t.Fatalf("Names = %v", names)
	}
	if g.Monitor("audio") != audioMon || g.Monitor("ghost") != nil {
		t.Fatal("member lookup wrong")
	}

	g.Stop()
	tv.PressKey(tvsim.KeyVolUp)
	if g.Stats().InputsSeen != agg.InputsSeen {
		t.Fatal("stopped group still observing")
	}
}

func TestGroupLifecycleErrors(t *testing.T) {
	k := sim.NewKernel(1)
	g := core.NewGroup()
	m, err := core.NewMonitor(k, audioOnlyModel(k), core.Configuration{
		Observables: []core.Observable{
			{EventName: "audio", ValueName: "volume", ModelVar: "volume"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Add("a", m)
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err == nil {
		t.Fatal("double group start should fail")
	}
	if err := g.Add("b", m); err == nil {
		t.Fatal("add after start should fail")
	}
	// Start failure propagates: a monitor whose model is already started.
	g2 := core.NewGroup()
	started, err := core.NewMonitor(k, audioOnlyModel(k), core.Configuration{
		Observables: []core.Observable{
			{EventName: "audio", ValueName: "volume", ModelVar: "volume"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = started.Start()
	_ = g2.Add("bad", started)
	if err := g2.Start(); err == nil {
		t.Fatal("group start should surface member failure")
	}
}
