package core_test

import (
	"net"
	"testing"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

// tvObservables is the monitor configuration for the TV SUO used by the
// integration tests (the experiment harness builds the same set).
func tvObservables() core.Configuration {
	return core.Configuration{
		Observables: []core.Observable{
			{Name: "audio-volume", EventName: "audio", ValueName: "volume", ModelVar: "volume", Threshold: 0.5, Tolerance: 1},
			{Name: "channel", EventName: "screen", ValueName: "channel", ModelVar: "channel"},
			{Name: "teletext-visible", EventName: "screen", ValueName: "teletext", ModelVar: "teletext"},
			{Name: "teletext-fresh", EventName: "teletext", ValueName: "fresh", ModelVar: "teletextFresh", Tolerance: 2, EnableVar: "teletext"},
			{Name: "frame-quality", EventName: "frame", ValueName: "quality", ModelVar: "quality", Threshold: 0.3, Tolerance: 3, EnableVar: "power",
				MaxSilence: 200 * sim.Millisecond},
			{Name: "swivel-angle", EventName: "swivel", ValueName: "angle", ModelVar: "swivelTarget", Threshold: 0.5, Tolerance: 60},
		},
	}
}

func buildMonitoredTV(t *testing.T, seed int64) (*sim.Kernel, *tvsim.TV, *core.Monitor, *[]wire.ErrorReport) {
	t.Helper()
	k := sim.NewKernel(seed)
	cfg := tvsim.Config{}
	tv := tvsim.New(k, cfg)
	model := tvsim.BuildSpecModel(k, cfg)
	// The spec model's expected frame quality: 1 when powered (partial model).
	// BuildSpecModel does not model quality; mirror power into it.
	model.OnConfig(func(region, leaf string) {
		if region == "power" {
			model.SetVar("quality", map[string]float64{"on": 1}[leaf])
		}
	})
	mon, err := core.NewMonitor(k, model, tvObservables())
	if err != nil {
		t.Fatal(err)
	}
	var reports []wire.ErrorReport
	mon.OnError(func(r wire.ErrorReport) { reports = append(reports, r) })
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	mon.AttachBus(tv.Bus())
	return k, tv, mon, &reports
}

func TestFaultFreeRunRaisesNoErrors(t *testing.T) {
	k, tv, mon, reports := buildMonitoredTV(t, 1)
	tv.PressKey(tvsim.KeyPower)
	keys := []tvsim.Key{
		tvsim.KeyVolUp, tvsim.KeyVolUp, tvsim.KeyMute, tvsim.KeyChUp,
		tvsim.KeyText, tvsim.KeyMenu, tvsim.KeyBack, tvsim.KeyDual,
		tvsim.KeySwivelRight, tvsim.KeyVolDown, tvsim.KeyText, tvsim.KeyText,
	}
	for _, key := range keys {
		tv.PressKey(key)
		k.Run(k.Now() + 300*sim.Millisecond)
	}
	k.Run(k.Now() + 2*sim.Second)
	if len(*reports) != 0 {
		t.Fatalf("fault-free run produced errors: %v", *reports)
	}
	if mon.Stats().Comparisons == 0 {
		t.Fatal("monitor did not compare anything")
	}
}

func TestDetectsAudioValueCorruption(t *testing.T) {
	k, tv, _, reports := buildMonitoredTV(t, 2)
	tv.PressKey(tvsim.KeyPower)
	k.Run(sim.Second)
	tv.Injector().Schedule(faults.Fault{
		ID: "skew", Kind: faults.ValueCorruption, Target: "audio",
		At: k.Now(), Param: -15,
	})
	k.Run(k.Now() + 100*sim.Millisecond)
	tv.PressKey(tvsim.KeyVolUp) // forces a fresh (corrupted) audio event
	k.Run(k.Now() + 100*sim.Millisecond)
	tv.PressKey(tvsim.KeyVolUp)
	k.Run(k.Now() + 100*sim.Millisecond)
	found := false
	for _, r := range *reports {
		if r.Observable == "audio-volume" {
			found = true
		}
	}
	if !found {
		t.Fatalf("audio corruption not detected: %v", *reports)
	}
}

func TestDetectsTeletextSyncLossViaFreshness(t *testing.T) {
	k, tv, _, reports := buildMonitoredTV(t, 3)
	tv.PressKey(tvsim.KeyPower)
	tv.PressKey(tvsim.KeyText)
	k.Run(sim.Second)
	if len(*reports) != 0 {
		t.Fatalf("healthy teletext flagged: %v", *reports)
	}
	tv.Injector().Schedule(faults.Fault{
		ID: "sync", Kind: faults.SyncLoss, Target: "teletext",
		At: k.Now(), Duration: 2 * sim.Second,
	})
	k.Run(k.Now() + 2*sim.Second)
	found := false
	for _, r := range *reports {
		if r.Observable == "teletext-fresh" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sync loss not detected: %v", *reports)
	}
}

func TestDetectsVideoCrashViaSilence(t *testing.T) {
	k, tv, _, reports := buildMonitoredTV(t, 4)
	tv.PressKey(tvsim.KeyPower)
	k.Run(sim.Second)
	tv.Injector().Schedule(faults.Fault{
		ID: "crash", Kind: faults.TaskCrash, Target: "video", At: k.Now(),
	})
	k.Run(k.Now() + sim.Second)
	found := false
	for _, r := range *reports {
		if r.Detector == "silence" && r.Observable == "frame-quality" {
			found = true
		}
	}
	if !found {
		t.Fatalf("video crash not detected via silence: %v", *reports)
	}
}

func TestSwivelToleranceAvoidsFalsePositives(t *testing.T) {
	// The swivel takes 20ms per degree: its angle deviates from the target
	// for ~200ms after every keypress. The tolerance window must absorb it.
	k, tv, _, reports := buildMonitoredTV(t, 5)
	tv.PressKey(tvsim.KeyPower)
	for i := 0; i < 4; i++ {
		tv.PressKey(tvsim.KeySwivelRight)
		k.Run(k.Now() + 500*sim.Millisecond)
	}
	for _, r := range *reports {
		if r.Observable == "swivel-angle" {
			t.Fatalf("false positive on moving swivel: %+v", r)
		}
	}
}

func TestMonitorOverSocket(t *testing.T) {
	// Full Fig. 2 deployment: SUO side forwards bus events over a pipe; the
	// monitor serves the other end and reports errors back.
	k := sim.NewKernel(6)
	cfg := tvsim.Config{}
	tv := tvsim.New(k, cfg)

	monKernel := sim.NewKernel(7) // monitor has its own clock, driven by frames
	model := tvsim.BuildSpecModel(monKernel, cfg)
	mon, err := core.NewMonitor(monKernel, model, tvObservables())
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}

	suoEnd, monEnd := net.Pipe()
	suoConn, monConn := wire.NewConn(suoEnd), wire.NewConn(monEnd)

	serveDone := make(chan error, 1)
	go func() { serveDone <- mon.ServeConn(monConn) }()

	var gotErrors []wire.Message
	errsDone := make(chan struct{})
	go func() {
		defer close(errsDone)
		for {
			msg, err := suoConn.Decode()
			if err != nil {
				return
			}
			if msg.Type == wire.TypeError {
				gotErrors = append(gotErrors, msg)
			}
		}
	}()

	core.ForwardBus(tv.Bus(), suoConn, "tv", nil)
	tv.PressKey(tvsim.KeyPower)
	k.Run(200 * sim.Millisecond)
	// Inject an audio corruption; the remote monitor must flag it.
	tv.Injector().Schedule(faults.Fault{
		ID: "skew", Kind: faults.ValueCorruption, Target: "audio",
		At: k.Now(), Param: -20,
	})
	k.Run(k.Now() + 100*sim.Millisecond)
	tv.PressKey(tvsim.KeyVolUp)
	k.Run(k.Now() + 100*sim.Millisecond)
	tv.PressKey(tvsim.KeyVolUp)
	k.Run(k.Now() + 100*sim.Millisecond)

	suoEnd.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	<-errsDone
	found := false
	for _, m := range gotErrors {
		if m.Error != nil && m.Error.Observable == "audio-volume" {
			found = true
		}
	}
	if !found {
		t.Fatalf("remote monitor did not report audio corruption; got %v", gotErrors)
	}
}

func TestEventKindsRoundTripThroughMonitor(t *testing.T) {
	// State events over the socket are routed to the comparator path.
	k := sim.NewKernel(8)
	model := tvsim.BuildSpecModel(k, tvsim.Config{})
	mon, err := core.NewMonitor(k, model, core.Configuration{
		Observables: []core.Observable{
			{Name: "m", EventName: "mode:corrupt", ValueName: "mode", ModelVar: "nonexistent"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = mon.Start()
	var reports []wire.ErrorReport
	mon.OnError(func(r wire.ErrorReport) { reports = append(reports, r) })
	e := event.Event{Kind: event.State, Name: "mode:corrupt", Source: "x"}.With("mode", 3)
	mon.HandleOutput(e)
	if len(reports) != 1 {
		t.Fatalf("state-event comparison failed: %v", reports)
	}
}
