package core

import (
	"math"
	"testing"
	"testing/quick"

	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/wire"
)

// Property: the comparator reports an error exactly when a run of
// consecutive deviations exceeds the tolerance — for any observation
// sequence, threshold and tolerance. This pins down the Sect. 4.3 policy.
func TestPropertyComparatorPolicy(t *testing.T) {
	f := func(obsRaw []int8, thresholdRaw, tolRaw uint8) bool {
		threshold := float64(thresholdRaw % 10)
		tolerance := int(tolRaw % 5)
		k := sim.NewKernel(1)
		m, err := NewMonitor(k, tinyModel(k), Configuration{Observables: []Observable{{
			EventName: "out", ValueName: "x", ModelVar: "x",
			Threshold: threshold, Tolerance: tolerance,
		}}})
		if err != nil {
			return false
		}
		reports := 0
		m.OnError(func(wire.ErrorReport) { reports++ })
		if err := m.Start(); err != nil {
			return false
		}
		// Model expects x = 0 throughout; feed the raw sequence.
		expectedReports := 0
		streak := 0
		inError := false
		for _, o := range obsRaw {
			v := float64(o)
			m.HandleOutput(outEvent(v))
			if math.Abs(v) > threshold {
				streak++
				if streak > tolerance && !inError {
					inError = true
					expectedReports++
				}
			} else {
				streak = 0
				inError = false
			}
		}
		return reports == expectedReports
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a gated observable never reports regardless of its values.
func TestPropertyGatingSilencesAll(t *testing.T) {
	f := func(obsRaw []int8) bool {
		k := sim.NewKernel(1)
		m, err := NewMonitor(k, tinyModel(k), Configuration{Observables: []Observable{{
			EventName: "out", ValueName: "x", ModelVar: "x", EnableVar: "gate",
		}}})
		if err != nil {
			return false
		}
		reports := 0
		m.OnError(func(wire.ErrorReport) { reports++ })
		if err := m.Start(); err != nil {
			return false
		}
		// Close the gate, then feed arbitrary garbage.
		m.HandleInput(eventNamed("gate"))
		for _, o := range obsRaw {
			m.HandleOutput(outEvent(float64(o)))
		}
		return reports == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func eventNamed(name string) event.Event {
	return event.Event{Kind: event.Input, Name: name}
}
