package core

import (
	"fmt"
	"sort"
	"sync"

	"trader/internal/wire"
)

// Member is anything the group can manage: it has a start/stop lifecycle,
// reports aggregate monitor counters, and fans error reports into a
// handler. *Monitor satisfies it, and so does a fleet pool (internal/fleet)
// — which is how a Group delegates a whole sharded device fleet as one
// member alongside individual monitors.
type Member interface {
	Start() error
	Stop()
	Stats() MonitorStats
	OnError(func(wire.ErrorReport))
}

// Group coordinates several awareness monitors over one system — the
// hierarchical and incremental application the paper describes: "we can
// apply this approach hierarchically and incrementally to parts of the
// system ... Typically, there will be several awareness monitors in a
// complex system, for different components, different aspects, and
// different kinds of faults." Each member monitor has its own (partial)
// specification model and observable set; the group provides shared
// lifecycle, fan-in of error reports tagged with the reporting monitor, and
// aggregate statistics.
type Group struct {
	names   []string
	members map[string]Member
	started bool

	// handlerMu guards handlers: concurrent members (a fleet pool) report
	// from their own goroutines while OnError may still register.
	handlerMu sync.Mutex
	handlers  []func(monitor string, r wire.ErrorReport)
}

// NewGroup returns an empty monitor group.
func NewGroup() *Group {
	return &Group{members: make(map[string]Member)}
}

// Add registers a monitor under a name and routes its error reports into
// the group's handlers. Monitors must be added before Start.
func (g *Group) Add(name string, m *Monitor) error { return g.AddMember(name, m) }

// AddMember registers any Member (a single monitor, a fleet pool, ...)
// under a name and routes its error reports into the group's handlers.
func (g *Group) AddMember(name string, m Member) error {
	if g.started {
		return fmt.Errorf("core: group already started")
	}
	if _, dup := g.members[name]; dup {
		return fmt.Errorf("core: duplicate monitor %q in group", name)
	}
	g.members[name] = m
	g.names = append(g.names, name)
	m.OnError(func(r wire.ErrorReport) {
		g.handlerMu.Lock()
		hs := g.handlers
		g.handlerMu.Unlock()
		for _, h := range hs {
			h(name, r)
		}
	})
	return nil
}

// OnError registers a fan-in handler receiving every member's reports.
// Concurrent members (e.g. a fleet pool) invoke handlers from their own
// goroutines, possibly concurrently; such handlers must be safe for that
// and must not call back into the reporting member's blocking methods.
func (g *Group) OnError(fn func(monitor string, r wire.ErrorReport)) {
	g.handlerMu.Lock()
	g.handlers = append(g.handlers[:len(g.handlers):len(g.handlers)], fn)
	g.handlerMu.Unlock()
}

// Monitor returns the named member if it is a plain *Monitor, or nil.
func (g *Group) Monitor(name string) *Monitor {
	m, _ := g.members[name].(*Monitor)
	return m
}

// Member returns the named member, or nil.
func (g *Group) Member(name string) Member { return g.members[name] }

// Names returns the member names in registration order.
func (g *Group) Names() []string {
	out := make([]string, len(g.names))
	copy(out, g.names)
	return out
}

// Start starts every member. On failure, already-started members are
// stopped and the error returned.
func (g *Group) Start() error {
	if g.started {
		return fmt.Errorf("core: group already started")
	}
	var startedMembers []string
	for _, name := range g.names {
		if err := g.members[name].Start(); err != nil {
			for _, s := range startedMembers {
				g.members[s].Stop()
			}
			return fmt.Errorf("core: starting monitor %q: %w", name, err)
		}
		startedMembers = append(startedMembers, name)
	}
	g.started = true
	return nil
}

// Stop stops every member.
func (g *Group) Stop() {
	for _, name := range g.names {
		g.members[name].Stop()
	}
	g.started = false
}

// Stats aggregates the members' counters.
func (g *Group) Stats() MonitorStats {
	var agg MonitorStats
	for _, name := range g.names {
		agg.Add(g.members[name].Stats())
	}
	return agg
}

// StatsByMonitor returns per-member counters keyed by name, with names
// sorted for deterministic iteration by callers that print them.
func (g *Group) StatsByMonitor() map[string]MonitorStats {
	out := make(map[string]MonitorStats, len(g.members))
	names := append([]string(nil), g.names...)
	sort.Strings(names)
	for _, n := range names {
		out[n] = g.members[n].Stats()
	}
	return out
}
