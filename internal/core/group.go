package core

import (
	"fmt"
	"sort"

	"trader/internal/wire"
)

// Group coordinates several awareness monitors over one system — the
// hierarchical and incremental application the paper describes: "we can
// apply this approach hierarchically and incrementally to parts of the
// system ... Typically, there will be several awareness monitors in a
// complex system, for different components, different aspects, and
// different kinds of faults." Each member monitor has its own (partial)
// specification model and observable set; the group provides shared
// lifecycle, fan-in of error reports tagged with the reporting monitor, and
// aggregate statistics.
type Group struct {
	names    []string
	monitors map[string]*Monitor
	handlers []func(monitor string, r wire.ErrorReport)
	started  bool
}

// NewGroup returns an empty monitor group.
func NewGroup() *Group {
	return &Group{monitors: make(map[string]*Monitor)}
}

// Add registers a monitor under a name and routes its error reports into
// the group's handlers. Monitors must be added before Start.
func (g *Group) Add(name string, m *Monitor) error {
	if g.started {
		return fmt.Errorf("core: group already started")
	}
	if _, dup := g.monitors[name]; dup {
		return fmt.Errorf("core: duplicate monitor %q in group", name)
	}
	g.monitors[name] = m
	g.names = append(g.names, name)
	m.OnError(func(r wire.ErrorReport) {
		for _, h := range g.handlers {
			h(name, r)
		}
	})
	return nil
}

// OnError registers a fan-in handler receiving every member's reports.
func (g *Group) OnError(fn func(monitor string, r wire.ErrorReport)) {
	g.handlers = append(g.handlers, fn)
}

// Monitor returns the named member, or nil.
func (g *Group) Monitor(name string) *Monitor { return g.monitors[name] }

// Names returns the member names in registration order.
func (g *Group) Names() []string {
	out := make([]string, len(g.names))
	copy(out, g.names)
	return out
}

// Start starts every member. On failure, already-started members are
// stopped and the error returned.
func (g *Group) Start() error {
	if g.started {
		return fmt.Errorf("core: group already started")
	}
	var startedMembers []string
	for _, name := range g.names {
		if err := g.monitors[name].Start(); err != nil {
			for _, s := range startedMembers {
				g.monitors[s].Stop()
			}
			return fmt.Errorf("core: starting monitor %q: %w", name, err)
		}
		startedMembers = append(startedMembers, name)
	}
	g.started = true
	return nil
}

// Stop stops every member.
func (g *Group) Stop() {
	for _, name := range g.names {
		g.monitors[name].Stop()
	}
	g.started = false
}

// Stats aggregates the members' counters.
func (g *Group) Stats() MonitorStats {
	var agg MonitorStats
	for _, name := range g.names {
		st := g.monitors[name].Stats()
		agg.InputsSeen += st.InputsSeen
		agg.OutputsSeen += st.OutputsSeen
		agg.Comparisons += st.Comparisons
		agg.Deviations += st.Deviations
		agg.Errors += st.Errors
		agg.ModelErrors += st.ModelErrors
		agg.SilenceScans += st.SilenceScans
	}
	return agg
}

// StatsByMonitor returns per-member counters keyed by name, with names
// sorted for deterministic iteration by callers that print them.
func (g *Group) StatsByMonitor() map[string]MonitorStats {
	out := make(map[string]MonitorStats, len(g.monitors))
	names := append([]string(nil), g.names...)
	sort.Strings(names)
	for _, n := range names {
		out[n] = g.monitors[n].Stats()
	}
	return out
}
