package core

import (
	"io"

	"trader/internal/event"
	"trader/internal/wire"
)

// This file implements the process-boundary deployment of Fig. 2: the SUO
// and the awareness monitor are separate processes connected by a socket.
// The SUO side forwards its bus events as wire frames; the monitor side
// serves a connection, advancing its virtual clock to each frame's
// timestamp so timers (model "after" transitions, silence sweeps,
// time-based comparison) fire exactly as they would in-process.

// ForwardBus subscribes to a SUO event bus and forwards every input/output/
// state event over the connection. It returns the subscription so the
// caller can detach. Send errors invoke onErr (may be nil) and detach.
func ForwardBus(bus *event.Bus, conn *wire.Conn, suo string, onErr func(error)) *event.Subscription {
	var sub *event.Subscription
	sub = bus.Subscribe("", func(e event.Event) {
		if e.Kind == event.Err {
			return
		}
		if err := conn.SendEvent(suo, e); err != nil {
			if onErr != nil {
				onErr(err)
			}
			sub.Unsubscribe()
		}
	})
	return sub
}

// ServeConn reads frames from the connection until EOF, driving the monitor.
// The monitor's virtual clock is advanced to each event's timestamp before
// the event is processed. Detected errors are sent back as error frames (in
// addition to any OnError handlers). It returns nil on clean EOF.
func (m *Monitor) ServeConn(conn *wire.Conn) error {
	m.OnError(func(r wire.ErrorReport) {
		// Best-effort: a broken error channel must not stop detection.
		_ = conn.Encode(wire.Message{Type: wire.TypeError, Error: &r, At: r.At})
	})
	for {
		msg, err := conn.Decode()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch msg.Type {
		case wire.TypeInput, wire.TypeOutput, wire.TypeState:
			if msg.Event == nil {
				continue
			}
			e := *msg.Event
			if e.At > m.kernel.Now() {
				m.kernel.Run(e.At)
			}
			switch msg.Type {
			case wire.TypeInput:
				m.HandleInput(e)
			case wire.TypeOutput:
				m.HandleOutput(e)
			case wire.TypeState:
				// State events are observations too; route them through the
				// comparator like outputs (internal states may be compared).
				m.HandleOutput(e)
			}
		case wire.TypeControl:
			switch msg.Control {
			case wire.CtrlStart:
				if !m.started {
					_ = m.Start()
				}
			case wire.CtrlStop:
				m.Stop()
			}
		case wire.TypeHello, wire.TypeHeartbeat:
			// Identification/liveness only.
		}
	}
}
