package core

import (
	"strings"
	"testing"

	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/wire"
)

// tinyModel returns a model with one var "x" set by input event "set"
// (payload "v"), plus an enable flag "gate" toggled by event "gate".
func tinyModel(k *sim.Kernel) *statemachine.Model {
	r := statemachine.NewRegion("r")
	r.Add(&statemachine.State{
		Name: "s",
		Entry: func(c *statemachine.Context) {
			c.Set("x", 0)
			c.Set("gate", 1)
		},
		Transitions: []statemachine.Transition{
			{Event: "set", Action: func(c *statemachine.Context) {
				v, _ := c.Event.Get("v")
				c.Set("x", v)
			}},
			{Event: "gate", Action: func(c *statemachine.Context) {
				c.SetBool("gate", c.Get("gate") == 0)
			}},
		},
	})
	return statemachine.MustModel("tiny", k, r)
}

func newTinyMonitor(t *testing.T, cfg Configuration) (*sim.Kernel, *Monitor, *[]wire.ErrorReport) {
	t.Helper()
	k := sim.NewKernel(1)
	m, err := NewMonitor(k, tinyModel(k), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reports []wire.ErrorReport
	m.OnError(func(r wire.ErrorReport) { reports = append(reports, r) })
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	return k, m, &reports
}

func obsX(threshold float64, tolerance int) Observable {
	return Observable{
		EventName: "out", ValueName: "x", ModelVar: "x",
		Threshold: threshold, Tolerance: tolerance,
	}
}

func outEvent(v float64) event.Event {
	return event.Event{Kind: event.Output, Name: "out"}.With("x", v)
}

func setEvent(v float64) event.Event {
	return event.Event{Kind: event.Input, Name: "set"}.With("v", v)
}

func TestComparatorDetectsDeviation(t *testing.T) {
	_, m, reports := newTinyMonitor(t, Configuration{Observables: []Observable{obsX(0.5, 0)}})
	m.HandleInput(setEvent(10))
	m.HandleOutput(outEvent(10.2)) // within threshold
	if len(*reports) != 0 {
		t.Fatalf("reports = %v, want none", *reports)
	}
	m.HandleOutput(outEvent(12)) // deviation
	if len(*reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(*reports))
	}
	r := (*reports)[0]
	if r.Detector != "comparator" || r.Expected != 10 || r.Actual != 12 {
		t.Fatalf("report = %+v", r)
	}
	st := m.Stats()
	if st.Comparisons != 2 || st.Deviations != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestToleranceSuppressesTransients(t *testing.T) {
	_, m, reports := newTinyMonitor(t, Configuration{Observables: []Observable{obsX(0, 2)}})
	m.HandleInput(setEvent(5))
	// Two consecutive deviations: tolerated.
	m.HandleOutput(outEvent(9))
	m.HandleOutput(outEvent(9))
	if len(*reports) != 0 {
		t.Fatal("two deviations should be tolerated with Tolerance 2")
	}
	// Back in line: streak resets.
	m.HandleOutput(outEvent(5))
	m.HandleOutput(outEvent(9))
	m.HandleOutput(outEvent(9))
	if len(*reports) != 0 {
		t.Fatal("streak should have reset")
	}
	// Third consecutive deviation: reported.
	m.HandleOutput(outEvent(9))
	if len(*reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(*reports))
	}
	if (*reports)[0].Consecutive != 3 {
		t.Fatalf("Consecutive = %d, want 3", (*reports)[0].Consecutive)
	}
}

func TestErrorEpisodeReportedOnce(t *testing.T) {
	_, m, reports := newTinyMonitor(t, Configuration{Observables: []Observable{obsX(0, 0)}})
	m.HandleInput(setEvent(1))
	for i := 0; i < 5; i++ {
		m.HandleOutput(outEvent(3))
	}
	if len(*reports) != 1 {
		t.Fatalf("one episode must yield one report, got %d", len(*reports))
	}
	// Recovery then a new episode: a second report.
	m.HandleOutput(outEvent(1))
	m.HandleOutput(outEvent(3))
	if len(*reports) != 2 {
		t.Fatalf("new episode should report again, got %d", len(*reports))
	}
}

func TestEnableVarGatesComparison(t *testing.T) {
	cfg := Configuration{Observables: []Observable{{
		EventName: "out", ValueName: "x", ModelVar: "x", EnableVar: "gate",
	}}}
	_, m, reports := newTinyMonitor(t, cfg)
	m.HandleInput(setEvent(1))
	m.HandleInput(event.Event{Kind: event.Input, Name: "gate"}) // gate -> 0
	m.HandleOutput(outEvent(99))
	if len(*reports) != 0 {
		t.Fatal("gated observable must not be compared")
	}
	m.HandleInput(event.Event{Kind: event.Input, Name: "gate"}) // gate -> 1
	m.HandleOutput(outEvent(99))
	if len(*reports) != 1 {
		t.Fatal("ungated observable must be compared")
	}
}

func TestSilenceDetection(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := Configuration{
		Observables: []Observable{{
			EventName: "out", ValueName: "x", ModelVar: "x",
			MaxSilence: 100 * sim.Millisecond,
		}},
		SilenceCheckEvery: 10 * sim.Millisecond,
	}
	m, err := NewMonitor(k, tinyModel(k), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reports []wire.ErrorReport
	m.OnError(func(r wire.ErrorReport) { reports = append(reports, r) })
	_ = m.Start()
	// Events flow for a while...
	for i := 0; i < 5; i++ {
		k.Run(k.Now() + 50*sim.Millisecond)
		m.HandleOutput(outEvent(0))
	}
	if len(reports) != 0 {
		t.Fatalf("no silence yet: %v", reports)
	}
	// ...then stop. The sweep should fire once per gap.
	k.Run(k.Now() + 300*sim.Millisecond)
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1 silence error", len(reports))
	}
	if reports[0].Detector != "silence" || !strings.Contains(reports[0].Detail, "no out event") {
		t.Fatalf("report = %+v", reports[0])
	}
	// Traffic resumes: a later gap is a fresh episode.
	m.HandleOutput(outEvent(0))
	k.Run(k.Now() + 300*sim.Millisecond)
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
}

func TestTimeBasedCompareCatchesStaleValue(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := Configuration{
		Observables:  []Observable{obsX(0, 0)},
		CompareEvery: 20 * sim.Millisecond,
	}
	m, err := NewMonitor(k, tinyModel(k), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reports []wire.ErrorReport
	m.OnError(func(r wire.ErrorReport) { reports = append(reports, r) })
	_ = m.Start()
	m.HandleOutput(outEvent(0)) // matches model (x=0)
	// Model moves to 5, but the SUO never emits a new value: only the
	// periodic time-based comparison can catch the stale output.
	m.HandleInput(setEvent(5))
	k.Run(k.Now() + 100*sim.Millisecond)
	if len(reports) == 0 {
		t.Fatal("time-based comparison should flag the stale value")
	}
	if reports[0].Expected != 5 || reports[0].Actual != 0 {
		t.Fatalf("report = %+v", reports[0])
	}
}

func TestModelInvariantViolationReported(t *testing.T) {
	k := sim.NewKernel(1)
	model := tinyModel(k)
	model.AddInvariant("x-small", func(m *statemachine.Model) bool { return m.Var("x") < 100 })
	m, err := NewMonitor(k, model, Configuration{Observables: []Observable{obsX(0, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	var reports []wire.ErrorReport
	m.OnError(func(r wire.ErrorReport) { reports = append(reports, r) })
	_ = m.Start()
	m.HandleInput(setEvent(200))
	if len(reports) != 1 || reports[0].Detector != "model-invariant" {
		t.Fatalf("reports = %v", reports)
	}
	if m.Stats().ModelErrors != 1 {
		t.Fatal("ModelErrors not counted")
	}
}

func TestResetObservableStartsNewEpisode(t *testing.T) {
	_, m, reports := newTinyMonitor(t, Configuration{Observables: []Observable{obsX(0, 0)}})
	m.HandleInput(setEvent(1))
	m.HandleOutput(outEvent(3))
	m.HandleOutput(outEvent(3))
	if len(*reports) != 1 {
		t.Fatalf("want 1 report, got %d", len(*reports))
	}
	m.ResetObservable("out.x")
	m.HandleOutput(outEvent(3))
	if len(*reports) != 2 {
		t.Fatal("after reset, a persisting deviation is a new episode")
	}
}

func TestConfigurationValidate(t *testing.T) {
	bad := []Configuration{
		{Observables: []Observable{{EventName: "e"}}},
		{Observables: []Observable{obsX(-1, 0)}},
		{Observables: []Observable{obsX(0, 0), obsX(0, 0)}},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	k := sim.NewKernel(1)
	if _, err := NewMonitor(k, tinyModel(k), bad[0]); err == nil {
		t.Fatal("NewMonitor must reject invalid config")
	}
}

func TestMonitorLifecycle(t *testing.T) {
	_, m, reports := newTinyMonitor(t, Configuration{Observables: []Observable{obsX(0, 0)}})
	if err := m.Start(); err == nil {
		t.Fatal("double start should fail")
	}
	m.Stop()
	m.HandleInput(setEvent(1))
	m.HandleOutput(outEvent(9))
	if len(*reports) != 0 {
		t.Fatal("stopped monitor must ignore events")
	}
	if m.Stats().InputsSeen != 0 {
		t.Fatal("stopped monitor must not count")
	}
}

func TestAttachBusRouting(t *testing.T) {
	k := sim.NewKernel(1)
	m, err := NewMonitor(k, tinyModel(k), Configuration{Observables: []Observable{obsX(0, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	var reports []wire.ErrorReport
	m.OnError(func(r wire.ErrorReport) { reports = append(reports, r) })
	_ = m.Start()
	bus := event.NewBus()
	m.AttachBus(bus)
	bus.Publish(setEvent(4))
	bus.Publish(outEvent(4))
	bus.Publish(outEvent(6))
	st := m.Stats()
	if st.InputsSeen != 1 || st.OutputsSeen != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	m.Stop() // unsubscribes
	bus.Publish(outEvent(6))
	if m.Stats().OutputsSeen != 2 {
		t.Fatal("detached monitor still receiving")
	}
}

func TestObservableNames(t *testing.T) {
	_, m, _ := newTinyMonitor(t, Configuration{Observables: []Observable{
		{Name: "zz", EventName: "out", ValueName: "x", ModelVar: "x"},
		{EventName: "out", ValueName: "y", ModelVar: "x"},
	}})
	names := m.ObservableNames()
	if len(names) != 2 || names[0] != "out.y" || names[1] != "zz" {
		t.Fatalf("names = %v", names)
	}
}
