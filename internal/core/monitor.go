// Package core implements the paper's primary contribution: the model-based
// run-time awareness framework of Fig. 1 and Fig. 2. A Monitor couples a
// System Under Observation (SUO) to an executable specification model:
//
//	input events  ──► Input Observer ──► Model Executor (spec model)
//	output events ──► Output Observer ──► Comparator ◄── expected values
//	                                          │
//	                                     error reports ──► diagnosis/recovery
//
// The Comparator is deliberately "not too eager" (Sect. 4.3): each
// observable has (1) a threshold for the allowed deviation between model and
// system and (2) a maximum number of consecutive deviations tolerated before
// an error is reported. Comparison is event-based, optionally gated by the
// model (EnableVar — "specifying in the specification model when comparison
// should take place"), optionally repeated time-based (CompareEvery), and
// optionally watches for silence (MaxSilence) to catch timeliness violations
// — the real-time monitoring the paper contrasts with assertion-based
// run-time verification.
package core

import (
	"fmt"
	"math"
	"sort"

	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/wire"
)

// Observable declares one monitored quantity (Configuration component of
// Fig. 2 stores these).
type Observable struct {
	// Name identifies the observable in reports (defaults to
	// EventName.ValueName).
	Name string
	// EventName is the SUO output event carrying the value.
	EventName string
	// ValueName is the value key within the event.
	ValueName string
	// ModelVar is the specification-model variable holding the expected
	// value.
	ModelVar string
	// Threshold is the allowed absolute deviation between model and system.
	Threshold float64
	// Tolerance is the number of consecutive deviations allowed before an
	// error is reported (0 = report on the first deviation).
	Tolerance int
	// EnableVar, when non-empty, gates comparison: the observable is only
	// compared while the model variable is non-zero (event-based enabling
	// from the specification model).
	EnableVar string
	// MaxSilence, when positive, reports a timeliness error if no event
	// carrying the observable arrives for this long while enabled.
	MaxSilence sim.Time
}

func (o Observable) id() string {
	if o.Name != "" {
		return o.Name
	}
	return o.EventName + "." + o.ValueName
}

// Configuration is the set of observables (IConfigInfo in Fig. 2).
type Configuration struct {
	Observables []Observable
	// CompareEvery, when positive, additionally re-compares the last seen
	// value of every observable against the model on a fixed period
	// (time-based comparison).
	CompareEvery sim.Time
	// SilenceCheckEvery sets how often silence deadlines are swept
	// (default: 10ms of virtual time when any MaxSilence is set).
	SilenceCheckEvery sim.Time
}

// Validate reports configuration mistakes.
func (c Configuration) Validate() error {
	seen := map[string]bool{}
	for _, o := range c.Observables {
		if o.EventName == "" || o.ValueName == "" || o.ModelVar == "" {
			return fmt.Errorf("core: observable %q needs EventName, ValueName and ModelVar", o.id())
		}
		if o.Threshold < 0 || o.Tolerance < 0 {
			return fmt.Errorf("core: observable %q: negative threshold/tolerance", o.id())
		}
		if o.MaxSilence < 0 {
			return fmt.Errorf("core: observable %q: negative MaxSilence", o.id())
		}
		if seen[o.id()] {
			return fmt.Errorf("core: duplicate observable %q", o.id())
		}
		seen[o.id()] = true
	}
	return nil
}

// MonitorStats counts framework activity (used by the overhead experiment).
type MonitorStats struct {
	InputsSeen   uint64
	OutputsSeen  uint64
	Comparisons  uint64
	Deviations   uint64
	Errors       uint64
	ModelErrors  uint64 // invariant violations inside the spec model
	SilenceScans uint64
}

// Add accumulates o's counters into s (group and fleet rollups).
func (s *MonitorStats) Add(o MonitorStats) {
	s.InputsSeen += o.InputsSeen
	s.OutputsSeen += o.OutputsSeen
	s.Comparisons += o.Comparisons
	s.Deviations += o.Deviations
	s.Errors += o.Errors
	s.ModelErrors += o.ModelErrors
	s.SilenceScans += o.SilenceScans
}

// obsState is the comparator's per-observable state.
type obsState struct {
	cfg         Observable
	consecutive int
	inError     bool
	lastValue   float64
	everSeen    bool
	lastSeen    sim.Time
	silenced    bool // silence error already reported for this gap
}

// Monitor is the awareness monitor (the right-hand process of Fig. 2).
type Monitor struct {
	kernel *sim.Kernel
	model  *statemachine.Model
	cfg    Configuration

	byEvent map[string][]*obsState
	all     []*obsState

	started      bool
	modelStarted bool
	handlers     []func(wire.ErrorReport)
	stats        MonitorStats

	sweep   *sim.Repeater
	compare *sim.Repeater
	subs    []*event.Subscription
}

// NewMonitor builds a monitor around a specification model. The model must
// not be started yet; Start starts it.
func NewMonitor(kernel *sim.Kernel, model *statemachine.Model, cfg Configuration) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Monitor{
		kernel: kernel, model: model, cfg: cfg,
		byEvent: make(map[string][]*obsState),
	}
	for _, o := range cfg.Observables {
		st := &obsState{cfg: o}
		m.byEvent[o.EventName] = append(m.byEvent[o.EventName], st)
		m.all = append(m.all, st)
	}
	return m, nil
}

// OnError registers an error-report handler (IErrorNotify). Handlers run
// synchronously in detection order; recovery actions typically hook here.
func (m *Monitor) OnError(fn func(wire.ErrorReport)) { m.handlers = append(m.handlers, fn) }

// Stats returns a copy of the monitor's counters.
func (m *Monitor) Stats() MonitorStats { return m.stats }

// Model returns the specification model (ISpecInfo).
func (m *Monitor) Model() *statemachine.Model { return m.model }

// Kernel returns the virtual clock the monitor and its spec model run on.
func (m *Monitor) Kernel() *sim.Kernel { return m.kernel }

// Start starts the spec model (first call only) and arms periodic checks
// (the Controller's "initiate" action in Fig. 2). A stopped monitor can be
// resumed by calling Start again; the model keeps its state across the gap.
func (m *Monitor) Start() error {
	if m.started {
		return fmt.Errorf("core: monitor already started")
	}
	if !m.modelStarted {
		if err := m.model.Start(); err != nil {
			return err
		}
		m.modelStarted = true
	}
	m.started = true
	now := m.kernel.Now()
	for _, st := range m.all {
		st.lastSeen = now
	}
	var needSweep bool
	for _, o := range m.cfg.Observables {
		if o.MaxSilence > 0 {
			needSweep = true
		}
	}
	if needSweep {
		every := m.cfg.SilenceCheckEvery
		if every <= 0 {
			every = 10 * sim.Millisecond
		}
		m.sweep = m.kernel.Every(every, m.sweepSilence)
	}
	if m.cfg.CompareEvery > 0 {
		m.compare = m.kernel.Every(m.cfg.CompareEvery, m.timeBasedCompare)
	}
	return nil
}

// Stop halts monitoring (periodic checks stop; events are ignored).
func (m *Monitor) Stop() {
	m.started = false
	if m.sweep != nil {
		m.sweep.Stop()
		m.sweep = nil
	}
	if m.compare != nil {
		m.compare.Stop()
		m.compare = nil
	}
	for _, s := range m.subs {
		s.Unsubscribe()
	}
	m.subs = nil
}

// AttachBus subscribes the monitor's observers to a SUO's in-process event
// bus: Input-kind events go to the Input Observer, Output-kind events to the
// Output Observer.
func (m *Monitor) AttachBus(bus *event.Bus) {
	s := bus.Subscribe("", func(e event.Event) {
		switch e.Kind {
		case event.Input:
			m.HandleInput(e)
		case event.Output:
			m.HandleOutput(e)
		}
	})
	m.subs = append(m.subs, s)
}

// HandleInput is the Input Observer: it forwards a SUO input event to the
// Model Executor, which advances the specification model.
func (m *Monitor) HandleInput(e event.Event) {
	if !m.started {
		return
	}
	m.stats.InputsSeen++
	if err := m.model.Dispatch(e); err != nil {
		m.stats.ModelErrors++
		m.report(wire.ErrorReport{
			Detector: "model-invariant",
			At:       m.kernel.Now(),
			Detail:   err.Error(),
		})
	}
}

// HandleOutput is the Output Observer feeding the Comparator.
func (m *Monitor) HandleOutput(e event.Event) {
	if !m.started {
		return
	}
	m.stats.OutputsSeen++
	for _, st := range m.byEvent[e.Name] {
		v, ok := e.Get(st.cfg.ValueName)
		if !ok {
			continue
		}
		st.lastValue = v
		st.everSeen = true
		st.lastSeen = m.kernel.Now()
		st.silenced = false
		m.compareOne(st, v)
	}
}

func (m *Monitor) enabled(st *obsState) bool {
	return st.cfg.EnableVar == "" || m.model.Var(st.cfg.EnableVar) != 0
}

// compareOne applies the threshold/tolerance policy to one observation.
func (m *Monitor) compareOne(st *obsState, actual float64) {
	if !m.enabled(st) {
		st.consecutive = 0
		st.inError = false
		return
	}
	m.stats.Comparisons++
	expected := m.model.Var(st.cfg.ModelVar)
	if math.Abs(actual-expected) > st.cfg.Threshold {
		m.stats.Deviations++
		st.consecutive++
		if st.consecutive > st.cfg.Tolerance && !st.inError {
			st.inError = true
			m.stats.Errors++
			m.report(wire.ErrorReport{
				Detector:    "comparator",
				Observable:  st.cfg.id(),
				Expected:    expected,
				Actual:      actual,
				Consecutive: st.consecutive,
				At:          m.kernel.Now(),
			})
		}
		return
	}
	st.consecutive = 0
	st.inError = false
}

// timeBasedCompare re-compares the last seen value of every observable
// against the (possibly changed) model expectation.
func (m *Monitor) timeBasedCompare() {
	for _, st := range m.all {
		if !st.everSeen {
			continue
		}
		m.compareOne(st, st.lastValue)
	}
}

// sweepSilence reports observables that went quiet past their deadline.
func (m *Monitor) sweepSilence() {
	m.stats.SilenceScans++
	now := m.kernel.Now()
	for _, st := range m.all {
		if st.cfg.MaxSilence <= 0 || st.silenced {
			continue
		}
		if !m.enabled(st) {
			st.lastSeen = now // gated: the clock restarts when re-enabled
			continue
		}
		if now-st.lastSeen > st.cfg.MaxSilence {
			st.silenced = true
			m.stats.Errors++
			m.report(wire.ErrorReport{
				Detector:   "silence",
				Observable: st.cfg.id(),
				Expected:   m.model.Var(st.cfg.ModelVar),
				At:         now,
				Detail: fmt.Sprintf("no %s event for %s (max %s)",
					st.cfg.EventName, now-st.lastSeen, st.cfg.MaxSilence),
			})
		}
	}
}

func (m *Monitor) report(r wire.ErrorReport) {
	for _, h := range m.handlers {
		h(r)
	}
}

// Reset clears deviation state for every observable at once: consecutive
// counters, latched error episodes and silence flags all re-arm, so the next
// deviation opens a fresh episode and is reported anew. The recovery control
// plane calls it after each escalation action — without the re-arm, a
// persistently failing device would report once and then sit silently behind
// its latched episode, starving the escalation ladder of evidence.
func (m *Monitor) Reset() {
	now := m.kernel.Now()
	for _, st := range m.all {
		st.consecutive = 0
		st.inError = false
		st.silenced = false
		st.lastSeen = now
	}
}

// ResetObservable clears deviation state for the named observable (used by
// recovery once the SUO is repaired, so a fresh episode is reported anew).
func (m *Monitor) ResetObservable(name string) {
	for _, st := range m.all {
		if st.cfg.id() == name {
			st.consecutive = 0
			st.inError = false
			st.silenced = false
			st.lastSeen = m.kernel.Now()
		}
	}
}

// ObservableNames lists configured observables, sorted.
func (m *Monitor) ObservableNames() []string {
	out := make([]string, 0, len(m.all))
	for _, st := range m.all {
		out = append(out, st.cfg.id())
	}
	sort.Strings(out)
	return out
}
