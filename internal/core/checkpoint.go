package core

import (
	"fmt"
	"sort"
	"strings"

	"trader/internal/wire"
)

// Checkpoint capture/restore for the monitor. CaptureInto flattens the
// comparator state, the activity counters and the spec-model configuration
// into a wire.Checkpoint record; RestoreFrom plays one back into a freshly
// built (and started) monitor. The journal's checkpoint records use this to
// resume replay from a snapshot instead of the beginning of the log.
//
// Encoding conventions inside the record:
//   - Counters carry MonitorStats by field name (fixed order, see statOrder).
//   - Vars carry the spec model's variable scope.
//   - States carry "r:<region>" → current leaf and "h:<region>/<parent>" →
//     last-active child (shallow history), both sorted for determinism.
//   - Obs carry per-observable comparator state keyed by Observable.id().

// statOrder fixes the Counters layout so records are byte-stable across runs.
var statOrder = [...]string{
	"InputsSeen", "OutputsSeen", "Comparisons", "Deviations",
	"Errors", "ModelErrors", "SilenceScans",
}

// CaptureInto appends the monitor's state to cp. The caller owns plane,
// shard, seq and At; CaptureInto only fills counters, vars, states and
// observables. The monitor must be driven from the kernel goroutine (the
// usual shard-worker discipline); CaptureInto takes no locks.
func (m *Monitor) CaptureInto(cp *wire.Checkpoint) {
	s := m.stats
	for _, name := range statOrder {
		var v uint64
		switch name {
		case "InputsSeen":
			v = s.InputsSeen
		case "OutputsSeen":
			v = s.OutputsSeen
		case "Comparisons":
			v = s.Comparisons
		case "Deviations":
			v = s.Deviations
		case "Errors":
			v = s.Errors
		case "ModelErrors":
			v = s.ModelErrors
		case "SilenceScans":
			v = s.SilenceScans
		}
		cp.Counters = append(cp.Counters, wire.CheckpointCounter{Name: name, V: v})
	}
	for _, st := range m.all {
		cp.Obs = append(cp.Obs, wire.CheckpointObs{
			Name:        st.cfg.id(),
			Consecutive: st.consecutive,
			InError:     st.inError,
			EverSeen:    st.everSeen,
			Silenced:    st.silenced,
			LastValue:   st.lastValue,
			LastSeen:    st.lastSeen,
		})
	}
	snap := m.model.CaptureState()
	vars := make([]string, 0, len(snap.Vars))
	for n := range snap.Vars {
		vars = append(vars, n)
	}
	sort.Strings(vars)
	for _, n := range vars {
		cp.Vars = append(cp.Vars, wire.CheckpointVar{Name: n, V: snap.Vars[n]})
	}
	regs := make([]string, 0, len(snap.Current))
	for r := range snap.Current {
		regs = append(regs, r)
	}
	sort.Strings(regs)
	for _, r := range regs {
		cp.States = append(cp.States, wire.CheckpointState{Name: "r:" + r, V: snap.Current[r]})
		parents := make([]string, 0, len(snap.History[r]))
		for p := range snap.History[r] {
			parents = append(parents, p)
		}
		sort.Strings(parents)
		for _, p := range parents {
			cp.States = append(cp.States, wire.CheckpointState{
				Name: "h:" + r + "/" + p, V: snap.History[r][p],
			})
		}
	}
}

// RestoreFrom places a started monitor at the state cp captured: counters,
// per-observable comparator state, and the spec model's configuration,
// history and variables. Restore is absolute (assignment, not accumulation),
// so replaying records that precede the checkpoint and then restoring again
// converges to the same state. Timed model transitions are restored only up
// to the uniform re-anchoring the kernel's Jump provides; see
// statemachine.(*Model).RestoreState.
func (m *Monitor) RestoreFrom(cp *wire.Checkpoint) error {
	if !m.modelStarted {
		return fmt.Errorf("core: RestoreFrom requires a started monitor")
	}
	for _, c := range cp.Counters {
		switch c.Name {
		case "InputsSeen":
			m.stats.InputsSeen = c.V
		case "OutputsSeen":
			m.stats.OutputsSeen = c.V
		case "Comparisons":
			m.stats.Comparisons = c.V
		case "Deviations":
			m.stats.Deviations = c.V
		case "Errors":
			m.stats.Errors = c.V
		case "ModelErrors":
			m.stats.ModelErrors = c.V
		case "SilenceScans":
			m.stats.SilenceScans = c.V
		}
	}
	byID := make(map[string]*obsState, len(m.all))
	for _, st := range m.all {
		byID[st.cfg.id()] = st
	}
	for _, o := range cp.Obs {
		st, ok := byID[o.Name]
		if !ok {
			return fmt.Errorf("core: checkpoint observable %q not configured", o.Name)
		}
		st.consecutive = o.Consecutive
		st.inError = o.InError
		st.everSeen = o.EverSeen
		st.silenced = o.Silenced
		st.lastValue = o.LastValue
		st.lastSeen = o.LastSeen
	}
	// Seed the snapshot from the model's current state so regions absent
	// from the record keep their post-Start defaults, then overwrite from
	// the checkpoint. History and variables were captured in full, so both
	// are rebuilt wholesale.
	snap := m.model.CaptureState()
	for r := range snap.History {
		snap.History[r] = map[string]string{}
	}
	snap.Vars = make(map[string]float64, len(cp.Vars))
	for _, v := range cp.Vars {
		snap.Vars[v.Name] = v.V
	}
	for _, st := range cp.States {
		switch {
		case strings.HasPrefix(st.Name, "r:"):
			reg := st.Name[len("r:"):]
			if _, ok := snap.Current[reg]; !ok {
				return fmt.Errorf("core: checkpoint region %q not in model", reg)
			}
			snap.Current[reg] = st.V
		case strings.HasPrefix(st.Name, "h:"):
			rest := st.Name[len("h:"):]
			i := strings.IndexByte(rest, '/')
			if i < 0 {
				return fmt.Errorf("core: malformed checkpoint history key %q", st.Name)
			}
			reg, parent := rest[:i], rest[i+1:]
			h, ok := snap.History[reg]
			if !ok {
				return fmt.Errorf("core: checkpoint region %q not in model", reg)
			}
			h[parent] = st.V
		default:
			return fmt.Errorf("core: unknown checkpoint state key %q", st.Name)
		}
	}
	m.model.RestoreState(snap)
	return nil
}
