package core_test

import (
	"strings"
	"testing"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/wire"
)

// echoMonitor builds a minimal started monitor whose model holds variable
// "x"; feeding Output events named "out" with value key "x" drives the
// comparator directly.
func echoMonitor(t *testing.T, threshold float64, tolerance int) (*sim.Kernel, *core.Monitor) {
	t.Helper()
	k := sim.NewKernel(1)
	r := statemachine.NewRegion("r")
	r.Add(&statemachine.State{Name: "s", Entry: func(c *statemachine.Context) { c.Set("x", 0) }})
	model := statemachine.MustModel("m", k, r)
	mon, err := core.NewMonitor(k, model, core.Configuration{Observables: []core.Observable{
		{EventName: "out", ValueName: "x", ModelVar: "x", Threshold: threshold, Tolerance: tolerance},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	return k, mon
}

func out(v float64) event.Event {
	return event.Event{Kind: event.Output, Name: "out"}.With("x", v)
}

func TestGroupStatsAggregation(t *testing.T) {
	// Each case feeds a per-monitor schedule of observations (model expects
	// 0 everywhere) and checks Stats is the exact sum of member counters
	// and StatsByMonitor carries the per-member split.
	cases := []struct {
		name  string
		feeds map[string][]float64 // monitor name -> observed values
		// per-monitor expectations (threshold 0.5, tolerance 0)
		wantOutputs map[string]uint64
		wantErrors  map[string]uint64
	}{
		{
			name:        "empty group",
			feeds:       map[string][]float64{},
			wantOutputs: map[string]uint64{},
			wantErrors:  map[string]uint64{},
		},
		{
			name:        "single clean member",
			feeds:       map[string][]float64{"a": {0, 0.2, 0.4}},
			wantOutputs: map[string]uint64{"a": 3},
			wantErrors:  map[string]uint64{"a": 0},
		},
		{
			name:        "deviating member counted once per episode",
			feeds:       map[string][]float64{"a": {0, 2, 2}, "b": {0.1}},
			wantOutputs: map[string]uint64{"a": 3, "b": 1},
			wantErrors:  map[string]uint64{"a": 1, "b": 0},
		},
		{
			name:        "three members mixed",
			feeds:       map[string][]float64{"a": {9}, "b": {9}, "c": {0, 0}},
			wantOutputs: map[string]uint64{"a": 1, "b": 1, "c": 2},
			wantErrors:  map[string]uint64{"a": 1, "b": 1, "c": 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := core.NewGroup()
			mons := map[string]*core.Monitor{}
			for name := range tc.feeds {
				_, mon := echoMonitor(t, 0.5, 0)
				mons[name] = mon
				if err := g.Add(name, mon); err != nil {
					t.Fatal(err)
				}
			}
			var reports int
			g.OnError(func(string, wire.ErrorReport) { reports++ })
			for name, values := range tc.feeds {
				for _, v := range values {
					mons[name].HandleOutput(out(v))
				}
			}
			agg := g.Stats()
			per := g.StatsByMonitor()
			if len(per) != len(tc.feeds) {
				t.Fatalf("StatsByMonitor has %d entries, want %d", len(per), len(tc.feeds))
			}
			var sum core.MonitorStats
			for name, st := range per {
				sum.Add(st)
				if st.OutputsSeen != tc.wantOutputs[name] {
					t.Errorf("%s: OutputsSeen = %d, want %d", name, st.OutputsSeen, tc.wantOutputs[name])
				}
				if st.Errors != tc.wantErrors[name] {
					t.Errorf("%s: Errors = %d, want %d", name, st.Errors, tc.wantErrors[name])
				}
			}
			if sum != agg {
				t.Fatalf("Stats() = %+v, want sum of members %+v", agg, sum)
			}
			var wantReports uint64
			for _, e := range tc.wantErrors {
				wantReports += e
			}
			if uint64(reports) != wantReports {
				t.Fatalf("fan-in saw %d reports, want %d", reports, wantReports)
			}
		})
	}
}

func TestGroupMemberDelegation(t *testing.T) {
	// Any core.Member can join a group; the group tags its reports.
	g := core.NewGroup()
	m := &fakeMember{}
	if err := g.AddMember("fleet", m); err != nil {
		t.Fatal(err)
	}
	var tagged string
	g.OnError(func(name string, r wire.ErrorReport) { tagged = name + "/" + r.Detector })
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if !m.started {
		t.Fatal("member not started by group")
	}
	m.emit(wire.ErrorReport{Detector: "comparator"})
	if tagged != "fleet/comparator" {
		t.Fatalf("tagged report = %q", tagged)
	}
	if got := g.Stats().Comparisons; got != 7 {
		t.Fatalf("delegated stats = %d, want 7", got)
	}
	if g.Member("fleet") != m {
		t.Fatal("Member lookup failed")
	}
	if g.Monitor("fleet") != nil {
		t.Fatal("Monitor should be nil for a non-monitor member")
	}
	g.Stop()
	if m.started {
		t.Fatal("member not stopped by group")
	}
}

type fakeMember struct {
	started  bool
	handlers []func(wire.ErrorReport)
}

func (m *fakeMember) Start() error { m.started = true; return nil }
func (m *fakeMember) Stop()        { m.started = false }
func (m *fakeMember) Stats() core.MonitorStats {
	return core.MonitorStats{Comparisons: 7}
}
func (m *fakeMember) OnError(fn func(wire.ErrorReport)) { m.handlers = append(m.handlers, fn) }
func (m *fakeMember) emit(r wire.ErrorReport) {
	for _, h := range m.handlers {
		h(r)
	}
}

func TestConfigurationValidateTable(t *testing.T) {
	valid := core.Observable{EventName: "out", ValueName: "x", ModelVar: "x"}
	cases := []struct {
		name    string
		cfg     core.Configuration
		wantErr string // substring; empty means valid
	}{
		{name: "empty observables is vacuous but valid",
			cfg: core.Configuration{}},
		{name: "zero threshold means exact match and is valid",
			cfg: core.Configuration{Observables: []core.Observable{valid}}},
		{name: "missing EventName",
			cfg:     core.Configuration{Observables: []core.Observable{{ValueName: "x", ModelVar: "x"}}},
			wantErr: "needs EventName"},
		{name: "missing ValueName",
			cfg:     core.Configuration{Observables: []core.Observable{{EventName: "out", ModelVar: "x"}}},
			wantErr: "needs EventName"},
		{name: "missing ModelVar",
			cfg:     core.Configuration{Observables: []core.Observable{{EventName: "out", ValueName: "x"}}},
			wantErr: "needs EventName"},
		{name: "negative threshold",
			cfg: core.Configuration{Observables: []core.Observable{
				{EventName: "out", ValueName: "x", ModelVar: "x", Threshold: -1}}},
			wantErr: "negative threshold"},
		{name: "negative tolerance",
			cfg: core.Configuration{Observables: []core.Observable{
				{EventName: "out", ValueName: "x", ModelVar: "x", Tolerance: -2}}},
			wantErr: "negative threshold"},
		{name: "negative MaxSilence",
			cfg: core.Configuration{Observables: []core.Observable{
				{EventName: "out", ValueName: "x", ModelVar: "x", MaxSilence: -sim.Second}}},
			wantErr: "negative MaxSilence"},
		{name: "duplicate derived ids",
			cfg:     core.Configuration{Observables: []core.Observable{valid, valid}},
			wantErr: "duplicate observable"},
		{name: "explicit Name disambiguates duplicates",
			cfg: core.Configuration{Observables: []core.Observable{
				valid,
				{Name: "x2", EventName: "out", ValueName: "x", ModelVar: "x"}}}},
		{name: "duplicate explicit Names rejected",
			cfg: core.Configuration{Observables: []core.Observable{
				{Name: "n", EventName: "out", ValueName: "x", ModelVar: "x"},
				{Name: "n", EventName: "out2", ValueName: "y", ModelVar: "y"}}},
			wantErr: "duplicate observable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}
