package core

import (
	"net"
	"testing"

	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/wire"
)

// TestRemoteControlCommands exercises the IControl arrow of Fig. 2 over the
// wire: the SUO side can stop and restart monitoring with control frames.
func TestRemoteControlCommands(t *testing.T) {
	k := sim.NewKernel(1)
	m, err := NewMonitor(k, tinyModel(k), Configuration{Observables: []Observable{obsX(0, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	suo, monEnd := wire.NewConn(a), wire.NewConn(b)
	done := make(chan error, 1)
	go func() { done <- m.ServeConn(monEnd) }()

	send := func(msg wire.Message) {
		t.Helper()
		if err := suo.Encode(msg); err != nil {
			t.Fatal(err)
		}
	}
	ev := event.Event{Kind: event.Output, Name: "out", At: 1}.With("x", 0)
	send(wire.Message{Type: wire.TypeHello, SUO: "t"})
	send(wire.Message{Type: wire.TypeOutput, Event: &ev})
	send(wire.Message{Type: wire.TypeControl, Control: wire.CtrlStop})
	ev2 := ev
	ev2.At = 2
	send(wire.Message{Type: wire.TypeOutput, Event: &ev2})
	send(wire.Message{Type: wire.TypeControl, Control: wire.CtrlStart})
	// Monitoring resumes: the model kept its state across the stop/start.
	ev3 := ev
	ev3.At = 3
	send(wire.Message{Type: wire.TypeOutput, Event: &ev3})
	send(wire.Message{Type: wire.TypeHeartbeat})
	a.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	// Events 1 and 3 observed; event 2 arrived while stopped.
	if st.OutputsSeen != 2 {
		t.Fatalf("OutputsSeen = %d, want 2 (stop/start cycle)", st.OutputsSeen)
	}
}

// TestMonitorResumeInProcess: the same stop/resume contract via the API.
func TestMonitorResumeInProcess(t *testing.T) {
	_, m, reports := newTinyMonitor(t, Configuration{Observables: []Observable{obsX(0, 0)}})
	m.HandleInput(setEvent(5))
	m.Stop()
	m.HandleOutput(outEvent(9)) // ignored while stopped
	if err := m.Start(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	m.HandleOutput(outEvent(9)) // model still expects 5 → error
	if len(*reports) != 1 {
		t.Fatalf("reports = %d, want 1 after resume", len(*reports))
	}
	if (*reports)[0].Expected != 5 {
		t.Fatal("model state lost across stop/start")
	}
}
