package spectrum

import (
	"math/rand"
	"testing"
)

// randomRun fills a Matrix and a set of Spectra (at several stripe counts)
// with the same random transactions and returns them.
func randomRun(t *testing.T, blocks, txns int, seed int64, stripes []int) (*Matrix, []*Spectra) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(blocks)
	specs := make([]*Spectra, len(stripes))
	for i, n := range stripes {
		specs[i] = NewSpectra(blocks, n)
	}
	for i := 0; i < txns; i++ {
		hits := NewBitSet(blocks)
		for b := 0; b < blocks; b++ {
			if rng.Float64() < 0.2 {
				hits.Set(b)
			}
		}
		failed := rng.Float64() < 0.3
		m.AddTransaction(hits, failed)
		for _, s := range specs {
			s.Fold(hits, failed)
		}
	}
	return m, specs
}

// Folding into counters must agree with the row-retaining Matrix on every
// block's SFL counts, at any stripe count (including capacities that do not
// fall on word boundaries).
func TestSpectraMatchesMatrix(t *testing.T) {
	const blocks, txns = 301, 40
	m, specs := randomRun(t, blocks, txns, 7, []int{1, 3, 8})
	for _, s := range specs {
		if s.Transactions() != m.Transactions() || s.Failures() != m.Failures() {
			t.Fatalf("totals: spectra %d/%d, matrix %d/%d",
				s.Transactions(), s.Failures(), m.Transactions(), m.Failures())
		}
		for b := 0; b < blocks; b++ {
			if got, want := s.CountsFor(b), m.CountsFor(b); got != want {
				t.Fatalf("stripes=%d block %d: counts %+v, want %+v", s.Stripes(), b, got, want)
			}
		}
	}
}

// The parallel TopN must equal the head of the Matrix's full ranking, and
// must be identical across stripe counts — rankings are a pure function of
// the folded counters.
func TestSpectraTopNDeterministic(t *testing.T) {
	const blocks, txns, n = 301, 40, 25
	m, specs := randomRun(t, blocks, txns, 11, []int{1, 3, 8})
	want := m.Rank(Ochiai)[:n]
	for _, s := range specs {
		got := s.TopN(Ochiai, n)
		if len(got) != n {
			t.Fatalf("stripes=%d: TopN returned %d entries", s.Stripes(), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stripes=%d entry %d: %+v, want %+v", s.Stripes(), i, got[i], want[i])
			}
		}
	}
}

// Fold order must not matter: evidence arriving in any interleaving yields
// the same counters, ranking and rank-of — the property journal replay
// relies on for byte-identical reconstruction.
func TestSpectraFoldOrderIndependent(t *testing.T) {
	const blocks, txns = 200, 30
	rng := rand.New(rand.NewSource(3))
	type row struct {
		words  []uint64
		failed bool
	}
	rows := make([]row, txns)
	for i := range rows {
		hits := NewBitSet(blocks)
		for b := 0; b < blocks; b++ {
			if rng.Float64() < 0.3 {
				hits.Set(b)
			}
		}
		rows[i] = row{words: hits.Words(), failed: i%4 == 0}
	}
	fwd, rev := NewSpectra(blocks, 4), NewSpectra(blocks, 4)
	for i := range rows {
		fwd.FoldWords(rows[i].words, rows[i].failed)
		r := rows[len(rows)-1-i]
		rev.FoldWords(r.words, r.failed)
	}
	a, b := fwd.TopN(Ochiai, blocks), rev.TopN(Ochiai, blocks)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs by fold order: %+v vs %+v", i, a[i], b[i])
		}
	}
	fr, ft := fwd.RankOf(5, Ochiai)
	rr, rt := rev.RankOf(5, Ochiai)
	if fr != rr || ft != rt {
		t.Fatalf("RankOf differs by fold order: %d/%d vs %d/%d", fr, ft, rr, rt)
	}
}

// Hostile window shapes must be absorbed: short word slices fold as
// zero-padded, and bits beyond the block capacity are ignored rather than
// corrupting counters.
func TestSpectraFoldWordsBounds(t *testing.T) {
	s := NewSpectra(70, 2) // 70 blocks → 2 words, capacity padding in word 1
	s.FoldWords([]uint64{1}, true)
	if got := s.CountsFor(0); got.Aef != 1 {
		t.Fatalf("short window: counts %+v", got)
	}
	if got := s.CountsFor(69); got.Aef != 0 || got.Anf != 1 {
		t.Fatalf("short window block 69: counts %+v", got)
	}
	// All-ones words: bits 70..127 are beyond capacity and must be dropped.
	s.FoldWords([]uint64{^uint64(0), ^uint64(0), ^uint64(0)}, false)
	if got := s.CountsFor(69); got.Aep != 1 {
		t.Fatalf("padded window: counts %+v", got)
	}
}

func TestCoefficientByName(t *testing.T) {
	for _, c := range AllCoefficients() {
		got, ok := CoefficientByName(c.Name)
		if !ok || got.Name != c.Name {
			t.Fatalf("CoefficientByName(%q) = %q, %v", c.Name, got.Name, ok)
		}
	}
	if _, ok := CoefficientByName("no-such-coefficient"); ok {
		t.Fatal("unknown name resolved")
	}
}
