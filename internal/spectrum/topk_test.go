package spectrum

import (
	"math/rand"
	"testing"
)

// randomWindows builds a deterministic transaction workload shaped like the
// synthetic TV program: a hot common core, a faulty region correlated with
// failures, and sparse background noise — enough structure that the top-K
// boundary lands inside large tie groups, the hard case for certification.
func randomWindows(blocks, txns int, seed int64) []struct {
	words  []uint64
	failed bool
} {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]struct {
		words  []uint64
		failed bool
	}, txns)
	for i := range rows {
		hits := NewBitSet(blocks)
		for b := 0; b < blocks/10; b++ {
			hits.Set(b) // common core: identical counters, giant tie group
		}
		failed := rng.Float64() < 0.3
		if failed {
			for b := blocks / 2; b < blocks/2+5; b++ {
				if rng.Float64() < 0.8 {
					hits.Set(b)
				}
			}
		}
		for b := 0; b < blocks; b++ {
			if rng.Float64() < 0.05 {
				hits.Set(b)
			}
		}
		rows[i].words = hits.Words()
		rows[i].failed = failed
	}
	return rows
}

// The incremental Top must equal TopN exactly — block for block, score for
// score — after every fold, across fold-order permutations, stripe counts
// and k values. This is the differential property the continuous diagnosis
// plane rests on.
func TestTopMatchesTopNDifferential(t *testing.T) {
	const blocks, txns = 513, 60
	rows := randomWindows(blocks, txns, 42)
	rng := rand.New(rand.NewSource(99))
	for _, stripes := range []int{1, 3, 8} {
		for _, k := range []int{1, 5, 10, 40} {
			for perm := 0; perm < 4; perm++ {
				order := rng.Perm(len(rows))
				s := NewSpectra(blocks, stripes)
				s.TrackTop(k)
				for _, i := range order {
					s.FoldWords(rows[i].words, rows[i].failed)
					got, want := s.Top(Ochiai), s.TopN(Ochiai, k)
					if len(got) != len(want) {
						t.Fatalf("stripes=%d k=%d: Top len %d, TopN len %d", stripes, k, len(got), len(want))
					}
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("stripes=%d k=%d after fold %d, entry %d: Top %+v, TopN %+v",
								stripes, k, i, j, got[j], want[j])
						}
					}
				}
			}
		}
	}
}

// Enabling tracking mid-history (rebuild from live counters) and after an
// Import must converge to the same ranking as a fresh scan.
func TestTopAfterRebuildAndImport(t *testing.T) {
	const blocks, k = 301, 10
	rows := randomWindows(blocks, 50, 7)
	s := NewSpectra(blocks, 4)
	for _, r := range rows[:30] {
		s.FoldWords(r.words, r.failed)
	}
	s.TrackTop(k) // mid-history enable: rebuild path
	for _, r := range rows[30:] {
		s.FoldWords(r.words, r.failed)
	}
	want := s.TopN(Ochiai, k)
	if got := s.Top(Ochiai); len(got) != len(want) {
		t.Fatalf("Top len %d, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("entry %d: %+v, want %+v", i, got[i], want[i])
			}
		}
	}
	// Round-trip through Export/Import: the tracker must notice the wholesale
	// counter rewrite and still match.
	cells, nf, np := s.Export()
	s2 := NewSpectra(blocks, 4)
	s2.TrackTop(k)
	for _, r := range rows[:10] {
		s2.FoldWords(r.words, r.failed) // stale state the import overwrites
	}
	if err := s2.Import(cells, nf, np); err != nil {
		t.Fatalf("Import: %v", err)
	}
	got := s2.Top(Ochiai)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-import entry %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Non-Ochiai coefficients have no incremental certificate; Top must degrade
// to an exact full scan, never a wrong ranking.
func TestTopNonOchiaiFallsBack(t *testing.T) {
	const blocks, k = 200, 8
	s := NewSpectra(blocks, 3)
	s.TrackTop(k)
	for _, r := range randomWindows(blocks, 40, 3) {
		s.FoldWords(r.words, r.failed)
	}
	for _, c := range []Coefficient{Tarantula, DStar, Op2} {
		got, want := s.Top(c), s.TopN(c, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s entry %d: %+v, want %+v", c.Name, i, got[i], want[i])
			}
		}
	}
	if got := NewSpectra(blocks, 3).Top(Ochiai); got != nil {
		t.Fatalf("Top without TrackTop = %v, want nil", got)
	}
}

// FoldSparse must agree with FoldWords fed the equivalent dense window, must
// keep the tracker exact, and must ignore out-of-range word indices.
func TestFoldSparseMatchesFoldWords(t *testing.T) {
	const blocks, k = 513, 10
	rows := randomWindows(blocks, 40, 21)
	dense, sparse := NewSpectra(blocks, 4), NewSpectra(blocks, 4)
	sparse.TrackTop(k)
	for _, r := range rows {
		dense.FoldWords(r.words, r.failed)
		var idx []uint32
		var words []uint64
		for w, word := range r.words {
			if word != 0 {
				idx = append(idx, uint32(w))
				words = append(words, word)
			}
		}
		sparse.FoldSparse(idx, words, r.failed)
	}
	for b := 0; b < blocks; b++ {
		if dense.CountsFor(b) != sparse.CountsFor(b) {
			t.Fatalf("block %d: dense %+v, sparse %+v", b, dense.CountsFor(b), sparse.CountsFor(b))
		}
	}
	want := dense.TopN(Ochiai, k)
	got := sparse.Top(Ochiai)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// Hostile shapes: an out-of-range word index and a truncated words slice
	// must fold nothing and panic nothing.
	before := sparse.Transactions()
	sparse.FoldSparse([]uint32{9999}, []uint64{^uint64(0)}, true)
	sparse.FoldSparse([]uint32{0, 1}, []uint64{1}, false)
	if sparse.Transactions() != before+2 {
		t.Fatalf("hostile folds: transactions %d, want %d", sparse.Transactions(), before+2)
	}
	if got := sparse.CountsFor(64); got.Aep != dense.CountsFor(64).Aep {
		t.Fatalf("truncated pair list folded word 1: %+v", got)
	}
}

// Import must refuse an export whose cells exceed the receiver's capacity —
// a mismatched program layout — leaving the accumulator untouched, and must
// accept a matching one absolutely (twice converges).
func TestImportValidatesCapacity(t *testing.T) {
	src := NewSpectra(300, 2)
	for _, r := range randomWindows(300, 20, 5) {
		src.FoldWords(r.words, r.failed)
	}
	cells, nf, np := src.Export()

	dst := NewSpectra(300, 3)
	if err := dst.Import(cells, nf, np); err != nil {
		t.Fatalf("matching import: %v", err)
	}
	if err := dst.Import(cells, nf, np); err != nil {
		t.Fatalf("repeated import: %v", err)
	}
	for b := 0; b < 300; b++ {
		if dst.CountsFor(b) != src.CountsFor(b) {
			t.Fatalf("block %d: %+v, want %+v", b, dst.CountsFor(b), src.CountsFor(b))
		}
	}

	small := NewSpectra(100, 2)
	if err := small.Import(cells, nf, np); err == nil {
		t.Fatal("mismatched import accepted")
	}
	if small.Transactions() != 0 {
		t.Fatalf("failed import mutated totals: %d transactions", small.Transactions())
	}
	for b := 0; b < 100; b++ {
		if c := small.CountsFor(b); c.Aef != 0 || c.Aep != 0 {
			t.Fatalf("failed import mutated block %d: %+v", b, c)
		}
	}
}
