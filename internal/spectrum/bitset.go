package spectrum

// BitSet is a fixed-capacity bit vector used for block-hit spectra. With
// 60 000 blocks per transaction (the paper's case study), a packed
// representation keeps a full scenario's spectra small and fast to scan.
type BitSet struct {
	n     int
	words []uint64
}

// NewBitSet returns a bitset holding n bits, all clear.
func NewBitSet(n int) *BitSet {
	if n < 0 {
		n = 0
	}
	return &BitSet{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the capacity in bits.
func (b *BitSet) Len() int { return b.n }

// Set sets bit i. Out-of-range indices panic (spectra are fixed-size).
func (b *BitSet) Set(i int) {
	if i < 0 || i >= b.n {
		panic("spectrum: bit index out of range")
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Get reports bit i.
func (b *BitSet) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic("spectrum: bit index out of range")
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *BitSet) Count() int {
	total := 0
	for _, w := range b.words {
		total += popcount(w)
	}
	return total
}

// Clone copies the bitset.
func (b *BitSet) Clone() *BitSet {
	c := &BitSet{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// Or unions o into b. Both bitsets must have the same capacity.
func (b *BitSet) Or(o *BitSet) {
	if b.n != o.n {
		panic("spectrum: or of bitsets with different capacities")
	}
	for w := range b.words {
		b.words[w] |= o.words[w]
	}
}

// Clear resets every bit.
func (b *BitSet) Clear() {
	for w := range b.words {
		b.words[w] = 0
	}
}

// Words returns a copy of the packed 64-bit words (bit i of the set lives in
// word i/64, bit i%64). This is the spectrum's wire representation: a
// device's coverage window travels as its packed words and is folded back
// into a fleet Spectra with FoldWords.
func (b *BitSet) Words() []uint64 {
	out := make([]uint64, len(b.words))
	copy(out, b.words)
	return out
}

// Sparse returns the set's nonzero packed words as parallel slices of word
// indices and word values, ascending — the compact wire representation of a
// mostly-empty coverage window (wire.SpectrumDelta), folded back with
// FoldSparse. An all-clear set yields two nil slices.
func (b *BitSet) Sparse() (index []uint32, words []uint64) {
	for w, word := range b.words {
		if word != 0 {
			index = append(index, uint32(w))
			words = append(words, word)
		}
	}
	return index, words
}

func popcount(x uint64) int {
	// Hacker's Delight bit-twiddling popcount.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}
