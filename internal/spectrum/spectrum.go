// Package spectrum implements spectrum-based fault localization, the
// diagnosis technique of the paper's Sect. 4.4 (after Zoeteweij et al.,
// "Diagnosis of embedded software using program spectra"):
//
//  1. the program is instrumented to record which code blocks execute,
//  2. a scenario (sequence of key presses) yields one block-hit spectrum
//     per transaction (the execution between two key presses),
//  3. an error detector marks each transaction pass/fail (the error vector),
//  4. blocks are ranked by the similarity between their hit vector and the
//     error vector; the most similar block is the best fault candidate.
//
// The paper's experiment: 60 000 blocks, a 27-key-press scenario executing
// 13 796 blocks, an injected teletext fault — and "the block which contains
// the fault appeared on the first place in the ranking". The synthetic
// program model in synthetic.go regenerates that experiment shape.
package spectrum

import (
	"fmt"
	"math"
	"sort"
)

// Matrix accumulates one spectrum per transaction plus the error vector.
type Matrix struct {
	blocks int
	rows   []row
}

type row struct {
	hits   *BitSet
	failed bool
}

// NewMatrix creates a matrix for a program with the given block count.
func NewMatrix(blocks int) *Matrix {
	if blocks <= 0 {
		panic("spectrum: block count must be positive")
	}
	return &Matrix{blocks: blocks}
}

// Blocks returns the instrumented block count.
func (m *Matrix) Blocks() int { return m.blocks }

// Transactions returns the number of recorded transactions.
func (m *Matrix) Transactions() int { return len(m.rows) }

// Failures returns the number of failed transactions.
func (m *Matrix) Failures() int {
	n := 0
	for _, r := range m.rows {
		if r.failed {
			n++
		}
	}
	return n
}

// AddTransaction records one transaction's hit spectrum and verdict. The
// bitset must have the matrix's block capacity; it is retained (pass a
// Clone if the caller reuses the buffer).
func (m *Matrix) AddTransaction(hits *BitSet, failed bool) {
	if hits.Len() != m.blocks {
		panic(fmt.Sprintf("spectrum: spectrum has %d blocks, matrix %d", hits.Len(), m.blocks))
	}
	m.rows = append(m.rows, row{hits: hits, failed: failed})
}

// CoveredBlocks returns how many distinct blocks were executed at least once
// (the paper reports 13 796 of 60 000 for its scenario).
func (m *Matrix) CoveredBlocks() int {
	if len(m.rows) == 0 {
		return 0
	}
	acc := NewBitSet(m.blocks)
	for _, r := range m.rows {
		for w := range acc.words {
			acc.words[w] |= r.hits.words[w]
		}
	}
	return acc.Count()
}

// Counts holds the four similarity counters for one block:
// aef = executed & failed, aep = executed & passed,
// anf = not executed & failed, anp = not executed & passed.
type Counts struct {
	Aef, Aep, Anf, Anp int
}

// CountsFor computes the counters for one block.
func (m *Matrix) CountsFor(block int) Counts {
	var c Counts
	for _, r := range m.rows {
		hit := r.hits.Get(block)
		switch {
		case hit && r.failed:
			c.Aef++
		case hit && !r.failed:
			c.Aep++
		case !hit && r.failed:
			c.Anf++
		default:
			c.Anp++
		}
	}
	return c
}

// Coefficient scores similarity between a block's hit vector and the error
// vector from its counters. Higher means more suspicious.
type Coefficient struct {
	Name string
	F    func(Counts) float64
}

// The similarity coefficients from the SFL literature the Trader diagnosis
// work evaluates.
var (
	// Ochiai is the coefficient the Zoeteweij et al. line of work found
	// most effective for embedded software diagnosis.
	Ochiai = Coefficient{"ochiai", func(c Counts) float64 {
		d := float64(c.Aef+c.Anf) * float64(c.Aef+c.Aep)
		if d == 0 {
			return 0
		}
		// Computed as sqrt(aef²/d) rather than aef/sqrt(d): both round of
		// the ratio before the root, so counter pairs with the same exact
		// ratio — e.g. (1 fail, 1 pass) and (2 fails, 6 passes), both
		// aef²/(aef+aep) = 1/2 — score bit-identically, and because each
		// step is correctly rounded and monotone, a larger exact ratio can
		// never round below a smaller one. The incremental top-K
		// certificate (topk.go) compares those exact ratios, so this form
		// keeps Top() equal to TopN through ties at the ranking boundary.
		return math.Sqrt(float64(c.Aef) * float64(c.Aef) / d)
	}}
	// Tarantula is the classic visualization-derived coefficient.
	Tarantula = Coefficient{"tarantula", func(c Counts) float64 {
		f := float64(c.Aef + c.Anf)
		p := float64(c.Aep + c.Anp)
		if f == 0 {
			return 0
		}
		fr := float64(c.Aef) / f
		var pr float64
		if p > 0 {
			pr = float64(c.Aep) / p
		}
		if fr+pr == 0 {
			return 0
		}
		return fr / (fr + pr)
	}}
	// Jaccard is the set-overlap coefficient.
	Jaccard = Coefficient{"jaccard", func(c Counts) float64 {
		d := float64(c.Aef + c.Anf + c.Aep)
		if d == 0 {
			return 0
		}
		return float64(c.Aef) / d
	}}
	// AMPLE is the coefficient of the Eclipse plug-in of the same name.
	AMPLE = Coefficient{"ample", func(c Counts) float64 {
		var t1, t2 float64
		if f := float64(c.Aef + c.Anf); f > 0 {
			t1 = float64(c.Aef) / f
		}
		if p := float64(c.Aep + c.Anp); p > 0 {
			t2 = float64(c.Aep) / p
		}
		return math.Abs(t1 - t2)
	}}
	// Dice doubles the weight of co-occurrence.
	Dice = Coefficient{"dice", func(c Counts) float64 {
		d := float64(2*c.Aef + c.Anf + c.Aep)
		if d == 0 {
			return 0
		}
		return 2 * float64(c.Aef) / d
	}}
	// SimpleMatching counts agreements of both kinds.
	SimpleMatching = Coefficient{"simple-matching", func(c Counts) float64 {
		n := float64(c.Aef + c.Aep + c.Anf + c.Anp)
		if n == 0 {
			return 0
		}
		return float64(c.Aef+c.Anp) / n
	}}
	// DStar (D* with star = 2) emphasises execution in failing runs
	// quadratically; a top performer in later SFL studies. The unbounded
	// aef²/0 case (perfect suspect) maps to +Inf-like maximal score,
	// represented here by aef² × large.
	DStar = Coefficient{"dstar", func(c Counts) float64 {
		num := float64(c.Aef) * float64(c.Aef)
		den := float64(c.Aep + c.Anf)
		if den == 0 {
			return num * 1e9
		}
		return num / den
	}}
	// Op2 is optimal for single-fault programs under the ranking model of
	// Naish et al.
	Op2 = Coefficient{"op2", func(c Counts) float64 {
		return float64(c.Aef) - float64(c.Aep)/float64(c.Aep+c.Anp+1)
	}}
)

// AllCoefficients lists the implemented coefficients.
func AllCoefficients() []Coefficient {
	return []Coefficient{Ochiai, Tarantula, Jaccard, AMPLE, Dice, SimpleMatching, DStar, Op2}
}

// CoefficientByName resolves a coefficient by its wire/flag name ("ochiai",
// "tarantula", ...), reporting whether the name is known.
func CoefficientByName(name string) (Coefficient, bool) {
	for _, c := range AllCoefficients() {
		if c.Name == name {
			return c, true
		}
	}
	return Coefficient{}, false
}

// Ranked is one entry of a diagnosis ranking.
type Ranked struct {
	Block int
	Score float64
}

// Rank scores every block and returns them most-suspicious first. Ties are
// broken by block index for determinism. Blocks never executed score the
// coefficient's value for all-zero execution counters (typically 0).
func (m *Matrix) Rank(c Coefficient) []Ranked {
	out := make([]Ranked, m.blocks)
	for b := 0; b < m.blocks; b++ {
		out[b] = Ranked{Block: b, Score: c.F(m.CountsFor(b))}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// RankOf returns the 1-based rank of the given block under the coefficient,
// counting ties pessimistically (a block tied with k others gets the worst
// rank of the tie group), plus the number of blocks sharing its score.
// Pessimistic tie handling keeps the metric honest: rank 1 means the
// diagnosis is unambiguous.
func (m *Matrix) RankOf(block int, c Coefficient) (rank, ties int) {
	target := c.F(m.CountsFor(block))
	higher, equal := 0, 0
	for b := 0; b < m.blocks; b++ {
		s := c.F(m.CountsFor(b))
		if s > target {
			higher++
		} else if s == target {
			equal++
		}
	}
	return higher + equal, equal
}

// WastedEffort returns the fraction of blocks a developer would inspect in
// vain before reaching the faulty block, following the ranking.
func (m *Matrix) WastedEffort(block int, c Coefficient) float64 {
	rank, _ := m.RankOf(block, c)
	return float64(rank-1) / float64(m.blocks)
}
