package spectrum

import (
	"math/bits"
	"sort"
)

// Incremental top-K ranking. TopN re-scores every block on every call —
// ~O(blocks log n) and a fresh allocation per ranking, which is fine for an
// on-escalation pull but not for a continuous plane re-ranking after every
// heartbeat delta. TrackTop instead maintains a small candidate superset of
// the true top-k under counter updates, so a fold touching m blocks pays
// O(m) extra comparisons and Top() is O(K log K) over the candidates alone.
//
// The scheme leans on a property specific to Ochiai's ranking: for a fixed
// fold history the order of two blocks under Ochiai is the order of the
// exact rational key
//
//	key(b) = aef(b)² / (aef(b) + aep(b))
//
// (score = sqrt(key/nFail), and nFail is the same for every block), so the
// order is invariant under changes to the global totals. Keys are compared
// exactly by 128-bit cross-multiplication — no floats, no rounding — with
// ties broken toward the lower block index, exactly TopN's tie order. Under
// a fold, a block's key moves monotonically: a pass touch can only lower it,
// a fail touch can only raise it. The tracker therefore keeps
//
//   - a candidate set of cap = max(2k, k+16) blocks (bitmap + list), and
//   - a guard: the highest key' (key, block) ever rejected or evicted since
//     the last rebuild.
//
// Invariant: every non-candidate's key' is ≤ the guard. Pass folds preserve
// it for free (non-candidate keys only fall); a fail touch on a
// non-candidate runs an admission check whose rejection raises the guard.
// Top() certifies the candidate set by checking that the k-th candidate
// key' still exceeds the guard strictly — then the true top-k is provably
// inside the candidates — and falls back to a full O(blocks) rebuild when
// the certificate fails (candidates sank or the guard caught up), which
// resets the guard to the best non-kept key'. The emitted ranking is
// computed with the coefficient's float scores and TopN's exact comparator,
// so Top() == TopN block for block and score for score.
//
// For coefficients whose order is not key-invariant under total changes
// (Tarantula, DStar, ... — their relative order genuinely shifts as nPass
// and nFail grow, so no incremental certificate can exist) Top transparently
// degrades to a full TopN.

// topTrackerSlack is the minimum candidate headroom above k: enough that
// routine churn re-sorts inside the set instead of forcing rebuilds.
const topTrackerSlack = 16

// topTracker is the incremental top-K state riding on a Spectra.
type topTracker struct {
	k   int
	cap int
	// member is a bitmap over blocks: bit set ⇔ block is a candidate.
	member []uint64
	// cand lists the candidate blocks, unordered.
	cand []int32
	// The guard key', stored as the counter pair and block index that
	// produced it (the key is derived, never stored). guardSet false means
	// -inf: nothing has been rejected or evicted since the last rebuild.
	guAef, guAep uint32
	guBlock      int32
	guardSet     bool
	// valid false forces a rebuild before the next certification (set by
	// Import, which rewrites the counters wholesale).
	valid bool
}

// cmpKey compares the exact rational rank keys aefA²/(aefA+aepA) and
// aefB²/(aefB+aepB) by 128-bit cross-multiplication, returning -1, 0 or +1.
// aef is at most 32 bits so aef² fits a uint64 and each cross product fits
// the (hi, lo) pair bits.Mul64 yields. A zero aef means a zero key
// regardless of aep (including the 0/0 case), handled up front so no
// denominator below is ever zero.
func cmpKey(aefA, aepA, aefB, aepB uint32) int {
	if aefA == 0 || aefB == 0 {
		switch {
		case aefA == aefB:
			return 0
		case aefA == 0:
			return -1
		default:
			return 1
		}
	}
	hiA, loA := bits.Mul64(uint64(aefA)*uint64(aefA), uint64(aefB)+uint64(aepB))
	hiB, loB := bits.Mul64(uint64(aefB)*uint64(aefB), uint64(aefA)+uint64(aepA))
	switch {
	case hiA != hiB:
		if hiA < hiB {
			return -1
		}
		return 1
	case loA != loB:
		if loA < loB {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// outranks reports whether block A strictly precedes block B in the exact
// ranking order: higher key first, lower block index on key ties. Distinct
// blocks are never equal, so key' is a strict total order.
func outranks(aefA, aepA uint32, blockA int32, aefB, aepB uint32, blockB int32) bool {
	if c := cmpKey(aefA, aepA, aefB, aepB); c != 0 {
		return c > 0
	}
	return blockA < blockB
}

// countersAt returns one block's raw counters. Stripes cover uniform
// wordsPer-sized word ranges, so the owning stripe is a division away.
func (s *Spectra) countersAt(b int) (aef, aep uint32) {
	st := &s.stripes[(b/64)/s.wordsPer]
	return st.aef[b-st.lo], st.aep[b-st.lo]
}

// TrackTop enables incremental maintenance of the top k blocks, rebuilding
// the candidate set from the current counters. k <= 0 disables tracking.
// Tracking costs each fail fold O(1) exact key comparisons per touched
// block (pass folds pay nothing) and makes Top O(K log K).
func (s *Spectra) TrackTop(k int) {
	if k <= 0 {
		s.top = nil
		return
	}
	c := 2 * k
	if c < k+topTrackerSlack {
		c = k + topTrackerSlack
	}
	if c > s.blocks {
		c = s.blocks
	}
	s.top = &topTracker{
		k: k, cap: c,
		member: make([]uint64, (s.blocks+63)/64),
		cand:   make([]int32, 0, c),
	}
	s.rebuildTop()
}

// TrackedK returns the k TrackTop is maintaining, or 0 when tracking is
// off. Callers wanting a ranking of exactly that depth can take Top()
// instead of paying a TopN full scan.
func (s *Spectra) TrackedK() int {
	if s.top == nil {
		return 0
	}
	return s.top.k
}

// isCandidate tests the membership bitmap.
func (t *topTracker) isCandidate(b int) bool {
	return t.member[b>>6]>>(uint(b)&63)&1 == 1
}

func (t *topTracker) setMember(b int32)   { t.member[b>>6] |= 1 << (uint(b) & 63) }
func (t *topTracker) clearMember(b int32) { t.member[b>>6] &^= 1 << (uint(b) & 63) }

// raiseGuard lifts the guard to at least the given key'.
func (t *topTracker) raiseGuard(aef, aep uint32, block int32) {
	if !t.guardSet || outranks(aef, aep, block, t.guAef, t.guAep, t.guBlock) {
		t.guAef, t.guAep, t.guBlock, t.guardSet = aef, aep, block, true
	}
}

// admitTop runs the admission check for a fail-touched block with its
// just-updated counters. Candidates need nothing (their key only rose);
// a non-candidate still under the guard is rejected in O(1); only a
// non-candidate that climbed past the guard pays the O(cap) min-scan.
func (s *Spectra) admitTop(block int, aef, aep uint32) {
	t := s.top
	if t.isCandidate(block) {
		return
	}
	b := int32(block)
	if t.guardSet && !outranks(aef, aep, b, t.guAef, t.guAep, t.guBlock) {
		return // still at or under the guard: the invariant holds untouched
	}
	if len(t.cand) < t.cap {
		t.cand = append(t.cand, b)
		t.setMember(b)
		return
	}
	// Full: the weakest candidate competes with the newcomer; whichever
	// loses becomes the new guard floor.
	minI := 0
	mAef, mAep := s.countersAt(int(t.cand[0]))
	for i := 1; i < len(t.cand); i++ {
		caef, caep := s.countersAt(int(t.cand[i]))
		if outranks(mAef, mAep, t.cand[minI], caef, caep, t.cand[i]) {
			minI, mAef, mAep = i, caef, caep
		}
	}
	evict := t.cand[minI]
	if outranks(aef, aep, b, mAef, mAep, evict) {
		t.clearMember(evict)
		t.cand[minI] = b
		t.setMember(b)
		t.raiseGuard(mAef, mAep, evict)
	} else {
		t.raiseGuard(aef, aep, b)
	}
}

// rebuildTop rescans every counter, keeps the cap best blocks with aef > 0
// as candidates and anchors the guard at the best non-kept key'. Blocks
// with aef == 0 all score zero under Ochiai and are reconstructed as
// index-ordered padding by Top, so they never need candidate slots; if
// every positive block fits, the guard stays -inf and certification is
// trivially true.
func (s *Spectra) rebuildTop() {
	t := s.top
	clear(t.member)
	t.cand = t.cand[:0]
	t.guardSet = false
	// bestOut is the best key' seen that did not fit the candidate set.
	var outAef, outAep uint32
	var outBlock int32
	outSet := false
	for si := range s.stripes {
		st := &s.stripes[si]
		for i := 0; i < st.n; i++ {
			aef := st.aef[i]
			if aef == 0 {
				continue
			}
			aep := st.aep[i]
			b := int32(st.lo + i)
			if len(t.cand) < t.cap {
				t.cand = append(t.cand, b)
				t.setMember(b)
				continue
			}
			minI := 0
			mAef, mAep := s.countersAt(int(t.cand[0]))
			for j := 1; j < len(t.cand); j++ {
				caef, caep := s.countersAt(int(t.cand[j]))
				if outranks(mAef, mAep, t.cand[minI], caef, caep, t.cand[j]) {
					minI, mAef, mAep = j, caef, caep
				}
			}
			lAef, lAep, lBlock := aef, aep, b
			if outranks(aef, aep, b, mAef, mAep, t.cand[minI]) {
				lAef, lAep, lBlock = mAef, mAep, t.cand[minI]
				t.clearMember(t.cand[minI])
				t.cand[minI] = b
				t.setMember(b)
			}
			if !outSet || outranks(lAef, lAep, lBlock, outAef, outAep, outBlock) {
				outAef, outAep, outBlock, outSet = lAef, lAep, lBlock, true
			}
		}
	}
	if outSet {
		t.guAef, t.guAep, t.guBlock, t.guardSet = outAef, outAep, outBlock, true
	}
	t.valid = true
}

// Top returns the current top-k ranking under c, equal to TopN(c, k) block
// for block and score for score but computed from the tracked candidates in
// O(K log K). It returns nil when TrackTop has not enabled tracking. For
// coefficients other than Ochiai no incremental certificate exists (their
// block order shifts with the global totals) and Top degrades to a full
// TopN scan.
func (s *Spectra) Top(c Coefficient) []Ranked {
	t := s.top
	if t == nil {
		return nil
	}
	if c.Name != Ochiai.Name {
		return s.TopN(c, t.k)
	}
	if !t.valid {
		s.rebuildTop()
	}
	if !s.certifiedTop() {
		s.rebuildTop()
	}
	return s.topFromCandidates(c)
}

// certifiedTop checks the candidate-completeness certificate: the k-th best
// candidate key' strictly outranks the guard, so no non-candidate (all of
// which sit at or under the guard) can belong to the true top-k. With fewer
// than k candidates nothing was ever rejected (the set never filled), so
// the guard is -inf and the certificate is vacuous.
func (s *Spectra) certifiedTop() bool {
	t := s.top
	if !t.guardSet || len(t.cand) < t.k {
		return !t.guardSet
	}
	// Find the k-th best candidate by key' without sorting the whole set:
	// k and cap are both small, so a selection sort over a scratch copy is
	// cheaper than it looks.
	type ckey struct {
		aef, aep uint32
		block    int32
	}
	keys := make([]ckey, len(t.cand))
	for i, b := range t.cand {
		aef, aep := s.countersAt(int(b))
		keys[i] = ckey{aef, aep, b}
	}
	sort.Slice(keys, func(i, j int) bool {
		return outranks(keys[i].aef, keys[i].aep, keys[i].block, keys[j].aef, keys[j].aep, keys[j].block)
	})
	kth := keys[t.k-1]
	return outranks(kth.aef, kth.aep, kth.block, t.guAef, t.guAep, t.guBlock)
}

// topFromCandidates emits the ranking: candidates scored with the
// coefficient and ordered by TopN's exact comparator (score descending,
// block ascending), padded with index-ordered zero-score blocks when fewer
// than k candidates exist (possible only while the set never filled, when
// every non-candidate provably has aef == 0 and thus score 0).
func (s *Spectra) topFromCandidates(c Coefficient) []Ranked {
	t := s.top
	n := t.k
	if n > s.blocks {
		n = s.blocks
	}
	ranked := make([]Ranked, 0, len(t.cand))
	for _, b := range t.cand {
		aef, aep := s.countersAt(int(b))
		cnt := Counts{Aef: int(aef), Aep: int(aep), Anf: s.nFail - int(aef), Anp: s.nPass - int(aep)}
		ranked = append(ranked, Ranked{Block: int(b), Score: c.F(cnt)})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		return ranked[i].Block < ranked[j].Block
	})
	if len(ranked) > n {
		return ranked[:n]
	}
	zero := Counts{Anf: s.nFail, Anp: s.nPass}
	zeroScore := c.F(zero)
	for b := 0; len(ranked) < n && b < s.blocks; b++ {
		if t.isCandidate(b) {
			continue
		}
		ranked = append(ranked, Ranked{Block: b, Score: zeroScore})
	}
	return ranked
}
