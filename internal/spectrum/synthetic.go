package spectrum

import (
	"fmt"
	"math/rand"
)

// This file provides the synthetic instrumented program standing in for the
// NXP TV control software of the Sect. 4.4 experiment. The real experiment
// instrumented 60 000 C code blocks; a 27-key-press scenario executed 13 796
// of them, and the injected teletext fault ranked first. The synthetic
// program reproduces the *structure* that makes SFL work on such software:
//
//   - a common core executed by every transaction (input handling, OS),
//   - feature modules executed only when their feature is exercised
//     (teletext, volume, zapping, menu, ...), with per-transaction variation
//     (different paths through a feature on different presses), and
//   - a fault block inside one feature that causes the error detector to
//     flag exactly the transactions that executed it.

// Feature is a named group of block indices. The first CoreCount blocks are
// the feature's unconditional path (they run on every invocation); the next
// WarmCount blocks are input-dependent hot paths (p = WarmProb per press);
// the remainder is cold error-handling/configuration code (p = ColdProb).
type Feature struct {
	Name      string
	Blocks    []int
	CoreCount int
	WarmCount int
}

// Program is a synthetic instrumented program.
type Program struct {
	NumBlocks int
	// Common blocks run on every transaction (input dispatch, OS, drivers).
	Common []int
	// Features are exclusive block groups.
	Features []Feature
	// WarmProb is the per-press execution probability of a warm block.
	WarmProb float64
	// ColdProb is the per-press execution probability of a cold block.
	ColdProb float64
	// NoiseFraction is the fraction of all blocks sampled per transaction
	// as unrelated background activity.
	NoiseFraction float64

	rng *rand.Rand
}

// DefaultTVFeatures mirrors the feature set of the TV simulator.
var DefaultTVFeatures = []string{
	"power", "volume", "mute", "zapping", "teletext", "menu",
	"dual-screen", "sleep", "child-lock", "swivel", "epg", "settings",
}

// GenerateTVProgram builds a synthetic TV control program with numBlocks
// blocks: 12% common core, the rest split evenly across features, each with
// a 10% core path and a 1% warm region. The proportions are calibrated so
// the paper's 27-press scenario covers roughly the published fraction of
// blocks (13 796 of 60 000).
func GenerateTVProgram(seed int64, numBlocks int) *Program {
	if numBlocks < 100 {
		panic("spectrum: program too small")
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Program{
		NumBlocks:     numBlocks,
		WarmProb:      0.5,
		ColdProb:      0.02,
		NoiseFraction: 0.0005,
		rng:           rng,
	}
	nCommon := numBlocks * 12 / 100
	for b := 0; b < nCommon; b++ {
		p.Common = append(p.Common, b)
	}
	per := (numBlocks - nCommon) / len(DefaultTVFeatures)
	next := nCommon
	for _, name := range DefaultTVFeatures {
		f := Feature{Name: name}
		for i := 0; i < per && next < numBlocks; i++ {
			f.Blocks = append(f.Blocks, next)
			next++
		}
		f.CoreCount = len(f.Blocks) / 10
		f.WarmCount = len(f.Blocks) / 100
		p.Features = append(p.Features, f)
	}
	// Leftover blocks join the last feature's cold region.
	last := &p.Features[len(p.Features)-1]
	for ; next < numBlocks; next++ {
		last.Blocks = append(last.Blocks, next)
	}
	return p
}

// Feature returns the named feature, or nil.
func (p *Program) Feature(name string) *Feature {
	for i := range p.Features {
		if p.Features[i].Name == name {
			return &p.Features[i]
		}
	}
	return nil
}

// FaultInFeature picks a deterministic fault block inside the named
// feature's warm region — an input-dependent bug, like a teletext page
// decoder defect that only some pages trigger.
func (p *Program) FaultInFeature(name string) int {
	f := p.Feature(name)
	if f == nil || len(f.Blocks) == 0 {
		panic(fmt.Sprintf("spectrum: no such feature %q", name))
	}
	if f.WarmCount > 0 {
		return f.Blocks[f.CoreCount+f.WarmCount/2]
	}
	return f.Blocks[len(f.Blocks)/2]
}

// Press executes one transaction exercising the named feature and returns
// its hit spectrum: common blocks always, the feature's core path always,
// warm blocks with WarmProb, cold blocks with ColdProb, plus background
// noise across the whole program.
func (p *Program) Press(feature string) *BitSet {
	hits := NewBitSet(p.NumBlocks)
	for _, b := range p.Common {
		hits.Set(b)
	}
	if f := p.Feature(feature); f != nil {
		for i, b := range f.Blocks {
			switch {
			case i < f.CoreCount:
				hits.Set(b)
			case i < f.CoreCount+f.WarmCount:
				if p.rng.Float64() < p.WarmProb {
					hits.Set(b)
				}
			default:
				if p.rng.Float64() < p.ColdProb {
					hits.Set(b)
				}
			}
		}
	}
	if p.NoiseFraction > 0 {
		n := int(float64(p.NumBlocks) * p.NoiseFraction)
		for i := 0; i < n; i++ {
			hits.Set(p.rng.Intn(p.NumBlocks))
		}
	}
	return hits
}

// RunScenario executes the scenario (a sequence of feature names, one per
// key press) with a fault injected at faultBlock: every transaction that
// executes the fault block fails (the error detector flags it). It returns
// the filled matrix.
func (p *Program) RunScenario(scenario []string, faultBlock int) *Matrix {
	m := NewMatrix(p.NumBlocks)
	for _, feature := range scenario {
		hits := p.Press(feature)
		failed := faultBlock >= 0 && hits.Get(faultBlock)
		m.AddTransaction(hits, failed)
	}
	return m
}

// PaperScenario returns the 27-key-press scenario shape of Sect. 4.4: a
// zapping/volume warm-up, then teletext interaction (where the fault
// lives), then other features.
func PaperScenario() []string {
	return []string{
		"power", "volume", "volume", "zapping", "zapping", "zapping",
		"menu", "settings", "menu", "zapping", "volume", "mute",
		"teletext", "teletext", "teletext", "teletext", "teletext",
		"zapping", "teletext", "teletext", "dual-screen", "zapping",
		"teletext", "volume", "sleep", "swivel", "power",
	}
}
