package spectrum

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBitSet(t *testing.T) {
	b := NewBitSet(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatal("fresh bitset wrong")
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Fatal("unexpected bits set")
	}
	c := b.Clone()
	c.Set(1)
	if b.Get(1) {
		t.Fatal("Clone aliases storage")
	}
}

func TestBitSetPanics(t *testing.T) {
	b := NewBitSet(10)
	for _, fn := range []func(){func() { b.Set(10) }, func() { b.Set(-1) }, func() { b.Get(10) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: Count equals the number of distinct indices set.
func TestPropertyBitSetCount(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitSet(1 << 16)
		distinct := map[int]bool{}
		for _, i := range idxs {
			b.Set(int(i))
			distinct[int(i)] = true
		}
		return b.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// handMatrix builds the classic didactic example:
//
//	blocks:      0   1   2
//	t1 (fail):   x   x   -
//	t2 (pass):   x   -   x
//	t3 (fail):   x   x   -
//	t4 (pass):   x   -   -
//
// Block 1 correlates perfectly with failure.
func handMatrix() *Matrix {
	m := NewMatrix(3)
	add := func(hits []int, failed bool) {
		b := NewBitSet(3)
		for _, h := range hits {
			b.Set(h)
		}
		m.AddTransaction(b, failed)
	}
	add([]int{0, 1}, true)
	add([]int{0, 2}, false)
	add([]int{0, 1}, true)
	add([]int{0}, false)
	return m
}

func TestCountsFor(t *testing.T) {
	m := handMatrix()
	if c := m.CountsFor(1); c != (Counts{Aef: 2, Aep: 0, Anf: 0, Anp: 2}) {
		t.Fatalf("block 1 counts = %+v", c)
	}
	if c := m.CountsFor(0); c != (Counts{Aef: 2, Aep: 2, Anf: 0, Anp: 0}) {
		t.Fatalf("block 0 counts = %+v", c)
	}
	if c := m.CountsFor(2); c != (Counts{Aef: 0, Aep: 1, Anf: 2, Anp: 1}) {
		t.Fatalf("block 2 counts = %+v", c)
	}
}

func TestCoefficientValues(t *testing.T) {
	m := handMatrix()
	c1 := m.CountsFor(1)
	if got := Ochiai.F(c1); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Ochiai(block1) = %v, want 1", got)
	}
	c0 := m.CountsFor(0)
	if got := Ochiai.F(c0); math.Abs(got-2/math.Sqrt(8)) > 1e-12 {
		t.Fatalf("Ochiai(block0) = %v, want 0.7071", got)
	}
	if got := Tarantula.F(c1); got != 1 {
		t.Fatalf("Tarantula(block1) = %v, want 1", got)
	}
	if got := Tarantula.F(c0); got != 0.5 {
		t.Fatalf("Tarantula(block0) = %v, want 0.5", got)
	}
	if got := Jaccard.F(c1); got != 1 {
		t.Fatalf("Jaccard(block1) = %v", got)
	}
	if got := Jaccard.F(c0); got != 0.5 {
		t.Fatalf("Jaccard(block0) = %v", got)
	}
	if got := AMPLE.F(c1); got != 1 {
		t.Fatalf("AMPLE(block1) = %v", got)
	}
	if got := Dice.F(c1); got != 1 {
		t.Fatalf("Dice(block1) = %v", got)
	}
	if got := SimpleMatching.F(c1); got != 1 {
		t.Fatalf("SimpleMatching(block1) = %v", got)
	}
	// DStar: block1 has aef=2, aep=0, anf=0 → perfect suspect (huge score);
	// block0 has aef=2, aep=2 → 4/2 = 2.
	if got := DStar.F(c1); got < 1e9 {
		t.Fatalf("DStar(block1) = %v, want maximal", got)
	}
	if got := DStar.F(c0); got != 2 {
		t.Fatalf("DStar(block0) = %v, want 2", got)
	}
	// Op2: block1 = 2 - 0/(0+2+1) = 2; block0 = 2 - 2/(2+0+1) ≈ 1.333.
	if got := Op2.F(c1); got != 2 {
		t.Fatalf("Op2(block1) = %v, want 2", got)
	}
	if got := Op2.F(c0); got < 1.3 || got > 1.34 {
		t.Fatalf("Op2(block0) = %v, want ~1.333", got)
	}
	// Zero-division safety: never-executed block in all-pass matrix.
	empty := NewMatrix(2)
	b := NewBitSet(2)
	empty.AddTransaction(b, false)
	for _, c := range AllCoefficients() {
		got := c.F(empty.CountsFor(0))
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s produced %v on degenerate counts", c.Name, got)
		}
	}
}

func TestRankAndRankOf(t *testing.T) {
	m := handMatrix()
	ranked := m.Rank(Ochiai)
	if ranked[0].Block != 1 {
		t.Fatalf("top block = %d, want 1", ranked[0].Block)
	}
	rank, ties := m.RankOf(1, Ochiai)
	if rank != 1 || ties != 1 {
		t.Fatalf("RankOf(1) = %d ties %d, want 1,1", rank, ties)
	}
	if we := m.WastedEffort(1, Ochiai); we != 0 {
		t.Fatalf("WastedEffort = %v, want 0", we)
	}
	rank2, _ := m.RankOf(2, Ochiai)
	if rank2 != 3 {
		t.Fatalf("RankOf(2) = %d, want 3 (least suspicious)", rank2)
	}
}

func TestMatrixAccounting(t *testing.T) {
	m := handMatrix()
	if m.Blocks() != 3 || m.Transactions() != 4 || m.Failures() != 2 {
		t.Fatalf("accounting: %d %d %d", m.Blocks(), m.Transactions(), m.Failures())
	}
	if m.CoveredBlocks() != 3 {
		t.Fatalf("CoveredBlocks = %d", m.CoveredBlocks())
	}
}

func TestMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch should panic")
		}
	}()
	m := NewMatrix(3)
	m.AddTransaction(NewBitSet(4), false)
}

func TestGenerateTVProgramStructure(t *testing.T) {
	p := GenerateTVProgram(1, 60000)
	if p.NumBlocks != 60000 {
		t.Fatal("block count")
	}
	if len(p.Common) != 7200 {
		t.Fatalf("common = %d, want 7200 (12%%)", len(p.Common))
	}
	if len(p.Features) != len(DefaultTVFeatures) {
		t.Fatalf("features = %d", len(p.Features))
	}
	// Features partition the non-common blocks.
	seen := map[int]bool{}
	total := 0
	for _, f := range p.Features {
		for _, b := range f.Blocks {
			if b < len(p.Common) {
				t.Fatalf("feature block %d overlaps common core", b)
			}
			if seen[b] {
				t.Fatalf("block %d in two features", b)
			}
			seen[b] = true
			total++
		}
	}
	if total != 60000-7200 {
		t.Fatalf("feature blocks = %d", total)
	}
	for _, f := range p.Features {
		if f.CoreCount == 0 || f.WarmCount == 0 {
			t.Fatalf("feature %s has empty core/warm regions", f.Name)
		}
	}
	if p.Feature("teletext") == nil || p.Feature("ghost") != nil {
		t.Fatal("feature lookup broken")
	}
}

// TestPaperExperiment reproduces Sect. 4.4: 60 000 blocks, the 27-press
// scenario, teletext fault — the faulty block must rank #1 under Ochiai,
// and the covered-block count must be in the vicinity of the paper's
// 13 796 (the scenario exercises a fraction of the code).
func TestPaperExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("60k-block scenario")
	}
	p := GenerateTVProgram(42, 60000)
	scenario := PaperScenario()
	if len(scenario) != 27 {
		t.Fatalf("scenario length = %d, want 27 key presses", len(scenario))
	}
	fault := p.FaultInFeature("teletext")
	m := p.RunScenario(scenario, fault)
	if m.Failures() == 0 {
		t.Fatal("fault never triggered")
	}
	covered := m.CoveredBlocks()
	if covered < 10000 || covered > 25000 {
		t.Fatalf("covered = %d, want the paper's ballpark (13 796)", covered)
	}
	rank, ties := m.RankOf(fault, Ochiai)
	if rank != 1 {
		t.Fatalf("fault rank = %d (ties %d), paper reports 1", rank, ties)
	}
}

// TestCoefficientComparison checks Ochiai is at least as good as the other
// coefficients on the paper scenario (the finding of the SFL literature the
// project builds on).
func TestCoefficientComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("60k-block scenario")
	}
	p := GenerateTVProgram(7, 60000)
	fault := p.FaultInFeature("teletext")
	m := p.RunScenario(PaperScenario(), fault)
	ochiaiRank, _ := m.RankOf(fault, Ochiai)
	for _, c := range []Coefficient{Tarantula, Jaccard, Dice} {
		r, _ := m.RankOf(fault, c)
		if ochiaiRank > r {
			t.Fatalf("Ochiai rank %d worse than %s rank %d", ochiaiRank, c.Name, r)
		}
	}
}

// Property: on small random matrices, the top-ranked block always has the
// maximal score, and ranks are within [1, blocks].
func TestPropertyRankConsistency(t *testing.T) {
	f := func(seedRaw uint32, rowsRaw uint8) bool {
		p := GenerateTVProgram(int64(seedRaw), 500)
		scenario := []string{"teletext", "volume", "zapping", "teletext", "menu"}
		for i := 0; i < int(rowsRaw%4); i++ {
			scenario = append(scenario, "teletext")
		}
		fault := p.FaultInFeature("teletext")
		m := p.RunScenario(scenario, fault)
		ranked := m.Rank(Ochiai)
		if len(ranked) != 500 {
			return false
		}
		top := ranked[0].Score
		for _, r := range ranked {
			if r.Score > top {
				return false
			}
		}
		rank, ties := m.RankOf(fault, Ochiai)
		return rank >= 1 && rank <= 500 && ties >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRank60k(b *testing.B) {
	p := GenerateTVProgram(42, 60000)
	fault := p.FaultInFeature("teletext")
	m := p.RunScenario(PaperScenario(), fault)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rank(Ochiai)
	}
}
