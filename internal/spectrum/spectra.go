package spectrum

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
)

// Spectra is the fleet-level spectrum accumulator: where a Matrix retains
// one row per transaction (the single-device, offline shape of the Sect.
// 4.4 experiment), Spectra folds every transaction into per-block pass/fail
// execution counters the moment it arrives and retains nothing else. Memory
// is O(blocks) regardless of how many devices contribute evidence, folding
// is a single pass over the window's packed words, and — because the
// counters are plain sums — the resulting ranking is independent of the
// order in which evidence arrives. That order-independence is what lets a
// journal replay reproduce a live fleet ranking byte for byte.
//
// Block storage is striped: the block range is cut into word-aligned
// stripes so ranking fans out across stripes in parallel while a fold stays
// one cache-friendly sequential pass. Spectra is not safe for concurrent
// use; the diagnosis engine owns one from a single goroutine.
type Spectra struct {
	blocks   int
	words    int
	wordsPer int // packed words per stripe (the last stripe may hold fewer)
	stripes  []stripe
	nFail    int // failed transactions folded
	nPass    int // passed transactions folded
	top      *topTracker
}

// stripe owns the counters of a word-aligned contiguous block range.
type stripe struct {
	loWord int // first packed word of the range
	lo     int // first block of the range (loWord * 64)
	n      int // blocks in the range
	aef    []uint32
	aep    []uint32
}

// NewSpectra creates an accumulator for a program with the given block
// count, striped for parallel ranking. stripes <= 0 picks GOMAXPROCS.
func NewSpectra(blocks, stripes int) *Spectra {
	if blocks <= 0 {
		panic("spectrum: block count must be positive")
	}
	if stripes <= 0 {
		stripes = runtime.GOMAXPROCS(0)
	}
	words := (blocks + 63) / 64
	if stripes > words {
		stripes = words
	}
	s := &Spectra{blocks: blocks, words: words}
	wordsPer := (words + stripes - 1) / stripes
	s.wordsPer = wordsPer
	for lo := 0; lo < words; lo += wordsPer {
		hi := lo + wordsPer
		if hi > words {
			hi = words
		}
		n := (hi - lo) * 64
		if hi == words {
			n = blocks - lo*64
		}
		s.stripes = append(s.stripes, stripe{
			loWord: lo, lo: lo * 64, n: n,
			aef: make([]uint32, n), aep: make([]uint32, n),
		})
	}
	return s
}

// Blocks returns the block capacity.
func (s *Spectra) Blocks() int { return s.blocks }

// Stripes returns the stripe count.
func (s *Spectra) Stripes() int { return len(s.stripes) }

// Transactions returns the number of folded transactions.
func (s *Spectra) Transactions() int { return s.nFail + s.nPass }

// Failures returns the number of folded failing transactions.
func (s *Spectra) Failures() int { return s.nFail }

// Fold accumulates one transaction's hit spectrum under its verdict. The
// bitset is read, not retained.
func (s *Spectra) Fold(hits *BitSet, failed bool) {
	if hits.Len() != s.blocks {
		panic("spectrum: spectrum capacity does not match")
	}
	s.FoldWords(hits.words, failed)
}

// FoldWords accumulates one transaction given as packed 64-bit words (the
// wire representation of a coverage window, see BitSet.Words). Short word
// slices are treated as zero-padded; bits beyond the block capacity are
// ignored, so a malformed window cannot write out of range.
func (s *Spectra) FoldWords(words []uint64, failed bool) {
	if failed {
		s.nFail++
	} else {
		s.nPass++
	}
	// Pass folds only lower rank keys, so the top-K tracker needs no
	// structural work for them; only fail-touched blocks can climb into the
	// candidate set (see topk.go).
	track := failed && s.top != nil && s.top.valid
	for si := range s.stripes {
		st := &s.stripes[si]
		counters := st.aep
		if failed {
			counters = st.aef
		}
		hiWord := st.loWord + (st.n+63)/64
		for w := st.loWord; w < hiWord && w < len(words); w++ {
			word := words[w]
			base := w*64 - st.lo
			for word != 0 {
				b := base + bits.TrailingZeros64(word)
				if b >= st.n {
					break // capacity-padding bits of the last word
				}
				counters[b]++
				if track {
					s.admitTop(st.lo+b, counters[b], st.aep[b])
				}
				word &= word - 1
			}
		}
	}
}

// FoldSparse accumulates one transaction given as a sparse coverage window:
// parallel slices of packed-word indices and their nonzero 64-bit words —
// the TypeSpectrumDelta wire representation, carrying only the words a
// device's recorder actually touched. Word indices beyond the capacity are
// ignored and a short words slice truncates the pair list, mirroring
// FoldWords' posture toward malformed input: nothing a peer sends can write
// out of range.
func (s *Spectra) FoldSparse(index []uint32, words []uint64, failed bool) {
	if failed {
		s.nFail++
	} else {
		s.nPass++
	}
	track := failed && s.top != nil && s.top.valid
	n := len(index)
	if len(words) < n {
		n = len(words)
	}
	for i := 0; i < n; i++ {
		w := int(index[i])
		if w >= s.words {
			continue
		}
		st := &s.stripes[w/s.wordsPer]
		counters := st.aep
		if failed {
			counters = st.aef
		}
		word := words[i]
		base := w*64 - st.lo
		for word != 0 {
			b := base + bits.TrailingZeros64(word)
			if b >= st.n {
				break // capacity-padding bits of the last word
			}
			counters[b]++
			if track {
				s.admitTop(st.lo+b, counters[b], st.aep[b])
			}
			word &= word - 1
		}
	}
}

// CountsFor returns the four SFL counters for one block. The not-executed
// counts are derived from the fold totals, so they need no storage.
func (s *Spectra) CountsFor(block int) Counts {
	if block < 0 || block >= s.blocks {
		panic("spectrum: block index out of range")
	}
	for si := range s.stripes {
		st := &s.stripes[si]
		if block < st.lo+st.n {
			aef := int(st.aef[block-st.lo])
			aep := int(st.aep[block-st.lo])
			return Counts{Aef: aef, Aep: aep, Anf: s.nFail - aef, Anp: s.nPass - aep}
		}
	}
	panic("spectrum: unreachable")
}

// TopN scores every block under the coefficient and returns the n most
// suspicious, ties broken by block index. Scoring fans out across the
// stripes in parallel; the merge is deterministic, so the same counters
// always produce the same ranking regardless of stripe count or timing.
func (s *Spectra) TopN(c Coefficient, n int) []Ranked {
	if n <= 0 {
		return nil
	}
	if n > s.blocks {
		n = s.blocks
	}
	tops := make([][]Ranked, len(s.stripes))
	var wg sync.WaitGroup
	for si := range s.stripes {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			st := &s.stripes[si]
			local := make([]Ranked, st.n)
			for b := 0; b < st.n; b++ {
				aef, aep := int(st.aef[b]), int(st.aep[b])
				cnt := Counts{Aef: aef, Aep: aep, Anf: s.nFail - aef, Anp: s.nPass - aep}
				local[b] = Ranked{Block: st.lo + b, Score: c.F(cnt)}
			}
			sort.SliceStable(local, func(i, j int) bool {
				if local[i].Score != local[j].Score {
					return local[i].Score > local[j].Score
				}
				return local[i].Block < local[j].Block
			})
			if len(local) > n {
				local = local[:n]
			}
			tops[si] = local
		}(si)
	}
	wg.Wait()
	var merged []Ranked
	for _, t := range tops {
		merged = append(merged, t...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].Block < merged[j].Block
	})
	if len(merged) > n {
		merged = merged[:n]
	}
	return merged
}

// Cell is one nonzero counter pair in a sparse export: block index plus its
// failed/passed execution counts. Blocks never touched by any transaction
// are omitted — for typical fault densities the export is a small fraction
// of the block range, which is what keeps checkpoint records well under the
// wire frame bound.
type Cell struct {
	Block uint32
	Fail  uint32
	Pass  uint32
}

// Export returns the accumulator as a sparse cell list (nonzero counters
// only, ascending block order) plus the fold totals. Export and Import are
// the checkpoint representation of a Spectra.
func (s *Spectra) Export() (cells []Cell, nFail, nPass int) {
	for si := range s.stripes {
		st := &s.stripes[si]
		for b := 0; b < st.n; b++ {
			if st.aef[b] == 0 && st.aep[b] == 0 {
				continue
			}
			cells = append(cells, Cell{
				Block: uint32(st.lo + b), Fail: st.aef[b], Pass: st.aep[b],
			})
		}
	}
	return cells, s.nFail, s.nPass
}

// Import resets the accumulator and loads a sparse export: counters for the
// listed cells, zero everywhere else, and the given fold totals. Import is
// absolute, not accumulating, so importing the same checkpoint twice
// converges. An export whose cells exceed this accumulator's capacity was
// taken from a differently-sized program — silently truncating it would
// corrupt every ranking derived from the counters, so Import validates
// before touching any state and returns an error describing the mismatch;
// on error the accumulator is unchanged.
func (s *Spectra) Import(cells []Cell, nFail, nPass int) error {
	for _, c := range cells {
		if int(c.Block) >= s.blocks {
			return fmt.Errorf("spectrum: import cell for block %d exceeds the %d-block capacity: export taken from a different program layout", c.Block, s.blocks)
		}
	}
	for si := range s.stripes {
		st := &s.stripes[si]
		clear(st.aef)
		clear(st.aep)
	}
	s.nFail, s.nPass = nFail, nPass
	for _, c := range cells {
		b := int(c.Block)
		st := &s.stripes[(b/64)/s.wordsPer]
		st.aef[b-st.lo] = c.Fail
		st.aep[b-st.lo] = c.Pass
	}
	if s.top != nil {
		// The counters just changed wholesale; the candidate set is stale.
		// Rebuild lazily on the next Top.
		s.top.valid = false
	}
	return nil
}

// RankOf returns the 1-based pessimistic rank of the block (ties counted
// against it) and the size of its tie group, like Matrix.RankOf.
func (s *Spectra) RankOf(block int, c Coefficient) (rank, ties int) {
	target := c.F(s.CountsFor(block))
	higher, equal := 0, 0
	for si := range s.stripes {
		st := &s.stripes[si]
		for b := 0; b < st.n; b++ {
			aef, aep := int(st.aef[b]), int(st.aep[b])
			score := c.F(Counts{Aef: aef, Aep: aep, Anf: s.nFail - aef, Anp: s.nPass - aep})
			if score > target {
				higher++
			} else if score == target {
				equal++
			}
		}
	}
	return higher + equal, equal
}
