package spectrum

// Ablation benches for the design choices DESIGN.md calls out: the packed
// bitset representation of spectra versus a naive map-based one, at the
// paper's scale (60 000 blocks).

import (
	"math/rand"
	"testing"
)

// mapSpectra is the naive alternative: one map per transaction.
type mapSpectra struct {
	blocks int
	rows   []map[int]bool
	failed []bool
}

func (m *mapSpectra) add(hits map[int]bool, failed bool) {
	m.rows = append(m.rows, hits)
	m.failed = append(m.failed, failed)
}

func (m *mapSpectra) countsFor(block int) Counts {
	var c Counts
	for i, row := range m.rows {
		hit := row[block]
		switch {
		case hit && m.failed[i]:
			c.Aef++
		case hit && !m.failed[i]:
			c.Aep++
		case !hit && m.failed[i]:
			c.Anf++
		default:
			c.Anp++
		}
	}
	return c
}

func buildBitset(b *testing.B) *Matrix {
	b.Helper()
	p := GenerateTVProgram(42, 60000)
	fault := p.FaultInFeature("teletext")
	return p.RunScenario(PaperScenario(), fault)
}

func buildMap(b *testing.B) *mapSpectra {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	m := &mapSpectra{blocks: 60000}
	for i := 0; i < 27; i++ {
		hits := make(map[int]bool)
		for j := 0; j < 14000; j++ {
			hits[rng.Intn(60000)] = true
		}
		m.add(hits, i%5 == 0)
	}
	return m
}

func BenchmarkAblationRankBitset(b *testing.B) {
	m := buildBitset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rank(Ochiai)
	}
}

func BenchmarkAblationRankMap(b *testing.B) {
	m := buildMap(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Equivalent of Rank: score every block.
		for blk := 0; blk < m.blocks; blk++ {
			Ochiai.F(m.countsFor(blk))
		}
	}
}

func BenchmarkAblationRecordBitset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewBitSet(60000)
		for j := 0; j < 14000; j++ {
			s.Set(j * 4 % 60000)
		}
	}
}

func BenchmarkAblationRecordMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := make(map[int]bool)
		for j := 0; j < 14000; j++ {
			s[j*4%60000] = true
		}
	}
}
