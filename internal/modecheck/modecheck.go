// Package modecheck implements mode-consistency error detection (Sect. 4.3,
// after Sözer et al., "Detecting mode inconsistencies in component-based
// embedded software"): components publish their internal modes; declarative
// rules constrain which mode combinations are consistent; a checker flags
// violations. The paper reports this approach "turned out to be successful
// to detect teletext problems due to a loss of synchronization between
// components".
package modecheck

import (
	"fmt"
	"sort"

	"trader/internal/event"
	"trader/internal/koala"
	"trader/internal/sim"
)

// Rule constrains the modes of a set of components.
type Rule struct {
	// Name identifies the rule in violation reports.
	Name string
	// Components lists the components whose modes the predicate reads. The
	// rule is only evaluated once all of them have reported a mode.
	Components []string
	// Consistent returns whether the given component→mode assignment is
	// allowed.
	Consistent func(modes map[string]string) bool
	// Grace is the number of consecutive violating mode updates tolerated
	// before reporting (transient inconsistency during mode transitions is
	// normal; cf. the comparator's consecutive-deviation tolerance).
	Grace int

	streak  int
	flagged bool
}

// ForbidPair builds a rule forbidding one specific pair of modes — the
// common case ("display visible while acquisition searching").
func ForbidPair(name, compA, modeA, compB, modeB string) Rule {
	return Rule{
		Name:       name,
		Components: []string{compA, compB},
		Consistent: func(m map[string]string) bool {
			return !(m[compA] == modeA && m[compB] == modeB)
		},
	}
}

// Violation reports one detected inconsistency.
type Violation struct {
	Rule  string
	Modes map[string]string // snapshot of the involved components' modes
	At    sim.Time
}

func (v Violation) String() string {
	keys := make([]string, 0, len(v.Modes))
	for k := range v.Modes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := fmt.Sprintf("[%s] mode inconsistency %q:", v.At, v.Rule)
	for _, k := range keys {
		s += fmt.Sprintf(" %s=%s", k, v.Modes[k])
	}
	return s
}

// Checker tracks component modes from state events and evaluates rules.
type Checker struct {
	kernel *sim.Kernel
	rules  []*Rule
	modes  map[string]string
	byComp map[string][]*Rule
	onViol []func(Violation)
	sub    *event.Subscription

	// Checks counts rule evaluations; Violations counts reports.
	Checks     uint64
	Violations uint64
}

// NewChecker creates a checker with the given rules.
func NewChecker(kernel *sim.Kernel, rules ...Rule) *Checker {
	c := &Checker{
		kernel: kernel,
		modes:  make(map[string]string),
		byComp: make(map[string][]*Rule),
	}
	for i := range rules {
		r := rules[i]
		c.rules = append(c.rules, &r)
	}
	for _, r := range c.rules {
		for _, comp := range r.Components {
			c.byComp[comp] = append(c.byComp[comp], r)
		}
	}
	return c
}

// OnViolation registers a violation handler.
func (c *Checker) OnViolation(fn func(Violation)) { c.onViol = append(c.onViol, fn) }

// Mode returns the last reported mode of a component ("" if unseen).
func (c *Checker) Mode(component string) string { return c.modes[component] }

// AttachBus subscribes to a SUO bus; koala components publish State events
// carrying interned mode ids, which the checker decodes via koala.ModeName.
func (c *Checker) AttachBus(bus *event.Bus) {
	c.sub = bus.Subscribe("", func(e event.Event) {
		if e.Kind != event.State {
			return
		}
		id, ok := e.Get("mode")
		if !ok {
			return
		}
		c.Update(e.Source, koala.ModeName(int(id)))
	})
}

// Detach unsubscribes from the bus.
func (c *Checker) Detach() {
	if c.sub != nil {
		c.sub.Unsubscribe()
		c.sub = nil
	}
}

// Update records a component's mode and re-evaluates the rules that involve
// it.
func (c *Checker) Update(component, mode string) {
	c.modes[component] = mode
	for _, r := range c.byComp[component] {
		c.evaluate(r)
	}
}

func (c *Checker) evaluate(r *Rule) {
	snapshot := make(map[string]string, len(r.Components))
	for _, comp := range r.Components {
		m, ok := c.modes[comp]
		if !ok {
			return // not all components reported yet
		}
		snapshot[comp] = m
	}
	c.Checks++
	if r.Consistent(snapshot) {
		r.streak = 0
		r.flagged = false
		return
	}
	r.streak++
	if r.streak > r.Grace && !r.flagged {
		r.flagged = true
		c.Violations++
		v := Violation{Rule: r.Name, Modes: snapshot, At: c.now()}
		for _, fn := range c.onViol {
			fn(v)
		}
	}
}

// Recheck re-evaluates every rule against the current modes (time-based
// checking, for rules that can be violated without any new mode event).
func (c *Checker) Recheck() {
	for _, r := range c.rules {
		c.evaluate(r)
	}
}

func (c *Checker) now() sim.Time {
	if c.kernel != nil {
		return c.kernel.Now()
	}
	return 0
}
