package modecheck

import (
	"strings"
	"testing"

	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/koala"
	"trader/internal/sim"
	"trader/internal/tvsim"
)

func TestForbidPairDetects(t *testing.T) {
	c := NewChecker(nil, ForbidPair("txt-sync", "txt-disp", "visible", "txt-acq", "searching"))
	var got []Violation
	c.OnViolation(func(v Violation) { got = append(got, v) })

	c.Update("txt-disp", "visible")
	if len(got) != 0 {
		t.Fatal("rule must wait for all components to report")
	}
	c.Update("txt-acq", "acquiring")
	if len(got) != 0 {
		t.Fatal("consistent modes flagged")
	}
	c.Update("txt-acq", "searching")
	if len(got) != 1 {
		t.Fatalf("violations = %d, want 1", len(got))
	}
	if got[0].Rule != "txt-sync" || got[0].Modes["txt-acq"] != "searching" {
		t.Fatalf("violation = %+v", got[0])
	}
	if !strings.Contains(got[0].String(), "txt-sync") {
		t.Fatal("String should mention rule")
	}
}

func TestViolationReportedOncePerEpisode(t *testing.T) {
	c := NewChecker(nil, ForbidPair("r", "a", "bad", "b", "bad"))
	var got []Violation
	c.OnViolation(func(v Violation) { got = append(got, v) })
	c.Update("a", "bad")
	c.Update("b", "bad")
	c.Update("b", "bad")
	c.Update("a", "bad")
	if len(got) != 1 {
		t.Fatalf("violations = %d, want 1 per episode", len(got))
	}
	c.Update("b", "good") // episode ends
	c.Update("b", "bad")  // new episode
	if len(got) != 2 {
		t.Fatalf("violations = %d, want 2", len(got))
	}
}

func TestGraceToleratesTransients(t *testing.T) {
	r := ForbidPair("r", "a", "x", "b", "y")
	r.Grace = 2
	c := NewChecker(nil, r)
	n := 0
	c.OnViolation(func(Violation) { n++ })
	c.Update("a", "x")
	c.Update("b", "y") // violation 1 (tolerated)
	c.Update("b", "y") // violation 2 (tolerated)
	if n != 0 {
		t.Fatal("grace not applied")
	}
	c.Update("b", "y") // violation 3 → report
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
}

func TestMultiComponentRule(t *testing.T) {
	rule := Rule{
		Name:       "one-active-overlay",
		Components: []string{"menu", "txt", "epg"},
		Consistent: func(m map[string]string) bool {
			active := 0
			for _, mode := range m {
				if mode == "shown" {
					active++
				}
			}
			return active <= 1
		},
	}
	c := NewChecker(nil, rule)
	n := 0
	c.OnViolation(func(Violation) { n++ })
	c.Update("menu", "shown")
	c.Update("txt", "hidden")
	c.Update("epg", "hidden")
	c.Update("txt", "shown") // two overlays
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if c.Checks == 0 {
		t.Fatal("Checks not counted")
	}
}

func TestRecheck(t *testing.T) {
	c := NewChecker(nil, ForbidPair("r", "a", "x", "b", "y"))
	n := 0
	c.OnViolation(func(Violation) { n++ })
	c.Update("a", "x")
	c.Update("b", "y")
	if n != 1 {
		t.Fatal("setup")
	}
	// Recheck while still violated: flagged episode, no duplicate.
	c.Recheck()
	if n != 1 {
		t.Fatalf("Recheck duplicated a report")
	}
}

func TestAttachBusDecodesKoalaModes(t *testing.T) {
	k := sim.NewKernel(1)
	bus := event.NewBus()
	sys := koala.NewSystem(k, "s", bus)
	a := sys.AddComponent("a")
	b := sys.AddComponent("b")
	c := NewChecker(k, ForbidPair("r", "a", "x", "b", "y"))
	c.AttachBus(bus)
	var got []Violation
	c.OnViolation(func(v Violation) { got = append(got, v) })
	a.SetMode("x")
	b.SetMode("y")
	if len(got) != 1 {
		t.Fatalf("bus-driven violations = %d, want 1", len(got))
	}
	if c.Mode("a") != "x" {
		t.Fatalf("Mode(a) = %q", c.Mode("a"))
	}
	c.Detach()
	b.SetMode("z")
	if c.Mode("b") != "y" {
		t.Fatal("detached checker still updating")
	}
}

// The paper's scenario end-to-end: the TV's teletext sync loss produces a
// mode inconsistency the checker catches (E5).
func TestDetectsTVSyncLoss(t *testing.T) {
	k := sim.NewKernel(1)
	tv := tvsim.New(k, tvsim.Config{})
	checker := NewChecker(k, ForbidPair("teletext-sync",
		"txt-disp", "visible", "txt-acq", "searching"))
	checker.AttachBus(tv.Bus())
	var got []Violation
	checker.OnViolation(func(v Violation) { got = append(got, v) })

	tv.PressKey(tvsim.KeyPower)
	tv.PressKey(tvsim.KeyText)
	k.Run(sim.Second)
	if len(got) != 0 {
		t.Fatalf("healthy teletext flagged: %v", got)
	}
	tv.Injector().Schedule(faults.Fault{
		ID: "sync", Kind: faults.SyncLoss, Target: "teletext",
		At: k.Now(), Duration: sim.Second,
	})
	k.Run(k.Now() + 2*sim.Second)
	if len(got) != 1 {
		t.Fatalf("sync loss violations = %d, want 1", len(got))
	}
	if got[0].Rule != "teletext-sync" {
		t.Fatalf("violation = %+v", got[0])
	}
}
