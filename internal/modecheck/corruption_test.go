package modecheck

import (
	"testing"

	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/tvsim"
)

// validModes builds a single-component rule: the component's mode must stay
// within its legal mode set (catches ModeCorruption faults — "a wrong
// memory value" holding a mode variable).
func validModes(component string, legal ...string) Rule {
	set := map[string]bool{}
	for _, m := range legal {
		set[m] = true
	}
	return Rule{
		Name:       component + "-mode-valid",
		Components: []string{component},
		Consistent: func(modes map[string]string) bool {
			return set[modes[component]]
		},
	}
}

func TestDetectsModeCorruptionOnTV(t *testing.T) {
	k := sim.NewKernel(4)
	tv := tvsim.New(k, tvsim.Config{})
	checker := NewChecker(k,
		validModes("video", "standby", "playing", "dead"),
		validModes("audio", "standby", "active", "muted"),
	)
	checker.AttachBus(tv.Bus())
	var got []Violation
	checker.OnViolation(func(v Violation) { got = append(got, v) })

	tv.PressKey(tvsim.KeyPower)
	tv.PressKey(tvsim.KeyMute)
	tv.PressKey(tvsim.KeyMute)
	k.Run(sim.Second)
	if len(got) != 0 {
		t.Fatalf("legal mode traffic flagged: %v", got)
	}
	tv.Injector().Schedule(faults.Fault{
		ID: "mc", Kind: faults.ModeCorruption, Target: "video", At: k.Now(),
	})
	k.Run(k.Now() + 100*sim.Millisecond)
	if len(got) != 1 {
		t.Fatalf("violations = %d, want 1", len(got))
	}
	if got[0].Rule != "video-mode-valid" || got[0].Modes["video"] != "corrupt" {
		t.Fatalf("violation = %+v", got[0])
	}
}
