package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"trader/internal/event"
	"trader/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	dec := NewDecoder(&buf)
	ev := event.Event{Kind: event.Output, Name: "frame", Source: "video", At: 123}
	ev = ev.With("quality", 0.87)
	in := Message{Type: TypeOutput, SUO: "tv", Event: &ev, At: 123}
	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	out, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != TypeOutput || out.SUO != "tv" || out.Event == nil {
		t.Fatalf("out = %+v", out)
	}
	if v, ok := out.Event.Get("quality"); !ok || v != 0.87 {
		t.Fatalf("payload lost: %+v", out.Event)
	}
	if out.Event.Kind != event.Output || out.Event.At != 123 {
		t.Fatalf("event fields lost: %+v", out.Event)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i := 0; i < 10; i++ {
		ev := event.Event{Name: "key", Seq: uint64(i)}
		if err := enc.Encode(Message{Type: TypeInput, Event: &ev}); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i := 0; i < 10; i++ {
		m, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if m.Event.Seq != uint64(i) {
			t.Fatalf("frame %d out of order: %+v", i, m)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
}

func TestDecodeTruncatedHeader(t *testing.T) {
	dec := NewDecoder(bytes.NewReader([]byte{0, 0}))
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("truncated header should read as EOF, got %v", err)
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	dec := NewDecoder(&buf)
	if _, err := dec.Decode(); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

func TestDecodeOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	dec := NewDecoder(&buf)
	if _, err := dec.Decode(); err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("want too-large error, got %v", err)
	}
}

func TestDecodeGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 3)
	buf.Write(hdr[:])
	buf.WriteString("{{{")
	dec := NewDecoder(&buf)
	if _, err := dec.Decode(); err == nil {
		t.Fatal("expected unmarshal error")
	}
}

func TestErrorReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rep := ErrorReport{Detector: "comparator", Observable: "volume", Expected: 10, Actual: 3, Consecutive: 4, At: 99, Detail: "drift"}
	if err := NewEncoder(&buf).Encode(Message{Type: TypeError, Error: &rep}); err != nil {
		t.Fatal(err)
	}
	m, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if m.Error == nil || *m.Error != rep {
		t.Fatalf("error report mangled: %+v", m.Error)
	}
	if !strings.Contains(rep.String(), "comparator") {
		t.Fatal("String() should mention detector")
	}
}

func TestConnOverPipe(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ev := event.Event{Kind: event.Input, Name: "key", At: 5}
		if err := ca.SendEvent("tv", ev); err != nil {
			t.Errorf("SendEvent: %v", err)
		}
	}()
	m, err := cb.Decode()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if m.Type != TypeInput || m.SUO != "tv" || m.Event.Name != "key" {
		t.Fatalf("m = %+v", m)
	}
}

func TestSendEventKindMapping(t *testing.T) {
	var buf bytes.Buffer
	c := &Conn{Encoder: NewEncoder(&buf), Decoder: NewDecoder(&buf)}
	cases := map[event.Kind]MsgType{
		event.Input:  TypeInput,
		event.Output: TypeOutput,
		event.State:  TypeState,
	}
	for k, want := range cases {
		if err := c.SendEvent("s", event.Event{Kind: k}); err != nil {
			t.Fatal(err)
		}
		m, err := c.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != want {
			t.Fatalf("kind %v framed as %v, want %v", k, m.Type, want)
		}
	}
	if err := c.SendEvent("s", event.Event{Kind: event.Err}); err == nil {
		t.Fatal("Err kind should not be framable as an observation")
	}
}

func TestConcurrentEncode(t *testing.T) {
	a, b := net.Pipe()
	enc := NewEncoder(a)
	dec := NewDecoder(b)
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ev := event.Event{Name: "e", Seq: uint64(i)}
			_ = enc.Encode(Message{Type: TypeInput, Event: &ev})
		}(i)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		m, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if seen[m.Event.Seq] {
			t.Fatalf("duplicate seq %d — frames interleaved", m.Event.Seq)
		}
		seen[m.Event.Seq] = true
	}
	wg.Wait()
	a.Close()
	b.Close()
}

// Property: any event survives an encode/decode cycle bit-exactly.
func TestPropertyEventRoundTrip(t *testing.T) {
	f := func(name, source string, at int64, vals []float64, kindRaw uint8) bool {
		ev := event.Event{
			Kind: event.Kind(kindRaw % 3), Name: name, Source: source,
			At: sim.Time(at),
		}
		for i, v := range vals {
			if len(ev.Values) > 8 {
				break
			}
			ev.Values = append(ev.Values, event.Value{Name: string(rune('a' + i%26)), V: v})
		}
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(Message{Type: TypeInput, Event: &ev}); err != nil {
			return false
		}
		m, err := NewDecoder(&buf).Decode()
		if err != nil || m.Event == nil {
			return false
		}
		got := *m.Event
		if got.Kind != ev.Kind || got.Name != ev.Name || got.Source != ev.Source || got.At != ev.At {
			return false
		}
		if len(got.Values) != len(ev.Values) {
			return false
		}
		for i := range got.Values {
			if got.Values[i] != ev.Values[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// One outlier frame must not pin MaxFrame-sized storage for the
// connection's lifetime: both codec ends release their buffer past
// bufRetain (the decoder matters most — its frame sizes are peer-chosen).
func TestOutlierFrameBufferReleased(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	big := Message{Type: TypeError, Error: &ErrorReport{Detail: strings.Repeat("x", 4*bufRetain)}}
	if err := enc.Encode(big); err != nil {
		t.Fatal(err)
	}
	if cap(enc.buf) > bufRetain {
		t.Fatalf("encoder retained %d bytes after an outlier frame, cap is %d", cap(enc.buf), bufRetain)
	}
	// Steady-state small frames keep their storage between Encodes.
	small := Message{Type: TypeHeartbeat, At: 7}
	if err := enc.Encode(small); err != nil {
		t.Fatal(err)
	}
	before := cap(enc.buf)
	if err := enc.Encode(small); err != nil {
		t.Fatal(err)
	}
	if before == 0 || cap(enc.buf) != before {
		t.Fatalf("small-frame buffer not reused: cap %d -> %d", before, cap(enc.buf))
	}
	// Everything written stays decodable, and the decoder drops its own
	// storage after the outlier while reusing it for the small frames.
	dec := NewDecoder(&buf)
	for i, want := range []MsgType{TypeError, TypeHeartbeat, TypeHeartbeat} {
		m, err := dec.Decode()
		if err != nil || m.Type != want {
			t.Fatalf("frame %d: got %q, %v; want %q", i, m.Type, err, want)
		}
		if cap(dec.buf) > bufRetain {
			t.Fatalf("frame %d: decoder retained %d bytes, cap is %d", i, cap(dec.buf), bufRetain)
		}
	}
}

// A server that refuses a client pre-registration answers the handshake
// itself with an error frame, so Handshake (and Dial) fails synchronously
// with the reason instead of reporting success for a doomed connection.
func TestRejectHelloFailsClientHandshake(t *testing.T) {
	cend, send := net.Pipe()
	defer cend.Close()
	defer send.Close()
	server := NewConn(send)
	go func() {
		hello, err := server.ReadHello()
		if err != nil {
			return
		}
		_ = server.RejectHello(hello.SUO, "fleet is full")
		send.Close()
	}()
	client := NewConn(cend)
	_, err := client.Handshake("tv-1", CodecBinary)
	if err == nil {
		t.Fatal("Handshake should fail on a rejection reply")
	}
	if !strings.Contains(err.Error(), "fleet is full") {
		t.Fatalf("Handshake error = %v, want the server's detail", err)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	ev := event.Event{Kind: event.Output, Name: "frame", Source: "video", At: 123}
	ev = ev.With("q", 0.9).With("fps", 50)
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	dec := NewDecoder(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		_ = enc.Encode(Message{Type: TypeOutput, Event: &ev})
		_, _ = dec.Decode()
	}
}
