// Package wire implements the message protocol spoken across the process
// boundary of the awareness framework (paper Fig. 2): the System Under
// Observation and the awareness monitor are separate processes connected by
// Unix domain sockets. Messages are length-prefixed JSON frames; the framing
// is transport-agnostic so tests can run over net.Pipe and the daemons over
// *net.UnixConn.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"trader/internal/event"
	"trader/internal/sim"
)

// MsgType discriminates frames.
type MsgType string

// Message types, one per interface arrow in Fig. 2.
const (
	TypeHello     MsgType = "hello"     // SUO → monitor: identification
	TypeInput     MsgType = "input"     // SUO → monitor: IInputEvent
	TypeOutput    MsgType = "output"    // SUO → monitor: IOutputEvent
	TypeState     MsgType = "state"     // SUO → monitor: internal state/mode info
	TypeControl   MsgType = "control"   // monitor → SUO: IControl
	TypeError     MsgType = "error"     // monitor → SUO/operator: IErrorNotify
	TypeHeartbeat MsgType = "heartbeat" // liveness probe, both directions
	TypeSpecInfo  MsgType = "spec_info" // monitor internal: ISpecInfo snapshot
)

// ControlCommand is carried by TypeControl frames.
type ControlCommand string

// Control commands the monitor can send to an adapted SUO.
const (
	CtrlStart   ControlCommand = "start"
	CtrlStop    ControlCommand = "stop"
	CtrlReset   ControlCommand = "reset"
	CtrlRecover ControlCommand = "recover" // ask the SUO to run a recovery action
)

// ErrorReport describes a detected error (monitor → operator/SUO).
type ErrorReport struct {
	Detector    string   `json:"detector"`   // which detector fired
	Observable  string   `json:"observable"` // offending observable, if any
	Expected    float64  `json:"expected"`
	Actual      float64  `json:"actual"`
	Consecutive int      `json:"consecutive"` // deviations in a row
	At          sim.Time `json:"at"`
	Detail      string   `json:"detail,omitempty"`
}

func (r ErrorReport) String() string {
	return fmt.Sprintf("[%s] %s: %s expected=%g actual=%g (consecutive=%d) %s",
		r.At, r.Detector, r.Observable, r.Expected, r.Actual, r.Consecutive, r.Detail)
}

// Message is one frame.
type Message struct {
	Type MsgType `json:"type"`
	// SUO identifies the system under observation (Hello, and echoed after).
	SUO string `json:"suo,omitempty"`
	// Event carries input/output/state observations.
	Event *event.Event `json:"event,omitempty"`
	// Control carries a command.
	Control ControlCommand `json:"control,omitempty"`
	// Target optionally narrows a control command to one component.
	Target string `json:"target,omitempty"`
	// Error carries an error report.
	Error *ErrorReport `json:"error,omitempty"`
	// At is the sender's virtual time.
	At sim.Time `json:"at,omitempty"`
}

// MaxFrame bounds a frame's payload size; oversized frames indicate protocol
// corruption and are rejected.
const MaxFrame = 1 << 20

// Encoder writes frames to w. Safe for concurrent use.
type Encoder struct {
	mu sync.Mutex
	w  io.Writer
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode writes one frame.
func (e *Encoder) Encode(m Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame too large: %d bytes", len(payload))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := e.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	return nil
}

// Decoder reads frames from r.
type Decoder struct {
	r io.Reader
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Decode reads one frame. It returns io.EOF on clean stream end.
func (d *Decoder) Decode() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Message{}, fmt.Errorf("wire: frame too large: %d bytes", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return Message{}, fmt.Errorf("wire: read payload: %w", err)
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return Message{}, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return m, nil
}

// Conn couples an Encoder and Decoder over one duplex stream.
type Conn struct {
	*Encoder
	*Decoder
	c io.Closer
}

// NewConn wraps a duplex stream. closer may be nil.
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{Encoder: NewEncoder(rw), Decoder: NewDecoder(rw)}
	if cl, ok := rw.(io.Closer); ok {
		c.c = cl
	}
	return c
}

// Close closes the underlying stream if it is closable.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// SendEvent is a convenience for the SUO side: it frames an observation.
func (c *Conn) SendEvent(suo string, e event.Event) error {
	var t MsgType
	switch e.Kind {
	case event.Input:
		t = TypeInput
	case event.Output:
		t = TypeOutput
	case event.State:
		t = TypeState
	default:
		return fmt.Errorf("wire: cannot frame event kind %v", e.Kind)
	}
	return c.Encode(Message{Type: t, SUO: suo, Event: &e, At: e.At})
}
