// Package wire implements the message protocol spoken across the process
// boundary of the awareness framework (paper Fig. 2): the System Under
// Observation and the awareness monitor are separate processes connected by
// Unix domain sockets or TCP. Messages are length-prefixed frames; the
// payload encoding is pluggable (JSON by default, a compact binary codec
// negotiated in the Hello exchange — see Codec), and the framing is
// transport-agnostic so tests can run over net.Pipe and the daemons over
// real sockets.
//
// The full protocol — frame layout, message types, codec negotiation,
// heartbeats — is specified in ARCHITECTURE.md at the repository root.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"trader/internal/event"
	"trader/internal/sim"
)

// MsgType discriminates frames.
type MsgType string

// Message types, one per interface arrow in Fig. 2.
const (
	TypeHello     MsgType = "hello"     // SUO → monitor: identification
	TypeInput     MsgType = "input"     // SUO → monitor: IInputEvent
	TypeOutput    MsgType = "output"    // SUO → monitor: IOutputEvent
	TypeState     MsgType = "state"     // SUO → monitor: internal state/mode info
	TypeControl   MsgType = "control"   // monitor → SUO: IControl
	TypeError     MsgType = "error"     // monitor → SUO/operator: IErrorNotify
	TypeHeartbeat MsgType = "heartbeat" // liveness probe, both directions
	TypeSpecInfo  MsgType = "spec_info" // monitor internal: ISpecInfo snapshot
	TypeAck       MsgType = "ack"       // SUO → monitor: control command honored
	// TypeSnapshotReq (monitor → SUO) asks the device to capture its
	// flight-recorder coverage spectrum; TypeSnapshot (SUO → monitor)
	// answers with the captured windows. The fleet diagnosis plane
	// (internal/diagnose) pulls these as localization evidence.
	TypeSnapshotReq MsgType = "snapshot_req"
	TypeSnapshot    MsgType = "snapshot"
	// TypeCheckpoint records a supervisor-captured state snapshot in the
	// frame journal: monitor, shard-counter, controller or diagnosis state
	// at a consistent capture instant. Checkpoint records never cross a
	// live connection; replay resumes from the newest complete checkpoint
	// and replays only the delta after it.
	TypeCheckpoint MsgType = "checkpoint"
	// TypeCredit (monitor → SUO) replenishes a connection's frame-credit
	// window mid-stream: Credits carries a delta grant, restoring credits
	// the server has consumed. Grants also piggyback on Hello replies (the
	// initial window) and heartbeat echoes; a standalone TypeCredit frame
	// keeps a fast-but-compliant sender from stalling between heartbeats
	// while its shard queue is shallow. See ARCHITECTURE.md §2.8.
	TypeCredit MsgType = "credit"
	// TypeShed records load-shedding in the frame journal: how many of a
	// device's frames the server dropped under queue pressure since the
	// previous marker (the Shed payload). Shed frames themselves are never
	// journaled — they were refused — so replaying the journal rebuilds
	// exactly the admitted stream; the markers restore the shed counters so
	// fleet rollups still balance. Shed markers never cross a live
	// connection.
	TypeShed MsgType = "shed"
	// TypeRollup (edge ⇄ aggregator) streams the federation tier's
	// rollup-delta protocol: an edge periodically flushes the signed delta
	// of its cumulative fleet counters since the last acknowledged flush
	// (the Rollup payload), and the aggregator replies with a TypeAck whose
	// At field echoes Rollup.Seq. The aggregator also sends one TypeRollup
	// downstream right after the Hello exchange — the resume baseline: the
	// cumulative totals it has already credited to that edge, so a
	// reconnecting edge resumes the delta stream without double counting.
	// See ARCHITECTURE.md §7.2.
	TypeRollup MsgType = "rollup"
	// TypeHandoff carries a live device migration (edge ⇄ aggregator) and
	// doubles as the journal record that makes ownership changes
	// replayable: the Handoff payload names source and destination edge,
	// SUO names the device, and the frame-level Checkpoint payload carries
	// the device's monitor snapshot captured behind the migration barrier.
	// Journaled write-ahead on both edges (Handoff.Out distinguishes the
	// departure record from the arrival record) and on the aggregator (the
	// range-map repoint). See ARCHITECTURE.md §7.3.
	TypeHandoff MsgType = "handoff"
	// TypeSpectrumDelta (SUO → monitor) piggybacks one closed coverage
	// window of the device's spectral flight recorder on the heartbeat
	// cadence, as a sparse delta: only the packed words the window actually
	// touched (the Delta payload). It is the continuous-diagnosis
	// counterpart of the pulled TypeSnapshot — bounded bytes per frame,
	// every heartbeat, no request needed. Deltas share the recorder's
	// window sequence space with snapshots, so the diagnosis engine's fold
	// watermark dedups the two evidence paths. The server sheds deltas with
	// observations (tier 1), never with control traffic; accepted deltas
	// are journaled by the diagnosis engine, labeled, write-ahead of
	// folding — not by the server. See ARCHITECTURE.md §5.5.
	TypeSpectrumDelta MsgType = "spectrum_delta"
)

// Role is the connection role a client declares in its Hello. Empty means a
// device (SUO) connection — the only role that existed before the
// federation tier — so every pre-federation client remains valid.
const (
	// RoleEdge marks an edge-ingester uplink to an aggregator: the
	// connection speaks the rollup-delta and handoff protocol of
	// ARCHITECTURE.md §7 instead of the device observation protocol.
	RoleEdge = "edge"
)

// Durability is the ack class a connection negotiates in the Hello
// exchange: what a heartbeat echo from a journaling server promises about
// the frames sent before it.
type Durability string

// Durability classes. The client requests one in its Hello; the server
// grants a class in the reply (never a stronger promise than it keeps).
const (
	// DurFsync: the echo means every earlier frame is monitored AND
	// durable (group-commit fsync). The default, and the only class a
	// journal-less server meaningfully grants.
	DurFsync Durability = "fsync"
	// DurDispatch: the echo means every earlier frame is monitored and
	// accepted into the journal's write path, but not necessarily synced;
	// a crash may lose the unsynced tail. The long-tail class that keeps
	// heartbeats off the platter.
	DurDispatch Durability = "dispatch"
)

// DurabilityByName vets a requested durability class; unknown or empty
// requests fall back to DurFsync (the strongest promise is the safe
// default) with ok=false.
func DurabilityByName(name string) (d Durability, ok bool) {
	switch Durability(name) {
	case DurDispatch:
		return DurDispatch, true
	case DurFsync:
		return DurFsync, true
	default:
		return DurFsync, name == ""
	}
}

// ControlCommand is carried by TypeControl frames.
type ControlCommand string

// Control commands the monitor can send to an adapted SUO. The recovery
// control plane (internal/control) pushes the last three as escalation
// actions; a SUO that honors one answers with a TypeAck frame echoing the
// command, so the controller can tell actuation from silence.
const (
	CtrlStart   ControlCommand = "start"
	CtrlStop    ControlCommand = "stop"
	CtrlReset   ControlCommand = "reset"   // clear erroneous state; monitoring re-arms
	CtrlRecover ControlCommand = "recover" // ask the SUO to run a recovery action
	// CtrlRestart asks the SUO to restart as a recoverable unit: drop the
	// connection, re-handshake, resume streaming from its current time.
	CtrlRestart ControlCommand = "restart"
	// CtrlQuarantine takes the SUO out of service: the monitor stops
	// dispatching to it and its connection is closed; the SUO must stop
	// streaming.
	CtrlQuarantine ControlCommand = "quarantine"
	// CtrlMigrate (aggregator → edge, federation tier) asks the edge to
	// migrate the device named in SUO to the edge named in Target: drain
	// behind the shard barrier, capture, journal the departure, send a
	// TypeHandoff frame upstream. The destination edge acks the completed
	// restore with a TypeAck echoing this command. ARCHITECTURE.md §7.3.
	CtrlMigrate ControlCommand = "migrate"
	// CtrlAdopt (aggregator → edge, federation tier) asks a surviving edge
	// to absorb a dead peer: SUO names the dead edge, Target its
	// advertised journal directory. The survivor replays the journal,
	// re-journals every recovered device as a handoff arrival plus the
	// peer's pool counters as an adopted baseline, and acks with a TypeAck
	// echoing this command — at which point the aggregator repoints the
	// dead edge's ranges. ARCHITECTURE.md §7.4.
	CtrlAdopt ControlCommand = "adopt"
)

// Ack builds the SUO-side acknowledgement frame for a control command the
// SUO has honored. At carries the SUO's virtual time, vetted by the server
// like any other client-supplied timestamp.
func Ack(suo string, cmd ControlCommand, at sim.Time) Message {
	return Message{Type: TypeAck, SUO: suo, Control: cmd, At: at}
}

// ErrorReport describes a detected error (monitor → operator/SUO).
type ErrorReport struct {
	Detector    string   `json:"detector"`   // which detector fired
	Observable  string   `json:"observable"` // offending observable, if any
	Expected    float64  `json:"expected"`
	Actual      float64  `json:"actual"`
	Consecutive int      `json:"consecutive"` // deviations in a row
	At          sim.Time `json:"at"`
	Detail      string   `json:"detail,omitempty"`
}

func (r ErrorReport) String() string {
	return fmt.Sprintf("[%s] %s: %s expected=%g actual=%g (consecutive=%d) %s",
		r.At, r.Detector, r.Observable, r.Expected, r.Actual, r.Consecutive, r.Detail)
}

// SpectrumWindow is one heartbeat-delimited block-coverage window of a
// device's spectral flight recorder: which instrumented blocks executed
// between two heartbeats, as the packed 64-bit words of a
// spectrum.BitSet (bit i of the program lives in word i/64). Seq numbers
// windows monotonically per device; At is the device's virtual time when
// the window closed (0 for the still-open window).
type SpectrumWindow struct {
	Seq   uint64   `json:"seq"`
	At    sim.Time `json:"at,omitempty"`
	Words []uint64 `json:"words,omitempty"`
}

// SpectrumDelta is the payload of a TypeSpectrumDelta frame: one closed
// coverage window as a sparse word list. Seq is the window's sequence
// number in the device recorder's window space (shared with the windows a
// TypeSnapshot carries, so one per-device fold watermark orders both
// evidence paths); Blocks is the instrumented block count, vetted against
// the fleet's program layout exactly like Snapshot.Blocks. Index holds the
// strictly ascending packed-word indices whose 64-bit coverage words are
// nonzero, Words the matching words — only what the window touched, which
// is what keeps the per-heartbeat cost bounded: a window touching b blocks
// costs at most b/64+b words on the wire regardless of program size.
type SpectrumDelta struct {
	Seq    uint64   `json:"seq"`
	Blocks int      `json:"blocks"`
	Index  []uint32 `json:"index,omitempty"`
	Words  []uint64 `json:"words,omitempty"`
}

// Snapshot is the payload of a TypeSnapshot frame: the device's retained
// coverage windows plus flight-recorder context. Blocks is the instrumented
// block count the windows are sized for — fleet-level folding only accepts
// snapshots whose Blocks matches the fleet's program layout.
type Snapshot struct {
	Blocks int `json:"blocks"`
	// Events and Dropped describe the event flight recorder at capture
	// time: how many raw events the ring retains and how many fell off.
	Events  uint64 `json:"events,omitempty"`
	Dropped uint64 `json:"dropped,omitempty"`
	// Windows are the retained coverage windows, oldest first.
	Windows []SpectrumWindow `json:"windows,omitempty"`
}

// Message is one frame.
type Message struct {
	Type MsgType `json:"type"`
	// SUO identifies the system under observation (Hello, and echoed after).
	SUO string `json:"suo,omitempty"`
	// Event carries input/output/state observations.
	Event *event.Event `json:"event,omitempty"`
	// Control carries a command.
	Control ControlCommand `json:"control,omitempty"`
	// Target optionally narrows a control command to one component.
	Target string `json:"target,omitempty"`
	// Error carries an error report.
	Error *ErrorReport `json:"error,omitempty"`
	// At is the sender's virtual time.
	At sim.Time `json:"at,omitempty"`
	// Codec is carried by Hello frames only: the client's requested payload
	// codec, and the server's accepted one in the reply. Empty means JSON.
	Codec string `json:"codec,omitempty"`
	// Snapshot carries a device's coverage evidence (TypeSnapshot frames;
	// in journals the Target field labels it "fail" or "pass").
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// Durability is carried by Hello frames only: the client's requested
	// ack class, and the server's granted one in the reply. Empty means
	// fsync (the strongest promise).
	Durability Durability `json:"durability,omitempty"`
	// Checkpoint carries a captured state snapshot (TypeCheckpoint frames,
	// journal-only).
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
	// Credits is a frame-credit grant (flow control): on Hello replies the
	// connection's initial window, on heartbeat echoes and TypeCredit
	// frames a delta restoring credits the server has consumed. Zero means
	// no grant; a Hello reply with zero credits means the server does not
	// enforce flow control on this connection.
	Credits uint32 `json:"credits,omitempty"`
	// Shed carries a shed-marker record (TypeShed frames, journal-only).
	Shed *ShedRecord `json:"shed,omitempty"`
	// Role is carried by Hello frames only: the client's declared
	// connection role (RoleEdge for an edge uplink), echoed in the server's
	// reply when accepted. Empty means a device connection.
	Role string `json:"role,omitempty"`
	// Rollup carries a federation rollup delta (TypeRollup frames).
	Rollup *RollupDelta `json:"rollup,omitempty"`
	// Handoff carries a device-migration handoff (TypeHandoff frames and
	// journal records; also attached to edge Hello frames as the range
	// claim — see HandoffRecord).
	Handoff *HandoffRecord `json:"handoff,omitempty"`
	// Delta carries one sparse coverage-window delta (TypeSpectrumDelta
	// frames; in journals the Target field labels it "fail" or "pass",
	// exactly like labeled snapshot evidence).
	Delta *SpectrumDelta `json:"delta,omitempty"`
	// Trace carries the frame's trace context (§6 observability plane):
	// sampled control pushes attach it so the device's ack echoes it back,
	// and edge rollup frames attach the edge's current tail-latency
	// exemplar so the aggregator can resolve a p999 spike to the span
	// chain that produced it. Absent on unsampled traffic — pre-tracing
	// peers round-trip unchanged.
	Trace *TraceContext `json:"trace,omitempty"`
}

// TraceContext is the wire-propagated identity of one traced frame
// lifecycle: a fleet-unique trace ID plus the span the receiver should
// parent its own spans under. It crosses tiers — daemon → device on
// control pushes (echoed on the ack), edge → aggregator on rollup frames —
// so a span chain reconstructs causality across process boundaries without
// log correlation. IDs render as %016x hex in every export.
type TraceContext struct {
	TraceID uint64 `json:"trace_id"`
	Parent  uint64 `json:"parent,omitempty"`
}

// RollupDelta is the payload of a TypeRollup frame: the signed change in an
// edge's cumulative fleet counters since its last acknowledged flush. Every
// fleet-level statistic in this repo is an order-independent integer fold,
// so deltas compose exactly: the aggregator's merged view is the plain sum
// of the deltas it has credited, regardless of arrival order across edges.
// Deltas are signed because live migration moves a device's monitor
// counters to another edge — the source's cumulative rollup legitimately
// decreases by exactly what the destination's gains.
type RollupDelta struct {
	// Seq numbers the edge's flushes monotonically from 1; the aggregator
	// acks a delta with a TypeAck frame whose At field carries Seq, and
	// ignores (but still acks) any Seq it has already credited, making the
	// delta stream idempotent across reconnects. In the aggregator's resume
	// baseline Seq is the last sequence number it credited (0 if none).
	Seq uint64 `json:"seq,omitempty"`
	// Devices is the edge's absolute live-device count at flush time — a
	// gauge, not a delta, so a restarted aggregator cannot drift it.
	Devices int64 `json:"devices,omitempty"`
	// Counters are the named signed counter deltas (cumulative in the
	// resume baseline). Zero-delta counters are omitted.
	Counters []RollupCounter `json:"counters,omitempty"`
}

// RollupCounter is one named signed counter delta.
type RollupCounter struct {
	Name string `json:"name"`
	V    int64  `json:"v"`
}

// HandoffRecord is the payload of a TypeHandoff frame or journal record —
// and, attached to an edge's Hello, the edge's range claim. The three uses
// share the struct so the codec and the journal speak one layout:
//
//   - Edge Hello claim: From is the edge ID, Range/Of the contiguous
//     device-ID hash range it serves (range Range of Of, fleet.RangeOf),
//     Dir its journal directory (advertised so the aggregator can direct a
//     surviving edge to adopt it after a crash; empty when not journaling).
//   - Migration frame: SUO on the enclosing Message names the device, From
//     and To the edges, Pos the source journal's record count at capture,
//     and the Message's Checkpoint payload the monitor snapshot.
//   - Journal record: the source edge journals the frame with Out=true
//     before releasing the device (replay removes it); the destination
//     journals it with Out=false before restoring (replay rebuilds it).
//     The aggregator journals range repoints (Range set, no checkpoint).
type HandoffRecord struct {
	From  string `json:"from,omitempty"`
	To    string `json:"to,omitempty"`
	Pos   uint64 `json:"pos,omitempty"`
	Range int    `json:"range,omitempty"`
	Of    int    `json:"of,omitempty"`
	Dir   string `json:"dir,omitempty"`
	Out   bool   `json:"out,omitempty"`
}

// ShedRecord is the payload of a TypeShed journal record: how many of one
// device's frames the ingestion server shed under queue pressure since the
// previous marker for that device, by tier. Control/diagnosis traffic has
// no field here by design — it is never shed.
type ShedRecord struct {
	Observations uint64 `json:"observations,omitempty"`
	Heartbeats   uint64 `json:"heartbeats,omitempty"`
}

// Checkpoint planes: which subsystem's state a checkpoint record captures.
const (
	// PlaneDevice: one device's monitor state (stats counters, observable
	// states, model variables/configuration) at Checkpoint.At.
	PlaneDevice = "device"
	// PlaneShard: one journal shard's pool counters. The terminal record
	// of every shard's checkpoint batch (Final=true); a batch without it
	// is incomplete and not a valid resume point.
	PlaneShard = "shard"
	// PlaneControl: the recovery controller's escalation ladder and tally.
	PlaneControl = "control"
	// PlaneFleet: a whole pool's summed traffic counters, carried on the
	// TypeHandoff baseline record an edge journals when it adopts a dead
	// peer's journal (ARCHITECTURE.md §7.4). Replay re-applies it as an
	// additive rollup baseline keyed by the source edge, never colliding
	// with the pool's own PlaneShard baselines.
	PlaneFleet = "fleet"
	// PlaneDiagnose: the fleet diagnosis spectrum, fold watermarks and
	// tally.
	PlaneDiagnose = "diagnose"
)

// Checkpoint is the payload of a TypeCheckpoint record: a flat, codec-
// friendly rendering of one plane's captured state. Which fields are
// populated depends on Plane; names in the list fields are plane-specific
// (see internal/core, internal/fleet, internal/control, internal/diagnose
// for the producing/consuming sides, and ARCHITECTURE.md §3 for the record
// format).
type Checkpoint struct {
	Plane string `json:"plane"`
	// Shard is the journal shard the captured state belongs to.
	Shard int `json:"shard,omitempty"`
	// Seq is the checkpoint generation, monotonic per journal; every
	// record of one capture carries the same Seq.
	Seq uint64 `json:"seq,omitempty"`
	// Final marks the terminal record of a shard's checkpoint batch: the
	// batch is complete — and a valid replay resume point — only once its
	// Final record is durable.
	Final bool `json:"final,omitempty"`
	// Profile is the -suo monitor profile the journal's frames are
	// observed under, carried on Final records so the profile marker
	// survives segment truncation.
	Profile string `json:"profile,omitempty"`
	// At is the capture virtual time (device planes).
	At sim.Time `json:"at,omitempty"`

	Counters []CheckpointCounter `json:"counters,omitempty"`
	Vars     []CheckpointVar     `json:"vars,omitempty"`
	States   []CheckpointState   `json:"states,omitempty"`
	Obs      []CheckpointObs     `json:"obs,omitempty"`
	Devices  []CheckpointDevice  `json:"devices,omitempty"`

	// Spectrum state (diagnose plane): sparse nonzero per-block fail/pass
	// execution counters over a Blocks-sized program layout.
	Blocks int              `json:"blocks,omitempty"`
	NFail  int              `json:"nfail,omitempty"`
	NPass  int              `json:"npass,omitempty"`
	Cells  []CheckpointCell `json:"cells,omitempty"`

	// Parts are the per-verdict evidence partitions of a continuous
	// diagnosis engine (multi-fault disambiguation): each carries its own
	// sparse spectrum alongside the merged Cells above.
	Parts []CheckpointPart `json:"parts,omitempty"`
}

// CheckpointCounter is one named uint64 counter.
type CheckpointCounter struct {
	Name string `json:"name"`
	V    uint64 `json:"v"`
}

// CheckpointVar is one named float state value (model variables, observable
// last values).
type CheckpointVar struct {
	Name string  `json:"name"`
	V    float64 `json:"v"`
}

// CheckpointState is one named string state value (region current leaves,
// shallow-history entries).
type CheckpointState struct {
	Name string `json:"name"`
	V    string `json:"v"`
}

// CheckpointObs is one observable's comparator state.
type CheckpointObs struct {
	Name        string   `json:"name"`
	Consecutive int      `json:"consecutive,omitempty"`
	InError     bool     `json:"inError,omitempty"`
	EverSeen    bool     `json:"everSeen,omitempty"`
	Silenced    bool     `json:"silenced,omitempty"`
	LastValue   float64  `json:"lastValue,omitempty"`
	LastSeen    sim.Time `json:"lastSeen,omitempty"`
}

// CheckpointDevice is one device's plane-specific packed state (controller
// ladder position, diagnosis fold watermark, ...).
type CheckpointDevice struct {
	ID    string   `json:"id"`
	At    sim.Time `json:"at,omitempty"`
	Stats []uint64 `json:"stats,omitempty"`
}

// CheckpointCell is one block's sparse spectrum counters.
type CheckpointCell struct {
	Block uint32 `json:"block"`
	Fail  uint32 `json:"fail,omitempty"`
	Pass  uint32 `json:"pass,omitempty"`
}

// CheckpointPart is one evidence partition of a continuous diagnosis
// checkpoint: the suspect device the partition tracks and its own sparse
// spectrum (same cell representation as the merged spectrum).
type CheckpointPart struct {
	ID    string           `json:"id"`
	NFail int              `json:"nfail,omitempty"`
	NPass int              `json:"npass,omitempty"`
	Cells []CheckpointCell `json:"cells,omitempty"`
}

// MaxFrame bounds a frame's payload size; oversized frames indicate protocol
// corruption and are rejected.
const MaxFrame = 1 << 20

// bufRetain caps the frame-buffer capacity an Encoder or Decoder keeps
// between frames. One unusually large frame (up to MaxFrame) must not pin
// ~1 MiB for the connection's lifetime — on a daemon hosting very large
// fleets of mostly-small-frame connections that adds up — so storage beyond
// the cap is released once the frame is processed.
const bufRetain = 64 << 10

// Encoder writes frames to w. Safe for concurrent use.
type Encoder struct {
	mu    sync.Mutex
	w     io.Writer
	codec Codec
	// buf is the reused frame buffer: 4-byte header + payload, written in a
	// single Write so concurrent encoders never interleave partial frames.
	buf []byte
}

// NewEncoder returns an Encoder writing JSON-codec frames to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w, codec: JSON} }

// SetCodec switches the payload codec for subsequent frames. It
// synchronises with in-flight Encodes; callers sequence it against the
// protocol (after the Hello exchange).
func (e *Encoder) SetCodec(c Codec) {
	e.mu.Lock()
	e.codec = c
	e.mu.Unlock()
}

// Encode writes one frame.
func (e *Encoder) Encode(m Message) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cap(e.buf) < 4 {
		e.buf = make([]byte, 4, 512)
	}
	buf, err := e.codec.Append(e.buf[:4], m)
	if err != nil {
		return err
	}
	if cap(buf) > bufRetain {
		e.buf = nil // outlier frame: release the storage after this write
	} else {
		e.buf = buf[:4] // keep the (possibly grown) storage for the next frame
	}
	n := len(buf) - 4
	if n > MaxFrame {
		return fmt.Errorf("wire: frame too large: %d bytes", n)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(n))
	if _, err := e.w.Write(buf); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// Decoder reads frames from r. Not safe for concurrent use: the payload
// buffer is reused between Decode calls (codecs copy what they keep, so the
// returned Messages themselves are independent of it).
type Decoder struct {
	r     io.Reader
	codec Codec
	// buf is the reused payload buffer, grown on demand so steady-state
	// decoding performs no per-frame buffer allocation; an outlier frame
	// that grows it past bufRetain releases it after decoding.
	buf []byte
}

// NewDecoder returns a Decoder reading JSON-codec frames from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r, codec: JSON} }

// SetCodec switches the payload codec for subsequent frames.
func (d *Decoder) SetCodec(c Codec) { d.codec = c }

// Decode reads one frame. It returns io.EOF on clean stream end.
func (d *Decoder) Decode() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Message{}, fmt.Errorf("wire: frame too large: %d bytes", n)
	}
	if uint32(cap(d.buf)) < n {
		d.buf = make([]byte, n)
	}
	payload := d.buf[:n]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return Message{}, fmt.Errorf("wire: read payload: %w", err)
	}
	var m Message
	err := d.codec.Unmarshal(payload, &m)
	if cap(d.buf) > bufRetain {
		d.buf = nil // outlier frame: release the storage (see bufRetain)
	}
	if err != nil {
		return Message{}, err
	}
	return m, nil
}

// Conn couples an Encoder and Decoder over one duplex stream.
type Conn struct {
	*Encoder
	*Decoder
	c io.Closer
}

// NewConn wraps a duplex stream. closer may be nil.
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{Encoder: NewEncoder(rw), Decoder: NewDecoder(rw)}
	if cl, ok := rw.(io.Closer); ok {
		c.c = cl
	}
	return c
}

// Close closes the underlying stream if it is closable.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// SetCodec switches both directions of the connection to the codec.
func (c *Conn) SetCodec(codec Codec) {
	c.Encoder.SetCodec(codec)
	c.Decoder.SetCodec(codec)
}

// Handshake performs the client side of the Hello exchange: it sends a
// Hello frame identifying the SUO and requesting the named codec (empty or
// "json" for the default), waits for the server's Hello reply, and switches
// the connection to the codec the server accepted. It returns that codec.
// Hello frames always travel as JSON, so negotiation works regardless of
// the outcome.
func (c *Conn) Handshake(suo, codec string) (Codec, error) {
	accepted, _, err := c.HandshakeTiered(suo, codec, "")
	return accepted, err
}

// HandshakeTiered is Handshake with a durability-class request: the Hello
// additionally asks for the named ack class (empty for fsync, the
// strongest), and the granted class from the server's reply is returned
// next to the accepted codec. Servers from before tiered durability leave
// the reply field empty, which vets back to fsync — the promise they
// actually keep.
func (c *Conn) HandshakeTiered(suo, codec string, dur Durability) (Codec, Durability, error) {
	accepted, granted, _, err := c.HandshakeFlow(suo, codec, dur)
	return accepted, granted, err
}

// HandshakeFlow is HandshakeTiered additionally surfacing the initial
// frame-credit window the server's Hello reply grants. A zero window means
// the server does not enforce flow control: the client may stream freely.
// A non-zero window obliges the client to spend one credit per observation
// frame and to stop sending observations at zero until a heartbeat echo or
// TypeCredit frame replenishes it — a peer that keeps sending is
// disconnected as hostile.
func (c *Conn) HandshakeFlow(suo, codec string, dur Durability) (Codec, Durability, uint32, error) {
	if err := c.Encode(Message{Type: TypeHello, SUO: suo, Codec: codec, Durability: dur}); err != nil {
		return nil, "", 0, fmt.Errorf("wire: handshake send: %w", err)
	}
	reply, err := c.Decode()
	if err != nil {
		return nil, "", 0, fmt.Errorf("wire: handshake reply: %w", err)
	}
	if reply.Type == TypeError && reply.Error != nil {
		return nil, "", 0, fmt.Errorf("wire: handshake rejected: %s", reply.Error.Detail)
	}
	if reply.Type != TypeHello {
		return nil, "", 0, fmt.Errorf("wire: handshake reply has type %q, want %q", reply.Type, TypeHello)
	}
	accepted, _ := CodecByName(reply.Codec)
	c.SetCodec(accepted)
	granted, _ := DurabilityByName(string(reply.Durability))
	return accepted, granted, reply.Credits, nil
}

// HandshakeEdge performs the client side of the Hello exchange for an edge
// uplink (federation tier, ARCHITECTURE.md §7.1): the Hello declares
// RoleEdge, names the edge in SUO, and attaches the edge's range claim as a
// Handoff payload. The aggregator's reply must echo RoleEdge — an empty
// role in the reply means the server predates (or refuses) federation and
// the uplink must not proceed. Returns the accepted codec.
func (c *Conn) HandshakeEdge(edgeID, codec string, claim HandoffRecord) (Codec, error) {
	err := c.Encode(Message{Type: TypeHello, SUO: edgeID, Codec: codec,
		Role: RoleEdge, Handoff: &claim})
	if err != nil {
		return nil, fmt.Errorf("wire: edge handshake send: %w", err)
	}
	reply, err := c.Decode()
	if err != nil {
		return nil, fmt.Errorf("wire: edge handshake reply: %w", err)
	}
	if reply.Type == TypeError && reply.Error != nil {
		return nil, fmt.Errorf("wire: edge handshake rejected: %s", reply.Error.Detail)
	}
	if reply.Type != TypeHello {
		return nil, fmt.Errorf("wire: edge handshake reply has type %q, want %q", reply.Type, TypeHello)
	}
	if reply.Role != RoleEdge {
		return nil, fmt.Errorf("wire: server did not grant the edge role (role %q)", reply.Role)
	}
	accepted, _ := CodecByName(reply.Codec)
	c.SetCodec(accepted)
	return accepted, nil
}

// ReadHello performs the first half of the server side of the Hello
// exchange: it reads and checks the client's Hello frame without replying,
// so the server can vet the identification (ID present, not a duplicate,
// server still admitting, ...) before committing to the connection. Follow
// with ReplyHello to accept or RejectHello to refuse.
func (c *Conn) ReadHello() (Message, error) {
	hello, err := c.Decode()
	if err != nil {
		return Message{}, err
	}
	if hello.Type != TypeHello {
		return hello, fmt.Errorf("wire: expected hello frame, got %q", hello.Type)
	}
	return hello, nil
}

// ReplyHello accepts a Hello previously read with ReadHello: it picks the
// requested codec if known (JSON otherwise — JSON is the universal
// fallback), sends a Hello reply naming the accepted codec and echoing
// hello.Durability as the granted ack class (servers that vet or downgrade
// the request overwrite hello.Durability before calling), and switches the
// connection to the codec. hello.Credits is echoed the same way: a server
// enforcing flow control overwrites it with the connection's initial
// credit window before calling (clients request nothing — the window is
// the server's to grant). hello.Role is echoed verbatim: a server that
// grants an edge uplink leaves it as RoleEdge, a server that does not
// understand roles never sees a non-empty one from its own clients.
func (c *Conn) ReplyHello(hello Message) (Codec, error) {
	codec, _ := CodecByName(hello.Codec)
	reply := Message{Type: TypeHello, SUO: hello.SUO, Codec: codec.Name(),
		Durability: hello.Durability, Credits: hello.Credits, Role: hello.Role}
	if err := c.Encode(reply); err != nil {
		return nil, fmt.Errorf("wire: hello reply: %w", err)
	}
	c.SetCodec(codec)
	return codec, nil
}

// RejectHello refuses a Hello previously read with ReadHello: the handshake
// reply is a TypeError frame instead of a Hello, so the client's Handshake
// (and Dial) fails synchronously with the detail. No codec switch happens —
// a rejection always travels as JSON, like the Hello frames themselves.
func (c *Conn) RejectHello(suo, detail string) error {
	rep := ErrorReport{Detector: "ingest", Detail: detail}
	return c.Encode(Message{Type: TypeError, SUO: suo, Error: &rep})
}

// AcceptHello performs the unconditional server side of the Hello exchange:
// ReadHello followed immediately by ReplyHello. Servers that vet clients
// before admitting them call the two halves themselves, with RejectHello on
// the refusal path. It returns the client's Hello and the codec now in
// effect.
func (c *Conn) AcceptHello() (Message, Codec, error) {
	hello, err := c.ReadHello()
	if err != nil {
		return hello, nil, err
	}
	codec, err := c.ReplyHello(hello)
	if err != nil {
		return hello, nil, err
	}
	return hello, codec, nil
}

// SendEvent is a convenience for the SUO side: it frames an observation.
func (c *Conn) SendEvent(suo string, e event.Event) error {
	var t MsgType
	switch e.Kind {
	case event.Input:
		t = TypeInput
	case event.Output:
		t = TypeOutput
	case event.State:
		t = TypeState
	default:
		return fmt.Errorf("wire: cannot frame event kind %v", e.Kind)
	}
	return c.Encode(Message{Type: t, SUO: suo, Event: &e, At: e.At})
}
