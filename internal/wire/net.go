package wire

import (
	"fmt"
	"net"
	"strings"
)

// Address notation shared by the daemon and its clients: "unix:/path/to.sock"
// or "tcp:host:port". A bare path (contains "/" or no ":") is shorthand for
// a Unix socket, preserving the seed CLI's plain-path flags.

// SplitAddr parses the address notation into a net network and address.
func SplitAddr(addr string) (network, address string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", addr[len("unix:"):], nil
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", addr[len("tcp:"):], nil
	case !strings.Contains(addr, ":") || strings.Contains(addr, "/"):
		return "unix", addr, nil
	default:
		return "", "", fmt.Errorf("wire: address %q: want unix:/path or tcp:host:port", addr)
	}
}

// Listen opens a listener for the address notation above.
func Listen(addr string) (net.Listener, error) {
	network, address, err := SplitAddr(addr)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	return ln, nil
}

// Dial connects to the address notation above and performs the client-side
// Hello handshake, identifying as suo and requesting the named codec
// (empty for JSON). The returned connection speaks the accepted codec.
func Dial(addr, suo, codec string) (*Conn, error) {
	c, _, err := DialTiered(addr, suo, codec, "")
	return c, err
}

// DialTiered is Dial with a durability-class request (see HandshakeTiered):
// the granted ack class is returned next to the connection. An empty
// request asks for fsync, the strongest class.
func DialTiered(addr, suo, codec string, dur Durability) (*Conn, Durability, error) {
	c, granted, _, err := DialFlow(addr, suo, codec, dur)
	return c, granted, err
}

// DialFlow is DialTiered additionally surfacing the initial frame-credit
// window the server granted (see HandshakeFlow). Zero means the server
// does not enforce flow control on this connection.
func DialFlow(addr, suo, codec string, dur Durability) (*Conn, Durability, uint32, error) {
	network, address, err := SplitAddr(addr)
	if err != nil {
		return nil, "", 0, err
	}
	nc, err := net.Dial(network, address)
	if err != nil {
		return nil, "", 0, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := NewConn(nc)
	granted, credits := Durability(""), uint32(0)
	if _, granted, credits, err = c.HandshakeFlow(suo, codec, dur); err != nil {
		nc.Close()
		return nil, "", 0, err
	}
	return c, granted, credits, nil
}
