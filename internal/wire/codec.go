package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"trader/internal/event"
	"trader/internal/sim"
)

// A Codec translates one Message to and from a frame payload. The framing
// layer (4-byte big-endian length prefix, MaxFrame bound) is codec-
// independent; only the payload bytes differ. Codecs must be stateless and
// safe for concurrent use.
//
// Which codec a connection speaks is negotiated in the Hello exchange (see
// Conn.Handshake and Conn.AcceptHello): the Hello frames themselves are
// always JSON, so any client can open a conversation, and both sides switch
// to the agreed codec for every frame after it. JSON is the default and the
// fallback when the peer's requested codec is unknown.
type Codec interface {
	// Name identifies the codec on the wire (Message.Codec in Hello frames).
	Name() string
	// Append marshals m and appends the payload to dst, returning the
	// extended slice. Append must not retain dst.
	Append(dst []byte, m Message) ([]byte, error)
	// Unmarshal parses a payload into m. It must not retain payload: the
	// framing layer reuses the buffer for the next frame.
	Unmarshal(payload []byte, m *Message) error
}

// Codec names.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

// JSON is the default codec: each payload is the Message marshalled with
// encoding/json. Self-describing and debuggable (frames are readable with
// `strings`), at the cost of reflection-driven encode/decode on the hot
// ingestion path.
var JSON Codec = jsonCodec{}

// Binary is the compact codec: a hand-rolled, reflection-free layout
// (fixed tag bytes, uvarint lengths, zig-zag varint times, IEEE 754 bits
// for values) that decodes several times faster than JSON with fewer
// allocations per frame. See ARCHITECTURE.md for the exact byte layout.
var Binary Codec = binaryCodec{}

// CodecByName resolves a negotiated codec name. Unknown names (including
// the empty string, which old clients send) fall back to JSON and report
// ok=false so callers can log the downgrade.
func CodecByName(name string) (c Codec, ok bool) {
	switch name {
	case CodecBinary:
		return Binary, true
	case CodecJSON, "":
		return JSON, name == CodecJSON
	default:
		return JSON, false
	}
}

type jsonCodec struct{}

func (jsonCodec) Name() string { return CodecJSON }

func (jsonCodec) Append(dst []byte, m Message) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return dst, fmt.Errorf("wire: marshal: %w", err)
	}
	return append(dst, payload...), nil
}

func (jsonCodec) Unmarshal(payload []byte, m *Message) error {
	if err := json.Unmarshal(payload, m); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Binary payload layout (after the codec-independent 4-byte length prefix):
//
//	u8   message type tag (see typeTag)
//	uvar flags: bit0 = event present, bit1 = error present,
//	     bit2 = snapshot present, bit3 = checkpoint present,
//	     bit4 = shed-marker present, bit5 = rollup present,
//	     bit6 = handoff present, bit7 = spectrum-delta present,
//	     bit8 = trace-context present. Flag values 0–127 encode as the
//	     single byte they always were; the uvarint widening is what let
//	     bit8 exist once the byte was full, and pre-trace frames are
//	     byte-identical under it.
//	str  SUO                        (str = uvarint length + raw bytes)
//	var  At                         (var = zig-zag varint, sim.Time ticks)
//	str  Control
//	str  Target
//	str  Codec
//	str  Durability
//	uvar Credits
//	str  Role
//	-- if flags bit0, the event record:
//	u8   kind; str name; str source; var at; uvar seq
//	uvar n; n × (str name, 8-byte little-endian IEEE 754 value)
//	-- if flags bit1, the error report:
//	str detector; str observable; 8B expected; 8B actual
//	uvar consecutive; var at; str detail
//	-- if flags bit2, the coverage snapshot:
//	uvar blocks; uvar events; uvar dropped
//	uvar n; n × (uvar seq, var at, uvar nwords, nwords × 8-byte LE word)
//	-- if flags bit3, the checkpoint record:
//	str plane; uvar shard; uvar seq; u8 final; str profile; var at
//	uvar n; n × (str name, uvar v)            counters
//	uvar n; n × (str name, 8B LE IEEE 754)    vars
//	uvar n; n × (str name, str v)             states
//	uvar n; n × (str name, uvar consecutive,  observables
//	             u8 bits(inError|everSeen|silenced), 8B value, var lastSeen)
//	uvar blocks; uvar nfail; uvar npass
//	uvar n; n × (uvar block, uvar fail, uvar pass)   spectrum cells
//	uvar n; n × (str id, var at, uvar k, k × uvar)   devices
//	-- if flags bit4, the shed-marker record:
//	uvar observations; uvar heartbeats
//	-- if flags bit5, the rollup delta:
//	uvar seq; var devices
//	uvar n; n × (str name, var v)             signed counter deltas
//	-- if flags bit6, the handoff record:
//	str from; str to; uvar pos; uvar range; uvar of; str dir; u8 out
//	-- if flags bit7, the spectrum delta:
//	uvar seq; uvar blocks
//	uvar n; n × (uvar index, var word)        sparse coverage words,
//	                                          strictly ascending indices
//	-- if flags bit8, the trace context:
//	uvar traceID; uvar parent
//
// The checkpoint record (bit3) additionally carries, after the devices
// list, the per-verdict partitions of a continuous diagnosis engine:
//
//	uvar n; n × (str id, uvar nfail, uvar npass,
//	             uvar k, k × (uvar block, uvar fail, uvar pass))
//
// Strings are length-checked against the remaining payload before any
// allocation, so a hostile length cannot force a large allocation beyond
// MaxFrame. Trailing bytes after a well-formed message are rejected.
type binaryCodec struct{}

func (binaryCodec) Name() string { return CodecBinary }

const (
	flagEvent         = 1 << 0
	flagError         = 1 << 1
	flagSnapshot      = 1 << 2
	flagCheckpoint    = 1 << 3
	flagShed          = 1 << 4
	flagRollup        = 1 << 5
	flagHandoff       = 1 << 6
	flagSpectrumDelta = 1 << 7
	flagTrace         = 1 << 8
)

// flagOfField names every flag bit after the Message field it gates —
// ARCHITECTURE.md §2.9 carries the normative flag-bit registry, and
// TestFrameRegistry (run by `make docs`) fails the build when this map and
// that table disagree. Like tags, bits are append-only: never renumbered,
// never reused.
var flagOfField = map[string]uint64{
	"event":      flagEvent,
	"error":      flagError,
	"snapshot":   flagSnapshot,
	"checkpoint": flagCheckpoint,
	"shed":       flagShed,
	"rollup":     flagRollup,
	"handoff":    flagHandoff,
	"delta":      flagSpectrumDelta,
	"trace":      flagTrace,
}

// tagOfType assigns every message type its binary wire tag. ARCHITECTURE.md
// §2.9 carries the normative frame registry; TestFrameRegistry (run by
// `make docs`) fails the build when this map and that table disagree.
var tagOfType = map[MsgType]byte{
	TypeHello:         1,
	TypeInput:         2,
	TypeOutput:        3,
	TypeState:         4,
	TypeControl:       5,
	TypeError:         6,
	TypeHeartbeat:     7,
	TypeSpecInfo:      8,
	TypeAck:           9,
	TypeSnapshotReq:   10,
	TypeSnapshot:      11,
	TypeCheckpoint:    12,
	TypeCredit:        13,
	TypeShed:          14,
	TypeRollup:        15,
	TypeHandoff:       16,
	TypeSpectrumDelta: 17,
}

var typeOfTag = func() map[byte]MsgType {
	m := make(map[byte]MsgType, len(tagOfType))
	for t, b := range tagOfType {
		m[b] = t
	}
	return m
}()

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func (binaryCodec) Append(dst []byte, m Message) ([]byte, error) {
	tag, ok := tagOfType[m.Type]
	if !ok {
		return dst, fmt.Errorf("wire: binary: unencodable message type %q", m.Type)
	}
	var flags uint64
	if m.Event != nil {
		flags |= flagEvent
	}
	if m.Error != nil {
		flags |= flagError
	}
	if m.Snapshot != nil {
		flags |= flagSnapshot
	}
	if m.Checkpoint != nil {
		flags |= flagCheckpoint
	}
	if m.Shed != nil {
		flags |= flagShed
	}
	if m.Rollup != nil {
		flags |= flagRollup
	}
	if m.Handoff != nil {
		flags |= flagHandoff
	}
	if m.Delta != nil {
		flags |= flagSpectrumDelta
	}
	if m.Trace != nil {
		flags |= flagTrace
	}
	dst = append(dst, tag)
	dst = binary.AppendUvarint(dst, flags)
	dst = appendStr(dst, m.SUO)
	dst = binary.AppendVarint(dst, int64(m.At))
	dst = appendStr(dst, string(m.Control))
	dst = appendStr(dst, m.Target)
	dst = appendStr(dst, m.Codec)
	dst = appendStr(dst, string(m.Durability))
	dst = binary.AppendUvarint(dst, uint64(m.Credits))
	dst = appendStr(dst, m.Role)
	if e := m.Event; e != nil {
		dst = append(dst, byte(e.Kind))
		dst = appendStr(dst, e.Name)
		dst = appendStr(dst, e.Source)
		dst = binary.AppendVarint(dst, int64(e.At))
		dst = binary.AppendUvarint(dst, e.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(e.Values)))
		for _, v := range e.Values {
			dst = appendStr(dst, v.Name)
			dst = appendF64(dst, v.V)
		}
	}
	if r := m.Error; r != nil {
		dst = appendStr(dst, r.Detector)
		dst = appendStr(dst, r.Observable)
		dst = appendF64(dst, r.Expected)
		dst = appendF64(dst, r.Actual)
		dst = binary.AppendUvarint(dst, uint64(r.Consecutive))
		dst = binary.AppendVarint(dst, int64(r.At))
		dst = appendStr(dst, r.Detail)
	}
	if s := m.Snapshot; s != nil {
		dst = binary.AppendUvarint(dst, uint64(s.Blocks))
		dst = binary.AppendUvarint(dst, s.Events)
		dst = binary.AppendUvarint(dst, s.Dropped)
		dst = binary.AppendUvarint(dst, uint64(len(s.Windows)))
		for _, w := range s.Windows {
			dst = binary.AppendUvarint(dst, w.Seq)
			dst = binary.AppendVarint(dst, int64(w.At))
			dst = binary.AppendUvarint(dst, uint64(len(w.Words)))
			for _, word := range w.Words {
				dst = binary.LittleEndian.AppendUint64(dst, word)
			}
		}
	}
	if cp := m.Checkpoint; cp != nil {
		dst = appendStr(dst, cp.Plane)
		dst = binary.AppendUvarint(dst, uint64(cp.Shard))
		dst = binary.AppendUvarint(dst, cp.Seq)
		var fin byte
		if cp.Final {
			fin = 1
		}
		dst = append(dst, fin)
		dst = appendStr(dst, cp.Profile)
		dst = binary.AppendVarint(dst, int64(cp.At))
		dst = binary.AppendUvarint(dst, uint64(len(cp.Counters)))
		for _, c := range cp.Counters {
			dst = appendStr(dst, c.Name)
			dst = binary.AppendUvarint(dst, c.V)
		}
		dst = binary.AppendUvarint(dst, uint64(len(cp.Vars)))
		for _, v := range cp.Vars {
			dst = appendStr(dst, v.Name)
			dst = appendF64(dst, v.V)
		}
		dst = binary.AppendUvarint(dst, uint64(len(cp.States)))
		for _, s := range cp.States {
			dst = appendStr(dst, s.Name)
			dst = appendStr(dst, s.V)
		}
		dst = binary.AppendUvarint(dst, uint64(len(cp.Obs)))
		for _, o := range cp.Obs {
			dst = appendStr(dst, o.Name)
			dst = binary.AppendUvarint(dst, uint64(o.Consecutive))
			var bits byte
			if o.InError {
				bits |= 1
			}
			if o.EverSeen {
				bits |= 2
			}
			if o.Silenced {
				bits |= 4
			}
			dst = append(dst, bits)
			dst = appendF64(dst, o.LastValue)
			dst = binary.AppendVarint(dst, int64(o.LastSeen))
		}
		dst = binary.AppendUvarint(dst, uint64(cp.Blocks))
		dst = binary.AppendUvarint(dst, uint64(cp.NFail))
		dst = binary.AppendUvarint(dst, uint64(cp.NPass))
		dst = binary.AppendUvarint(dst, uint64(len(cp.Cells)))
		for _, c := range cp.Cells {
			dst = binary.AppendUvarint(dst, uint64(c.Block))
			dst = binary.AppendUvarint(dst, uint64(c.Fail))
			dst = binary.AppendUvarint(dst, uint64(c.Pass))
		}
		dst = binary.AppendUvarint(dst, uint64(len(cp.Devices)))
		for _, d := range cp.Devices {
			dst = appendStr(dst, d.ID)
			dst = binary.AppendVarint(dst, int64(d.At))
			dst = binary.AppendUvarint(dst, uint64(len(d.Stats)))
			for _, s := range d.Stats {
				dst = binary.AppendUvarint(dst, s)
			}
		}
		dst = binary.AppendUvarint(dst, uint64(len(cp.Parts)))
		for _, p := range cp.Parts {
			dst = appendStr(dst, p.ID)
			dst = binary.AppendUvarint(dst, uint64(p.NFail))
			dst = binary.AppendUvarint(dst, uint64(p.NPass))
			dst = binary.AppendUvarint(dst, uint64(len(p.Cells)))
			for _, c := range p.Cells {
				dst = binary.AppendUvarint(dst, uint64(c.Block))
				dst = binary.AppendUvarint(dst, uint64(c.Fail))
				dst = binary.AppendUvarint(dst, uint64(c.Pass))
			}
		}
	}
	if sh := m.Shed; sh != nil {
		dst = binary.AppendUvarint(dst, sh.Observations)
		dst = binary.AppendUvarint(dst, sh.Heartbeats)
	}
	if ro := m.Rollup; ro != nil {
		dst = binary.AppendUvarint(dst, ro.Seq)
		dst = binary.AppendVarint(dst, ro.Devices)
		dst = binary.AppendUvarint(dst, uint64(len(ro.Counters)))
		for _, c := range ro.Counters {
			dst = appendStr(dst, c.Name)
			dst = binary.AppendVarint(dst, c.V)
		}
	}
	if h := m.Handoff; h != nil {
		dst = appendStr(dst, h.From)
		dst = appendStr(dst, h.To)
		dst = binary.AppendUvarint(dst, h.Pos)
		dst = binary.AppendUvarint(dst, uint64(h.Range))
		dst = binary.AppendUvarint(dst, uint64(h.Of))
		dst = appendStr(dst, h.Dir)
		var out byte
		if h.Out {
			out = 1
		}
		dst = append(dst, out)
	}
	if d := m.Delta; d != nil {
		dst = binary.AppendUvarint(dst, d.Seq)
		dst = binary.AppendUvarint(dst, uint64(d.Blocks))
		n := len(d.Index)
		if len(d.Words) < n {
			n = len(d.Words)
		}
		dst = binary.AppendUvarint(dst, uint64(n))
		for i := 0; i < n; i++ {
			dst = binary.AppendUvarint(dst, uint64(d.Index[i]))
			dst = binary.AppendVarint(dst, int64(d.Words[i]))
		}
	}
	if tc := m.Trace; tc != nil {
		dst = binary.AppendUvarint(dst, tc.TraceID)
		dst = binary.AppendUvarint(dst, tc.Parent)
	}
	return dst, nil
}

// binReader walks a binary payload with bounds checking; the first failure
// sticks so parsing code can read a whole record and test err once.
type binReader struct {
	b   []byte
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: binary: truncated or corrupt %s", what)
	}
}

func (r *binReader) u8(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail(what)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *binReader) uvar(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) str(what string) string {
	n := r.uvar(what)
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail(what)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *binReader) f64(what string) float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (binaryCodec) Unmarshal(payload []byte, m *Message) error {
	r := binReader{b: payload}
	tag := r.u8("type")
	typ, ok := typeOfTag[tag]
	if r.err == nil && !ok {
		return fmt.Errorf("wire: binary: unknown message type tag %d", tag)
	}
	flags := r.uvar("flags")
	m.Type = typ
	m.SUO = r.str("suo")
	m.At = sim.Time(r.varint("at"))
	m.Control = ControlCommand(r.str("control"))
	m.Target = r.str("target")
	m.Codec = r.str("codec")
	m.Durability = Durability(r.str("durability"))
	m.Credits = uint32(r.uvar("credits"))
	m.Role = r.str("role")
	if flags&flagEvent != 0 {
		e := &event.Event{}
		e.Kind = event.Kind(r.u8("event kind"))
		e.Name = r.str("event name")
		e.Source = r.str("event source")
		e.At = sim.Time(r.varint("event at"))
		e.Seq = r.uvar("event seq")
		n := r.uvar("event value count")
		// A value takes ≥ 9 bytes; reject counts the payload cannot hold
		// before allocating.
		if r.err == nil && n > uint64(len(r.b))/9 {
			r.fail("event value count")
		}
		if r.err == nil && n > 0 {
			e.Values = make([]event.Value, n)
			for i := range e.Values {
				e.Values[i].Name = r.str("value name")
				e.Values[i].V = r.f64("value")
			}
		}
		m.Event = e
	}
	if flags&flagError != 0 {
		rep := &ErrorReport{}
		rep.Detector = r.str("error detector")
		rep.Observable = r.str("error observable")
		rep.Expected = r.f64("error expected")
		rep.Actual = r.f64("error actual")
		rep.Consecutive = int(r.uvar("error consecutive"))
		rep.At = sim.Time(r.varint("error at"))
		rep.Detail = r.str("error detail")
		m.Error = rep
	}
	if flags&flagSnapshot != 0 {
		s := &Snapshot{}
		s.Blocks = int(r.uvar("snapshot blocks"))
		s.Events = r.uvar("snapshot events")
		s.Dropped = r.uvar("snapshot dropped")
		n := r.uvar("snapshot window count")
		// A window takes ≥ 3 bytes; reject counts the payload cannot hold
		// before allocating.
		if r.err == nil && n > uint64(len(r.b))/3 {
			r.fail("snapshot window count")
		}
		if r.err == nil && n > 0 {
			s.Windows = make([]SpectrumWindow, n)
			for i := range s.Windows {
				w := &s.Windows[i]
				w.Seq = r.uvar("window seq")
				w.At = sim.Time(r.varint("window at"))
				nw := r.uvar("window word count")
				// 8 bytes per word; length-check before allocation.
				if r.err == nil && nw > uint64(len(r.b))/8 {
					r.fail("window word count")
				}
				if r.err != nil {
					break
				}
				if nw > 0 {
					w.Words = make([]uint64, nw)
					for j := range w.Words {
						if len(r.b) < 8 {
							r.fail("window words")
							break
						}
						w.Words[j] = binary.LittleEndian.Uint64(r.b)
						r.b = r.b[8:]
					}
				}
			}
		}
		if r.err == nil {
			m.Snapshot = s
		}
	}
	if flags&flagCheckpoint != 0 {
		cp := &Checkpoint{}
		cp.Plane = r.str("checkpoint plane")
		cp.Shard = int(r.uvar("checkpoint shard"))
		cp.Seq = r.uvar("checkpoint seq")
		cp.Final = r.u8("checkpoint final") != 0
		cp.Profile = r.str("checkpoint profile")
		cp.At = sim.Time(r.varint("checkpoint at"))
		n := r.uvar("checkpoint counter count")
		// A counter takes ≥ 2 bytes; length-check before allocation, and so
		// on for every variable-count list below.
		if r.err == nil && n > uint64(len(r.b))/2 {
			r.fail("checkpoint counter count")
		}
		if r.err == nil && n > 0 {
			cp.Counters = make([]CheckpointCounter, n)
			for i := range cp.Counters {
				cp.Counters[i].Name = r.str("counter name")
				cp.Counters[i].V = r.uvar("counter value")
			}
		}
		n = r.uvar("checkpoint var count")
		if r.err == nil && n > uint64(len(r.b))/9 {
			r.fail("checkpoint var count")
		}
		if r.err == nil && n > 0 {
			cp.Vars = make([]CheckpointVar, n)
			for i := range cp.Vars {
				cp.Vars[i].Name = r.str("var name")
				cp.Vars[i].V = r.f64("var value")
			}
		}
		n = r.uvar("checkpoint state count")
		if r.err == nil && n > uint64(len(r.b))/2 {
			r.fail("checkpoint state count")
		}
		if r.err == nil && n > 0 {
			cp.States = make([]CheckpointState, n)
			for i := range cp.States {
				cp.States[i].Name = r.str("state name")
				cp.States[i].V = r.str("state value")
			}
		}
		n = r.uvar("checkpoint obs count")
		// An observable takes ≥ 12 bytes (name len, consecutive, bits, value,
		// lastSeen).
		if r.err == nil && n > uint64(len(r.b))/12 {
			r.fail("checkpoint obs count")
		}
		if r.err == nil && n > 0 {
			cp.Obs = make([]CheckpointObs, n)
			for i := range cp.Obs {
				o := &cp.Obs[i]
				o.Name = r.str("obs name")
				o.Consecutive = int(r.uvar("obs consecutive"))
				bits := r.u8("obs bits")
				o.InError = bits&1 != 0
				o.EverSeen = bits&2 != 0
				o.Silenced = bits&4 != 0
				o.LastValue = r.f64("obs value")
				o.LastSeen = sim.Time(r.varint("obs last seen"))
			}
		}
		cp.Blocks = int(r.uvar("checkpoint blocks"))
		cp.NFail = int(r.uvar("checkpoint nfail"))
		cp.NPass = int(r.uvar("checkpoint npass"))
		n = r.uvar("checkpoint cell count")
		if r.err == nil && n > uint64(len(r.b))/3 {
			r.fail("checkpoint cell count")
		}
		if r.err == nil && n > 0 {
			cp.Cells = make([]CheckpointCell, n)
			for i := range cp.Cells {
				cp.Cells[i].Block = uint32(r.uvar("cell block"))
				cp.Cells[i].Fail = uint32(r.uvar("cell fail"))
				cp.Cells[i].Pass = uint32(r.uvar("cell pass"))
			}
		}
		n = r.uvar("checkpoint device count")
		if r.err == nil && n > uint64(len(r.b))/3 {
			r.fail("checkpoint device count")
		}
		if r.err == nil && n > 0 {
			cp.Devices = make([]CheckpointDevice, n)
			for i := range cp.Devices {
				d := &cp.Devices[i]
				d.ID = r.str("device id")
				d.At = sim.Time(r.varint("device at"))
				k := r.uvar("device stat count")
				if r.err == nil && k > uint64(len(r.b)) {
					r.fail("device stat count")
				}
				if r.err != nil {
					break
				}
				if k > 0 {
					d.Stats = make([]uint64, k)
					for j := range d.Stats {
						d.Stats[j] = r.uvar("device stat")
					}
				}
			}
		}
		n = r.uvar("checkpoint part count")
		// A partition takes ≥ 4 bytes (id len, nfail, npass, cell count);
		// length-check before allocation.
		if r.err == nil && n > uint64(len(r.b))/4 {
			r.fail("checkpoint part count")
		}
		if r.err == nil && n > 0 {
			cp.Parts = make([]CheckpointPart, n)
			for i := range cp.Parts {
				p := &cp.Parts[i]
				p.ID = r.str("part id")
				p.NFail = int(r.uvar("part nfail"))
				p.NPass = int(r.uvar("part npass"))
				k := r.uvar("part cell count")
				if r.err == nil && k > uint64(len(r.b))/3 {
					r.fail("part cell count")
				}
				if r.err != nil {
					break
				}
				if k > 0 {
					p.Cells = make([]CheckpointCell, k)
					for j := range p.Cells {
						p.Cells[j].Block = uint32(r.uvar("part cell block"))
						p.Cells[j].Fail = uint32(r.uvar("part cell fail"))
						p.Cells[j].Pass = uint32(r.uvar("part cell pass"))
					}
				}
			}
		}
		if r.err == nil {
			m.Checkpoint = cp
		}
	}
	if flags&flagShed != 0 {
		sh := &ShedRecord{}
		sh.Observations = r.uvar("shed observations")
		sh.Heartbeats = r.uvar("shed heartbeats")
		if r.err == nil {
			m.Shed = sh
		}
	}
	if flags&flagRollup != 0 {
		ro := &RollupDelta{}
		ro.Seq = r.uvar("rollup seq")
		ro.Devices = r.varint("rollup devices")
		n := r.uvar("rollup counter count")
		// A counter takes ≥ 2 bytes; length-check before allocation.
		if r.err == nil && n > uint64(len(r.b))/2 {
			r.fail("rollup counter count")
		}
		if r.err == nil && n > 0 {
			ro.Counters = make([]RollupCounter, n)
			for i := range ro.Counters {
				ro.Counters[i].Name = r.str("rollup counter name")
				ro.Counters[i].V = r.varint("rollup counter value")
			}
		}
		if r.err == nil {
			m.Rollup = ro
		}
	}
	if flags&flagHandoff != 0 {
		h := &HandoffRecord{}
		h.From = r.str("handoff from")
		h.To = r.str("handoff to")
		h.Pos = r.uvar("handoff pos")
		h.Range = int(r.uvar("handoff range"))
		h.Of = int(r.uvar("handoff of"))
		h.Dir = r.str("handoff dir")
		h.Out = r.u8("handoff out") != 0
		if r.err == nil {
			m.Handoff = h
		}
	}
	if flags&flagSpectrumDelta != 0 {
		d := &SpectrumDelta{}
		d.Seq = r.uvar("delta seq")
		d.Blocks = int(r.uvar("delta blocks"))
		n := r.uvar("delta word count")
		// A pair takes ≥ 2 bytes (uvar index + var word); length-check
		// before allocation.
		if r.err == nil && n > uint64(len(r.b))/2 {
			r.fail("delta word count")
		}
		if r.err == nil && n > 0 {
			d.Index = make([]uint32, n)
			d.Words = make([]uint64, n)
			for i := range d.Index {
				idx := r.uvar("delta word index")
				// Indices are strictly ascending by construction; anything
				// else is a malformed or hostile frame, rejected before the
				// fold layer ever sees it.
				if r.err == nil && (idx > math.MaxUint32 || (i > 0 && uint32(idx) <= d.Index[i-1])) {
					r.fail("delta word index order")
				}
				d.Index[i] = uint32(idx)
				d.Words[i] = uint64(r.varint("delta word"))
			}
		}
		if r.err == nil {
			m.Delta = d
		}
	}
	if flags&flagTrace != 0 {
		tc := &TraceContext{}
		tc.TraceID = r.uvar("trace id")
		tc.Parent = r.uvar("trace parent")
		if r.err == nil {
			m.Trace = tc
		}
	}
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: binary: %d trailing bytes after message", len(r.b))
	}
	return nil
}
