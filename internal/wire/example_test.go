package wire_test

import (
	"bytes"
	"fmt"

	"trader/internal/event"
	"trader/internal/wire"
)

// An observation frame survives an encode/decode round trip: this is the
// JSON-codec default every connection starts in.
func ExampleEncoder() {
	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	dec := wire.NewDecoder(&buf)

	ev := event.Event{Kind: event.Output, Name: "frame", Source: "video", At: 123}
	ev = ev.With("quality", 0.87)
	if err := enc.Encode(wire.Message{Type: wire.TypeOutput, SUO: "tv", Event: &ev, At: 123}); err != nil {
		panic(err)
	}

	m, err := dec.Decode()
	if err != nil {
		panic(err)
	}
	q, _ := m.Event.Get("quality")
	fmt.Println(m.Type, m.SUO, m.Event.Name, q)
	// Output: output tv frame 0.87
}

// The compact binary codec is a drop-in replacement for JSON framing; real
// connections negotiate it in the Hello exchange (Conn.Handshake /
// Conn.AcceptHello) instead of setting it by hand.
func ExampleCodec() {
	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	enc.SetCodec(wire.Binary)
	dec := wire.NewDecoder(&buf)
	dec.SetCodec(wire.Binary)

	rep := wire.ErrorReport{Detector: "comparator", Observable: "volume", Expected: 10, Actual: 3, Consecutive: 2}
	if err := enc.Encode(wire.Message{Type: wire.TypeError, Error: &rep}); err != nil {
		panic(err)
	}

	m, err := dec.Decode()
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Type, m.Error.Detector, m.Error.Expected, m.Error.Actual)
	// Output: error comparator 10 3
}
