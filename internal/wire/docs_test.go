package wire

// The docs gate (`make docs`) runs TestFrameRegistry: ARCHITECTURE.md
// §2.9 is the normative wire frame registry, and this test fails the
// build when that table and the binary codec's tag map disagree — in
// either direction. It keeps the spec honest the same way the package
// tests keep the code honest: renumbering a tag, forgetting to document
// a new frame type, or documenting one the codec does not implement all
// fail here.

import (
	"bufio"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// registryRow matches one body row of the §2.9 table: `| 15 | `rollup` | …`.
var registryRow = regexp.MustCompile("^\\|\\s*(\\d+)\\s*\\|\\s*`([a-z_]+)`\\s*\\|")

// flagRow matches one body row of §2.9's flag-bit table: `| 8 | `trace` | …`.
// The tables share a shape; parseFrameRegistry tells them apart by the
// heading each sits under.
var flagRow = registryRow

// parseFrameRegistry extracts the tag → type table from ARCHITECTURE.md's
// "Wire frame registry" section, ending at the next section heading.
func parseFrameRegistry(path string) (map[byte]MsgType, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	reg := make(map[byte]MsgType)
	in := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "#") && strings.Contains(line, "Wire frame registry"):
			in = true
		case in && strings.HasPrefix(line, "#"):
			return reg, sc.Err()
		case in:
			m := registryRow.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			tag, err := strconv.ParseUint(m[1], 10, 8)
			if err != nil {
				return nil, fmt.Errorf("row %q: %v", line, err)
			}
			if prev, dup := reg[byte(tag)]; dup {
				return nil, fmt.Errorf("tag %d listed twice: %q and %q", tag, prev, m[2])
			}
			reg[byte(tag)] = MsgType(m[2])
		}
	}
	return reg, sc.Err()
}

// parseFlagRegistry extracts the bit → Message-field table from
// ARCHITECTURE.md's "Flag-bit registry" heading, ending at the next
// section heading.
func parseFlagRegistry(path string) (map[uint64]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	reg := make(map[uint64]string)
	in := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "#") && strings.Contains(line, "Flag-bit registry"):
			in = true
		case in && strings.HasPrefix(line, "#"):
			return reg, sc.Err()
		case in:
			m := flagRow.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			bit, err := strconv.ParseUint(m[1], 10, 6)
			if err != nil {
				return nil, fmt.Errorf("row %q: %v", line, err)
			}
			if prev, dup := reg[1<<bit]; dup {
				return nil, fmt.Errorf("bit %d listed twice: %q and %q", bit, prev, m[2])
			}
			reg[1<<bit] = m[2]
		}
	}
	return reg, sc.Err()
}

func TestFrameRegistry(t *testing.T) {
	const spec = "../../ARCHITECTURE.md"
	reg, err := parseFrameRegistry(spec)
	if err != nil {
		t.Fatalf("parsing %s: %v", spec, err)
	}
	if len(reg) == 0 {
		t.Fatalf("no registry rows found in %s — was the §2.9 table renamed or reformatted?", spec)
	}
	for typ, tag := range tagOfType {
		if got, ok := reg[tag]; !ok {
			t.Errorf("binary tag %d (%q) is not in the %s registry", tag, typ, spec)
		} else if got != typ {
			t.Errorf("binary tag %d is %q in the codec but %q in %s", tag, typ, got, spec)
		}
	}
	for tag, typ := range reg {
		if _, ok := typeOfTag[tag]; !ok {
			t.Errorf("%s registers tag %d (%q) which the codec does not implement", spec, tag, typ)
		}
	}

	flags, err := parseFlagRegistry(spec)
	if err != nil {
		t.Fatalf("parsing %s flag-bit registry: %v", spec, err)
	}
	if len(flags) == 0 {
		t.Fatalf("no flag-bit rows found in %s — was the §2.9 flag table renamed or reformatted?", spec)
	}
	for field, bit := range flagOfField {
		if got, ok := flags[bit]; !ok {
			t.Errorf("codec flag bit %#x (%q) is not in the %s flag-bit registry", bit, field, spec)
		} else if got != field {
			t.Errorf("flag bit %#x gates %q in the codec but %q in %s", bit, field, got, spec)
		}
	}
	for bit, field := range flags {
		if _, ok := flagOfField[field]; !ok {
			t.Errorf("%s registers flag bit %#x (%q) which the codec does not implement", spec, bit, field)
		}
	}
}
