package wire

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"trader/internal/event"
	"trader/internal/sim"
)

// sampleMessages covers every frame shape the protocol produces.
func sampleMessages() []Message {
	ev := event.Event{Kind: event.Output, Name: "frame", Source: "video", At: 123, Seq: 7}
	ev = ev.With("quality", 0.87).With("fps", 50)
	rep := ErrorReport{Detector: "comparator", Observable: "volume", Expected: 10,
		Actual: 3, Consecutive: 4, At: 99, Detail: "drift"}
	snap := Snapshot{Blocks: 130, Events: 12, Dropped: 3, Windows: []SpectrumWindow{
		{Seq: 1, At: 100, Words: []uint64{0x1, 0xffffffffffffffff, 0x3}},
		{Seq: 2, At: 200, Words: []uint64{0, 0x80, 0}},
		{Seq: 3}, // open window, no coverage yet
	}}
	return []Message{
		{Type: TypeHello, SUO: "tv-0001", Codec: CodecBinary},
		{Type: TypeInput, SUO: "tv", Event: &event.Event{Kind: event.Input, Name: "key", At: -5}, At: -5},
		{Type: TypeOutput, SUO: "tv", Event: &ev, At: 123},
		{Type: TypeState, Event: &event.Event{Kind: event.State, Name: "mode"}},
		{Type: TypeControl, Control: CtrlRecover, Target: "teletext", At: 42},
		{Type: TypeControl, SUO: "tv", Control: CtrlQuarantine, Target: "quarantine", At: 7},
		{Type: TypeError, Error: &rep, At: 99},
		{Type: TypeHeartbeat, At: 1000},
		{Type: TypeSpecInfo},
		Ack("tv-0001", CtrlRestart, 1234),
		{Type: TypeSnapshotReq, SUO: "tv-0001", At: 500},
		{Type: TypeSnapshot, SUO: "tv-0001", At: 600, Snapshot: &snap},
		{Type: TypeSnapshot, SUO: "tv-0001", Target: "fail", At: 700,
			Snapshot: &Snapshot{Blocks: 64, Windows: []SpectrumWindow{{Seq: 9, At: 650, Words: []uint64{42}}}}},
		{Type: TypeHello, SUO: "tv-0001", Codec: CodecBinary, Durability: DurDispatch, Credits: 256},
		{Type: TypeCredit, SUO: "tv-0001", Credits: 128},
		{Type: TypeHeartbeat, SUO: "tv-0001", At: 2000, Credits: 64},
		{Type: TypeShed, SUO: "tv-0001", At: 2100, Shed: &ShedRecord{Observations: 17, Heartbeats: 2}},
		{Type: TypeShed, SUO: "tv-0001", Shed: &ShedRecord{}},
		{Type: TypeHello, SUO: "edge-0", Codec: CodecBinary, Role: RoleEdge,
			Handoff: &HandoffRecord{From: "edge-0", Range: 0, Of: 2, Dir: "/tmp/edge0"}},
		{Type: TypeRollup, SUO: "edge-0", Rollup: &RollupDelta{Seq: 3, Devices: 16,
			Counters: []RollupCounter{{Name: "dispatched", V: 120}, {Name: "comparisons", V: -7}}}},
		{Type: TypeRollup, SUO: "edge-1", Rollup: &RollupDelta{}}, // empty resume baseline
		{Type: TypeHandoff, SUO: "dev-000007", At: 910,
			Handoff: &HandoffRecord{From: "edge-0", To: "edge-1", Pos: 4321},
			Checkpoint: &Checkpoint{Plane: PlaneDevice, At: 910,
				Counters: []CheckpointCounter{{Name: "comparisons", V: 12}}}},
		{Type: TypeHandoff, SUO: "dev-000007", Handoff: &HandoffRecord{From: "edge-0", Out: true}},
		{Type: TypeSpectrumDelta, SUO: "tv-0001", At: 3000, Delta: &SpectrumDelta{
			Seq: 12, Blocks: 130, Index: []uint32{0, 1, 2}, Words: []uint64{0x1, 0xffffffffffffffff, 0x3}}},
		{Type: TypeSpectrumDelta, SUO: "tv-0001", Target: "fail", At: 3100,
			Delta: &SpectrumDelta{Seq: 13, Blocks: 130}}, // empty closed window
		{Type: TypeControl, SUO: "tv-0001", Control: CtrlRestart, Target: "restart", At: 5000,
			Trace: &TraceContext{TraceID: 0xdeadbeefcafe0123, Parent: 7}},
		{Type: TypeRollup, SUO: "edge-0", Rollup: &RollupDelta{Seq: 4, Devices: 16},
			Trace: &TraceContext{TraceID: 1}}, // exemplar trace, no parent
		{Type: TypeAck, SUO: "tv-0001", Control: CtrlRestart, At: 5100,
			Trace: &TraceContext{TraceID: 0xdeadbeefcafe0123, Parent: 9}}, // device echo of control trace
		{Type: TypeCheckpoint, At: 4000, Checkpoint: &Checkpoint{Plane: "diagnosis", At: 4000,
			Counters: []CheckpointCounter{{Name: "nfail", V: 2}},
			Parts: []CheckpointPart{
				{ID: "tv-0001", NFail: 2, NPass: 1, Cells: []CheckpointCell{{Block: 7, Fail: 2, Pass: 1}, {Block: 64, Fail: 1}}},
				{ID: "tv-0002"}, // partition with no evidence yet
			}}},
	}
}

func TestCodecsRoundTripAllShapes(t *testing.T) {
	for _, codec := range []Codec{JSON, Binary} {
		for _, in := range sampleMessages() {
			payload, err := codec.Append(nil, in)
			if err != nil {
				t.Fatalf("%s: append %+v: %v", codec.Name(), in, err)
			}
			var out Message
			if err := codec.Unmarshal(payload, &out); err != nil {
				t.Fatalf("%s: unmarshal %+v: %v", codec.Name(), in, err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Errorf("%s: round trip mangled:\n in: %+v\nout: %+v", codec.Name(), in, out)
			}
		}
	}
}

// Property: both codecs agree on arbitrary event frames, bit-exactly.
func TestPropertyCodecsAgree(t *testing.T) {
	f := func(suo, name, source string, at int64, vals []float64, kindRaw, seq uint8) bool {
		ev := event.Event{Kind: event.Kind(kindRaw % 3), Name: name, Source: source,
			At: sim.Time(at), Seq: uint64(seq)}
		for i, v := range vals {
			if i > 8 {
				break
			}
			ev.Values = append(ev.Values, event.Value{Name: string(rune('a' + i%26)), V: v})
		}
		in := Message{Type: TypeOutput, SUO: suo, Event: &ev, At: sim.Time(at)}
		var outs [2]Message
		for i, codec := range []Codec{JSON, Binary} {
			payload, err := codec.Append(nil, in)
			if err != nil {
				return false
			}
			if err := codec.Unmarshal(payload, &outs[i]); err != nil {
				return false
			}
		}
		return reflect.DeepEqual(outs[0], outs[1]) && reflect.DeepEqual(outs[0], in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: binary Unmarshal never panics on arbitrary payloads — it errors
// or yields a message, exactly like the JSON decoder on garbage.
func TestPropertyBinaryUnmarshalRobustOnGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		var m Message
		_ = Binary.Unmarshal(raw, &m)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsTrailingBytes(t *testing.T) {
	payload, err := Binary.Append(nil, Message{Type: TypeHeartbeat})
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := Binary.Unmarshal(append(payload, 0xFF), &m); err == nil {
		t.Fatal("trailing bytes should be rejected")
	}
}

func TestBinaryRejectsHostileValueCount(t *testing.T) {
	// An event frame claiming 2^40 values must be rejected before any
	// allocation happens (the payload cannot possibly hold them).
	ev := event.Event{Name: "e"}
	payload, err := Binary.Append(nil, Message{Type: TypeInput, Event: &ev})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the trailing value-count uvarint (0 → huge).
	payload = append(payload[:len(payload)-1], 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	var m Message
	if err := Binary.Unmarshal(payload, &m); err == nil {
		t.Fatal("hostile value count should be rejected")
	}
}

func TestBinaryRejectsHostileSnapshotCounts(t *testing.T) {
	// A snapshot frame claiming 2^40 windows (or words) must be rejected
	// before any allocation happens.
	base := Message{Type: TypeSnapshot, SUO: "s", Snapshot: &Snapshot{Blocks: 64}}
	payload, err := Binary.Append(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the trailing window-count uvarint (0 → huge).
	hostile := append(payload[:len(payload)-1:len(payload)-1], 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	var m Message
	if err := Binary.Unmarshal(hostile, &m); err == nil {
		t.Fatal("hostile window count should be rejected")
	}
	withWin := Message{Type: TypeSnapshot, SUO: "s",
		Snapshot: &Snapshot{Blocks: 64, Windows: []SpectrumWindow{{Seq: 1, At: 2}}}}
	payload, err = Binary.Append(nil, withWin)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the trailing word-count uvarint (0 → huge).
	hostile = append(payload[:len(payload)-1:len(payload)-1], 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	if err := Binary.Unmarshal(hostile, &m); err == nil {
		t.Fatal("hostile word count should be rejected")
	}
}

func TestCodecByName(t *testing.T) {
	cases := []struct {
		name   string
		want   string
		wantOK bool
	}{
		{"json", CodecJSON, true},
		{"binary", CodecBinary, true},
		{"", CodecJSON, false},
		{"protobuf", CodecJSON, false},
	}
	for _, c := range cases {
		got, ok := CodecByName(c.name)
		if got.Name() != c.want || ok != c.wantOK {
			t.Errorf("CodecByName(%q) = %s, %v; want %s, %v", c.name, got.Name(), ok, c.want, c.wantOK)
		}
	}
}

// handshakePair runs a client handshake against a server AcceptHello over a
// pipe and returns both ends plus the negotiated server-side state.
func handshakePair(t *testing.T, suo, requested string) (client, server *Conn, hello Message, accepted Codec) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	client, server = NewConn(a), NewConn(b)
	done := make(chan error, 1)
	go func() {
		var err error
		hello, accepted, err = server.AcceptHello()
		done <- err
	}()
	if _, err := client.Handshake(suo, requested); err != nil {
		t.Fatalf("Handshake: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("AcceptHello: %v", err)
	}
	return client, server, hello, accepted
}

func TestHandshakeNegotiatesBinary(t *testing.T) {
	client, server, hello, accepted := handshakePair(t, "tv-42", CodecBinary)
	if hello.SUO != "tv-42" || hello.Codec != CodecBinary {
		t.Fatalf("hello = %+v", hello)
	}
	if accepted.Name() != CodecBinary {
		t.Fatalf("accepted codec = %s, want binary", accepted.Name())
	}
	// Post-handshake traffic flows in the negotiated codec, both directions.
	ev := event.Event{Kind: event.Input, Name: "key", At: 9}
	go func() { _ = client.SendEvent("tv-42", ev) }()
	m, err := server.Decode()
	if err != nil || m.Type != TypeInput || m.Event.Name != "key" {
		t.Fatalf("server decode: %+v, %v", m, err)
	}
	go func() { _ = server.Encode(Message{Type: TypeControl, Control: CtrlReset}) }()
	m, err = client.Decode()
	if err != nil || m.Type != TypeControl || m.Control != CtrlReset {
		t.Fatalf("client decode: %+v, %v", m, err)
	}
}

func TestHandshakeUnknownCodecFallsBackToJSON(t *testing.T) {
	client, _, _, accepted := handshakePair(t, "tv", "msgpack")
	if accepted.Name() != CodecJSON {
		t.Fatalf("unknown codec accepted as %s, want json fallback", accepted.Name())
	}
	if client.Encoder.codec.Name() != CodecJSON {
		t.Fatalf("client switched to %s, want json", client.Encoder.codec.Name())
	}
}

// HandshakeEdge negotiates the edge role: the claim rides the Hello, the
// reply must echo RoleEdge, and the codec switch still happens.
func TestHandshakeEdge(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	client, server := NewConn(a), NewConn(b)
	done := make(chan error, 1)
	var hello Message
	go func() {
		var err error
		hello, err = server.ReadHello()
		if err == nil {
			_, err = server.ReplyHello(hello)
		}
		done <- err
	}()
	claim := HandoffRecord{From: "edge-0", Range: 1, Of: 2, Dir: "/tmp/e0"}
	codec, err := client.HandshakeEdge("edge-0", CodecBinary, claim)
	if err != nil {
		t.Fatalf("HandshakeEdge: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server side: %v", err)
	}
	if codec.Name() != CodecBinary {
		t.Fatalf("accepted codec = %s, want binary", codec.Name())
	}
	if hello.Role != RoleEdge || hello.Handoff == nil || *hello.Handoff != claim {
		t.Fatalf("server saw hello = %+v", hello)
	}
}

// A pre-federation server replies without echoing the role; the edge must
// refuse to treat it as an aggregator.
func TestHandshakeEdgeRejectsRolelessServer(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	client, server := NewConn(a), NewConn(b)
	go func() {
		hello, err := server.ReadHello()
		if err == nil {
			hello.Role = "" // a server from before roles existed
			_, _ = server.ReplyHello(hello)
		}
	}()
	if _, err := client.HandshakeEdge("edge-0", CodecBinary, HandoffRecord{}); err == nil {
		t.Fatal("HandshakeEdge should fail when the reply lacks the edge role")
	}
}

func TestAcceptHelloRejectsNonHello(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	client, server := NewConn(a), NewConn(b)
	go func() { _ = client.Encode(Message{Type: TypeHeartbeat}) }()
	if _, _, err := server.AcceptHello(); err == nil {
		t.Fatal("AcceptHello should reject a non-hello first frame")
	}
}

// The decoder must reuse its payload buffer: steady-state binary decoding
// performs no buffer allocation, only the per-message copies (event struct,
// values, strings). The regression bound is deliberately loose for JSON and
// tight for binary.
func TestDecoderReusesPayloadBuffer(t *testing.T) {
	frame := func(codec Codec) []byte {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		enc.SetCodec(codec)
		ev := event.Event{Kind: event.Output, Name: "frame", Source: "video", At: 123}
		ev = ev.With("q", 0.9).With("fps", 50)
		if err := enc.Encode(Message{Type: TypeOutput, SUO: "tv", Event: &ev, At: 123}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, tc := range []struct {
		codec Codec
		max   float64
	}{
		{Binary, 8}, // event, values, 4 strings, reader internals — no payload buffer
		{JSON, 32},  // encoding/json internals dominate, but still no payload buffer growth
	} {
		raw := frame(tc.codec)
		r := bytes.NewReader(raw)
		dec := NewDecoder(r)
		dec.SetCodec(tc.codec)
		avg := testing.AllocsPerRun(200, func() {
			r.Reset(raw)
			if _, err := dec.Decode(); err != nil {
				t.Fatal(err)
			}
		})
		if avg > tc.max {
			t.Errorf("%s: %.1f allocs/frame, want ≤ %.0f (payload buffer not reused?)", tc.codec.Name(), avg, tc.max)
		}
	}
}

func TestEncoderFrameTooLargeEitherCodec(t *testing.T) {
	big := strings.Repeat("x", MaxFrame)
	for _, codec := range []Codec{JSON, Binary} {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		enc.SetCodec(codec)
		err := enc.Encode(Message{Type: TypeHello, SUO: big})
		if err == nil || !strings.Contains(err.Error(), "too large") {
			t.Errorf("%s: want too-large error, got %v", codec.Name(), err)
		}
	}
}

func TestBinaryConnStream(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.SetCodec(Binary)
	dec := NewDecoder(&buf)
	dec.SetCodec(Binary)
	for i := 0; i < 10; i++ {
		ev := event.Event{Name: "key", Seq: uint64(i)}
		if err := enc.Encode(Message{Type: TypeInput, Event: &ev}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if m.Event.Seq != uint64(i) {
			t.Fatalf("frame %d out of order: %+v", i, m)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestSplitAddr(t *testing.T) {
	cases := []struct {
		in, network, address string
		wantErr              bool
	}{
		{"unix:/tmp/t.sock", "unix", "/tmp/t.sock", false},
		{"tcp:127.0.0.1:7700", "tcp", "127.0.0.1:7700", false},
		{"/tmp/t.sock", "unix", "/tmp/t.sock", false},
		{"plainname", "unix", "plainname", false},
		{"udp:1.2.3.4:5", "", "", true},
	}
	for _, c := range cases {
		network, address, err := SplitAddr(c.in)
		if (err != nil) != c.wantErr || network != c.network || address != c.address {
			t.Errorf("SplitAddr(%q) = %q, %q, %v", c.in, network, address, err)
		}
	}
}
