package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"

	"trader/internal/event"
)

// Property: Decode never panics and never returns a frame on arbitrary
// byte streams — it either errors or reports EOF. (The monitor must survive
// a corrupted or malicious SUO connection.)
func TestPropertyDecodeRobustOnGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		dec := NewDecoder(bytes.NewReader(raw))
		for i := 0; i < 10; i++ {
			_, err := dec.Decode()
			if err != nil {
				return true // clean rejection
			}
		}
		return true // decoding garbage into valid frames is fine too (JSON luck)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a valid frame followed by garbage yields exactly the frame then
// an error/EOF — corruption never corrupts already-delivered frames.
func TestPropertyValidThenGarbage(t *testing.T) {
	f := func(garbage []byte, suo string) bool {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(Message{Type: TypeHello, SUO: suo}); err != nil {
			return false
		}
		buf.Write(garbage)
		dec := NewDecoder(&buf)
		m, err := dec.Decode()
		if err != nil || m.Type != TypeHello || m.SUO != suo {
			return false
		}
		// Whatever follows: no panic.
		for i := 0; i < 5; i++ {
			if _, err := dec.Decode(); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecode is the native fuzz target (the testing/quick properties above
// are its fixed-budget cousins): arbitrary byte streams through the framing
// layer and both payload codecs must be decoded or cleanly rejected, never
// panic, hang, or over-allocate — the daemon shares a process with a whole
// fleet of other connections. CI's smoke job runs this for 10s on every
// push (`make fuzz`); `make fuzz FUZZTIME=10m` digs deeper.
func FuzzDecode(f *testing.F) {
	// Seed the corpus with well-formed frames in both codecs — the mutator
	// works best from valid structure — plus truncations and raw noise.
	ev := event.Event{Kind: event.Output, Name: "out", Source: "suo", At: 42, Seq: 7}.
		With("x", 1.5).With("q", 0.25)
	rep := ErrorReport{Detector: "cmp", Observable: "x", Expected: 1, Actual: 2, Consecutive: 3, At: 42}
	snap := Snapshot{Blocks: 130, Events: 9, Dropped: 1, Windows: []SpectrumWindow{
		{Seq: 1, At: 50, Words: []uint64{0xdeadbeef, 0, 0x8000000000000000}},
		{Seq: 2},
	}}
	msgs := []Message{
		{Type: TypeHello, SUO: "fuzz-dev", Codec: CodecBinary},
		{Type: TypeOutput, SUO: "fuzz-dev", Event: &ev, At: 42},
		{Type: TypeError, SUO: "fuzz-dev", Error: &rep, At: 42},
		{Type: TypeHeartbeat, SUO: "fuzz-dev", At: 99},
		{Type: TypeControl, SUO: "fuzz-dev", Control: CtrlRestart, Target: "restart", At: 99},
		{Type: TypeControl, SUO: "fuzz-dev", Control: CtrlRestart, Target: "restart", At: 108,
			Trace: &TraceContext{TraceID: 0xdeadbeefcafe0123, Parent: 7}},
		Ack("fuzz-dev", CtrlRestart, 100),
		{Type: TypeSnapshotReq, SUO: "fuzz-dev", At: 101},
		{Type: TypeSnapshot, SUO: "fuzz-dev", Target: "fail", At: 102, Snapshot: &snap},
		{Type: TypeHello, SUO: "fuzz-dev", Codec: CodecBinary, Credits: 4096},
		{Type: TypeCredit, SUO: "fuzz-dev", Credits: 1 << 31},
		{Type: TypeHeartbeat, SUO: "fuzz-dev", At: 103, Credits: 7},
		{Type: TypeShed, SUO: "fuzz-dev", At: 104, Shed: &ShedRecord{Observations: 1 << 40, Heartbeats: 3}},
		{Type: TypeHello, SUO: "fuzz-edge", Codec: CodecBinary, Role: RoleEdge,
			Handoff: &HandoffRecord{From: "fuzz-edge", Range: 1, Of: 2, Dir: "/tmp/j"}},
		{Type: TypeRollup, SUO: "fuzz-edge", Rollup: &RollupDelta{Seq: 9, Devices: 1 << 20,
			Counters: []RollupCounter{{Name: "dispatched", V: -1 << 40}, {Name: "reports", V: 3}}}},
		{Type: TypeHandoff, SUO: "fuzz-dev", At: 105,
			Handoff:    &HandoffRecord{From: "fuzz-edge", To: "other", Pos: 1 << 33},
			Checkpoint: &Checkpoint{Plane: PlaneDevice, Counters: []CheckpointCounter{{Name: "c", V: 1}}}},
		{Type: TypeSpectrumDelta, SUO: "fuzz-dev", Target: "fail", At: 106,
			Delta: &SpectrumDelta{Seq: 5, Blocks: 60000,
				Index: []uint32{0, 7, 937}, Words: []uint64{1, 0xdeadbeef, 1 << 63}}},
		{Type: TypeCheckpoint, At: 107, Checkpoint: &Checkpoint{Plane: "diagnosis",
			Parts: []CheckpointPart{{ID: "fuzz-dev", NFail: 1,
				Cells: []CheckpointCell{{Block: 937, Fail: 1, Pass: 2}}}}}},
	}
	for _, codec := range []Codec{JSON, Binary} {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		enc.SetCodec(codec)
		for _, m := range msgs {
			if err := enc.Encode(m); err != nil {
				f.Fatal(err)
			}
		}
		raw := buf.Bytes()
		f.Add(raw, codec.Name() == CodecBinary)
		f.Add(raw[:len(raw)/2], codec.Name() == CodecBinary)
	}
	f.Add([]byte{}, false)
	f.Add([]byte{0, 0, 0, 4, 0xff, 0xff, 0xff, 0xff}, true)

	f.Fuzz(func(t *testing.T, raw []byte, useBinary bool) {
		dec := NewDecoder(bytes.NewReader(raw))
		if useBinary {
			dec.SetCodec(Binary)
		}
		// A stream either yields frames or fails; each Decode consumes
		// input, so the loop is bounded by the input length.
		for i := 0; i < 16; i++ {
			if _, err := dec.Decode(); err != nil {
				return
			}
		}
	})
}

// A header announcing a huge frame must be rejected before allocation.
func TestHugeFrameHeaderRejectedEarly(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xffffffff)
	dec := NewDecoder(bytes.NewReader(hdr[:]))
	if _, err := dec.Decode(); err == nil || err == io.EOF {
		t.Fatalf("err = %v, want explicit rejection", err)
	}
}
