package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
)

// Property: Decode never panics and never returns a frame on arbitrary
// byte streams — it either errors or reports EOF. (The monitor must survive
// a corrupted or malicious SUO connection.)
func TestPropertyDecodeRobustOnGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		dec := NewDecoder(bytes.NewReader(raw))
		for i := 0; i < 10; i++ {
			_, err := dec.Decode()
			if err != nil {
				return true // clean rejection
			}
		}
		return true // decoding garbage into valid frames is fine too (JSON luck)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a valid frame followed by garbage yields exactly the frame then
// an error/EOF — corruption never corrupts already-delivered frames.
func TestPropertyValidThenGarbage(t *testing.T) {
	f := func(garbage []byte, suo string) bool {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(Message{Type: TypeHello, SUO: suo}); err != nil {
			return false
		}
		buf.Write(garbage)
		dec := NewDecoder(&buf)
		m, err := dec.Decode()
		if err != nil || m.Type != TypeHello || m.SUO != suo {
			return false
		}
		// Whatever follows: no panic.
		for i := 0; i < 5; i++ {
			if _, err := dec.Decode(); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A header announcing a huge frame must be rejected before allocation.
func TestHugeFrameHeaderRejectedEarly(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xffffffff)
	dec := NewDecoder(bytes.NewReader(hdr[:]))
	if _, err := dec.Decode(); err == nil || err == io.EOF {
		t.Fatalf("err = %v, want explicit rejection", err)
	}
}
