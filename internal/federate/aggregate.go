package federate

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/trace"
	"trader/internal/wire"
)

// Aggregator is the upstream side of the federation tier: it accepts edge
// uplinks (RoleEdge Hellos), credits each rollup delta exactly once into a
// per-edge cumulative account, merges the accounts into the fleet-wide
// View, relays live migrations between edges, and — when an edge dies and
// Failover is set — directs a survivor to adopt the dead edge's journal
// and repoints its ranges. Configure the fields, then Serve listeners.
type Aggregator struct {
	// Ranges is the device-ID hash range count edges claim against
	// (fleet.RangeOf(id, Ranges)). Required, must match every edge's Of.
	Ranges int
	// Journal, when non-nil, receives every ownership change write-ahead —
	// range claims, per-device moves, failover repoints — so Recover
	// rebuilds the range map after an aggregator restart. Credited rollup
	// totals are deliberately NOT journaled: a restarted aggregator's empty
	// resume baselines make each edge re-send its full cumulative state.
	Journal fleet.FrameJournal
	// Failover is the grace period after an edge uplink drops before the
	// aggregator directs a survivor to adopt its journal. Zero disables
	// automatic failover (Adopt can still be triggered by reconnection).
	Failover time.Duration
	// HelloTimeout bounds the wait for an uplink's Hello (default 5s).
	HelloTimeout time.Duration
	// Tracer, when non-nil, records a receive-side uplink span for every
	// rollup delta that arrives carrying a trace context. The span adopts
	// the edge's trace ID — usually the edge's p999 tail-latency exemplar —
	// so the aggregator's /trace names the edge-side span chains behind the
	// tails it aggregates (§6.2).
	Tracer *trace.Tracer
	// Logf, when non-nil, receives rollup and lifecycle lines.
	Logf func(format string, args ...any)

	mu         sync.Mutex
	wg         sync.WaitGroup
	rmap       *RangeMap
	edges      map[string]*edgeSession // live uplinks
	state      map[string]*edgeState   // credited accounts (live and dead)
	listeners  []net.Listener
	done       chan struct{}
	closed     bool
	migrations uint64
	adoptions  uint64
	handoffs   uint64
}

// edgeState is one edge's credited account: the cumulative totals the
// aggregator has accepted from it, and the sequence number of the last
// credited delta (the dedup key for exactly-once crediting).
type edgeState struct {
	seq      uint64
	counters Counters
	devices  int64
	rng      int
	dir      string
	live     bool
	downAt   time.Time
}

type edgeSession struct {
	id   string
	conn *wire.Conn
	nc   net.Conn
}

func (a *Aggregator) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

// init is called under a.mu by every entry point.
func (a *Aggregator) init() {
	if a.rmap == nil {
		a.rmap = NewRangeMap(a.Ranges)
		a.edges = make(map[string]*edgeSession)
		a.state = make(map[string]*edgeState)
		a.done = make(chan struct{})
	}
}

// Serve accepts edge uplinks on ln until the listener closes (returning
// nil after Close) or fails.
func (a *Aggregator) Serve(ln net.Listener) error {
	a.mu.Lock()
	a.init()
	if a.closed {
		a.mu.Unlock()
		ln.Close()
		return nil
	}
	a.listeners = append(a.listeners, ln)
	a.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			a.mu.Lock()
			closed := a.closed
			a.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.handle(nc)
		}()
	}
}

// Close stops the aggregator: listeners close, uplinks drop, pending
// failover timers cancel, and every handler goroutine has exited on return.
func (a *Aggregator) Close() {
	a.mu.Lock()
	a.init()
	if a.closed {
		a.mu.Unlock()
		a.wg.Wait()
		return
	}
	a.closed = true
	close(a.done)
	for _, ln := range a.listeners {
		ln.Close()
	}
	for _, s := range a.edges {
		s.nc.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
}

// handle runs one uplink: vet the edge Hello, send the resume baseline,
// then credit deltas and relay handoffs until the connection drops.
func (a *Aggregator) handle(nc net.Conn) {
	c := wire.NewConn(nc)
	helloTimeout := a.HelloTimeout
	if helloTimeout <= 0 {
		helloTimeout = 5 * time.Second
	}
	nc.SetReadDeadline(time.Now().Add(helloTimeout))
	hello, err := c.ReadHello()
	if err != nil {
		nc.Close()
		return
	}
	nc.SetReadDeadline(time.Time{})
	id := hello.SUO
	reject := func(detail string) {
		c.RejectHello(id, detail)
		nc.Close()
	}
	if hello.Role != wire.RoleEdge || hello.Handoff == nil {
		reject("aggregator accepts edge uplinks only")
		return
	}
	claim := *hello.Handoff
	if id == "" {
		reject("edge hello without an ID")
		return
	}

	sess := &edgeSession{id: id, conn: c, nc: nc}
	a.mu.Lock()
	a.init()
	st, detail := a.admit(sess, claim)
	a.mu.Unlock()
	if detail != "" {
		reject(detail)
		return
	}
	if _, err := c.ReplyHello(hello); err != nil {
		a.drop(sess)
		return
	}
	// Resume baseline: the cumulative totals already credited to this edge.
	// A fresh (or restarted) aggregator sends zeroes, making the edge's
	// first delta its full cumulative state.
	a.mu.Lock()
	base := wire.Message{Type: wire.TypeRollup, SUO: id, Rollup: &wire.RollupDelta{
		Seq: st.seq, Devices: st.devices, Counters: st.counters.ToWire()}}
	a.mu.Unlock()
	if err := c.Encode(base); err != nil {
		a.drop(sess)
		return
	}
	a.logf("federate: aggregator: edge %s connected (range %d/%d, resume seq %d)",
		id, claim.Range, claim.Of, base.Rollup.Seq)

	for {
		m, err := c.Decode()
		if err != nil {
			break
		}
		switch {
		case m.Type == wire.TypeRollup && m.Rollup != nil:
			a.credit(st, m.Rollup)
			if rctx := trace.FromWire(m.Trace); rctx.Live() {
				// The edge attached a trace context (its current tail
				// exemplar): record the receive side under the same trace.
				a.Tracer.Span(rctx, trace.KindUplink, -1, id, time.Now(), 0, false)
			}
			// Always ack, even a stale retransmit: the ack is what lets the
			// edge rotate its baseline forward.
			if err := c.Encode(wire.Ack(id, "", sim.Time(m.Rollup.Seq))); err != nil {
				goto out
			}
		case m.Type == wire.TypeHandoff:
			a.relayHandoff(id, m)
		case m.Type == wire.TypeAck && m.Control == wire.CtrlMigrate:
			a.mu.Lock()
			a.migrations++
			a.mu.Unlock()
			a.logf("federate: aggregator: device %s now live on %s", m.SUO, id)
		case m.Type == wire.TypeAck && m.Control == wire.CtrlAdopt:
			a.completeAdoption(id, m.SUO)
		case m.Type == wire.TypeHeartbeat:
			if err := c.Encode(m); err != nil {
				goto out
			}
		}
	}
out:
	a.drop(sess)
}

// admit vets an edge claim under a.mu. It returns the edge's (possibly
// pre-existing) credited account, or a non-empty rejection detail.
func (a *Aggregator) admit(sess *edgeSession, claim wire.HandoffRecord) (*edgeState, string) {
	if a.closed {
		return nil, "aggregator shutting down"
	}
	if claim.Of != a.Ranges {
		return nil, fmt.Sprintf("range count mismatch: edge claims %d ranges, aggregator has %d", claim.Of, a.Ranges)
	}
	if claim.Range < 0 || claim.Range >= a.Ranges {
		return nil, fmt.Sprintf("range %d out of [0,%d)", claim.Range, a.Ranges)
	}
	if _, dup := a.edges[sess.id]; dup {
		return nil, "edge ID already connected"
	}
	if owner := a.rmap.Owner(claim.Range); owner != "" && owner != sess.id {
		if st := a.state[owner]; st != nil && st.live {
			return nil, fmt.Sprintf("range %d owned by live edge %s", claim.Range, owner)
		}
	}
	st := a.state[sess.id]
	if st == nil {
		st = &edgeState{counters: Counters{}}
		a.state[sess.id] = st
	}
	st.live = true
	st.rng = claim.Range
	st.dir = claim.Dir
	if a.rmap.Owner(claim.Range) != sess.id {
		a.rmap.Assign(claim.Range, sess.id)
		a.journal(wire.Message{Type: wire.TypeHandoff,
			Handoff: &wire.HandoffRecord{To: sess.id, Range: claim.Range, Of: a.Ranges, Dir: claim.Dir}})
	}
	a.edges[sess.id] = sess
	return st, ""
}

// journal appends an ownership record, called under a.mu. Ownership changes
// are rare (claims, migrations, failovers), so holding the lock across the
// group-commit fsync is fine; the write-ahead ordering is what matters.
func (a *Aggregator) journal(m wire.Message) {
	if a.Journal == nil {
		return
	}
	if err := a.Journal.Append(m); err != nil {
		a.logf("federate: aggregator: journal: %v", err)
	}
}

// credit folds one delta into an edge's account exactly once: deltas are
// credited in sequence order, and a sequence number at or below the last
// credited one is a retransmit of state already counted.
func (a *Aggregator) credit(st *edgeState, d *wire.RollupDelta) {
	a.mu.Lock()
	if d.Seq > st.seq {
		st.counters.Add(FromWire(d.Counters))
		st.devices = d.Devices
		st.seq = d.Seq
	}
	a.mu.Unlock()
}

// relayHandoff processes a migration frame from a source edge: journal the
// ownership move write-ahead, repoint the device in the range map, forward
// the frame (checkpoint and all) to the destination edge.
func (a *Aggregator) relayHandoff(src string, m wire.Message) {
	if m.SUO == "" || m.Handoff == nil {
		return
	}
	to := m.Handoff.To
	a.mu.Lock()
	a.journal(wire.Message{Type: wire.TypeHandoff, SUO: m.SUO,
		Handoff: &wire.HandoffRecord{From: m.Handoff.From, To: to}})
	a.rmap.Move(m.SUO, to)
	a.handoffs++
	dest := a.edges[to]
	a.mu.Unlock()
	if dest == nil {
		// The move is journaled and the device's state is safe in the
		// source's journal record; it comes back when the destination
		// connects and replays, or by adoption.
		a.logf("federate: aggregator: handoff of %s to %s: destination not connected", m.SUO, to)
		return
	}
	if err := dest.conn.Encode(m); err != nil {
		a.logf("federate: aggregator: forwarding handoff of %s to %s: %v", m.SUO, to, err)
	}
}

// drop marks an edge dead and, if Failover is set, arms the adoption timer.
func (a *Aggregator) drop(sess *edgeSession) {
	sess.nc.Close()
	a.mu.Lock()
	if a.edges[sess.id] != sess { // superseded by a reconnect
		a.mu.Unlock()
		return
	}
	delete(a.edges, sess.id)
	st := a.state[sess.id]
	if st != nil {
		st.live = false
		st.downAt = time.Now()
	}
	failover := a.Failover > 0 && !a.closed && st != nil
	a.mu.Unlock()
	a.logf("federate: aggregator: edge %s disconnected", sess.id)
	if failover {
		// Guaranteed to register before this handler's own wg.Done, so
		// Close's Wait covers the failover goroutine too.
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.failoverAfter(sess.id)
		}()
	}
}

// failoverAfter waits the grace period and, if the edge has not come back,
// directs the lowest-named live edge to adopt its journal.
func (a *Aggregator) failoverAfter(dead string) {
	t := time.NewTimer(a.Failover)
	defer t.Stop()
	select {
	case <-a.done:
		return
	case <-t.C:
	}
	a.mu.Lock()
	st := a.state[dead]
	if st == nil || st.live || a.closed {
		a.mu.Unlock()
		return
	}
	if st.dir == "" {
		a.mu.Unlock()
		a.logf("federate: aggregator: cannot fail over %s: no journal advertised", dead)
		return
	}
	var ids []string
	for id := range a.edges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) == 0 {
		a.mu.Unlock()
		a.logf("federate: aggregator: cannot fail over %s: no live edges", dead)
		return
	}
	survivor := a.edges[ids[0]]
	dir := st.dir
	a.mu.Unlock()
	a.logf("federate: aggregator: edge %s still down after %s; directing %s to adopt %s",
		dead, a.Failover, survivor.id, dir)
	err := survivor.conn.Encode(wire.Message{Type: wire.TypeControl, SUO: dead,
		Control: wire.CtrlAdopt, Target: dir})
	if err != nil {
		a.logf("federate: aggregator: adoption directive to %s: %v", survivor.id, err)
	}
}

// completeAdoption finishes a failover once the survivor acks CtrlAdopt:
// the dead edge's credited account is dropped and its ranges repointed.
// Ordering makes this conserve the merged view: the ack and the survivor's
// next delta travel the same FIFO uplink, so the drop lands before the
// survivor's inflated (post-adoption) cumulative state is credited.
func (a *Aggregator) completeAdoption(survivor, dead string) {
	a.mu.Lock()
	st := a.state[dead]
	if st == nil || st.live {
		a.mu.Unlock()
		a.logf("federate: aggregator: stale adoption ack for %s from %s ignored", dead, survivor)
		return
	}
	ranges := a.rmap.Repoint(dead, survivor)
	a.journal(wire.Message{Type: wire.TypeHandoff,
		Handoff: &wire.HandoffRecord{From: dead, To: survivor, Of: a.Ranges}})
	delete(a.state, dead)
	a.adoptions++
	a.mu.Unlock()
	a.logf("federate: aggregator: %s adopted %s (ranges %v repointed)", survivor, dead, ranges)
}

// Migrate directs a live migration: the device's current owner drains and
// hands it to the named edge. The move completes asynchronously — the
// range map repoints when the source's handoff frame arrives, and the
// destination's ack confirms the device is live again.
func (a *Aggregator) Migrate(device, to string) error {
	a.mu.Lock()
	a.init()
	owner := a.rmap.OwnerOf(device)
	src := a.edges[owner]
	dstState := a.state[to]
	a.mu.Unlock()
	if owner == "" {
		return fmt.Errorf("federate: no owner for device %q", device)
	}
	if owner == to {
		return fmt.Errorf("federate: device %q already on %q", device, to)
	}
	if src == nil {
		return fmt.Errorf("federate: owner %q of device %q not connected", owner, device)
	}
	if dstState == nil || !dstState.live {
		return fmt.Errorf("federate: destination %q not connected", to)
	}
	return src.conn.Encode(wire.Message{Type: wire.TypeControl, SUO: device,
		Control: wire.CtrlMigrate, Target: to})
}

// EdgeView is one edge's slice of the merged view.
type EdgeView struct {
	ID       string
	Live     bool
	Range    int
	Seq      uint64
	Devices  int64
	Counters Counters
}

// View is the aggregator's merged fleet-wide state: the sum of every
// credited per-edge account. Because all counters are order-independent
// integer folds, View equals what one daemon ingesting every device would
// report — the federation conservation law.
type View struct {
	Devices    int64
	Counters   Counters
	Edges      []EdgeView
	Migrations uint64
	Adoptions  uint64
	Handoffs   uint64
}

// View returns the current merged view. Edges are sorted by ID; dead edges
// whose accounts have not been adopted remain counted (their devices are
// still out there until failover decides otherwise).
func (a *Aggregator) View() View {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.init()
	v := View{Counters: Counters{}, Migrations: a.migrations,
		Adoptions: a.adoptions, Handoffs: a.handoffs}
	ids := make([]string, 0, len(a.state))
	for id := range a.state {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := a.state[id]
		v.Devices += st.devices
		v.Counters.Add(st.counters)
		v.Edges = append(v.Edges, EdgeView{ID: id, Live: st.live, Range: st.rng,
			Seq: st.seq, Devices: st.devices, Counters: st.counters.Clone()})
	}
	return v
}

// Owners returns the range map's current assignment, range index → edge ID.
func (a *Aggregator) Owners() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.init()
	out := make([]string, a.Ranges)
	for r := range out {
		out[r] = a.rmap.Owner(r)
	}
	return out
}

// OwnerOf returns the edge a device currently belongs to.
func (a *Aggregator) OwnerOf(device string) string {
	a.mu.Lock()
	a.init()
	m := a.rmap
	a.mu.Unlock()
	return m.OwnerOf(device)
}

// Recover rebuilds the range map from an ownership journal written by a
// previous aggregator run: claims re-assign ranges, per-device moves
// re-apply, failover records repoint. Credited totals are NOT recovered —
// they come back through resume baselines as edges reconnect. Call before
// Serve.
func (a *Aggregator) Recover(r *journal.Reader) (int, error) {
	a.mu.Lock()
	a.init()
	a.mu.Unlock()
	n := 0
	for {
		m, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		if m.Type != wire.TypeHandoff || m.Handoff == nil {
			continue
		}
		h := m.Handoff
		a.mu.Lock()
		switch {
		case m.SUO != "":
			a.rmap.Move(m.SUO, h.To)
		case h.From == "" && h.To != "":
			a.rmap.Assign(h.Range, h.To)
			if h.Dir != "" {
				st := a.state[h.To]
				if st == nil {
					st = &edgeState{counters: Counters{}}
					a.state[h.To] = st
				}
				st.rng, st.dir = h.Range, h.Dir
			}
		case h.From != "" && h.To != "":
			a.rmap.Repoint(h.From, h.To)
			delete(a.state, h.From)
		}
		a.mu.Unlock()
		n++
	}
	return n, nil
}
