// Package federate scales traderd past one process: an edge/aggregator
// tier in which edge ingesters each own a contiguous device-ID hash range
// of the fleet and stream compact rollup deltas upstream to an aggregator,
// which merges them into one fleet-wide view — the paper's E7 monitor
// migration carried to production scale (ARCHITECTURE.md §7).
//
// The tier leans on one property the rest of the repo already enforces:
// every fleet-level statistic is an order-independent integer fold (monitor
// counters, traffic counters, shed tiers, latency count/sum). Sums of sums
// compose exactly, so an aggregator that adds up per-edge deltas holds the
// same numbers a single daemon ingesting every device would — the
// conservation law the federation e2e asserts.
//
// Three moving parts:
//
//   - Edge: wraps an edge daemon's fleet.Pool and dials upstream
//     (wire.Conn, RoleEdge Hello), flushing a RollupDelta every Flush
//     interval and carrying out the migrations and adoptions the
//     aggregator directs.
//   - Aggregator: accepts edge uplinks, credits each delta exactly once
//     (per-edge sequence numbers, TypeAck replies), serves the merged
//     View, orchestrates live migration, and repoints the range map when
//     an edge dies.
//   - RangeMap: device-ID hash ranges (fleet.RangeOf, the same FNV-1a that
//     routes devices to shards) plus per-device overrides for migrated
//     devices.
//
// Delta streaming is exactly-once without aggregator persistence: after
// the Hello exchange the aggregator sends the cumulative totals it has
// already credited to that edge as a resume baseline, the edge streams
// signed deltas against it (one in flight at a time), and a restarted
// aggregator — whose credited totals reset to zero — is automatically
// re-fed each edge's full cumulative state by the same mechanism.
package federate

import (
	"sort"
	"sync"

	"trader/internal/fleet"
	"trader/internal/wire"
)

// Counters is a named set of signed cumulative counters (or deltas between
// two cumulative states). The zero map is empty and usable with Clone/Diff.
type Counters map[string]int64

// Clone returns an independent copy.
func (c Counters) Clone() Counters {
	out := make(Counters, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Add folds d into c in place.
func (c Counters) Add(d Counters) {
	for k, v := range d {
		c[k] += v
	}
}

// Diff returns c − prev with zero entries omitted: the delta that, added to
// prev, reproduces c.
func (c Counters) Diff(prev Counters) Counters {
	out := Counters{}
	for k, v := range c {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range prev {
		if _, ok := c[k]; !ok && v != 0 {
			out[k] = -v
		}
	}
	return out
}

// ToWire renders the set as sorted wire counters (byte-stable output).
func (c Counters) ToWire() []wire.RollupCounter {
	out := make([]wire.RollupCounter, 0, len(c))
	for k, v := range c {
		out = append(out, wire.RollupCounter{Name: k, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FromWire parses wire counters back into a set.
func FromWire(list []wire.RollupCounter) Counters {
	out := make(Counters, len(list))
	for _, c := range list {
		out[c.Name] = c.V
	}
	return out
}

// Sample is one consistent reading of an edge's cumulative fleet state.
type Sample struct {
	// Devices is the edge's live device count — a gauge.
	Devices int64
	// Counters are the edge's cumulative fleet counters.
	Counters Counters
}

// Sampler produces an edge's current cumulative Sample. It runs on the
// edge's uplink goroutine; pool barriers (Rollup) are fine, shard-goroutine
// contexts are not.
type Sampler func() Sample

// PoolSampler builds the standard Sampler over an edge daemon's pool and
// (optionally) its ingestion server: the fleet rollup's monitor and traffic
// counters, the shed tiers, the latency histogram's order-independent
// moments (count and sum), and the server's connection counters. Each extra
// function may add further counters to the sample (the recovery-control and
// diagnosis rollups in traderd); extras run after the built-ins and may
// overwrite them.
func PoolSampler(pool *fleet.Pool, srv *fleet.Server, extra ...func(Counters)) Sampler {
	return func() Sample {
		ro := pool.Rollup()
		c := Counters{
			"inputs":        int64(ro.Monitor.InputsSeen),
			"outputs":       int64(ro.Monitor.OutputsSeen),
			"comparisons":   int64(ro.Monitor.Comparisons),
			"deviations":    int64(ro.Monitor.Deviations),
			"errors":        int64(ro.Monitor.Errors),
			"model_errors":  int64(ro.Monitor.ModelErrors),
			"silence_scans": int64(ro.Monitor.SilenceScans),
			"dispatched":    int64(ro.Dispatched),
			"dropped":       int64(ro.Dropped),
			"quarantined":   int64(ro.Quarantined),
			"reports":       int64(ro.Reports),
			"shed_obs":      int64(ro.ShedObservations),
			"shed_hb":       int64(ro.ShedHeartbeats),
		}
		lat := pool.Latency()
		c["latency_count"] = int64(lat.Count())
		c["latency_sum_ns"] = int64(lat.Sum())
		if srv != nil {
			ss := srv.Stats()
			c["frames"] = int64(ss.Frames)
			c["conns_accepted"] = int64(ss.Accepted)
			c["conns_rejected"] = int64(ss.Rejected)
			c["conns_disconnected"] = int64(ss.Disconnected)
			c["credit_grants"] = int64(ss.CreditGrants)
			c["credit_violations"] = int64(ss.CreditViolations)
		}
		for _, f := range extra {
			f(c)
		}
		return Sample{Devices: int64(ro.Devices), Counters: c}
	}
}

// RangeMap tracks which edge owns each device: by contiguous hash range
// (fleet.RangeOf over the range count), with per-device overrides for
// migrated devices. Safe for concurrent use.
type RangeMap struct {
	mu     sync.RWMutex
	owners []string          // range index → edge ID ("" = unassigned)
	moved  map[string]string // device ID → edge ID override
}

// NewRangeMap creates a map over n hash ranges.
func NewRangeMap(n int) *RangeMap {
	return &RangeMap{owners: make([]string, n), moved: make(map[string]string)}
}

// Ranges returns the range count.
func (m *RangeMap) Ranges() int { return len(m.owners) }

// Assign points a range at an edge.
func (m *RangeMap) Assign(r int, edge string) {
	m.mu.Lock()
	m.owners[r] = edge
	m.mu.Unlock()
}

// Owner returns the edge owning range r.
func (m *RangeMap) Owner(r int) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.owners[r]
}

// OwnerOf returns the edge a device belongs to: its migration override if
// one exists, otherwise the owner of its hash range.
func (m *RangeMap) OwnerOf(device string) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if e, ok := m.moved[device]; ok {
		return e
	}
	return m.owners[fleet.RangeOf(device, len(m.owners))]
}

// Move overrides one device's owner (a completed migration). Moving a
// device back to its hash-range owner clears the override.
func (m *RangeMap) Move(device, edge string) {
	m.mu.Lock()
	if m.owners[fleet.RangeOf(device, len(m.owners))] == edge {
		delete(m.moved, device)
	} else {
		m.moved[device] = edge
	}
	m.mu.Unlock()
}

// Repoint reassigns every range owned by from — and every moved device
// whose override names from — to to, returning the repointed range
// indices. The failover path: a dead edge's whole ownership transfers to
// the survivor adopting its journal.
func (m *RangeMap) Repoint(from, to string) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ranges []int
	for r, e := range m.owners {
		if e == from {
			m.owners[r] = to
			ranges = append(ranges, r)
		}
	}
	for d, e := range m.moved {
		if e == from {
			m.moved[d] = to
		}
	}
	return ranges
}
