package federate

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

func TestCountersDiffAddRoundTrip(t *testing.T) {
	prev := Counters{"a": 10, "b": -3, "gone": 7}
	cur := Counters{"a": 12, "b": -3, "c": 5}
	d := cur.Diff(prev)
	// b is unchanged → omitted; gone disappeared → negated.
	want := Counters{"a": 2, "c": 5, "gone": -7}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("Diff = %v, want %v", d, want)
	}
	prev.Add(d)
	for k, v := range cur {
		if prev[k] != v {
			t.Fatalf("after Add, %s = %d, want %d", k, prev[k], v)
		}
	}
	if prev["gone"] != 0 {
		t.Fatalf("after Add, gone = %d, want 0", prev["gone"])
	}
	// Wire round trip is lossless and sorted.
	w := d.ToWire()
	for i := 1; i < len(w); i++ {
		if w[i-1].Name >= w[i].Name {
			t.Fatalf("ToWire not sorted: %v", w)
		}
	}
	if back := FromWire(w); !reflect.DeepEqual(back, d) {
		t.Fatalf("FromWire(ToWire) = %v, want %v", back, d)
	}
}

func TestRangeMap(t *testing.T) {
	m := NewRangeMap(4)
	m.Assign(0, "edge-a")
	m.Assign(1, "edge-a")
	m.Assign(2, "edge-b")
	m.Assign(3, "edge-b")
	dev := fleet.DeviceID(7)
	hashOwner := m.Owner(fleet.RangeOf(dev, 4))
	if got := m.OwnerOf(dev); got != hashOwner {
		t.Fatalf("OwnerOf = %q, want hash owner %q", got, hashOwner)
	}
	other := "edge-a"
	if hashOwner == "edge-a" {
		other = "edge-b"
	}
	m.Move(dev, other)
	if got := m.OwnerOf(dev); got != other {
		t.Fatalf("after Move, OwnerOf = %q, want %q", got, other)
	}
	// Moving back to the hash owner clears the override.
	m.Move(dev, hashOwner)
	if len(m.moved) != 0 {
		t.Fatalf("override not cleared on move home: %v", m.moved)
	}
	// Repoint transfers ranges and overrides.
	m.Move(dev, other)
	ranges := m.Repoint(other, "edge-c")
	if len(ranges) != 2 {
		t.Fatalf("Repoint moved %d ranges, want 2", len(ranges))
	}
	if got := m.OwnerOf(dev); got != "edge-c" {
		t.Fatalf("after Repoint, OwnerOf = %q, want edge-c", got)
	}
}

// deviceInRange returns a device ID hashing to the given range.
func deviceInRange(rng, of int) string {
	for i := 0; ; i++ {
		if id := fleet.DeviceID(i); fleet.RangeOf(id, of) == rng {
			return id
		}
	}
}

// harness is one edge daemon stood up for tests: a pool, an optional
// journal that records dispatched frames like a fleet.Server would, and the
// Edge uplink running against an aggregator listener.
type harness struct {
	t    *testing.T
	pool *fleet.Pool
	jw   *journal.Writer
	edge *Edge
	done chan struct{}
	ran  chan struct{} // closed when the uplink goroutine has exited
	at   map[string]sim.Time
}

func newHarness(t *testing.T, id, upstream string, rng, of int, dir string) *harness {
	t.Helper()
	h := &harness{t: t, pool: fleet.NewPool(fleet.Options{Shards: 2}), done: make(chan struct{}), at: map[string]sim.Time{}}
	t.Cleanup(h.pool.Stop)
	var fj fleet.FrameJournal
	if dir != "" {
		jw, err := journal.Create(dir, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { jw.Close() })
		h.jw = jw
		fj = jw
	}
	h.edge = &Edge{
		ID: id, Upstream: upstream, Range: rng, Of: of,
		Sample:  PoolSampler(h.pool, nil),
		Pool:    h.pool,
		Factory: fleet.LightMonitorFactory(),
		Journal: fj, JournalDir: dir,
		Flush: 10 * time.Millisecond,
		Logf:  t.Logf,
	}
	return h
}

func (h *harness) start() {
	h.ran = make(chan struct{})
	ran, edge, done := h.ran, h.edge, h.done
	go func() {
		defer close(ran)
		edge.Run(done)
	}()
	h.t.Cleanup(h.stop)
}

// stop ends the uplink and waits for its goroutine, so nothing logs after
// the test completes. Idempotent.
func (h *harness) stop() {
	select {
	case <-h.done:
	default:
		close(h.done)
	}
	if h.ran != nil {
		<-h.ran
	}
}

// addDevice registers a device and journals nothing (registration is
// implicit in the first journaled frame, as with a live server).
func (h *harness) addDevice(id string) {
	h.t.Helper()
	if err := h.pool.AddRemoteDevice(id, fleet.LightMonitorFactory(), func(wire.Message) error { return nil }); err != nil {
		h.t.Fatal(err)
	}
}

// stream pushes n matched set/out pairs for the device, journaling each
// frame exactly as the ingestion server would.
func (h *harness) stream(id string, n int) {
	h.t.Helper()
	at := h.at[id]
	for i := 0; i < n; i++ {
		at += 10 * sim.Millisecond
		v := float64(i % 5)
		in := event.Event{Kind: event.Input, Name: "set", Source: id, At: at}.With("x", v)
		out := event.Event{Kind: event.Output, Name: "out", Source: id, At: at}.With("x", v)
		for _, ev := range []event.Event{in, out} {
			ev := ev
			typ := wire.TypeInput
			if ev.Kind == event.Output {
				typ = wire.TypeOutput
			}
			if h.jw != nil {
				if err := h.jw.Append(wire.Message{Type: typ, SUO: id, Event: &ev, At: at}); err != nil {
					h.t.Fatal(err)
				}
			}
			if err := h.pool.Dispatch(id, ev); err != nil {
				h.t.Fatal(err)
			}
		}
	}
	h.at[id] = at
	if err := h.pool.Sync(); err != nil {
		h.t.Fatal(err)
	}
}

// waitView polls the aggregator until cond holds or the deadline passes.
func waitView(t *testing.T, a *Aggregator, what string, cond func(View) bool) View {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v := a.View()
		if cond(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; last view: devices=%d counters=%v edges=%+v",
				what, v.Devices, v.Counters, v.Edges)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func startAggregator(t *testing.T, a *Aggregator) string {
	t.Helper()
	ln, err := wire.Listen("tcp:127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go a.Serve(ln)
	t.Cleanup(a.Close)
	return "tcp:" + ln.Addr().String()
}

// The conservation law, single edge: the aggregator's merged view converges
// to exactly the edge's cumulative sample, and reconnects do not double-credit.
func TestDeltaStreamingConservesAndResumes(t *testing.T) {
	agg := &Aggregator{Ranges: 2, Logf: t.Logf}
	addr := startAggregator(t, agg)
	h := newHarness(t, "edge-0", addr, 0, 2, "")
	dev := fleet.DeviceID(1)
	h.addDevice(dev)
	h.stream(dev, 30)
	h.start()
	defer h.stop()

	sampleEq := func(v View) bool {
		s := h.edge.Sample()
		return v.Devices == s.Devices && reflect.DeepEqual(v.Counters.Diff(s.Counters), Counters{})
	}
	waitView(t, agg, "view to converge to edge sample", sampleEq)

	// Drop the uplink: the edge redials, receives the credited totals as its
	// resume baseline, and further deltas stay exact — nothing double-counts.
	h.stop()
	h.stream(dev, 25)
	h2 := newHarness(t, "edge-0", addr, 0, 2, "")
	h2.pool.Stop() // reuse the first harness's pool instead
	h2.edge.Pool = h.pool
	h2.edge.Sample = PoolSampler(h.pool, nil)
	h.edge = h2.edge
	h.done = h2.done
	h.start()
	defer h.stop()
	v := waitView(t, agg, "view to converge after reconnect", sampleEq)
	if got := v.Counters["outputs"]; got != 55 {
		t.Fatalf("outputs = %d, want 55", got)
	}
	if v.Edges[0].Seq == 0 {
		t.Fatal("resume lost the credited sequence")
	}
}

// An aggregator refuses non-edge clients and mismatched range claims.
func TestAggregatorVetsUplinks(t *testing.T) {
	agg := &Aggregator{Ranges: 2, Logf: t.Logf}
	addr := startAggregator(t, agg)

	// A plain device handshake (no role) must be refused.
	if _, err := wire.Dial(addr, "dev-1", ""); err == nil {
		t.Fatal("roleless handshake accepted by aggregator")
	}

	// A wrong range count must be refused.
	e := &Edge{ID: "edge-x", Upstream: addr, Range: 0, Of: 3}
	c, nc, err := e.dial()
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_, err = c.HandshakeEdge(e.ID, "", wire.HandoffRecord{From: e.ID, Range: 0, Of: 3})
	if err == nil {
		t.Fatal("range-count mismatch accepted by aggregator")
	}
}

// Live migration: the aggregator directs a move, the device's monitor state
// lands intact on the destination, the range map repoints, and the merged
// view is conserved throughout.
func TestLiveMigration(t *testing.T) {
	agg := &Aggregator{Ranges: 2, Logf: t.Logf}
	addr := startAggregator(t, agg)
	dirA, dirB := t.TempDir(), t.TempDir()
	a := newHarness(t, "edge-a", addr, 0, 2, dirA)
	b := newHarness(t, "edge-b", addr, 1, 2, dirB)
	dev := deviceInRange(0, 2)
	a.addDevice(dev)
	a.stream(dev, 40)
	a.start()
	defer a.stop()
	b.start()
	defer b.stop()
	waitView(t, agg, "both edges credited", func(v View) bool {
		return v.Devices == 1 && v.Counters["outputs"] == 40 && len(v.Edges) == 2
	})

	if err := agg.Migrate(dev, "edge-b"); err != nil {
		t.Fatal(err)
	}
	waitView(t, agg, "migration to complete", func(v View) bool {
		return v.Migrations == 1 && agg.OwnerOf(dev) == "edge-b"
	})
	// The device is live on B with its full history.
	deadline := time.Now().Add(5 * time.Second)
	for b.pool.Rollup().Devices != 1 {
		if time.Now().After(deadline) {
			t.Fatal("device never landed on edge-b")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := b.pool.Rollup().Monitor.OutputsSeen; got != 40 {
		t.Fatalf("migrated outputs seen = %d, want 40", got)
	}
	// It keeps monitoring where it left off, and the view stays conserved.
	b.at[dev] = a.at[dev]
	b.stream(dev, 10)
	waitView(t, agg, "post-migration totals", func(v View) bool {
		return v.Devices == 1 && v.Counters["outputs"] == 50
	})

	// Both sides journaled the move: replaying each edge's journal yields
	// exactly the devices it now owns.
	for _, tc := range []struct {
		dir     string
		devices int
	}{{dirA, 0}, {dirB, 1}} {
		r, err := journal.OpenReader(tc.dir)
		if err != nil {
			t.Fatal(err)
		}
		p := fleet.NewPool(fleet.Options{Shards: 2})
		if _, err := p.Replay(r, fleet.LightMonitorFactory()); err != nil {
			t.Fatal(err)
		}
		r.Close()
		if got := p.Rollup().Devices; got != tc.devices {
			t.Fatalf("replay of %s: %d devices, want %d", tc.dir, got, tc.devices)
		}
		p.Stop()
	}
}

// Failover: an edge dies, the aggregator directs the survivor to adopt its
// journal, and afterwards the merged view holds every device and every
// counter the dead edge had — nothing lost, nothing double-counted.
func TestFailoverAdoptionConserves(t *testing.T) {
	agg := &Aggregator{Ranges: 2, Failover: 50 * time.Millisecond, Logf: t.Logf}
	addr := startAggregator(t, agg)
	dirA, dirB := t.TempDir(), t.TempDir()
	a := newHarness(t, "edge-a", addr, 0, 2, dirA)
	b := newHarness(t, "edge-b", addr, 1, 2, dirB)
	const perEdge = 3
	for i := 0; i < perEdge; i++ {
		da, db := fmt.Sprintf("adev-%d", i), fmt.Sprintf("bdev-%d", i)
		a.addDevice(da)
		a.stream(da, 10)
		b.addDevice(db)
		b.stream(db, 20)
	}
	a.start()
	b.start()
	defer b.stop()
	waitView(t, agg, "both edges credited", func(v View) bool {
		return v.Devices == 2*perEdge && v.Counters["outputs"] == perEdge*(10+20)
	})

	a.stop() // the "kill": uplink drops, journal stays on disk
	v := waitView(t, agg, "adoption to complete", func(v View) bool {
		return v.Adoptions == 1 && len(v.Edges) == 1
	})
	if v.Edges[0].ID != "edge-b" {
		t.Fatalf("survivor = %q, want edge-b", v.Edges[0].ID)
	}
	// Zero devices lost, counters conserved across the failover.
	waitView(t, agg, "conserved post-adoption view", func(v View) bool {
		return v.Devices == 2*perEdge && v.Counters["outputs"] == perEdge*(10+20)
	})
	for i := 0; i < perEdge; i++ {
		if got := agg.OwnerOf(fmt.Sprintf("adev-%d", i)); got != "edge-b" {
			t.Fatalf("adev-%d owned by %q after failover, want edge-b", i, got)
		}
	}
	// The survivor's own journal now replays to the merged fleet.
	if err := b.jw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := journal.OpenReader(dirB)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := fleet.NewPool(fleet.Options{Shards: 2})
	defer p.Stop()
	if _, err := p.Replay(r, fleet.LightMonitorFactory()); err != nil {
		t.Fatal(err)
	}
	ro := p.Rollup()
	if ro.Devices != 2*perEdge {
		t.Fatalf("survivor journal replays %d devices, want %d", ro.Devices, 2*perEdge)
	}
	if live := b.pool.Rollup(); ro.Monitor != live.Monitor {
		t.Fatalf("survivor replay diverged from live pool:\n got: %+v\nwant: %+v", ro.Monitor, live.Monitor)
	}
}

// The ownership journal reconstructs the range map across an aggregator
// restart.
func TestAggregatorRecover(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	agg := &Aggregator{Ranges: 2, Journal: jw, Logf: t.Logf}
	addr := startAggregator(t, agg)
	a := newHarness(t, "edge-a", addr, 0, 2, "")
	b := newHarness(t, "edge-b", addr, 1, 2, "")
	dev := deviceInRange(0, 2)
	a.addDevice(dev)
	a.start()
	defer a.stop()
	b.start()
	defer b.stop()
	waitView(t, agg, "both edges up", func(v View) bool { return len(v.Edges) == 2 && v.Devices == 1 })
	if err := agg.Migrate(dev, "edge-b"); err != nil {
		t.Fatal(err)
	}
	waitView(t, agg, "migration", func(v View) bool { return v.Migrations == 1 })
	owners := agg.Owners()
	agg.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fresh := &Aggregator{Ranges: 2, Logf: t.Logf}
	n, err := fresh.Recover(r)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 { // two claims + one move
		t.Fatalf("recovered %d ownership records, want >= 3", n)
	}
	if got := fresh.Owners(); !reflect.DeepEqual(got, owners) {
		t.Fatalf("recovered owners = %v, want %v", got, owners)
	}
	if got := fresh.OwnerOf(dev); got != "edge-b" {
		t.Fatalf("recovered OwnerOf(%s) = %q, want edge-b", dev, got)
	}
}
