package federate

import (
	"fmt"
	"net"
	"sort"
	"time"

	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/trace"
	"trader/internal/wire"
)

// Edge is the uplink side of an edge ingester: it owns the daemon's pool
// (devices keep connecting to the edge's own fleet.Server exactly as
// before) and maintains one connection to the aggregator, streaming rollup
// deltas and executing the migrations and adoptions the aggregator
// directs. Configure the fields, then call Run once.
type Edge struct {
	// ID names the edge fleet-wide (the SUO of its uplink Hello). Required.
	ID string
	// Upstream is the aggregator address in wire.SplitAddr notation
	// ("tcp:host:port" or a Unix socket path). Required.
	Upstream string
	// Range of Of is the contiguous device-ID hash range this edge claims
	// (fleet.RangeOf(id, Of) == Range for every device it serves). Of must
	// match the aggregator's configured range count.
	Range, Of int
	// Codec is the uplink payload codec (default binary).
	Codec string
	// Sample reads the edge's cumulative fleet state (see PoolSampler).
	// Required.
	Sample Sampler
	// Pool is the edge daemon's monitor pool, the source and destination
	// of migrated devices. Required.
	Pool *fleet.Pool
	// Factory rebuilds monitors for devices arriving by handoff or
	// adoption. Required.
	Factory fleet.MonitorFactory
	// Journal, when non-nil, receives handoff records write-ahead of every
	// ownership change this edge takes part in, so replaying the edge's
	// journal reconstructs exactly the devices it owns. Point it at the
	// same journal the edge's fleet.Server appends frames to.
	Journal fleet.FrameJournal
	// JournalDir is the directory behind Journal, advertised in the Hello
	// so the aggregator can direct a surviving peer to adopt it after this
	// edge dies. Empty disables adoption of this edge.
	JournalDir string
	// Flush is the rollup-delta cadence (default 250ms).
	Flush time.Duration
	// Tracer, when non-nil, records federation uplink/ack spans and makes
	// each rollup delta carry the edge's current p999 tail-latency exemplar
	// as its wire trace context (§6.2) — the link that lets the aggregator
	// resolve an edge's tail spike to the span chain that produced it,
	// across the federation tier. Give it the same tracer as the edge's
	// fleet.Server and Pool so the exemplar's trace ID resolves locally.
	Tracer *trace.Tracer
	// Logf, when non-nil, receives uplink lifecycle lines.
	Logf func(format string, args ...any)
}

func (e *Edge) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// Run dials the aggregator and streams until done closes, redialing with
// backoff after any uplink failure. Deltas survive reconnects: the
// aggregator's resume baseline tells the edge what has been credited, and
// the next delta carries everything since.
func (e *Edge) Run(done <-chan struct{}) {
	flush := e.Flush
	if flush <= 0 {
		flush = 250 * time.Millisecond
	}
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-done:
			return
		default:
		}
		c, nc, err := e.dial()
		if err == nil {
			backoff = 100 * time.Millisecond
			err = e.session(c, flush, done)
			nc.Close()
		}
		select {
		case <-done:
			return
		default:
		}
		if err != nil {
			e.logf("federate: edge %s: uplink: %v (redial in %s)", e.ID, err, backoff)
		}
		select {
		case <-done:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func (e *Edge) dial() (*wire.Conn, net.Conn, error) {
	network, address, err := wire.SplitAddr(e.Upstream)
	if err != nil {
		return nil, nil, err
	}
	nc, err := net.Dial(network, address)
	if err != nil {
		return nil, nil, err
	}
	return wire.NewConn(nc), nc, nil
}

// session runs one uplink conversation: edge handshake, resume baseline,
// then the flush loop interleaved with whatever the aggregator pushes.
func (e *Edge) session(c *wire.Conn, flush time.Duration, done <-chan struct{}) error {
	codec := e.Codec
	if codec == "" {
		codec = wire.CodecBinary
	}
	claim := wire.HandoffRecord{From: e.ID, Range: e.Range, Of: e.Of, Dir: e.JournalDir}
	if _, err := c.HandshakeEdge(e.ID, codec, claim); err != nil {
		return err
	}
	base, err := c.Decode()
	if err != nil {
		return fmt.Errorf("reading resume baseline: %w", err)
	}
	if base.Type != wire.TypeRollup || base.Rollup == nil {
		return fmt.Errorf("expected resume baseline, got %q", base.Type)
	}
	acked := FromWire(base.Rollup.Counters)
	ackedDevices := base.Rollup.Devices
	seq := base.Rollup.Seq
	e.logf("federate: edge %s: uplink established (resume seq %d)", e.ID, seq)

	type incoming struct {
		m   wire.Message
		err error
	}
	inc := make(chan incoming)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		for {
			m, err := c.Decode()
			select {
			case inc <- incoming{m, err}:
			case <-quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	var inflight *Sample
	// inflightCtx/inflightSent trace the in-flight delta: the uplink span
	// is recorded at send, the ack span closes the round trip when the
	// aggregator credits it.
	var inflightCtx trace.Context
	var inflightSent time.Time
	flushNow := func() error {
		if inflight != nil {
			return nil // one delta in flight at a time
		}
		cur := e.Sample()
		delta := cur.Counters.Diff(acked)
		if len(delta) == 0 && cur.Devices == ackedDevices && seq > 0 {
			return nil // nothing changed since the last credited flush
		}
		seq++
		m := wire.Message{Type: wire.TypeRollup, SUO: e.ID,
			Rollup: &wire.RollupDelta{Seq: seq, Devices: cur.Devices, Counters: delta.ToWire()}}
		inflightCtx, inflightSent = trace.Context{}, time.Now()
		if e.Tracer != nil && e.Pool != nil {
			// The rollup rides under the edge's current p999 exemplar trace
			// when there is one (joining the ingest chain it names — that is
			// how an aggregator-side tail spike resolves back down to one
			// edge frame's lifecycle), or under a fresh trace otherwise.
			lat := e.Pool.Latency()
			ctx := trace.Context{Trace: lat.Exemplar(0.999)}
			if !ctx.Live() {
				ctx = e.Tracer.Force()
			}
			// Uplink spans are frequent steady-state traffic, so they live
			// in the sampled rings, not the forced ring the control plane's
			// never-lose spans are asserted against.
			inflightCtx = e.Tracer.Span(ctx, trace.KindUplink, -1, e.ID, inflightSent, 0, false)
			m.Trace = inflightCtx.Wire()
		}
		if err := c.Encode(m); err != nil {
			return err
		}
		inflight = &cur
		return nil
	}
	if err := flushNow(); err != nil {
		return err
	}
	t := time.NewTicker(flush)
	defer t.Stop()
	for {
		select {
		case <-done:
			return nil
		case <-t.C:
			if err := flushNow(); err != nil {
				return err
			}
		case in := <-inc:
			if in.err != nil {
				return in.err
			}
			m := in.m
			switch {
			case m.Type == wire.TypeAck && m.Control == "":
				if inflight != nil && uint64(m.At) == seq {
					acked = inflight.Counters
					ackedDevices = inflight.Devices
					inflight = nil
					if inflightCtx.Live() {
						// Close the uplink exchange: the ack span carries the
						// delta's full uplink round-trip time.
						e.Tracer.Span(inflightCtx, trace.KindAck, -1, e.ID, inflightSent, time.Since(inflightSent), false)
						inflightCtx = trace.Context{}
					}
				}
			case m.Type == wire.TypeControl && m.Control == wire.CtrlMigrate:
				if err := e.migrate(c, m.SUO, m.Target); err != nil {
					return err
				}
			case m.Type == wire.TypeControl && m.Control == wire.CtrlAdopt:
				if err := e.adoptAndAck(c, m.SUO, m.Target); err != nil {
					return err
				}
			case m.Type == wire.TypeHandoff:
				if err := e.arrive(c, m); err != nil {
					return err
				}
			case m.Type == wire.TypeHeartbeat:
				if err := c.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: e.ID, At: m.At}); err != nil {
					return err
				}
			}
		}
	}
}

// migrate is the source side of a live migration (ARCHITECTURE.md §7.3):
// drain the device behind its shard barrier, capture-and-remove atomically,
// journal the departure, hand the checkpoint upstream.
func (e *Edge) migrate(c *wire.Conn, device, target string) error {
	if err := e.Pool.FlushDevice(device); err != nil {
		return err
	}
	cp, err := e.Pool.HandoffDevice(device)
	if err != nil {
		// Unknown device — already migrated or never here. Not a session
		// error: the aggregator's range map is the authority, not us.
		e.logf("federate: edge %s: migrate %s: %v", e.ID, device, err)
		return nil
	}
	var pos uint64
	if sh, ok := e.Journal.(*journal.Sharded); ok && sh != nil {
		pos = sh.Stats().Appends
	}
	h := wire.HandoffRecord{From: e.ID, To: target, Pos: pos}
	if e.Journal != nil {
		dep := h
		dep.Out = true
		err := e.Journal.Append(wire.Message{Type: wire.TypeHandoff, SUO: device,
			At: cp.At, Handoff: &dep, Checkpoint: cp})
		if err != nil {
			return fmt.Errorf("journaling departure of %s: %w", device, err)
		}
	}
	e.logf("federate: edge %s: migrating device %s to %s", e.ID, device, target)
	return c.Encode(wire.Message{Type: wire.TypeHandoff, SUO: device,
		At: cp.At, Handoff: &h, Checkpoint: cp})
}

// arrive is the destination side: journal the arrival write-ahead, restore
// the device with its handed-over state, ack the completed migration.
func (e *Edge) arrive(c *wire.Conn, m wire.Message) error {
	if m.SUO == "" || m.Checkpoint == nil || m.Handoff == nil {
		e.logf("federate: edge %s: malformed handoff frame ignored", e.ID)
		return nil
	}
	if e.Journal != nil {
		if err := e.Journal.Append(m); err != nil {
			return fmt.Errorf("journaling arrival of %s: %w", m.SUO, err)
		}
	}
	if err := e.Pool.RestoreHandoff(m.SUO, m.Checkpoint, e.Factory); err != nil {
		return err
	}
	e.logf("federate: edge %s: device %s arrived from %s", e.ID, m.SUO, m.Handoff.From)
	return c.Encode(wire.Ack(m.SUO, wire.CtrlMigrate, m.At))
}

func (e *Edge) adoptAndAck(c *wire.Conn, source, dir string) error {
	st, err := e.Adopt(source, dir)
	if err != nil {
		e.logf("federate: edge %s: adopting %s (%s) failed: %v", e.ID, source, dir, err)
		return nil // stay connected; the operator sees the log
	}
	e.logf("federate: edge %s: adopted %s: %s", e.ID, source, st)
	return c.Encode(wire.Ack(source, wire.CtrlAdopt, 0))
}

// Adopt absorbs a dead peer's journal (ARCHITECTURE.md §7.4): the journal
// replays into a scratch pool — full fidelity, checkpoints included — and
// every recovered device is then handed off from the scratch pool into the
// edge's own, each arrival journaled write-ahead, followed by the peer's
// pool-level counters as an adopted baseline record. After Adopt, replaying
// THIS edge's journal alone reproduces the merged fleet: the peer's journal
// is no longer needed. The edge's next rollup delta then re-credits
// everything the peer had, which is exactly what the aggregator dropped
// when it repointed the peer's ranges — the merged view is conserved.
func (e *Edge) Adopt(source, dir string) (fleet.ReplayStats, error) {
	r, err := journal.OpenReader(dir)
	if err != nil {
		return fleet.ReplayStats{}, err
	}
	tmp := fleet.NewPool(fleet.Options{Shards: e.Pool.Shards()})
	defer tmp.Stop()
	st, err := tmp.Replay(r, e.Factory)
	r.Close()
	if err != nil {
		return st, err
	}
	ids := make([]string, 0, len(tmp.DeviceStats()))
	for id := range tmp.DeviceStats() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cp, err := tmp.HandoffDevice(id)
		if err != nil {
			return st, err
		}
		rec := wire.Message{Type: wire.TypeHandoff, SUO: id, At: cp.At,
			Handoff: &wire.HandoffRecord{From: source, To: e.ID}, Checkpoint: cp}
		if e.Journal != nil {
			if err := e.Journal.Append(rec); err != nil {
				return st, err
			}
		}
		if err := e.Pool.RestoreHandoff(id, cp, e.Factory); err != nil {
			return st, err
		}
	}
	base := fleet.AdoptBaselineRecord(source, e.ID, tmp.Rollup())
	if e.Journal != nil {
		if err := e.Journal.Append(base); err != nil {
			return st, err
		}
	}
	e.Pool.AdoptBaseline(source, base.Checkpoint.Counters)
	return st, nil
}
