package federate_test

import (
	"fmt"

	"trader/internal/federate"
)

// The federation fold: per-edge cumulative counters merge by addition into
// the fleet-wide view, and signed deltas against a credited baseline keep
// the merged totals exact even while a migration moves state between edges.
func Example() {
	edgeA := federate.Counters{"outputs": 40, "deviations": 2}
	edgeB := federate.Counters{"outputs": 20}

	// The aggregator credits each edge's first (full-state) delta.
	view := federate.Counters{}
	view.Add(edgeA)
	view.Add(edgeB)

	// A live migration moves a device (30 outputs, 2 deviations) from A to
	// B: A's cumulative state legitimately decreases — deltas are signed —
	// and the two edges' next deltas cancel exactly in the merged view.
	prevA, prevB := edgeA.Clone(), edgeB.Clone()
	edgeA = federate.Counters{"outputs": 10}
	edgeB = federate.Counters{"outputs": 50, "deviations": 2}
	view.Add(edgeA.Diff(prevA))
	view.Add(edgeB.Diff(prevB))

	fmt.Println("outputs:", view["outputs"])
	fmt.Println("deviations:", view["deviations"])
	// Output:
	// outputs: 60
	// deviations: 2
}
