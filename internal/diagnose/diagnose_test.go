package diagnose

import (
	"strings"
	"sync"
	"testing"

	"trader/internal/control"
	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/spectrum"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

const testBlocks = 512

// testRecorder builds a small-program recorder for device i.
func testRecorder(i int) *Recorder {
	return NewRecorder(RecorderOptions{Blocks: testBlocks, Windows: 4, Seed: int64(i + 1)})
}

func TestRecorderWindowsAndSnapshot(t *testing.T) {
	r := testRecorder(0)
	r.Press("teletext")
	r.Rotate(10 * sim.Millisecond)
	r.Press("volume")
	snap := r.Snapshot()
	if snap.Blocks != testBlocks {
		t.Fatalf("snapshot blocks = %d", snap.Blocks)
	}
	// One closed window plus the open one, in sequence order.
	if len(snap.Windows) != 2 || snap.Windows[0].Seq != 0 || snap.Windows[1].Seq != 1 {
		t.Fatalf("windows = %+v", snap.Windows)
	}
	if snap.Windows[0].At != 10*sim.Millisecond || snap.Windows[1].At != 0 {
		t.Fatalf("window times = %+v", snap.Windows)
	}
	// The ring retains only the last Windows closed windows.
	for i := 0; i < 10; i++ {
		r.Press("menu")
		r.Rotate(sim.Time(i+2) * 10 * sim.Millisecond)
	}
	snap = r.Snapshot()
	if len(snap.Windows) != 5 { // 4 retained + open
		t.Fatalf("retained %d windows, want 5", len(snap.Windows))
	}
	if snap.Windows[0].Seq != 7 {
		t.Fatalf("oldest retained window seq = %d, want 7", snap.Windows[0].Seq)
	}
}

// The injected fault block executes on every invocation of the faulty
// feature and on no other feature; the layout attributes it correctly.
func TestRecorderFaultInjection(t *testing.T) {
	r := testRecorder(1)
	fault := r.InjectFault("teletext")
	layout := NewLayout(testBlocks)
	if got := layout.FeatureOf(fault); got != "teletext" {
		t.Fatalf("fault block %d attributed to %q", fault, got)
	}
	r.Press("volume")
	words := r.Snapshot().Windows[0].Words
	if words[fault/64]&(1<<(uint(fault)%64)) != 0 {
		t.Fatal("fault block executed by a foreign feature")
	}
	r.Press("teletext")
	words = r.Snapshot().Windows[0].Words
	if words[fault/64]&(1<<(uint(fault)%64)) == 0 {
		t.Fatal("fault block not executed by the faulty feature")
	}
	// Healthy recorders never set it deterministically: same seed, no
	// injection, same presses.
	h := testRecorder(1)
	h.Press("volume")
	h.Press("teletext")
	hw := h.Snapshot().Windows[0].Words
	fw := r.Snapshot().Windows[0].Words
	for w := range hw {
		want := fw[w]
		if w == fault/64 {
			want &^= 1 << (uint(fault) % 64)
		}
		if hw[w] != want {
			t.Fatalf("healthy twin diverges at word %d beyond the fault bit", w)
		}
	}
}

// Observe maps key events and periodic component events onto features, the
// latter at most once per window.
func TestRecorderObserve(t *testing.T) {
	r := testRecorder(2)
	key := event.Event{Kind: event.Input, Name: "key", Source: "remote"}.With("key", float64(tvsim.KeyText))
	r.Observe(key)
	frame := event.Event{Kind: event.Output, Name: "frame", Source: "video"}
	r.Observe(frame)
	r.Observe(frame)
	snap := r.Snapshot()
	if snap.Events != 3 {
		t.Fatalf("flight recorder retained %d events, want 3", snap.Events)
	}
	open := snap.Windows[len(snap.Windows)-1]
	covered := 0
	for _, w := range open.Words {
		for ; w != 0; w &= w - 1 {
			covered++
		}
	}
	if covered == 0 {
		t.Fatal("observe produced no coverage")
	}
	// After rotation the same periodic component presses again.
	r.Rotate(sim.Second)
	r.Observe(frame)
	open = r.Snapshot().Windows[len(r.Snapshot().Windows)-1]
	any := false
	for _, w := range open.Words {
		any = any || w != 0
	}
	if !any {
		t.Fatal("periodic component did not press after rotation")
	}
}

// sink collects journal appends through the fleet.FrameJournal interface.
type sink struct {
	mu     sync.Mutex
	frames []wire.Message
}

func (s *sink) Append(m wire.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = append(s.frames, m)
	return nil
}

// fakeRequester records pull targets.
type fakeRequester struct {
	mu  sync.Mutex
	ids []string
}

func (f *fakeRequester) RequestSnapshot(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ids = append(f.ids, id)
	return nil
}

// End-to-end through the engine, offline: escalation opens an episode, the
// suspect + cohort are pulled, labeled evidence folds, the ranking names
// the fault block first, and the verdict names its feature.
func TestEngineLocalizesInjectedFault(t *testing.T) {
	const healthy = 9
	pool := fleet.NewPool(fleet.Options{Shards: 2})
	defer pool.Stop()
	addLight := func(id string) {
		t.Helper()
		if err := pool.AddDevice(id, 1, fleet.LightFactory(0)); err != nil {
			t.Fatal(err)
		}
	}
	suspectID := "dev-faulty"
	addLight(suspectID)
	cohortIDs := make([]string, healthy)
	for i := range cohortIDs {
		cohortIDs[i] = fleet.DeviceID(i)
		addLight(cohortIDs[i])
	}

	req := &fakeRequester{}
	js := &sink{}
	eng := Attach(pool, Options{Requester: req, Journal: js, Blocks: testBlocks, Cohort: 8})
	defer eng.Close()

	// Build the evidence: every device exercises the same scenario each
	// window; the suspect's teletext build carries the defect.
	recorders := map[string]*Recorder{suspectID: testRecorder(0)}
	fault := recorders[suspectID].InjectFault("teletext")
	for i, id := range cohortIDs {
		recorders[id] = testRecorder(i + 1)
	}
	for id, r := range recorders {
		for w := 0; w < 4; w++ {
			r.Press("teletext")
			r.Press("volume")
			r.Press("zapping")
			r.Rotate(sim.Time(w+1) * 100 * sim.Millisecond)
		}
		_ = id
	}

	eng.HandleAction(control.Action{Device: suspectID, Rung: control.RungReset, Class: control.ClassDeviation})
	eng.Sync()
	req.mu.Lock()
	pulled := append([]string(nil), req.ids...)
	req.mu.Unlock()
	if len(pulled) != 9 || pulled[0] != suspectID {
		t.Fatalf("pulled %v, want suspect first + 8 peers", pulled)
	}
	for _, id := range pulled {
		eng.HandleSnapshot(id, wire.Message{Type: wire.TypeSnapshot, SUO: id,
			At: 400 * sim.Millisecond, Snapshot: recorders[id].Snapshot()})
	}
	eng.Sync()

	ro := eng.Rollup()
	if ro.Episodes != 1 || ro.Snapshots != 9 || ro.Pending != 0 {
		t.Fatalf("rollup: %s", ro)
	}
	if ro.FailWindows != 4 || ro.PassWindows != 8*4 {
		t.Fatalf("windows: %s (open windows with coverage count too?)", ro)
	}

	res := eng.Result(5)
	if len(res.Ranking) != 5 {
		t.Fatalf("ranking has %d entries", len(res.Ranking))
	}
	if res.Ranking[0].Block != fault {
		t.Fatalf("top suspect = block %d (score %f), want fault block %d\n%s",
			res.Ranking[0].Block, res.Ranking[0].Score, fault, res)
	}
	if res.Ranking[0].Component != "teletext" {
		t.Fatalf("top suspect attributed to %q", res.Ranking[0].Component)
	}
	if len(res.Verdict) == 0 || res.Verdict[0].Component != "teletext" {
		t.Fatalf("verdict = %+v, want teletext first", res.Verdict)
	}

	// Every folded snapshot was journaled write-ahead, labeled.
	js.mu.Lock()
	defer js.mu.Unlock()
	if len(js.frames) != 9 {
		t.Fatalf("journaled %d evidence frames, want 9", len(js.frames))
	}
	labels := map[string]int{}
	for _, f := range js.frames {
		if f.Type != wire.TypeSnapshot || f.Snapshot == nil {
			t.Fatalf("journaled frame %+v is not evidence", f)
		}
		labels[f.Target]++
	}
	if labels[LabelFail] != 1 || labels[LabelPass] != 8 {
		t.Fatalf("labels = %v", labels)
	}
}

// A second escalation while the first episode's pulls are outstanding
// coalesces; unsolicited and malformed snapshots are counted, not folded.
func TestEngineEdgeCases(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	if err := pool.AddDevice("a", 1, fleet.LightFactory(0)); err != nil {
		t.Fatal(err)
	}
	eng := Attach(pool, Options{Blocks: testBlocks})
	defer eng.Close()

	act := control.Action{Device: "a", Rung: control.RungRestart}
	eng.HandleAction(act)
	eng.HandleAction(act)
	eng.Sync()
	if ro := eng.Rollup(); ro.Episodes != 1 || ro.Coalesced != 1 {
		t.Fatalf("rollup: %s", ro)
	}
	// Unsolicited device.
	eng.HandleSnapshot("stranger", wire.Message{Type: wire.TypeSnapshot,
		Snapshot: &wire.Snapshot{Blocks: testBlocks}})
	// Wrong block count from the pending suspect.
	eng.HandleSnapshot("a", wire.Message{Type: wire.TypeSnapshot,
		Snapshot: &wire.Snapshot{Blocks: 64}})
	eng.Sync()
	ro := eng.Rollup()
	if ro.Unsolicited != 1 || ro.Malformed != 1 || ro.Snapshots != 0 || ro.Pending != 0 {
		t.Fatalf("rollup: %s", ro)
	}
}

// Overlapping re-pulls must not double-count: a second snapshot re-serving
// already-folded windows (same Seq) folds only the new ones, and the open
// window is never folded (it would double-count when re-captured closed).
func TestEngineDedupsOverlappingPulls(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	if err := pool.AddDevice("a", 1, fleet.LightFactory(0)); err != nil {
		t.Fatal(err)
	}
	eng := Attach(pool, Options{Blocks: testBlocks, Requery: sim.Second})
	defer eng.Close()

	r := testRecorder(0)
	r.Press("volume")
	r.Rotate(100 * sim.Millisecond)
	r.Press("volume") // open-window coverage: must NOT fold
	snap1 := r.Snapshot()

	eng.HandleAction(control.Action{Device: "a", Rung: control.RungReset, At: 100 * sim.Millisecond})
	eng.HandleSnapshot("a", wire.Message{Type: wire.TypeSnapshot, Snapshot: snap1})
	eng.Sync()
	if ro := eng.Rollup(); ro.FailWindows != 1 || ro.SkippedWindows != 1 {
		t.Fatalf("first pull: %s (open window folded?)", ro)
	}

	// The open window closes and one fresh window accrues; the re-pull
	// re-serves window 0 alongside them.
	r.Rotate(200 * sim.Millisecond)
	r.Press("menu")
	r.Rotate(2 * sim.Second)
	eng.HandleAction(control.Action{Device: "a", Rung: control.RungReset, At: 3 * sim.Second})
	eng.HandleSnapshot("a", wire.Message{Type: wire.TypeSnapshot, Snapshot: r.Snapshot()})
	eng.Sync()
	ro := eng.Rollup()
	if ro.FailWindows != 3 {
		t.Fatalf("after re-pull: %d fail windows, want 3 (window 0 deduped, 1+2 folded): %s", ro.FailWindows, ro)
	}
	if ro.Transactions != 3 {
		t.Fatalf("transactions = %d, want 3", ro.Transactions)
	}
}

// A pull that is never answered expires after the requery window, so the
// device becomes diagnosable (and cohort-eligible) again instead of
// pending forever.
func TestEnginePendingPullExpires(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	if err := pool.AddDevice("a", 1, fleet.LightFactory(0)); err != nil {
		t.Fatal(err)
	}
	eng := Attach(pool, Options{Blocks: testBlocks, Requery: sim.Second})
	defer eng.Close()

	eng.HandleAction(control.Action{Device: "a", Rung: control.RungReset, At: sim.Second})
	eng.Sync()
	if ro := eng.Rollup(); ro.Episodes != 1 || ro.Pending != 1 {
		t.Fatalf("first episode: %s", ro)
	}
	// Within the window: coalesces against the outstanding pull.
	eng.HandleAction(control.Action{Device: "a", Rung: control.RungReset, At: 1500 * sim.Millisecond})
	eng.Sync()
	if ro := eng.Rollup(); ro.Episodes != 1 || ro.Coalesced != 1 {
		t.Fatalf("within window: %s", ro)
	}
	// Past the window: the unanswered pull is written off and a fresh
	// episode opens.
	eng.HandleAction(control.Action{Device: "a", Rung: control.RungReset, At: 4 * sim.Second})
	eng.Sync()
	ro := eng.Rollup()
	if ro.Expired != 1 || ro.Episodes != 2 || ro.Pending != 1 {
		t.Fatalf("past window: %s", ro)
	}
}

// A fresh engine warm-started from a journal's evidence (a daemon restart)
// holds exactly the ranking the first engine held — the byte-identity
// invariant across daemon restarts.
func TestEngineRecoverWarmStart(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	for i := 0; i < 4; i++ {
		if err := pool.AddDevice(fleet.DeviceID(i), 1, fleet.LightFactory(0)); err != nil {
			t.Fatal(err)
		}
	}
	first := Attach(pool, Options{Journal: jw, Blocks: testBlocks, Cohort: 3})
	recorders := make([]*Recorder, 4)
	for i := range recorders {
		recorders[i] = testRecorder(i)
	}
	recorders[0].InjectFault("menu")
	for i := range recorders {
		for w := 0; w < 2; w++ {
			recorders[i].Press("menu")
			recorders[i].Rotate(sim.Time(w+1) * sim.Second)
		}
	}
	first.HandleAction(control.Action{Device: fleet.DeviceID(0), Rung: control.RungReset})
	first.Sync()
	for i, r := range recorders {
		first.HandleSnapshot(fleet.DeviceID(i), wire.Message{Type: wire.TypeSnapshot,
			At: 2 * sim.Second, Snapshot: r.Snapshot()})
	}
	live := first.Result(8)
	first.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	second := Attach(pool, Options{Blocks: testBlocks})
	defer second.Close()
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := second.Recover(jr)
	jr.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("recovered %d evidence records, want 4", n)
	}
	if got, want := second.Result(8).String(), live.String(); got != want {
		t.Fatalf("warm-started ranking diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
	if ro := second.Rollup(); ro.Snapshots != 4 || ro.FailWindows == 0 {
		t.Fatalf("recovered tallies: %s", ro)
	}
}

// Evidence journaled through a real journal replays to a byte-identical
// Result string — the property the e2e asserts over the full wire path.
func TestReplayReproducesResult(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	for i := 0; i < 5; i++ {
		if err := pool.AddDevice(fleet.DeviceID(i), 1, fleet.LightFactory(0)); err != nil {
			t.Fatal(err)
		}
	}
	eng := Attach(pool, Options{Journal: jw, Blocks: testBlocks, Cohort: 4})
	recorders := make([]*Recorder, 5)
	for i := range recorders {
		recorders[i] = testRecorder(i)
	}
	fault := recorders[0].InjectFault("zapping")
	for _, r := range recorders {
		for w := 0; w < 3; w++ {
			r.Press("zapping")
			r.Press("menu")
			r.Rotate(sim.Time(w+1) * sim.Second)
		}
	}
	eng.HandleAction(control.Action{Device: fleet.DeviceID(0), Rung: control.RungReset})
	eng.Sync()
	for i, r := range recorders {
		eng.HandleSnapshot(fleet.DeviceID(i), wire.Message{Type: wire.TypeSnapshot,
			At: 3 * sim.Second, Snapshot: r.Snapshot()})
	}
	live := eng.Result(10)
	eng.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if live.Ranking[0].Block != fault {
		t.Fatalf("live top = %d, want %d", live.Ranking[0].Block, fault)
	}

	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	replayed, st, err := Replay(jr, spectrum.Ochiai, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshots != 5 {
		t.Fatalf("replayed %d snapshots, want 5", st.Snapshots)
	}
	if replayed.String() != live.String() {
		t.Fatalf("replay diverged:\nlive:\n%s\nreplayed:\n%s", live, replayed)
	}
	if !strings.Contains(replayed.String(), "zapping") {
		t.Fatalf("result does not attribute the fault: %s", replayed)
	}
}
