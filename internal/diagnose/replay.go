package diagnose

import (
	"fmt"
	"io"

	"trader/internal/journal"
	"trader/internal/spectrum"
	"trader/internal/wire"
)

// ReplayStats summarises one evidence replay.
type ReplayStats struct {
	Snapshots int // labeled snapshot records folded
	Deltas    int // labeled heartbeat-delta records folded
	Windows   int // coverage windows folded
	Skipped   int // evidence with a foreign block count
}

// Replay reconstructs a fleet diagnosis offline from a journal: every
// labeled evidence record (a TypeSnapshot or TypeSpectrumDelta frame whose
// Target is "fail" or "pass" — only the diagnosis engine journals those)
// folds exactly as it did live, through the same fold path — including the
// per-device high-water marks that keep deltas and pulled snapshots from
// double-counting a window, and the per-verdict partitions the fail labels
// carve out. Because folding is an order-independent counter sum and the
// ranking is a pure function of the counters, the returned Result —
// partitions included — formats byte-identically to the live engine's at
// the moment the journal closed.
//
// The block count is taken from the evidence itself (the engine only
// journals evidence matching its configured layout); records with a
// different count than the first are counted in Skipped. coeff.F == nil
// picks Ochiai. A journal with no evidence yields (nil, nil).
func Replay(r *journal.Reader, coeff spectrum.Coefficient, topN int) (*Result, ReplayStats, error) {
	if coeff.F == nil {
		coeff = spectrum.Ochiai
	}
	var st ReplayStats
	var fold *folder
	blocks := 0
	for {
		m, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, st, fmt.Errorf("diagnose: replay: %w", err)
		}
		evBlocks := -1
		switch {
		case m.Type == wire.TypeSnapshot && m.Snapshot != nil:
			evBlocks = m.Snapshot.Blocks
		case m.Type == wire.TypeSpectrumDelta && m.Delta != nil:
			evBlocks = m.Delta.Blocks
		default:
			continue
		}
		if m.Target != LabelFail && m.Target != LabelPass {
			continue // an unlabeled frame is not engine evidence
		}
		if fold == nil {
			if evBlocks <= 0 {
				st.Skipped++
				continue
			}
			blocks = evBlocks
			fold = newFolder(spectrum.NewSpectra(blocks, 0), 0)
		}
		if evBlocks != blocks {
			st.Skipped++
			continue
		}
		failed := m.Target == LabelFail
		if m.Type == wire.TypeSpectrumDelta {
			if fold.foldDelta(m.SUO, m.Delta, failed) {
				st.Windows++
			}
			st.Deltas++
		} else {
			st.Windows += fold.fold(m.SUO, m.Snapshot, failed)
			st.Snapshots++
		}
	}
	if fold == nil {
		return nil, st, nil
	}
	return buildFolderResult(fold, NewLayout(blocks), coeff, topN), st, nil
}
