package diagnose

import (
	"fmt"
	"io"

	"trader/internal/journal"
	"trader/internal/spectrum"
	"trader/internal/wire"
)

// ReplayStats summarises one evidence replay.
type ReplayStats struct {
	Snapshots int // labeled evidence records folded
	Windows   int // coverage windows folded
	Skipped   int // evidence with a foreign block count
}

// Replay reconstructs a fleet diagnosis offline from a journal: every
// labeled evidence record (a TypeSnapshot frame whose Target is "fail" or
// "pass" — only the diagnosis engine journals those) folds exactly as it
// did live, through the same fold path, into a fresh accumulator. Because
// folding is an order-independent counter sum and the ranking is a pure
// function of the counters, the returned Result formats byte-identically
// to the live engine's at the moment the journal closed.
//
// The block count is taken from the evidence itself (the engine only
// journals snapshots matching its configured layout); records with a
// different count than the first are counted in Skipped. coeff.F == nil
// picks Ochiai. A journal with no evidence yields (nil, nil).
func Replay(r *journal.Reader, coeff spectrum.Coefficient, topN int) (*Result, ReplayStats, error) {
	if coeff.F == nil {
		coeff = spectrum.Ochiai
	}
	var st ReplayStats
	var spectra *spectrum.Spectra
	var fold *folder
	blocks := 0
	for {
		m, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, st, fmt.Errorf("diagnose: replay: %w", err)
		}
		if m.Type != wire.TypeSnapshot || m.Snapshot == nil {
			continue
		}
		if m.Target != LabelFail && m.Target != LabelPass {
			continue // an unlabeled snapshot is not engine evidence
		}
		if spectra == nil {
			blocks = m.Snapshot.Blocks
			if blocks <= 0 {
				st.Skipped++
				continue
			}
			spectra = spectrum.NewSpectra(blocks, 0)
			fold = newFolder(spectra)
		}
		if m.Snapshot.Blocks != blocks {
			st.Skipped++
			continue
		}
		st.Windows += fold.fold(m.SUO, m.Snapshot, m.Target == LabelFail)
		st.Snapshots++
	}
	if spectra == nil {
		return nil, st, nil
	}
	return buildResult(spectra, NewLayout(blocks), coeff, topN), st, nil
}
