package diagnose

import (
	"testing"

	"trader/internal/control"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

// TestCheckpointSupersedesReplayedEvidence is the diagnosis-plane resume
// property: a journal holding [episode-1 evidence, checkpoint, episode-2
// evidence] recovers to exactly the live engine's final state — the
// checkpoint restores absolutely (superseding the pre-checkpoint records a
// real resume would not even read), and the restored fold high-water marks
// keep episode 2's re-sent windows from double-folding.
func TestCheckpointSupersedesReplayedEvidence(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	for i := 0; i < 4; i++ {
		if err := pool.AddDevice(fleet.DeviceID(i), 1, fleet.LightFactory(0)); err != nil {
			t.Fatal(err)
		}
	}
	live := Attach(pool, Options{Journal: jw, Blocks: testBlocks, Cohort: 3, Requery: -1})
	recorders := make([]*Recorder, 4)
	for i := range recorders {
		recorders[i] = testRecorder(i)
	}
	recorders[0].InjectFault("menu")

	episode := func(n int, upto sim.Time) {
		live.HandleAction(control.Action{Device: fleet.DeviceID(0), Rung: control.RungReset, At: upto})
		live.Sync()
		for i, r := range recorders {
			live.HandleSnapshot(fleet.DeviceID(i), wire.Message{Type: wire.TypeSnapshot, At: upto, Snapshot: r.Snapshot()})
		}
		live.Sync()
	}
	for i, r := range recorders {
		_ = i
		r.Press("menu")
		r.Rotate(1 * sim.Second)
	}
	episode(1, 1*sim.Second)

	// Snapshot the plane mid-journal, exactly where a Checkpointer would.
	cpMsg := live.Checkpoint()
	if cp := cpMsg.Checkpoint; cp == nil || cp.Plane != wire.PlaneDiagnose || cp.NFail == 0 {
		t.Fatalf("checkpoint record malformed: %+v", cpMsg.Checkpoint)
	}
	if err := jw.Append(cpMsg); err != nil {
		t.Fatal(err)
	}

	// Episode 2: every recorder re-sends its old windows plus one new one.
	for _, r := range recorders {
		r.Press("zapping")
		r.Press("menu")
		r.Rotate(2 * sim.Second)
	}
	episode(2, 2*sim.Second)
	want := live.Result(8)
	wantRo := live.Rollup()
	live.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	second := Attach(pool, Options{Blocks: testBlocks})
	defer second.Close()
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := second.Recover(jr)
	jr.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("recovered %d evidence records, want 8", n)
	}
	if got, want := second.Result(8).String(), want.String(); got != want {
		t.Fatalf("recovered ranking diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
	ro := second.Rollup()
	if ro.Snapshots != wantRo.Snapshots || ro.FailWindows != wantRo.FailWindows ||
		ro.PassWindows != wantRo.PassWindows || ro.SkippedWindows != wantRo.SkippedWindows {
		t.Fatalf("recovered tallies diverged:\nlive:      %s\nrecovered: %s", wantRo, ro)
	}
}

// TestRestoreRefusesForeignLayout pins the layout guard on restore.
func TestRestoreRefusesForeignLayout(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	e := Attach(pool, Options{Blocks: testBlocks})
	defer e.Close()
	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	err = jw.Append(wire.Message{Type: wire.TypeCheckpoint, Checkpoint: &wire.Checkpoint{
		Plane: wire.PlaneDiagnose, Blocks: testBlocks + 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	jw.Close()
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if _, err := e.Recover(jr); err == nil {
		t.Fatal("recover accepted a checkpoint with a foreign block count")
	}
}
